module mpicontend

go 1.22
