package mpisim

import (
	"strings"
	"testing"
)

func TestLockNames(t *testing.T) {
	want := map[Lock]string{
		Mutex: "Mutex", Ticket: "Ticket", Priority: "Priority",
		Single: "Single", TAS: "TAS", MCS: "MCS",
		PrioMutex: "PrioMutex", SocketPriority: "SocketPriority",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), s)
		}
	}
}

func TestThroughputFacade(t *testing.T) {
	r, err := Throughput(ThroughputConfig{Lock: Ticket, Threads: 4,
		MsgBytes: 64, Windows: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.RateMsgsPerSec <= 0 || r.Messages == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.BiasCore == 0 && r.BiasSocket == 0 {
		t.Error("trace requested but bias factors empty")
	}
}

func TestLatencyFacade(t *testing.T) {
	r, err := Latency(LatencyConfig{Lock: Single, Threads: 1, MsgBytes: 8, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgOneWayUs <= 0 {
		t.Fatalf("latency %v", r.AvgOneWayUs)
	}
}

func TestN2NFacade(t *testing.T) {
	r, err := N2N(N2NConfig{Lock: Priority, Procs: 3, Threads: 2, MsgBytes: 16, Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.RateMsgsPerSec <= 0 {
		t.Fatalf("rate %v", r.RateMsgsPerSec)
	}
}

func TestRMAFacade(t *testing.T) {
	for _, op := range []RMAOp{Put, Get, Accumulate} {
		r, err := RMA(RMAConfig{Lock: Ticket, Op: op, ElemBytes: 64, Ops: 3})
		if err != nil {
			t.Fatal(err)
		}
		if r.RateElemPerSec <= 0 {
			t.Fatalf("op %d rate %v", op, r.RateElemPerSec)
		}
	}
}

func TestBFSFacade(t *testing.T) {
	r, err := BFS(BFSConfig{Lock: Ticket, Procs: 2, Threads: 2, Scale: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.MTEPS <= 0 || r.VisitedVertices == 0 {
		t.Fatalf("degenerate: %+v", r)
	}
}

func TestStencilFacade(t *testing.T) {
	r, err := Stencil(StencilConfig{Lock: Ticket, Procs: 2, Threads: 2,
		NX: 8, NY: 8, NZ: 8, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.GFlops <= 0 || r.Checksum == 0 {
		t.Fatalf("degenerate: %+v", r)
	}
}

func TestAssemblyFacade(t *testing.T) {
	r, err := Assembly(AssemblyConfig{Lock: Ticket, Procs: 2, GenomeLen: 1500, Reads: 300})
	if err != nil {
		t.Fatal(err)
	}
	if r.Contigs == 0 || r.ContigBases == 0 {
		t.Fatalf("degenerate: %+v", r)
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
}

func TestRunExperimentTable1(t *testing.T) {
	figs, err := RunExperiment("table1", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || !strings.Contains(figs[0].Text, "Nehalem") {
		t.Fatalf("unexpected table1 output: %+v", figs)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFig2b(t *testing.T) {
	figs, err := RunExperiment("fig2b", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 || len(figs[0].Text) == 0 {
		t.Fatal("empty figure")
	}
	if !strings.Contains(figs[0].Text, "compact") {
		t.Fatalf("fig2b missing series:\n%s", figs[0].Text)
	}
}

func TestGranularityFacade(t *testing.T) {
	for _, g := range []Granularity{Global, BriefGlobal, FineGrain, LockFree} {
		r, err := Throughput(ThroughputConfig{Lock: Ticket, Granularity: g,
			Threads: 4, MsgBytes: 64, Windows: 2})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if r.RateMsgsPerSec <= 0 {
			t.Fatalf("%v: degenerate rate", g)
		}
	}
	if Global.String() != "Global" || LockFree.String() != "LockFree" {
		t.Fatal("granularity names changed")
	}
}

func TestSelectiveWakeupFacade(t *testing.T) {
	busy, err := RMA(RMAConfig{Lock: Mutex, Op: Put, ElemBytes: 64, Ops: 4})
	if err != nil {
		t.Fatal(err)
	}
	evt, err := RMA(RMAConfig{Lock: Mutex, Op: Put, ElemBytes: 64, Ops: 4,
		SelectiveWakeup: true})
	if err != nil {
		t.Fatal(err)
	}
	if evt.RateElemPerSec <= busy.RateElemPerSec {
		t.Errorf("selective wakeup should raise the mutex RMA rate: %.0f vs %.0f",
			evt.RateElemPerSec, busy.RateElemPerSec)
	}
}

func TestCohortFacade(t *testing.T) {
	r, err := Throughput(ThroughputConfig{Lock: Cohort, Threads: 8,
		MsgBytes: 64, Windows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.RateMsgsPerSec <= 0 {
		t.Fatal("degenerate cohort rate")
	}
}

func TestPatternFacade(t *testing.T) {
	for _, pk := range []PatternKind{ConcurrentPairs, FanIn, FanOut, ComputeOverlap} {
		r, err := Pattern(PatternConfig{Lock: Ticket, Pattern: pk, Threads: 2, Msgs: 8})
		if err != nil {
			t.Fatal(err)
		}
		if r.RateMsgsPerSec <= 0 {
			t.Fatalf("pattern %d degenerate", pk)
		}
	}
}
