// Package mpisim is the public facade of the MPI-runtime contention
// simulator reproducing "MPI+Threads: Runtime Contention and Remedies"
// (PPoPP'15). It exposes the paper's benchmarks — multithreaded
// point-to-point throughput and latency, N2N all-to-all streaming, RMA
// with asynchronous progress, Graph500 BFS, a 3-D stencil, and a genome
// assembler — over a deterministic discrete-event model of a NUMA cluster,
// with the critical-section arbitration (pthread mutex, ticket, priority)
// as the experimental variable.
//
// Quick start:
//
//	res, err := mpisim.Throughput(mpisim.ThroughputConfig{
//		Lock: mpisim.Ticket, Threads: 8, MsgBytes: 64,
//	})
//	fmt.Printf("%.0f msgs/s\n", res.RateMsgsPerSec)
//
// mpisim fronts the deterministic core (docs/ARCHITECTURE.md): every call
// builds an isolated engine from its config and seed and is a pure
// function of them. Sweep and RunPoints fan such isolated runs across OS
// workers with byte-identical output.
package mpisim

import (
	"fmt"

	"mpicontend/internal/experiments"
	"mpicontend/internal/fault"
	"mpicontend/internal/genome"
	"mpicontend/internal/graph500"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/stencil"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

// FaultConfig describes a fault-injection scenario and the resilient
// transport's tuning. The zero value is a perfect network: no faults, no
// reliability layer, zero overhead — fault-free runs are byte-identical
// with or without this feature. All fault randomness is seeded, so a
// faulty run is exactly reproducible.
type FaultConfig struct {
	// DropProb is the probability a wire packet is silently discarded.
	DropProb float64
	// DupProb is the probability a packet is delivered twice.
	DupProb float64
	// DelayProb is the probability a packet suffers extra latency,
	// uniform in [1, DelayMaxNs] — reordering packets behind it.
	DelayProb  float64
	DelayMaxNs int64
	// BrownoutPeriodNs > 0 enables periodic link brownouts: every period
	// the inter-node links run at BrownoutFactor of nominal bandwidth
	// for BrownoutDurationNs.
	BrownoutPeriodNs   int64
	BrownoutDurationNs int64
	BrownoutFactor     float64
	// NICStallProb is the probability one injection stalls the NIC for
	// NICStallNs.
	NICStallProb float64
	NICStallNs   int64
	// PreemptProb is the probability a thread is preempted for PreemptNs
	// right after acquiring a runtime critical-section lock.
	PreemptProb float64
	PreemptNs   int64
	// RTONs is the base retransmit timeout (default 50µs, doubling per
	// retry); MaxRetries bounds retransmissions before the transport
	// gives up and surfaces an MPI-style error.
	RTONs      int64
	MaxRetries int
	// RequestTimeoutNs > 0 arms a per-request deadline surfaced as a
	// timeout error through Wait/Test/Waitall.
	RequestTimeoutNs int64
	// WatchdogNs > 0 runs the progress watchdog at this interval.
	WatchdogNs int64
	// Seed drives the plane's private random streams (0 = derive from
	// the world seed).
	Seed uint64
	// Crashes is the fail-stop schedule: each spec kills one rank (or its
	// whole node) at a simulated time, turning it into a silent packet
	// blackhole. A non-empty schedule arms the heartbeat failure detector
	// and the ULFM-style recovery primitives.
	Crashes []CrashSpec
	// HeartbeatNs is the failure-detector heartbeat period (default 100µs);
	// a peer silent for HeartbeatNs x HeartbeatMiss (default 3) is declared
	// dead and its pending operations fail with a process-failure error.
	HeartbeatNs   int64
	HeartbeatMiss int
}

// CrashSpec schedules one fail-stop failure.
type CrashSpec struct {
	// Rank is the world rank to kill.
	Rank int
	// AtNs is the simulated time of death.
	AtNs int64
	// OnLockHold delays the crash until the victim next holds a runtime
	// critical-section lock at or after AtNs — the nastiest spot, since
	// local waiters are queued behind a corpse.
	OnLockHold bool
	// Node kills every rank co-located on the victim's node.
	Node bool
}

func (c FaultConfig) config() fault.Config {
	crashes := make([]fault.CrashSpec, len(c.Crashes))
	for i, cs := range c.Crashes {
		crashes[i] = fault.CrashSpec{Rank: cs.Rank, AtNs: cs.AtNs,
			OnLockHold: cs.OnLockHold, Node: cs.Node}
	}
	if len(crashes) == 0 {
		crashes = nil
	}
	return fault.Config{
		DropProb: c.DropProb, DupProb: c.DupProb,
		DelayProb: c.DelayProb, DelayMaxNs: c.DelayMaxNs,
		BrownoutPeriodNs: c.BrownoutPeriodNs, BrownoutDurationNs: c.BrownoutDurationNs,
		BrownoutFactor: c.BrownoutFactor,
		NICStallProb:   c.NICStallProb, NICStallNs: c.NICStallNs,
		PreemptProb: c.PreemptProb, PreemptNs: c.PreemptNs,
		RTONs: c.RTONs, MaxRetries: c.MaxRetries,
		RequestTimeoutNs: c.RequestTimeoutNs, WatchdogNs: c.WatchdogNs,
		Seed:    c.Seed,
		Crashes: crashes, HeartbeatNs: c.HeartbeatNs, HeartbeatMiss: c.HeartbeatMiss,
	}
}

// NetStats reports the resilient transport's counters for one run; all
// fields are zero on a perfect network.
type NetStats struct {
	// Dropped/Duplicated/Delayed/NICStalls/Preempts/BrownoutSends count
	// injected faults.
	Dropped, Duplicated, Delayed, NICStalls, Preempts, BrownoutSends int64
	// Retransmits and FastRetransmits count recovery sends; DupsSuppressed
	// counts receiver-side duplicate discards.
	Retransmits, FastRetransmits, DupsSuppressed int64
	// GiveUps counts packets abandoned after MaxRetries; RequestFailures
	// counts requests completed with an error; WatchdogStalls counts
	// progress-watchdog abort reports.
	GiveUps, RequestFailures, WatchdogStalls int64
}

// PartStats reports the MPI-4 partitioned-communication counters for one
// run; all fields are zero unless a partitioned mode was enabled.
type PartStats struct {
	// PreadyFast counts Pready calls that stayed on the lock-free path
	// (atomic bitmap flips, no critical section); PreadyTrigger counts the
	// readiness-completing calls that entered the runtime and injected the
	// aggregate — one per epoch.
	PreadyFast, PreadyTrigger int64
	// Aggregates counts aggregated wire transfers and Partitions the
	// partitions they carried; Partitions/Aggregates is the aggregation
	// ratio (messages saved per lock acquisition).
	Aggregates, Partitions int64
	// PartRetransmits counts partitions re-sent by partition-granularity
	// recovery on a lossy network.
	PartRetransmits int64
}

func partStats(s mpi.PartStats) PartStats {
	return PartStats{
		PreadyFast: s.PreadyFast, PreadyTrigger: s.PreadyTrigger,
		Aggregates: s.Aggregates, Partitions: s.Partitions,
		PartRetransmits: s.PartRetransmits,
	}
}

func netStats(s mpi.NetStats) NetStats {
	return NetStats{
		Dropped: s.Fault.Dropped, Duplicated: s.Fault.Duplicated,
		Delayed: s.Fault.Delayed, NICStalls: s.Fault.NICStalls,
		Preempts: s.Fault.Preempts, BrownoutSends: s.Fault.BrownoutSends,
		Retransmits: s.Retransmits, FastRetransmits: s.FastRetransmits,
		DupsSuppressed: s.DupsSuppressed, GiveUps: s.GiveUps,
		RequestFailures: s.RequestFailures, WatchdogStalls: s.WatchdogStalls,
	}
}

// Lock selects the critical-section arbitration used by the simulated MPI
// runtime.
type Lock int

// Arbitration methods. Mutex is the paper's baseline; Ticket and Priority
// are its remedies; Single models MPI_THREAD_SINGLE (one thread, no lock);
// the rest are related-work and ablation variants.
const (
	Mutex Lock = iota
	Ticket
	Priority
	Single
	TAS
	MCS
	PrioMutex
	SocketPriority
	// Cohort is a NUMA-aware bounded-batch cohort lock (extension).
	Cohort
	// CLH is the CLH queue lock: FCFS hand-off on per-waiter flags
	// (related work; the queue-lock family's cache-friendly variant).
	CLH
)

// String names the lock as in the paper's figures.
func (l Lock) String() string { return l.kind().String() }

func (l Lock) kind() simlock.Kind {
	switch l {
	case Mutex:
		return simlock.KindMutex
	case Ticket:
		return simlock.KindTicket
	case Priority:
		return simlock.KindPriority
	case Single:
		return simlock.KindNone
	case TAS:
		return simlock.KindTAS
	case MCS:
		return simlock.KindMCS
	case PrioMutex:
		return simlock.KindPrioMutex
	case SocketPriority:
		return simlock.KindSocketPriority
	case Cohort:
		return simlock.KindCohort
	case CLH:
		return simlock.KindCLH
	default:
		panic(fmt.Sprintf("mpisim: unknown lock %d", int(l)))
	}
}

// Binding selects how threads are pinned to cores.
type Binding int

// Thread-to-core binding policies (paper §4.2).
const (
	// Compact fills one socket before the next.
	Compact Binding = iota
	// Scatter round-robins threads over sockets.
	Scatter
)

// String names the binding policy.
func (b Binding) String() string { return b.binding().String() }

func (b Binding) binding() machine.Binding {
	if b == Scatter {
		return machine.Scatter
	}
	return machine.Compact
}

// Granularity selects the critical-section granularity (paper Fig. 1).
type Granularity int

// Critical-section granularities, coarse to fine.
const (
	// Global is the paper's baseline: one critical section per call.
	Global Granularity = iota
	// BriefGlobal shrinks the section to the queue updates.
	BriefGlobal
	// FineGrain gives the matching queues and NIC separate locks.
	FineGrain
	// LockFree models idealized atomic queues.
	LockFree
)

// String names the granularity as in Fig. 1.
func (g Granularity) String() string { return g.gran().String() }

func (g Granularity) gran() mpi.Granularity {
	switch g {
	case BriefGlobal:
		return mpi.GranBrief
	case FineGrain:
		return mpi.GranFine
	case LockFree:
		return mpi.GranLockFree
	default:
		return mpi.GranGlobal
	}
}

// ThroughputConfig parametrizes the osu_bw-derived multithreaded
// throughput benchmark (paper §4.1).
type ThroughputConfig struct {
	Lock Lock
	// Granularity selects the critical-section granularity (default
	// Global, the paper's baseline).
	Granularity Granularity
	// SelectiveWakeup enables event-driven progress (§9 future work).
	SelectiveWakeup bool
	Binding         Binding
	Threads         int
	MsgBytes        int64
	// Window is the per-thread request window (default 64, as in the
	// paper); Windows is how many windows each thread completes.
	Window  int
	Windows int
	// ProcsPerNode: 1 (default) or 2 for the process-per-socket setup.
	ProcsPerNode int
	Seed         uint64
	// Trace enables the §4.3 fairness and §4.4 dangling-request
	// analyses on the receiver's runtime.
	Trace bool
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
	// Telemetry attaches the deterministic observability plane (nil =
	// disabled, zero recording overhead). Purely observational: enabling
	// it never changes simulated results.
	Telemetry *Telemetry
}

// ThroughputResult reports the throughput benchmark.
type ThroughputResult struct {
	Messages       int64
	SimNs          int64
	RateMsgsPerSec float64
	// BiasCore and BiasSocket are the §4.3 bias factors (1 = fair);
	// populated when Trace was set.
	BiasCore, BiasSocket float64
	// DanglingAvg is the §4.4 metric; populated when Trace was set.
	DanglingAvg float64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// Throughput runs the multithreaded point-to-point throughput benchmark.
func Throughput(c ThroughputConfig) (ThroughputResult, error) {
	tr := -1
	if c.Trace {
		tr = c.ProcsPerNode // first receiver rank
		if tr == 0 {
			tr = 1
		}
	}
	r, err := workloads.Throughput(workloads.ThroughputParams{
		Lock: c.Lock.kind(), Granularity: c.Granularity.gran(),
		SelectiveWakeup: c.SelectiveWakeup, Binding: c.Binding.binding(),
		Threads: c.Threads, MsgBytes: c.MsgBytes,
		Window: c.Window, Windows: c.Windows,
		ProcsPerNode: c.ProcsPerNode, Seed: c.Seed, TraceRank: tr,
		Fault: c.Fault.config(), Tel: c.Telemetry.recorder(),
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	return ThroughputResult{
		Messages: r.Messages, SimNs: r.SimNs, RateMsgsPerSec: r.RateMsgsPerSec,
		BiasCore: r.BiasCore, BiasSocket: r.BiasSocket, DanglingAvg: r.DanglingAvg,
		Net: netStats(r.Net),
	}, nil
}

// LatencyConfig parametrizes the osu_latency-derived multithreaded
// ping-pong benchmark (paper §6.1.1).
type LatencyConfig struct {
	Lock     Lock
	Binding  Binding
	Threads  int
	MsgBytes int64
	Iters    int
	Seed     uint64
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
	// Telemetry attaches the deterministic observability plane (nil =
	// disabled).
	Telemetry *Telemetry
}

// LatencyResult reports the latency benchmark.
type LatencyResult struct {
	AvgOneWayUs float64
	SimNs       int64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// Latency runs the multithreaded ping-pong latency benchmark.
func Latency(c LatencyConfig) (LatencyResult, error) {
	r, err := workloads.Latency(workloads.LatencyParams{
		Lock: c.Lock.kind(), Binding: c.Binding.binding(),
		Threads: c.Threads, MsgBytes: c.MsgBytes, Iters: c.Iters, Seed: c.Seed,
		Fault: c.Fault.config(), Tel: c.Telemetry.recorder(),
	})
	if err != nil {
		return LatencyResult{}, err
	}
	return LatencyResult{AvgOneWayUs: r.AvgOneWayUs, SimNs: r.SimNs,
		Net: netStats(r.Net)}, nil
}

// VCIPolicy selects how operations are mapped onto a proc's virtual
// communication interfaces when VCIs > 1.
type VCIPolicy int

// Mapping policies of the sharded runtime.
const (
	// PerComm maps all traffic of one communicator to one VCI.
	PerComm VCIPolicy = iota
	// PerTagHash maps by (communicator, tag), spreading one communicator
	// over all VCIs when tags differ (e.g. one tag per thread).
	PerTagHash
	// ExplicitVCI uses the communicator's explicit VCI assignment,
	// falling back to PerComm for unassigned communicators.
	ExplicitVCI
)

// String names the policy as used in figures and flags.
func (p VCIPolicy) String() string { return p.policy().String() }

func (p VCIPolicy) policy() vci.Policy {
	switch p {
	case PerTagHash:
		return vci.PerTagHash
	case ExplicitVCI:
		return vci.Explicit
	default:
		return vci.PerComm
	}
}

// ProgressMode selects who drives the MPI progress engine
// (docs/PROGRESS.md).
type ProgressMode int

// Progress modes of the runtime.
const (
	// PollingProgress is the paper's shape: blocked application threads
	// iterate the progress loop from Wait, re-acquiring the critical
	// section around every poll. The default.
	PollingProgress ProgressMode = iota
	// StrongProgress runs a dedicated progress daemon per VCI shard;
	// blocked application threads park instead of polling.
	StrongProgress
	// ContinuationProgress is strong progress plus completion-time
	// callbacks and completion-queue draining: Waitall becomes one
	// batched enqueue and a drain.
	ContinuationProgress
)

// String names the progress mode as used in figures and flags.
func (m ProgressMode) String() string { return m.mode().String() }

func (m ProgressMode) mode() mpi.ProgressMode {
	switch m {
	case StrongProgress:
		return mpi.ProgressStrong
	case ContinuationProgress:
		return mpi.ProgressContinuation
	default:
		return mpi.ProgressPolling
	}
}

// N2NConfig parametrizes the all-to-all streaming benchmark (paper §5.2).
type N2NConfig struct {
	Lock     Lock
	Procs    int
	Threads  int
	MsgBytes int64
	Windows  int
	Seed     uint64
	// PerThreadTags pairs thread t of each rank with thread t of every
	// peer via tags, making match pools per-thread instead of pooled
	// per-process (and, with PerTagHash VCIs, per-VCI).
	PerThreadTags bool
	// Partitioned replaces each thread's per-message eager sends with
	// MPI-4 partitioned channels: one persistent Psend/Precv pair per
	// peer, each message a lock-free Pready partition flip, one aggregated
	// wire transfer (and one runtime lock acquisition) per window.
	Partitioned bool
	// VCIs shards each proc's runtime into this many virtual
	// communication interfaces, each with its own matching queues,
	// request pool and critical-section lock (0/1 = the unsharded
	// runtime, byte-identical to earlier versions). VCIPolicy picks the
	// operation→VCI mapping.
	VCIs      int
	VCIPolicy VCIPolicy
	// Progress selects who drives the progress engine: polling (default),
	// strong (per-shard progress daemons), or continuation (daemons plus
	// completion-queue Waitall). See docs/PROGRESS.md.
	Progress ProgressMode
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
	// Telemetry attaches the deterministic observability plane (nil =
	// disabled).
	Telemetry *Telemetry
}

// N2NResult reports the N2N benchmark.
type N2NResult struct {
	RateMsgsPerSec float64
	SimNs          int64
	UnexpectedHits int64
	// Net holds the resilient-transport counters.
	Net NetStats
	// Part holds the partitioned-communication counters (all zero unless
	// Partitioned was set).
	Part PartStats
}

// N2N runs the all-to-all streaming benchmark.
func N2N(c N2NConfig) (N2NResult, error) {
	r, err := workloads.N2N(workloads.N2NParams{
		Lock: c.Lock.kind(), Procs: c.Procs, Threads: c.Threads,
		MsgBytes: c.MsgBytes, Windows: c.Windows, Seed: c.Seed,
		PerThreadTags: c.PerThreadTags, Partitioned: c.Partitioned,
		VCIs: c.VCIs, VCIPolicy: c.VCIPolicy.policy(),
		Progress: c.Progress.mode(),
		Fault:    c.Fault.config(), Tel: c.Telemetry.recorder(),
	})
	if err != nil {
		return N2NResult{}, err
	}
	return N2NResult{RateMsgsPerSec: r.RateMsgsPerSec, SimNs: r.SimNs,
		UnexpectedHits: r.UnexpectedHits, Net: netStats(r.Net),
		Part: partStats(r.Part)}, nil
}

// RMAOp selects the one-sided operation.
type RMAOp int

// One-sided operations (paper §6.1.2).
const (
	Put RMAOp = iota
	Get
	Accumulate
)

// RMAConfig parametrizes the ARMCI-style one-sided benchmark with
// asynchronous progress threads (paper §6.1.2).
type RMAConfig struct {
	Lock      Lock
	Op        RMAOp
	Procs     int
	ElemBytes int64
	Ops       int
	Seed      uint64
	// SelectiveWakeup enables event-driven progress (§9 future work).
	SelectiveWakeup bool
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
	// Telemetry attaches the deterministic observability plane (nil =
	// disabled).
	Telemetry *Telemetry
}

// RMAResult reports the RMA benchmark.
type RMAResult struct {
	RateElemPerSec float64
	SimNs          int64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// RMA runs the one-sided benchmark.
func RMA(c RMAConfig) (RMAResult, error) {
	op := workloads.OpPut
	switch c.Op {
	case Get:
		op = workloads.OpGet
	case Accumulate:
		op = workloads.OpAcc
	}
	r, err := workloads.RMA(workloads.RMAParams{
		Lock: c.Lock.kind(), Op: op, Procs: c.Procs,
		ElemBytes: c.ElemBytes, Ops: c.Ops, Window: 1, Seed: c.Seed,
		SelectiveWakeup: c.SelectiveWakeup, Fault: c.Fault.config(),
		Tel: c.Telemetry.recorder(),
	})
	if err != nil {
		return RMAResult{}, err
	}
	return RMAResult{RateElemPerSec: r.RateElemPerSec, SimNs: r.SimNs,
		Net: netStats(r.Net)}, nil
}

// BFSConfig parametrizes the Graph500 BFS kernel (paper §6.2.1).
type BFSConfig struct {
	Lock    Lock
	Binding Binding
	Procs   int
	Threads int
	// Scale is log2 of the vertex count (edge factor 16).
	Scale int
	Seed  uint64
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
}

// BFSResult reports the BFS kernel.
type BFSResult struct {
	MTEPS           float64
	SimNs           int64
	VisitedVertices int64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// BFS runs the Graph500 BFS kernel.
func BFS(c BFSConfig) (BFSResult, error) {
	r, err := graph500.Run(graph500.Params{
		Lock: c.Lock.kind(), Binding: c.Binding.binding(),
		Procs: c.Procs, Threads: c.Threads, Scale: c.Scale, Seed: c.Seed,
		Fault: c.Fault.config(),
	})
	if err != nil {
		return BFSResult{}, err
	}
	return BFSResult{MTEPS: r.MTEPS, SimNs: r.SimNs,
		VisitedVertices: r.VisitedVertices, Net: netStats(r.Net)}, nil
}

// StencilConfig parametrizes the 3-D 7-point stencil kernel (paper §6.2.2).
type StencilConfig struct {
	Lock       Lock
	Procs      int
	Threads    int
	NX, NY, NZ int
	Iters      int
	Seed       uint64
	// Funneled uses the MPI_THREAD_FUNNELED structure (thread 0
	// communicates, lock-free runtime) instead of THREAD_MULTIPLE.
	Funneled bool
	// Partitioned moves the X/Y halo faces onto MPI-4 partitioned
	// channels: every thread publishes its slab rows with a lock-free
	// Pready and each face goes out as one aggregated transfer per
	// iteration. Incompatible with Funneled.
	Partitioned bool
	// Progress selects who drives the progress engine (docs/PROGRESS.md).
	// Incompatible with Funneled, which runs below MPI_THREAD_MULTIPLE.
	Progress ProgressMode
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
}

// StencilResult reports the stencil kernel.
type StencilResult struct {
	GFlops                      float64
	SimNs                       int64
	MPIPct, ComputePct, SyncPct float64
	Checksum                    float64
	// Net holds the resilient-transport counters.
	Net NetStats
	// Part holds the partitioned-communication counters (all zero unless
	// Partitioned was set).
	Part PartStats
}

// Stencil runs the 3-D stencil kernel.
func Stencil(c StencilConfig) (StencilResult, error) {
	r, err := stencil.Run(stencil.Params{
		Lock: c.Lock.kind(), Procs: c.Procs, Threads: c.Threads,
		NX: c.NX, NY: c.NY, NZ: c.NZ, Iters: c.Iters, Seed: c.Seed,
		Funneled: c.Funneled, Partitioned: c.Partitioned,
		Progress: c.Progress.mode(),
		Fault:    c.Fault.config(),
	})
	if err != nil {
		return StencilResult{}, err
	}
	return StencilResult{GFlops: r.GFlops, SimNs: r.SimNs, MPIPct: r.MPIPct,
		ComputePct: r.ComputePct, SyncPct: r.SyncPct, Checksum: r.Checksum,
		Net: netStats(r.Net), Part: partStats(r.Part)}, nil
}

// AssemblyConfig parametrizes the SWAP-style genome assembly application
// (paper §6.3).
type AssemblyConfig struct {
	Lock      Lock
	Procs     int
	GenomeLen int
	Reads     int
	Seed      uint64
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
}

// AssemblyResult reports the assembly run.
type AssemblyResult struct {
	SimNs       int64
	Contigs     int
	ContigBases int64
	N50         int
	// Net holds the resilient-transport counters.
	Net NetStats
}

// Assembly runs the genome assembly application.
func Assembly(c AssemblyConfig) (AssemblyResult, error) {
	r, err := genome.Run(genome.Params{
		Lock: c.Lock.kind(), Procs: c.Procs,
		GenomeLen: c.GenomeLen, Reads: c.Reads, Seed: c.Seed,
		Fault: c.Fault.config(),
	})
	if err != nil {
		return AssemblyResult{}, err
	}
	return AssemblyResult{SimNs: r.SimNs, Contigs: len(r.Contigs),
		ContigBases: r.ContigBases, N50: r.N50, Net: netStats(r.Net)}, nil
}

// Figure is a rendered experiment table.
type Figure struct {
	ID    string
	Title string
	Text  string
	// Chart is an ASCII rendering of the same series.
	Chart string
	// Data is the machine-readable form of the figure (nil for text-only
	// tables like table1). Data.Marshal() emits the flat JSON schema.
	Data *FigureData
}

// Experiments lists the runnable experiment ids (tables/figures of the
// paper plus ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates the given table/figure. quick shrinks the
// sweep for fast runs.
func RunExperiment(id string, quick bool) ([]Figure, error) {
	return RunExperimentSeeded(id, quick, 0)
}

// RunExperimentSeeded is RunExperiment with an explicit base RNG seed
// (0 = the default seed).
func RunExperimentSeeded(id string, quick bool, seed uint64) ([]Figure, error) {
	return RunExperimentMode(id, quick, seed, PollingProgress)
}

// RunExperimentMode is RunExperimentSeeded with an explicit progress mode
// for the experiments that honour it (the N2N-shaped figures; the
// progress experiment sweeps every mode itself). PollingProgress
// reproduces RunExperimentSeeded exactly.
func RunExperimentMode(id string, quick bool, seed uint64, progress ProgressMode) ([]Figure, error) {
	e, err := experiments.Get(id)
	if err != nil {
		return nil, err
	}
	if id == "table1" {
		return figuresFor(e, nil), nil
	}
	tables, err := e.Run(experiments.Options{Quick: quick, Seed: seed, Progress: progress.mode()})
	if err != nil {
		return nil, err
	}
	return figuresFor(e, tables), nil
}

// figuresFor converts an experiment's rendered tables to public Figures.
// It is the single table→Figure path, shared by the one-experiment entry
// points and the parallel Sweep, so both produce identical bytes.
func figuresFor(e experiments.Experiment, tables []*report.Table) []Figure {
	if e.ID == "table1" {
		// Table 1 is static machine-specification text, not a data series.
		return []Figure{{ID: "table1", Title: e.Title, Text: experiments.Table1Text()}}
	}
	figs := make([]Figure, 0, len(tables))
	for _, t := range tables {
		// Text renders through the FigureJSON roundtrip so the ASCII
		// table and the exported JSON are provably views of one dataset.
		data := telemetry.FigureFromTable(t)
		figs = append(figs, Figure{ID: t.ID, Title: t.Title,
			Text: data.ASCII(), Chart: t.Chart(), Data: data})
	}
	return figs
}

// PatternKind selects a scenario of the multithreaded MPI pattern battery
// (after Thakur & Gropp; paper §8 ref [27]).
type PatternKind int

// Battery scenarios.
const (
	// ConcurrentPairs pairs thread i of each rank.
	ConcurrentPairs PatternKind = iota
	// FanIn drives all sender threads into one receiver.
	FanIn
	// FanOut feeds all receiver threads from one sender.
	FanOut
	// ComputeOverlap interleaves computation with communication.
	ComputeOverlap
)

// PatternConfig parametrizes one battery run.
type PatternConfig struct {
	Lock     Lock
	Pattern  PatternKind
	Threads  int
	MsgBytes int64
	Msgs     int
	Seed     uint64
	// Fault injects network/scheduler faults (zero = perfect network).
	Fault FaultConfig
}

// PatternResult reports one battery run.
type PatternResult struct {
	RateMsgsPerSec float64
	SimNs          int64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// Pattern runs one scenario of the multithreaded pattern battery.
func Pattern(c PatternConfig) (PatternResult, error) {
	pat := workloads.PatternConcurrentPairs
	switch c.Pattern {
	case FanIn:
		pat = workloads.PatternFanIn
	case FanOut:
		pat = workloads.PatternFanOut
	case ComputeOverlap:
		pat = workloads.PatternComputeOverlap
	}
	r, err := workloads.RunPattern(workloads.PatternParams{
		Lock: c.Lock.kind(), Pattern: pat, Threads: c.Threads,
		MsgBytes: c.MsgBytes, Msgs: c.Msgs, Seed: c.Seed,
		Fault: c.Fault.config(),
	})
	if err != nil {
		return PatternResult{}, err
	}
	return PatternResult{RateMsgsPerSec: r.RateMsgsPerSec, SimNs: r.SimNs,
		Net: netStats(r.Net)}, nil
}

// RecoveryStrategy selects how survivors continue after a rank failure.
type RecoveryStrategy int

// Recovery strategies.
const (
	// Shrink is shrink-and-redistribute: survivors revoke, shrink to a new
	// communicator and continue forward with the dead rank's domain share.
	Shrink RecoveryStrategy = iota
	// Checkpoint is in-memory checkpoint/restart: survivors roll back to
	// the newest globally consistent checkpoint line and redo.
	Checkpoint
)

// RecoveryConfig parametrizes the fault-tolerant iterative workload.
type RecoveryConfig struct {
	Lock Lock
	// Procs is the rank count (default 4); ProcsPerNode packs ranks onto
	// nodes (default 1).
	Procs, ProcsPerNode int
	// Iters is the per-rank iteration count (default 64).
	Iters int
	// Strategy selects the recovery scheme (default Shrink).
	Strategy RecoveryStrategy
	// N2N switches the kernel from ring halo exchange to all-to-all.
	N2N bool
	// CkptInterval is the checkpoint period in iterations (default 8).
	CkptInterval int
	Seed         uint64
	// Fault carries the crash schedule the workload must survive.
	Fault FaultConfig
}

// RecoveryResult reports one fault-tolerant run.
type RecoveryResult struct {
	SimNs int64
	// Survivors is the rank count alive at the end; Checksum is the agreed
	// final reduction (the determinism witness).
	Survivors int
	Checksum  int64
	// DetectNs is the worst heartbeat detection latency; RecoverNs the
	// worst per-rank time inside recovery; Recoveries the recovery rounds
	// entered; ErrPathLocks the progress-lock acquisitions on the error
	// path.
	DetectNs, RecoverNs, Recoveries, ErrPathLocks int64
	// Net holds the resilient-transport counters.
	Net NetStats
}

// Recovery runs the fault-tolerant iterative workload: survivors detect the
// configured crashes, revoke and shrink the communicator (or roll back to a
// checkpoint) and finish the computation.
func Recovery(c RecoveryConfig) (RecoveryResult, error) {
	strat := workloads.RecoverShrink
	if c.Strategy == Checkpoint {
		strat = workloads.RecoverCheckpoint
	}
	kern := workloads.KernelRing
	if c.N2N {
		kern = workloads.KernelN2N
	}
	r, err := workloads.Recovery(workloads.RecoveryParams{
		Lock: c.Lock.kind(), Procs: c.Procs, ProcsPerNode: c.ProcsPerNode,
		Iters: c.Iters, Strategy: strat, Kernel: kern,
		CkptInterval: c.CkptInterval, Seed: c.Seed,
		Fault: c.Fault.config(),
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	return RecoveryResult{
		SimNs: r.SimNs, Survivors: r.Survivors, Checksum: r.Checksum,
		DetectNs: r.Recovery.DetectNs, RecoverNs: r.RecoverNs,
		Recoveries: r.Recoveries, ErrPathLocks: r.Recovery.ErrPathLocks,
		Net: netStats(r.Net),
	}, nil
}
