package mpisim

import (
	"mpicontend/internal/experiments"
	"mpicontend/internal/report"
	"mpicontend/internal/sweep"
)

// SweepConfig parametrizes a parallel experiment sweep: which experiments
// to regenerate, at what size and seed, across how many workers.
type SweepConfig struct {
	// IDs are the experiment ids to run, in emission order (nil or empty
	// = every registered experiment, sorted).
	IDs []string
	// Quick shrinks the sweeps as in RunExperiment.
	Quick bool
	// Seed is the base RNG seed (0 = default).
	Seed uint64
	// Jobs is the worker count: 1 runs everything serially on the calling
	// goroutine, <= 0 means one worker per CPU. Output is byte-identical
	// at every value — parallelism only changes wall-clock time.
	Jobs int
	// Progress sets the progress mode for experiments that honour it
	// (see RunExperimentMode). Default PollingProgress.
	Progress ProgressMode
}

// SweepResult is one experiment's rendered figures.
type SweepResult struct {
	ID      string
	Figures []Figure
}

// Sweep regenerates the configured experiments, fanning their independent
// simulation points across Jobs workers (each point builds its own engine
// and RNG from the seed), and returns the figures in IDs order. The
// result is byte-identical to running each experiment serially.
func Sweep(c SweepConfig) ([]SweepResult, error) {
	var out []SweepResult
	err := SweepFunc(c, func(r SweepResult) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// SweepFunc is Sweep in streaming form: emit is called exactly once per
// experiment, in IDs order, as soon as that experiment's figures are
// ready — workers keep crunching later experiments' points while earlier
// ones emit. emit may run on an internal worker goroutine, but never
// concurrently with itself. If a point fails, the experiments before the
// failing one still emit (the same prefix a serial run would print) and
// the first failure's error is returned.
func SweepFunc(c SweepConfig, emit func(SweepResult) error) error {
	ids := c.IDs
	if len(ids) == 0 {
		ids = Experiments()
	}
	jobs := c.Jobs
	if jobs <= 0 {
		jobs = sweep.DefaultWorkers()
	}
	o := experiments.Options{Quick: c.Quick, Seed: c.Seed, Progress: c.Progress.mode()}
	return experiments.RunAllFunc(ids, o, jobs,
		func(idx int, id string, tables []*report.Table) error {
			e, err := experiments.Get(id)
			if err != nil {
				return err
			}
			return emit(SweepResult{ID: id, Figures: figuresFor(e, tables)})
		})
}

// RunPoints exposes the sweep orchestrator for custom parameter studies:
// it executes run(0) .. run(n-1) across jobs workers (jobs 1 = serial,
// <= 0 = one per CPU) and returns the lowest failing index's error, if
// any. Each callback must be self-contained the way the library's own
// experiment points are — build a fresh config per index and let the
// facade construct its own engine — and then any jobs value yields
// identical results.
func RunPoints(jobs, n int, run func(i int) error) error {
	return sweep.Run(jobs, n, run)
}
