package mpisim

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestQuickOutputGolden pins the exact stdout of every experiment's
// -quick run: each experiment's emitted text (the same bytes cmd/mpistorm
// prints) is SHA-256-hashed and compared against the committed golden
// map. Any drift in simulation results, table formatting, series naming,
// or emission order fails here with a per-experiment diff of which ids
// moved — the quick-mode analogue of the full_run.txt parity check, cheap
// enough for every `go test` run.
//
// After an *intentional* output change, regenerate the goldens with
//
//	go test ./mpisim -run TestQuickOutputGolden -update
//
// and commit the rewritten testdata/quick_golden.txt alongside the change
// (see README.md).

var updateGolden = flag.Bool("update", false,
	"rewrite mpisim/testdata/quick_golden.txt from the current quick-run output")

const goldenPath = "testdata/quick_golden.txt"

// emitText renders a sweep result exactly as cmd/mpistorm's emit does.
func emitText(r SweepResult) string {
	var b strings.Builder
	for _, f := range r.Figures {
		fmt.Fprintf(&b, "== %s — %s ==\n%s\n", f.ID, f.Title, f.Text)
	}
	return b.String()
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create): %v", err)
	}
	defer f.Close()
	m := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("golden file: malformed line %q", line)
		}
		m[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuickOutputGolden(t *testing.T) {
	results, err := Sweep(SweepConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	var order []string
	for _, r := range results {
		got[r.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(emitText(r))))
		order = append(order, r.ID)
	}

	if *updateGolden {
		var b strings.Builder
		b.WriteString("# SHA-256 of each experiment's -quick stdout (see golden_test.go;\n")
		b.WriteString("# regenerate with: go test ./mpisim -run TestQuickOutputGolden -update)\n")
		for _, id := range order {
			fmt.Fprintf(&b, "%s %s\n", id, got[id])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d experiments)", goldenPath, len(order))
		return
	}

	want := readGolden(t)
	for _, id := range order {
		if _, ok := want[id]; !ok {
			t.Errorf("%s: not in golden file (new experiment? run -update)", id)
		}
	}
	for id, h := range want {
		switch g, ok := got[id]; {
		case !ok:
			t.Errorf("%s: in golden file but no longer produced", id)
		case g != h:
			t.Errorf("%s: quick output changed (golden %s.., got %s..) — if intentional, rerun with -update",
				id, h[:12], g[:12])
		}
	}
}
