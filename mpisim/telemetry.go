package mpisim

import (
	"mpicontend/internal/experiments"
	"mpicontend/internal/telemetry"
)

// Telemetry is the public handle on the deterministic observability
// plane: attach one to a benchmark config (or obtain one from
// TraceExperiment) and export the recording as a Perfetto trace and a
// contention profile. Recording keys entirely off the simulated clock, so
// same-seed runs export byte-identical artifacts. A nil *Telemetry means
// disabled and costs one pointer check per hook site.
type Telemetry struct {
	rec *telemetry.Recorder
}

// NewTelemetry returns an enabled telemetry plane.
func NewTelemetry() *Telemetry { return &Telemetry{rec: telemetry.New()} }

// recorder returns the underlying recorder (nil when t is nil).
func (t *Telemetry) recorder() *telemetry.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// PerfettoJSON exports the recording as Chrome trace_event JSON, loadable
// in ui.perfetto.dev.
func (t *Telemetry) PerfettoJSON() []byte { return t.recorder().Perfetto() }

// Profile derives the contention/progress/critical-path analysis.
func (t *Telemetry) Profile() *telemetry.Profile { return t.recorder().Profile() }

// ProfileJSON exports the derived profile as indented JSON.
func (t *Telemetry) ProfileJSON() ([]byte, error) { return t.recorder().Profile().Marshal() }

// ProfileText renders the derived profile as a deterministic text report.
func (t *Telemetry) ProfileText() string { return t.recorder().Profile().Text() }

// Spans returns the number of recorded spans.
func (t *Telemetry) Spans() int { return len(t.recorder().Spans()) }

// FigureData is the machine-readable form of a Figure (the flat JSON
// results schema shared by the telemetry exporter and mpistorm -json).
type FigureData = telemetry.FigureJSON

// TraceExperiment runs the traced representative point of an experiment
// with the telemetry plane attached and returns the recording plus a
// one-line description of the traced workload. The run is deterministic:
// the same (id, quick, seed) triple yields byte-identical PerfettoJSON
// and ProfileJSON output.
func TraceExperiment(id string, quick bool, seed uint64) (*Telemetry, string, error) {
	return TraceExperimentMode(id, quick, seed, PollingProgress)
}

// TraceExperimentMode is TraceExperiment with an explicit progress mode
// for the probes that honour it (the N2N-shaped ones). PollingProgress
// reproduces TraceExperiment exactly.
func TraceExperimentMode(id string, quick bool, seed uint64, progress ProgressMode) (*Telemetry, string, error) {
	t := NewTelemetry()
	desc, err := experiments.Probe(id,
		experiments.Options{Quick: quick, Seed: seed, Progress: progress.mode()}, t.rec)
	if err != nil {
		return nil, "", err
	}
	return t, desc, nil
}
