package mpisim

import (
	"sort"
	"testing"
)

// sweepIDs covers the no-point (table1), micro, and ablation families
// cheaply.
var sweepIDs = []string{"table1", "fig2b", "ablation-spin"}

// figureText flattens figures the way mpistorm prints them.
func figureText(figs []SweepResult) string {
	var s string
	for _, r := range figs {
		for _, f := range r.Figures {
			s += "== " + f.ID + " — " + f.Title + " ==\n" + f.Text + "\n" + f.Chart
		}
	}
	return s
}

// TestExperimentsSorted pins the -list contract: ids come back sorted and
// duplicate-free.
func TestExperimentsSorted(t *testing.T) {
	ids := Experiments()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("Experiments() not sorted: %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			t.Errorf("duplicate experiment id %q", ids[i])
		}
	}
}

// TestSweepMatchesSerial is the facade-level determinism contract: a
// parallel Sweep must be byte-identical to the serial one-experiment
// entry point.
func TestSweepMatchesSerial(t *testing.T) {
	var serial []SweepResult
	for _, id := range sweepIDs {
		figs, err := RunExperimentSeeded(id, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, SweepResult{ID: id, Figures: figs})
	}
	parallel, err := Sweep(SweepConfig{IDs: sweepIDs, Quick: true, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, got := figureText(serial), figureText(parallel)
	if want == "" {
		t.Fatal("empty serial output")
	}
	if got != want {
		t.Errorf("Sweep(jobs=8) differs from serial entry point:\n--- serial ---\n%s--- sweep ---\n%s", want, got)
	}
}

// TestSweepFuncStreams checks streaming emission order and the default-ID
// path plumbing (without running every experiment: explicit ids only).
func TestSweepFuncStreams(t *testing.T) {
	var order []string
	err := SweepFunc(SweepConfig{IDs: sweepIDs, Quick: true, Jobs: 4},
		func(r SweepResult) error {
			order = append(order, r.ID)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(sweepIDs) {
		t.Fatalf("%d emissions, want %d", len(order), len(sweepIDs))
	}
	for i, id := range order {
		if id != sweepIDs[i] {
			t.Fatalf("emission order %v, want %v", order, sweepIDs)
		}
	}
}

// TestRunPoints checks the exposed point pool visits every index once at
// several worker counts.
func TestRunPoints(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		hits := make([]int32, 37)
		err := RunPoints(jobs, len(hits), func(i int) error {
			hits[i]++ // distinct indices: no two workers share a slot
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, h)
			}
		}
	}
}
