package mpisim

import (
	"bytes"
	"strings"
	"testing"

	"mpicontend/internal/telemetry"
)

func TestTelemetryAttachedToFacade(t *testing.T) {
	tel := NewTelemetry()
	r, err := Throughput(ThroughputConfig{Lock: Mutex, Threads: 4,
		MsgBytes: 64, Windows: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages == 0 {
		t.Fatal("no messages")
	}
	if tel.Spans() == 0 {
		t.Fatal("telemetry attached but no spans recorded")
	}
	if err := telemetry.ValidateTrace(tel.PerfettoJSON()); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	prof, err := tel.ProfileJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateProfile(prof); err != nil {
		t.Fatalf("profile invalid: %v", err)
	}
	if !strings.Contains(tel.ProfileText(), "lock") {
		t.Fatal("profile text missing lock section")
	}
}

func TestTraceExperiment(t *testing.T) {
	t1, desc, err := TraceExperiment("fig8a", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if desc == "" || t1.Spans() == 0 {
		t.Fatalf("degenerate trace: desc=%q spans=%d", desc, t1.Spans())
	}
	t2, _, err := TraceExperiment("fig8a", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.PerfettoJSON(), t2.PerfettoJSON()) {
		t.Fatal("same-seed traces differ")
	}

	if _, _, err := TraceExperiment("fig99", true, 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFigureData(t *testing.T) {
	figs, err := RunExperimentSeeded("fig2b", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 || figs[0].Data == nil {
		t.Fatal("figure data missing")
	}
	f := figs[0]
	// The rendered text is exactly the ASCII view of the exported data.
	if f.Text != f.Data.ASCII() {
		t.Fatal("figure text diverged from its JSON form")
	}
	data, err := f.Data.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateFigure(data); err != nil {
		t.Fatalf("figure JSON invalid: %v", err)
	}
}
