package mpisim_test

import (
	"fmt"

	"mpicontend/mpisim"
)

// ExampleThroughput reproduces the paper's headline comparison: with eight
// threads hammering the runtime, FCFS arbitration outperforms the biased
// pthread mutex.
func ExampleThroughput() {
	run := func(lock mpisim.Lock) float64 {
		r, err := mpisim.Throughput(mpisim.ThroughputConfig{
			Lock: lock, Threads: 8, MsgBytes: 64, Windows: 4,
		})
		if err != nil {
			panic(err)
		}
		return r.RateMsgsPerSec
	}
	mutex, ticket := run(mpisim.Mutex), run(mpisim.Ticket)
	fmt.Println("ticket beats mutex:", ticket > mutex)
	// Output: ticket beats mutex: true
}

// ExampleThroughput_trace runs the §4.3 fairness analysis: the mutex's
// core-level bias factor is far above the fair value of 1.
func ExampleThroughput_trace() {
	r, err := mpisim.Throughput(mpisim.ThroughputConfig{
		Lock: mpisim.Mutex, Threads: 8, MsgBytes: 64, Windows: 4, Trace: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("mutex core bias > 1.5:", r.BiasCore > 1.5)
	// Output: mutex core bias > 1.5: true
}

// ExampleRMA shows the paper's most dramatic case: an asynchronous
// progress thread monopolizes a mutex-guarded runtime.
func ExampleRMA() {
	run := func(lock mpisim.Lock) float64 {
		r, err := mpisim.RMA(mpisim.RMAConfig{
			Lock: lock, Op: mpisim.Put, ElemBytes: 64, Ops: 6,
		})
		if err != nil {
			panic(err)
		}
		return r.RateElemPerSec
	}
	mutex, ticket := run(mpisim.Mutex), run(mpisim.Ticket)
	fmt.Println("fair arbitration at least 3x faster:", ticket > 3*mutex)
	// Output: fair arbitration at least 3x faster: true
}

// ExampleBFS runs the Graph500 kernel on a simulated four-node cluster.
func ExampleBFS() {
	r, err := mpisim.BFS(mpisim.BFSConfig{
		Lock: mpisim.Ticket, Procs: 4, Threads: 4, Scale: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("traversed a connected component:", r.VisitedVertices > 100)
	// Output: traversed a connected component: true
}

// ExampleStencil solves a small heat-equation problem and reports where
// the time went.
func ExampleStencil() {
	r, err := mpisim.Stencil(mpisim.StencilConfig{
		Lock: mpisim.Ticket, Procs: 2, Threads: 2,
		NX: 16, NY: 16, NZ: 16, Iters: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("breakdown covers everything:",
		r.MPIPct+r.ComputePct+r.SyncPct > 99.9)
	// Output: breakdown covers everything: true
}
