package report

import (
	"fmt"
	"strings"
)

// chart dimensions (rows x columns of the plotting area).
const (
	chartHeight = 16
	chartWidth  = 64
)

// seriesGlyphs mark data points of successive series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the table as an ASCII scatter chart: x values become
// ordinal columns (suitable for the log-spaced sweeps the figures use),
// y is linear from zero to the maximum. Each series gets a glyph; the
// legend maps glyphs to names.
func (t *Table) Chart() string {
	xs := t.xs()
	if len(xs) == 0 {
		return "(empty)\n"
	}
	ymax := 0.0
	for _, s := range t.Series {
		for _, p := range s.Points {
			if p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	col := func(x float64) int {
		for i, v := range xs {
			if v == x {
				if len(xs) == 1 {
					return 0
				}
				return i * (chartWidth - 1) / (len(xs) - 1)
			}
		}
		return 0
	}
	row := func(y float64) int {
		r := int(y / ymax * float64(chartHeight-1))
		if r < 0 {
			r = 0
		}
		if r > chartHeight-1 {
			r = chartHeight - 1
		}
		return chartHeight - 1 - r
	}

	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartWidth))
	}
	for si, s := range t.Series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			grid[row(p.Y)][col(p.X)] = g
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	}
	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = padLeft(formatNum(ymax), 10)
		case chartHeight - 1:
			label = padLeft("0", 10)
		case chartHeight / 2:
			label = padLeft(formatNum(ymax/2), 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", chartWidth) + "\n")
	fmt.Fprintf(&b, "%s x: %s from %s to %s (%d points, ordinal spacing)\n",
		strings.Repeat(" ", 11), t.XLabel, formatNum(xs[0]), formatNum(xs[len(xs)-1]), len(xs))
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%s %c = %s\n", strings.Repeat(" ", 11),
			seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

func padLeft(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
