package report

import (
	"strings"
	"testing"
)

func TestChartEmptyTable(t *testing.T) {
	tab := &Table{ID: "t", Title: "empty", XLabel: "x", YLabel: "y"}
	if got := tab.Chart(); got != "(empty)\n" {
		t.Fatalf("empty chart = %q, want %q", got, "(empty)\n")
	}
	// A series with no points is still empty.
	tab.AddSeries("a")
	if got := tab.Chart(); got != "(empty)\n" {
		t.Fatalf("pointless chart = %q, want %q", got, "(empty)\n")
	}
}

func TestChartAxisScaling(t *testing.T) {
	tab := &Table{ID: "figX", Title: "scale", XLabel: "bytes", YLabel: "rate"}
	s := tab.AddSeries("a")
	s.Add(1, 0)
	s.Add(2, 500)
	s.Add(4, 1000)
	out := tab.Chart()
	lines := strings.Split(out, "\n")

	// Header, then chartHeight plot rows labelled ymax / ymax/2 / 0.
	if !strings.HasPrefix(lines[0], "figX — scale") {
		t.Fatalf("missing title line: %q", lines[0])
	}
	plot := lines[1 : 1+chartHeight]
	if !strings.Contains(plot[0], "1000") {
		t.Errorf("top row should carry ymax label 1000: %q", plot[0])
	}
	if !strings.Contains(plot[chartHeight/2], "500") {
		t.Errorf("middle row should carry ymax/2 label 500: %q", plot[chartHeight/2])
	}
	if !strings.Contains(plot[chartHeight-1], "0") {
		t.Errorf("bottom row should carry 0 label: %q", plot[chartHeight-1])
	}
	// The maximum lands in the top row's plotting area, the minimum in
	// the bottom row's.
	if !strings.Contains(plot[0], "*") {
		t.Errorf("ymax point should plot in top row: %q", plot[0])
	}
	if !strings.Contains(plot[chartHeight-1], "*") {
		t.Errorf("y=0 point should plot in bottom row: %q", plot[chartHeight-1])
	}
	if !strings.Contains(out, "x: bytes from 1 to 4 (3 points, ordinal spacing)") {
		t.Errorf("missing x-axis summary: %q", out)
	}
}

func TestChartSinglePointColumnZero(t *testing.T) {
	tab := &Table{ID: "one", XLabel: "x"}
	tab.AddSeries("solo").Add(7, 42)
	out := tab.Chart()
	if !strings.Contains(out, "x: x from 7 to 7 (1 points, ordinal spacing)") {
		t.Fatalf("single-point axis summary wrong:\n%s", out)
	}
	// The sole point maps to column 0 of the top row.
	lines := strings.Split(out, "\n")
	top := lines[0] // no title → first line is the top plot row
	if !strings.HasSuffix(strings.TrimRight(top, " "), "|*") {
		t.Errorf("single point should sit at column 0 of top row: %q", top)
	}
}

func TestChartMultiSeriesGlyphsAndLegend(t *testing.T) {
	tab := &Table{ID: "m", XLabel: "x"}
	tab.AddSeries("first").Add(1, 10)
	tab.AddSeries("second").Add(2, 5)
	tab.AddSeries("third").Add(3, 1)
	out := tab.Chart()
	for _, want := range []string{" * = first", " o = second", " + = third"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend missing %q:\n%s", want, out)
		}
	}
	for _, g := range []string{"*", "o", "+"} {
		if strings.Count(out, g) < 2 { // plotted glyph + legend entry
			t.Errorf("glyph %q should appear in plot and legend", g)
		}
	}
}

func TestChartDeterministic(t *testing.T) {
	tab := &Table{ID: "d", Title: "det", XLabel: "x", YLabel: "y"}
	a := tab.AddSeries("a")
	b := tab.AddSeries("b")
	for i := 0; i < 8; i++ {
		a.Add(float64(i), float64(i*i))
		b.Add(float64(i), float64(64-i*i))
	}
	if tab.Chart() != tab.Chart() {
		t.Fatal("Chart not deterministic for identical input")
	}
}
