package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAndY(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.Y(2); !ok || y != 20 {
		t.Fatalf("Y(2) = %v %v", y, ok)
	}
	if _, ok := s.Y(3); ok {
		t.Fatal("Y(3) should be absent")
	}
}

func TestAddSeriesDedup(t *testing.T) {
	tb := &Table{}
	a := tb.AddSeries("x")
	b := tb.AddSeries("x")
	if a != b {
		t.Fatal("AddSeries should return the existing series")
	}
	if len(tb.Series) != 1 {
		t.Fatalf("series count %d", len(tb.Series))
	}
}

func TestFormatAlignmentAndContent(t *testing.T) {
	tb := &Table{ID: "figX", Title: "demo", XLabel: "bytes", YLabel: "rate"}
	m := tb.AddSeries("Mutex")
	m.Add(1, 100)
	m.Add(1024, 50.5)
	k := tb.AddSeries("Ticket")
	k.Add(1, 200)
	out := tb.Format()
	for _, want := range []string{"figX", "bytes", "Mutex", "Ticket", "100", "200", "50.5", "1024"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Missing point renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-point marker absent:\n%s", out)
	}
	// Rows share the same column structure.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	dataLines := lines[2:]
	width := len(dataLines[0])
	for _, l := range dataLines[1:] {
		if len(l) != width {
			t.Fatalf("ragged rows:\n%s", out)
		}
	}
}

func TestFormatSortsXs(t *testing.T) {
	tb := &Table{XLabel: "x"}
	s := tb.AddSeries("s")
	s.Add(100, 1)
	s.Add(1, 2)
	s.Add(50, 3)
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var xs []string
	for _, l := range lines[1:] { // skip header
		xs = append(xs, strings.Fields(l)[0])
	}
	want := []string{"1", "50", "100"}
	for i, w := range want {
		if xs[i] != w {
			t.Fatalf("x order = %v, want %v:\n%s", xs, want, out)
		}
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		5:      "5",
		1024:   "1024",
		0.5:    "0.5000",
		3.25:   "3.25",
		150.75: "150.8",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	a.Add(3, 30)
	b := &Series{Name: "b"}
	b.Add(1, 5)
	b.Add(2, 0) // division by zero skipped
	r := Ratio(a, b)
	if len(r.Points) != 1 || r.Points[0].Y != 2 {
		t.Fatalf("ratio = %+v", r.Points)
	}
}

func TestGeoMean(t *testing.T) {
	s := &Series{}
	s.Add(1, 2)
	s.Add(2, 8)
	if gm := GeoMean(s); math.Abs(gm-4) > 1e-9 {
		t.Fatalf("geomean = %v", gm)
	}
	if GeoMean(&Series{}) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	z := &Series{}
	z.Add(1, 0)
	if GeoMean(z) != 0 {
		t.Fatal("non-positive y should yield 0")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		s := &Series{}
		min, max := math.Inf(1), 0.0
		for i, v := range raw {
			y := float64(v) + 1
			s.Add(float64(i), y)
			if y < min {
				min = y
			}
			if y > max {
				max = y
			}
		}
		if len(s.Points) == 0 {
			return true
		}
		gm := GeoMean(s)
		return gm >= min-1e-9 && gm <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChartRendering(t *testing.T) {
	tb := &Table{ID: "figX", Title: "demo", XLabel: "bytes"}
	a := tb.AddSeries("Mutex")
	a.Add(1, 10)
	a.Add(64, 40)
	a.Add(1024, 90)
	b := tb.AddSeries("Ticket")
	b.Add(1, 20)
	b.Add(64, 80)
	out := tb.Chart()
	for _, want := range []string{"figX", "* = Mutex", "o = Ticket", "bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart lacks glyphs:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < chartHeight+3 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmpty(t *testing.T) {
	tb := &Table{}
	if out := tb.Chart(); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	tb := &Table{XLabel: "x"}
	tb.AddSeries("s").Add(5, 5)
	out := tb.Chart()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point missing:\n%s", out)
	}
}
