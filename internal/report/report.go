// Package report renders experiment results as the aligned text tables and
// series the cmd tools and EXPERIMENTS.md use, mirroring the rows/columns
// of the paper's figures.
//
// report is pure formatting with no simulation state; both the
// deterministic core and the driver shell use it (docs/ARCHITECTURE.md),
// and its output is part of the byte-identical determinism contract.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named line of a figure (e.g. "Mutex", "Ticket").
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Y returns the y value at x, or NaN-like zero and false when absent.
func (s *Series) Y(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table is a figure's data: several series over a shared x axis.
type Table struct {
	ID     string // experiment id, e.g. "fig8a"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates (or returns the existing) series with the given name.
func (t *Table) AddSeries(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// xs returns the sorted union of all x values.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", t.YLabel)
	}
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range t.xs() {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			if y, ok := s.Y(x); ok {
				row = append(row, formatNum(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatNum renders a float compactly: integers without decimals, small
// values with three significant decimals.
func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Ratio returns sa/sb evaluated pointwise at their shared x values.
func Ratio(sa, sb *Series) *Series {
	out := &Series{Name: sa.Name + "/" + sb.Name}
	for _, p := range sa.Points {
		if y, ok := sb.Y(p.X); ok && y != 0 {
			out.Add(p.X, p.Y/y)
		}
	}
	return out
}

// GeoMean returns the geometric mean of the series' y values (0 if empty
// or any y <= 0).
func GeoMean(s *Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	prod := 1.0
	for _, p := range s.Points {
		if p.Y <= 0 {
			return 0
		}
		prod *= p.Y
	}
	return math.Pow(prod, 1.0/float64(len(s.Points)))
}
