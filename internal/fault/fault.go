// Package fault implements a seeded, deterministic fault-injection plane
// for the simulated cluster. The fabric consults it on every wire packet
// (drop, duplicate, extra delay/reorder, NIC injection stalls, link
// brownouts that cut bandwidth) and the MPI runtime consults it for
// simthread "preemption" stalls injected while holding the runtime lock —
// the most contention-hostile perturbation the paper's critical-section
// analysis can face.
//
// All randomness comes from the plane's own generators, forked from a
// single seed, so a faulty run is exactly reproducible and — because the
// plane draws nothing when disabled — a fault-free run is byte-identical
// to a build without the plane at all.
//
// fault is part of the deterministic core (docs/ARCHITECTURE.md).
package fault

import (
	"fmt"
	"strings"

	"mpicontend/internal/sim"
)

// CrashSpec schedules one fail-stop process failure. The crashed rank
// stops executing, its NIC blackholes all traffic in both directions, and
// no peer is told — failure is observable only through silence, which the
// runtime's heartbeat detector turns into ErrProcFailed.
type CrashSpec struct {
	// Rank is the world rank to kill.
	Rank int
	// AtNs is the simulated time of the failure. With OnLockHold the
	// crash is deferred to the rank's first runtime critical-section
	// acquisition at or after AtNs, so the process dies while holding
	// the lock (the worst case for every arbitration scheme: the CS is
	// never released and every local waiter is stranded).
	AtNs int64
	// OnLockHold defers the crash to the next lock acquisition (above).
	OnLockHold bool
	// Node widens the failure domain: every rank placed on the same
	// node as Rank dies at the same instant (a node power loss).
	Node bool
}

// Config describes the fault scenario and the resilience tuning the MPI
// runtime uses to survive it. The zero value is a perfect network: no
// faults, no reliability layer, zero overhead.
type Config struct {
	// DropProb is the probability a wire packet is silently discarded
	// after injection (the NIC believes it was sent).
	DropProb float64
	// DupProb is the probability a wire packet is delivered twice, the
	// copy arriving DelayMaxNs-jittered after the original.
	DupProb float64
	// DelayProb is the probability a wire packet suffers extra latency,
	// uniform in [1, DelayMaxNs] — reordering packets behind it.
	DelayProb float64
	// DelayMaxNs bounds the extra latency (default 20µs when a delay or
	// duplication probability is set).
	DelayMaxNs int64

	// BrownoutPeriodNs > 0 enables periodic link brownouts: every period,
	// the inter-node links run at BrownoutFactor of nominal bandwidth for
	// BrownoutDurationNs.
	BrownoutPeriodNs   int64
	BrownoutDurationNs int64
	// BrownoutFactor is the bandwidth multiplier during a brownout
	// (0 < f < 1; default 0.25).
	BrownoutFactor float64

	// NICStallProb is the probability one injection stalls the NIC for
	// NICStallNs (serializing everything queued behind it).
	NICStallProb float64
	NICStallNs   int64

	// PreemptProb is the probability a thread is "preempted" for
	// PreemptNs immediately after acquiring a runtime critical-section
	// lock — the classic lock-holder-preemption pathology.
	PreemptProb float64
	PreemptNs   int64

	// Crashes schedules fail-stop process failures (rank or node scope).
	// A non-empty schedule arms the runtime's heartbeat failure detector;
	// an empty one arms zero timers, keeping fault-free runs
	// byte-identical.
	Crashes []CrashSpec
	// HeartbeatNs is the failure-detector heartbeat period (default
	// 100µs). Only consulted when Crashes is non-empty.
	HeartbeatNs int64
	// HeartbeatMiss is how many consecutive silent periods declare a
	// peer dead (default 3).
	HeartbeatMiss int

	// Resilient-transport tuning, consumed by the MPI runtime whenever
	// the plane is enabled.

	// RTONs is the base retransmit timeout (default 50µs); it doubles on
	// every retry up to 64x, with seeded jitter of up to RTONs/4.
	RTONs int64
	// MaxRetries bounds retransmissions per packet before the transport
	// gives up and surfaces an error (default 16).
	MaxRetries int
	// RequestTimeoutNs, when > 0, arms a per-request deadline: requests
	// not complete within it fail with an MPI-style timeout error
	// (rendezvous senders whose CTS never arrives, receives never
	// matched). Zero disables deadlines.
	RequestTimeoutNs int64
	// WatchdogNs, when > 0, runs the progress watchdog at this interval:
	// if outstanding requests exist but no packet was delivered, no
	// request completed and no retransmit fired for three consecutive
	// intervals, the run aborts with a dangling-request report.
	WatchdogNs int64

	// Seed drives the plane's private random streams; 0 derives it from
	// the world seed.
	Seed uint64
}

// Enabled reports whether the config perturbs the run at all — it gates
// both the injection hooks and the runtime's reliability layer.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.DelayProb > 0 ||
		c.BrownoutPeriodNs > 0 || c.NICStallProb > 0 || c.PreemptProb > 0 ||
		len(c.Crashes) > 0
}

// CrashesEnabled reports whether a crash schedule is configured — the
// gate for the heartbeat detector, liveness tracking and recovery
// machinery. Distinct from Enabled so lossy-but-crash-free scenarios pay
// none of the fault-tolerance bookkeeping.
func (c Config) CrashesEnabled() bool { return len(c.Crashes) > 0 }

// withDefaults fills unset tuning fields.
func (c Config) withDefaults(worldSeed uint64) Config {
	if c.DelayMaxNs <= 0 {
		c.DelayMaxNs = 20_000
	}
	if c.BrownoutFactor <= 0 || c.BrownoutFactor >= 1 {
		c.BrownoutFactor = 0.25
	}
	if c.BrownoutPeriodNs > 0 && c.BrownoutDurationNs <= 0 {
		c.BrownoutDurationNs = c.BrownoutPeriodNs / 4
	}
	if c.NICStallNs <= 0 {
		c.NICStallNs = 50_000
	}
	if c.PreemptNs <= 0 {
		c.PreemptNs = 30_000
	}
	if c.RTONs <= 0 {
		c.RTONs = 50_000
	}
	if len(c.Crashes) > 0 {
		if c.HeartbeatNs <= 0 {
			c.HeartbeatNs = 100_000
		}
		if c.HeartbeatMiss <= 0 {
			c.HeartbeatMiss = 3
		}
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 16
	}
	if c.Seed == 0 {
		c.Seed = worldSeed ^ 0xfadedfab0fabc0de
	}
	return c
}

// Verdict is the plane's decision for one wire packet.
type Verdict struct {
	// Drop discards the packet after injection.
	Drop bool
	// Duplicate delivers a second copy DupExtraNs after the original.
	Duplicate bool
	// ExtraNs is added to the delivery latency (reordering).
	ExtraNs int64
	// DupExtraNs is the duplicate copy's additional latency.
	DupExtraNs int64
	// StallNs is added to the injection time (NIC stall).
	StallNs int64
}

// Stats counts injected faults.
type Stats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
	NICStalls  int64
	Preempts   int64
	// BrownoutSends counts injections that hit a degraded link.
	BrownoutSends int64
	// Crashes counts executed fail-stop failures (ranks killed).
	Crashes int64
}

// String renders the counters compactly.
func (s Stats) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("dropped", s.Dropped)
	add("dup", s.Duplicated)
	add("delayed", s.Delayed)
	add("nicstall", s.NICStalls)
	add("preempt", s.Preempts)
	add("brownout", s.BrownoutSends)
	add("crash", s.Crashes)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Plane is an instantiated fault scenario. A nil *Plane is a valid,
// fully-disabled plane (every hook is nil-safe on the caller side).
type Plane struct {
	cfg Config
	// inject decides packet fates; jitter feeds transport backoff. Two
	// independent streams so adding transport retries never perturbs
	// which packets the scenario drops.
	inject *sim.Rand
	jitter *sim.Rand

	stats Stats
}

// New builds a plane from cfg, deriving unset tunables and seeding the
// random streams. It returns nil when the config is disabled, so callers
// can gate on plane != nil for a true zero-cost off switch.
func New(cfg Config, worldSeed uint64) *Plane {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults(worldSeed)
	root := sim.NewRand(cfg.Seed)
	return &Plane{cfg: cfg, inject: root.Fork(), jitter: root.Fork()}
}

// Config returns the effective (default-filled) configuration.
func (pl *Plane) Config() Config { return pl.cfg }

// Stats returns the fault counters injected so far.
func (pl *Plane) Stats() Stats { return pl.stats }

// Judge decides the fate of one wire packet about to be injected.
func (pl *Plane) Judge() Verdict {
	var v Verdict
	c := &pl.cfg
	if c.NICStallProb > 0 && pl.inject.Float64() < c.NICStallProb {
		v.StallNs = c.NICStallNs
		pl.stats.NICStalls++
	}
	if c.DropProb > 0 && pl.inject.Float64() < c.DropProb {
		v.Drop = true
		pl.stats.Dropped++
		// A dropped packet draws no further fates: its copy and delay
		// decisions would be unobservable noise in the stream.
		return v
	}
	if c.DelayProb > 0 && pl.inject.Float64() < c.DelayProb {
		v.ExtraNs = 1 + pl.inject.Int63n(c.DelayMaxNs)
		pl.stats.Delayed++
	}
	if c.DupProb > 0 && pl.inject.Float64() < c.DupProb {
		v.Duplicate = true
		v.DupExtraNs = 1 + pl.inject.Int63n(c.DelayMaxNs)
		pl.stats.Duplicated++
	}
	return v
}

// BandwidthFactor returns the inter-node bandwidth multiplier at virtual
// time now: 1 normally, Config.BrownoutFactor inside a brownout window.
// The schedule is pure time arithmetic — no randomness — so it is
// identical across runs and across send orders.
func (pl *Plane) BandwidthFactor(now sim.Time) float64 {
	c := &pl.cfg
	if c.BrownoutPeriodNs <= 0 {
		return 1
	}
	if now%c.BrownoutPeriodNs < c.BrownoutDurationNs {
		pl.stats.BrownoutSends++
		return c.BrownoutFactor
	}
	return 1
}

// PreemptStall returns how long the calling lock holder is preempted for
// (0 almost always). The MPI runtime calls this immediately after every
// critical-section acquisition.
func (pl *Plane) PreemptStall() sim.Time {
	c := &pl.cfg
	if c.PreemptProb > 0 && pl.inject.Float64() < c.PreemptProb {
		pl.stats.Preempts++
		return c.PreemptNs
	}
	return 0
}

// NoteCrash counts one executed fail-stop failure.
func (pl *Plane) NoteCrash() { pl.stats.Crashes++ }

// BackoffJitter returns a seeded jitter in [0, max] for retransmit
// backoff, from a stream independent of the injection decisions.
func (pl *Plane) BackoffJitter(max int64) int64 {
	if max <= 0 {
		return 0
	}
	return pl.jitter.Int63n(max + 1)
}
