package fault

import "testing"

func TestDisabledConfigYieldsNilPlane(t *testing.T) {
	if pl := New(Config{}, 42); pl != nil {
		t.Fatalf("zero config must disable the plane, got %+v", pl)
	}
	// Resilience tuning alone does not enable injection.
	if pl := New(Config{RTONs: 1000, MaxRetries: 3}, 42); pl != nil {
		t.Fatal("tuning-only config must disable the plane")
	}
}

func TestDefaultsFilled(t *testing.T) {
	pl := New(Config{DropProb: 0.1, BrownoutPeriodNs: 1000}, 42)
	c := pl.Config()
	if c.RTONs <= 0 || c.MaxRetries <= 0 || c.DelayMaxNs <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if c.BrownoutDurationNs != 250 {
		t.Fatalf("brownout duration default: got %d, want period/4", c.BrownoutDurationNs)
	}
	if c.BrownoutFactor != 0.25 {
		t.Fatalf("brownout factor default: got %v", c.BrownoutFactor)
	}
	if c.Seed == 0 {
		t.Fatal("seed must derive from the world seed")
	}
}

func TestJudgeDeterministic(t *testing.T) {
	cfg := Config{DropProb: 0.2, DupProb: 0.1, DelayProb: 0.3}
	a, b := New(cfg, 7), New(cfg, 7)
	for i := 0; i < 10_000; i++ {
		va, vb := a.Judge(), b.Judge()
		if va != vb {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, va, vb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestJudgeRates(t *testing.T) {
	pl := New(Config{DropProb: 0.5}, 99)
	drops := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if pl.Judge().Drop {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop rate %.3f far from configured 0.5", frac)
	}
	if pl.Stats().Dropped != int64(drops) {
		t.Fatalf("stats mismatch: %d vs %d", pl.Stats().Dropped, drops)
	}
}

func TestDroppedPacketDrawsNoFurtherFates(t *testing.T) {
	// With DropProb=1 every packet is dropped and no delay/dup decisions
	// are drawn, so two planes differing only in those probabilities
	// consume the stream identically.
	a := New(Config{DropProb: 1, DupProb: 0.9, DelayProb: 0.9}, 3)
	for i := 0; i < 1000; i++ {
		v := a.Judge()
		if !v.Drop || v.Duplicate || v.ExtraNs != 0 {
			t.Fatalf("dropped packet drew extra fates: %+v", v)
		}
	}
}

func TestBrownoutSchedule(t *testing.T) {
	pl := New(Config{BrownoutPeriodNs: 1000, BrownoutDurationNs: 100, BrownoutFactor: 0.5}, 5)
	if f := pl.BandwidthFactor(50); f != 0.5 {
		t.Fatalf("inside brownout window: factor %v", f)
	}
	if f := pl.BandwidthFactor(500); f != 1 {
		t.Fatalf("outside brownout window: factor %v", f)
	}
	if f := pl.BandwidthFactor(1050); f != 0.5 {
		t.Fatalf("next period's window: factor %v", f)
	}
	if pl.Stats().BrownoutSends != 2 {
		t.Fatalf("brownout sends: %d", pl.Stats().BrownoutSends)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	pl := New(Config{DropProb: 0.1}, 11)
	for i := 0; i < 1000; i++ {
		j := pl.BackoffJitter(100)
		if j < 0 || j > 100 {
			t.Fatalf("jitter %d out of [0,100]", j)
		}
	}
	if pl.BackoffJitter(0) != 0 {
		t.Fatal("jitter with max<=0 must be 0")
	}
}

func TestJitterStreamIndependentOfInjection(t *testing.T) {
	// Drawing jitter must not perturb the injection decisions: the
	// retransmit schedule cannot change which packets a scenario drops.
	cfg := Config{DropProb: 0.3}
	a, b := New(cfg, 7), New(cfg, 7)
	for i := 0; i < 5000; i++ {
		b.BackoffJitter(1000) // extra draws on b's jitter stream only
		if a.Judge() != b.Judge() {
			t.Fatalf("injection stream perturbed by jitter draws at %d", i)
		}
	}
}

func TestStatsString(t *testing.T) {
	if s := (Stats{}).String(); s != "none" {
		t.Fatalf("empty stats: %q", s)
	}
	s := Stats{Dropped: 3, Preempts: 1}.String()
	if s != "dropped=3 preempt=1" {
		t.Fatalf("stats string: %q", s)
	}
}
