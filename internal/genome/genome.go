// Package genome implements a SWAP-Assembler-style distributed genome
// assembly (paper §6.3): reads are decomposed into k-mers, a de Bruijn
// graph is built across processes by hashing k-mers to owners, and
// unitig chains are compacted into contigs. Following the paper's
// description of the SWAP framework, each process runs two threads — one
// sending and one receiving data with blocking MPI_Send/MPI_Recv — which is
// precisely the MPI_THREAD_MULTIPLE pattern whose lock contention the paper
// measures.
//
// genome is part of the deterministic core (docs/ARCHITECTURE.md).
package genome

import (
	"strings"

	"mpicontend/internal/sim"
)

// Bases in two-bit encoding.
const baseAlphabet = "ACGT"

// SynthesizeGenome returns a deterministic pseudo-random genome sequence.
func SynthesizeGenome(length int, seed uint64) string {
	rng := sim.NewRand(seed)
	var b strings.Builder
	b.Grow(length)
	for i := 0; i < length; i++ {
		b.WriteByte(baseAlphabet[rng.Intn(4)])
	}
	return b.String()
}

// SampleReads samples count reads of readLen bases from uniformly random
// positions of the genome (forward strand, error-free — substitutions
// would only add tips/bubbles the simple compactor ignores).
func SampleReads(genome string, readLen, count int, seed uint64) []string {
	rng := sim.NewRand(seed ^ 0xdeadbeef)
	reads := make([]string, 0, count)
	max := len(genome) - readLen
	if max < 1 {
		max = 1
	}
	for i := 0; i < count; i++ {
		at := rng.Intn(max)
		reads = append(reads, genome[at:at+readLen])
	}
	return reads
}

// Kmer is a 2-bit packed k-mer (k <= 31).
type Kmer uint64

// baseCode maps a nucleotide letter to its 2-bit code.
func baseCode(b byte) uint64 {
	switch b {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	default:
		return 3
	}
}

// PackKmer encodes s[0:k] as a Kmer.
func PackKmer(s string, k int) Kmer {
	var v uint64
	for i := 0; i < k; i++ {
		v = v<<2 | baseCode(s[i])
	}
	return Kmer(v)
}

// Shift appends base code b to the k-mer, dropping its oldest base.
func (m Kmer) Shift(b uint64, k int) Kmer {
	mask := (uint64(1) << uint(2*k)) - 1
	return Kmer((uint64(m)<<2 | b) & mask)
}

// String decodes the k-mer back to letters.
func (m Kmer) String(k int) string {
	buf := make([]byte, k)
	v := uint64(m)
	for i := k - 1; i >= 0; i-- {
		buf[i] = baseAlphabet[v&3]
		v >>= 2
	}
	return string(buf)
}

// Owner returns the rank owning the k-mer under a mixed hash.
func (m Kmer) Owner(nprocs int) int {
	z := uint64(m)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(nprocs))
}

// node is a de Bruijn graph vertex: which bases extend the k-mer on either
// side, and its multiplicity.
type node struct {
	count    int32
	outEdges uint8 // bitmask over base codes
	inEdges  uint8
}

func popcount4(m uint8) int {
	n := 0
	for i := uint(0); i < 4; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// outBase returns the single out-edge base code; call only when the out
// degree is exactly 1.
func (n *node) outBase() uint64 {
	for i := uint64(0); i < 4; i++ {
		if n.outEdges&(1<<i) != 0 {
			return i
		}
	}
	panic("genome: outBase on node without out edges")
}

// graphShard is the k-mer map owned by one process.
type graphShard struct {
	nodes map[Kmer]*node
}

func newShard() *graphShard { return &graphShard{nodes: make(map[Kmer]*node)} }

// insert records one k-mer observation with its neighbor bases (prev/next
// are base codes, or -1 at a read boundary).
func (g *graphShard) insert(m Kmer, prev, next int8) {
	n := g.nodes[m]
	if n == nil {
		n = &node{}
		g.nodes[m] = n
	}
	n.count++
	if next >= 0 {
		n.outEdges |= 1 << uint(next)
	}
	if prev >= 0 {
		n.inEdges |= 1 << uint(prev)
	}
}
