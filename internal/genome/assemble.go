package genome

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// Params configures an assembly run.
type Params struct {
	Lock    simlock.Kind
	Binding machine.Binding
	// Procs is the number of MPI processes; the paper runs four per node
	// with two threads each, filling all eight cores.
	Procs        int
	ProcsPerNode int
	GenomeLen    int
	ReadLen      int
	Reads        int
	K            int
	Seed         uint64
	// PerKmerNs is the compute cost per k-mer hashed/inserted.
	PerKmerNs int64
	// Batch is the number of k-mers per phase-1 message.
	Batch int
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
}

func (p Params) withDefaults() Params {
	if p.Procs <= 0 {
		p.Procs = 4
	}
	if p.ProcsPerNode <= 0 {
		p.ProcsPerNode = 4
	}
	if p.GenomeLen <= 0 {
		p.GenomeLen = 10000
	}
	if p.ReadLen <= 0 {
		p.ReadLen = 36 // paper: 36-nucleotide reads
	}
	if p.Reads <= 0 {
		p.Reads = 2000
	}
	if p.K <= 0 {
		p.K = 21
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.PerKmerNs <= 0 {
		p.PerKmerNs = 80
	}
	if p.Batch <= 0 {
		p.Batch = 256
	}
	return p
}

// Result reports an assembly run.
type Result struct {
	SimNs       int64
	Contigs     []string
	TotalKmers  int64 // k-mer observations processed in phase 1
	UniqueKmers int64
	ContigBases int64
	N50         int
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// Message kinds for the two phases.
const (
	tagWork  = 1 // phase-1 batches, phase-2 queries and done markers
	tagReply = 2 // phase-2 query replies (received by the walker thread)
)

type workMsg struct {
	kind    int // 1=batch, 2=phase1 done, 3=query, 4=phase2 done
	batch   []int64
	query   Kmer
	replyTo int
}

type replyMsg struct {
	exists        bool
	indeg, outdeg int
	outBase       uint64
}

// procState is the shared two-thread state of one process.
type procState struct {
	rank  int
	reads []string
	shard *graphShard

	phase1Done bool // receiver saw all done markers
	phase2Done bool
	barrier    *sim.Barrier

	contigs []string
}

// Run executes the assembly benchmark.
func Run(p Params) (Result, error) {
	p = p.withDefaults()
	var res Result

	if p.ProcsPerNode > p.Procs {
		p.ProcsPerNode = p.Procs // a partially filled single node
	}
	nodes := (p.Procs + p.ProcsPerNode - 1) / p.ProcsPerNode
	w, err := mpi.NewWorld(mpi.Config{
		Topo:         machine.Nehalem2x4(nodes),
		Lock:         p.Lock,
		Binding:      p.Binding,
		ProcsPerNode: p.ProcsPerNode,
		Seed:         p.Seed,
		Fault:        p.Fault,
		MaxWall:      p.MaxWall,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()

	genome := SynthesizeGenome(p.GenomeLen, p.Seed)
	reads := SampleReads(genome, p.ReadLen, p.Reads, p.Seed)

	states := make([]*procState, p.Procs)
	for r := 0; r < p.Procs; r++ {
		st := &procState{
			rank:    r,
			shard:   newShard(),
			barrier: &sim.Barrier{N: 2, Release: 200},
		}
		for i := r; i < len(reads); i += p.Procs {
			st.reads = append(st.reads, reads[i])
		}
		states[r] = st
	}

	var endAt int64
	for r := 0; r < p.Procs; r++ {
		st := states[r]
		w.Spawn(r, "walker", func(th *mpi.Thread) {
			senderThread(th, c, p, st)
			if th.S.Now() > endAt {
				endAt = th.S.Now()
			}
		})
		w.Spawn(r, "server", func(th *mpi.Thread) {
			receiverThread(th, c, p, st)
			if th.S.Now() > endAt {
				endAt = th.S.Now()
			}
		})
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("genome(%v,%d procs): %w", p.Lock, p.Procs, err)
	}

	res.SimNs = endAt
	for _, st := range states {
		res.Contigs = append(res.Contigs, st.contigs...)
		res.UniqueKmers += int64(len(st.shard.nodes))
		for _, n := range st.shard.nodes {
			res.TotalKmers += int64(n.count)
		}
	}
	lens := make([]int, 0, len(res.Contigs))
	for _, s := range res.Contigs {
		res.ContigBases += int64(len(s))
		lens = append(lens, len(s))
	}
	res.N50 = n50(lens, res.ContigBases)
	res.Net = w.NetStats()
	if p.Fault.Enabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("genome(%v,%d procs): %w", p.Lock, p.Procs, err)
		}
	}
	return res, nil
}

// n50 computes the standard N50 contig length statistic.
func n50(lens []int, total int64) int {
	// Insertion sort descending (contig lists are small).
	for i := 1; i < len(lens); i++ {
		for j := i; j > 0 && lens[j] > lens[j-1]; j-- {
			lens[j], lens[j-1] = lens[j-1], lens[j]
		}
	}
	var acc int64
	for _, l := range lens {
		acc += int64(l)
		if acc*2 >= total {
			return l
		}
	}
	return 0
}

// senderThread is the process's sending thread: phase 1 decomposes local
// reads into k-mers and ships them to their owners in batches with blocking
// sends; phase 2 walks unitig chains, querying remote shards.
func senderThread(th *mpi.Thread, c *mpi.Comm, p Params, st *procState) {
	k := p.K
	rank := st.rank
	batches := make([][]int64, p.Procs)

	flush := func(dst int) {
		if len(batches[dst]) == 0 {
			return
		}
		msg := &workMsg{kind: 1, batch: batches[dst]}
		th.Send(c, dst, tagWork, int64(len(batches[dst])*9), msg)
		batches[dst] = nil
	}

	// Phase 1: k-mer extraction and distribution.
	var kmers int64
	for _, read := range st.reads {
		if len(read) < k {
			continue
		}
		m := PackKmer(read, k)
		for i := 0; ; i++ {
			prev := int8(-1)
			if i > 0 {
				prev = int8(baseCode(read[i-1]))
			}
			next := int8(-1)
			if i+k < len(read) {
				next = int8(baseCode(read[i+k]))
			}
			kmers++
			dst := m.Owner(p.Procs)
			batches[dst] = append(batches[dst], int64(m), int64(prev)<<8|int64(uint8(next)))
			if len(batches[dst]) >= 2*p.Batch {
				th.S.Sleep(int64(p.Batch) * p.PerKmerNs)
				flush(dst)
			}
			if i+k >= len(read) {
				break
			}
			m = m.Shift(baseCode(read[i+k]), k)
		}
	}
	for dst := range batches {
		th.S.Sleep(int64(len(batches[dst])/2) * p.PerKmerNs)
		flush(dst)
	}
	for dst := 0; dst < p.Procs; dst++ {
		th.Send(c, dst, tagWork, 8, &workMsg{kind: 2})
	}
	// Wait for the local receiver to finish phase 1, then synchronize all
	// processes so every shard is complete before walking.
	st.barrier.Wait(th.S)
	th.Barrier(c)
	st.barrier.Wait(th.S)

	// Phase 2: walk unitig chains from local heads.
	lookup := func(m Kmer) (replyMsg, bool) {
		owner := m.Owner(p.Procs)
		if owner == rank {
			n := st.shard.nodes[m]
			if n == nil {
				return replyMsg{}, false
			}
			return replyMsg{exists: true, indeg: popcount4(n.inEdges),
				outdeg: popcount4(n.outEdges), outBase: safeOutBase(n)}, true
		}
		th.Send(c, owner, tagWork, 16, &workMsg{kind: 3, query: m, replyTo: rank})
		r := th.Recv(c, owner, tagReply).(*replyMsg)
		return *r, r.exists
	}
	maxLen := p.GenomeLen + p.K
	// Deterministic iteration order (Go map order is randomized, which
	// would break simulation reproducibility).
	keys := make([]Kmer, 0, len(st.shard.nodes))
	for m := range st.shard.nodes {
		keys = append(keys, m)
	}
	sortKmers(keys)
	for _, m := range keys {
		n := st.shard.nodes[m]
		indeg := popcount4(n.inEdges)
		outdeg := popcount4(n.outEdges)
		if indeg == 1 {
			// Chain-internal — unless the single predecessor branches,
			// in which case this node heads a post-branch chain.
			prevBase := uint64(0)
			for i := uint64(0); i < 4; i++ {
				if n.inEdges&(1<<i) != 0 {
					prevBase = i
				}
			}
			predK := Kmer(prevBase<<uint(2*(p.K-1)) | uint64(m)>>2)
			info, ok := lookup(predK)
			if ok && info.outdeg == 1 {
				continue // true chain-internal node
			}
		}
		contig := []byte(m.String(p.K))
		cur := m
		curOut := outdeg
		curBase := safeOutBase(n)
		for curOut == 1 && len(contig) < maxLen {
			nextK := cur.Shift(curBase, p.K)
			info, ok := lookup(nextK)
			if !ok || info.indeg != 1 {
				break
			}
			contig = append(contig, baseAlphabet[curBase])
			th.S.Sleep(p.PerKmerNs)
			cur = nextK
			curOut = info.outdeg
			curBase = info.outBase
		}
		st.contigs = append(st.contigs, string(contig))
	}
	// Tell every server the walker is done.
	for dst := 0; dst < p.Procs; dst++ {
		th.Send(c, dst, tagWork, 8, &workMsg{kind: 4})
	}
	st.barrier.Wait(th.S) // join the server before returning
}

// sortKmers sorts in place ascending (simple shell sort; stdlib sort would
// also do, this keeps the hot path allocation-free).
func sortKmers(ks []Kmer) {
	for gap := len(ks) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(ks); i++ {
			for j := i; j >= gap && ks[j-gap] > ks[j]; j -= gap {
				ks[j], ks[j-gap] = ks[j-gap], ks[j]
			}
		}
	}
}

// safeOutBase returns the out base when the out degree is 1, else 0.
func safeOutBase(n *node) uint64 {
	if popcount4(n.outEdges) == 1 {
		return n.outBase()
	}
	return 0
}

// receiverThread is the process's receiving thread: it serves phase-1
// batch inserts, then phase-2 chain queries, with blocking receives.
func receiverThread(th *mpi.Thread, c *mpi.Comm, p Params, st *procState) {
	// Phase 1: insert batches until every process said done.
	dones := 0
	for dones < p.Procs {
		v := th.Recv(c, mpi.AnySource, tagWork).(*workMsg)
		switch v.kind {
		case 1:
			th.S.Sleep(int64(len(v.batch)/2) * p.PerKmerNs)
			for i := 0; i+1 < len(v.batch); i += 2 {
				m := Kmer(v.batch[i])
				prev := int8(v.batch[i+1] >> 8)
				next := int8(uint8(v.batch[i+1]))
				st.shard.insert(m, prev, next)
			}
		case 2:
			dones++
		default:
			panic("genome: phase-2 message during phase 1")
		}
	}
	st.phase1Done = true
	st.barrier.Wait(th.S) // local sender may proceed to the global barrier
	st.barrier.Wait(th.S) // global barrier done; phase 2 begins

	// Phase 2: serve queries until every walker said done.
	dones = 0
	for dones < p.Procs {
		v := th.Recv(c, mpi.AnySource, tagWork).(*workMsg)
		switch v.kind {
		case 3:
			th.S.Sleep(p.PerKmerNs)
			var r replyMsg
			if n := st.shard.nodes[v.query]; n != nil {
				r = replyMsg{exists: true, indeg: popcount4(n.inEdges),
					outdeg: popcount4(n.outEdges), outBase: safeOutBase(n)}
			}
			th.Send(c, v.replyTo, tagReply, 16, &r)
		case 4:
			dones++
		default:
			panic("genome: unexpected phase-1 message during phase 2")
		}
	}
	st.phase2Done = true
	st.barrier.Wait(th.S)
}
