package genome

import (
	"strings"
	"testing"
	"testing/quick"

	"mpicontend/internal/simlock"
)

func TestKmerPackUnpack(t *testing.T) {
	f := func(seed uint64) bool {
		g := SynthesizeGenome(40, seed)
		k := 21
		m := PackKmer(g, k)
		return m.String(k) == g[:k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKmerShift(t *testing.T) {
	g := "ACGTACGTACGTACGTACGTACGTA"
	k := 21
	m := PackKmer(g, k)
	m = m.Shift(baseCode(g[k]), k)
	if m.String(k) != g[1:k+1] {
		t.Fatalf("shift mismatch: %s vs %s", m.String(k), g[1:k+1])
	}
}

func TestKmerOwnerInRange(t *testing.T) {
	f := func(v uint64, procsRaw uint8) bool {
		procs := 1 + int(procsRaw)%16
		o := Kmer(v).Owner(procs)
		return o >= 0 && o < procs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKmerOwnerSpreads(t *testing.T) {
	counts := make([]int, 4)
	g := SynthesizeGenome(5000, 1)
	for i := 0; i+21 <= len(g); i++ {
		counts[PackKmer(g[i:], 21).Owner(4)]++
	}
	for r, c := range counts {
		if c < 500 {
			t.Fatalf("owner %d got only %d kmers: %v", r, c, counts)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	if SynthesizeGenome(100, 5) != SynthesizeGenome(100, 5) {
		t.Fatal("genome synthesis not deterministic")
	}
	if SynthesizeGenome(100, 5) == SynthesizeGenome(100, 6) {
		t.Fatal("different seeds gave same genome")
	}
}

func TestReadsComeFromGenome(t *testing.T) {
	g := SynthesizeGenome(2000, 3)
	reads := SampleReads(g, 36, 100, 3)
	if len(reads) != 100 {
		t.Fatalf("read count %d", len(reads))
	}
	for _, r := range reads {
		if len(r) != 36 || !strings.Contains(g, r) {
			t.Fatalf("read %q not a genome substring", r)
		}
	}
}

func TestShardInsert(t *testing.T) {
	sh := newShard()
	m := PackKmer("ACGTACGTACGTACGTACGTA", 21)
	sh.insert(m, -1, int8(baseCode('G')))
	sh.insert(m, int8(baseCode('T')), int8(baseCode('G')))
	n := sh.nodes[m]
	if n.count != 2 {
		t.Fatalf("count = %d", n.count)
	}
	if popcount4(n.outEdges) != 1 || popcount4(n.inEdges) != 1 {
		t.Fatalf("edges: out=%b in=%b", n.outEdges, n.inEdges)
	}
	if n.outBase() != baseCode('G') {
		t.Fatalf("outBase = %d", n.outBase())
	}
}

func TestSortKmers(t *testing.T) {
	f := func(vals []uint64) bool {
		ks := make([]Kmer, len(vals))
		for i, v := range vals {
			ks[i] = Kmer(v)
		}
		sortKmers(ks)
		for i := 1; i < len(ks); i++ {
			if ks[i-1] > ks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssemblyContigsAreGenomeSubstrings(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Procs: 4, GenomeLen: 4000,
		Reads: 900, Seed: 7}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	g := SynthesizeGenome(4000, 7)
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs assembled")
	}
	for _, ctg := range res.Contigs {
		if !strings.Contains(g, ctg) {
			t.Fatalf("contig %q... (len %d) not in genome", ctg[:min(30, len(ctg))], len(ctg))
		}
	}
	// With ~8x coverage most of the genome should be assembled.
	if res.ContigBases < int64(res.UniqueKmers)/2 {
		t.Fatalf("assembled only %d bases for %d unique kmers",
			res.ContigBases, res.UniqueKmers)
	}
	t.Logf("contigs=%d bases=%d N50=%d unique=%d", len(res.Contigs),
		res.ContigBases, res.N50, res.UniqueKmers)
}

func TestAssemblyAllLocksAgree(t *testing.T) {
	var sums []int64
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		p := Params{Lock: k, Procs: 4, GenomeLen: 2000, Reads: 400, Seed: 11}
		res, err := Run(p)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		sums = append(sums, res.ContigBases)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("contig bases differ across locks: %v", sums)
	}
}

func TestAssemblySingleProc(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Procs: 1, ProcsPerNode: 1,
		GenomeLen: 1500, Reads: 400, Seed: 13}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 || res.SimNs == 0 {
		t.Fatalf("degenerate: %+v", res.SimNs)
	}
}

func TestAssemblyDeterministic(t *testing.T) {
	p := Params{Lock: simlock.KindMutex, Procs: 2, ProcsPerNode: 2,
		GenomeLen: 1500, Reads: 300, Seed: 17}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs || a.ContigBases != b.ContigBases {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.SimNs, a.ContigBases, b.SimNs, b.ContigBases)
	}
}

// TestAssemblyFairLocksFaster reproduces Fig. 12b's shape: the two-thread
// blocking send/recv pattern speeds up ~2x with fair arbitration.
func TestAssemblyFairLocksFaster(t *testing.T) {
	run := func(k simlock.Kind) int64 {
		res, err := Run(Params{Lock: k, Procs: 4, GenomeLen: 4000, Reads: 800, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimNs
	}
	m, tk := run(simlock.KindMutex), run(simlock.KindTicket)
	t.Logf("assembly time: mutex %dus ticket %dus (speedup %.2fx)",
		m/1000, tk/1000, float64(m)/float64(tk))
	if tk >= m {
		t.Errorf("ticket (%d) should be faster than mutex (%d)", tk, m)
	}
}

func TestN50(t *testing.T) {
	if got := n50([]int{10, 5, 3, 2}, 20); got != 10 {
		t.Fatalf("n50 = %d, want 10", got)
	}
	if got := n50([]int{4, 4, 4, 4, 4}, 20); got != 4 {
		t.Fatalf("n50 = %d, want 4", got)
	}
	if got := n50(nil, 0); got != 0 {
		t.Fatalf("n50(empty) = %d", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
