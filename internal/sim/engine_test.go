package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine(1)
	if err := e.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved with no events: %d", e.Now())
	}
}

func TestEngineEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // same time: insertion order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestThreadSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Spawn("a", func(th *Thread) {
		times = append(times, th.Now())
		th.Sleep(100)
		times = append(times, th.Now())
		th.Sleep(50)
		times = append(times, th.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 0 || times[1] != 100 || times[2] != 150 {
		t.Fatalf("times = %v", times)
	}
}

func TestThreadInterleaving(t *testing.T) {
	e := NewEngine(1)
	var log []string
	e.Spawn("a", func(th *Thread) {
		log = append(log, "a0")
		th.Sleep(10)
		log = append(log, "a10")
		th.Sleep(20)
		log = append(log, "a30")
	})
	e.Spawn("b", func(th *Thread) {
		log = append(log, "b0")
		th.Sleep(15)
		log = append(log, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var got Time
	var waiter *Thread
	waiter = e.Spawn("waiter", func(th *Thread) {
		th.Park()
		got = th.Now()
	})
	e.Spawn("waker", func(th *Thread) {
		th.Sleep(500)
		waiter.Unpark(th.Now() + 25)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 525 {
		t.Fatalf("waiter resumed at %d, want 525", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(th *Thread) { th.Park() })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestStopTerminatesParkedThreads(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(th *Thread) { th.Park() })
	e.At(100, func() { e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatalf("stop should not be an error: %v", err)
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine(1)
	e.MaxEvents = 10
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	if err := e.Run(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var wq WaitQueue
	var order []string
	mk := func(name string, delay Time) {
		e.Spawn(name, func(th *Thread) {
			th.Sleep(delay)
			wq.Wait(th)
			order = append(order, name)
		})
	}
	mk("first", 1)
	mk("second", 2)
	mk("third", 3)
	e.Spawn("waker", func(th *Thread) {
		th.Sleep(10)
		for i := 0; i < 3; i++ {
			wq.WakeOne(th.Now())
			th.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine(1)
	b := &Barrier{N: 3, Release: 5}
	var done []Time
	for i := 0; i < 3; i++ {
		d := Time(10 * (i + 1))
		e.Spawn("t", func(th *Thread) {
			th.Sleep(d)
			b.Wait(th)
			done = append(done, th.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Last arrives at 30; everyone resumes at 35.
	for _, d := range done {
		if d != 35 {
			t.Fatalf("done times = %v, want all 35", done)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(1)
	b := &Barrier{N: 2}
	count := 0
	for i := 0; i < 2; i++ {
		e.Spawn("t", func(th *Thread) {
			for k := 0; k < 5; k++ {
				th.Sleep(Time(1 + th.ID()))
				b.Wait(th)
				count++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestMailbox(t *testing.T) {
	e := NewEngine(1)
	var mb Mailbox
	var got []int
	e.Spawn("recv", func(th *Thread) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(th).(int))
		}
	})
	e.Spawn("send", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Sleep(10)
			mb.Put(th.Now(), i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + r.Intn(100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []Time {
		e := NewEngine(seed)
		var trace []Time
		var wq WaitQueue
		for i := 0; i < 4; i++ {
			e.Spawn("worker", func(th *Thread) {
				for k := 0; k < 20; k++ {
					th.Sleep(Time(e.Rand().Intn(50)))
					trace = append(trace, th.Now())
					if e.Rand().Intn(3) == 0 && wq.Len() > 0 {
						wq.WakeOne(th.Now())
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.AtTimer(100, func() { fired = true })
	e.At(50, func() { tm.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.When() != 100 {
		t.Fatalf("When() = %d", tm.When())
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.AtTimer(10, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tm.Cancel() // must be safe post-fire
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine(1)
	var started Time = -1
	e.SpawnAt(500, "late", func(th *Thread) { started = th.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 500 {
		t.Fatalf("started at %d", started)
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	e := NewEngine(1)
	var wq WaitQueue
	d := e.Spawn("daemon", func(th *Thread) {
		th.SetDaemon()
		for {
			wq.Wait(th)
		}
	})
	_ = d
	e.Spawn("app", func(th *Thread) { th.Sleep(100) })
	if err := e.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
}

func TestUnparkCancel(t *testing.T) {
	e := NewEngine(1)
	var waiter *Thread
	resumed := false
	waiter = e.Spawn("w", func(th *Thread) {
		th.Park()
		resumed = true
	})
	e.Spawn("controller", func(th *Thread) {
		th.Sleep(10)
		waiter.Unpark(th.Now() + 100)
		waiter.UnparkCancel()
		th.Sleep(500)
		waiter.Unpark(th.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("waiter never resumed")
	}
}

func TestAfterScheduling(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Fatalf("After fired at %d", at)
	}
}

func TestEventsRunCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.EventsRun() != 5 {
		t.Fatalf("EventsRun = %d", e.EventsRun())
	}
}

func TestWaitQueueRemove(t *testing.T) {
	e := NewEngine(1)
	var wq WaitQueue
	var a *Thread
	woken := false
	a = e.Spawn("a", func(th *Thread) {
		th.Park() // parked directly; removed from queue by controller
		woken = true
	})
	e.Spawn("ctl", func(th *Thread) {
		th.Sleep(10)
		wq.q = append(wq.q, a)
		if !wq.Remove(a) {
			t.Error("Remove missed present thread")
		}
		if wq.Remove(a) {
			t.Error("Remove found absent thread")
		}
		a.Unpark(th.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("a never woke")
	}
}

func TestMailboxTryGet(t *testing.T) {
	var mb Mailbox
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	e := NewEngine(1)
	e.At(0, func() {
		mb.Put(0, "x")
		mb.Put(0, "y")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := mb.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %v %v", v, ok)
	}
	if mb.Len() != 1 {
		t.Fatalf("Len = %d", mb.Len())
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams overlap: %d identical draws", same)
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) should panic")
		}
	}()
	NewRand(1).Int63n(0)
}
