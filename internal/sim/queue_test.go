package sim

import (
	"fmt"
	"testing"
)

// This file property-tests the timer-wheel event core against a reference
// scheduler: a naive unsorted list whose pop scans for the minimum
// (when, seq). Both sides execute the same pseudo-random program of
// At/After/AtTimer/Cancel/Spawn operations; the observable firing logs
// (event id @ virtual time, in order) must match entry-for-entry. Any
// divergence in tie-breaking, cascade order, far-heap hand-over, or
// cancel semantics shows up as a log mismatch.

// --- reference scheduler ---

type refEv struct {
	when      Time
	seq       uint64
	id        int
	step      int // -1 plain event, 0 spawn start, n>0 wake after sleep n-1
	cancelled bool
	fired     bool
}

type refSched struct {
	now Time
	seq uint64
	evs []*refEv
}

func (s *refSched) push(when Time, id, step int) *refEv {
	if when < s.now {
		when = s.now
	}
	ev := &refEv{when: when, seq: s.seq, id: id, step: step}
	s.seq++
	s.evs = append(s.evs, ev)
	return ev
}

func (s *refSched) pop() *refEv {
	best := -1
	for i, ev := range s.evs {
		if best < 0 || ev.when < s.evs[best].when ||
			(ev.when == s.evs[best].when && ev.seq < s.evs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ev := s.evs[best]
	s.evs = append(s.evs[:best], s.evs[best+1:]...)
	return ev
}

// --- shared program ---

const (
	opAt = iota
	opAfter
	opAtTimer
	opSpawn
	opKinds
)

type childSpec struct {
	kind  int
	delta Time
	steps []Time // spawn: sleep durations between logged wakes
}

type evProgram struct {
	children   []childSpec
	cancelPick int64 // >=0: cancel the (pick % created)-th timer after firing
}

// genDelta spreads offsets across every queue regime: same-tick ties,
// level-0 slots, each higher wheel level, and far-heap region hops.
func genDelta(r *Rand) Time {
	switch r.Int63n(7) {
	case 0:
		return 0
	case 1:
		return r.Int63n(4)
	case 2:
		return r.Int63n(1 << 6)
	case 3:
		return r.Int63n(1 << 12)
	case 4:
		return r.Int63n(1 << 18)
	case 5:
		return r.Int63n(1 << 24)
	default:
		return r.Int63n(1 << 26)
	}
}

func genPrograms(seed uint64, n int) []evProgram {
	r := NewRand(seed)
	progs := make([]evProgram, n)
	for i := range progs {
		nc := int(r.Int63n(3))
		for c := 0; c < nc; c++ {
			spec := childSpec{kind: int(r.Int63n(opKinds)), delta: genDelta(r)}
			if spec.kind == opSpawn {
				for s := int64(0); s < r.Int63n(3); s++ {
					spec.steps = append(spec.steps, genDelta(r))
				}
			}
			progs[i].children = append(progs[i].children, spec)
		}
		if r.Int63n(100) < 30 {
			progs[i].cancelPick = r.Int63n(1 << 30)
		} else {
			progs[i].cancelPick = -1
		}
	}
	return progs
}

// --- engine side ---

type engSide struct {
	eng    *Engine
	progs  []evProgram
	steps  map[int][]Time
	timers []*Timer
	log    []string
	nextID int
	budget int
}

func (h *engSide) create(c childSpec) {
	id := h.nextID
	h.nextID++
	now := h.eng.Now()
	switch c.kind {
	case opAt:
		h.eng.At(now+c.delta, func() { h.fire(id) })
	case opAfter:
		h.eng.After(c.delta, func() { h.fire(id) })
	case opAtTimer:
		h.timers = append(h.timers, h.eng.AtTimer(now+c.delta, func() { h.fire(id) }))
	case opSpawn:
		h.steps[id] = c.steps
		h.eng.SpawnAt(now+c.delta, fmt.Sprintf("w%d", id), func(t *Thread) {
			h.fire(id)
			for i, d := range h.steps[id] {
				t.Sleep(d)
				h.log = append(h.log, fmt.Sprintf("%d.%d@%d", id, i, t.Now()))
			}
		})
	}
}

func (h *engSide) fire(id int) {
	h.log = append(h.log, fmt.Sprintf("%d@%d", id, h.eng.Now()))
	p := h.progs[id%len(h.progs)]
	for _, c := range p.children {
		if h.budget <= 0 {
			break
		}
		h.budget--
		h.create(c)
	}
	if p.cancelPick >= 0 && len(h.timers) > 0 {
		h.timers[int(p.cancelPick)%len(h.timers)].Cancel()
	}
}

// --- model side ---

type modelSide struct {
	sched  refSched
	progs  []evProgram
	steps  map[int][]Time
	timers []*refEv
	log    []string
	nextID int
	budget int
}

func (m *modelSide) create(c childSpec) {
	id := m.nextID
	m.nextID++
	switch c.kind {
	case opAt, opAfter:
		m.sched.push(m.sched.now+c.delta, id, -1)
	case opAtTimer:
		m.timers = append(m.timers, m.sched.push(m.sched.now+c.delta, id, -1))
	case opSpawn:
		m.steps[id] = c.steps
		m.sched.push(m.sched.now+c.delta, id, 0)
	}
}

func (m *modelSide) fire(id int) {
	m.log = append(m.log, fmt.Sprintf("%d@%d", id, m.sched.now))
	p := m.progs[id%len(m.progs)]
	for _, c := range p.children {
		if m.budget <= 0 {
			break
		}
		m.budget--
		m.create(c)
	}
	if p.cancelPick >= 0 && len(m.timers) > 0 {
		tm := m.timers[int(p.cancelPick)%len(m.timers)]
		if !tm.fired {
			tm.cancelled = true
		}
	}
}

func (m *modelSide) run(t *testing.T) {
	for {
		ev := m.sched.pop()
		if ev == nil {
			return
		}
		if ev.cancelled {
			continue
		}
		if ev.when < m.sched.now {
			t.Fatalf("model time went backwards: %d < %d", ev.when, m.sched.now)
		}
		ev.fired = true
		m.sched.now = ev.when
		switch {
		case ev.step < 0:
			m.fire(ev.id)
		case ev.step == 0:
			// Spawned thread starts: runs its program, then its first
			// Sleep schedules the next wake.
			m.fire(ev.id)
			if len(m.steps[ev.id]) > 0 {
				m.sched.push(m.sched.now+m.steps[ev.id][0], ev.id, 1)
			}
		default:
			m.log = append(m.log, fmt.Sprintf("%d.%d@%d", ev.id, ev.step-1, m.sched.now))
			if steps := m.steps[ev.id]; ev.step < len(steps) {
				m.sched.push(m.sched.now+steps[ev.step], ev.id, ev.step+1)
			}
		}
	}
}

// checkSchedulerMatchesReference runs the same random program through the
// real engine and the reference scheduler and requires identical logs.
func checkSchedulerMatchesReference(t *testing.T, seed uint64, budget int) {
	t.Helper()
	progs := genPrograms(seed, 97)

	eng := NewEngine(seed)
	e := &engSide{eng: eng, progs: progs, steps: map[int][]Time{}, budget: budget}
	m := &modelSide{progs: progs, steps: map[int][]Time{}, budget: budget}

	// Identical roots on both sides (a fresh rand stream per side would
	// not survive the engine consuming randomness elsewhere).
	rootRand := NewRand(seed + 1)
	for i := 0; i < 12; i++ {
		c := childSpec{kind: int(rootRand.Int63n(opKinds)), delta: genDelta(rootRand)}
		if c.kind == opSpawn {
			c.steps = []Time{genDelta(rootRand)}
		}
		e.budget--
		e.create(c)
		m.budget--
		m.create(c)
	}

	if err := eng.Run(); err != nil {
		t.Fatalf("seed %d: engine: %v", seed, err)
	}
	m.run(t)

	if len(e.log) != len(m.log) {
		t.Fatalf("seed %d: engine fired %d events, reference %d\nengine tail: %v\nmodel tail: %v",
			seed, len(e.log), len(m.log), tail(e.log), tail(m.log))
	}
	for i := range e.log {
		if e.log[i] != m.log[i] {
			t.Fatalf("seed %d: divergence at entry %d: engine %q, reference %q",
				seed, i, e.log[i], m.log[i])
		}
	}
	if e.eng.q.live != 0 || e.eng.q.dead != 0 {
		t.Fatalf("seed %d: queue not drained after Run: live=%d dead=%d",
			seed, e.eng.q.live, e.eng.q.dead)
	}
}

func tail(s []string) []string {
	if len(s) > 5 {
		return s[len(s)-5:]
	}
	return s
}

func TestSchedulerMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkSchedulerMatchesReference(t, seed, 2500)
		})
	}
}

// FuzzSchedulerMatchesReference lets the fuzzer hunt for interleavings the
// fixed seeds miss (go test runs the corpus; -fuzz explores further).
func FuzzSchedulerMatchesReference(f *testing.F) {
	f.Add(uint64(42))
	f.Add(uint64(1 << 33))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkSchedulerMatchesReference(t, seed, 600)
	})
}

// TestCancelHeavyQueueBounded is the regression test for the lazy-cancel
// leak: before compaction existed, every cancelled timer stayed reachable
// in the heap until its (possibly far-future) pop, so cancel-heavy
// workloads — e.g. the reliable transport cancelling one retransmit timer
// per ACK — accumulated unbounded dead events. Compaction must keep the
// dead population bounded by the live one (plus the constant floor).
func TestCancelHeavyQueueBounded(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	r := NewRand(7)
	var live []*Timer
	for round := 0; round < 200; round++ {
		// Arm a batch of far-future timers, then cancel almost all of
		// them — the ACK-cancels-retransmit pattern.
		for i := 0; i < 100; i++ {
			live = append(live, eng.AtTimer(Time(1_000_000+round*10_000+i*7), func() { fired++ }))
		}
		for len(live) > 3 {
			k := int(r.Int63n(int64(len(live))))
			live[k].Cancel()
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if total := eng.q.len(); total > eng.q.live+compactMinDead {
			t.Fatalf("round %d: %d events queued for %d live — cancelled events leaking (dead=%d)",
				round, total, eng.q.live, eng.q.dead)
		}
	}
	remaining := eng.q.live
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != remaining {
		t.Fatalf("fired %d of %d surviving timers", fired, remaining)
	}
	if fired >= 200*100/2 {
		t.Fatalf("test defeated itself: %d timers survived cancellation", fired)
	}
}
