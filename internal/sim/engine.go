// Package sim implements a deterministic discrete-event simulator with
// cooperative simulated threads ("simthreads").
//
// The engine owns a virtual clock measured in integer nanoseconds and an
// event queue ordered by (time, sequence). Exactly one simthread executes at
// any moment; a simthread runs until it blocks (Sleep, Park) or returns, at
// which point control transfers back to the engine, which dispatches the
// next event. Ties are broken by insertion order, so a simulation with a
// fixed seed is fully reproducible.
//
// Simthreads are backed by goroutines but synchronized with a baton
// hand-off, so the simulation is sequential and race-free by construction.
//
// sim is the foundation of the deterministic core (docs/ARCHITECTURE.md)
// and the only core package allowed goroutines — everything above it gets
// concurrency exclusively through this scheduler.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time = int64

// Engine is a deterministic discrete-event simulation engine. The zero value
// is not usable; create engines with NewEngine.
type Engine struct {
	now Time
	seq uint64
	q   eventQueue
	rng *Rand

	threads []*Thread
	running *Thread // thread currently holding the baton, nil if engine runs
	baton   chan struct{}

	kill      chan struct{} // closed on shutdown; parked threads abort
	stopped   bool
	eventsRun uint64

	// MaxEvents aborts the run when exceeded (safety against runaway
	// simulations). Zero means no limit.
	MaxEvents uint64
	// MaxTime aborts the run once the clock passes it. Zero means no limit.
	MaxTime Time
	// MaxWall aborts the run with a thread-state dump once Run has
	// consumed this much real (wall-clock) time — a watchdog so chaos
	// soaks and runaway simulations cannot hang CI. Zero means no limit.
	// The check runs every wallCheckEvery events, so very cheap events
	// may overshoot the budget slightly.
	MaxWall time.Duration

	// OnThreadState, when set, observes every simthread scheduling-state
	// transition (the telemetry plane's sched track). Purely
	// observational: it must not touch engine state.
	OnThreadState func(t *Thread, s ThreadState)
}

// wallCheckEvery is how many events pass between wall-clock watchdog
// checks; a power of two keeps the modulo a mask.
const wallCheckEvery = 1024

// NewEngine returns an engine whose random stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   NewRand(seed),
		baton: make(chan struct{}),
		kill:  make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *Rand { return e.rng }

// EventsRun reports how many events have been dispatched so far.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// schedule allocates a pooled event at time t (clamped to now) and queues
// it. The caller fills in exactly one callback field afterwards; nothing
// fires until Run resumes, so late binding is safe.
func (e *Engine) schedule(t Time) *event {
	if t < e.now {
		t = e.now
	}
	ev := e.q.newEvent()
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.q.push(ev)
	return ev
}

// At schedules fn to run at virtual time t (>= Now). fn runs in engine
// context and must not block; use Spawn for blocking activities.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t).fn = fn
}

// AtArg schedules fn(arg) at virtual time t. It is the allocation-free
// variant of At for the common "one callback, one operand" pattern: the
// caller reuses a long-lived fn and passes the operand through arg, so no
// closure is allocated per call.
func (e *Engine) AtArg(t Time, fn func(interface{}), arg interface{}) {
	ev := e.schedule(t)
	ev.argFn = fn
	ev.arg = arg
}

// atThread schedules a dispatch of th at time t — the closure-free form of
// At(t, func() { e.dispatch(th) }) used by Sleep, Unpark and SpawnAt.
func (e *Engine) atThread(t Time, th *Thread) *event {
	ev := e.schedule(t)
	ev.thread = th
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Timer is a cancellable scheduled callback. The handle stays valid after
// the callback fires: Cancel becomes a no-op (the generation snapshot
// detects that the pooled event moved on) and When still reports the
// scheduled time.
type Timer struct {
	q    *eventQueue
	ev   *event
	gen  uint32
	when Time
}

// AtTimer schedules fn at time t and returns a handle that can cancel it.
func (e *Engine) AtTimer(t Time, fn func()) *Timer {
	ev := e.schedule(t)
	ev.fn = fn
	//simcheck:allow hotalloc the cancellable handle is owned by the caller and escapes by design
	return &Timer{q: &e.q, ev: ev, gen: ev.gen, when: ev.when}
}

// AtTimerArg schedules fn(arg) at time t and returns a cancellable
// handle — the closure-free variant of AtTimer (see AtArg): the caller
// reuses a long-lived fn and passes the operand through arg.
func (e *Engine) AtTimerArg(t Time, fn func(interface{}), arg interface{}) *Timer {
	ev := e.schedule(t)
	ev.argFn = fn
	ev.arg = arg
	//simcheck:allow hotalloc the cancellable handle is owned by the caller and escapes by design
	return &Timer{q: &e.q, ev: ev, gen: ev.gen, when: ev.when}
}

// When returns the scheduled fire time.
func (tm *Timer) When() Time { return tm.when }

// Cancel prevents the callback from running. Safe to call after firing.
func (tm *Timer) Cancel() {
	if tm.ev.gen != tm.gen {
		return // already fired (or cancelled and compacted away)
	}
	tm.q.cancelEvent(tm.ev)
}

// Spawn creates a simthread that begins executing fn at the current virtual
// time. fn receives the thread handle it must use for all blocking
// operations.
func (e *Engine) Spawn(name string, fn func(t *Thread)) *Thread {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a simthread that begins executing fn at virtual time
// start.
func (e *Engine) SpawnAt(start Time, name string, fn func(t *Thread)) *Thread {
	t := &Thread{
		eng:    e,
		id:     len(e.threads),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	e.threads = append(e.threads, t)
	go t.run(fn)
	e.atThread(start, t)
	return t
}

// dispatch hands the baton to t and waits for it to block or finish.
//
//simcheck:hotpath runs once per thread wakeup; stays allocation-free
func (e *Engine) dispatch(t *Thread) {
	if t.state == stateDone {
		return
	}
	t.setState(stateRunning)
	e.running = t
	t.resume <- struct{}{}
	<-e.baton
	e.running = nil
}

// Run dispatches events until the queue is empty or the simulation is
// stopped. It returns an error if simthreads remain parked when no events
// are left (a deadlock), or if a configured limit was exceeded.
func (e *Engine) Run() error {
	defer e.shutdown()
	wallStart := time.Now() //simcheck:allow nodeterm wall-clock watchdog; never feeds simulation state
	for !e.stopped {
		ev := e.q.pop()
		if ev == nil {
			break
		}
		if e.MaxTime > 0 && ev.when > e.MaxTime {
			e.q.recycle(ev)
			return fmt.Errorf("sim: exceeded MaxTime %d at event time %d", e.MaxTime, ev.when)
		}
		if e.MaxWall > 0 && e.eventsRun%wallCheckEvery == 0 {
			//simcheck:allow nodeterm wall-clock watchdog; aborts hung runs, never feeds simulation state
			if elapsed := time.Since(wallStart); elapsed > e.MaxWall {
				e.q.recycle(ev)
				return fmt.Errorf("sim: wall-clock watchdog: run exceeded %v (elapsed %v) at virtual time %d after %d events\n%s",
					e.MaxWall, elapsed.Round(time.Millisecond), e.now, e.eventsRun, e.ThreadDump())
			}
		}
		if ev.when < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %d < %d", ev.when, e.now))
		}
		e.now = ev.when
		e.eventsRun++
		if e.MaxEvents > 0 && e.eventsRun > e.MaxEvents {
			e.q.recycle(ev)
			return fmt.Errorf("sim: exceeded MaxEvents %d", e.MaxEvents)
		}
		// Copy the callback out and recycle before invoking, so a
		// callback that cancels its own (already fired) timer sees the
		// generation bump, and the object is immediately reusable by
		// events the callback schedules.
		switch {
		case ev.thread != nil:
			th := ev.thread
			if th.wake == ev {
				th.wake = nil
			}
			e.q.recycle(ev)
			e.dispatch(th)
		case ev.argFn != nil:
			fn, arg := ev.argFn, ev.arg
			e.q.recycle(ev)
			fn(arg)
		default:
			fn := ev.fn
			e.q.recycle(ev)
			fn()
		}
	}
	if e.stopped {
		return nil
	}
	var parked []string
	for _, t := range e.threads {
		if (t.state == stateParked || t.state == stateSleeping) && !t.daemon {
			parked = append(parked, t.name)
		}
	}
	if len(parked) > 0 {
		sort.Strings(parked)
		return fmt.Errorf("sim: deadlock: no events left but %d thread(s) blocked: %s",
			len(parked), strings.Join(parked, ", "))
	}
	return nil
}

// ThreadDump renders every simthread's name and state, one per line — the
// diagnostic attached to watchdog aborts.
func (e *Engine) ThreadDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread states (%d threads):\n", len(e.threads))
	for _, t := range e.threads {
		fmt.Fprintf(&b, "  %-32s %s\n", t.name, t.state)
	}
	return b.String()
}

// Stop halts the simulation: Run returns after the current event completes
// and all blocked simthreads are terminated. Safe to call from engine
// callbacks; from simthread context prefer calling Stop and then parking.
func (e *Engine) Stop() { e.stopped = true }

// shutdown terminates all still-blocked simthread goroutines and recycles
// any events left in the queue (releasing the closures they reference).
func (e *Engine) shutdown() {
	close(e.kill)
	for _, t := range e.threads {
		if t.state == stateParked || t.state == stateSleeping || t.state == stateNew {
			// Unblock the goroutine; it aborts via killErr.
			select {
			case t.resume <- struct{}{}:
				<-e.baton
			default:
				// Goroutine already observed the kill channel.
			}
		}
	}
	e.q.drain()
}
