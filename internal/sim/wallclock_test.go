package sim

import (
	"strings"
	"testing"
	"time"
)

func TestWallClockWatchdogAborts(t *testing.T) {
	eng := NewEngine(1)
	eng.MaxWall = 30 * time.Millisecond
	eng.MaxEvents = 1 << 62
	eng.Spawn("spinner", func(th *Thread) {
		for {
			th.Sleep(1)
		}
	})
	start := time.Now() //simcheck:allow nodeterm this test measures the real watchdog
	err := eng.Run()
	if err == nil {
		t.Fatal("runaway simulation must trip the wall-clock watchdog")
	}
	if !strings.Contains(err.Error(), "wall-clock watchdog") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(err.Error(), "spinner") {
		t.Fatalf("error must include the thread dump: %v", err)
	}
	//simcheck:allow nodeterm this test measures the real watchdog
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog fired too late: %v", elapsed)
	}
}

func TestWallClockWatchdogOffByDefault(t *testing.T) {
	eng := NewEngine(1)
	done := false
	eng.Spawn("worker", func(th *Thread) {
		th.Sleep(100)
		done = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread did not finish")
	}
}

func TestThreadDumpListsStates(t *testing.T) {
	eng := NewEngine(1)
	eng.Spawn("alpha", func(th *Thread) { th.Sleep(10) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	dump := eng.ThreadDump()
	if !strings.Contains(dump, "alpha") || !strings.Contains(dump, "done") {
		t.Fatalf("dump missing thread or state: %q", dump)
	}
}
