package sim

// This file provides small blocking building blocks used by higher layers:
// a FIFO wait queue, a counting barrier, and a channel-like mailbox. All of
// them operate on simthreads and virtual time.

// WaitQueue is a FIFO queue of parked threads.
type WaitQueue struct {
	q []*Thread
}

// Len returns the number of waiting threads.
func (w *WaitQueue) Len() int { return len(w.q) }

// Wait parks the calling thread until a matching WakeOne/WakeAll.
func (w *WaitQueue) Wait(t *Thread) {
	w.q = append(w.q, t)
	t.Park()
}

// WakeOne unparks the oldest waiter at time at and returns it, or nil if
// the queue is empty.
func (w *WaitQueue) WakeOne(at Time) *Thread {
	if len(w.q) == 0 {
		return nil
	}
	t := w.q[0]
	copy(w.q, w.q[1:])
	w.q = w.q[:len(w.q)-1]
	t.Unpark(at)
	return t
}

// WakeAll unparks every waiter at time at and returns how many were woken.
func (w *WaitQueue) WakeAll(at Time) int {
	n := len(w.q)
	for _, t := range w.q {
		t.Unpark(at)
	}
	w.q = w.q[:0]
	return n
}

// Remove deletes t from the queue without waking it. It reports whether t
// was present.
func (w *WaitQueue) Remove(t *Thread) bool {
	for i, x := range w.q {
		if x == t {
			w.q = append(w.q[:i], w.q[i+1:]...)
			return true
		}
	}
	return false
}

// Barrier blocks N participants until all have arrived, modelling an
// OpenMP-style thread barrier. The last arrival releases the others after
// the configured release latency (fan-out cost).
type Barrier struct {
	N       int
	Release Time // per-release wake latency; zero is allowed

	waiting WaitQueue
	arrived int
	// generation counting is implicit: all waiters of a generation are
	// released before any participant can re-enter, because release
	// happens synchronously in virtual time before the waker proceeds.
}

// Wait blocks t until all N participants have called Wait. It returns the
// time spent blocked in virtual nanoseconds.
func (b *Barrier) Wait(t *Thread) Time {
	start := t.Now()
	b.arrived++
	if b.arrived == b.N {
		b.arrived = 0
		b.waiting.WakeAll(t.Now() + b.Release)
		if b.Release > 0 {
			t.Sleep(b.Release)
		}
		return t.Now() - start
	}
	b.waiting.Wait(t)
	return t.Now() - start
}

// Mailbox is an unbounded FIFO of values with blocking receive, used to
// model queues between simulated agents (e.g. a NIC completion queue).
type Mailbox struct {
	items []interface{}
	recvq WaitQueue
}

// Put appends v and wakes one blocked receiver (at time at).
func (m *Mailbox) Put(at Time, v interface{}) {
	m.items = append(m.items, v)
	m.recvq.WakeOne(at)
}

// TryGet removes and returns the oldest value, or nil and false when empty.
func (m *Mailbox) TryGet() (interface{}, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	v := m.items[0]
	copy(m.items, m.items[1:])
	m.items[len(m.items)-1] = nil
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// Get blocks until a value is available and returns it.
func (m *Mailbox) Get(t *Thread) interface{} {
	for {
		if v, ok := m.TryGet(); ok {
			return v
		}
		m.recvq.Wait(t)
	}
}

// Len returns the number of queued values.
func (m *Mailbox) Len() int { return len(m.items) }
