package sim

// This file implements the engine's event queue: a four-level hierarchical
// timer wheel in front of a binary heap, with a free-list pool of event
// objects and lazy cancellation.
//
// The wheel serves the dominant scheduling pattern — After(d) with small d
// relative to the current time — in O(1) per push and pop. Each level has
// 64 slots; level l buckets events whose absolute time differs from the
// wheel anchor only in bit group [6l, 6(l+1)), so the four levels together
// cover the next ~16.8 ms of virtual time (2^24 ns) and everything beyond
// that "region" waits in the heap. A per-level occupancy bitmap (one
// uint64 per level) turns find-next-slot into a TrailingZeros instruction,
// so advancing the clock across empty stretches costs O(levels), not
// O(slots skipped).
//
// Ordering contract (load-bearing for byte-identical output): events pop
// in exactly (when, seq) order, the same total order the plain heap gave.
// The argument:
//
//   - A level-0 slot holds events of a single timestamp (level 0 is
//     1 ns-granular), appended in push order. Every push carries a larger
//     seq than all queued events, heap drains hand over events in
//     (when, seq) order, and cascades preserve relative order — so each
//     level-0 slot list is always seq-sorted.
//   - Within a level, a slot with a smaller index (relative to the anchor)
//     holds strictly earlier times; across levels, every level-l event
//     precedes every level-(l+1) event, and every wheel event precedes
//     every heap event, because they differ from the anchor in
//     progressively higher bit groups while times never run backwards.
//
// Cancellation is lazy: Timer.Cancel marks the event and it is skipped
// (and recycled) when popped. So that cancel-heavy workloads — the
// reliable transport cancels one retransmit timer per acknowledged packet
// — cannot bloat the queue with dead events, a compaction pass sweeps the
// wheel and heap once cancelled events outnumber live ones (and exceed a
// floor that keeps tiny queues compaction-free).
//
// Event objects are pooled on an intrusive free list. A recycled event
// bumps its generation counter, which is how Timer handles detect that
// their event has fired or been reused (Cancel after fire is a no-op, per
// the Timer contract). The pool, slot arrays and heap backing are owned by
// the engine and reused across Run calls, so steady-state scheduling
// allocates nothing.

import (
	"container/heap"
	"math/bits"
)

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// regionShift is the bit position above which an event is beyond the
	// wheel horizon and parks in the heap.
	regionShift = wheelLevels * wheelBits
	// compactMinDead is the floor before cancelled events can trigger a
	// compaction sweep.
	compactMinDead = 64
)

// event is a scheduled callback. Exactly one of fn, argFn, thread is set:
// fn is a plain closure, argFn+arg is the closure-free form (AtArg), and
// thread marks a dispatch event that hands the baton to a simthread.
type event struct {
	when Time
	seq  uint64

	fn     func()
	argFn  func(interface{})
	arg    interface{}
	thread *Thread

	// next links the slot list while queued and the free list while
	// pooled (an event is never in both).
	next *event

	// gen increments every time the object returns to the pool; Timer
	// handles snapshot it to detect fire/reuse.
	gen       uint32
	cancelled bool
}

// slot is one bucket of a wheel level: a FIFO list with O(1) append.
type slot struct {
	head, tail *event
}

// eventQueue is the engine's pending-event structure.
type eventQueue struct {
	// wt is the wheel anchor: the time of the most recently popped event
	// (it also ratchets to window starts while the pop path cascades).
	// All queued events have when >= wt.
	wt Time

	live int // queued, non-cancelled events
	dead int // queued, cancelled events awaiting pop or compaction

	bitmap [wheelLevels]uint64
	slots  [wheelLevels][wheelSlots]slot
	far    eventHeap // events beyond the current 2^24 ns region

	free  *event // recycled event objects
	nfree int
}

// newEvent returns a pooled (or fresh) event object.
func (q *eventQueue) newEvent() *event {
	if ev := q.free; ev != nil {
		q.free = ev.next
		q.nfree--
		ev.next = nil
		return ev
	}
	//simcheck:allow hotalloc pool refill slow path; steady state reuses recycled events
	return &event{}
}

// recycle clears an event's references and returns it to the pool.
func (q *eventQueue) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.thread = nil
	ev.cancelled = false
	ev.next = q.free
	q.free = ev
	q.nfree++
}

// len returns the number of queued events, cancelled ones included.
func (q *eventQueue) len() int { return q.live + q.dead }

// push enqueues ev. ev.when must be >= q.wt (the engine clamps).
func (q *eventQueue) push(ev *event) {
	q.live++
	q.insert(ev)
}

// level classifies when against the anchor: 0..3 for the wheel, -1 for
// the far heap.
func (q *eventQueue) level(when Time) int {
	d := uint64(when ^ q.wt)
	switch {
	case d>>wheelBits == 0:
		return 0
	case d>>(2*wheelBits) == 0:
		return 1
	case d>>(3*wheelBits) == 0:
		return 2
	case d>>(4*wheelBits) == 0:
		return 3
	}
	return -1
}

// insert places ev into its wheel slot or the far heap.
func (q *eventQueue) insert(ev *event) {
	l := q.level(ev.when)
	if l < 0 {
		heap.Push(&q.far, ev)
		return
	}
	s := int(ev.when>>(uint(l)*wheelBits)) & wheelMask
	sl := &q.slots[l][s]
	ev.next = nil
	if sl.tail == nil {
		sl.head = ev
	} else {
		sl.tail.next = ev
	}
	sl.tail = ev
	q.bitmap[l] |= 1 << uint(s)
}

// pop removes and returns the earliest live event in (when, seq) order,
// recycling any cancelled events it passes. It returns nil when the queue
// is empty.
//
//simcheck:hotpath every simulated event passes through here; stays allocation-free
func (q *eventQueue) pop() *event {
	for {
		ev := q.popAny()
		if ev == nil {
			return nil
		}
		if ev.cancelled {
			q.dead--
			q.recycle(ev)
			continue
		}
		q.live--
		return ev
	}
}

// popAny removes the earliest queued event, cancelled or not.
func (q *eventQueue) popAny() *event {
	for {
		if b := q.bitmap[0]; b != 0 {
			s := bits.TrailingZeros64(b)
			sl := &q.slots[0][s]
			ev := sl.head
			sl.head = ev.next
			if sl.head == nil {
				sl.tail = nil
				q.bitmap[0] &^= 1 << uint(s)
			}
			ev.next = nil
			q.wt = ev.when
			return ev
		}
		if !q.refill() {
			return nil
		}
	}
}

// refill advances the anchor to the next occupied window and cascades its
// events toward level 0. It reports whether any events remain.
func (q *eventQueue) refill() bool {
	for l := 1; l < wheelLevels; l++ {
		b := q.bitmap[l]
		if b == 0 {
			continue
		}
		s := bits.TrailingZeros64(b)
		sl := &q.slots[l][s]
		head := sl.head
		sl.head, sl.tail = nil, nil
		q.bitmap[l] &^= 1 << uint(s)
		// Advance the anchor to the start of this slot's window; every
		// remaining event is at or after it.
		shift := uint(l) * wheelBits
		q.wt = q.wt&^(Time(1)<<(shift+wheelBits)-1) | Time(s)<<shift
		for head != nil {
			next := head.next
			q.insert(head)
			head = next
		}
		return true
	}
	if len(q.far) == 0 {
		return false
	}
	// Enter the region of the earliest far event and pull that whole
	// region into the wheel. Heap pops come out in (when, seq) order, so
	// slot lists stay sorted.
	q.wt = q.far[0].when
	region := q.wt >> regionShift
	for len(q.far) > 0 && q.far[0].when>>regionShift == region {
		q.insert(heap.Pop(&q.far).(*event))
	}
	return true
}

// cancelEvent lazily cancels a queued event and compacts the queue when
// dead events dominate.
func (q *eventQueue) cancelEvent(ev *event) {
	if ev.cancelled {
		return
	}
	ev.cancelled = true
	q.live--
	q.dead++
	if q.dead >= compactMinDead && q.dead > q.live {
		q.compact()
	}
}

// compact removes every cancelled event from the wheel and heap, recycling
// them, and restores the heap invariant. Relative order of survivors is
// preserved (slot lists are filtered in place; the heap's pop order
// depends only on the (when, seq) total order, not its array layout), so
// compaction can never change simulation results.
func (q *eventQueue) compact() {
	for l := 0; l < wheelLevels; l++ {
		b := q.bitmap[l]
		for b != 0 {
			s := bits.TrailingZeros64(b)
			b &^= 1 << uint(s)
			sl := &q.slots[l][s]
			var head, tail *event
			for ev := sl.head; ev != nil; {
				next := ev.next
				if ev.cancelled {
					q.recycle(ev)
				} else {
					ev.next = nil
					if tail == nil {
						head = ev
					} else {
						tail.next = ev
					}
					tail = ev
				}
				ev = next
			}
			sl.head, sl.tail = head, tail
			if head == nil {
				q.bitmap[l] &^= 1 << uint(s)
			}
		}
	}
	kept := q.far[:0]
	for _, ev := range q.far {
		if ev.cancelled {
			q.recycle(ev)
		} else {
			//simcheck:allow hotalloc in-place filter never grows; compaction is amortized
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q.far); i++ {
		q.far[i] = nil
	}
	q.far = kept
	heap.Init(&q.far)
	q.dead = 0
}

// drain recycles every queued event (engine shutdown): pending closures
// and thread references are released, and the objects stay pooled for a
// subsequent Run.
func (q *eventQueue) drain() {
	for l := 0; l < wheelLevels; l++ {
		b := q.bitmap[l]
		for b != 0 {
			s := bits.TrailingZeros64(b)
			b &^= 1 << uint(s)
			sl := &q.slots[l][s]
			for ev := sl.head; ev != nil; {
				next := ev.next
				q.recycle(ev)
				ev = next
			}
			sl.head, sl.tail = nil, nil
		}
		q.bitmap[l] = 0
	}
	for i, ev := range q.far {
		q.recycle(ev)
		q.far[i] = nil
	}
	q.far = q.far[:0]
	q.live, q.dead = 0, 0
}

// eventHeap is the far-future fallback, ordered by (when, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
