package sim

import "fmt"

// ThreadState is a simthread's scheduling state, exposed to observers via
// Engine.OnThreadState.
type ThreadState int

const (
	stateNew ThreadState = iota
	stateRunning
	stateSleeping
	stateParked
	stateDone
)

// String names the state for thread dumps.
func (s ThreadState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateParked:
		return "parked"
	case stateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// killed is the panic payload used to unwind a simthread goroutine when the
// engine shuts down while the thread is still blocked.
type killed struct{}

// Thread is a cooperative simulated thread. All methods must be called from
// the thread's own function (the engine guarantees only one simthread runs
// at a time, so no further synchronization is needed).
type Thread struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	state  ThreadState

	// Data carries user context (e.g. the machine placement of the
	// thread). The simulator itself never inspects it.
	Data interface{}

	// daemon marks threads that may legitimately be parked when the
	// simulation ends (background pollers); they do not count as a
	// deadlock.
	daemon bool

	wake *event // pending wake event while sleeping or parked with deadline
}

// ID returns the thread's unique index within its engine.
func (t *Thread) ID() int { return t.id }

// State returns the thread's current scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// setState records a state transition and notifies the engine's observer.
// Same-state transitions are dropped so observers see only real changes.
func (t *Thread) setState(s ThreadState) {
	if t.state == s {
		return
	}
	t.state = s
	if fn := t.eng.OnThreadState; fn != nil {
		fn(t, s)
	}
}

// Name returns the label given at Spawn time.
func (t *Thread) Name() string { return t.name }

// Engine returns the engine this thread belongs to.
func (t *Thread) Engine() *Engine { return t.eng }

// Now returns the current virtual time.
func (t *Thread) Now() Time { return t.eng.now }

// run is the goroutine body wrapping the user function.
func (t *Thread) run(fn func(*Thread)) {
	<-t.resume // wait for first dispatch
	select {
	case <-t.eng.kill:
		t.setState(stateDone)
		t.eng.baton <- struct{}{}
		return
	default:
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				t.setState(stateDone)
				t.eng.baton <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	fn(t)
	t.setState(stateDone)
	t.eng.baton <- struct{}{}
}

// yield transfers control to the engine and blocks until redispatched.
func (t *Thread) yield() {
	t.eng.baton <- struct{}{}
	<-t.resume
	select {
	case <-t.eng.kill:
		panic(killed{})
	default:
	}
	t.setState(stateRunning)
}

// Sleep advances this thread's local time by d nanoseconds, letting other
// events run meanwhile. Negative durations are treated as zero.
func (t *Thread) Sleep(d Time) {
	if t.eng.running != t {
		panic(fmt.Sprintf("sim: Sleep called on %q from outside its own context", t.name))
	}
	if d < 0 {
		d = 0
	}
	t.setState(stateSleeping)
	t.eng.atThread(t.eng.now+d, t)
	t.yield()
}

// Park blocks the thread until another party calls Unpark. A thread parked
// forever when the event queue drains is reported as a deadlock by Run.
func (t *Thread) Park() {
	if t.eng.running != t {
		panic(fmt.Sprintf("sim: Park called on %q from outside its own context", t.name))
	}
	t.setState(stateParked)
	t.yield()
}

// Unpark schedules the parked thread to resume at virtual time at (clamped
// to now). It is a no-op if the thread is not parked. Calling Unpark twice
// before the thread resumes panics, as it indicates a scheduling bug.
func (t *Thread) Unpark(at Time) {
	if t.state != stateParked {
		panic(fmt.Sprintf("sim: Unpark of thread %q which is not parked", t.name))
	}
	if t.wake != nil {
		panic(fmt.Sprintf("sim: double Unpark of thread %q", t.name))
	}
	if at < t.eng.now {
		at = t.eng.now
	}
	t.wake = t.eng.atThread(at, t)
}

// UnparkCancel cancels a pending Unpark, leaving the thread parked again.
// It is a no-op if no wake is pending.
func (t *Thread) UnparkCancel() {
	if t.wake != nil {
		t.eng.q.cancelEvent(t.wake)
		t.wake = nil
		t.setState(stateParked)
	}
}

// Parked reports whether the thread is currently parked with no pending
// wake event.
func (t *Thread) Parked() bool { return t.state == stateParked && t.wake == nil }

// Done reports whether the thread function has returned.
func (t *Thread) Done() bool { return t.state == stateDone }

// SetDaemon marks the thread as a background daemon: if the event queue
// drains while it is parked, Run treats the simulation as complete instead
// of deadlocked (the thread is then terminated).
func (t *Thread) SetDaemon() { t.daemon = true }
