package sim

// Rand is a small deterministic pseudo-random generator (splitmix64 seeded
// xoshiro256**). It is independent of math/rand so simulation results are
// stable across Go releases.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n)) // slight modulo bias is acceptable here
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new generator whose stream is derived from this one,
// useful for giving subsystems independent deterministic streams.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
