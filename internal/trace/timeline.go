package trace

import (
	"fmt"
	"sort"
	"strings"

	"mpicontend/internal/simlock"
)

// TimelineRecorder captures the lock-grant stream so lock ownership can be
// rendered as an ASCII timeline — monopolization shows up as long runs of
// one thread's glyph, FCFS as a regular weave.
type TimelineRecorder struct {
	grants []timelineEntry
	marks  []timelineMark
	// Cap bounds memory; once reached, further grants are dropped (the
	// head of the run is usually the interesting part is false — the
	// steady state matters, so we keep the most recent Cap entries).
	Cap int
}

type timelineEntry struct {
	at     int64
	thread int
	socket int
}

// timelineMark is an out-of-band event (fault injection, retransmit)
// pinned to the ownership timeline.
type timelineMark struct {
	at    int64
	glyph byte
	label string
}

// Observe records one grant; wire it to a lock's OnGrant.
func (tr *TimelineRecorder) Observe(gi simlock.GrantInfo) {
	if tr.Cap > 0 && len(tr.grants) >= tr.Cap {
		copy(tr.grants, tr.grants[1:])
		tr.grants = tr.grants[:len(tr.grants)-1]
	}
	tr.grants = append(tr.grants, timelineEntry{
		at: gi.At, thread: gi.ThreadID, socket: gi.Place.Socket,
	})
}

// Grants returns the number of recorded grants.
func (tr *TimelineRecorder) Grants() int { return len(tr.grants) }

// Mark records an out-of-band event at virtual time at. Render draws a
// second row under the ownership line with the glyph in the matching time
// bucket, so retransmit bursts and fault injections can be read against
// who owned the lock at that moment. Marks sharing a glyph share a label
// (the first wins).
func (tr *TimelineRecorder) Mark(at int64, glyph byte, label string) {
	tr.marks = append(tr.marks, timelineMark{at: at, glyph: glyph, label: label})
}

// Marks returns the number of recorded marks.
func (tr *TimelineRecorder) Marks() int { return len(tr.marks) }

// threadGlyphs label threads in the rendering.
const threadGlyphs = "0123456789abcdefghijklmnopqrstuvwxyz"

// Render draws the ownership timeline as rows of width columns: each
// column is one time bucket, showing the thread that received the most
// grants in that bucket (uppercase glyph if several threads were granted
// in the bucket). A per-thread share summary follows.
func (tr *TimelineRecorder) Render(width int) string {
	if len(tr.grants) == 0 {
		return "(no grants recorded)\n"
	}
	if width <= 0 {
		width = 64
	}
	start := tr.grants[0].at
	end := tr.grants[len(tr.grants)-1].at + 1
	span := end - start
	if span <= 0 {
		span = 1
	}

	// Stable thread -> glyph assignment in order of first appearance.
	glyphOf := map[int]byte{}
	var order []int
	for _, g := range tr.grants {
		if _, ok := glyphOf[g.thread]; !ok {
			glyphOf[g.thread] = threadGlyphs[len(order)%len(threadGlyphs)]
			order = append(order, g.thread)
		}
	}

	buckets := make([]map[int]int, width)
	for _, g := range tr.grants {
		b := int((g.at - start) * int64(width) / span)
		if b >= width {
			b = width - 1
		}
		if buckets[b] == nil {
			buckets[b] = map[int]int{}
		}
		buckets[b][g.thread]++
	}

	line := make([]byte, width)
	for i, bk := range buckets {
		switch {
		case len(bk) == 0:
			line[i] = '.'
		default:
			// Iterate threads in sorted order so the lowest id wins ties
			// regardless of map iteration order.
			ths := make([]int, 0, len(bk))
			for th := range bk {
				ths = append(ths, th)
			}
			sort.Ints(ths)
			best, bestN, total := 0, 0, 0
			for _, th := range ths {
				n := bk[th]
				total += n
				if n > bestN {
					best, bestN = th, n
				}
			}
			c := glyphOf[best]
			if total > bestN {
				// Mixed bucket: uppercase marks contention turnover.
				c = upper(c)
			}
			line[i] = c
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "lock ownership over %.1fus (%d grants):\n", float64(span)/1000, len(tr.grants))
	b.WriteString("  |" + string(line) + "|\n")

	// Mark row: fault/retransmit events against the same time axis.
	if len(tr.marks) > 0 {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		markCounts := map[byte]int{}
		labels := map[byte]string{}
		inWindow := 0
		for _, m := range tr.marks {
			markCounts[m.glyph]++
			if _, ok := labels[m.glyph]; !ok {
				labels[m.glyph] = m.label
			}
			if m.at < start || m.at >= end {
				continue // marks outside the captured grant window
			}
			inWindow++
			bkt := int((m.at - start) * int64(width) / span)
			if bkt >= width {
				bkt = width - 1
			}
			row[bkt] = m.glyph
		}
		b.WriteString("  |" + string(row) + "|\n")
		var glyphs []byte
		for g := range markCounts {
			glyphs = append(glyphs, g)
		}
		sort.Slice(glyphs, func(i, j int) bool { return glyphs[i] < glyphs[j] })
		for _, g := range glyphs {
			fmt.Fprintf(&b, "  %c = %s x%d\n", g, labels[g], markCounts[g])
		}
	}

	counts := map[int]int{}
	for _, g := range tr.grants {
		counts[g.thread]++
	}
	sort.Ints(order)
	for _, th := range order {
		fmt.Fprintf(&b, "  %c = thread %-3d %5.1f%% of grants\n",
			glyphOf[th], th, 100*float64(counts[th])/float64(len(tr.grants)))
	}
	return b.String()
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// MaxShare returns the largest fraction of grants any single thread
// received — 1/nthreads for perfect fairness, approaching 1 under
// monopolization.
func (tr *TimelineRecorder) MaxShare() float64 {
	if len(tr.grants) == 0 {
		return 0
	}
	counts := map[int]int{}
	max := 0
	for _, g := range tr.grants {
		counts[g.thread]++
		if counts[g.thread] > max {
			max = counts[g.thread]
		}
	}
	return float64(max) / float64(len(tr.grants))
}

// LongestRun returns the longest streak of consecutive grants to the same
// thread — the direct signature of lock monopolization.
func (tr *TimelineRecorder) LongestRun() int {
	best, cur := 0, 0
	last := -1
	for _, g := range tr.grants {
		if g.thread == last {
			cur++
		} else {
			cur = 1
			last = g.thread
		}
		if cur > best {
			best = cur
		}
	}
	return best
}
