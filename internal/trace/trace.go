// Package trace implements the paper's profiling machinery: the §4.3
// arbitration-fairness estimators (Pc, Ps and their bias factors against a
// fair arbitration) and the §4.4 dangling-request profiler sampled at lock
// acquisition granularity.
//
// trace is part of the deterministic core (docs/ARCHITECTURE.md).
package trace

import (
	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

// FairnessAnalyzer consumes the lock-grant stream and computes the paper's
// §4.3 estimators:
//
//	Pc — probability that the same thread reacquires the lock successively
//	     (core level);
//	Ps — probability that the new owner runs on the same socket as the
//	     previous owner (socket level);
//
// each measured for the observed arbitration and for a hypothetical fair
// arbitration over the same waiting sets (X_l = 1/T_l, Y_l = T_{j,l}/ΣT_i).
// BiasFactor* = P_observed / P_fair; a fair lock scores 1.
type FairnessAnalyzer struct {
	havePrev  bool
	prevID    int
	prevPlace machine.Place

	n           int     // L: contended acquisitions counted
	sumSameCore float64 // Σ X_l (observed)
	sumSameSock float64 // Σ Y_l (observed)
	sumFairCore float64 // Σ 1/T_l
	sumFairSock float64 // Σ T_{j,l}/ΣT_i
}

// Observe processes one grant. Grants with an empty waiting set are
// uncontended hand-offs and are skipped: arbitration is only defined when
// there is a choice to make.
func (f *FairnessAnalyzer) Observe(gi simlock.GrantInfo) {
	if !f.havePrev {
		f.havePrev = true
		f.prevID = gi.ThreadID
		f.prevPlace = gi.Place
		return
	}
	// The candidate set for acquisition l is the new owner plus everyone
	// still waiting when it won.
	total := len(gi.Waiters) + 1
	if total < 2 {
		// No competition: record owner and move on.
		f.prevID = gi.ThreadID
		f.prevPlace = gi.Place
		return
	}
	f.n++
	if gi.ThreadID == f.prevID {
		f.sumSameCore++
	}
	if gi.Place.SameSocket(f.prevPlace) {
		f.sumSameSock++
	}
	f.sumFairCore += 1.0 / float64(total)
	onPrevSocket := 0
	if gi.Place.SameSocket(f.prevPlace) {
		onPrevSocket++
	}
	for _, w := range gi.Waiters {
		if w.SameSocket(f.prevPlace) {
			onPrevSocket++
		}
	}
	f.sumFairSock += float64(onPrevSocket) / float64(total)

	f.prevID = gi.ThreadID
	f.prevPlace = gi.Place
}

// Samples returns the number of contended acquisitions analysed.
func (f *FairnessAnalyzer) Samples() int { return f.n }

// Pc returns the observed same-core reacquisition probability.
func (f *FairnessAnalyzer) Pc() float64 { return ratio(f.sumSameCore, f.n) }

// Ps returns the observed same-socket probability.
func (f *FairnessAnalyzer) Ps() float64 { return ratio(f.sumSameSock, f.n) }

// FairPc returns the fair-arbitration baseline for Pc.
func (f *FairnessAnalyzer) FairPc() float64 { return ratio(f.sumFairCore, f.n) }

// FairPs returns the fair-arbitration baseline for Ps.
func (f *FairnessAnalyzer) FairPs() float64 { return ratio(f.sumFairSock, f.n) }

// BiasFactorCore returns Pc / FairPc (1 means fair).
func (f *FairnessAnalyzer) BiasFactorCore() float64 {
	if fp := f.FairPc(); fp > 0 {
		return f.Pc() / fp
	}
	return 0
}

// BiasFactorSocket returns Ps / FairPs (1 means fair).
func (f *FairnessAnalyzer) BiasFactorSocket() float64 {
	if fp := f.FairPs(); fp > 0 {
		return f.Ps() / fp
	}
	return 0
}

func ratio(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DanglingProfiler implements the §4.4 metric: the number of requests that
// are completed but not yet freed, sampled at every lock acquisition, and
// averaged over the run. The count source is provided by the MPI runtime.
type DanglingProfiler struct {
	// Count returns the current number of dangling requests.
	Count func() int

	samples int64
	sum     int64
	max     int64
}

// Observe samples the metric; wire it to a lock's OnGrant.
func (d *DanglingProfiler) Observe(simlock.GrantInfo) {
	if d.Count == nil {
		return
	}
	c := int64(d.Count())
	d.samples++
	d.sum += c
	if c > d.max {
		d.max = c
	}
}

// Average returns the mean number of dangling requests per sample.
func (d *DanglingProfiler) Average() float64 {
	if d.samples == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.samples)
}

// Max returns the largest sampled value.
func (d *DanglingProfiler) Max() int64 { return d.max }

// SamplesTaken returns the number of samples recorded.
func (d *DanglingProfiler) SamplesTaken() int64 { return d.samples }

// AcquisitionCounter tallies acquisitions per thread, useful for
// starvation checks.
type AcquisitionCounter struct {
	PerThread map[int]int
	PerClass  map[simlock.Class]int
}

// NewAcquisitionCounter returns an empty counter.
func NewAcquisitionCounter() *AcquisitionCounter {
	return &AcquisitionCounter{
		PerThread: make(map[int]int),
		PerClass:  make(map[simlock.Class]int),
	}
}

// Observe tallies one grant.
func (a *AcquisitionCounter) Observe(gi simlock.GrantInfo) {
	a.PerThread[gi.ThreadID]++
	a.PerClass[gi.Class]++
}

// Total returns the number of grants observed.
func (a *AcquisitionCounter) Total() int {
	t := 0
	for _, c := range a.PerThread {
		t += c
	}
	return t
}

// Spread returns max-min acquisitions across threads that acquired at
// least once plus the given thread ids (so fully starved threads count 0).
func (a *AcquisitionCounter) Spread(threadIDs []int) int {
	if len(threadIDs) == 0 {
		return 0
	}
	min, max := 1<<62, 0
	for _, id := range threadIDs {
		c := a.PerThread[id]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// Multi fans one grant stream out to several observers.
func Multi(obs ...func(simlock.GrantInfo)) simlock.GrantFunc {
	return func(gi simlock.GrantInfo) {
		for _, o := range obs {
			o(gi)
		}
	}
}
