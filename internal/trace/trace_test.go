package trace

import (
	"math"
	"strings"
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func place(sock, core int) machine.Place { return machine.Place{Node: 0, Socket: sock, Core: core} }

func grant(id int, p machine.Place, waiters ...machine.Place) simlock.GrantInfo {
	return simlock.GrantInfo{ThreadID: id, Place: p, Waiters: waiters}
}

func TestFairnessAllSameThread(t *testing.T) {
	var f FairnessAnalyzer
	w := []machine.Place{place(0, 1), place(1, 0)}
	for i := 0; i < 10; i++ {
		f.Observe(grant(0, place(0, 0), w...))
	}
	if f.Samples() != 9 { // first grant only seeds prev
		t.Fatalf("samples = %d, want 9", f.Samples())
	}
	if f.Pc() != 1.0 {
		t.Fatalf("Pc = %v, want 1", f.Pc())
	}
	if f.Ps() != 1.0 {
		t.Fatalf("Ps = %v, want 1", f.Ps())
	}
	// Fair baseline with 3 candidates: Pc_fair = 1/3.
	if math.Abs(f.FairPc()-1.0/3.0) > 1e-9 {
		t.Fatalf("FairPc = %v, want 1/3", f.FairPc())
	}
	if math.Abs(f.BiasFactorCore()-3.0) > 1e-9 {
		t.Fatalf("BiasFactorCore = %v, want 3", f.BiasFactorCore())
	}
}

func TestFairnessRoundRobinIsUnbiased(t *testing.T) {
	var f FairnessAnalyzer
	// 4 threads, 2 per socket, perfect round-robin with all others waiting.
	places := []machine.Place{place(0, 0), place(0, 1), place(1, 0), place(1, 1)}
	for i := 0; i < 400; i++ {
		id := i % 4
		var waiters []machine.Place
		for j, p := range places {
			if j != id {
				waiters = append(waiters, p)
			}
		}
		f.Observe(grant(id, places[id], waiters...))
	}
	if f.Pc() != 0 {
		t.Fatalf("round robin Pc = %v, want 0", f.Pc())
	}
	// Fair Pc = 1/4; bias factor = 0 (observed never repeats).
	if math.Abs(f.FairPc()-0.25) > 1e-9 {
		t.Fatalf("FairPc = %v", f.FairPc())
	}
	// Socket: round robin 0,1,2,3: successive owners alternate sockets
	// except 0->1 and 2->3 transitions: Ps = 1/2... wait: 0(s0)->1(s0)
	// same, 1->2 diff, 2->3 same, 3->0 diff: Ps = 0.5. Fair Ps = 0.5.
	if math.Abs(f.BiasFactorSocket()-1.0) > 0.01 {
		t.Fatalf("BiasFactorSocket = %v, want ~1", f.BiasFactorSocket())
	}
}

func TestFairnessSkipsUncontended(t *testing.T) {
	var f FairnessAnalyzer
	f.Observe(grant(0, place(0, 0)))
	f.Observe(grant(0, place(0, 0))) // no waiters: skipped
	f.Observe(grant(0, place(0, 0)))
	if f.Samples() != 0 {
		t.Fatalf("uncontended grants were counted: %d", f.Samples())
	}
	// But prev tracking still advances: a contended grant by thread 1
	// right after thread 0 must not be counted as same-core.
	f.Observe(grant(1, place(0, 1), place(1, 0)))
	if f.Samples() != 1 || f.Pc() != 0 {
		t.Fatalf("samples=%d Pc=%v", f.Samples(), f.Pc())
	}
}

func TestFairnessEmpty(t *testing.T) {
	var f FairnessAnalyzer
	if f.Pc() != 0 || f.Ps() != 0 || f.BiasFactorCore() != 0 || f.BiasFactorSocket() != 0 {
		t.Fatal("empty analyzer should report zeros")
	}
}

func TestDanglingProfiler(t *testing.T) {
	vals := []int{0, 5, 10, 5}
	i := 0
	d := DanglingProfiler{Count: func() int { v := vals[i%len(vals)]; i++; return v }}
	for k := 0; k < 4; k++ {
		d.Observe(simlock.GrantInfo{})
	}
	if d.Average() != 5 {
		t.Fatalf("avg = %v, want 5", d.Average())
	}
	if d.Max() != 10 {
		t.Fatalf("max = %v, want 10", d.Max())
	}
	if d.SamplesTaken() != 4 {
		t.Fatalf("samples = %d", d.SamplesTaken())
	}
}

func TestDanglingProfilerNilCount(t *testing.T) {
	var d DanglingProfiler
	d.Observe(simlock.GrantInfo{})
	if d.SamplesTaken() != 0 || d.Average() != 0 {
		t.Fatal("nil Count must be a no-op")
	}
}

func TestAcquisitionCounter(t *testing.T) {
	a := NewAcquisitionCounter()
	a.Observe(simlock.GrantInfo{ThreadID: 1, Class: simlock.High})
	a.Observe(simlock.GrantInfo{ThreadID: 1, Class: simlock.Low})
	a.Observe(simlock.GrantInfo{ThreadID: 2, Class: simlock.High})
	if a.Total() != 3 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.PerThread[1] != 2 || a.PerThread[2] != 1 {
		t.Fatalf("per-thread = %v", a.PerThread)
	}
	if a.PerClass[simlock.High] != 2 || a.PerClass[simlock.Low] != 1 {
		t.Fatalf("per-class = %v", a.PerClass)
	}
	if got := a.Spread([]int{1, 2, 3}); got != 2 {
		t.Fatalf("spread = %d, want 2 (thread 3 starved)", got)
	}
	if a.Spread(nil) != 0 {
		t.Fatal("empty spread should be 0")
	}
}

func TestMultiFanout(t *testing.T) {
	n1, n2 := 0, 0
	fn := Multi(
		func(simlock.GrantInfo) { n1++ },
		func(simlock.GrantInfo) { n2++ },
	)
	fn(simlock.GrantInfo{})
	fn(simlock.GrantInfo{})
	if n1 != 2 || n2 != 2 {
		t.Fatalf("fanout counts %d %d", n1, n2)
	}
}

func TestTimelineRecorder(t *testing.T) {
	var tr TimelineRecorder
	for i := 0; i < 10; i++ {
		tr.Observe(simlock.GrantInfo{At: int64(i * 100), ThreadID: i % 2,
			Place: place(0, i%2)})
	}
	if tr.Grants() != 10 {
		t.Fatalf("grants = %d", tr.Grants())
	}
	out := tr.Render(20)
	if !strings.Contains(out, "thread 0") || !strings.Contains(out, "thread 1") {
		t.Fatalf("render missing threads:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("shares wrong:\n%s", out)
	}
}

func TestTimelineMonopolyMetrics(t *testing.T) {
	var tr TimelineRecorder
	// 8 grants to thread 0, then 2 to thread 1.
	for i := 0; i < 8; i++ {
		tr.Observe(simlock.GrantInfo{At: int64(i), ThreadID: 0, Place: place(0, 0)})
	}
	for i := 8; i < 10; i++ {
		tr.Observe(simlock.GrantInfo{At: int64(i), ThreadID: 1, Place: place(0, 1)})
	}
	if got := tr.MaxShare(); got != 0.8 {
		t.Fatalf("MaxShare = %v", got)
	}
	if got := tr.LongestRun(); got != 8 {
		t.Fatalf("LongestRun = %v", got)
	}
}

func TestTimelineCap(t *testing.T) {
	tr := TimelineRecorder{Cap: 5}
	for i := 0; i < 20; i++ {
		tr.Observe(simlock.GrantInfo{At: int64(i), ThreadID: i, Place: place(0, 0)})
	}
	if tr.Grants() != 5 {
		t.Fatalf("cap not enforced: %d", tr.Grants())
	}
	// Most recent entries retained.
	if tr.grants[4].thread != 19 {
		t.Fatalf("tail entry = %d", tr.grants[4].thread)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tr TimelineRecorder
	if out := tr.Render(10); !strings.Contains(out, "no grants") {
		t.Fatalf("empty render = %q", out)
	}
	if tr.MaxShare() != 0 || tr.LongestRun() != 0 {
		t.Fatal("empty metrics should be zero")
	}
}

func TestTimelineMarks(t *testing.T) {
	var tr TimelineRecorder
	for i := 0; i < 10; i++ {
		tr.Observe(simlock.GrantInfo{At: int64(i * 100), ThreadID: i % 2,
			Place: place(0, i%2)})
	}
	tr.Mark(250, '!', "retransmit")
	tr.Mark(600, '!', "retransmit")
	tr.Mark(700, '~', "preempt")
	tr.Mark(5000, '!', "retransmit") // outside the grant window: counted, not drawn
	if tr.Marks() != 4 {
		t.Fatalf("marks = %d", tr.Marks())
	}
	out := tr.Render(20)
	if !strings.Contains(out, "! = retransmit x3") {
		t.Fatalf("mark legend missing:\n%s", out)
	}
	if !strings.Contains(out, "~ = preempt x1") {
		t.Fatalf("preempt legend missing:\n%s", out)
	}
	// The mark row is a second |...| line containing the glyphs.
	lines := strings.Split(out, "\n")
	rows := 0
	for _, ln := range lines {
		if strings.Contains(ln, "|") {
			rows++
		}
	}
	if rows != 2 {
		t.Fatalf("want ownership row + mark row, got %d rows:\n%s", rows, out)
	}
}

func TestTimelineNoMarksNoExtraRow(t *testing.T) {
	var tr TimelineRecorder
	tr.Observe(simlock.GrantInfo{At: 0, ThreadID: 0, Place: place(0, 0)})
	out := tr.Render(10)
	if strings.Count(out, "|") != 2 {
		t.Fatalf("mark row must be absent without marks:\n%s", out)
	}
}
