package mpi

import (
	"mpicontend/internal/fabric"
	"mpicontend/internal/simlock"
)

// Isend starts a nonblocking send of a message with the given payload and
// size to rank dst. Small messages go eagerly; large ones use rendezvous.
// The main path runs inside the global critical section at high priority.
func (th *Thread) Isend(c *Comm, dst, tag int, bytes int64, payload interface{}) *Request {
	p := th.P
	cost := th.cost()
	worldDst := c.world(dst)
	tel := th.telStart()
	th.mainBegin()
	r := p.w.allocRequest()
	*r = Request{
		p: p, kind: SendReq, dst: worldDst, src: p.Rank,
		tag: tag, ctx: c.ctx, bytes: bytes, payload: payload,
		comm: c, maxBytes: -1, poolable: p.rel == nil,
	}
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		// Revoked context or known-dead peer: the request failed at issue
		// and nothing reaches the wire (fail-fast, ft.go).
		th.mainEnd()
		th.telCall("Isend", tel)
		return r
	}
	meta := rtsMeta{src: c.rank(p.Rank), tag: tag, ctx: c.ctx, bytes: bytes}
	if bytes <= cost.EagerThreshold {
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{
			Kind: fabric.Eager, Src: p.Rank, Dst: worldDst,
			Bytes: bytes, Handle: r, Meta: meta, Payload: payload,
		}
		p.send(pkt, true, r)
	} else {
		r.rndv = true
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{
			Kind: fabric.RTS, Src: p.Rank, Dst: worldDst, Handle: r, Meta: meta,
		}
		p.send(pkt, false, r)
	}
	th.mainEnd()
	th.telCall("Isend", tel)
	return r
}

// Irecv posts a nonblocking receive for (src, tag) on the communicator.
// If a matching message already sits in the unexpected queue it is consumed
// immediately (the Fig. 3b "found in unexpected queue" transition).
func (th *Thread) Irecv(c *Comm, src, tag int) *Request {
	return th.IrecvN(c, src, tag, -1)
}

// IrecvN is Irecv with a receive-buffer bound: a matching message larger
// than maxBytes fails the request with MPI_ERR_TRUNCATE (the transfer still
// drains, like MPICH's truncating receive, so the sender is not wedged).
// maxBytes < 0 means unbounded.
func (th *Thread) IrecvN(c *Comm, src, tag int, maxBytes int64) *Request {
	p := th.P
	cost := th.cost()
	tel := th.telStart()
	th.mainBegin()
	r := p.w.allocRequest()
	*r = Request{p: p, kind: RecvReq, src: src, tag: tag, ctx: c.ctx,
		comm: c, maxBytes: maxBytes}
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		th.mainEnd()
		th.telCall("Irecv", tel)
		return r
	}
	if e := p.matchUnexpected(th, src, tag, c.ctx); e != nil {
		th.S.Sleep(cost.UnexpectedMatchOverhead)
		r.bytes = e.bytes
		truncated := maxBytes >= 0 && e.bytes > maxBytes
		if e.rndv {
			// Late match of a rendezvous RTS: clear the sender to send.
			// On truncation the CTS still goes out so the sender drains
			// and completes; the guarded RData handler drops the payload.
			if truncated {
				r.fail(ErrTruncate, th.S.Now())
			}
			pkt := p.w.Fab.AllocPacket()
			*pkt = fabric.Packet{
				Kind: fabric.CTS, Src: p.Rank, Dst: e.src,
				Handle: e.senderReq, Meta: ctsMeta{recvReq: r},
			}
			p.send(pkt, false, nil)
		} else if truncated {
			r.fail(ErrTruncate, th.S.Now())
		} else {
			th.S.Sleep(cost.CopyTime(e.bytes)) // unexpected buffer -> user buffer
			r.payload = e.payload
			r.markComplete(th.S.Now())
		}
	} else {
		p.posted = append(p.posted, r)
	}
	th.mainEnd()
	th.telCall("Irecv", tel)
	return r
}

// Wait blocks until the request completes, then frees it. While waiting it
// iterates the progress loop, yielding the critical section between polls
// (low priority under the priority lock). It returns the request's error,
// if any, after the configured error handler runs (MPI_ERRORS_ARE_FATAL,
// the default, panics instead of returning).
func (th *Thread) Wait(r *Request) error {
	if r.freed {
		return r.raiseAs(ErrRequest)
	}
	cost := th.cost()
	tel := th.telStart()
	th.stateBegin(simlock.High)
	if r.complete {
		th.S.Sleep(cost.RequestFreeWork)
		r.free()
		th.stateEnd(simlock.High)
		th.telCall("Wait", tel)
		return r.release()
	}
	th.stateEnd(simlock.High)
	th.pollBackoff = 0
	for {
		done := false
		th.progressRound(simlock.Low, func() {
			if r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				done = true
			}
		})
		if done {
			th.telCall("Wait", tel)
			return r.release()
		}
		th.progressYield()
	}
}

// Waitall blocks until every request completes. Requests are freed as their
// completion is detected, so a starving caller leaves its completed
// requests dangling — the §4.4 effect. It returns the first request error
// encountered (after the error handler runs); the remaining requests are
// still waited for and freed.
func (th *Thread) Waitall(rs []*Request) error {
	if len(rs) == 0 {
		return nil
	}
	cost := th.cost()
	remaining := len(rs)
	pending := make([]*Request, len(rs))
	copy(pending, rs)
	var firstErr error

	reap := func() {
		for i := 0; i < len(pending); {
			if pending[i].complete {
				th.S.Sleep(cost.RequestFreeWork)
				r := pending[i]
				r.free()
				if err := r.release(); err != nil && firstErr == nil {
					firstErr = err
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				remaining--
			} else {
				i++
			}
		}
	}

	tel := th.telStart()
	th.stateBegin(simlock.High)
	reap()
	th.stateEnd(simlock.High)
	if remaining == 0 {
		th.telCall("Waitall", tel)
		return firstErr
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, reap)
		if remaining == 0 {
			th.telCall("Waitall", tel)
			return firstErr
		}
		th.progressYield()
	}
}

// Test polls the runtime once and reports whether the request completed;
// if so, the request is freed. Test never enters the blocking progress
// loop, so under the priority lock it always runs at high priority — the
// paper's explanation for priority ≈ ticket in the Graph500/stencil runs.
func (th *Thread) Test(r *Request) bool {
	cost := th.cost()
	tel := th.telStart()
	done := false
	th.progressRound(simlock.High, func() {
		if r.complete {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			done = true
		}
	})
	th.telCall("Test", tel)
	if done {
		// Run the error handler (panic under MPI_ERRORS_ARE_FATAL);
		// under MPI_ERRORS_RETURN the caller inspects r.Err().
		_ = r.raise()
	}
	return done
}

// Testall polls once and frees/report-counts the completed requests,
// removing them from rs in place; it returns the still-pending remainder.
func (th *Thread) Testall(rs []*Request) []*Request {
	cost := th.cost()
	var out []*Request
	var failed []*Request
	th.progressRound(simlock.High, func() {
		out = rs[:0]
		for _, r := range rs {
			if r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				if r.err != nil {
					failed = append(failed, r)
				}
			} else {
				out = append(out, r)
			}
		}
	})
	for _, r := range failed {
		_ = r.raise()
	}
	return out
}

// CancelRecv cancels a posted receive that has not matched, removing it
// from the posted queue and releasing the request (MPI_Cancel semantics for
// receives). It panics if the request already completed — the caller must
// check Complete() first, inside its own synchronization.
func (th *Thread) CancelRecv(r *Request) {
	if r.kind != RecvReq {
		panic("mpi: CancelRecv on a non-receive request")
	}
	p := th.P
	cost := th.cost()
	th.stateBegin(simlock.High)
	th.S.Sleep(cost.RequestFreeWork)
	if r.complete {
		th.stateEnd(simlock.High)
		panic("mpi: CancelRecv on a completed request")
	}
	for i, q := range p.posted {
		if q == r {
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			break
		}
	}
	if r.deadline != nil {
		r.deadline.Cancel()
		r.deadline = nil
	}
	r.freed = true
	p.outstanding--
	th.stateEnd(simlock.High)
}

// Send is a blocking send (Isend + Wait).
func (th *Thread) Send(c *Comm, dst, tag int, bytes int64, payload interface{}) {
	th.Wait(th.Isend(c, dst, tag, bytes, payload)) //simcheck:allow errdrop blocking Send has no error result; the handler runs inside Wait
}

// Recv is a blocking receive (Irecv + Wait); it returns the payload.
func (th *Thread) Recv(c *Comm, src, tag int) interface{} {
	r := th.Irecv(c, src, tag)
	th.Wait(r) //simcheck:allow errdrop blocking Recv has no error result; the handler runs inside Wait
	return r.payload
}

// Sendrecv concurrently sends to dst and receives from src, blocking until
// both complete. It returns the received payload.
func (th *Thread) Sendrecv(c *Comm, dst, dtag int, bytes int64, payload interface{},
	src, stag int) interface{} {
	rr := th.Irecv(c, src, stag)
	sr := th.Isend(c, dst, dtag, bytes, payload)
	th.Waitall([]*Request{sr, rr}) //simcheck:allow errdrop blocking Sendrecv has no error result; the handler runs inside Waitall
	return rr.payload
}
