package mpi

import (
	"mpicontend/internal/fabric"
	"mpicontend/internal/simlock"
)

// Isend starts a nonblocking send of a message with the given payload and
// size to rank dst. Small messages go eagerly; large ones use rendezvous.
// The main path runs inside the global critical section at high priority.
func (th *Thread) Isend(c *Comm, dst, tag int, bytes int64, payload interface{}) *Request {
	p := th.P
	cost := th.cost()
	worldDst := c.world(dst)
	v := p.selectVCI(c, tag)
	tel := th.telStart()
	th.mainBeginVCI(v)
	r := p.allocReqVCI(v)
	*r = Request{
		p: p, kind: SendReq, dst: worldDst, src: p.Rank,
		tag: tag, ctx: c.ctx, bytes: bytes, payload: payload,
		comm: c, maxBytes: -1, poolable: p.rel == nil, vci: v,
	}
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		// Revoked context or known-dead peer: the request failed at issue
		// and nothing reaches the wire (fail-fast, ft.go).
		th.mainEndVCI(v)
		th.telCall("Isend", tel)
		return r
	}
	meta := rtsMeta{src: c.rank(p.Rank), tag: tag, ctx: c.ctx, bytes: bytes}
	if bytes <= cost.EagerThreshold {
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{
			Kind: fabric.Eager, Src: p.Rank, Dst: worldDst,
			Bytes: bytes, Handle: r, Meta: meta, Payload: payload,
			VCI: v,
		}
		p.sendShard(th, pkt, true, r)
	} else {
		r.rndv = true
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{
			Kind: fabric.RTS, Src: p.Rank, Dst: worldDst, Handle: r, Meta: meta,
			VCI: v,
		}
		p.sendShard(th, pkt, false, r)
	}
	th.mainEndVCI(v)
	th.telCall("Isend", tel)
	return r
}

// Irecv posts a nonblocking receive for (src, tag) on the communicator.
// If a matching message already sits in the unexpected queue it is consumed
// immediately (the Fig. 3b "found in unexpected queue" transition).
func (th *Thread) Irecv(c *Comm, src, tag int) *Request {
	return th.IrecvN(c, src, tag, -1)
}

// IrecvN is Irecv with a receive-buffer bound: a matching message larger
// than maxBytes fails the request with MPI_ERR_TRUNCATE (the transfer still
// drains, like MPICH's truncating receive, so the sender is not wedged).
// maxBytes < 0 means unbounded.
func (th *Thread) IrecvN(c *Comm, src, tag int, maxBytes int64) *Request {
	p := th.P
	if p.vciWildcard(tag) {
		// AnyTag under a tag-hashed mapping cannot name one shard: take
		// the deterministic cross-VCI wildcard path.
		return th.irecvWild(c, src, tag, maxBytes)
	}
	cost := th.cost()
	v := p.selectVCI(c, tag)
	tel := th.telStart()
	th.mainBeginVCI(v)
	r := p.allocReqVCI(v)
	*r = Request{p: p, kind: RecvReq, src: src, tag: tag, ctx: c.ctx,
		comm: c, maxBytes: maxBytes, vci: v}
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		th.mainEndVCI(v)
		th.telCall("Irecv", tel)
		return r
	}
	if e := p.matchUnexpectedShard(th, v, src, tag, c.ctx); e != nil {
		th.S.Sleep(cost.UnexpectedMatchOverhead)
		r.bytes = e.bytes
		truncated := maxBytes >= 0 && e.bytes > maxBytes
		if e.rndv {
			// Late match of a rendezvous RTS: clear the sender to send.
			// On truncation the CTS still goes out so the sender drains
			// and completes; the guarded RData handler drops the payload.
			if truncated {
				r.fail(ErrTruncate, th.S.Now())
			}
			pkt := p.w.Fab.AllocPacket()
			*pkt = fabric.Packet{
				Kind: fabric.CTS, Src: p.Rank, Dst: e.src,
				Handle: e.senderReq, Meta: ctsMeta{recvReq: r},
				VCI: e.vci,
			}
			p.sendShard(th, pkt, false, nil)
		} else if truncated {
			r.fail(ErrTruncate, th.S.Now())
		} else {
			th.S.Sleep(cost.CopyTime(e.bytes)) // unexpected buffer -> user buffer
			r.payload = e.payload
			r.markComplete(th.S.Now())
		}
	} else {
		p.vcis[v].posted = append(p.vcis[v].posted, r)
	}
	th.mainEndVCI(v)
	th.telCall("Irecv", tel)
	return r
}

// irecvWild posts a cross-VCI wildcard receive: the request is posted on
// every shard's queue under all shard locks (ascending order), after a
// deterministic earliest-arrival scan of every shard's unexpected queue.
// The request object comes from the world pool and — receives are never
// recycled — provably outlives its tombstone copies on unmatched shards.
func (th *Thread) irecvWild(c *Comm, src, tag int, maxBytes int64) *Request {
	p := th.P
	cost := th.cost()
	tel := th.telStart()
	th.wildBegin()
	r := p.w.allocRequest()
	*r = Request{p: p, kind: RecvReq, src: src, tag: tag, ctx: c.ctx,
		comm: c, maxBytes: maxBytes, vci: -1, wild: true}
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		th.wildEnd()
		th.telCall("Irecv", tel)
		return r
	}
	// Earliest matching arrival across all shards wins (virtual arrival
	// time, shard index breaking ties) — the same total order a single
	// unexpected queue would have produced. Within one shard the queue is
	// arrival-ordered, so its first match is its earliest.
	bestShard, bestIdx := -1, -1
	for v, sh := range p.vcis {
		for i, e := range sh.unexp {
			if e.matches(src, tag, c.ctx) {
				if bestShard < 0 || e.arrivedAt < p.vcis[bestShard].unexp[bestIdx].arrivedAt {
					bestShard, bestIdx = v, i
				}
				break
			}
		}
		th.S.Sleep(cost.QueueSearchPerItem * int64(len(sh.unexp)+1))
	}
	if bestShard >= 0 {
		sh := p.vcis[bestShard]
		e := sh.unexp[bestIdx]
		sh.unexp = append(sh.unexp[:bestIdx], sh.unexp[bestIdx+1:]...)
		p.UnexpectedHits++
		if p.w.tel != nil {
			p.w.tel.Unexpected(th.S.Now() - e.arrivedAt)
		}
		r.vci = bestShard
		th.S.Sleep(cost.UnexpectedMatchOverhead)
		r.bytes = e.bytes
		truncated := maxBytes >= 0 && e.bytes > maxBytes
		if e.rndv {
			if truncated {
				r.fail(ErrTruncate, th.S.Now())
			}
			pkt := p.w.Fab.AllocPacket()
			*pkt = fabric.Packet{
				Kind: fabric.CTS, Src: p.Rank, Dst: e.src,
				Handle: e.senderReq, Meta: ctsMeta{recvReq: r},
				VCI: e.vci,
			}
			p.sendShard(th, pkt, false, nil)
		} else if truncated {
			r.fail(ErrTruncate, th.S.Now())
		} else {
			th.S.Sleep(cost.CopyTime(e.bytes))
			r.payload = e.payload
			r.markComplete(th.S.Now())
		}
	} else {
		// No arrival yet: cross-post to every shard so whichever shard the
		// message lands on can match it; the other copies become
		// tombstones once bound.
		for _, sh := range p.vcis {
			sh.posted = append(sh.posted, r)
		}
	}
	th.wildEnd()
	th.telCall("Irecv", tel)
	return r
}

// Wait blocks until the request completes, then frees it. While waiting it
// iterates the progress loop, yielding the critical section between polls
// (low priority under the priority lock). It returns the request's error,
// if any, after the configured error handler runs (MPI_ERRORS_ARE_FATAL,
// the default, panics instead of returning).
func (th *Thread) Wait(r *Request) error {
	if r.freed && !r.complete {
		return r.raiseAs(ErrRequest)
	}
	if th.P.w.eventDriven() {
		// Strong/continuation progress: park until a completion event
		// instead of iterating the progress loop (progressd.go).
		return th.waitEvent(r)
	}
	if r.freed {
		return r.raiseAs(ErrRequest)
	}
	if th.P.numVCI() > 1 {
		return th.waitVCI(r)
	}
	cost := th.cost()
	tel := th.telStart()
	th.stateBegin(simlock.High)
	if r.complete {
		th.S.Sleep(cost.RequestFreeWork)
		r.free()
		th.stateEnd(simlock.High)
		th.telCall("Wait", tel)
		return r.release()
	}
	th.stateEnd(simlock.High)
	th.pollBackoff = 0
	for {
		done := false
		th.progressRound(simlock.Low, func() {
			if r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				done = true
			}
		})
		if done {
			th.telCall("Wait", tel)
			return r.release()
		}
		th.progressYield()
	}
}

// waitVCI is Wait on a sharded runtime: the progress loop drives only the
// shard(s) the request can complete on — its own VCI, or every VCI while a
// wildcard is still unbound (re-read each round; a bind narrows the loop).
func (th *Thread) waitVCI(r *Request) error {
	cost := th.cost()
	tel := th.telStart()
	v0 := r.vci
	if v0 < 0 {
		v0 = 0
	}
	th.stateBeginVCI(v0, simlock.High)
	if r.complete {
		th.S.Sleep(cost.RequestFreeWork)
		r.free()
		th.stateEndVCI(v0, simlock.High)
		th.telCall("Wait", tel)
		return r.release()
	}
	th.stateEndVCI(v0, simlock.High)
	th.pollBackoff = 0
	done := false
	check := func() {
		if r.complete {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			done = true
		}
	}
	for {
		if v := r.vci; v >= 0 {
			th.progressRoundVCI(v, simlock.Low, check)
		} else {
			for v := 0; v < th.P.numVCI() && !done; v++ {
				th.progressRoundVCI(v, simlock.Low, check)
			}
		}
		if done {
			th.telCall("Wait", tel)
			return r.release()
		}
		th.progressYield()
	}
}

// Waitall blocks until every request completes. Requests are freed as their
// completion is detected, so a starving caller leaves its completed
// requests dangling — the §4.4 effect. It returns the first request error
// encountered (after the error handler runs); the remaining requests are
// still waited for and freed.
func (th *Thread) Waitall(rs []*Request) error {
	if len(rs) == 0 {
		return nil
	}
	switch th.P.w.Cfg.Progress {
	case ProgressStrong:
		return th.waitallEvent(rs)
	case ProgressContinuation:
		return th.waitallCont(rs)
	}
	if th.P.numVCI() > 1 {
		return th.waitallVCI(rs)
	}
	cost := th.cost()
	remaining := len(rs)
	pending := make([]*Request, len(rs))
	copy(pending, rs)
	var firstErr error

	reap := func() {
		for i := 0; i < len(pending); {
			if pending[i].complete {
				th.S.Sleep(cost.RequestFreeWork)
				r := pending[i]
				r.free()
				if err := r.release(); err != nil && firstErr == nil {
					firstErr = err
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				remaining--
			} else {
				i++
			}
		}
	}

	tel := th.telStart()
	th.stateBegin(simlock.High)
	reap()
	th.stateEnd(simlock.High)
	if remaining == 0 {
		th.telCall("Waitall", tel)
		return firstErr
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, reap)
		if remaining == 0 {
			th.telCall("Waitall", tel)
			return firstErr
		}
		th.progressYield()
	}
}

// waitallVCI is Waitall on a sharded runtime: each round polls only the
// shards that still have a pending request on them.
func (th *Thread) waitallVCI(rs []*Request) error {
	cost := th.cost()
	remaining := len(rs)
	pending := make([]*Request, len(rs))
	copy(pending, rs)
	var firstErr error

	reap := func() {
		for i := 0; i < len(pending); {
			if pending[i].complete {
				th.S.Sleep(cost.RequestFreeWork)
				r := pending[i]
				r.free()
				if err := r.release(); err != nil && firstErr == nil {
					firstErr = err
				}
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				remaining--
			} else {
				i++
			}
		}
	}

	tel := th.telStart()
	th.sweepDone(pending, func(_ int, r *Request) {
		th.S.Sleep(cost.RequestFreeWork)
		r.free()
		for i, q := range pending {
			if q == r {
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				break
			}
		}
		remaining--
		if err := r.release(); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	if remaining == 0 {
		th.telCall("Waitall", tel)
		return firstErr
	}
	th.pollBackoff = 0
	shards := make(shardSet, th.P.numVCI())
	for {
		if !shards.gather(pending) {
			shards[0] = true
		}
		for v := range shards {
			if !shards[v] {
				continue
			}
			th.progressRoundVCI(v, simlock.Low, reap)
			if remaining == 0 {
				th.telCall("Waitall", tel)
				return firstErr
			}
		}
		th.progressYield()
	}
}

// Test polls the runtime once and reports whether the request completed;
// if so, the request is freed. Test never enters the blocking progress
// loop, so under the priority lock it always runs at high priority — the
// paper's explanation for priority ≈ ticket in the Graph500/stencil runs.
func (th *Thread) Test(r *Request) bool {
	cost := th.cost()
	tel := th.telStart()
	done := false
	check := func() {
		if r.complete {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			done = true
		}
	}
	if th.P.numVCI() > 1 {
		if v := r.vci; v >= 0 {
			th.progressRoundVCI(v, simlock.High, check)
		} else {
			for v := 0; v < th.P.numVCI() && !done; v++ {
				th.progressRoundVCI(v, simlock.High, check)
			}
		}
	} else {
		th.progressRound(simlock.High, check)
	}
	th.telCall("Test", tel)
	if done {
		// Run the error handler (panic under MPI_ERRORS_ARE_FATAL);
		// under MPI_ERRORS_RETURN the caller inspects r.Err().
		_ = r.raise()
	}
	return done
}

// Testall polls once and frees/report-counts the completed requests,
// removing them from rs in place; it returns the still-pending remainder.
func (th *Thread) Testall(rs []*Request) []*Request {
	cost := th.cost()
	var out []*Request
	var failed []*Request
	reap := func() {
		out = rs[:0]
		for _, r := range rs {
			if r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				if r.err != nil {
					failed = append(failed, r)
				}
			} else {
				out = append(out, r)
			}
		}
	}
	if th.P.numVCI() > 1 {
		// Poll each shard with pending work, then reap the completed
		// requests shard by shard under their own state sections.
		shards := make(shardSet, th.P.numVCI())
		if !shards.gather(rs) {
			shards[0] = true
		}
		for v := range shards {
			if shards[v] {
				th.progressRoundVCI(v, simlock.High, nil)
			}
		}
		th.sweepDone(rs, func(_ int, r *Request) {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			if r.err != nil {
				failed = append(failed, r)
			}
		})
		out = rs[:0]
		for _, r := range rs {
			if !r.freed {
				out = append(out, r)
			}
		}
	} else {
		th.progressRound(simlock.High, reap)
	}
	for _, r := range failed {
		_ = r.raise()
	}
	return out
}

// CancelRecv cancels a posted receive that has not matched, removing it
// from the posted queue and releasing the request (MPI_Cancel semantics for
// receives). It panics if the request already completed — the caller must
// check Complete() first, inside its own synchronization.
func (th *Thread) CancelRecv(r *Request) {
	if r.kind != RecvReq {
		panic("mpi: CancelRecv on a non-receive request")
	}
	p := th.P
	cost := th.cost()
	if p.numVCI() > 1 && r.wild && r.vci < 0 {
		// Unbound wildcard: withdraw every cross-posted copy under all
		// shard locks.
		th.wildBegin()
		th.S.Sleep(cost.RequestFreeWork)
		if r.complete {
			th.wildEnd()
			panic("mpi: CancelRecv on a completed request")
		}
		for _, sh := range p.vcis {
			for i, q := range sh.posted {
				if q == r {
					sh.posted = append(sh.posted[:i], sh.posted[i+1:]...)
					break
				}
			}
		}
		if r.deadline != nil {
			r.deadline.Cancel()
			r.deadline = nil
		}
		r.freed = true
		p.outstanding--
		th.wildEnd()
		return
	}
	v := r.vci
	if v < 0 {
		v = 0
	}
	th.stateBeginVCI(v, simlock.High)
	th.S.Sleep(cost.RequestFreeWork)
	if r.complete {
		th.stateEndVCI(v, simlock.High)
		panic("mpi: CancelRecv on a completed request")
	}
	for i, q := range p.vcis[v].posted {
		if q == r {
			p.vcis[v].posted = append(p.vcis[v].posted[:i], p.vcis[v].posted[i+1:]...)
			break
		}
	}
	if r.deadline != nil {
		r.deadline.Cancel()
		r.deadline = nil
	}
	r.freed = true
	p.outstanding--
	th.stateEndVCI(v, simlock.High)
}

// Send is a blocking send (Isend + Wait).
func (th *Thread) Send(c *Comm, dst, tag int, bytes int64, payload interface{}) {
	th.Wait(th.Isend(c, dst, tag, bytes, payload)) //simcheck:allow errdrop blocking Send has no error result; the handler runs inside Wait
}

// Recv is a blocking receive (Irecv + Wait); it returns the payload.
func (th *Thread) Recv(c *Comm, src, tag int) interface{} {
	r := th.Irecv(c, src, tag)
	th.Wait(r) //simcheck:allow errdrop blocking Recv has no error result; the handler runs inside Wait
	return r.payload
}

// Sendrecv concurrently sends to dst and receives from src, blocking until
// both complete. It returns the received payload.
func (th *Thread) Sendrecv(c *Comm, dst, dtag int, bytes int64, payload interface{},
	src, stag int) interface{} {
	rr := th.Irecv(c, src, stag)
	sr := th.Isend(c, dst, dtag, bytes, payload)
	th.Waitall([]*Request{sr, rr}) //simcheck:allow errdrop blocking Sendrecv has no error result; the handler runs inside Waitall
	return rr.payload
}
