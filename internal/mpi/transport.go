package mpi

import (
	"fmt"
	"sort"
	"strings"

	"mpicontend/internal/fabric"
	"mpicontend/internal/fault"
	"mpicontend/internal/sim"
)

// This file implements the reliable transport the runtime switches to when
// a fault plane is active: every protocol packet (eager, rendezvous
// control and data, RMA) carries a per-flow sequence number, is
// acknowledged by the receiver, retransmitted under exponential backoff
// with seeded jitter when the ACK does not arrive, and deduplicated at the
// receiver. ACK/NACK processing and duplicate suppression run at NIC
// ("driver") level in engine context; the ACK for a first delivery is only
// sent when the progress loop actually processes the packet — so a runtime
// whose critical section is monopolized answers late, draws spurious
// retransmits, and feeds the progress loop even more work. That coupling
// is the contention-hostile regime the fault plane exists to create.
//
// With no fault plane the transport is entirely absent (p.rel == nil):
// no sequence numbers, no timers, no extra packets, no extra rng draws —
// fault-free runs are byte-identical to the pre-fault runtime.

// backoffCap bounds the exponential backoff shift (RTO * 2^attempts).
const backoffCap = 6

// stallIntervals is how many consecutive idle watchdog intervals (with
// requests outstanding) count as a stalled pipeline.
const stallIntervals = 3

// txKey identifies an in-flight reliable packet: destination rank, VCI,
// and per-flow sequence number.
type txKey struct {
	dst int
	vci int
	seq uint64
}

// flowKey names one reliable flow: a peer rank and a VCI. Sequencing is
// per flow, so sharded traffic between the same pair of ranks does not
// serialize through one sequence space (and one shard's loss cannot
// head-of-line-block another's). With one VCI every flow has vci 0 and the
// keying degenerates to the old per-peer counters.
type flowKey struct {
	peer int
	vci  int
}

// txRecord tracks one unacknowledged reliable packet at the sender.
type txRecord struct {
	pkt      *fabric.Packet
	owner    *Request // local request to fail on give-up; may be nil
	attempts int
	acked    bool
	timer    *sim.Timer
}

// rxFlow is the receiver side of one (source -> this proc) flow:
// duplicate suppression, gap detection, and in-order release. MPI's
// non-overtaking rule needs FIFO delivery per pair, which retransmissions
// would otherwise break — so out-of-order arrivals are stashed until the
// gap fills, exactly like a TCP reassembly queue.
type rxFlow struct {
	// expected is the lowest sequence number not yet released to the
	// protocol layer; everything below it has been delivered in order.
	expected uint64
	// stash holds out-of-order arrivals above expected.
	stash map[uint64]*fabric.Packet
}

// seen reports whether seq already arrived on this flow.
func (fl *rxFlow) seen(seq uint64) bool {
	if seq < fl.expected {
		return true
	}
	_, ok := fl.stash[seq]
	return ok
}

// admit records an arrival and returns the packets now releasable in
// order: nil while a gap remains, the packet (plus any stashed successors)
// once contiguous.
func (fl *rxFlow) admit(pkt *fabric.Packet) []*fabric.Packet {
	if pkt.Seq > fl.expected {
		if fl.stash == nil {
			fl.stash = make(map[uint64]*fabric.Packet)
		}
		fl.stash[pkt.Seq] = pkt
		return nil
	}
	out := []*fabric.Packet{pkt}
	fl.expected++
	for {
		q, ok := fl.stash[fl.expected]
		if !ok {
			return out
		}
		delete(fl.stash, fl.expected)
		out = append(out, q)
		fl.expected++
	}
}

// relState is a process's reliable-transport state.
type relState struct {
	p     *Proc
	plane *fault.Plane
	cfg   fault.Config // effective (default-filled) tuning

	nextSeq map[flowKey]uint64
	tx      map[txKey]*txRecord
	rx      map[flowKey]*rxFlow

	// onTimeoutFn is the long-lived retransmit callback passed to
	// AtTimerArg, so arming a timer allocates no closure per packet.
	onTimeoutFn func(interface{})

	// Counters (surfaced through World.NetStats).
	Retransmits     int64
	FastRetransmits int64
	DupsSuppressed  int64
	AcksSent        int64
	AcksReceived    int64
	NacksSent       int64
	GiveUps         int64
	// PartRetransmits counts partitions covered by retransmitted PartData
	// segments (partition-granularity recovery, partitioned.go).
	PartRetransmits int64
}

func newRelState(p *Proc, plane *fault.Plane) *relState {
	rs := &relState{
		p: p, plane: plane, cfg: plane.Config(),
		nextSeq: make(map[flowKey]uint64),
		tx:      make(map[txKey]*txRecord),
		rx:      make(map[flowKey]*rxFlow),
	}
	rs.onTimeoutFn = func(arg interface{}) { rs.onTimeout(arg.(*txRecord)) }
	return rs
}

// send routes a protocol packet through the transport when reliability is
// on, and straight to the NIC otherwise. owner, when non-nil, is the local
// request to fail if the transport exhausts its retries.
//
//simcheck:hotpath per-packet send path; allocations here scale with message count
func (p *Proc) send(pkt *fabric.Packet, notifyTx bool, owner *Request) sim.Time {
	if p.rel == nil {
		return p.ep.Send(pkt, notifyTx)
	}
	return p.rel.send(pkt, notifyTx, owner)
}

func (rs *relState) send(pkt *fabric.Packet, notifyTx bool, owner *Request) sim.Time {
	fk := flowKey{pkt.Dst, pkt.VCI}
	seq := rs.nextSeq[fk]
	rs.nextSeq[fk] = seq + 1
	pkt.Seq, pkt.Rel = seq, true
	//simcheck:allow hotalloc per-in-flight-packet reliability state, retired on ACK
	rec := &txRecord{pkt: pkt, owner: owner}
	rs.tx[txKey{pkt.Dst, pkt.VCI, seq}] = rec
	t := rs.p.ep.Send(pkt, notifyTx)
	rs.arm(rec)
	return t
}

// arm schedules rec's retransmit timer: base RTO doubled per attempt (capped
// at 2^backoffCap) plus seeded jitter of up to RTO/4.
func (rs *relState) arm(rec *txRecord) {
	shift := rec.attempts
	if shift > backoffCap {
		shift = backoffCap
	}
	rto := rs.cfg.RTONs << uint(shift)
	rto += rs.plane.BackoffJitter(rs.cfg.RTONs / 4)
	eng := rs.p.w.Eng
	rec.timer = eng.AtTimerArg(eng.Now()+rto, rs.onTimeoutFn, rec)
}

// onTimeout fires when rec's ACK did not arrive in time: retransmit with
// doubled backoff, or give up and fail the owning request.
func (rs *relState) onTimeout(rec *txRecord) {
	if rec.acked {
		return
	}
	if ft := rs.p.ft; ft != nil && ft.isDead(rec.pkt.Dst) {
		// Dead-peer check: the destination was declared failed since this
		// packet went out. Fail fast with ErrProcFailed instead of
		// retransmitting into the blackhole until retry exhaustion.
		delete(rs.tx, txKey{rec.pkt.Dst, rec.pkt.VCI, rec.pkt.Seq})
		rs.p.w.ft.deadAborts++
		if rec.owner != nil {
			rec.owner.fail(ErrProcFailed, rs.p.w.Eng.Now())
		}
		return
	}
	rec.attempts++
	if rec.attempts > rs.cfg.MaxRetries {
		rs.GiveUps++
		delete(rs.tx, txKey{rec.pkt.Dst, rec.pkt.VCI, rec.pkt.Seq})
		rs.p.w.faultEvent("giveup", rs.p.Rank)
		if rec.owner != nil {
			rec.owner.fail(ErrRetryExhausted, rs.p.w.Eng.Now())
		}
		return
	}
	rs.Retransmits++
	rs.p.w.retransmitsTotal++
	rs.p.w.faultEvent("retransmit", rs.p.Rank)
	rs.resend(rec)
	rs.arm(rec)
}

// resend injects a fresh copy of rec's packet (same sequence number, no
// TxDone: the first injection already reported buffer reuse).
func (rs *relState) resend(rec *txRecord) {
	if rec.pkt.Kind == fabric.PartData {
		// Partition-granularity recovery: each segment is its own
		// sequence-numbered unit, so only this range's partitions go out
		// again — count them for the retransmit-locality assertion.
		m := rec.pkt.Meta.(partMeta)
		rs.PartRetransmits += int64(m.hi - m.lo)
	}
	clone := *rec.pkt
	rs.p.ep.Send(&clone, false)
}

// admit runs at NIC level (engine context) on every delivered packet. It
// consumes transport control traffic (ACK/NACK) and duplicate data packets
// and enforces per-flow in-order release: the returned slice holds the
// packets the protocol layer may now process (empty while reordering or
// loss leaves a sequence gap).
func (rs *relState) admit(pkt *fabric.Packet) []*fabric.Packet {
	switch pkt.Kind {
	case fabric.Ack:
		rs.onAck(pkt)
		return nil
	case fabric.Nack:
		rs.onNack(pkt)
		return nil
	}
	if !pkt.Rel {
		return []*fabric.Packet{pkt}
	}
	fk := flowKey{pkt.Src, pkt.VCI}
	fl := rs.rx[fk]
	if fl == nil {
		fl = &rxFlow{}
		rs.rx[fk] = fl
	}
	if fl.seen(pkt.Seq) {
		// Duplicate (fault-injected copy, or a retransmit racing the
		// ACK). Suppress it and re-ACK immediately at driver level so a
		// slow progress loop cannot sustain a retransmit storm for a
		// packet that already arrived.
		rs.DupsSuppressed++
		rs.sendAck(pkt.Src, pkt.VCI, pkt.Seq)
		return nil
	}
	if pkt.Seq > fl.expected {
		// Sequence gap: request fast retransmit of the lowest missing
		// packet instead of waiting out the sender's timer. The arrival
		// is stashed; a duplicate of a stashed packet is ACKed at driver
		// level above, which is safe — stashed packets are never lost,
		// only held until the flow is contiguous again.
		rs.sendNack(pkt.Src, pkt.VCI, fl.expected)
	}
	return fl.admit(pkt)
}

// onAck completes the matching tx record and cancels its timer.
func (rs *relState) onAck(pkt *fabric.Packet) {
	rs.AcksReceived++
	rec, ok := rs.tx[txKey{pkt.Src, pkt.VCI, pkt.Seq}]
	if !ok {
		return // duplicate ACK for an already-retired record
	}
	rec.acked = true
	if rec.timer != nil {
		rec.timer.Cancel()
	}
	delete(rs.tx, txKey{pkt.Src, pkt.VCI, pkt.Seq})
}

// onNack fast-retransmits the named missing packet if it is still
// unacknowledged.
func (rs *relState) onNack(pkt *fabric.Packet) {
	rec, ok := rs.tx[txKey{pkt.Src, pkt.VCI, pkt.Seq}]
	if !ok || rec.acked {
		return
	}
	rs.FastRetransmits++
	rs.p.w.retransmitsTotal++
	rs.p.w.faultEvent("retransmit", rs.p.Rank)
	if rec.timer != nil {
		rec.timer.Cancel()
	}
	rs.resend(rec)
	rs.arm(rec)
}

// ackDelivered acknowledges a reliable packet that the progress engine has
// just processed. Called from handlePacket, i.e. only once the runtime's
// critical section actually got around to the packet — a starved progress
// loop therefore ACKs late and draws retransmits.
func (rs *relState) ackDelivered(pkt *fabric.Packet) {
	rs.sendAck(pkt.Src, pkt.VCI, pkt.Seq)
}

// sendAck/sendNack echo the flow's VCI so the sender retires/retransmits
// the record of the right shard's flow.
func (rs *relState) sendAck(to, vci int, seq uint64) {
	rs.AcksSent++
	//simcheck:allow hotalloc reliability-mode traffic is deliberately unpooled: duplicate deliveries share the struct
	rs.p.ep.Send(&fabric.Packet{
		Kind: fabric.Ack, Src: rs.p.Rank, Dst: to, Seq: seq, VCI: vci,
	}, false)
}

func (rs *relState) sendNack(to, vci int, seq uint64) {
	rs.NacksSent++
	rs.p.ep.Send(&fabric.Packet{
		Kind: fabric.Nack, Src: rs.p.Rank, Dst: to, Seq: seq, VCI: vci,
	}, false)
}

// pendingTx returns the number of unacknowledged reliable packets.
func (rs *relState) pendingTx() int { return len(rs.tx) }

// armDeadline starts the per-request deadline timer when the scenario
// configures one (rendezvous CTS timeouts, unmatched receives, lost acks).
func (p *Proc) armDeadline(r *Request) {
	if p.rel == nil {
		return
	}
	d := p.rel.cfg.RequestTimeoutNs
	if d <= 0 {
		return
	}
	eng := p.w.Eng
	r.deadline = eng.AtTimer(eng.Now()+d, func() {
		r.fail(ErrTimeout, eng.Now())
	})
}

// NetStats aggregates the fault plane's injection counters and the
// transport counters across all processes.
type NetStats struct {
	Fault fault.Stats

	Retransmits     int64
	FastRetransmits int64
	DupsSuppressed  int64
	AcksSent        int64
	AcksReceived    int64
	NacksSent       int64
	// GiveUps counts packets the transport abandoned after MaxRetries.
	GiveUps int64
	// PartRetransmits counts partitions re-sent by partitioned-epoch
	// segment retransmissions (partition-granularity recovery: only the
	// unacked ranges of a dropped aggregate go out again). Deliberately
	// absent from String to keep pre-existing table output stable.
	PartRetransmits int64
	// RequestFailures counts requests completed with an error.
	RequestFailures int64
	// WatchdogStalls counts progress-watchdog stall reports.
	WatchdogStalls int64
}

// String renders the stats compactly for experiment tables and logs.
func (s NetStats) String() string {
	return fmt.Sprintf("retx=%d fastretx=%d dup=%d acks=%d/%d nacks=%d giveups=%d reqfail=%d stalls=%d faults[%s]",
		s.Retransmits, s.FastRetransmits, s.DupsSuppressed, s.AcksSent,
		s.AcksReceived, s.NacksSent, s.GiveUps, s.RequestFailures,
		s.WatchdogStalls, s.Fault)
}

// NetStats returns the world-wide resilience counters (all zero on a
// perfect network).
func (w *World) NetStats() NetStats {
	var s NetStats
	s.Fault = w.Fab.FaultStats()
	for _, p := range w.Procs {
		if p.rel == nil {
			continue
		}
		s.Retransmits += p.rel.Retransmits
		s.FastRetransmits += p.rel.FastRetransmits
		s.DupsSuppressed += p.rel.DupsSuppressed
		s.AcksSent += p.rel.AcksSent
		s.AcksReceived += p.rel.AcksReceived
		s.NacksSent += p.rel.NacksSent
		s.GiveUps += p.rel.GiveUps
		s.PartRetransmits += p.rel.PartRetransmits
	}
	s.RequestFailures = w.requestFailures
	s.WatchdogStalls = w.watchdogStalls
	return s
}

// CheckClean verifies end-of-run delivery invariants: no residual queue
// entries (a leftover unexpected message means a duplicate or stray
// delivery reached the application), no live or dangling requests. The
// chaos soak runs it after every scenario.
func (w *World) CheckClean() error {
	var problems []string
	for _, p := range w.Procs {
		posted, unexp, cq := 0, 0, 0
		pposted, punexp := 0, 0
		for _, sh := range p.vcis {
			live := 0
			for _, r := range sh.posted {
				// A tombstone (a wildcard bound or completed elsewhere,
				// awaiting lazy pruning) is not residue.
				if r.wild && (r.complete || r.freed || (r.vci >= 0 && r.vci != sh.idx)) {
					continue
				}
				live++
			}
			posted += live
			unexp += len(sh.unexp)
			cq += len(sh.cq)
			pposted += len(sh.pposted)
			punexp += len(sh.punexp)
		}
		if posted > 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d posted receives never matched", p.Rank, posted))
		}
		if unexp > 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d unexpected messages never consumed", p.Rank, unexp))
		}
		if cq > 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d completion-queue events unprocessed", p.Rank, cq))
		}
		if pposted > 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d partitioned receives never matched", p.Rank, pposted))
		}
		if punexp > 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d partitioned arrivals never consumed", p.Rank, punexp))
		}
		if p.outstanding != 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d requests still outstanding", p.Rank, p.outstanding))
		}
		if p.danglingNow != 0 {
			problems = append(problems, fmt.Sprintf("rank %d: %d requests dangling", p.Rank, p.danglingNow))
		}
		if p.rel != nil {
			// Report in (rank, vci) order: map iteration order would make
			// the residue message differ between runs.
			flows := make([]flowKey, 0, len(p.rel.rx))
			for fk := range p.rel.rx {
				flows = append(flows, fk)
			}
			sort.Slice(flows, func(i, j int) bool {
				if flows[i].peer != flows[j].peer {
					return flows[i].peer < flows[j].peer
				}
				return flows[i].vci < flows[j].vci
			})
			for _, fk := range flows {
				if n := len(p.rel.rx[fk].stash); n > 0 {
					problems = append(problems, fmt.Sprintf(
						"rank %d: %d packets from rank %d stuck behind a sequence gap", p.Rank, n, fk.peer))
				}
			}
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("mpi: residue after run:\n  %s", strings.Join(problems, "\n  "))
}

// startWatchdog arms the progress watchdog: every interval it checks
// whether any packet was delivered, any request completed or any
// retransmit fired; after stallIntervals consecutive idle intervals with
// requests outstanding it records a dangling-request report and stops the
// run with an error.
func (w *World) startWatchdog(interval sim.Time) {
	var lastDelivered, lastCompleted, lastRetrans int64
	idle := 0
	var tick func()
	tick = func() {
		outstanding := 0
		for _, p := range w.Procs {
			if p.crashed {
				// A fail-stopped rank's requests are dead weight, not a
				// stalled pipeline; survivors' progress is what matters.
				continue
			}
			outstanding += p.outstanding
		}
		active := w.deliveredTotal != lastDelivered ||
			w.completedTotal != lastCompleted ||
			w.retransmitsTotal != lastRetrans
		lastDelivered, lastCompleted, lastRetrans =
			w.deliveredTotal, w.completedTotal, w.retransmitsTotal
		if outstanding > 0 && !active {
			idle++
			if idle >= stallIntervals {
				w.watchdogStalls++
				w.stallErr = fmt.Errorf(
					"mpi: progress watchdog: pipeline stalled for %d ns with %d requests outstanding\n%s",
					int64(idle)*interval, outstanding, w.DanglingReport())
				w.Eng.Stop()
				return
			}
		} else {
			idle = 0
		}
		w.Eng.After(interval, tick)
	}
	w.Eng.After(interval, tick)
}

// DanglingReport renders per-process request and queue state — the
// watchdog's diagnostic of a stalled pipeline.
func (w *World) DanglingReport() string {
	var b strings.Builder
	b.WriteString("per-rank request state:\n")
	for _, p := range w.Procs {
		pending := 0
		if p.rel != nil {
			pending = p.rel.pendingTx()
		}
		posted, unexp, cq := 0, 0, 0
		for _, sh := range p.vcis {
			posted += len(sh.posted)
			unexp += len(sh.unexp)
			cq += len(sh.cq)
		}
		fmt.Fprintf(&b, "  rank %d: outstanding=%d dangling=%d posted=%d unexpected=%d cq=%d unacked-tx=%d\n",
			p.Rank, p.outstanding, p.danglingNow, posted, unexp, cq, pending)
		if p.rel != nil && pending > 0 {
			keys := make([]txKey, 0, pending)
			for k := range p.rel.tx {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].dst != keys[j].dst {
					return keys[i].dst < keys[j].dst
				}
				if keys[i].vci != keys[j].vci {
					return keys[i].vci < keys[j].vci
				}
				return keys[i].seq < keys[j].seq
			})
			if len(keys) > 4 {
				keys = keys[:4]
			}
			for _, k := range keys {
				rec := p.rel.tx[k]
				fmt.Fprintf(&b, "    in flight: %v seq %d -> rank %d, %d attempts\n",
					rec.pkt.Kind, k.seq, k.dst, rec.attempts)
			}
		}
	}
	return b.String()
}
