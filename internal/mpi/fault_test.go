package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mpicontend/internal/fault"
	"mpicontend/internal/simlock"
)

// withFault is a testWorld option enabling a fault scenario.
func withFault(fc fault.Config) func(*Config) {
	return func(c *Config) { c.Fault = fc }
}

// runPingStream runs n eager messages rank 0 -> rank 1 and returns the
// world for invariant checks. Payloads are distinct so loss or duplication
// is observable.
func runPingStream(t *testing.T, n int, opts ...func(*Config)) *World {
	t.Helper()
	w := testWorld(t, 2, opts...)
	c := w.Comm()
	var got []interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Send(c, 1, 7, 64, i)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		for i := 0; i < n; i++ {
			got = append(got, th.Recv(c, 0, 7))
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d: got %v (lost/duplicated/reordered delivery)", i, v)
		}
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestResilientUnderDrop(t *testing.T) {
	w := runPingStream(t, 40, withFault(fault.Config{DropProb: 0.2}))
	s := w.NetStats()
	if s.Fault.Dropped == 0 {
		t.Fatalf("scenario injected no drops: %v", s)
	}
	if s.Retransmits == 0 {
		t.Fatalf("drops survived without retransmits: %v", s)
	}
	if s.GiveUps != 0 || s.RequestFailures != 0 {
		t.Fatalf("unexpected failures: %v", s)
	}
}

func TestResilientUnderDuplication(t *testing.T) {
	w := runPingStream(t, 40, withFault(fault.Config{DupProb: 0.3}))
	s := w.NetStats()
	if s.Fault.Duplicated == 0 {
		t.Fatalf("scenario injected no duplicates: %v", s)
	}
	if s.DupsSuppressed == 0 {
		t.Fatalf("duplicates reached the protocol layer: %v", s)
	}
}

func TestResilientUnderDelayAndReorder(t *testing.T) {
	runPingStream(t, 40, withFault(fault.Config{DelayProb: 0.4, DelayMaxNs: 50_000}))
}

func TestResilientUnderCombinedStorm(t *testing.T) {
	w := runPingStream(t, 30, withFault(fault.Config{
		DropProb: 0.1, DupProb: 0.1, DelayProb: 0.2,
		NICStallProb: 0.05, PreemptProb: 0.02,
	}))
	if w.NetStats().Retransmits == 0 {
		t.Fatal("storm scenario produced no retransmits")
	}
}

func TestResilientRendezvousUnderDrop(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{DropProb: 0.2}))
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 1, big, "bulk")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		got = th.Recv(c, 0, 1)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "bulk" {
		t.Fatalf("rendezvous payload lost: %v", got)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestResilientRMAUnderDrop(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{DropProb: 0.15}))
	win := w.NewWin(8)
	w.SpawnAsyncProgress(1) // passive target needs a progress thread
	w.Spawn(0, "origin", func(th *Thread) {
		r1 := th.Put(win, 1, 0, []float64{1, 2, 3})
		th.Wait(r1)
		r2 := th.Get(win, 1, 0, 3)
		th.Wait(r2)
		got := r2.Data().([]float64)
		if got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("rma roundtrip corrupted: %v", got)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultRunDeterministic(t *testing.T) {
	run := func() (int64, NetStats) {
		w := runPingStream(t, 30, withFault(fault.Config{
			DropProb: 0.15, DupProb: 0.1, DelayProb: 0.2,
		}))
		return w.Eng.Now(), w.NetStats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("final virtual time diverged: %d vs %d", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("net stats diverged:\n%v\n%v", s1, s2)
	}
}

func TestWaitOnTimedOutRecvReturnsError(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var waitErr error
	w.Spawn(0, "receiver", func(th *Thread) {
		r := th.Irecv(c, 1, 9) // nobody ever sends
		waitErr = th.Wait(r)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTimeout {
		t.Fatalf("want MPI_ERR_TIMEOUT, got %v", waitErr)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatalf("timed-out recv left residue: %v", err)
	}
	if w.NetStats().RequestFailures != 1 {
		t.Fatalf("failure not counted: %v", w.NetStats())
	}
}

func TestTimedOutRequestIsFatalByDefault(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	c := w.Comm()
	var recovered interface{}
	w.Spawn(0, "receiver", func(th *Thread) {
		defer func() { recovered = recover() }()
		th.Wait(th.Irecv(c, 1, 9))
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	msg, ok := recovered.(string)
	if !ok || !strings.Contains(msg, "MPI_ERR_TIMEOUT") {
		t.Fatalf("MPI_ERRORS_ARE_FATAL must panic with the code, got %v", recovered)
	}
}

func TestRetryExhaustedSurfaces(t *testing.T) {
	// DropProb 1 destroys every wire packet; the rendezvous RTS can never
	// get through, so the transport gives up after MaxRetries and fails
	// the send.
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 1, MaxRetries: 3, RTONs: 10_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	var waitErr error
	w.Spawn(0, "sender", func(th *Thread) {
		waitErr = th.Wait(th.Isend(c, 1, 1, big, "doomed"))
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrRetryExhausted {
		t.Fatalf("want MPI_ERR_RETRY_EXHAUSTED, got %v", waitErr)
	}
	if w.NetStats().GiveUps == 0 {
		t.Fatalf("give-up not counted: %v", w.NetStats())
	}
}

func TestWaitAfterFreeIsErrRequest(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{DropProb: 0.001}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var second error
	w.Spawn(0, "sender", func(th *Thread) {
		r := th.Isend(c, 1, 7, 64, "x")
		th.Wait(r) // completes and frees
		second = th.Wait(r)
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		th.Recv(c, 0, 7)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(second, &merr) || merr.Code != ErrRequest {
		t.Fatalf("want MPI_ERR_REQUEST on double wait, got %v", second)
	}
}

func TestIrecvNTruncationPostedPath(t *testing.T) {
	w := testWorld(t, 2)
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var waitErr error
	w.Spawn(1, "receiver", func(th *Thread) {
		r := th.IrecvN(c, 0, 7, 16) // buffer smaller than the message
		waitErr = th.Wait(r)
	})
	w.Spawn(0, "sender", func(th *Thread) {
		th.S.Sleep(50_000) // let the receive post first
		th.Send(c, 1, 7, 64, "wide")
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTruncate {
		t.Fatalf("want MPI_ERR_TRUNCATE, got %v", waitErr)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestIrecvNTruncationUnexpectedPath(t *testing.T) {
	w := testWorld(t, 2)
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var waitErr error
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 7, 64, "wide")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		th.S.Sleep(200_000) // let the message land in the unexpected queue
		r := th.IrecvN(c, 0, 7, 16)
		waitErr = th.Wait(r)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTruncate {
		t.Fatalf("want MPI_ERR_TRUNCATE, got %v", waitErr)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestIrecvNTruncatedRendezvousDrainsSender(t *testing.T) {
	// Truncation on a rendezvous match must not wedge the sender: the CTS
	// still goes out, the data drains, only the receive errors.
	w := testWorld(t, 2)
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	var sendErr, recvErr error
	w.Spawn(0, "sender", func(th *Thread) {
		sendErr = th.Wait(th.Isend(c, 1, 1, big, "bulk"))
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		recvErr = th.Wait(th.IrecvN(c, 0, 1, 16))
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil {
		t.Fatalf("sender must complete cleanly, got %v", sendErr)
	}
	var merr *Error
	if !errors.As(recvErr, &merr) || merr.Code != ErrTruncate {
		t.Fatalf("want MPI_ERR_TRUNCATE on the receive, got %v", recvErr)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestCommErrhandlerOverridesWorld(t *testing.T) {
	// World stays fatal; the comm opts into ErrorsReturn — requests on it
	// must return instead of panicking.
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	c := w.Comm()
	c.SetErrhandler(ErrorsReturn)
	var waitErr error
	w.Spawn(0, "receiver", func(th *Thread) {
		waitErr = th.Wait(th.Irecv(c, 1, 9))
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTimeout {
		t.Fatalf("comm-level MPI_ERRORS_RETURN ignored: %v", waitErr)
	}
}

func TestCommInheritsWorldErrhandler(t *testing.T) {
	// A comm that never set a handler follows the world's ErrorsReturn.
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	var waitErr error
	w.Spawn(0, "receiver", func(th *Thread) {
		c := w.Comm()
		waitErr = th.Wait(th.Irecv(c, 1, 9))
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTimeout {
		t.Fatalf("world handler not inherited: %v", waitErr)
	}
}

func TestProgressWatchdogReportsStall(t *testing.T) {
	// An unmatched receive with no request deadline: nothing ever
	// completes, so the watchdog must stop the run and name the dangling
	// state.
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, WatchdogNs: 500_000,
	}))
	c := w.Comm()
	w.Spawn(0, "receiver", func(th *Thread) {
		th.Wait(th.Irecv(c, 1, 9))
	})
	err := w.Run()
	if err == nil {
		t.Fatal("stalled run must return the watchdog error")
	}
	if !strings.Contains(err.Error(), "progress watchdog") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(err.Error(), "outstanding=1") {
		t.Fatalf("report must show the dangling request: %v", err)
	}
	if w.NetStats().WatchdogStalls != 1 {
		t.Fatalf("stall not counted: %v", w.NetStats())
	}
}

func TestPreemptionStallsSlowTheRun(t *testing.T) {
	base := runPingStream(t, 20, withFault(fault.Config{PreemptProb: 0.0000001}))
	slow := runPingStream(t, 20, withFault(fault.Config{PreemptProb: 0.5, PreemptNs: 50_000}))
	if slow.Eng.Now() <= base.Eng.Now() {
		t.Fatalf("lock-holder preemption did not slow the run: %d vs %d",
			slow.Eng.Now(), base.Eng.Now())
	}
	if slow.FaultPlane().Stats().Preempts == 0 {
		t.Fatal("no preemptions injected")
	}
}

func TestWaitallSurfacesFirstError(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var waitErr error
	w.Spawn(0, "mixed", func(th *Thread) {
		good := th.Isend(c, 1, 7, 64, "ok")
		bad := th.Irecv(c, 1, 9) // never matched -> times out
		waitErr = th.Waitall([]*Request{good, bad})
	})
	w.Spawn(1, "peer", func(th *Thread) {
		th.Recv(c, 0, 7)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(waitErr, &merr) || merr.Code != ErrTimeout {
		t.Fatalf("Waitall must surface the timeout, got %v", waitErr)
	}
}

func TestTestSetsErrOnFailedRequest(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var got error
	w.Spawn(0, "poller", func(th *Thread) {
		r := th.Irecv(c, 1, 9)
		for !th.Test(r) {
			th.S.Sleep(10_000)
		}
		got = r.Err()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var merr *Error
	if !errors.As(got, &merr) || merr.Code != ErrTimeout {
		t.Fatalf("Request.Err after Test: %v", got)
	}
}

func TestFaultScenariosAcrossLocks(t *testing.T) {
	// The reliable transport must hold its invariants under every lock
	// arbitration the paper studies.
	for _, k := range []simlock.Kind{
		simlock.KindMutex, simlock.KindTicket, simlock.KindPriority, simlock.KindMCS,
	} {
		k := k
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			runPingStream(t, 25, withFault(fault.Config{
				DropProb: 0.1, DupProb: 0.1, DelayProb: 0.1,
			}), func(c *Config) { c.Lock = k })
		})
	}
}

// TestPartitionedRetransmitOnlyUnackedRanges: under a seeded drop schedule
// a partitioned epoch goes out as independently-sequenced segments of at
// most partSegSpan partitions, and only the segments the receiver never
// acknowledged are re-sent — partition-granularity recovery, not
// whole-epoch replay. NetStats.PartRetransmits counts re-sent partitions.
func TestPartitionedRetransmitOnlyUnackedRanges(t *testing.T) {
	w := testWorld(t, 2, withFault(fault.Config{DropProb: 0.25}))
	c := w.Comm()
	const parts = 64
	const epochs = 6
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 7, parts, 64, "chaos")
		for e := 0; e < epochs; e++ {
			th.Pstart(ps)
			if err := th.PreadyRange(ps, 0, parts); err != nil {
				t.Errorf("epoch %d: %v", e, err)
			}
			if err := th.Pwait(ps); err != nil {
				t.Errorf("epoch %d Pwait: %v", e, err)
			}
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 7, parts, 64)
		for e := 0; e < epochs; e++ {
			th.Pstart(pr)
			if err := th.Pwait(pr); err != nil {
				t.Errorf("epoch %d Pwait(recv): %v", e, err)
			}
			if pr.Data() != "chaos" {
				t.Errorf("epoch %d: payload %v", e, pr.Data())
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	s := w.NetStats()
	if s.Fault.Dropped == 0 {
		t.Fatalf("scenario injected no drops: %v", s)
	}
	if s.PartRetransmits == 0 {
		t.Fatalf("dropped segments survived without partition retransmits: %+v", s)
	}
	const total = parts * epochs
	if s.PartRetransmits >= total {
		t.Fatalf("retransmitted %d partitions of %d sent: whole-epoch replay, not range-granular", s.PartRetransmits, total)
	}
	if s.PartRetransmits%partSegSpan != 0 {
		t.Fatalf("retransmitted %d partitions: not a multiple of the %d-partition segment span", s.PartRetransmits, partSegSpan)
	}
	if s.GiveUps != 0 || s.RequestFailures != 0 {
		t.Fatalf("unexpected failures: %v", s)
	}
	if ps := w.PartStats(); ps.PartRetransmits != s.PartRetransmits {
		t.Fatalf("PartStats (%d) and NetStats (%d) disagree on retransmitted partitions", ps.PartRetransmits, s.PartRetransmits)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}
