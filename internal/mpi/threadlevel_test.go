package mpi

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func levelWorld(t *testing.T, lvl ThreadLevel) *World {
	t.Helper()
	w, err := NewWorld(Config{
		Topo:        machine.Nehalem2x4(2),
		Lock:        simlock.KindTicket, // overridden below MULTIPLE
		ThreadLevel: lvl,
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestThreadLevelNames(t *testing.T) {
	want := map[ThreadLevel]string{
		ThreadMultiple:   "MPI_THREAD_MULTIPLE",
		ThreadSingle:     "MPI_THREAD_SINGLE",
		ThreadFunneled:   "MPI_THREAD_FUNNELED",
		ThreadSerialized: "MPI_THREAD_SERIALIZED",
	}
	for l, s := range want {
		if l.String() != s {
			t.Fatalf("%d.String() = %q", l, l.String())
		}
	}
}

func TestFunneledMainThreadWorks(t *testing.T) {
	w := levelWorld(t, ThreadFunneled)
	c := w.Comm()
	var got interface{}
	w.Spawn(0, "main", func(th *Thread) {
		th.Send(c, 1, 0, 8, "ok")
	})
	w.Spawn(1, "main", func(th *Thread) {
		got = th.Recv(c, 0, 0)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatalf("got %v", got)
	}
}

func TestFunneledViolationPanics(t *testing.T) {
	w := levelWorld(t, ThreadFunneled)
	c := w.Comm()
	violated := false
	// First thread establishes itself as the main thread.
	w.Spawn(0, "main", func(th *Thread) {
		th.Isend(c, 1, 0, 8, nil)
	})
	w.Spawn(0, "rogue", func(th *Thread) {
		defer func() {
			if recover() != nil {
				violated = true
			}
		}()
		th.S.Sleep(1000) // let the main thread call first
		th.Irecv(c, 1, 0)
	})
	w.Spawn(1, "peer", func(th *Thread) {
		th.Recv(c, 0, 0)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Fatal("FUNNELED violation not detected")
	}
}

func TestSerializedAlternationWorks(t *testing.T) {
	// Two threads call MPI strictly alternately (app-level serialization
	// via simulated time): legal under SERIALIZED.
	w := levelWorld(t, ThreadSerialized)
	c := w.Comm()
	w.Spawn(0, "a", func(th *Thread) {
		th.Send(c, 1, 0, 8, 1)
	})
	w.Spawn(0, "b", func(th *Thread) {
		th.S.Sleep(1_000_000) // strictly after thread a finished
		th.Send(c, 1, 1, 8, 2)
	})
	sum := 0
	w.Spawn(1, "r", func(th *Thread) {
		sum += th.Recv(c, 0, 0).(int)
		sum += th.Recv(c, 0, 1).(int)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestLocklessLevelsUseNoLock(t *testing.T) {
	w := levelWorld(t, ThreadFunneled)
	if w.Cfg.Lock != simlock.KindNone {
		t.Fatalf("funneled level kept lock %v", w.Cfg.Lock)
	}
	w2 := levelWorld(t, ThreadMultiple)
	if w2.Cfg.Lock != simlock.KindTicket {
		t.Fatalf("multiple level lost its lock: %v", w2.Cfg.Lock)
	}
}
