package mpi

import "testing"

func TestCommDupSeparatesMatching(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	var fromDup, fromWorld interface{}
	w.Spawn(0, "s", func(th *Thread) {
		dup := th.Dup(c)
		// Same (dst, tag) on both communicators; contexts must separate.
		th.Send(dup, 1, 3, 8, "dup")
		th.Send(c, 1, 3, 8, "world")
	})
	w.Spawn(1, "r", func(th *Thread) {
		dup := th.Dup(c)
		fromWorld = th.Recv(c, 0, 3)
		fromDup = th.Recv(dup, 0, 3)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if fromDup != "dup" || fromWorld != "world" {
		t.Fatalf("cross-communicator leak: dup=%v world=%v", fromDup, fromWorld)
	}
}

func TestCommSplitGroups(t *testing.T) {
	nodes := 6
	w := testWorld(t, nodes)
	c := w.Comm()
	results := make([]struct {
		size, rank int
		sum        int64
	}, nodes)
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			sub := th.Split(c, r%2, r) // evens and odds
			results[r].size = sub.Size()
			results[r].rank = sub.Rank(th)
			results[r].sum = th.AllreduceSum(sub, int64(r))
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		if results[r].size != 3 {
			t.Fatalf("rank %d sub size %d", r, results[r].size)
		}
		wantRank := r / 2 // ordered by key=r within each parity class
		if results[r].rank != wantRank {
			t.Fatalf("rank %d sub rank %d, want %d", r, results[r].rank, wantRank)
		}
		wantSum := int64(0 + 2 + 4)
		if r%2 == 1 {
			wantSum = 1 + 3 + 5
		}
		if results[r].sum != wantSum {
			t.Fatalf("rank %d allreduce %d, want %d", r, results[r].sum, wantSum)
		}
	}
}

func TestCommSplitKeyOrdering(t *testing.T) {
	nodes := 4
	w := testWorld(t, nodes)
	c := w.Comm()
	ranks := make([]int, nodes)
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			// Reverse key order: world rank 3 becomes sub rank 0.
			sub := th.Split(c, 0, nodes-r)
			ranks[r] = sub.Rank(th)
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		if ranks[r] != nodes-1-r {
			t.Fatalf("world %d got sub rank %d", r, ranks[r])
		}
	}
}

func TestCommSplitUndefined(t *testing.T) {
	nodes := 3
	w := testWorld(t, nodes)
	c := w.Comm()
	var excluded *Comm = &Comm{} // sentinel, replaced below
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			color := 0
			if r == 2 {
				color = -1 // MPI_UNDEFINED
			}
			sub := th.Split(c, color, r)
			if r == 2 {
				excluded = sub
			} else if sub.Size() != 2 {
				t.Errorf("rank %d sub size %d", r, sub.Size())
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if excluded != nil {
		t.Fatal("undefined color should yield nil communicator")
	}
}

func TestCommP2PLocalRanks(t *testing.T) {
	// Point-to-point within a sub-communicator addresses local ranks.
	nodes := 4
	w := testWorld(t, nodes)
	c := w.Comm()
	var got interface{}
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			sub := th.Split(c, r%2, r)
			if r%2 == 0 {
				if sub.Rank(th) == 0 {
					th.Send(sub, 1, 0, 8, "evens") // local rank 1 = world 2
				} else {
					got = th.Recv(sub, 0, 0)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "evens" {
		t.Fatalf("got %v", got)
	}
}

func TestCommDupCollectives(t *testing.T) {
	nodes := 3
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			dup := th.Dup(c)
			if got := th.AllreduceSum(dup, 1); got != int64(nodes) {
				t.Errorf("rank %d: allreduce on dup = %d", r, got)
			}
			th.Barrier(dup)
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
