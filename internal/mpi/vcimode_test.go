package mpi

import (
	"fmt"
	"testing"

	"mpicontend/internal/fault"
	"mpicontend/internal/mpi/vci"
)

// withVCIs is a testWorld option enabling the sharded runtime.
func withVCIs(n int, pol vci.Policy) func(*Config) {
	return func(c *Config) {
		c.VCIs = n
		c.VCIPolicy = pol
	}
}

// TestVCIPerCommMapping: under the per-comm policy every operation of one
// communicator lands on one shard regardless of tag, the shard the policy
// function names; a second communicator (different context) maps
// independently. The receive side must agree with the send side, or
// matching would silently fall apart.
func TestVCIPerCommMapping(t *testing.T) {
	const n = 4
	w := testWorld(t, 2, withVCIs(n, vci.PerComm))
	c := w.Comm()
	d := w.SetupComm()
	tags := []int{0, 1, 7, 19, 31}
	vcis := map[string]int{}
	w.Spawn(0, "sender", func(th *Thread) {
		var rs []*Request
		for _, tag := range tags {
			for _, cm := range []*Comm{c, d} {
				r := th.Isend(cm, 1, tag, 64, tag)
				vcis[fmt.Sprintf("send ctx=%d tag=%d", cm.ctx, tag)] = r.vci
				rs = append(rs, r)
			}
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		var rs []*Request
		for _, tag := range tags {
			for _, cm := range []*Comm{c, d} {
				r := th.Irecv(cm, 0, tag)
				vcis[fmt.Sprintf("recv ctx=%d tag=%d", cm.ctx, tag)] = r.vci
				rs = append(rs, r)
			}
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for _, cm := range []*Comm{c, d} {
		want := vci.Select(vci.PerComm, cm.ctx, 0, vci.NoHint, n)
		for _, tag := range tags {
			for _, side := range []string{"send", "recv"} {
				key := fmt.Sprintf("%s ctx=%d tag=%d", side, cm.ctx, tag)
				if got := vcis[key]; got != want {
					t.Errorf("%s: shard %d, want %d", key, got, want)
				}
			}
		}
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestVCIPerTagHashMapping: the per-tag-hash policy spreads one
// communicator's tags across shards (the figure-level decontention
// mechanism), with the send and receive sides computing the same mapping.
func TestVCIPerTagHashMapping(t *testing.T) {
	const n, tags = 16, 32
	w := testWorld(t, 2, withVCIs(n, vci.PerTagHash))
	c := w.Comm()
	sendVCI := make([]int, tags)
	recvVCI := make([]int, tags)
	w.Spawn(0, "sender", func(th *Thread) {
		var rs []*Request
		for tag := 0; tag < tags; tag++ {
			r := th.Isend(c, 1, tag, 64, tag)
			sendVCI[tag] = r.vci
			rs = append(rs, r)
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		var rs []*Request
		for tag := 0; tag < tags; tag++ {
			r := th.Irecv(c, 0, tag)
			recvVCI[tag] = r.vci
			rs = append(rs, r)
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for tag := 0; tag < tags; tag++ {
		want := vci.Select(vci.PerTagHash, c.ctx, tag, vci.NoHint, n)
		if sendVCI[tag] != want || recvVCI[tag] != want {
			t.Errorf("tag %d: send shard %d, recv shard %d, want %d",
				tag, sendVCI[tag], recvVCI[tag], want)
		}
		seen[sendVCI[tag]] = true
	}
	if len(seen) < 8 {
		t.Errorf("%d tags landed on only %d/%d shards", tags, len(seen), n)
	}
}

// TestVCIExplicitMapping: explicitly placed communicators (setup-time dup
// + SetVCI) pin their traffic to the named shard — the collision-free
// per-thread pattern the VCI literature recommends — while unpinned comms
// fall back to the per-comm hash.
func TestVCIExplicitMapping(t *testing.T) {
	const n = 4
	w := testWorld(t, 2, withVCIs(n, vci.Explicit))
	comms := make([]*Comm, n)
	for k := range comms {
		comms[k] = w.SetupComm().SetVCI(k)
	}
	plain := w.Comm()
	got := make([]interface{}, n)
	vcis := make([]int, n)
	var plainVCI int
	w.Spawn(0, "sender", func(th *Thread) {
		var rs []*Request
		for k, cm := range comms {
			r := th.Isend(cm, 1, 5, 64, 100+k)
			vcis[k] = r.vci
			rs = append(rs, r)
		}
		r := th.Isend(plain, 1, 5, 64, "unpinned")
		plainVCI = r.vci
		rs = append(rs, r)
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		for k, cm := range comms {
			got[k] = th.Recv(cm, 0, 5)
		}
		th.Recv(plain, 0, 5)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for k := range comms {
		if vcis[k] != k {
			t.Errorf("comm pinned to VCI %d posted on shard %d", k, vcis[k])
		}
		if got[k] != 100+k {
			t.Errorf("comm %d delivered %v, want %d", k, got[k], 100+k)
		}
	}
	if want := vci.Select(vci.Explicit, plain.ctx, 5, vci.NoHint, n); plainVCI != want {
		t.Errorf("unpinned comm posted on shard %d, want per-comm fallback %d",
			plainVCI, want)
	}
}

// TestVCIWildcardRecvAcrossShards: under the tag-hashed mapping an AnyTag
// receive cannot name one shard; the cross-VCI wildcard path must still
// deliver every message exactly once, in arrival order, regardless of
// which shard the sender's tag hashed to.
func TestVCIWildcardRecvAcrossShards(t *testing.T) {
	const n, msgs = 8, 12
	w := testWorld(t, 2, withVCIs(n, vci.PerTagHash))
	c := w.Comm()
	var order []interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		for i := 0; i < msgs; i++ {
			// Spaced sends: arrival order is the send order, so the
			// wildcard's earliest-arrival scan has one right answer.
			th.Send(c, 1, i*3, 64, i)
			th.S.Sleep(50_000)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		for i := 0; i < msgs; i++ {
			order = append(order, th.Recv(c, 0, AnyTag))
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wildcard recv order broken: got %v", order)
		}
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestVCIOrderingWithinShard: MPI non-overtaking order holds per
// (comm, src, tag) — which the sharded runtime maps entirely inside one
// VCI — even with many back-to-back sends in flight, and independently on
// each explicitly placed communicator.
func TestVCIOrderingWithinShard(t *testing.T) {
	const n, msgs = 4, 40
	w := testWorld(t, 2, withVCIs(n, vci.Explicit))
	a := w.SetupComm().SetVCI(1)
	b := w.SetupComm().SetVCI(3)
	var gotA, gotB []interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		var rs []*Request
		for i := 0; i < msgs; i++ {
			// Interleave the two streams so cross-shard progress cannot
			// substitute for in-shard FIFO order.
			rs = append(rs, th.Isend(a, 1, 7, 64, i))
			rs = append(rs, th.Isend(b, 1, 7, 64, msgs+i))
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	w.Spawn(1, "recvA", func(th *Thread) {
		for i := 0; i < msgs; i++ {
			gotA = append(gotA, th.Recv(a, 0, 7))
		}
	})
	w.Spawn(1, "recvB", func(th *Thread) {
		for i := 0; i < msgs; i++ {
			gotB = append(gotB, th.Recv(b, 0, 7))
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		if gotA[i] != i {
			t.Fatalf("stream A overtaken at %d: %v", i, gotA[:i+1])
		}
		if gotB[i] != msgs+i {
			t.Fatalf("stream B overtaken at %d: %v", i, gotB[:i+1])
		}
	}
}

// TestVCICrashBlackholesAllShards: the rank-failure regression for the
// sharded runtime. A crashed rank's traffic spans several VCIs (one
// explicitly placed comm per stream); the fault plane must blackhole the
// rank as a whole — every shard's stream fails with ErrProcFailed after
// heartbeat detection, none hangs — and ULFM revoke/shrink still recovers
// the survivors.
func TestVCICrashBlackholesAllShards(t *testing.T) {
	const n = 4
	w := testWorld(t, 3, withVCIs(n, vci.Explicit),
		func(c *Config) { c.Fault = fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 100_000}}} })
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	comms := make([]*Comm, n)
	for k := range comms {
		comms[k] = w.SetupComm().SetVCI(k)
	}
	streamErr := make([]error, n)
	streamVCI := make([]int, n)
	for k := range comms {
		k := k
		w.Spawn(0, "stream", func(th *Thread) {
			for i := 0; ; i++ {
				r := th.Isend(comms[k], 2, 7, 64, i)
				streamVCI[k] = r.vci
				if err := th.Wait(r); err != nil {
					streamErr[k] = err
					return
				}
				th.S.Sleep(20_000)
			}
		})
	}
	w.Spawn(2, "victim", func(th *Thread) {
		for {
			th.Recv(comms[0], 0, 7)
		}
	})
	newSize := map[int]int{}
	sums := map[int]int64{}
	for _, rank := range []int{0, 1} {
		rank := rank
		w.Spawn(rank, "recover", func(th *Thread) {
			waitForFailure(th, c)
			th.Revoke(c)
			sh, err := th.Shrink(c)
			if err != nil {
				t.Errorf("rank %d shrink: %v", rank, err)
				return
			}
			newSize[rank] = sh.Size()
			sum, err := th.AllreduceSumErr(sh, int64(rank))
			if err != nil {
				t.Errorf("rank %d allreduce on shrunk comm: %v", rank, err)
				return
			}
			sums[rank] = sum
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for k := range comms {
		errCode(t, streamErr[k], ErrProcFailed)
		if streamVCI[k] != k {
			t.Errorf("stream %d ran on shard %d", k, streamVCI[k])
		}
	}
	rec := w.Recovery()
	if len(rec.Crashed) != 1 || rec.Crashed[0] != 2 {
		t.Fatalf("crashed ranks: %v", rec.Crashed)
	}
	if rec.DetectNs <= 0 || rec.DetectNs > 600_000 {
		t.Fatalf("detection latency out of bounds: %d", rec.DetectNs)
	}
	for _, rank := range []int{0, 1} {
		if newSize[rank] != 2 {
			t.Errorf("rank %d: shrunk size %d, want 2", rank, newSize[rank])
		}
		if sums[rank] != 0+1 {
			t.Errorf("rank %d: allreduce sum %d, want 1", rank, sums[rank])
		}
	}
}

// TestPartitionedWildcardVCIDeterministic: an AnySource Precv in the
// sharded runtime adopts whichever matching epoch lands first, and that
// choice must be a pure function of the simulation seed — two identical
// runs bind wildcard receives to senders in exactly the same order.
func TestPartitionedWildcardVCIDeterministic(t *testing.T) {
	run := func() []interface{} {
		w := testWorld(t, 3, withVCIs(4, vci.PerTagHash))
		c := w.Comm()
		const parts = 4
		const tag = 6
		for src := 0; src < 2; src++ {
			src := src
			w.Spawn(src, "sender", func(th *Thread) {
				ps := th.PsendInit(c, 2, tag, parts, 64, fmt.Sprintf("from-%d", src))
				th.Pstart(ps)
				if err := th.PreadyRange(ps, 0, parts); err != nil {
					t.Errorf("sender %d: %v", src, err)
				}
				if err := th.Pwait(ps); err != nil {
					t.Errorf("sender %d Pwait: %v", src, err)
				}
			})
		}
		var got []interface{}
		w.Spawn(2, "receiver", func(th *Thread) {
			for i := 0; i < 2; i++ {
				pr := th.PrecvInit(c, AnySource, tag, parts, 64)
				th.Pstart(pr)
				if err := th.Pwait(pr); err != nil {
					t.Errorf("recv %d Pwait: %v", i, err)
				}
				got = append(got, pr.Data())
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckClean(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first, second := run(), run()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("runs delivered %d/%d epochs, want 2 each", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("wildcard binding diverged between identical runs: %v vs %v", first, second)
		}
	}
}
