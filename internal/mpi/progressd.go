package mpi

// This file implements the two progress modes that move completion off
// the application threads — the remedy the paper could not run (§9
// future work; MPIX continuations and strong-progress designs in later
// MPICH work):
//
//   - Strong progress (ProgressStrong): a dedicated progress daemon
//     simthread per VCI shard drives that shard's transport and matching
//     queues, parking on the proc's activity queue while its completion
//     queue is empty and woken by arrival events. Application threads
//     blocked in Wait/Waitall park instead of iterating the progress
//     loop, so they never acquire the critical section at low (progress)
//     class at all.
//
//   - Continuations (ProgressContinuation): strong progress plus
//     completion-time callbacks. Request.OnComplete registers a function
//     the progress engine runs when the request completes; a
//     CompletionQueue turns a Waitall over n requests into one batched
//     enqueue and a drain of n completion events, with the runtime
//     freeing each request at dispatch time inside the critical section
//     it already holds.
//
// Like granularity.go and vcimode.go, the wait helpers here open and
// close critical sections across loop iterations by design; the lockpair
// analyzer enforces pairing at the section level.
//
//simcheck:allow-file lockpair wait-path protocol; begin/end pair within each loop iteration

import (
	"fmt"

	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// ProgressMode selects who drives the progress engine.
type ProgressMode int

const (
	// ProgressPolling is the paper's shape: blocked application threads
	// iterate the progress loop from Wait, re-acquiring the critical
	// section at low class around every poll. The default; all pre-VCI
	// and per-VCI code paths are byte-identical under it.
	ProgressPolling ProgressMode = iota
	// ProgressStrong runs a dedicated progress daemon per VCI shard;
	// application threads block without polling.
	ProgressStrong
	// ProgressContinuation is strong progress plus completion-time
	// callbacks (Request.OnComplete) and CompletionQueue draining;
	// Waitall becomes one batched enqueue plus a drain.
	ProgressContinuation
)

// String names the progress mode as used in figures and flags.
func (m ProgressMode) String() string {
	switch m {
	case ProgressPolling:
		return "polling"
	case ProgressStrong:
		return "strong"
	case ProgressContinuation:
		return "continuation"
	default:
		return fmt.Sprintf("ProgressMode(%d)", int(m))
	}
}

// eventDriven reports whether completions wake parked waiters instead of
// being discovered by polling.
func (w *World) eventDriven() bool { return w.Cfg.Progress != ProgressPolling }

// startProgressDaemons spawns one progress daemon per (proc, VCI shard).
// Called lazily from World.Run so daemons bind to cores after the
// application threads, like MPICH progress threads joining a running job.
func (w *World) startProgressDaemons() {
	if w.progressd || !w.eventDriven() {
		return
	}
	w.progressd = true
	for _, p := range w.Procs {
		for v := range p.vcis {
			p, v := p, v
			w.spawn(p.Rank, "progressd", func(th *Thread) {
				th.S.SetDaemon()
				th.noBackoff = true
				progressDaemon(th, p, v)
			})
		}
	}
}

// progressDaemon is the strong-progress engine of one shard: while the
// shard's network completion queue is empty it parks on the proc's
// activity queue (arrivals, completions and failure events wake it); when
// events are queued it runs progress rounds under the shard's critical
// section at low class, paced by the progress-loop overhead — the engine
// timer that separates rounds. The emptiness check is adjacent to the
// park (no virtual-time gap), so no wake-up can be lost.
func progressDaemon(th *Thread, p *Proc, v int) {
	sh := p.vcis[v]
	cost := th.cost()
	for {
		th.checkCrashed()
		if len(sh.cq) == 0 {
			p.activity.Wait(th.S)
			continue
		}
		th.progressRoundVCI(v, simlock.Low, nil)
		th.S.Sleep(cost.ProgressLoopOverhead)
	}
}

// OnComplete registers fn as the request's continuation: the progress
// engine calls fn(r, r.Err()) exactly once, at completion time, from the
// completing context (a progress daemon or the issuing call), with the
// request's shard critical section held. The runtime then frees the
// request itself — a continuation request must not be passed to
// Wait/Test afterwards; fn observes its payload and error instead. If
// the request already completed, fn fires during this call. Callbacks
// must not make blocking MPI calls; their typical job is to hand the
// completion to application state (or a CompletionQueue does it for
// them).
func (r *Request) OnComplete(th *Thread, fn func(r *Request, err error)) {
	if fn == nil {
		panic("mpi: OnComplete with nil callback")
	}
	if !th.P.w.eventDriven() {
		// Polling mode has no completion-time dispatch context: a callback
		// registered on a pending request would never fire.
		panic("mpi: OnComplete requires ProgressStrong or ProgressContinuation")
	}
	tel := th.telStart()
	v := reqShard(r)
	th.stateBeginVCI(v, simlock.High)
	if r.freed {
		th.stateEndVCI(v, simlock.High)
		panic("mpi: OnComplete on a freed request")
	}
	if r.onComplete != nil || r.cq != nil {
		th.stateEndVCI(v, simlock.High)
		panic("mpi: OnComplete registered twice")
	}
	r.onComplete = fn
	if r.complete {
		// Late registration: the completion already happened, so the
		// dispatch the progress engine would have done runs here, still
		// exactly once and still under the shard section.
		r.fire(th.S.Now())
	}
	th.stateEndVCI(v, simlock.High)
	th.telCall("OnComplete", tel)
}

// fire dispatches the registered continuation exactly once: the callback
// observes the completed request (payload, error code), then the runtime
// frees it and recycles provably-dead fault-free objects. Runs in engine
// or CS context, from markComplete or a late OnComplete registration.
// Errors reach the callback as the err argument — continuation delivery
// replaces the Wait-side error handler, so a failed request's code is
// always seen by fn before the object can be recycled (errored requests
// are never pooled, the PR-6 invariant).
func (r *Request) fire(at sim.Time) {
	fn := r.onComplete
	r.onComplete = nil
	//simcheck:allow hotalloc continuation dispatch; callback work is the registrant's and is modeled by the registrant
	fn(r, r.Err())
	r.free()
	if r.poolable && r.err == nil {
		if len(r.p.vcis) > 1 {
			sh := r.p.vcis[r.vci]
			r.nextFree = sh.reqFree
			sh.reqFree = r
		} else {
			r.p.w.recycleRequest(r)
		}
	}
}

// CompletionQueue is the event-queue completion API of continuation mode:
// completed requests are delivered onto it by the progress engine and the
// owning thread drains them with Poll/WaitAny, paying the completion-
// object processing cost once per event instead of holding the critical
// section to poll. Delivered requests are already freed by the runtime;
// the drain side reads their payload and error, nothing more. A queue
// belongs to the thread that created it.
type CompletionQueue struct {
	th   *Thread
	done []*Request
}

// NewCompletionQueue creates a completion queue owned by this thread.
func (th *Thread) NewCompletionQueue() *CompletionQueue {
	if !th.P.w.eventDriven() {
		panic("mpi: CompletionQueue requires ProgressStrong or ProgressContinuation")
	}
	return &CompletionQueue{th: th}
}

// Add registers the request for delivery onto the queue when it
// completes (immediately, if it already has). Like OnComplete, the
// runtime frees the request at delivery; it must not be waited on.
func (q *CompletionQueue) Add(r *Request) {
	th := q.th
	v := reqShard(r)
	th.stateBeginVCI(v, simlock.High)
	q.addLocked(r, th.S.Now())
	th.stateEndVCI(v, simlock.High)
}

// addLocked registers one request; the caller holds r's shard section.
func (q *CompletionQueue) addLocked(r *Request, at sim.Time) {
	if r.freed {
		panic("mpi: CompletionQueue.Add on a freed request")
	}
	if r.onComplete != nil || r.cq != nil {
		panic("mpi: CompletionQueue.Add on a request with a continuation")
	}
	if r.complete {
		r.free()
		q.push(r, at)
		return
	}
	r.cq = q
}

// push appends a delivered completion and wakes the owner if it is
// parked. Runs in engine or CS context.
func (q *CompletionQueue) push(r *Request, at sim.Time) {
	//simcheck:allow hotalloc completion-event buffer; bounded by the owner's outstanding requests and reused across drains
	q.done = append(q.done, r)
	p := q.th.P
	if w := p.w; w.tel != nil {
		w.tel.CQDepth(at, int64(len(q.done)))
	}
	p.activity.WakeAll(at)
}

// Len returns the number of delivered, undrained completions.
func (q *CompletionQueue) Len() int { return len(q.done) }

// Poll drains one delivered completion, or returns nil if none is
// queued. Never blocks and never acquires the critical section.
func (q *CompletionQueue) Poll() *Request {
	if len(q.done) == 0 {
		return nil
	}
	return q.take()
}

// WaitAny blocks until a completion is delivered, then drains it. The
// owner parks on the proc's activity queue; completions, failure events
// and crash unwinding all wake it.
func (q *CompletionQueue) WaitAny() *Request {
	th := q.th
	for len(q.done) == 0 {
		th.checkCrashed()
		th.P.activity.Wait(th.S)
	}
	return q.take()
}

// take removes the oldest delivered completion, charging the completion-
// object processing cost (the drain side's analogue of Wait's
// RequestFreeWork; the free itself already ran at delivery).
func (q *CompletionQueue) take() *Request {
	r := q.done[0]
	q.done[0] = nil
	q.done = q.done[1:]
	if len(q.done) == 0 {
		// Reset so the backing array is reused across drains.
		q.done = q.done[:0]
	}
	th := q.th
	th.S.Sleep(th.cost().RequestFreeWork)
	if w := th.P.w; w.tel != nil {
		w.tel.CQDepth(th.S.Now(), int64(len(q.done)))
	}
	return r
}

// ensureCQ returns the thread's internal completion queue (continuation-
// mode Waitall drains through it; it is always empty between calls).
func (th *Thread) ensureCQ() *CompletionQueue {
	if th.cq == nil {
		th.cq = th.NewCompletionQueue()
	}
	return th.cq
}

// waitEvent is Wait under strong progress or continuations: check the
// request under its shard's state section, then park until a completion
// event wakes the proc — no progress-loop (low-class) acquisitions at
// all. The completion-sequence snapshot closes the window between the
// checked state section and the park: any completion in between bumps
// the sequence and the waiter re-checks instead of parking.
func (th *Thread) waitEvent(r *Request) error {
	p := th.P
	cost := th.cost()
	tel := th.telStart()
	for {
		th.checkCrashed()
		seq := p.completeSeq
		v := reqShard(r)
		th.stateBeginVCI(v, simlock.High)
		if r.complete {
			if r.freed {
				th.stateEndVCI(v, simlock.High)
				panic("mpi: Wait on a request with a continuation attached")
			}
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			th.stateEndVCI(v, simlock.High)
			th.telCall("Wait", tel)
			return r.release()
		}
		th.stateEndVCI(v, simlock.High)
		if p.completeSeq == seq {
			p.activity.Wait(th.S)
		}
	}
}

// waitallEvent is Waitall under strong progress: sweep the completed
// requests shard by shard (state sections at high class), park until the
// next completion event, repeat. The waiter never runs the progress
// engine; the per-shard daemons do.
func (th *Thread) waitallEvent(rs []*Request) error {
	cost := th.cost()
	p := th.P
	remaining := len(rs)
	pending := make([]*Request, len(rs))
	copy(pending, rs)
	var firstErr error

	tel := th.telStart()
	for {
		th.checkCrashed()
		seq := p.completeSeq
		th.sweepDone(pending, func(_ int, r *Request) {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			for i, q := range pending {
				if q == r {
					pending[i] = pending[len(pending)-1]
					pending = pending[:len(pending)-1]
					break
				}
			}
			remaining--
			if err := r.release(); err != nil && firstErr == nil {
				firstErr = err
			}
		})
		if remaining == 0 {
			th.telCall("Waitall", tel)
			return firstErr
		}
		if p.completeSeq == seq {
			p.activity.Wait(th.S)
		}
	}
}

// waitallCont is Waitall under continuations: register every request on
// the thread's completion queue in one batched pass (one state section
// per involved shard), then drain exactly that many completion events.
// The progress daemons free each request at delivery, so the drain loop
// takes no locks at all — the per-request progress-loop re-acquisitions
// of the polling shape disappear entirely.
func (th *Thread) waitallCont(rs []*Request) error {
	p := th.P
	tel := th.telStart()
	q := th.ensureCQ()
	mark := make(shardSet, p.numVCI())
	for _, r := range rs {
		mark[reqShard(r)] = true
	}
	for v := range mark {
		if !mark[v] {
			continue
		}
		th.stateBeginVCI(v, simlock.High)
		for _, r := range rs {
			if reqShard(r) == v {
				q.addLocked(r, th.S.Now())
			}
		}
		th.stateEndVCI(v, simlock.High)
	}
	var firstErr error
	for n := len(rs); n > 0; n-- {
		r := q.WaitAny()
		if r.err != nil {
			// Continuation delivery replaces Wait's error-handler site:
			// raise through the communicator handler (panic under
			// MPI_ERRORS_ARE_FATAL), reporting the first error.
			if err := r.raise(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	th.telCall("Waitall", tel)
	return firstErr
}
