package mpi

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// benchPrequest builds a standalone send-side partitioned request on a
// minimal world, without spinning up a simthread: markReady is the whole
// non-triggering Pready fast path and by design touches no scheduler
// state, so it can be driven directly.
func benchPrequest(tb testing.TB, parts int) *Prequest {
	tb.Helper()
	w, err := NewWorld(Config{
		Topo: machine.Nehalem2x4(2),
		Lock: simlock.KindTicket,
		Seed: 12345,
	})
	if err != nil {
		tb.Fatal(err)
	}
	pr := &Prequest{p: w.Proc(0), send: true, peer: 1}
	pr.pinit(w.Comm(), 7, parts, 8)
	pr.ready.reset(parts)
	pr.arrived.reset(parts)
	return pr
}

// BenchmarkPready times the readiness core — the exact code a non-final
// Pready executes after validation (partitioned.go's markReady hotpath
// root). The loop re-arms the bitmap just before the mask would complete,
// so no iteration ever takes the trigger branch: this is the pure
// lock-free path, and -benchmem must report 0 allocs/op (pinned hard by
// TestPreadyFastPathAllocs).
func BenchmarkPready(b *testing.B) {
	const parts = 1 << 16
	pr := benchPrequest(b, parts)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		if i == parts-1 {
			pr.ready.reset(parts)
			i = 0
		}
		pr.markReady(i, i+1)
		i++
	}
}

// TestPreadyFastPathAllocs pins the benchmark's headline claim: the
// non-triggering readiness transition allocates nothing. Bitmap words are
// allocated once at pinit and reused by reset, so a million epochs of
// Pready flips stay on the persistent request's storage.
func TestPreadyFastPathAllocs(t *testing.T) {
	const parts = 256
	pr := benchPrequest(t, parts)
	i := 0
	allocs := testing.AllocsPerRun(10_000, func() {
		if i == parts-1 {
			pr.ready.reset(parts)
			i = 0
		}
		pr.markReady(i, i+1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("non-triggering Pready allocated %.1f objects/op, want 0", allocs)
	}
}

// TestPreadyFastPathNoLockOps pins the benchmark's other claim: the
// non-triggering path performs no lock operations. Two runs move the same
// total payload through one epoch — 64 partitions of 8 bytes versus a
// single 512-byte partition — so the only application-call difference is
// 63 extra fast Preadys. If those flips took any lock even once, the
// high-class acquisition totals would diverge. (Total acquisitions are
// not compared: the 64-flip run spends more simulated time in atomics, so
// the receiver's progress loop takes more low-class polling holds — the
// daemon's idle polls, nothing Pready issued.)
func TestPreadyFastPathNoLockOps(t *testing.T) {
	run := func(parts int, bytesPer int64) (fast int64, acq int64) {
		rec := telemetry.New()
		w := testWorld(t, 2, func(c *Config) { c.Tel = rec })
		c := w.Comm()
		w.Spawn(0, "sender", func(th *Thread) {
			ps := th.PsendInit(c, 1, 7, parts, bytesPer, "payload")
			th.Pstart(ps)
			for i := 0; i < parts; i++ {
				if err := th.Pready(ps, i); err != nil {
					t.Errorf("Pready(%d): %v", i, err)
				}
			}
			if err := th.Pwait(ps); err != nil {
				t.Errorf("Pwait(send): %v", err)
			}
		})
		w.Spawn(1, "receiver", func(th *Thread) {
			pr := th.PrecvInit(c, 0, 7, parts, bytesPer)
			th.Pstart(pr)
			if err := th.Pwait(pr); err != nil {
				t.Errorf("Pwait(recv): %v", err)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		for _, l := range rec.Profile().Locks {
			acq += l.HighAcq
		}
		return w.PartStats().PreadyFast, acq
	}
	fastMany, acqMany := run(64, 8)
	fastOne, acqOne := run(1, 512)
	if fastMany != 63 || fastOne != 0 {
		t.Fatalf("fast Preadys = %d and %d, want 63 and 0", fastMany, fastOne)
	}
	if acqMany != acqOne {
		t.Fatalf("64-partition epoch took %d high-class lock acquisitions, 1-partition epoch took %d: "+
			"the %d extra lock-free Preadys must add zero", acqMany, acqOne, fastMany)
	}
}
