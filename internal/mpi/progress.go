package mpi

import (
	"fmt"

	"mpicontend/internal/fabric"
)

// rtsMeta travels with eager and RTS packets. src is the communicator-
// local source rank (matching is per communicator); the fabric packet's
// Src stays the world rank for routing.
type rtsMeta struct {
	src, tag, ctx int
	bytes         int64
}

// ctsMeta travels with a CTS packet (points back at the receive request the
// payload should land in).
type ctsMeta struct {
	recvReq *Request
}

// maxEventsPerPoll bounds how many completion-queue events one progress
// iteration handles while holding the critical section. MPICH processes a
// small batch per progress call and releases the CS between iterations;
// draining an arbitrary backlog in one hold would suppress exactly the
// lock-cycling dynamics the paper studies.
const maxEventsPerPoll = 2

// pollOnce runs one iteration of the progress engine on VCI 0 — the whole
// engine in the unsharded runtime. Must be called with the process's
// critical section held.
//
//simcheck:hotpath progress-engine receive path, runs inside the critical section
func (p *Proc) pollOnce(th *Thread) { p.pollShard(th, 0) }

// pollShard runs one progress iteration on shard v: it polls the shard's
// network completion queue and handles up to maxEventsPerPoll events. Must
// be called with shard v's critical section held; the costs it charges are
// therefore serialized per shard, which is the contention the paper
// studies (and the sharding removes).
//
//simcheck:hotpath progress-engine receive path, runs inside the critical section
func (p *Proc) pollShard(th *Thread, v int) {
	cost := th.cost()
	sh := p.vcis[v]
	var pollFrom int64
	if p.w.tel != nil {
		pollFrom = th.S.Now()
	}
	th.S.Sleep(cost.ProgressPollWork)
	p.Polls++
	handled := 0
	for len(sh.cq) > 0 && handled < maxEventsPerPoll {
		pkt := sh.cq[0]
		sh.cq[0] = nil
		sh.cq = sh.cq[1:]
		th.S.Sleep(cost.ProgressHandleWork)
		p.handlePacket(th, pkt)
		if p.rel == nil {
			// Fault-free traffic dies here: every handler branch copies
			// what it keeps (payload refs, envelope fields), and without
			// a fault plane there are no duplicate deliveries or
			// retransmit stashes sharing the struct — so the packet can
			// go back to the fabric pool.
			p.w.Fab.FreePacket(pkt)
		}
		handled++
	}
	if p.w.tel != nil {
		p.w.tel.Poll(th.S.ID(), pollFrom, th.S.Now(), handled)
	}
	if handled > 0 {
		th.pollBackoff = 0
	} else {
		th.pollBackoff++
	}
}

// handlePacket processes one fabric event inside the CS.
func (p *Proc) handlePacket(th *Thread, pkt *fabric.Packet) {
	cost := th.cost()
	now := th.S.Now()
	// This hold advanced the progress engine — the useful/wasted split of
	// the telemetry plane's Fig. 6a report.
	th.holdUseful = true
	switch pkt.Kind {
	case fabric.TxDone:
		// NIC finished injecting a payload: the owning send request is
		// complete (eager: buffer reusable; rendezvous: data shipped).
		// A request already failed by its deadline stays failed.
		req := pkt.Handle.(*Request)
		if !req.complete {
			req.markComplete(now)
		}

	case fabric.Eager:
		if r := p.matchPostedShard(th, pkt.VCI, pkt.Meta.(rtsMeta)); r != nil {
			if r.maxBytes >= 0 && pkt.Bytes > r.maxBytes {
				r.fail(ErrTruncate, now)
				p.PostedHits++
				break
			}
			th.S.Sleep(cost.CopyTime(pkt.Bytes)) // copy into the user buffer
			r.payload = pkt.Payload
			r.markComplete(th.S.Now())
			p.PostedHits++
		} else {
			// Buffer into the unexpected queue (allocate + temp copy).
			th.S.Sleep(cost.UnexpectedOverhead + cost.CopyTime(pkt.Bytes))
			m := pkt.Meta.(rtsMeta)
			//simcheck:allow hotalloc unexpected-queue state the paper measures; its cost is modeled as UnexpectedOverhead
			p.vcis[pkt.VCI].unexp = append(p.vcis[pkt.VCI].unexp, &envelope{
				src: m.src, tag: m.tag, ctx: m.ctx,
				bytes: pkt.Bytes, payload: pkt.Payload,
				arrivedAt: th.S.Now(), vci: pkt.VCI,
			})
		}

	case fabric.RTS:
		m := pkt.Meta.(rtsMeta)
		if r := p.matchPostedShard(th, pkt.VCI, m); r != nil {
			p.PostedHits++
			r.bytes = m.bytes
			if r.maxBytes >= 0 && m.bytes > r.maxBytes {
				// Truncation: fail the receive but still clear the sender
				// to send so it drains; the RData handler drops the
				// payload of a completed request.
				r.fail(ErrTruncate, now)
			}
			cts := p.w.Fab.AllocPacket()
			*cts = fabric.Packet{
				Kind: fabric.CTS, Src: p.Rank, Dst: pkt.Src,
				Handle: pkt.Handle, Meta: ctsMeta{recvReq: r},
				VCI: pkt.VCI,
			}
			p.sendShard(th, cts, false, nil)
		} else {
			//simcheck:allow hotalloc unexpected-queue state the paper measures; its cost is modeled as UnexpectedOverhead
			p.vcis[pkt.VCI].unexp = append(p.vcis[pkt.VCI].unexp, &envelope{
				src: m.src, tag: m.tag, ctx: m.ctx,
				bytes: m.bytes, rndv: true,
				senderReq: pkt.Handle.(*Request), arrivedAt: now,
				vci: pkt.VCI,
			})
		}

	case fabric.CTS:
		// Our RTS was matched: ship the payload. Sender request
		// completes when injection finishes (TxDone). A sender already
		// failed by its deadline still drains the transfer (the receiver
		// expects the data), so no guard here.
		sreq := pkt.Handle.(*Request)
		rdata := p.w.Fab.AllocPacket()
		*rdata = fabric.Packet{
			Kind: fabric.RData, Src: p.Rank, Dst: sreq.dst,
			Bytes: sreq.bytes, Handle: sreq, Meta: pkt.Meta,
			Payload: sreq.payload, VCI: pkt.VCI,
		}
		p.sendShard(th, rdata, true, sreq)

	case fabric.RData:
		// Rendezvous payload lands directly in the posted buffer — unless
		// the receive already completed (deadline timeout or truncation),
		// in which case the payload is dropped.
		r := pkt.Meta.(ctsMeta).recvReq
		if !r.complete {
			r.payload = pkt.Payload
			r.markComplete(now)
		}

	case fabric.RMAPut, fabric.RMAGet, fabric.RMAGetReply, fabric.RMAAcc, fabric.RMAAck:
		p.handleRMA(th, pkt)

	case fabric.Revoke:
		// A peer revoked a communicator (ULFM, ulfm.go). Apply it and
		// re-flood once, so revocation completes even if the initiator
		// died mid-broadcast.
		m := pkt.Meta.(revokeMeta)
		if p.ft != nil && !p.ft.revoked[m.ctx] {
			size := len(m.ranks)
			if m.ranks == nil {
				size = len(p.w.Procs)
			}
			p.applyRevoke(m.ctx, now)
			p.floodRevoke(m.ctx, m.ranks, size)
		}

	default:
		panic(fmt.Sprintf("mpi: unhandled packet kind %v", pkt.Kind))
	}

	// Reliable mode: acknowledge the packet only now that the progress
	// loop actually processed it — a starved critical section ACKs late
	// and draws retransmits (see transport.go).
	if pkt.Rel && p.rel != nil {
		p.rel.ackDelivered(pkt)
	}
}

// matchPostedShard scans shard v's posted queue for a receive matching the
// arrival, charging the per-item search cost, and removes and returns the
// match. Cross-posted wildcard receives (irecvWild) are handled here: a
// wildcard satisfied on another shard — or cancelled — is a tombstone and
// is pruned for free during the scan; a live wildcard that matches is
// bound to this shard (its copies elsewhere become tombstones).
func (p *Proc) matchPostedShard(th *Thread, v int, m rtsMeta) *Request {
	cost := th.cost()
	sh := p.vcis[v]
	scanned := 0
	for i := 0; i < len(sh.posted); {
		r := sh.posted[i]
		if r.wild && (r.complete || r.freed || (r.vci >= 0 && r.vci != v)) {
			sh.posted = append(sh.posted[:i], sh.posted[i+1:]...)
			continue
		}
		scanned++
		if matchesRecv(r, m.src, m.tag, m.ctx) {
			// Dequeue before charging time: the scan+remove is one
			// atomic operation even in the lock-free granularity.
			sh.posted = append(sh.posted[:i], sh.posted[i+1:]...)
			th.S.Sleep(cost.QueueSearchPerItem * int64(scanned))
			if r.wild {
				r.vci = v
			}
			return r
		}
		i++
	}
	th.S.Sleep(cost.QueueSearchPerItem * int64(scanned+1))
	return nil
}

// matchUnexpectedShard scans shard v's unexpected queue for a message
// satisfying the receive (src, tag, ctx), charging search cost, removing
// the hit.
func (p *Proc) matchUnexpectedShard(th *Thread, v int, src, tag, ctx int) *envelope {
	cost := th.cost()
	sh := p.vcis[v]
	for i, e := range sh.unexp {
		if e.matches(src, tag, ctx) {
			sh.unexp = append(sh.unexp[:i], sh.unexp[i+1:]...)
			th.S.Sleep(cost.QueueSearchPerItem * int64(i+1))
			p.UnexpectedHits++
			if p.w.tel != nil {
				p.w.tel.Unexpected(th.S.Now() - e.arrivedAt)
			}
			return e
		}
	}
	th.S.Sleep(cost.QueueSearchPerItem * int64(len(sh.unexp)+1))
	return nil
}

// progressYield is the non-critical gap between progress-loop iterations
// (the window in which other threads may win the lock): at full spinning
// speed this is just the loop overhead, which is what lets a mutex holder
// re-acquire before remote threads observe the release. Only after a long
// streak of empty polls (an idle network, e.g. during a large rendezvous
// transfer) does it back off geometrically, keeping simulated spinning
// cheap without perturbing the contention dynamics under load.
func (th *Thread) progressYield() {
	th.checkCrashed()
	cost := th.cost()
	p := th.P
	if p.w.Cfg.SelectiveWakeup && th.pollBackoff > 0 {
		// Event-driven progress (§9): the last poll found nothing, so
		// park until an arrival or completion wakes us. The emptiness
		// check is adjacent to the park (no virtual-time gap), so no
		// wake-up can be lost.
		if p.cqEmpty() {
			p.activity.Wait(th.S)
		}
		th.pollBackoff = 0
		th.S.Sleep(cost.ProgressLoopOverhead)
		return
	}
	base := cost.ProgressLoopOverhead
	if j := cost.YieldJitter; j > 0 {
		base += th.P.w.Eng.Rand().Int63n(j + 1)
	}
	if s := th.pollBackoff - emptyPollGrace; s > 0 && !th.noBackoff {
		if s > 6 {
			s = 6
		}
		base <<= uint(s)
	}
	th.S.Sleep(base)
}

// emptyPollGrace is how many consecutive empty polls a spinning thread
// tolerates before backing off its loop.
const emptyPollGrace = 16
