package mpi

import (
	"fmt"

	"mpicontend/internal/fabric"
)

// rtsMeta travels with eager and RTS packets. src is the communicator-
// local source rank (matching is per communicator); the fabric packet's
// Src stays the world rank for routing.
type rtsMeta struct {
	src, tag, ctx int
	bytes         int64
}

// ctsMeta travels with a CTS packet (points back at the receive request the
// payload should land in).
type ctsMeta struct {
	recvReq *Request
}

// maxEventsPerPoll bounds how many completion-queue events one progress
// iteration handles while holding the critical section. MPICH processes a
// small batch per progress call and releases the CS between iterations;
// draining an arbitrary backlog in one hold would suppress exactly the
// lock-cycling dynamics the paper studies.
const maxEventsPerPoll = 2

// pollOnce runs one iteration of the progress engine: it polls the network
// completion queue and handles up to maxEventsPerPoll events. Must be
// called with the process's critical section held; the costs it charges
// are therefore serialized, which is the contention the paper studies.
//
//simcheck:hotpath progress-engine receive path, runs inside the critical section
func (p *Proc) pollOnce(th *Thread) {
	cost := th.cost()
	var pollFrom int64
	if p.w.tel != nil {
		pollFrom = th.S.Now()
	}
	th.S.Sleep(cost.ProgressPollWork)
	p.Polls++
	handled := 0
	for len(p.cq) > 0 && handled < maxEventsPerPoll {
		pkt := p.cq[0]
		p.cq[0] = nil
		p.cq = p.cq[1:]
		th.S.Sleep(cost.ProgressHandleWork)
		p.handlePacket(th, pkt)
		if p.rel == nil {
			// Fault-free traffic dies here: every handler branch copies
			// what it keeps (payload refs, envelope fields), and without
			// a fault plane there are no duplicate deliveries or
			// retransmit stashes sharing the struct — so the packet can
			// go back to the fabric pool.
			p.w.Fab.FreePacket(pkt)
		}
		handled++
	}
	if p.w.tel != nil {
		p.w.tel.Poll(th.S.ID(), pollFrom, th.S.Now(), handled)
	}
	if handled > 0 {
		th.pollBackoff = 0
	} else {
		th.pollBackoff++
	}
}

// handlePacket processes one fabric event inside the CS.
func (p *Proc) handlePacket(th *Thread, pkt *fabric.Packet) {
	cost := th.cost()
	now := th.S.Now()
	// This hold advanced the progress engine — the useful/wasted split of
	// the telemetry plane's Fig. 6a report.
	th.holdUseful = true
	switch pkt.Kind {
	case fabric.TxDone:
		// NIC finished injecting a payload: the owning send request is
		// complete (eager: buffer reusable; rendezvous: data shipped).
		// A request already failed by its deadline stays failed.
		req := pkt.Handle.(*Request)
		if !req.complete {
			req.markComplete(now)
		}

	case fabric.Eager:
		if r := p.matchPosted(th, pkt.Meta.(rtsMeta)); r != nil {
			if r.maxBytes >= 0 && pkt.Bytes > r.maxBytes {
				r.fail(ErrTruncate, now)
				p.PostedHits++
				break
			}
			th.S.Sleep(cost.CopyTime(pkt.Bytes)) // copy into the user buffer
			r.payload = pkt.Payload
			r.markComplete(th.S.Now())
			p.PostedHits++
		} else {
			// Buffer into the unexpected queue (allocate + temp copy).
			th.S.Sleep(cost.UnexpectedOverhead + cost.CopyTime(pkt.Bytes))
			m := pkt.Meta.(rtsMeta)
			//simcheck:allow hotalloc unexpected-queue state the paper measures; its cost is modeled as UnexpectedOverhead
			p.unexp = append(p.unexp, &envelope{
				src: m.src, tag: m.tag, ctx: m.ctx,
				bytes: pkt.Bytes, payload: pkt.Payload,
				arrivedAt: th.S.Now(),
			})
		}

	case fabric.RTS:
		m := pkt.Meta.(rtsMeta)
		if r := p.matchPosted(th, m); r != nil {
			p.PostedHits++
			r.bytes = m.bytes
			if r.maxBytes >= 0 && m.bytes > r.maxBytes {
				// Truncation: fail the receive but still clear the sender
				// to send so it drains; the RData handler drops the
				// payload of a completed request.
				r.fail(ErrTruncate, now)
			}
			cts := p.w.Fab.AllocPacket()
			*cts = fabric.Packet{
				Kind: fabric.CTS, Src: p.Rank, Dst: pkt.Src,
				Handle: pkt.Handle, Meta: ctsMeta{recvReq: r},
			}
			p.send(cts, false, nil)
		} else {
			//simcheck:allow hotalloc unexpected-queue state the paper measures; its cost is modeled as UnexpectedOverhead
			p.unexp = append(p.unexp, &envelope{
				src: m.src, tag: m.tag, ctx: m.ctx,
				bytes: m.bytes, rndv: true,
				senderReq: pkt.Handle.(*Request), arrivedAt: now,
			})
		}

	case fabric.CTS:
		// Our RTS was matched: ship the payload. Sender request
		// completes when injection finishes (TxDone). A sender already
		// failed by its deadline still drains the transfer (the receiver
		// expects the data), so no guard here.
		sreq := pkt.Handle.(*Request)
		rdata := p.w.Fab.AllocPacket()
		*rdata = fabric.Packet{
			Kind: fabric.RData, Src: p.Rank, Dst: sreq.dst,
			Bytes: sreq.bytes, Handle: sreq, Meta: pkt.Meta,
			Payload: sreq.payload,
		}
		p.send(rdata, true, sreq)

	case fabric.RData:
		// Rendezvous payload lands directly in the posted buffer — unless
		// the receive already completed (deadline timeout or truncation),
		// in which case the payload is dropped.
		r := pkt.Meta.(ctsMeta).recvReq
		if !r.complete {
			r.payload = pkt.Payload
			r.markComplete(now)
		}

	case fabric.RMAPut, fabric.RMAGet, fabric.RMAGetReply, fabric.RMAAcc, fabric.RMAAck:
		p.handleRMA(th, pkt)

	case fabric.Revoke:
		// A peer revoked a communicator (ULFM, ulfm.go). Apply it and
		// re-flood once, so revocation completes even if the initiator
		// died mid-broadcast.
		m := pkt.Meta.(revokeMeta)
		if p.ft != nil && !p.ft.revoked[m.ctx] {
			size := len(m.ranks)
			if m.ranks == nil {
				size = len(p.w.Procs)
			}
			p.applyRevoke(m.ctx, now)
			p.floodRevoke(m.ctx, m.ranks, size)
		}

	default:
		panic(fmt.Sprintf("mpi: unhandled packet kind %v", pkt.Kind))
	}

	// Reliable mode: acknowledge the packet only now that the progress
	// loop actually processed it — a starved critical section ACKs late
	// and draws retransmits (see transport.go).
	if pkt.Rel && p.rel != nil {
		p.rel.ackDelivered(pkt)
	}
}

// matchPosted scans the posted queue for a receive matching the arrival,
// charging the per-item search cost, and removes and returns the match.
func (p *Proc) matchPosted(th *Thread, m rtsMeta) *Request {
	cost := th.cost()
	for i, r := range p.posted {
		if matchesRecv(r, m.src, m.tag, m.ctx) {
			// Dequeue before charging time: the scan+remove is one
			// atomic operation even in the lock-free granularity.
			p.posted = append(p.posted[:i], p.posted[i+1:]...)
			th.S.Sleep(cost.QueueSearchPerItem * int64(i+1))
			return r
		}
	}
	th.S.Sleep(cost.QueueSearchPerItem * int64(len(p.posted)+1))
	return nil
}

// matchUnexpected scans the unexpected queue for a message satisfying the
// receive (src, tag, ctx), charging search cost, removing the hit.
func (p *Proc) matchUnexpected(th *Thread, src, tag, ctx int) *envelope {
	cost := th.cost()
	for i, e := range p.unexp {
		if e.matches(src, tag, ctx) {
			p.unexp = append(p.unexp[:i], p.unexp[i+1:]...)
			th.S.Sleep(cost.QueueSearchPerItem * int64(i+1))
			p.UnexpectedHits++
			if p.w.tel != nil {
				p.w.tel.Unexpected(th.S.Now() - e.arrivedAt)
			}
			return e
		}
	}
	th.S.Sleep(cost.QueueSearchPerItem * int64(len(p.unexp)+1))
	return nil
}

// progressYield is the non-critical gap between progress-loop iterations
// (the window in which other threads may win the lock): at full spinning
// speed this is just the loop overhead, which is what lets a mutex holder
// re-acquire before remote threads observe the release. Only after a long
// streak of empty polls (an idle network, e.g. during a large rendezvous
// transfer) does it back off geometrically, keeping simulated spinning
// cheap without perturbing the contention dynamics under load.
func (th *Thread) progressYield() {
	th.checkCrashed()
	cost := th.cost()
	p := th.P
	if p.w.Cfg.SelectiveWakeup && th.pollBackoff > 0 {
		// Event-driven progress (§9): the last poll found nothing, so
		// park until an arrival or completion wakes us. The emptiness
		// check is adjacent to the park (no virtual-time gap), so no
		// wake-up can be lost.
		if len(p.cq) == 0 {
			p.activity.Wait(th.S)
		}
		th.pollBackoff = 0
		th.S.Sleep(cost.ProgressLoopOverhead)
		return
	}
	base := cost.ProgressLoopOverhead
	if j := cost.YieldJitter; j > 0 {
		base += th.P.w.Eng.Rand().Int63n(j + 1)
	}
	if s := th.pollBackoff - emptyPollGrace; s > 0 && !th.noBackoff {
		if s > 6 {
			s = 6
		}
		base <<= uint(s)
	}
	th.S.Sleep(base)
}

// emptyPollGrace is how many consecutive empty polls a spinning thread
// tolerates before backing off its loop.
const emptyPollGrace = 16
