package mpi

import (
	"fmt"
	"sort"
)

// This file generalizes communicators beyond MPI_COMM_WORLD: Dup creates a
// disjoint matching context over the same group, Split partitions a
// communicator by color, as in MPI_Comm_split. Point-to-point source/dest
// arguments and collective ranks are always communicator-local; the
// runtime translates to world ranks for routing and matches on
// (context, comm-local source, tag).

// group returns the comm's member world ranks (identity for the world
// communicator, where ranks is left nil to avoid allocation).
func (c *Comm) world(rank int) int {
	if c.ranks == nil {
		return rank
	}
	return c.ranks[rank]
}

// rank translates a world rank to this comm's local rank, or -1.
func (c *Comm) rank(world int) int {
	if c.ranks == nil {
		return world
	}
	for i, r := range c.ranks {
		if r == world {
			return i
		}
	}
	return -1
}

// Rank returns the calling thread's rank within the communicator (-1 if
// the process is not a member).
func (c *Comm) Rank(th *Thread) int { return c.rank(th.P.Rank) }

// Member reports whether the calling thread's process belongs to c.
func (c *Comm) Member(th *Thread) bool { return c.rank(th.P.Rank) >= 0 }

// WorldRanks returns the communicator's members as world ranks, in
// comm-rank order (used by recovery code to see who a Shrink excluded).
func (c *Comm) WorldRanks() []int {
	out := make([]int, c.size)
	for i := range out {
		out[i] = c.world(i)
	}
	return out
}

// collComm returns the shadow communicator used by collective traffic:
// same group, a reserved context disjoint from every user context. The
// shadow inherits the VCI hint so explicitly placed communicators keep
// their collectives on the same shard.
func (c *Comm) collComm() *Comm {
	return &Comm{w: c.w, ctx: collCtx - c.ctx, size: c.size, ranks: c.ranks,
		vcihint: c.vcihint}
}

// SetVCI pins every operation of the communicator to the given VCI under
// the Explicit mapping policy (an MPICH-style comm info hint). Must be
// called identically on every member before any traffic; under other
// policies the hint is ignored. Returns c for chaining.
func (c *Comm) SetVCI(v int) *Comm {
	if v < 0 {
		panic(fmt.Sprintf("mpi: SetVCI(%d): negative VCI", v))
	}
	c.vcihint = v + 1
	return c
}

// vciHint returns the communicator's explicit VCI, or vci.NoHint (-1) when
// unset. Stored shifted by one so the zero value means "no hint".
func (c *Comm) vciHint() int { return c.vcihint - 1 }

// allocCtx hands out a fresh user context id. It must be called by exactly
// one process per collective (the comm's rank 0), which then broadcasts
// the id — mirroring how real MPI implementations agree on context ids.
func (w *World) allocCtx() int {
	w.nextCtx++
	return w.nextCtx
}

// SetupComm returns a duplicate of the world communicator with a fresh
// matching context, created during world setup before Run. It models a
// communicator the application dup'ed in its init phase, outside the
// timed region — the per-thread-communicator pattern the VCI literature
// recommends — without simulating the setup collective itself. Context
// ids come from the same counter as Dup/Split, so setup comms and
// run-time comms never collide.
func (w *World) SetupComm() *Comm {
	return &Comm{w: w, ctx: w.allocCtx(), size: len(w.Procs)}
}

// Dup creates a communicator over the same group with a fresh matching
// context. Collective: every member must call it.
func (th *Thread) Dup(c *Comm) *Comm {
	if !c.Member(th) {
		panic("mpi: Dup by non-member")
	}
	var ctx int64
	if c.Rank(th) == 0 {
		ctx = int64(c.w.allocCtx())
	}
	ctx = int64(th.Bcast(c, 0, 8, ctx).(int64))
	return &Comm{w: c.w, ctx: int(ctx), size: c.size, ranks: c.ranks}
}

// splitEntry is one rank's contribution to a Split.
type splitEntry struct {
	color, key, rank int
}

// splitTable is the root's computed partition, broadcast to all members.
type splitTable struct {
	// groups maps color -> member world ranks in (key, rank) order.
	colors []int
	groups [][]int
	ctxs   []int
}

// Split partitions the communicator by color, ordering each new group by
// key (ties by old rank), exactly like MPI_Comm_split. Collective: every
// member must call it; the returned communicator contains the members that
// passed the same color. A negative color returns nil (MPI_UNDEFINED).
func (th *Thread) Split(c *Comm, color, key int) *Comm {
	if !c.Member(th) {
		panic("mpi: Split by non-member")
	}
	me := c.Rank(th)
	gathered := th.Gather(c, 0, 24, splitEntry{color: color, key: key, rank: me})
	var table splitTable
	if me == 0 {
		byColor := map[int][]splitEntry{}
		for _, v := range gathered {
			e := v.(splitEntry)
			if e.color >= 0 {
				byColor[e.color] = append(byColor[e.color], e)
			}
		}
		for col := range byColor {
			table.colors = append(table.colors, col)
		}
		sort.Ints(table.colors)
		for _, col := range table.colors {
			es := byColor[col]
			sort.Slice(es, func(i, j int) bool {
				if es[i].key != es[j].key {
					return es[i].key < es[j].key
				}
				return es[i].rank < es[j].rank
			})
			group := make([]int, len(es))
			for i, e := range es {
				group[i] = c.world(e.rank)
			}
			table.groups = append(table.groups, group)
			table.ctxs = append(table.ctxs, c.w.allocCtx())
		}
	}
	table = th.Bcast(c, 0, int64(8*c.size), table).(splitTable)
	if color < 0 {
		return nil
	}
	myWorld := th.P.Rank
	for i, col := range table.colors {
		if col != color {
			continue
		}
		for _, r := range table.groups[i] {
			if r == myWorld {
				return &Comm{w: c.w, ctx: table.ctxs[i],
					size: len(table.groups[i]), ranks: table.groups[i]}
			}
		}
	}
	panic(fmt.Sprintf("mpi: Split table missing rank %d color %d", myWorld, color))
}
