package mpi

// Error-propagating collectives. The value-returning collectives in
// coll.go predate the fault-tolerance plane and discard request errors
// (acceptable under MPI_ERRORS_ARE_FATAL, where Wait panics first); these
// variants return the first failure instead, which recovery code needs
// under MPI_ERRORS_RETURN.
//
// Deadline audit (see also the regression test in ft_test.go): collectives
// are built entirely on the point-to-point issue paths, so armDeadline —
// called from Isend/IrecvN — covers every collective round. A collective
// against a silent peer therefore times out with ErrTimeout per-request;
// the gap this file closes is only the *propagation* of that error to the
// collective's caller.

// BarrierErr is Barrier with error propagation: it fails fast with
// ErrRevoked/ErrProcFailed at entry when the fault-tolerance plane knows
// the collective cannot complete, and returns the first request error
// (e.g. ErrTimeout against a silent peer) from any round.
func (th *Thread) BarrierErr(c *Comm) error {
	if err := c.collCheck(th); err != nil {
		return err
	}
	n := c.size
	if n <= 1 {
		return nil
	}
	cc := c.collComm()
	me := c.Rank(th)
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		tag := 1000 + round
		if _, err := th.sendrecvE(cc, dst, tag, 1, nil, src, tag); err != nil {
			return err
		}
	}
	return nil
}

// AllreduceSumErr is AllreduceSum with error propagation.
func (th *Thread) AllreduceSumErr(c *Comm, val int64) (int64, error) {
	return th.allreduceErr(c, val, func(a, b int64) int64 { return a + b })
}

// AllreduceMaxErr is AllreduceMax with error propagation.
func (th *Thread) AllreduceMaxErr(c *Comm, val int64) (int64, error) {
	return th.allreduceErr(c, val, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllreduceMinErr reduces val with min across ranks, with error
// propagation (used by checkpoint restore to agree on the rollback
// iteration).
func (th *Thread) AllreduceMinErr(c *Comm, val int64) (int64, error) {
	return th.allreduceErr(c, val, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// allreduceErr mirrors allreduce (binomial reduce to rank 0, binomial
// broadcast) but surfaces the first request error.
func (th *Thread) allreduceErr(c *Comm, val int64, op func(a, b int64) int64) (int64, error) {
	if err := c.collCheck(th); err != nil {
		return 0, err
	}
	n := c.size
	if n <= 1 {
		return val, nil
	}
	cc := c.collComm()
	me := c.Rank(th)
	acc := val
	for k := 1; k < n; k <<= 1 {
		tag := 2000 + k
		if me&k != 0 {
			if err := th.sendE(cc, me-k, tag, 8, acc); err != nil {
				return 0, err
			}
			break
		}
		if me+k < n {
			v, err := th.recvE(cc, me+k, tag)
			if err != nil {
				return 0, err
			}
			acc = op(acc, v.(int64))
		}
	}
	top := 1
	for top < n {
		top <<= 1
	}
	for k := top >> 1; k >= 1; k >>= 1 {
		tag := 3000 + k
		if me&(k-1) == 0 {
			if me&k != 0 {
				v, err := th.recvE(cc, me-k, tag)
				if err != nil {
					return 0, err
				}
				acc = v.(int64)
			} else if me+k < n {
				if err := th.sendE(cc, me+k, tag, 8, acc); err != nil {
					return 0, err
				}
			}
		}
	}
	return acc, nil
}
