package mpi

import "mpicontend/internal/sim"

// ReqKind distinguishes request flavours.
type ReqKind int

const (
	// SendReq is a two-sided send request.
	SendReq ReqKind = iota
	// RecvReq is a two-sided receive request.
	RecvReq
	// RMAReq is a one-sided operation in flight.
	RMAReq
)

// String names the request kind.
func (k ReqKind) String() string {
	switch k {
	case SendReq:
		return "send"
	case RecvReq:
		return "recv"
	case RMAReq:
		return "rma"
	default:
		return "unknown"
	}
}

// Request is an MPI request object. Its lifecycle follows the paper's
// Fig. 3b state diagram: issued -> (posted) -> completed -> freed. A
// request that is completed but not yet freed is "dangling" (§4.4).
type Request struct {
	p    *Proc
	kind ReqKind

	src, dst int // peer ranks (src for recv matching, dst for send)
	tag      int
	ctx      int
	bytes    int64

	payload interface{} // send payload / received data after completion

	complete    bool
	freed       bool
	completedAt sim.Time

	// send protocol state
	rndv bool

	// rma op state
	win *Win

	// comm the request was issued on (nil for RMA ops); resolves the
	// error handler.
	comm *Comm
	// maxBytes bounds the receive buffer (IrecvN); -1 means unbounded.
	maxBytes int64
	// err records the failure that completed the request, if any.
	err *Error
	// deadline is the armed per-request timeout (reliable mode only).
	deadline *sim.Timer

	// poolable marks requests whose object provably dies at release time
	// (fault-free sends and RMA put/accumulate: nothing reads them after
	// the error handler ran). Receives and gets are excluded because
	// callers read Data() after waiting; reliable-mode requests because
	// retransmit state may still reference them.
	poolable bool
	// nextFree links the world's request free list while pooled.
	nextFree *Request

	// onComplete is the registered continuation (progressd.go): dispatched
	// by the progress engine exactly once, at completion time, after which
	// the runtime frees the request itself.
	onComplete func(r *Request, err error)
	// cq, when non-nil, delivers the completed request onto the owning
	// thread's completion queue instead of a callback.
	cq *CompletionQueue

	// vci is the virtual communication interface the request lives on
	// (always 0 in the unsharded runtime). A cross-VCI wildcard receive
	// starts at -1 (posted on every shard) and is bound to the shard that
	// matches it.
	vci int
	// wild marks a cross-VCI wildcard receive (irecvWild): the request is
	// cross-posted to every shard's posted queue, and copies left on other
	// shards after it matches are tombstones pruned during later scans.
	wild bool
	// part links the inner request of a partitioned epoch back to its
	// persistent Prequest (partitioned.go); nil for ordinary requests.
	// Partitioned receives live on vciShard.pposted, not posted.
	part *Prequest
}

// Err returns the error that failed the request, or nil. Valid once the
// request completed (after Test returns true or Wait returns).
func (r *Request) Err() error {
	if r.err == nil {
		return nil
	}
	return r.err
}

// Complete reports whether the request has completed.
func (r *Request) Complete() bool { return r.complete }

// Freed reports whether the request was freed.
func (r *Request) Freed() bool { return r.freed }

// Bytes returns the message size.
func (r *Request) Bytes() int64 { return r.bytes }

// Kind returns the request kind.
func (r *Request) Kind() ReqKind { return r.kind }

// Data returns the payload delivered by a completed receive or RMA get.
func (r *Request) Data() interface{} { return r.payload }

// markComplete transitions the request to the completed state; it becomes
// dangling until freed. Must run in engine or CS context.
//
//simcheck:hotpath request-completion path, runs once per message
func (r *Request) markComplete(at sim.Time) {
	if r.complete {
		panic("mpi: request completed twice")
	}
	r.complete = true
	r.completedAt = at
	if r.deadline != nil {
		r.deadline.Cancel()
		r.deadline = nil
	}
	r.p.w.danglingNow++
	r.p.danglingNow++
	r.p.w.completedTotal++
	if w := r.p.w; w.tel != nil {
		w.tel.Dangling(at, int64(w.danglingNow))
	}
	if r.p.w.Cfg.SelectiveWakeup {
		// Event-driven progress (§9): completions wake parked waiters.
		r.p.activity.WakeAll(at)
	}
	if r.p.w.eventDriven() {
		// Strong/continuation progress (progressd.go): bump the proc's
		// completion sequence (closes the check-then-park window of
		// waitEvent/waitallEvent), dispatch any registered continuation or
		// completion-queue delivery from right here — the completing
		// context — and wake parked waiters.
		r.p.completeSeq++
		if r.cq != nil {
			r.deliverCQ(at)
		} else if r.onComplete != nil {
			//simcheck:allow hotalloc continuation dispatch escapes the receiver; fires once per completed request
			r.fire(at)
		}
		r.p.activity.WakeAll(at)
	}
}

// deliverCQ hands the completed request to its completion queue: the
// runtime frees it here, in the completing context, and the drain side
// only reads payload and error afterwards. CQ-delivered requests are
// never recycled — the drained object stays readable.
func (r *Request) deliverCQ(at sim.Time) {
	q := r.cq
	r.cq = nil
	r.free()
	q.push(r, at)
}

// fail completes the request unsuccessfully with the given error class.
// A timed-out receive is withdrawn from the posted queue so a later
// arrival cannot match (and double-complete) it. No-op if the request
// already completed or was freed. Must run in engine or CS context.
func (r *Request) fail(code Errcode, at sim.Time) {
	if r.complete || r.freed {
		return
	}
	//simcheck:allow hotalloc error construction runs once per failed request, not per message
	r.err = &Error{Code: code, Detail: r.describe()}
	if r.kind == RecvReq {
		p := r.p
		if r.part != nil {
			// Partitioned receives post on the partitioned queue.
			sh := p.vcis[r.vci]
			for i, q := range sh.pposted {
				if q == r {
					sh.pposted = append(sh.pposted[:i], sh.pposted[i+1:]...)
					break
				}
			}
		} else if r.wild && r.vci < 0 {
			// An unbound wildcard is cross-posted on every shard; withdraw
			// all copies.
			for _, sh := range p.vcis {
				for i, q := range sh.posted {
					if q == r {
						sh.posted = append(sh.posted[:i], sh.posted[i+1:]...)
						break
					}
				}
			}
		} else {
			sh := p.vcis[r.vci]
			for i, q := range sh.posted {
				if q == r {
					sh.posted = append(sh.posted[:i], sh.posted[i+1:]...)
					break
				}
			}
		}
	}
	r.p.w.requestFailures++
	r.markComplete(at)
	// Failed requests must wake their waiters even without
	// SelectiveWakeup parking: completion polling notices on the next
	// progress round, but parked threads need the nudge.
	r.p.activity.WakeAll(at)
}

// free releases a completed request. Must be called with the CS held.
func (r *Request) free() {
	if !r.complete {
		panic("mpi: freeing incomplete request")
	}
	if r.freed {
		panic("mpi: request freed twice")
	}
	r.freed = true
	r.p.w.danglingNow--
	r.p.danglingNow--
	r.p.outstanding--
	if w := r.p.w; w.tel != nil {
		w.tel.Dangling(w.Eng.Now(), int64(w.danglingNow))
	}
	if r.win != nil {
		r.win.pending--
	}
}

// release runs the error handler for a freed request and, when the object
// is provably dead, returns it to the world pool. The caller must not
// touch r afterwards (standard MPI: a waited-on request is inactive).
func (r *Request) release() error {
	err := r.raise()
	if r.poolable && r.err == nil {
		if len(r.p.vcis) > 1 {
			// Sharded runtime: the object goes back to its shard's pool,
			// keeping request recycling contention-free per VCI.
			sh := r.p.vcis[r.vci]
			r.nextFree = sh.reqFree
			sh.reqFree = r
		} else {
			r.p.w.recycleRequest(r)
		}
	}
	return err
}

// envelope is an entry of the unexpected-message queue: a message (eager,
// with buffered payload) or a rendezvous RTS that arrived before a matching
// receive was posted.
type envelope struct {
	src, tag, ctx int
	bytes         int64
	payload       interface{}
	rndv          bool
	senderReq     *Request // rendezvous: origin request to CTS back to
	arrivedAt     sim.Time
	vci           int // shard the message arrived on (0 when unsharded)
}

// matches reports whether the envelope satisfies a receive for (src, tag,
// ctx) honouring wildcards.
func (e *envelope) matches(src, tag, ctx int) bool {
	if e.ctx != ctx {
		return false
	}
	if src != AnySource && e.src != src {
		return false
	}
	if tag != AnyTag && e.tag != tag {
		return false
	}
	return true
}

// matchesRecv reports whether a posted receive r accepts an arrival from
// (src, tag, ctx).
func matchesRecv(r *Request, src, tag, ctx int) bool {
	if r.ctx != ctx {
		return false
	}
	if r.src != AnySource && r.src != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}
