package mpi

import (
	"fmt"

	"mpicontend/internal/fabric"
)

// Win is a one-sided communication window: a float64 buffer exposed on
// every rank (elements model MPI_DOUBLE, 8 bytes each). Access is passive
// target: origins issue Put/Get/Accumulate and complete them with Flush.
type Win struct {
	w        *World
	id       int
	buffers  [][]float64 // per-rank window memory
	pending  int         // live RMA requests issued on this window (all ranks)
	elemSize int64
}

// rmaMeta travels with one-sided packets.
type rmaMeta struct {
	winID  int
	offset int64
	count  int64
}

// NewWin creates a window of count float64 elements on every rank.
func (w *World) NewWin(count int64) *Win {
	win := &Win{w: w, id: len(w.wins), elemSize: 8}
	for range w.Procs {
		win.buffers = append(win.buffers, make([]float64, count))
	}
	w.wins = append(w.wins, win)
	return win
}

// Buffer exposes rank's window memory (for tests and result checking).
func (win *Win) Buffer(rank int) []float64 { return win.buffers[rank] }

// rmaOp issues one one-sided operation from th to target and returns its
// tracking request. Internal helper for Put/Get/Accumulate.
func (th *Thread) rmaOp(kind fabric.PacketKind, win *Win, target int,
	offset int64, count int64, payload []float64) *Request {
	p := th.P
	tel := th.telStart()
	th.mainBegin()
	r := p.w.allocRequest()
	*r = Request{p: p, kind: RMAReq, dst: target, src: p.Rank,
		bytes: count * win.elemSize, win: win,
		// Gets are excluded from pooling: callers read Data() after the
		// wait that freed the request.
		poolable: p.rel == nil && kind != fabric.RMAGet}
	p.outstanding++
	win.pending++
	p.armDeadline(r)
	if p.ftIssue(r) {
		th.mainEnd()
		th.telCall(kind.String(), tel)
		return r
	}
	bytes := int64(0)
	var data interface{}
	if kind == fabric.RMAPut || kind == fabric.RMAAcc {
		bytes = count * win.elemSize
		data = payload
	}
	pkt := p.w.Fab.AllocPacket()
	*pkt = fabric.Packet{
		Kind: kind, Src: p.Rank, Dst: target, Bytes: bytes,
		Handle: r, Meta: rmaMeta{winID: win.id, offset: offset, count: count},
		Payload: data,
	}
	p.send(pkt, false, r)
	th.mainEnd()
	th.telCall(kind.String(), tel)
	return r
}

// Put copies vals into the target rank's window at offset. The returned
// request completes when the target acknowledges.
func (th *Thread) Put(win *Win, target int, offset int64, vals []float64) *Request {
	return th.rmaOp(fabric.RMAPut, win, target, offset, int64(len(vals)), vals)
}

// Get fetches count elements from the target's window at offset. After the
// request completes, Data() holds the []float64.
func (th *Thread) Get(win *Win, target int, offset, count int64) *Request {
	return th.rmaOp(fabric.RMAGet, win, target, offset, count, nil)
}

// Accumulate adds vals element-wise into the target's window at offset
// (MPI_SUM semantics).
func (th *Thread) Accumulate(win *Win, target int, offset int64, vals []float64) *Request {
	return th.rmaOp(fabric.RMAAcc, win, target, offset, int64(len(vals)), vals)
}

// Flush blocks until every outstanding RMA operation issued by this
// process on the window has completed, freeing their requests. Like Wait,
// it iterates the progress loop at low priority. It returns the first
// request error, if any (after the error handler runs).
func (th *Thread) Flush(win *Win, rs []*Request) error {
	return th.Waitall(rs)
}

// handleRMA processes one-sided protocol packets inside the CS.
func (p *Proc) handleRMA(th *Thread, pkt *fabric.Packet) {
	cost := th.cost()
	now := th.S.Now()
	switch pkt.Kind {
	case fabric.RMAPut:
		m := pkt.Meta.(rmaMeta)
		win := p.w.wins[m.winID]
		vals := pkt.Payload.([]float64)
		th.S.Sleep(cost.CopyTime(pkt.Bytes))
		copy(win.buffers[p.Rank][m.offset:], vals)
		ack := p.w.Fab.AllocPacket()
		*ack = fabric.Packet{Kind: fabric.RMAAck, Src: p.Rank,
			Dst: pkt.Src, Handle: pkt.Handle}
		p.send(ack, false, nil)

	case fabric.RMAAcc:
		m := pkt.Meta.(rmaMeta)
		win := p.w.wins[m.winID]
		vals := pkt.Payload.([]float64)
		th.S.Sleep(cost.AccumulateTime(pkt.Bytes))
		dst := win.buffers[p.Rank][m.offset:]
		for i, v := range vals {
			dst[i] += v
		}
		ack := p.w.Fab.AllocPacket()
		*ack = fabric.Packet{Kind: fabric.RMAAck, Src: p.Rank,
			Dst: pkt.Src, Handle: pkt.Handle}
		p.send(ack, false, nil)

	case fabric.RMAGet:
		m := pkt.Meta.(rmaMeta)
		win := p.w.wins[m.winID]
		th.S.Sleep(cost.CopyTime(m.count * win.elemSize))
		//simcheck:allow hotalloc payload buffer handed to the user; its copy cost is modeled above
		vals := make([]float64, m.count)
		copy(vals, win.buffers[p.Rank][m.offset:])
		reply := p.w.Fab.AllocPacket()
		*reply = fabric.Packet{Kind: fabric.RMAGetReply, Src: p.Rank,
			Dst: pkt.Src, Bytes: m.count * win.elemSize,
			Handle: pkt.Handle, Payload: vals}
		p.send(reply, false, nil)

	case fabric.RMAGetReply:
		// A get already failed by its deadline drops the late reply.
		r := pkt.Handle.(*Request)
		if !r.complete {
			r.payload = pkt.Payload
			r.markComplete(now)
		}

	case fabric.RMAAck:
		// An op already failed by its deadline drops the late ack.
		if r := pkt.Handle.(*Request); !r.complete {
			r.markComplete(now)
		}

	default:
		panic(fmt.Sprintf("mpi: unhandled RMA packet %v", pkt.Kind))
	}
}
