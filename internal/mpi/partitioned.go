package mpi

// This file implements MPI-4.0-style partitioned point-to-point
// communication (MPI_Psend_init / MPI_Precv_init / MPI_Pready /
// MPI_Parrived): a persistent request whose payload is split into
// partitions that worker threads mark ready independently. Readiness is a
// lock-free bitmap — the paper's critical-section cost evaporates because
// every Pready but the last touches only atomics — and only the final
// Pready that completes the mask enters the VCI shard section (and, in
// multi-VCI mode, the shared-NIC injection lock) to fire one aggregated
// wire transfer for the whole epoch.
//
// The simulated "lock-free" discipline: the engine runs one simthread at a
// time, so plain field updates are safe; what makes the fast path lock-free
// is that it never enters a critical section (no csLock.enter, no simlock
// traffic) and charges only CostModel.AtomicOpCost per atomic it models.
//
// The receive side is equally runtime-free: PartData packets are consumed
// at driver level (Proc.handlePartData, engine context), like a NIC
// DMA-ing partition data into the pre-posted buffer, so Parrived is a
// plain atomic load with no progress loop behind it.
//
// Matching is deliberately disjoint from the eager/rendezvous channel:
// started Precv requests live on vciShard.pposted and arrivals that beat
// their Start accumulate in vciShard.punexp, so a partitioned transfer can
// never match an Irecv with the same (comm, tag, src) or vice versa.

import (
	"fmt"

	"mpicontend/internal/fabric"
)

// partSegSpan is the partition span of one PartData segment under the
// reliable transport: the aggregate is cut into independently
// sequence-numbered ranges of at most this many partitions, so a dropped
// segment retransmits only its own partitions (partition-granularity
// recovery). Fault-free runs send the whole epoch as one segment.
const partSegSpan = 16

// partBitmap is the partition-readiness mask: one bit per partition plus a
// running count, giving O(1) full detection. set/setRange report the
// n-1 → n transition exactly once per epoch — the trigger the final Pready
// acts on. All methods model lock-free atomics (fetch-or / atomic load);
// the caller charges AtomicOpCost, the engine's one-simthread-at-a-time
// execution supplies the atomicity.
type partBitmap struct {
	words []uint64
	n     int
	ready int
}

// reset re-arms the bitmap for an epoch of n partitions, reusing the word
// storage across epochs (persistent requests allocate once).
func (b *partBitmap) reset(n int) {
	nw := (n + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	}
	b.words = b.words[:nw]
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = n
	b.ready = 0
}

// get reports whether partition i is set (one atomic load).
//
//simcheck:hotpath Parrived fast path: a lock-free readiness probe, no allocation
func (b *partBitmap) get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// overlaps reports whether any partition in [lo, hi) is already set.
func (b *partBitmap) overlaps(lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if b.get(i) {
			return true
		}
	}
	return false
}

// setRange marks partitions [lo, hi) ready. If any of them is already set
// the call mutates nothing and reports already=true (the double-Pready
// error); otherwise trigger reports whether this call completed the mask —
// true exactly once per epoch.
//
//simcheck:hotpath Pready fast path: the lock-free readiness transition, no lock and no allocation
func (b *partBitmap) setRange(lo, hi int) (already, trigger bool) {
	if b.overlaps(lo, hi) {
		return true, false
	}
	for i := lo; i < hi; i++ {
		b.words[i>>6] |= 1 << uint(i&63)
	}
	b.ready += hi - lo
	return false, b.ready == b.n
}

// full reports whether every partition is set.
func (b *partBitmap) full() bool { return b.ready == b.n }

// partMeta is the protocol header of a PartData segment: enough for the
// receiver to match the transfer and place the partition range.
type partMeta struct {
	src      int // sender's comm-local rank
	tag      int
	ctx      int
	parts    int   // partitions of the whole epoch
	bytesPer int64 // bytes per partition
	lo, hi   int   // partition range this segment covers
}

// penvelope is an entry of the partitioned unexpected queue: partition
// ranges of one epoch that arrived before the matching Precv was started.
// sealed marks a fully-arrived epoch awaiting adoption.
type penvelope struct {
	src, tag, ctx int
	parts         int
	bytesPer      int64
	payload       interface{}
	arrived       partBitmap
	sealed        bool
}

// PartStats are the world-wide partitioned-communication counters.
type PartStats struct {
	// PreadyFast counts Pready/PreadyRange calls that stayed on the
	// lock-free path (did not complete the mask: no critical section).
	PreadyFast int64
	// PreadyTrigger counts the readiness-completing calls that entered
	// the shard section and injected the aggregate — one per epoch.
	PreadyTrigger int64
	// Aggregates counts aggregated transfers (one per triggered epoch).
	Aggregates int64
	// Partitions counts the partitions those aggregates carried; the
	// aggregation ratio is Partitions/Aggregates.
	Partitions int64
	// PartRetransmits counts partitions covered by retransmitted PartData
	// segments: under partition-granularity recovery a dropped aggregate
	// resends only its unacked ranges, so this stays well below
	// Partitions even under heavy loss.
	PartRetransmits int64
}

// PartStats returns the partitioned-communication counters, folding in the
// reliable transport's per-proc partition-retransmit counts.
func (w *World) PartStats() PartStats {
	s := w.partStats
	for _, p := range w.Procs {
		if p.rel != nil {
			s.PartRetransmits += p.rel.PartRetransmits
		}
	}
	return s
}

// Prequest is a persistent partitioned request (MPI_Psend_init /
// MPI_Precv_init). One Prequest is reused across epochs: Pstart opens an
// epoch by allocating a fresh inner Request (pool-integrated like every
// other request), Pready/Parrived run lock-free against the epoch's
// bitmap, and Pwait (or any Wait-family call on Request()) closes it.
type Prequest struct {
	p    *Proc
	comm *Comm
	send bool
	peer int // comm-local: dst for sends; src (possibly AnySource) for recvs
	wdst int // world rank of the destination (sends only)
	tag  int

	parts    int
	bytesPer int64
	vci      int

	// payload: the user buffer handed to PsendInit; on the receive side,
	// the delivered aggregate once the first segment lands.
	payload interface{}

	// r is the current epoch's inner request, nil before the first
	// Pstart. Partitioned inner requests are never pooled (poolable stays
	// false): the Prequest — and, under faults, per-range retransmit
	// state — keeps reading the object after release, so recycling it
	// into an unrelated operation would dangle this pointer.
	r *Request

	ready   partBitmap // send side: partitions marked ready this epoch
	arrived partBitmap // recv side: partitions landed this epoch

	epochs int64 // completed Pstart count (diagnostics)
}

// Request returns the current epoch's inner request — the handle to pass
// to OnComplete, CompletionQueue.Add or the Wait family for completion
// integration. Nil before the first Pstart.
func (pr *Prequest) Request() *Request { return pr.r }

// Parts returns the partition count.
func (pr *Prequest) Parts() int { return pr.parts }

// BytesPerPartition returns the size of one partition.
func (pr *Prequest) BytesPerPartition() int64 { return pr.bytesPer }

// Data returns the delivered aggregate of a partitioned receive: valid for
// partition i once Parrived(i) reported true, and for the whole buffer
// once the epoch completed.
func (pr *Prequest) Data() interface{} { return pr.payload }

// active reports whether an epoch is open: started and not yet consumed by
// the Wait family.
func (pr *Prequest) active() bool { return pr.r != nil && !pr.r.freed }

// describe renders the request for error messages.
func (pr *Prequest) describe() string {
	dir := "psend"
	if !pr.send {
		dir = "precv"
	}
	return fmt.Sprintf("%s rank %d peer %d tag %d (%d partitions x %d bytes)",
		dir, pr.p.Rank, pr.peer, pr.tag, pr.parts, pr.bytesPer)
}

// raiseCode surfaces a partitioned-usage error (no inner request involved)
// through the same handler resolution as Request.raise.
func (pr *Prequest) raiseCode(code Errcode) error {
	//simcheck:allow hotalloc error construction runs once per erroneous call, not per message
	err := &Error{Code: code, Detail: pr.describe()}
	h := pr.comm.errhandler
	if h == ErrhandlerInherit {
		h = pr.p.w.errhandler
	}
	if h == ErrhandlerInherit {
		h = ErrorsAreFatal
	}
	if h == ErrorsAreFatal {
		panic(fmt.Sprintf("mpi: %v (set MPI_ERRORS_RETURN to handle)", err))
	}
	return err
}

// pinit validates the shared PsendInit/PrecvInit parameters.
func (pr *Prequest) pinit(c *Comm, tag, parts int, bytesPer int64) {
	if parts <= 0 {
		panic("mpi: partitioned request needs at least one partition")
	}
	if bytesPer <= 0 {
		panic("mpi: partitioned request needs a positive partition size")
	}
	if tag == AnyTag {
		panic("mpi: partitioned requests need a concrete tag (AnyTag cannot name a matching channel)")
	}
	pr.comm = c
	pr.tag = tag
	pr.parts = parts
	pr.bytesPer = bytesPer
	pr.vci = pr.p.selectVCI(c, tag)
}

// PsendInit creates a persistent partitioned send of parts partitions of
// bytesPer bytes each to rank dst. Like MPI_Psend_init it is purely local:
// nothing reaches the wire until an epoch's final Pready. The payload is
// the backing buffer worker threads fill before marking partitions ready.
func (th *Thread) PsendInit(c *Comm, dst, tag, parts int, bytesPer int64, payload interface{}) *Prequest {
	pr := &Prequest{p: th.P, send: true, peer: dst, payload: payload}
	pr.pinit(c, tag, parts, bytesPer)
	if dst == AnySource {
		panic("mpi: PsendInit needs a concrete destination")
	}
	pr.wdst = c.world(dst)
	return pr
}

// PrecvInit creates a persistent partitioned receive matching a PsendInit
// of the same shape on (comm, tag) from src (AnySource allowed). Local,
// like MPI_Precv_init: matching begins at Pstart.
func (th *Thread) PrecvInit(c *Comm, src, tag, parts int, bytesPer int64) *Prequest {
	pr := &Prequest{p: th.P, send: false, peer: src}
	pr.pinit(c, tag, parts, bytesPer)
	return pr
}

// Pstart opens an epoch (MPI_Start on a partitioned request): it allocates
// the epoch's inner request under the shard section, re-arms the readiness
// bitmap, and — on the receive side — posts the request on the partitioned
// matching queue, adopting any arrivals that beat it. Starting an active
// epoch panics (MPI: the previous epoch must be completed first).
func (th *Thread) Pstart(pr *Prequest) {
	p := th.P
	if p != pr.p {
		panic("mpi: Pstart from a thread of another process")
	}
	if pr.active() {
		panic("mpi: Pstart on an active partitioned request (complete the previous epoch first)")
	}
	v := pr.vci
	tel := th.telStart()
	th.mainBeginVCI(v)
	r := p.allocReqVCI(v)
	if pr.send {
		*r = Request{
			p: p, kind: SendReq, dst: pr.wdst, src: p.Rank,
			tag: pr.tag, ctx: pr.comm.ctx, bytes: pr.bytesPer * int64(pr.parts),
			payload: pr.payload, comm: pr.comm, maxBytes: -1, vci: v, part: pr,
		}
		pr.ready.reset(pr.parts)
	} else {
		*r = Request{
			p: p, kind: RecvReq, src: pr.peer, tag: pr.tag, ctx: pr.comm.ctx,
			comm: pr.comm, maxBytes: -1, vci: v, part: pr,
		}
		pr.arrived.reset(pr.parts)
	}
	pr.r = r
	pr.epochs++
	p.outstanding++
	p.armDeadline(r)
	if p.ftIssue(r) {
		// Revoked context or known-dead peer: the epoch failed at issue
		// (fail-fast, ft.go); Parrived and the Wait family surface it.
		th.mainEndVCI(v)
		th.telCall("Pstart", tel)
		return
	}
	if !pr.send {
		sh := p.vcis[v]
		if !p.adoptPunexp(th, sh, pr, r) {
			sh.pposted = append(sh.pposted, r)
		}
	}
	th.mainEndVCI(v)
	th.telCall("Pstart", tel)
}

// adoptPunexp folds the earliest matching partitioned-unexpected envelope
// into a freshly started Precv. Reports true when the epoch completed
// immediately (a sealed envelope: every partition had already arrived).
func (p *Proc) adoptPunexp(th *Thread, sh *vciShard, pr *Prequest, r *Request) bool {
	cost := th.cost()
	for i, e := range sh.punexp {
		if e.ctx != pr.comm.ctx || e.tag != pr.tag {
			continue
		}
		if pr.peer != AnySource && e.src != pr.peer {
			continue
		}
		if e.parts != pr.parts || e.bytesPer != pr.bytesPer {
			// Shape mismatch: partitioned matching in this runtime
			// requires identical partitioning on both sides.
			sh.punexp = append(sh.punexp[:i], sh.punexp[i+1:]...)
			r.fail(ErrTruncate, th.S.Now())
			return true
		}
		sh.punexp = append(sh.punexp[:i], sh.punexp[i+1:]...)
		th.S.Sleep(cost.UnexpectedMatchOverhead)
		pr.arrived = e.arrived
		pr.payload = e.payload
		r.payload = e.payload
		r.bytes = pr.bytesPer * int64(pr.parts)
		if e.sealed {
			th.S.Sleep(cost.CopyTime(r.bytes)) // unexpected buffer -> user buffer
			r.markComplete(th.S.Now())
			return true
		}
		// Partial epoch: the remaining segments land through pposted.
		return false
	}
	return false
}

// Pready marks partition i of an active partitioned send ready
// (MPI_Pready). Every call but the one completing the mask is lock-free:
// two modeled atomics (fetch-or the bit, fetch-add the count), no critical
// section. The completing call triggers the epoch's aggregated transfer
// under the shard section — the single remaining lock acquisition of the
// whole epoch's send path.
//
// Pready before Pstart returns ErrPartInactive; marking a partition twice
// in one epoch returns ErrPartDoubleReady (both through the configured
// error handler).
func (th *Thread) Pready(pr *Prequest, i int) error {
	return th.preadyRange(pr, i, i+1)
}

// PreadyRange marks partitions [lo, hi) ready in one call
// (MPI_Pready_range); same semantics and cost model as Pready, one pair of
// modeled atomics per partition.
func (th *Thread) PreadyRange(pr *Prequest, lo, hi int) error {
	return th.preadyRange(pr, lo, hi)
}

func (th *Thread) preadyRange(pr *Prequest, lo, hi int) error {
	if !pr.send {
		panic("mpi: Pready on a partitioned receive")
	}
	if lo < 0 || hi > pr.parts || lo >= hi {
		panic(fmt.Sprintf("mpi: Pready range [%d,%d) out of [0,%d)", lo, hi, pr.parts))
	}
	if !pr.active() {
		return pr.raiseCode(ErrPartInactive)
	}
	// The lock-free fast path: fetch-or + fetch-add per partition, no
	// critical section, no allocation.
	th.S.Sleep(int64(hi-lo) * 2 * th.cost().AtomicOpCost)
	already, trigger := pr.markReady(lo, hi)
	if already {
		return pr.raiseCode(ErrPartDoubleReady)
	}
	if trigger {
		th.partTrigger(pr)
	}
	return nil
}

// markReady is the readiness transition itself: the bitmap update plus the
// fast/trigger accounting. Everything a non-final Pready executes after
// validation lives here — the hotalloc root below pins it allocation-free,
// and it takes no lock, making the fast path a verified lock-free zone.
//
//simcheck:hotpath Pready readiness transition: every non-final Pready runs only this — lock-free, allocation-free
func (pr *Prequest) markReady(lo, hi int) (already, trigger bool) {
	already, trigger = pr.ready.setRange(lo, hi)
	if already {
		return
	}
	w := pr.p.w
	if trigger {
		w.partStats.PreadyTrigger++
		w.tel.PreadyTrigger()
	} else {
		w.partStats.PreadyFast++
		w.tel.PreadyFast()
	}
	return
}

// partTrigger fires the epoch's aggregated transfer: the final Pready
// enters the shard section once, injects the epoch as one PartData packet
// (fault-free) or as independently-sequenced partition-range segments of
// at most partSegSpan partitions (reliable transport — the unit of
// partition-granularity retransmission), and leaves. TxDone on the last
// segment completes the send request.
func (th *Thread) partTrigger(pr *Prequest) {
	p := th.P
	v := pr.vci
	r := pr.r
	tel := th.telStart()
	th.mainBeginVCI(v)
	if r.complete {
		// The epoch already failed (deadline, dead peer): nothing to
		// inject — the error surfaces through Parrived/Wait.
		th.mainEndVCI(v)
		th.telCall("Pready", tel)
		return
	}
	span := pr.parts
	if p.rel != nil && span > partSegSpan {
		span = partSegSpan
	}
	for lo := 0; lo < pr.parts; lo += span {
		hi := lo + span
		if hi > pr.parts {
			hi = pr.parts
		}
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{
			Kind: fabric.PartData, Src: p.Rank, Dst: r.dst,
			Bytes: pr.bytesPer * int64(hi-lo), Handle: r,
			Meta: partMeta{
				src: pr.comm.rank(p.Rank), tag: pr.tag, ctx: pr.comm.ctx,
				parts: pr.parts, bytesPer: pr.bytesPer, lo: lo, hi: hi,
			},
			Payload: pr.payload, VCI: v,
		}
		p.sendShard(th, pkt, hi == pr.parts, r)
	}
	w := p.w
	w.partStats.Aggregates++
	w.partStats.Partitions += int64(pr.parts)
	th.mainEndVCI(v)
	th.telCall("Pready", tel)
}

// Parrived reports whether partition i of an active partitioned receive
// has landed (MPI_Parrived): one modeled atomic load, no lock, no progress
// loop — arrivals are written at driver level like a NIC DMA. A failed
// epoch (dead peer, timeout) surfaces its error here, through the
// configured handler.
func (th *Thread) Parrived(pr *Prequest, i int) (bool, error) {
	if pr.send {
		panic("mpi: Parrived on a partitioned send")
	}
	if i < 0 || i >= pr.parts {
		panic(fmt.Sprintf("mpi: Parrived partition %d out of [0,%d)", i, pr.parts))
	}
	if !pr.active() {
		return false, pr.raiseCode(ErrPartInactive)
	}
	if pr.r.err != nil {
		return false, pr.r.raise()
	}
	th.S.Sleep(th.cost().AtomicOpCost)
	return pr.arrived.get(i), nil
}

// Pwait completes the current epoch (MPI_Wait on a partitioned request):
// it waits on the inner request, frees it, and leaves the Prequest
// inactive, ready for the next Pstart. Mixing Pwait with a Wait-family
// call on Request() for the same epoch is erroneous.
func (th *Thread) Pwait(pr *Prequest) error {
	if pr.r == nil {
		return pr.raiseCode(ErrPartInactive)
	}
	r := pr.r
	pr.r = nil
	return th.Wait(r)
}

// handlePartData lands a PartData segment at driver level (engine
// context): the simulated NIC writes the partition range straight into the
// matching started Precv — no progress loop, no critical section, which is
// exactly the partitioned fast path's receive side. Segments that beat
// their Precv's Pstart accumulate in the shard's partitioned-unexpected
// queue. The last range of an epoch completes the inner request, waking
// waiters through the normal completion machinery.
func (p *Proc) handlePartData(pkt *fabric.Packet) {
	m := pkt.Meta.(partMeta)
	now := p.w.Eng.Now()
	sh := p.vcis[pkt.VCI]
	for i, r := range sh.pposted {
		if r.ctx != m.ctx || r.tag != m.tag {
			continue
		}
		if r.src != AnySource && r.src != m.src {
			continue
		}
		pr := r.part
		if pr.parts != m.parts || pr.bytesPer != m.bytesPer {
			// Shape mismatch: fail the receive; the epoch cannot land.
			sh.pposted = append(sh.pposted[:i], sh.pposted[i+1:]...)
			r.fail(ErrTruncate, now)
			return
		}
		if pr.arrived.overlaps(m.lo, m.hi) {
			// A concurrent same-channel epoch (two live Psends on one
			// (comm, tag, src)): this segment belongs to a later epoch.
			continue
		}
		pr.payload = pkt.Payload
		r.payload = pkt.Payload
		r.bytes = m.bytesPer * int64(m.parts)
		if _, full := pr.arrived.setRange(m.lo, m.hi); full {
			sh.pposted = append(sh.pposted[:i], sh.pposted[i+1:]...)
			r.markComplete(now)
		}
		return
	}
	// No started Precv yet: accumulate in the partitioned unexpected
	// queue, one envelope per epoch (per-flow FIFO keeps epochs ordered).
	for _, e := range sh.punexp {
		if e.ctx != m.ctx || e.src != m.src || e.tag != m.tag ||
			e.parts != m.parts || e.bytesPer != m.bytesPer ||
			e.sealed || e.arrived.overlaps(m.lo, m.hi) {
			continue
		}
		e.payload = pkt.Payload
		if _, full := e.arrived.setRange(m.lo, m.hi); full {
			e.sealed = true
		}
		return
	}
	e := &penvelope{src: m.src, tag: m.tag, ctx: m.ctx,
		parts: m.parts, bytesPer: m.bytesPer, payload: pkt.Payload}
	e.arrived.reset(m.parts)
	if _, full := e.arrived.setRange(m.lo, m.hi); full {
		e.sealed = true
	}
	sh.punexp = append(sh.punexp, e)
}
