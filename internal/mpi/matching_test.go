package mpi

import (
	"testing"
	"testing/quick"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// TestMatchingSemanticsProperty runs randomized message storms against the
// runtime and checks MPI matching invariants:
//
//  1. every send is received exactly once (bijection);
//  2. every receive's (source, tag) specification matches its message;
//  3. per (source, tag) channel, exact receives observe messages in the
//     order they were sent (non-overtaking).
func TestMatchingSemanticsProperty(t *testing.T) {
	type msg struct {
		src, tag, seq int
	}
	run := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		nSenders := 1 + rng.Intn(3)
		tags := 1 + rng.Intn(3)
		perSender := 4 + rng.Intn(8)

		w, err := NewWorld(Config{
			Topo: machine.Nehalem2x4(nSenders + 1),
			Lock: simlock.KindMutex,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := w.Comm()
		recvRank := nSenders

		// Plan sends: per sender, perSender messages with random tags,
		// carrying (src, tag, per-channel sequence number).
		seqs := map[[2]int]int{}
		plans := make([][]msg, nSenders)
		totalPerTagSrc := map[[2]int]int{}
		for s := 0; s < nSenders; s++ {
			for i := 0; i < perSender; i++ {
				tag := rng.Intn(tags)
				key := [2]int{s, tag}
				plans[s] = append(plans[s], msg{src: s, tag: tag, seq: seqs[key]})
				seqs[key]++
				totalPerTagSrc[key]++
			}
		}
		// Plan receives. Mixing wildcards with exact specs is not
		// matching-feasible in general (a wildcard can steal a channel's
		// message and deadlock the exact receive — a legal MPI program
		// error), so each run is either all-exact or all-wildcard.
		type spec struct{ src, tag int }
		var specs []spec
		exactMode := rng.Intn(2) == 0
		for key, n := range totalPerTagSrc {
			for i := 0; i < n; i++ {
				if exactMode {
					specs = append(specs, spec{src: key[0], tag: key[1]})
				} else {
					specs = append(specs, spec{src: AnySource, tag: AnyTag})
				}
			}
		}
		// Shuffle receive posting order.
		for i := len(specs) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			specs[i], specs[j] = specs[j], specs[i]
		}

		for s := 0; s < nSenders; s++ {
			s := s
			w.Spawn(s, "sender", func(th *Thread) {
				for _, m := range plans[s] {
					th.S.Sleep(int64(rng.Intn(2000)))
					th.Send(c, recvRank, m.tag, 16, m)
				}
			})
		}
		var got []struct {
			spec spec
			m    msg
		}
		w.Spawn(recvRank, "receiver", func(th *Thread) {
			var rs []*Request
			var ss []spec
			for _, sp := range specs {
				th.S.Sleep(int64(rng.Intn(500)))
				rs = append(rs, th.Irecv(c, sp.src, sp.tag))
				ss = append(ss, sp)
			}
			th.Waitall(rs)
			for i, r := range rs {
				got = append(got, struct {
					spec spec
					m    msg
				}{ss[i], r.Data().(msg)})
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}

		// Invariant 1: bijection.
		seen := map[msg]int{}
		for _, g := range got {
			seen[g.m]++
		}
		total := 0
		for s := 0; s < nSenders; s++ {
			for _, m := range plans[s] {
				if seen[m] != 1 {
					t.Logf("seed %d: message %+v received %d times", seed, m, seen[m])
					return false
				}
				total++
			}
		}
		if len(got) != total {
			return false
		}
		// Invariant 2: spec compatibility.
		for _, g := range got {
			if g.spec.src != AnySource && g.spec.src != g.m.src {
				return false
			}
			if g.spec.tag != AnyTag && g.spec.tag != g.m.tag {
				return false
			}
		}
		// Invariant 3: per-channel FIFO for exact receives. Walk receives
		// in posting order; per (src,tag) exact channel, sequence numbers
		// must increase.
		lastSeq := map[[2]int]int{}
		for _, g := range got {
			if g.spec.src == AnySource || g.spec.tag == AnyTag {
				continue
			}
			key := [2]int{g.m.src, g.m.tag}
			if prev, ok := lastSeq[key]; ok && g.m.seq < prev {
				t.Logf("seed %d: channel %v out of order: %d after %d",
					seed, key, g.m.seq, prev)
				return false
			}
			lastSeq[key] = g.m.seq
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(func(seed uint64) bool { return run(seed%1000 + 1) }, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedChannelDisjoint checks that partitioned traffic occupies
// its own matching space: a partitioned epoch on (comm, tag, src) must not
// match regular receives posted on the same channel, and regular eager and
// rendezvous sends on that channel must not match a posted Precv.
func TestPartitionedChannelDisjoint(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	const tag = 5
	const parts = 4
	big := w.Cfg.Cost.EagerThreshold * 4
	var eagerGot, rndvGot, partGot interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		// The partitioned epoch fires first: if the channels leaked, the
		// already-posted regular receives would capture the aggregate.
		ps := th.PsendInit(c, 1, tag, parts, 64, "partitioned")
		th.Pstart(ps)
		if err := th.PreadyRange(ps, 0, parts); err != nil {
			t.Errorf("PreadyRange: %v", err)
		}
		if err := th.Pwait(ps); err != nil {
			t.Errorf("Pwait: %v", err)
		}
		th.Send(c, 1, tag, 64, "eager")
		th.Send(c, 1, tag, big, "rendezvous")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		// Regular receives post before the aggregate can land...
		r1 := th.Irecv(c, 0, tag)
		r2 := th.Irecv(c, 0, tag)
		// ...and the Precv starts only after both regular sends are
		// underway: neither may capture the other's traffic.
		pr := th.PrecvInit(c, 0, tag, parts, 64)
		th.Pstart(pr)
		th.Waitall([]*Request{r1, r2})
		eagerGot, rndvGot = r1.Data(), r2.Data()
		if err := th.Pwait(pr); err != nil {
			t.Errorf("Pwait(recv): %v", err)
		}
		partGot = pr.Data()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if eagerGot != "eager" || rndvGot != "rendezvous" {
		t.Fatalf("regular channel polluted: eager=%v rendezvous=%v", eagerGot, rndvGot)
	}
	if partGot != "partitioned" {
		t.Fatalf("partitioned channel polluted: %v", partGot)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedErrorCodes pins the documented error codes on the
// partitioned usage contract: Pready/Parrived/Pwait on an inactive request
// return ErrPartInactive, and re-readying a partition returns
// ErrPartDoubleReady, both through the ErrorsReturn handler.
func TestPartitionedErrorCodes(t *testing.T) {
	w := testWorld(t, 2)
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	const parts = 3
	wantCode := func(err error, code Errcode, what string) {
		t.Helper()
		me, ok := err.(*Error)
		if !ok || me.Code != code {
			t.Errorf("%s returned %v, want %v", what, err, code)
		}
	}
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 2, parts, 64, "codes")
		wantCode(th.Pready(ps, 0), ErrPartInactive, "Pready before Pstart")
		wantCode(th.Pwait(ps), ErrPartInactive, "Pwait before Pstart")
		th.Pstart(ps)
		if err := th.Pready(ps, 0); err != nil {
			t.Errorf("first Pready: %v", err)
		}
		wantCode(th.Pready(ps, 0), ErrPartDoubleReady, "second Pready")
		wantCode(th.PreadyRange(ps, 0, parts), ErrPartDoubleReady, "overlapping PreadyRange")
		if err := th.PreadyRange(ps, 1, parts); err != nil {
			t.Errorf("completing PreadyRange: %v", err)
		}
		if err := th.Pwait(ps); err != nil {
			t.Errorf("Pwait: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 2, parts, 64)
		if _, err := th.Parrived(pr, 0); err == nil {
			t.Error("Parrived before Pstart succeeded")
		} else {
			wantCode(err, ErrPartInactive, "Parrived before Pstart")
		}
		th.Pstart(pr)
		for done := false; !done; {
			arrived, err := th.Parrived(pr, parts-1)
			if err != nil {
				t.Errorf("Parrived: %v", err)
				break
			}
			done = arrived
			th.S.Sleep(500)
		}
		if err := th.Pwait(pr); err != nil {
			t.Errorf("Pwait(recv): %v", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}
