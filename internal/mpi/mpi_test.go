package mpi

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

// testWorld builds a 2-node world with one proc per node unless overridden.
func testWorld(t *testing.T, nodes int, opts ...func(*Config)) *World {
	t.Helper()
	cfg := Config{
		Topo: machine.Nehalem2x4(nodes),
		Lock: simlock.KindTicket,
		Seed: 12345,
	}
	for _, o := range opts {
		o(&cfg)
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEagerSendRecv(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 7, 64, "hello")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		got = th.Recv(c, 0, 7)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	payload := make([]byte, 8) // token standing in for the large buffer
	var got interface{}
	var sendDone, recvDone int64
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 1, big, payload)
		sendDone = th.S.Now()
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		got = th.Recv(c, 0, 1)
		recvDone = th.S.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got.([]byte)) != 8 {
		t.Fatalf("payload lost: %v", got)
	}
	// A rendezvous of 128KB at ~3.2GB/s takes >= ~40us; both sides must
	// have waited for the wire.
	minWire := big * 1e9 / w.Cfg.Cost.NetBandwidth
	if recvDone < minWire || sendDone < minWire {
		t.Fatalf("rendezvous too fast: send %d recv %d, wire %d", sendDone, recvDone, minWire)
	}
}

func TestUnexpectedMessagePath(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	var got interface{}
	// Without a polling thread the arrival would sit in the network queue;
	// the async progress thread drains it into the unexpected queue first.
	w.SpawnAsyncProgress(1)
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 9, 32, 42)
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		th.S.Sleep(1_000_000) // 1ms: message arrives before the recv posts
		got = th.Recv(c, 0, 9)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	if w.Proc(1).UnexpectedHits != 1 {
		t.Fatalf("unexpected hits = %d, want 1", w.Proc(1).UnexpectedHits)
	}
}

func TestUnexpectedRendezvous(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 2
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 3, big, "bulk")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		th.S.Sleep(500_000)
		got = th.Recv(c, 0, 3)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "bulk" {
		t.Fatalf("got %v", got)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	var first, second interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 5, 8, "tag5")
		th.Send(c, 1, 6, 8, "tag6")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		// Post in reverse tag order: matching must respect tags.
		r6 := th.Irecv(c, 0, 6)
		r5 := th.Irecv(c, 0, 5)
		th.Wait(r6)
		th.Wait(r5)
		first, second = r6.Data(), r5.Data()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if first != "tag6" || second != "tag5" {
		t.Fatalf("mismatched: %v %v", first, second)
	}
}

func TestWildcardReceive(t *testing.T) {
	w := testWorld(t, 3)
	c := w.Comm()
	for r := 1; r < 3; r++ {
		r := r
		w.Spawn(r, "sender", func(th *Thread) {
			th.Send(c, 0, r, 8, r)
		})
	}
	sum := 0
	w.Spawn(0, "receiver", func(th *Thread) {
		for i := 0; i < 2; i++ {
			v := th.Recv(c, AnySource, AnyTag)
			sum += v.(int)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	// MPI non-overtaking: same (src,dst,tag) messages arrive in order.
	w := testWorld(t, 2)
	c := w.Comm()
	const n = 20
	w.Spawn(0, "sender", func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Send(c, 1, 0, 16, i)
		}
	})
	var got []int
	w.Spawn(1, "receiver", func(th *Thread) {
		for i := 0; i < n; i++ {
			got = append(got, th.Recv(c, 0, 0).(int))
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestWaitallWindow(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	const window = 64
	w.Spawn(0, "sender", func(th *Thread) {
		var rs []*Request
		for i := 0; i < window; i++ {
			rs = append(rs, th.Isend(c, 1, 0, 8, i))
		}
		th.Waitall(rs)
	})
	received := 0
	w.Spawn(1, "receiver", func(th *Thread) {
		var rs []*Request
		for i := 0; i < window; i++ {
			rs = append(rs, th.Irecv(c, 0, 0))
		}
		th.Waitall(rs)
		received = window
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if received != window {
		t.Fatal("waitall did not finish")
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling after waitall: %d", w.DanglingNow())
	}
	if got := w.Proc(0).Outstanding() + w.Proc(1).Outstanding(); got != 0 {
		t.Fatalf("outstanding after waitall: %d", got)
	}
}

func TestTestPolling(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	w.Spawn(0, "sender", func(th *Thread) {
		th.S.Sleep(10_000)
		th.Send(c, 1, 0, 8, "x")
	})
	polls := 0
	w.Spawn(1, "receiver", func(th *Thread) {
		r := th.Irecv(c, 0, 0)
		for !th.Test(r) {
			polls++
			th.S.Sleep(500)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if polls == 0 {
		t.Fatal("Test returned true before the message could arrive")
	}
}

func TestDanglingAccounting(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	var midCount int
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 0, 8, "x")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		r := th.Irecv(c, 0, 0)
		// Busy-wait without freeing: once complete, it must be dangling.
		for !r.Complete() {
			th.enter(simlock.Low)
			th.P.pollOnce(th)
			th.exit(simlock.Low)
			th.progressYield()
		}
		midCount = w.DanglingNow()
		th.enter(simlock.High)
		r.free()
		th.exit(simlock.High)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if midCount < 1 {
		t.Fatalf("dangling count = %d while completed request unfreed", midCount)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling at end: %d", w.DanglingNow())
	}
}

func TestMultithreadedSharedTagMatching(t *testing.T) {
	// The paper's throughput benchmark: threads share src/tag so any
	// thread's message matches any receive.
	w := testWorld(t, 2)
	c := w.Comm()
	const threads, perThread = 4, 16
	for i := 0; i < threads; i++ {
		w.Spawn(0, "sender", func(th *Thread) {
			var rs []*Request
			for k := 0; k < perThread; k++ {
				rs = append(rs, th.Isend(c, 1, 0, 8, k))
			}
			th.Waitall(rs)
		})
		w.Spawn(1, "receiver", func(th *Thread) {
			var rs []*Request
			for k := 0; k < perThread; k++ {
				rs = append(rs, th.Irecv(c, 0, 0))
			}
			th.Waitall(rs)
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling: %d", w.DanglingNow())
	}
}

func TestBarrier(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 7} {
		w := testWorld(t, nodes)
		c := w.Comm()
		var after []int64
		arrived := 0
		for r := 0; r < nodes; r++ {
			r := r
			w.Spawn(r, "p", func(th *Thread) {
				th.S.Sleep(int64(r) * 50_000) // staggered arrival
				arrived++
				th.Barrier(c)
				if arrived != nodes {
					t.Errorf("rank %d left barrier with %d/%d arrived", r, arrived, nodes)
				}
				after = append(after, th.S.Now())
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if len(after) != nodes {
			t.Fatalf("%d ranks exited", len(after))
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 4, 6, 8} {
		w := testWorld(t, nodes)
		c := w.Comm()
		want := int64(nodes * (nodes + 1) / 2)
		for r := 0; r < nodes; r++ {
			r := r
			w.Spawn(r, "p", func(th *Thread) {
				got := th.AllreduceSum(c, int64(r+1))
				if got != want {
					t.Errorf("rank %d: allreduce = %d, want %d (n=%d)", r, got, want, nodes)
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	nodes := 5
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			got := th.AllreduceMax(c, int64(r*10))
			if got != 40 {
				t.Errorf("rank %d: max = %d", r, got)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		nodes := 4
		w := testWorld(t, nodes)
		c := w.Comm()
		for r := 0; r < nodes; r++ {
			r := r
			w.Spawn(r, "p", func(th *Thread) {
				var v interface{}
				if r == root {
					v = "seed"
				}
				got := th.Bcast(c, root, 8, v)
				if got != "seed" {
					t.Errorf("rank %d: bcast got %v (root %d)", r, got, root)
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGather(t *testing.T) {
	nodes := 4
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			out := th.Gather(c, 0, 8, r*r)
			if r == 0 {
				for i, v := range out {
					if v != i*i {
						t.Errorf("gather[%d] = %v", i, v)
					}
				}
			} else if out != nil {
				t.Errorf("non-root got %v", out)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRMAPutGet(t *testing.T) {
	w := testWorld(t, 2)
	win := w.NewWin(128)
	vals := []float64{1, 2, 3, 4}
	w.SpawnAsyncProgress(1)
	w.Spawn(0, "origin", func(th *Thread) {
		pr := th.Put(win, 1, 10, vals)
		th.Flush(win, []*Request{pr})
		gr := th.Get(win, 1, 10, 4)
		th.Flush(win, []*Request{gr})
		got := gr.Data().([]float64)
		for i, v := range got {
			if v != vals[i] {
				t.Errorf("get[%d] = %v", i, v)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	buf := win.Buffer(1)
	for i, v := range vals {
		if buf[10+i] != v {
			t.Fatalf("window content wrong at %d: %v", i, buf[10+i])
		}
	}
}

func TestRMAAccumulate(t *testing.T) {
	w := testWorld(t, 2)
	win := w.NewWin(16)
	w.SpawnAsyncProgress(1)
	w.Spawn(0, "origin", func(th *Thread) {
		var rs []*Request
		for k := 0; k < 3; k++ {
			rs = append(rs, th.Accumulate(win, 1, 0, []float64{1, 10}))
		}
		th.Flush(win, rs)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	buf := win.Buffer(1)
	if buf[0] != 3 || buf[1] != 30 {
		t.Fatalf("accumulate result %v %v", buf[0], buf[1])
	}
}

func TestRMAWithoutAsyncProgressStillCompletes(t *testing.T) {
	// Target has a thread blocked in its own Wait, which drives progress
	// and services the put.
	w := testWorld(t, 2)
	c := w.Comm()
	win := w.NewWin(8)
	w.Spawn(0, "origin", func(th *Thread) {
		pr := th.Put(win, 1, 0, []float64{5})
		th.Flush(win, []*Request{pr})
		th.Send(c, 1, 0, 8, "done")
	})
	w.Spawn(1, "target", func(th *Thread) {
		th.Recv(c, 0, 0)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if win.Buffer(1)[0] != 5 {
		t.Fatalf("put not applied: %v", win.Buffer(1)[0])
	}
}

func TestIntraNodeMessaging(t *testing.T) {
	w := testWorld(t, 1, func(c *Config) { c.ProcsPerNode = 4 })
	c := w.Comm()
	if w.NumProcs() != 4 {
		t.Fatalf("procs = %d", w.NumProcs())
	}
	// Ring exchange among the 4 on-node processes.
	for r := 0; r < 4; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			got := th.Sendrecv(c, (r+1)%4, 0, 8, r, (r+3)%4, 0)
			if got != (r+3)%4 {
				t.Errorf("rank %d got %v", r, got)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() int64 {
		w := testWorld(t, 2, func(c *Config) { c.Lock = simlock.KindMutex })
		c := w.Comm()
		var finish int64
		for i := 0; i < 4; i++ {
			w.Spawn(0, "s", func(th *Thread) {
				var rs []*Request
				for k := 0; k < 32; k++ {
					rs = append(rs, th.Isend(c, 1, 0, 8, k))
				}
				th.Waitall(rs)
			})
			w.Spawn(1, "r", func(th *Thread) {
				var rs []*Request
				for k := 0; k < 32; k++ {
					rs = append(rs, th.Irecv(c, 0, 0))
				}
				th.Waitall(rs)
				if th.S.Now() > finish {
					finish = th.S.Now()
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestAllLockKindsDriveRuntime(t *testing.T) {
	kinds := []simlock.Kind{simlock.KindMutex, simlock.KindTicket,
		simlock.KindPriority, simlock.KindMCS, simlock.KindPrioMutex}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			w := testWorld(t, 2, func(c *Config) { c.Lock = k })
			c := w.Comm()
			for i := 0; i < 4; i++ {
				w.Spawn(0, "s", func(th *Thread) {
					var rs []*Request
					for j := 0; j < 16; j++ {
						rs = append(rs, th.Isend(c, 1, 0, 8, j))
					}
					th.Waitall(rs)
				})
				w.Spawn(1, "r", func(th *Thread) {
					var rs []*Request
					for j := 0; j < 16; j++ {
						rs = append(rs, th.Irecv(c, 0, 0))
					}
					th.Waitall(rs)
				})
			}
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			if w.DanglingNow() != 0 {
				t.Fatalf("dangling: %d", w.DanglingNow())
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := NewWorld(Config{Topo: machine.Topology{}})
	if err == nil {
		t.Fatal("invalid topology accepted")
	}
	_, err = NewWorld(Config{Topo: machine.Nehalem2x4(1), ProcsPerNode: 100})
	if err == nil {
		t.Fatal("oversubscribed procs accepted")
	}
}

func TestOnGrantHookReceivesTraffic(t *testing.T) {
	grants := map[int]int{}
	w := testWorld(t, 2, func(c *Config) {
		c.OnGrant = func(rank int) simlock.GrantFunc {
			return func(simlock.GrantInfo) { grants[rank]++ }
		}
	})
	c := w.Comm()
	w.Spawn(0, "s", func(th *Thread) { th.Send(c, 1, 0, 8, nil) })
	w.Spawn(1, "r", func(th *Thread) { th.Recv(c, 0, 0) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if grants[0] == 0 || grants[1] == 0 {
		t.Fatalf("grant hooks silent: %v", grants)
	}
}

func TestIprobeAndProbe(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	w.Spawn(0, "s", func(th *Thread) {
		th.S.Sleep(5000)
		th.Send(c, 1, 7, 48, "probed")
	})
	w.Spawn(1, "r", func(th *Thread) {
		if _, ok := th.Iprobe(c, 0, 7); ok {
			t.Error("Iprobe true before send")
		}
		st := th.Probe(c, 0, 7)
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 48 {
			t.Errorf("status = %+v", st)
		}
		// The message must still be receivable after probing.
		if got := th.Recv(c, 0, 7); got != "probed" {
			t.Errorf("got %v", got)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitany(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	w.Spawn(0, "s", func(th *Thread) {
		th.S.Sleep(2000)
		th.Send(c, 1, 5, 8, "fast") // only tag 5 is ever sent
	})
	w.Spawn(1, "r", func(th *Thread) {
		slow := th.Irecv(c, 0, 9)
		fast := th.Irecv(c, 0, 5)
		idx := th.Waitany([]*Request{slow, fast})
		if idx != 1 {
			t.Errorf("Waitany picked %d", idx)
		}
		if fast.Data() != "fast" {
			t.Errorf("payload %v", fast.Data())
		}
		th.CancelRecv(slow)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitsome(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	w.Spawn(0, "s", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Send(c, 1, i, 8, i)
		}
	})
	w.Spawn(1, "r", func(th *Thread) {
		rs := []*Request{th.Irecv(c, 0, 0), th.Irecv(c, 0, 1), th.Irecv(c, 0, 2)}
		got := map[int]bool{}
		for len(got) < 3 {
			for _, i := range th.Waitsome(rs) {
				got[i] = true
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling: %d", w.DanglingNow())
	}
}

func TestAllgather(t *testing.T) {
	nodes := 5
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			vals := th.AllgatherInt64(c, int64(r*r))
			for i, v := range vals {
				if v != int64(i*i) {
					t.Errorf("rank %d: allgather[%d] = %d", r, i, v)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	nodes := 4
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			send := make([]interface{}, nodes)
			for i := range send {
				send[i] = r*100 + i // value destined for rank i
			}
			got := th.Alltoall(c, 8, send)
			for i, v := range got {
				if v != i*100+r {
					t.Errorf("rank %d: alltoall[%d] = %v, want %d", r, i, v, i*100+r)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	nodes := 4
	w := testWorld(t, nodes)
	c := w.Comm()
	for r := 0; r < nodes; r++ {
		r := r
		w.Spawn(r, "p", func(th *Thread) {
			got := th.ReduceSum(c, 2, int64(r+1))
			if r == 2 && got != 10 {
				t.Errorf("root got %d", got)
			}
			if r != 2 && got != 0 {
				t.Errorf("non-root got %d", got)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
