package mpi

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func granWorld(t *testing.T, g Granularity, k simlock.Kind) *World {
	t.Helper()
	w, err := NewWorld(Config{
		Topo:        machine.Nehalem2x4(2),
		Lock:        k,
		Granularity: g,
		Seed:        777,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

var allGrans = []Granularity{GranGlobal, GranBrief, GranFine, GranLockFree}

// TestGranularityCorrectness runs the windowed exchange under every
// granularity x a few arbitrations and checks full completion.
func TestGranularityCorrectness(t *testing.T) {
	for _, g := range allGrans {
		for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
			g, k := g, k
			t.Run(g.String()+"/"+k.String(), func(t *testing.T) {
				w := granWorld(t, g, k)
				c := w.Comm()
				for i := 0; i < 4; i++ {
					w.Spawn(0, "s", func(th *Thread) {
						var rs []*Request
						for j := 0; j < 24; j++ {
							rs = append(rs, th.Isend(c, 1, 0, 8, j))
						}
						th.Waitall(rs)
					})
					w.Spawn(1, "r", func(th *Thread) {
						var rs []*Request
						for j := 0; j < 24; j++ {
							rs = append(rs, th.Irecv(c, 0, 0))
						}
						th.Waitall(rs)
					})
				}
				if err := w.Run(); err != nil {
					t.Fatal(err)
				}
				if w.DanglingNow() != 0 {
					t.Fatalf("dangling: %d", w.DanglingNow())
				}
			})
		}
	}
}

// TestGranularityPayloadDelivery checks data still arrives intact under
// fine and lock-free modes.
func TestGranularityPayloadDelivery(t *testing.T) {
	for _, g := range []Granularity{GranFine, GranLockFree} {
		w := granWorld(t, g, simlock.KindTicket)
		c := w.Comm()
		var got []interface{}
		w.Spawn(0, "s", func(th *Thread) {
			for i := 0; i < 8; i++ {
				th.Send(c, 1, i, 16, i*i)
			}
		})
		w.Spawn(1, "r", func(th *Thread) {
			for i := 0; i < 8; i++ {
				got = append(got, th.Recv(c, 0, i))
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("%v: got[%d] = %v", g, i, v)
			}
		}
	}
}

// TestGranularityRendezvous exercises the large-message path under every
// granularity.
func TestGranularityRendezvous(t *testing.T) {
	for _, g := range allGrans {
		w := granWorld(t, g, simlock.KindTicket)
		c := w.Comm()
		big := w.Cfg.Cost.EagerThreshold * 2
		var ok bool
		w.Spawn(0, "s", func(th *Thread) { th.Send(c, 1, 0, big, "bulk") })
		w.Spawn(1, "r", func(th *Thread) { ok = th.Recv(c, 0, 0) == "bulk" })
		if err := w.Run(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !ok {
			t.Fatalf("%v: payload lost", g)
		}
	}
}

// TestGranularityRMA exercises one-sided ops with async progress under
// fine granularity.
func TestGranularityRMA(t *testing.T) {
	for _, g := range allGrans {
		w := granWorld(t, g, simlock.KindMutex)
		win := w.NewWin(8)
		w.SpawnAsyncProgress(1)
		w.Spawn(0, "o", func(th *Thread) {
			r := th.Put(win, 1, 0, []float64{3.5})
			th.Flush(win, []*Request{r})
		})
		if err := w.Run(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if win.Buffer(1)[0] != 3.5 {
			t.Fatalf("%v: put lost", g)
		}
	}
}

// TestGranularityThroughputOrdering: coarser critical sections serialize
// more; with 8 threads the finish time should not get worse as granularity
// shrinks from Global to LockFree.
func TestGranularityThroughputOrdering(t *testing.T) {
	finish := map[Granularity]int64{}
	for _, g := range allGrans {
		w := granWorld(t, g, simlock.KindTicket)
		c := w.Comm()
		for i := 0; i < 8; i++ {
			w.Spawn(0, "s", func(th *Thread) {
				var rs []*Request
				for j := 0; j < 32; j++ {
					th.S.Sleep(300)
					rs = append(rs, th.Isend(c, 1, 0, 8, nil))
				}
				th.Waitall(rs)
			})
			w.Spawn(1, "r", func(th *Thread) {
				var rs []*Request
				for j := 0; j < 32; j++ {
					th.S.Sleep(300)
					rs = append(rs, th.Irecv(c, 0, 0))
				}
				th.Waitall(rs)
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		finish[g] = w.Eng.Now()
	}
	t.Logf("finish times: global=%d brief=%d fine=%d lockfree=%d",
		finish[GranGlobal], finish[GranBrief], finish[GranFine], finish[GranLockFree])
	if finish[GranLockFree] >= finish[GranGlobal] {
		t.Errorf("lock-free (%d) should beat global (%d)",
			finish[GranLockFree], finish[GranGlobal])
	}
	if finish[GranFine] >= finish[GranGlobal] {
		t.Errorf("fine-grained (%d) should beat global (%d)",
			finish[GranFine], finish[GranGlobal])
	}
}

func TestGranularityStrings(t *testing.T) {
	want := map[Granularity]string{
		GranGlobal: "Global", GranBrief: "BriefGlobal",
		GranFine: "FineGrain", GranLockFree: "LockFree",
	}
	for g, s := range want {
		if g.String() != s {
			t.Fatalf("%d.String() = %q", g, g.String())
		}
	}
}
