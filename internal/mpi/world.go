// Package mpi implements a simulated MPICH-like runtime with
// MPI_THREAD_MULTIPLE support: per-process global critical sections with
// pluggable arbitration (mutex / ticket / priority, per the paper),
// nonblocking two-sided communication with posted/unexpected queues and tag
// matching, eager and rendezvous protocols over the fabric model, one-sided
// RMA windows with an optional asynchronous progress thread, and small
// collectives built on point-to-point.
//
// The runtime reproduces the critical-section structure of the paper's
// Fig. 6a: every call enters the global CS on its main path (high priority)
// and blocking calls then iterate the progress loop, releasing and
// re-acquiring the CS (low priority) around each poll — the yield window in
// which lock arbitration decides who advances.
//
// Three progress modes share that machinery (docs/PROGRESS.md). The
// default, polling, is the paper's shape above. Strong progress moves the
// progress loop onto a dedicated daemon simthread per VCI shard so blocked
// application threads park instead of polling; continuation mode adds
// completion-time callbacks (Request.OnComplete) and CompletionQueue
// draining on top, removing the per-request wait loop entirely.
//
// mpi is part of the deterministic core (docs/ARCHITECTURE.md); the
// lockpair analyzer enforces its critical-section discipline.
package mpi

import (
	"fmt"
	"time"

	"mpicontend/internal/fabric"
	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// Wildcards for receive matching.
const (
	// AnySource matches messages from every rank.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// collCtx is the communication context reserved for internal collectives,
// disjoint from every user communicator context (which are >= 0).
const collCtx = -2

// Config describes a simulated MPI world.
type Config struct {
	// Topo is the cluster shape. Required.
	Topo machine.Topology
	// Cost is the timing model; zero value means machine.Default().
	Cost machine.CostModel
	// Lock selects the critical-section arbitration (the paper's subject).
	Lock simlock.Kind
	// ThreadLevel is the requested MPI thread-support level (§2.1).
	// Levels below MPI_THREAD_MULTIPLE take no locks at all — the
	// runtime instead verifies the usage contract and panics on
	// violations.
	ThreadLevel ThreadLevel
	// Granularity selects the critical-section granularity (Fig. 1);
	// default GranGlobal, the paper's baseline.
	Granularity Granularity
	// Binding places process threads on cores (compact/scatter).
	Binding machine.Binding
	// ProcsPerNode defaults to 1.
	ProcsPerNode int
	// Seed drives all randomness (CAS jitter etc.).
	Seed uint64
	// OnGrant optionally returns a grant observer for the given rank's
	// critical-section lock (used by the §4.3/§4.4 analyses).
	OnGrant func(rank int) simlock.GrantFunc
	// MaxEvents aborts the simulation with an error after this many
	// events — a guard that turns protocol deadlocks (which would spin
	// in virtual time forever) into diagnosable failures. Zero selects a
	// generous default.
	MaxEvents uint64
	// SelectiveWakeup enables the paper's §9 future-work design: threads
	// blocked in the progress loop park after an empty poll and are woken
	// by events (message arrival, request completion) instead of
	// busy-spinning through the critical section. This removes the wasted
	// lock acquisitions that the mutex otherwise monopolizes.
	SelectiveWakeup bool
	// Fault configures the deterministic fault-injection plane. The zero
	// value is a perfect network and the runtime behaves exactly as
	// before (no sequence numbers, no ACK traffic, no timers). Any
	// enabled fault switches the runtime to its reliable transport.
	Fault fault.Config
	// MaxWall bounds the run's real (wall-clock) time in nanoseconds of
	// wall time (see sim.Engine.MaxWall); zero means no limit. Chaos
	// soaks set it so a runaway scenario cannot hang CI.
	MaxWall int64
	// OnFaultEvent, when set, observes resilience events ("retransmit",
	// "giveup", "preempt") at their virtual time on the given rank —
	// used to pin marks onto lock-ownership timelines.
	OnFaultEvent func(event string, at int64, rank int)
	// VCIs is the number of virtual communication interfaces per process:
	// independent runtime shards (matching queues, completion queue,
	// request pool, transport flows), each with its own critical-section
	// lock of the configured Kind. 0 or 1 selects the unsharded runtime,
	// byte-identical to the pre-VCI code path. More than one VCI requires
	// GranGlobal (sub-CS granularities and sharding answer the same
	// question at different layers and do not compose).
	VCIs int
	// VCIPolicy selects how operations map onto VCIs (per-comm,
	// per-tag-hash, explicit hint); see internal/mpi/vci.
	VCIPolicy vci.Policy
	// Progress selects who drives the progress engine (progressd.go):
	// ProgressPolling (default, the paper's poll-from-Wait shape,
	// byte-identical to the pre-existing code paths), ProgressStrong
	// (a dedicated progress daemon per VCI shard; blocked threads park),
	// or ProgressContinuation (strong progress plus OnComplete callbacks
	// and CompletionQueue draining). Non-polling modes require
	// MPI_THREAD_MULTIPLE and GranGlobal.
	Progress ProgressMode
	// Tel, when non-nil, attaches the telemetry plane: MPI-call spans,
	// lock wait/hold spans per priority class, progress-poll spans,
	// request-lifecycle gauges, and fabric flight spans all record
	// against the sim clock. Telemetry is purely observational — it never
	// schedules events or advances time — so enabling it cannot change
	// simulation results.
	Tel *telemetry.Recorder
}

// World is a running simulated cluster with an MPI runtime on each process.
type World struct {
	Cfg   Config
	Eng   *sim.Engine
	Fab   *fabric.Fabric
	Procs []*Proc

	tel *telemetry.Recorder // nil when telemetry is disabled

	wins        []*Win
	danglingNow int
	appThreads  int  // live non-daemon threads; world stops at zero
	nextCtx     int  // user context ids handed out by Dup/Split
	progressd   bool // progress daemons started (strong/continuation modes)

	// Fault/resilience plane (nil and zero on a perfect network).
	plane      *fault.Plane
	errhandler Errhandler
	stallErr   error // set by the progress watchdog
	// ft is the fault-tolerance plane (nil without a crash schedule).
	ft *ftWorld

	// Activity counters the watchdog samples.
	deliveredTotal   int64
	completedTotal   int64
	retransmitsTotal int64
	requestFailures  int64
	watchdogStalls   int64

	// partStats are the partitioned-communication counters
	// (partitioned.go); surfaced through World.PartStats.
	partStats PartStats

	// reqFree pools request objects released by Wait/Waitall (see
	// Request.poolable for the safety conditions).
	reqFree *Request
}

// allocRequest returns a zeroed request, reusing a pooled object when one
// is available.
func (w *World) allocRequest() *Request {
	if r := w.reqFree; r != nil {
		w.reqFree = r.nextFree
		*r = Request{}
		return r
	}
	return new(Request)
}

// recycleRequest returns a provably-dead request to the pool.
func (w *World) recycleRequest(r *Request) {
	r.nextFree = w.reqFree
	w.reqFree = r
}

// NewWorld builds the world: engine, fabric, and one Proc per rank with its
// own global critical-section lock.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 1
	}
	zero := machine.CostModel{}
	if cfg.Cost == zero {
		cfg.Cost = machine.Default()
	}
	if cfg.ProcsPerNode > cfg.Topo.CoresPerNode() {
		return nil, fmt.Errorf("mpi: %d processes per node exceed %d cores",
			cfg.ProcsPerNode, cfg.Topo.CoresPerNode())
	}
	if err := (vci.Config{N: cfg.VCIs, Policy: cfg.VCIPolicy}).Validate(); err != nil {
		return nil, err
	}
	if cfg.VCIs < 1 {
		cfg.VCIs = 1
	}
	if cfg.VCIs > 1 {
		if cfg.Granularity != GranGlobal {
			return nil, fmt.Errorf("mpi: %d VCIs require GranGlobal, got %v "+
				"(sub-CS granularity and VCI sharding do not compose)",
				cfg.VCIs, cfg.Granularity)
		}
		if cfg.ThreadLevel.lockless() {
			return nil, fmt.Errorf("mpi: %d VCIs require MPI_THREAD_MULTIPLE "+
				"(sharding a lockless runtime is meaningless)", cfg.VCIs)
		}
	}
	if cfg.Progress != ProgressPolling {
		if cfg.Granularity != GranGlobal {
			return nil, fmt.Errorf("mpi: %v progress requires GranGlobal, got %v "+
				"(the daemons drive whole-shard critical sections)",
				cfg.Progress, cfg.Granularity)
		}
		if cfg.ThreadLevel.lockless() {
			return nil, fmt.Errorf("mpi: %v progress requires MPI_THREAD_MULTIPLE "+
				"(progress daemons share runtime state with application threads)",
				cfg.Progress)
		}
	}
	if cfg.ThreadLevel.lockless() {
		// Below MPI_THREAD_MULTIPLE the runtime is not thread safe and
		// takes no locks (that is the point of the levels, §2.1).
		cfg.Lock = simlock.KindNone
	}
	w := &World{
		Cfg: cfg,
		Eng: sim.NewEngine(cfg.Seed),
		tel: cfg.Tel,
	}
	if w.tel != nil {
		w.Eng.OnThreadState = func(t *sim.Thread, s sim.ThreadState) {
			w.tel.ThreadState(t.ID(), w.Eng.Now(), s.String())
		}
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 500_000_000
	}
	w.Eng.MaxEvents = cfg.MaxEvents
	if cfg.MaxWall > 0 {
		w.Eng.MaxWall = time.Duration(cfg.MaxWall)
	}
	w.Fab = fabric.New(w.Eng, cfg.Cost)
	w.Fab.Tel = cfg.Tel
	w.plane = fault.New(cfg.Fault, cfg.Seed)
	w.Fab.InjectFaults(w.plane)
	n := cfg.Topo.Nodes * cfg.ProcsPerNode
	coresPerProc := cfg.Topo.CoresPerNode() / cfg.ProcsPerNode
	for rank := 0; rank < n; rank++ {
		node := rank / cfg.ProcsPerNode
		p := &Proc{
			w:         w,
			Rank:      rank,
			Node:      node,
			firstCore: (rank % cfg.ProcsPerNode) * coresPerProc,
			coreCount: coresPerProc,
		}
		lcfg := &simlock.Config{Eng: w.Eng, Cost: cfg.Cost}
		if cfg.OnGrant != nil {
			lcfg.OnGrant = cfg.OnGrant(rank)
		}
		if cfg.VCIs == 1 {
			sh := &vciShard{idx: 0}
			sh.cs = csLock{lock: simlock.New(cfg.Lock, lcfg), lines: cfg.Cost.CSStateLines}
			sh.cs.instrument(w.tel, fmt.Sprintf("cs[r%d]", rank))
			p.vcis = []*vciShard{sh}
		} else {
			for v := 0; v < cfg.VCIs; v++ {
				sh := &vciShard{idx: v}
				sh.cs = csLock{lock: simlock.New(cfg.Lock, lcfg), lines: cfg.Cost.CSStateLines}
				sh.cs.instrument(w.tel, fmt.Sprintf("cs[r%d.v%d]", rank, v))
				p.vcis = append(p.vcis, sh)
			}
			// The shared-NIC injection point: the one arbitration site the
			// sharding cannot remove (all VCIs funnel into one physical NIC).
			p.nicVCI = csLock{lock: simlock.New(cfg.Lock, lcfg), lines: cfg.Cost.CSStateLines / 2}
			p.nicVCI.instrument(w.tel, fmt.Sprintf("nic[r%d]", rank))
		}
		if cfg.Granularity == GranFine {
			sub := &simlock.Config{Eng: w.Eng, Cost: cfg.Cost}
			p.queueCS = csLock{lock: simlock.New(cfg.Lock, sub), lines: cfg.Cost.CSStateLines / 2}
			p.queueCS.instrument(w.tel, fmt.Sprintf("queue[r%d]", rank))
			p.nicCS = csLock{lock: simlock.New(cfg.Lock, sub), lines: cfg.Cost.CSStateLines / 2}
			p.nicCS.instrument(w.tel, fmt.Sprintf("nic[r%d]", rank))
		}
		p.ep = w.Fab.Attach(rank, node, p.onPacket)
		if w.plane != nil {
			p.rel = newRelState(p, w.plane)
		}
		w.Procs = append(w.Procs, p)
	}
	if w.plane != nil {
		if iv := w.plane.Config().WatchdogNs; iv > 0 {
			w.startWatchdog(iv)
		}
		if cfg.Fault.CrashesEnabled() {
			w.setupFT()
		}
	}
	return w, nil
}

// NumProcs returns the number of ranks.
func (w *World) NumProcs() int { return len(w.Procs) }

// Proc returns the process with the given rank.
func (w *World) Proc(rank int) *Proc { return w.Procs[rank] }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return &Comm{w: w, ctx: 0, size: len(w.Procs)} }

// Dangling/outstanding accounting uses world ranks throughout; Comm only
// translates at the API boundary.

// DanglingNow returns the current number of completed-but-not-freed
// requests across the world (the paper's §4.4 metric source).
func (w *World) DanglingNow() int { return w.danglingNow }

// Run executes the simulation until all non-daemon threads finish. A
// progress-watchdog stall takes precedence over the engine's own result,
// since the watchdog stops the engine cleanly to attach its report. Under
// strong/continuation progress the per-shard daemons spawn here, after
// the application threads, so app-thread core placement is unchanged
// across modes.
func (w *World) Run() error {
	w.startProgressDaemons()
	err := w.Eng.Run()
	if w.stallErr != nil {
		return w.stallErr
	}
	return err
}

// FaultPlane returns the active fault plane (nil on a perfect network).
func (w *World) FaultPlane() *fault.Plane { return w.plane }

// faultEvent forwards a resilience event to the configured observer.
func (w *World) faultEvent(event string, rank int) {
	if w.Cfg.OnFaultEvent != nil {
		w.Cfg.OnFaultEvent(event, w.Eng.Now(), rank)
	}
}

// Comm is a communicator: a matching context over a group of processes.
// The world communicator has a nil ranks slice (identity mapping); Dup and
// Split create communicators with explicit groups.
type Comm struct {
	w    *World
	ctx  int
	size int
	// ranks maps comm-local rank -> world rank; nil means identity.
	ranks []int
	// errhandler overrides the world's when not ErrhandlerInherit (the
	// zero value), so new communicators inherit by default.
	errhandler Errhandler
	// vcihint is the explicit VCI assignment plus one (0 = unset); see
	// SetVCI/vciHint.
	vcihint int
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Ctx returns the matching context id (exported for tests).
func (c *Comm) Ctx() int { return c.ctx }

// Proc is one MPI process: a rank with its own runtime state and global
// critical section.
type Proc struct {
	w         *World
	Rank      int
	Node      int
	firstCore int
	coreCount int

	// vcis are the proc's virtual communication interfaces (always >= 1).
	// Shard 0 of a single-VCI world carries the global critical section
	// (Fig. 6a) plus all queues, exactly the pre-VCI layout.
	vcis    []*vciShard
	nicVCI  csLock // shared-NIC injection lock (multi-VCI mode only)
	queueCS csLock // matching-queue lock (GranFine)
	nicCS   csLock // completion-queue lock (GranFine)
	ep      *fabric.Endpoint
	rel     *relState // reliable transport; nil on a perfect network

	// Fault-tolerance plane (ft.go); all zero without a crash schedule.
	ft          *ftProc
	crashed     bool  // fail-stopped: threads unwind at the next checkpoint
	lockCrashAt int64 // > 0: crash at the first CS acquisition at/after this time
	liveApp     int   // live application threads (for crash accounting)

	activity    sim.WaitQueue // parked background pollers
	nthreads    int
	outstanding int // active requests (incl. RMA ops) not yet freed
	danglingNow int // completed-but-not-freed requests of this proc
	// completeSeq counts request completions on this proc; event-driven
	// waiters snapshot it before parking so a completion between their
	// checked state section and the park is never lost (progressd.go).
	completeSeq int64

	// Thread-level contract tracking (ThreadSingle/Funneled/Serialized).
	mainThread *Thread
	inCall     *Thread

	// Stats
	UnexpectedHits int64 // receives satisfied from the unexpected queue
	PostedHits     int64 // arrivals matched against posted receives
	Polls          int64
}

// Lock exposes the process's global critical-section lock (for
// instrumentation). In a sharded world this is VCI 0's lock.
func (p *Proc) Lock() simlock.Lock { return p.vcis[0].cs.lock }

// Cost returns the world's timing model.
func (p *Proc) Cost() machine.CostModel { return p.w.Cfg.Cost }

// Rand returns the world's deterministic random stream (for jittered
// application-side delays).
func (p *Proc) Rand() *sim.Rand { return p.w.Eng.Rand() }

// Outstanding returns the number of live (not yet freed) requests.
func (p *Proc) Outstanding() int { return p.outstanding }

// DanglingNow returns this process's completed-but-not-freed request count.
func (p *Proc) DanglingNow() int { return p.danglingNow }

// onPacket is the fabric delivery handler (engine context). Under the
// reliable transport, control traffic (ACK/NACK), duplicates and
// out-of-order arrivals are consumed here at "driver" level; the protocol
// layer only ever sees each packet once, in per-flow FIFO order.
func (p *Proc) onPacket(pkt *fabric.Packet) {
	if p.ft != nil {
		// Any arrival is proof of life; heartbeats exist only to bound
		// the silence and are consumed here at driver level.
		p.ft.lastHeard[pkt.Src] = p.w.Eng.Now()
		if pkt.Kind == fabric.Heartbeat {
			return
		}
	}
	if p.rel != nil {
		released := p.rel.admit(pkt)
		if len(released) == 0 {
			return
		}
		// Each released packet routes to its own shard's completion queue
		// (a retransmit flush can release packets of several flows).
		for _, rp := range released {
			if rp.Kind == fabric.PartData {
				// Partitioned arrivals are consumed at driver level — the
				// NIC writes partition data into the pre-posted buffer, no
				// progress loop involved — so the ACK is issued here too.
				p.handlePartData(rp)
				p.rel.ackDelivered(rp)
				continue
			}
			if len(p.vcis) > 1 && rp.Kind == fabric.Revoke {
				// Sharded runtime: revocations are consumed at driver
				// level, like heartbeats — the threads a Revoke must
				// unblock may only ever poll other shards, so it cannot
				// wait in one shard's completion queue.
				p.consumeRevoke(rp)
				continue
			}
			p.vcis[rp.VCI].cq = append(p.vcis[rp.VCI].cq, rp)
		}
		p.w.deliveredTotal += int64(len(released))
		p.activity.WakeAll(p.w.Eng.Now())
		return
	}
	if pkt.Kind == fabric.PartData {
		// Fault-free partitioned arrival: same driver-level consumption as
		// the reliable branch above, minus the transport bookkeeping.
		p.handlePartData(pkt)
		p.w.deliveredTotal++
		p.activity.WakeAll(p.w.Eng.Now())
		return
	}
	p.vcis[pkt.VCI].cq = append(p.vcis[pkt.VCI].cq, pkt)
	p.w.deliveredTotal++
	p.activity.WakeAll(p.w.Eng.Now())
}

// Thread is an application thread bound to a core of its process; all MPI
// calls are methods on it.
type Thread struct {
	S *sim.Thread
	P *Proc

	lctx simlock.Ctx
	// holdUseful marks the current critical-section hold as having
	// advanced the progress engine (handled a completion event) — the
	// telemetry plane's Fig. 6a useful/wasted split. Set by handlePacket,
	// consumed by csLock.exit.
	holdUseful bool
	// pollBackoff tracks consecutive empty polls for adaptive spinning.
	pollBackoff int
	// noBackoff pins the progress loop at full spinning speed (async
	// progress threads never slow down, per MPICH behaviour).
	noBackoff bool
	// errPath marks the thread as executing recovery code; lock
	// acquisitions made while set are counted as error-path traffic
	// (only ever set when the fault-tolerance plane is armed).
	errPath bool
	// cq is the thread's internal completion queue, lazily created by the
	// continuation-mode Waitall (empty between calls).
	cq *CompletionQueue
}

// Place returns the core this thread is bound to.
func (th *Thread) Place() machine.Place { return th.lctx.Place }

// Spawn creates an application thread on the given rank. Threads are bound
// to cores in spawn order according to the world's binding policy. When the
// last application thread returns, the simulation stops (daemon pollers
// would otherwise spin forever).
func (w *World) Spawn(rank int, name string, fn func(th *Thread)) *Thread {
	w.appThreads++
	w.Procs[rank].liveApp++
	return w.spawn(rank, name, func(th *Thread) {
		fn(th)
		if th.P.crashed {
			// killRank already retired this process's threads from the
			// accounting; a zombie that slept through its own crash (and so
			// never hit a runtime checkpoint) must not double-decrement.
			return
		}
		w.appThreads--
		th.P.liveApp--
		if w.appThreads == 0 {
			w.Eng.Stop()
		}
	})
}

func (w *World) spawn(rank int, name string, fn func(th *Thread)) *Thread {
	p := w.Procs[rank]
	idx := p.nthreads
	p.nthreads++
	place := w.Cfg.Topo.Bind(w.Cfg.Binding, p.Node, p.firstCore, p.coreCount, idx)
	var th *Thread
	st := w.Eng.Spawn(fmt.Sprintf("%s[r%d.t%d]", name, rank, idx), func(s *sim.Thread) {
		defer func() {
			// A fail-stopped process's threads unwind via rankCrashed
			// (ft.go) and simply stop — killRank already retired them
			// from the appThreads accounting. Anything else propagates.
			if r := recover(); r != nil {
				if _, ok := r.(rankCrashed); !ok {
					panic(r)
				}
			}
		}()
		fn(th)
	})
	th = &Thread{S: st, P: p, lctx: simlock.Ctx{T: st, Place: place}}
	st.Data = th
	w.tel.RegisterThread(st.ID(), st.Name())
	return th
}

// SpawnAsyncProgress starts the MPICH-style asynchronous progress thread on
// the given rank: a daemon blocked "forever" in the progress loop at low
// priority, exactly like a progress thread waiting on a never-completing
// request. It polls continuously — including when there is nothing to do,
// which is when it wastes lock acquisitions and monopolizes a mutex-guarded
// runtime (paper §6.1.2). The paper's Fig. 9 experiments enable this on
// every process.
func (w *World) SpawnAsyncProgress(rank int) *Thread {
	th := w.spawn(rank, "async-progress", func(th *Thread) {
		th.S.SetDaemon()
		th.noBackoff = true
		if th.P.numVCI() > 1 {
			// One async thread drives every shard's progress engine in
			// turn, taking each shard lock independently.
			for {
				for v := range th.P.vcis {
					th.progressRoundVCI(v, simlock.Low, nil)
				}
				th.progressYield()
			}
		}
		for {
			th.progressRound(simlock.Low, nil)
			th.progressYield()
		}
	})
	return th
}

// enter acquires the process's global critical section, charging the
// runtime-state cache-line migration on ownership changes. Used directly
// by tests; regular call paths go through mainBegin/stateBegin/
// progressRound, which honour the configured granularity.
//
//simcheck:allow lockpair test-only wrapper; tests pair enter/exit themselves
func (th *Thread) enter(cl simlock.Class) { th.P.vcis[0].cs.enter(th, cl) }

// exit releases the process's global critical section.
//
//simcheck:allow lockpair test-only wrapper; tests pair enter/exit themselves
func (th *Thread) exit(cl simlock.Class) { th.P.vcis[0].cs.exit(th, cl) }

func (th *Thread) cost() machine.CostModel { return th.P.w.Cfg.Cost }

// telStart opens an MPI-call telemetry span, returning its start time, or
// -1 when telemetry is disabled (the only cost on the fast path).
func (th *Thread) telStart() int64 {
	if th.P.w.tel == nil {
		return -1
	}
	return th.S.Now()
}

// telCall closes a call span opened by telStart.
func (th *Thread) telCall(name string, from int64) {
	if from < 0 {
		return
	}
	th.P.w.tel.Call(th.S.ID(), name, from, th.S.Now())
}
