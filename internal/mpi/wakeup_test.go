package mpi

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func wakeupWorld(t *testing.T, k simlock.Kind, wake bool) *World {
	t.Helper()
	w, err := NewWorld(Config{
		Topo:            machine.Nehalem2x4(2),
		Lock:            k,
		Seed:            555,
		SelectiveWakeup: wake,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSelectiveWakeupCorrectness: the event-driven mode must complete the
// same exchanges as busy polling, for every lock.
func TestSelectiveWakeupCorrectness(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			w := wakeupWorld(t, k, true)
			c := w.Comm()
			for i := 0; i < 4; i++ {
				w.Spawn(0, "s", func(th *Thread) {
					var rs []*Request
					for j := 0; j < 32; j++ {
						rs = append(rs, th.Isend(c, 1, 0, 8, j))
					}
					th.Waitall(rs)
				})
				w.Spawn(1, "r", func(th *Thread) {
					var rs []*Request
					for j := 0; j < 32; j++ {
						rs = append(rs, th.Irecv(c, 0, 0))
					}
					th.Waitall(rs)
				})
			}
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			if w.DanglingNow() != 0 {
				t.Fatalf("dangling: %d", w.DanglingNow())
			}
		})
	}
}

// TestSelectiveWakeupRendezvous exercises the large-message protocol with
// parked waiters (the CTS/RData chain must wake them).
func TestSelectiveWakeupRendezvous(t *testing.T) {
	w := wakeupWorld(t, simlock.KindMutex, true)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 3
	var got interface{}
	w.Spawn(0, "s", func(th *Thread) { th.Send(c, 1, 0, big, "bulk") })
	w.Spawn(1, "r", func(th *Thread) { got = th.Recv(c, 0, 0) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "bulk" {
		t.Fatalf("got %v", got)
	}
}

// TestSelectiveWakeupReducesPolls: event-driven progress must issue far
// fewer empty polls than busy spinning in a latency-bound exchange.
func TestSelectiveWakeupReducesPolls(t *testing.T) {
	polls := func(wake bool) int64 {
		w := wakeupWorld(t, simlock.KindTicket, wake)
		c := w.Comm()
		w.Spawn(0, "ping", func(th *Thread) {
			for i := 0; i < 20; i++ {
				th.Send(c, 1, 0, 8, nil)
				th.Recv(c, 1, 1)
			}
		})
		w.Spawn(1, "pong", func(th *Thread) {
			for i := 0; i < 20; i++ {
				th.Recv(c, 0, 0)
				th.Send(c, 0, 1, 8, nil)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w.Proc(0).Polls + w.Proc(1).Polls
	}
	busy, evt := polls(false), polls(true)
	t.Logf("polls: busy=%d event-driven=%d", busy, evt)
	if evt >= busy {
		t.Errorf("selective wakeup should cut polls: %d vs %d", evt, busy)
	}
}

// TestSelectiveWakeupHelpsMutexRMA: parking the pollers removes the mutex
// monopolization by the async progress thread (§9's motivation).
func TestSelectiveWakeupHelpsMutexRMA(t *testing.T) {
	run := func(wake bool) int64 {
		w, err := NewWorld(Config{
			Topo: machine.Nehalem2x4(2), Lock: simlock.KindMutex,
			ProcsPerNode: 4, Seed: 99, SelectiveWakeup: wake,
		})
		if err != nil {
			t.Fatal(err)
		}
		win := w.NewWin(16)
		for r := 0; r < 8; r++ {
			w.SpawnAsyncProgress(r)
		}
		var end int64
		w.Spawn(0, "origin", func(th *Thread) {
			vals := []float64{1, 2}
			for i := 0; i < 20; i++ {
				th.S.Sleep(300)
				r := th.Put(win, 1+(i%7), 0, vals)
				th.Flush(win, []*Request{r})
			}
			end = th.S.Now()
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	busy, evt := run(false), run(true)
	t.Logf("RMA 20 puts under mutex: busy=%dus event-driven=%dus", busy/1000, evt/1000)
	if evt >= busy {
		t.Errorf("selective wakeup should speed up the mutex RMA case: %d vs %d", evt, busy)
	}
}
