package mpi

// This file defines the critical-section protocol itself: mainBegin/
// mainEnd, stateBegin/stateEnd, and the csLock enter/exit helpers open
// and close sections across function boundaries by design. The lockpair
// analyzer enforces pairing at their call sites throughout the package.
//
//simcheck:allow-file lockpair protocol wrappers; pairing is enforced at call sites

import (
	"mpicontend/internal/fabric"
	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// Granularity selects the critical-section granularity of the runtime,
// after the paper's Fig. 1. Arbitration (Config.Lock) is the orthogonal
// dimension; §7 proposes studying their combination, which the
// "ablation-granularity" experiment does.
type Granularity int

const (
	// GranGlobal guards every call with one global critical section —
	// the paper's baseline and the subject of its analysis.
	GranGlobal Granularity = iota
	// GranBrief ("Brief Global", Fig. 1) shrinks the global section to
	// the queue/state updates; the rest of the main path runs outside.
	GranBrief
	// GranFine uses separate locks for the matching queues and the
	// network completion path, so injection and matching can overlap.
	GranFine
	// GranLockFree models idealized atomic queues: no mutual exclusion,
	// only per-operation atomic costs (Fig. 1's rightmost column; real
	// implementations use this only for reference counts).
	GranLockFree
)

// String names the granularity as in Fig. 1.
func (g Granularity) String() string {
	switch g {
	case GranGlobal:
		return "Global"
	case GranBrief:
		return "BriefGlobal"
	case GranFine:
		return "FineGrain"
	case GranLockFree:
		return "LockFree"
	default:
		return "Granularity(?)"
	}
}

// csLock pairs a lock with the runtime-state cache lines that follow its
// owner between cores: acquiring after a different core pays the line
// transfers.
type csLock struct {
	lock       simlock.Lock
	lines      int64
	owner      machine.Place
	ownerValid bool

	// Telemetry plane: tel is nil when disabled (the fast path is one
	// pointer nil check); id is the registered lock track, holdStart and
	// holdClass carry the current hold between enter and exit.
	tel       *telemetry.Recorder
	id        int
	holdStart int64
	holdClass uint8
}

// instrument attaches the lock to the telemetry plane under the given
// track name. No-op when tel is nil.
func (c *csLock) instrument(tel *telemetry.Recorder, name string) {
	if tel == nil {
		return
	}
	c.tel = tel
	c.id = tel.RegisterLock(name)
}

// telClass maps the simlock scheduling class onto the telemetry alphabet.
func telClass(cl simlock.Class) uint8 {
	if cl == simlock.Low {
		return telemetry.ClassLow
	}
	return telemetry.ClassHigh
}

func (c *csLock) enter(th *Thread, cl simlock.Class) {
	var waitFrom int64
	if c.tel != nil {
		waitFrom = th.S.Now()
	}
	c.lock.Acquire(&th.lctx, cl)
	if c.tel != nil {
		now := th.S.Now()
		c.tel.LockWait(c.id, th.S.ID(), telClass(cl), waitFrom, now)
		c.holdStart = now
		c.holdClass = telClass(cl)
		th.holdUseful = false
	}
	if th.errPath {
		th.P.w.ft.errPathLocks++
	}
	if at := th.P.lockCrashAt; at > 0 && th.S.Now() >= at && !th.P.crashed {
		// Scheduled crash-on-lock-hold (fault.CrashSpec.OnLockHold): the
		// process dies right here, holding the lock it just won — the
		// section is never released and every local waiter is stranded.
		th.P.w.killRank(th.P.Rank)
		panic(rankCrashed{})
	}
	cost := th.cost()
	if c.ownerValid && c.owner != th.lctx.Place && c.lines > 0 {
		th.S.Sleep(c.lines * cost.Transfer(c.owner, th.lctx.Place))
	}
	c.owner = th.lctx.Place
	c.ownerValid = true
	if pl := th.P.w.plane; pl != nil {
		// Fault plane: lock-holder preemption. The stall lands just after
		// acquisition, so every waiter pays for it — the pathology the
		// critical-section arbitration must absorb.
		if stall := pl.PreemptStall(); stall > 0 {
			th.P.w.faultEvent("preempt", th.P.Rank)
			th.S.Sleep(stall)
		}
	}
}

func (c *csLock) exit(th *Thread, cl simlock.Class) {
	if c.tel != nil {
		c.tel.LockHold(c.id, th.S.ID(), c.holdClass, th.holdUseful,
			th.lctx.Place.Socket, th.lctx.Place.Core, c.holdStart, th.S.Now())
	}
	c.lock.Release(&th.lctx, cl)
}

// briefCSWork is the slice of the main path that stays inside the critical
// section under GranBrief/GranFine (the queue update itself).
const briefCSWork = 60

// mainBegin opens an MPI call's main-path state section, charging the
// main-path work split according to the granularity. Callers must pair it
// with mainEnd.
func (th *Thread) mainBegin() {
	th.checkCrashed()
	th.checkThreadLevel()
	cost := th.cost()
	p := th.P
	switch p.w.Cfg.Granularity {
	case GranGlobal:
		p.vcis[0].cs.enter(th, simlock.High)
		th.S.Sleep(cost.MainPathWork)
	case GranBrief:
		th.S.Sleep(cost.MainPathWork - briefCSWork)
		// The held-lock walk is flow-insensitive and sees the GranGlobal
		// arm's enter as still held here; switch cases are exclusive.
		//simcheck:allow lockorder granularity arms are mutually exclusive; the GranGlobal enter is a different mode
		p.vcis[0].cs.enter(th, simlock.High)
		th.S.Sleep(briefCSWork)
	case GranFine:
		th.S.Sleep(cost.MainPathWork - briefCSWork)
		p.queueCS.enter(th, simlock.High)
		th.S.Sleep(briefCSWork)
	case GranLockFree:
		th.S.Sleep(cost.MainPathWork + 2*cost.AtomicOpCost)
	}
}

// mainEnd closes the section opened by mainBegin.
func (th *Thread) mainEnd() {
	p := th.P
	switch p.w.Cfg.Granularity {
	case GranGlobal, GranBrief:
		p.vcis[0].cs.exit(th, simlock.High)
	case GranFine:
		p.queueCS.exit(th, simlock.High)
	case GranLockFree:
	}
	th.exitThreadLevel()
}

// stateBegin opens a short request-state section (completion checks,
// frees) without charging main-path work.
func (th *Thread) stateBegin(cl simlock.Class) {
	th.checkCrashed()
	th.checkThreadLevel()
	p := th.P
	switch p.w.Cfg.Granularity {
	case GranGlobal, GranBrief:
		p.vcis[0].cs.enter(th, cl)
	case GranFine:
		p.queueCS.enter(th, cl)
	case GranLockFree:
		th.S.Sleep(th.cost().AtomicOpCost)
	}
}

// stateEnd closes a stateBegin section.
func (th *Thread) stateEnd(cl simlock.Class) {
	p := th.P
	switch p.w.Cfg.Granularity {
	case GranGlobal, GranBrief:
		p.vcis[0].cs.exit(th, cl)
	case GranFine:
		p.queueCS.exit(th, cl)
	case GranLockFree:
	}
	th.exitThreadLevel()
}

// progressRound runs one progress-engine iteration with the granularity's
// locking: under Global/Brief the whole poll holds the global CS (the
// paper's progress loop); under Fine the completion queue is drained under
// the NIC lock and each event is handled under the queue lock; under
// LockFree only atomic costs are charged. cl is the scheduling class used
// for global-CS acquisition (Low in blocking progress loops, High in
// MPI_Test). If post is non-nil it runs under request-state protection —
// inside the same critical-section hold where the granularity allows —
// letting callers check and free requests as MPICH's progress loop does.
func (th *Thread) progressRound(cl simlock.Class, post func()) {
	th.checkCrashed()
	th.checkThreadLevel()
	defer th.exitThreadLevel()
	p := th.P
	cost := th.cost()
	switch p.w.Cfg.Granularity {
	case GranGlobal, GranBrief:
		p.vcis[0].cs.enter(th, cl)
		p.pollOnce(th)
		if post != nil {
			post()
		}
		p.vcis[0].cs.exit(th, cl)
	case GranFine:
		p.nicCS.enter(th, cl)
		var pollFrom int64
		if p.w.tel != nil {
			pollFrom = th.S.Now()
		}
		th.S.Sleep(cost.ProgressPollWork)
		p.Polls++
		var pkts []*fabric.Packet
		for len(p.vcis[0].cq) > 0 && len(pkts) < maxEventsPerPoll {
			pkts = append(pkts, p.vcis[0].cq[0])
			p.vcis[0].cq = p.vcis[0].cq[1:]
		}
		th.holdUseful = len(pkts) > 0
		if p.w.tel != nil {
			p.w.tel.Poll(th.S.ID(), pollFrom, th.S.Now(), len(pkts))
		}
		p.nicCS.exit(th, cl)
		if len(pkts) == 0 {
			th.pollBackoff++
			if post != nil {
				p.queueCS.enter(th, cl)
				post()
				p.queueCS.exit(th, cl)
			}
			return
		}
		th.pollBackoff = 0
		for _, pkt := range pkts {
			p.queueCS.enter(th, cl)
			th.S.Sleep(cost.ProgressHandleWork)
			p.handlePacket(th, pkt)
			if p.rel == nil {
				p.w.Fab.FreePacket(pkt) // see pollOnce: fault-free packets die here
			}
			p.queueCS.exit(th, cl)
		}
		if post != nil {
			p.queueCS.enter(th, cl)
			post()
			p.queueCS.exit(th, cl)
		}
	case GranLockFree:
		var pollFrom int64
		if p.w.tel != nil {
			pollFrom = th.S.Now()
		}
		th.S.Sleep(cost.ProgressPollWork + cost.AtomicOpCost)
		p.Polls++
		handled := 0
		for len(p.vcis[0].cq) > 0 && handled < maxEventsPerPoll {
			pkt := p.vcis[0].cq[0]
			p.vcis[0].cq[0] = nil
			p.vcis[0].cq = p.vcis[0].cq[1:]
			th.S.Sleep(cost.ProgressHandleWork + cost.AtomicOpCost)
			p.handlePacket(th, pkt)
			if p.rel == nil {
				p.w.Fab.FreePacket(pkt) // see pollOnce: fault-free packets die here
			}
			handled++
		}
		if p.w.tel != nil {
			p.w.tel.Poll(th.S.ID(), pollFrom, th.S.Now(), handled)
		}
		if handled > 0 {
			th.pollBackoff = 0
		} else {
			th.pollBackoff++
		}
		if post != nil {
			th.S.Sleep(cost.AtomicOpCost)
			post()
		}
	}
}
