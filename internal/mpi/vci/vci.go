// Package vci is the communicator→VCI mapping policy layer for the
// sharded runtime: pure, deterministic functions that pick which virtual
// communication interface an operation lands on, given the communicator
// context, tag and an optional explicit hint. Sender and receiver run the
// same function over the same inputs, so a message and its matching
// receive always meet on the same VCI without any coordination — the
// property that makes independent per-VCI critical sections possible
// (Zambre et al., "How I Learned to Stop Worrying About User-Visible
// Endpoints and Love MPI").
//
// The package holds no state and performs no simulation; it is part of
// the deterministic core (docs/ARCHITECTURE.md).
package vci

import "fmt"

// Policy selects how operations are distributed over the VCIs of a proc.
type Policy int

const (
	// PerComm maps every operation of one communicator to one VCI (hash
	// of the context id). Communicator-disjoint phases never contend, and
	// wildcard receives stay trivially correct: all traffic of the comm
	// is on a single VCI.
	PerComm Policy = iota
	// PerTagHash maps by (context, tag), spreading a single communicator
	// over all VCIs when tags differ (e.g. one tag per thread). AnyTag
	// receives can no longer name a single VCI and take the cross-VCI
	// wildcard path.
	PerTagHash
	// Explicit uses the communicator's VCI hint (Comm.SetVCI); comms
	// without a hint fall back to the PerComm hash.
	Explicit
)

// String names the policy as used in figures and flags.
func (p Policy) String() string {
	switch p {
	case PerComm:
		return "per-comm"
	case PerTagHash:
		return "per-tag-hash"
	case Explicit:
		return "explicit"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config is the sharding configuration of one world: how many VCIs each
// proc runs and how operations are mapped onto them.
type Config struct {
	// N is the number of VCIs per proc; 0 normalizes to 1 (the unsharded
	// runtime, byte-identical to the pre-VCI code path).
	N int
	// Policy is the mapping policy.
	Policy Policy
}

// Normalize returns c with N clamped to at least 1.
func (c Config) Normalize() Config {
	if c.N < 1 {
		c.N = 1
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.N < 0 {
		return fmt.Errorf("vci: negative VCI count %d", c.N)
	}
	if c.N > 1024 {
		return fmt.Errorf("vci: VCI count %d exceeds 1024", c.N)
	}
	switch c.Policy {
	case PerComm, PerTagHash, Explicit:
		return nil
	default:
		return fmt.Errorf("vci: unknown policy %d", int(c.Policy))
	}
}

// NoHint marks a communicator without an explicit VCI assignment.
const NoHint = -1

// Select returns the VCI index in [0, n) for an operation on (ctx, tag)
// under the given policy. hint is the communicator's explicit VCI (NoHint
// when unset). Both sides of a match must call Select with identical
// inputs — the mapping deliberately ignores source/destination ranks so
// AnySource stays shardable; only AnyTag under PerTagHash is ambiguous
// (see Wildcard).
func Select(p Policy, ctx, tag, hint, n int) int {
	if n <= 1 {
		return 0
	}
	switch p {
	case PerTagHash:
		return int(mix(uint64(int64(ctx))*0x9e3779b97f4a7c15 ^ uint64(int64(tag))) % uint64(n))
	case Explicit:
		if hint != NoHint {
			if hint < 0 || hint >= n {
				panic(fmt.Sprintf("vci: explicit hint %d out of range [0,%d)", hint, n))
			}
			return hint
		}
		fallthrough
	default: // PerComm
		return int(mix(uint64(int64(ctx))) % uint64(n))
	}
}

// Wildcard reports whether a receive posted with the given tag cannot be
// mapped to one VCI under the policy and must take the cross-VCI path.
// anyTag is the runtime's AnyTag sentinel value for tag.
func Wildcard(p Policy, tag, anyTag int) bool {
	return p == PerTagHash && tag == anyTag
}

// mix is a 64-bit finalizer (splitmix64) giving a well-spread deterministic
// hash for small, possibly negative, context and tag values.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
