package vci

import "testing"

const anyTag = -1

func TestSelectRange(t *testing.T) {
	for _, p := range []Policy{PerComm, PerTagHash, Explicit} {
		for _, n := range []int{1, 2, 3, 4, 16, 64} {
			for ctx := -2_000_001; ctx <= 8; ctx += 500_000 {
				for tag := -1; tag < 40; tag += 7 {
					v := Select(p, ctx, tag, NoHint, n)
					if v < 0 || v >= n {
						t.Fatalf("Select(%v, ctx=%d, tag=%d, n=%d) = %d out of range",
							p, ctx, tag, n, v)
					}
				}
			}
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		a := Select(PerTagHash, 3, i, NoHint, 16)
		b := Select(PerTagHash, 3, i, NoHint, 16)
		if a != b {
			t.Fatalf("tag %d: %d vs %d", i, a, b)
		}
	}
}

func TestPerCommIgnoresTag(t *testing.T) {
	for tag := 0; tag < 50; tag++ {
		if Select(PerComm, 7, tag, NoHint, 16) != Select(PerComm, 7, 0, NoHint, 16) {
			t.Fatalf("per-comm mapping moved with tag %d", tag)
		}
	}
}

func TestPerTagHashSpreads(t *testing.T) {
	// 64 tags over 16 VCIs must hit a healthy majority of the shards —
	// the whole point of the policy is that per-thread tags decontend.
	seen := map[int]bool{}
	for tag := 0; tag < 64; tag++ {
		seen[Select(PerTagHash, 0, tag, NoHint, 16)] = true
	}
	if len(seen) < 12 {
		t.Fatalf("64 tags landed on only %d/16 VCIs", len(seen))
	}
}

func TestExplicitHint(t *testing.T) {
	for hint := 0; hint < 8; hint++ {
		if got := Select(Explicit, 3, 9, hint, 8); got != hint {
			t.Fatalf("hint %d mapped to %d", hint, got)
		}
	}
	// Without a hint the explicit policy degrades to per-comm.
	if Select(Explicit, 3, 9, NoHint, 8) != Select(PerComm, 3, 9, NoHint, 8) {
		t.Fatal("explicit without hint must fall back to per-comm")
	}
}

func TestExplicitHintOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range hint")
		}
	}()
	Select(Explicit, 0, 0, 8, 8)
}

func TestSingleVCIAlwaysZero(t *testing.T) {
	for _, p := range []Policy{PerComm, PerTagHash, Explicit} {
		if Select(p, 123, 456, NoHint, 1) != 0 {
			t.Fatalf("%v: n=1 must map to 0", p)
		}
	}
}

func TestWildcard(t *testing.T) {
	if Wildcard(PerComm, anyTag, anyTag) {
		t.Fatal("per-comm AnyTag is not a cross-VCI wildcard")
	}
	if Wildcard(Explicit, anyTag, anyTag) {
		t.Fatal("explicit AnyTag is not a cross-VCI wildcard")
	}
	if !Wildcard(PerTagHash, anyTag, anyTag) {
		t.Fatal("per-tag-hash AnyTag must be a cross-VCI wildcard")
	}
	if Wildcard(PerTagHash, 5, anyTag) {
		t.Fatal("concrete tag is never a wildcard")
	}
}

func TestNormalizeValidate(t *testing.T) {
	if (Config{}).Normalize().N != 1 {
		t.Fatal("zero config must normalize to one VCI")
	}
	if (Config{N: 4}).Normalize().N != 4 {
		t.Fatal("normalize must keep explicit N")
	}
	if err := (Config{N: 16, Policy: PerTagHash}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{N: -1}).Validate(); err == nil {
		t.Fatal("negative N must not validate")
	}
	if err := (Config{N: 2048}).Validate(); err == nil {
		t.Fatal("absurd N must not validate")
	}
	if err := (Config{Policy: Policy(9)}).Validate(); err == nil {
		t.Fatal("unknown policy must not validate")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{PerComm: "per-comm", PerTagHash: "per-tag-hash",
		Explicit: "explicit", Policy(9): "Policy(9)"}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("Policy(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

// TestNegativeCtxShadows: the runtime routes collective shadows (collCtx -
// ctx) and recovery traffic (agreeBase - ctx) over large negative
// contexts. They must map consistently and not all collapse onto VCI 0.
func TestNegativeCtxShadows(t *testing.T) {
	seen := map[int]bool{}
	for c := 0; c < 32; c++ {
		seen[Select(PerComm, -1_000_000-c, 0, NoHint, 16)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("recovery contexts landed on only %d/16 VCIs", len(seen))
	}
}
