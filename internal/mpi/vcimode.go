package mpi

// This file implements the per-VCI runtime mode: the shard type holding
// one virtual communication interface's matching queues, completion queue,
// request pool and critical-section lock, plus the VCI-aware variants of
// the critical-section protocol (main-path, state and progress sections on
// a single shard, and the cross-VCI wildcard path that owns every shard at
// once). Like granularity.go, the section helpers here open and close
// critical sections across function boundaries by design; the lockpair
// analyzer enforces pairing at their call sites.
//
// With one VCI per proc (the default) none of the multi-shard paths run:
// every helper degrades to the exact pre-VCI code path on shard 0, keeping
// single-VCI output byte-identical.
//
//simcheck:allow-file lockpair protocol wrappers; pairing is enforced at call sites

import (
	"mpicontend/internal/fabric"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/simlock"
)

// vciShard is one virtual communication interface of a proc: an
// independent slice of the runtime — matching queues, completion queue,
// request pool — guarded by its own critical-section lock. Two operations
// mapped to different shards of the same proc never contend; the only
// remaining arbitration between them is the shared-NIC injection lock
// (Proc.nicVCI) and the physical NIC serialization in the fabric.
type vciShard struct {
	idx    int
	cs     csLock
	posted []*Request       // posted receive queue
	unexp  []*envelope      // unexpected message queue
	cq     []*fabric.Packet // network completion queue

	// Partitioned communication keeps its own matching space: a
	// partitioned aggregate must never match an eager/rendezvous receive
	// with the same (comm, tag, src) and vice versa (MPI-4.0 separates
	// the channels). pposted holds started Precv requests; punexp
	// accumulates partition arrivals that beat their Precv's Start.
	pposted []*Request
	punexp  []*penvelope

	// reqFree pools request objects of this shard (multi-VCI mode only;
	// the single-VCI runtime keeps using the world pool).
	reqFree *Request
}

// numVCI returns the number of VCIs of this proc (>= 1).
func (p *Proc) numVCI() int { return len(p.vcis) }

// selectVCI maps an operation on (comm, tag) to its shard.
func (p *Proc) selectVCI(c *Comm, tag int) int {
	if len(p.vcis) == 1 {
		return 0
	}
	return vci.Select(p.w.Cfg.VCIPolicy, c.ctx, tag, c.vciHint(), len(p.vcis))
}

// vciWildcard reports whether a receive with the given tag cannot be
// mapped to one shard and must take the cross-VCI path.
func (p *Proc) vciWildcard(tag int) bool {
	return len(p.vcis) > 1 && vci.Wildcard(p.w.Cfg.VCIPolicy, tag, AnyTag)
}

// allocReqVCI returns a zeroed request from shard v's pool (multi-VCI) or
// the world pool (single-VCI, preserving the pre-VCI allocation pattern).
func (p *Proc) allocReqVCI(v int) *Request {
	if len(p.vcis) == 1 {
		return p.w.allocRequest()
	}
	sh := p.vcis[v]
	if r := sh.reqFree; r != nil {
		sh.reqFree = r.nextFree
		*r = Request{}
		return r
	}
	return new(Request)
}

// cqEmpty reports whether every shard's completion queue is empty (the
// selective-wakeup park condition).
func (p *Proc) cqEmpty() bool {
	for _, sh := range p.vcis {
		if len(sh.cq) > 0 {
			return false
		}
	}
	return true
}

// mainBeginVCI opens the main-path section of an MPI call mapped to shard
// v. With one VCI it defers to the granularity-aware mainBegin; with many
// (GranGlobal only, enforced at NewWorld) it enters shard v's critical
// section directly.
func (th *Thread) mainBeginVCI(v int) {
	p := th.P
	if len(p.vcis) == 1 {
		th.mainBegin()
		return
	}
	th.checkCrashed()
	th.checkThreadLevel()
	// The held-lock walk is flow-insensitive and sees the len==1 arm's
	// mainBegin effects (GranFine's queueCS among them) as still held
	// here; the arms are mutually exclusive — multi-VCI requires
	// GranGlobal, enforced at NewWorld.
	//simcheck:allow lockorder single- and multi-VCI arms are mutually exclusive; multi-VCI forbids GranFine
	p.vcis[v].cs.enter(th, simlock.High)
	th.S.Sleep(th.cost().MainPathWork)
}

// mainEndVCI closes a mainBeginVCI section.
func (th *Thread) mainEndVCI(v int) {
	p := th.P
	if len(p.vcis) == 1 {
		th.mainEnd()
		return
	}
	p.vcis[v].cs.exit(th, simlock.High)
	th.exitThreadLevel()
}

// stateBeginVCI opens a short request-state section on shard v.
func (th *Thread) stateBeginVCI(v int, cl simlock.Class) {
	p := th.P
	if len(p.vcis) == 1 {
		th.stateBegin(cl)
		return
	}
	th.checkCrashed()
	th.checkThreadLevel()
	p.vcis[v].cs.enter(th, cl)
}

// stateEndVCI closes a stateBeginVCI section.
func (th *Thread) stateEndVCI(v int, cl simlock.Class) {
	p := th.P
	if len(p.vcis) == 1 {
		th.stateEnd(cl)
		return
	}
	p.vcis[v].cs.exit(th, cl)
	th.exitThreadLevel()
}

// progressRoundVCI runs one progress-engine iteration on shard v: poll its
// completion queue and run post under its critical section. With one VCI
// it is exactly progressRound.
func (th *Thread) progressRoundVCI(v int, cl simlock.Class, post func()) {
	p := th.P
	if len(p.vcis) == 1 {
		th.progressRound(cl, post)
		return
	}
	th.checkCrashed()
	th.checkThreadLevel()
	defer th.exitThreadLevel()
	p.vcis[v].cs.enter(th, cl)
	p.pollShard(th, v)
	if post != nil {
		post()
	}
	p.vcis[v].cs.exit(th, cl)
}

// wildBegin opens the cross-VCI wildcard section: every shard's critical
// section, acquired in ascending shard order (the module-wide discipline
// that makes the multi-acquire deadlock-free; the lock-identity layer
// canonicalizes the indexed acquisitions as one ordered class). Main-path
// work is charged once, after the last acquisition.
func (th *Thread) wildBegin() {
	th.checkCrashed()
	th.checkThreadLevel()
	p := th.P
	for v := range p.vcis {
		p.vcis[v].cs.enter(th, simlock.High)
	}
	th.S.Sleep(th.cost().MainPathWork)
}

// wildEnd closes a wildBegin section, releasing in reverse order.
func (th *Thread) wildEnd() {
	p := th.P
	for v := len(p.vcis) - 1; v >= 0; v-- {
		p.vcis[v].cs.exit(th, simlock.High)
	}
	th.exitThreadLevel()
}

// nicInjectWork is the driver-level CPU cost of handing one packet to the
// shared NIC while holding the injection lock: a cached descriptor write
// plus a posted (fire-and-forget) doorbell MMIO. The hold time is what a
// tuned driver achieves — short enough that a waiter usually gets the
// lock within its user-space spin budget, so the injection point only
// punishes locks with poor hand-off under burst pressure.
const nicInjectWork = 10

// sendShard injects a protocol packet of shard v. In multi-VCI mode the
// shared NIC is the one arbitration site left between shards: injection
// runs under the nicVCI lock (always high class — the driver does not
// discriminate), nested inside the caller's shard section, giving the
// invariant lock order shard CS -> NIC. Single-VCI mode bypasses the NIC
// lock entirely, preserving the pre-VCI path.
func (p *Proc) sendShard(th *Thread, pkt *fabric.Packet, notifyTx bool, owner *Request) {
	if len(p.vcis) == 1 {
		p.send(pkt, notifyTx, owner)
		return
	}
	//simcheck:allow hotalloc lock-implementation layer; simlock state is per-lock and preallocated, not per-event
	p.nicVCI.enter(th, simlock.High)
	th.S.Sleep(nicInjectWork)
	p.send(pkt, notifyTx, owner)
	//simcheck:allow hotalloc lock-implementation layer; simlock state is per-lock and preallocated, not per-event
	p.nicVCI.exit(th, simlock.High)
}

// consumeRevoke applies a communicator revocation at driver level (engine
// context) — the sharded runtime's analogue of progress.go's Revoke
// handling. Only reached with the fault-tolerance plane armed (Revoke
// packets do not otherwise exist), where the reliable transport is active
// and the ACK must be issued here, since the packet never reaches a
// progress loop.
func (p *Proc) consumeRevoke(pkt *fabric.Packet) {
	now := p.w.Eng.Now()
	m := pkt.Meta.(revokeMeta)
	if p.ft != nil && !p.ft.revoked[m.ctx] {
		size := len(m.ranks)
		if m.ranks == nil {
			size = len(p.w.Procs)
		}
		p.applyRevoke(m.ctx, now)
		p.floodRevoke(m.ctx, m.ranks, size)
	}
	if pkt.Rel && p.rel != nil {
		p.rel.ackDelivered(pkt)
	}
}

// reqShard returns the state-section shard of a request: its own VCI, or
// shard 0 for a request that completed without ever binding to a shard
// (fault paths can fail an unbound wildcard while it is still cross-posted).
func reqShard(r *Request) int {
	if r.vci < 0 {
		return 0
	}
	return r.vci
}

// sweepDone visits the already-completed, unfreed requests of rs shard by
// shard: each shard holding at least one opens its own state section and
// fn runs on that shard's completed requests (with the rs index they were
// snapshotted at). A fixed single-shard sweep here would funnel every
// wait-family caller through one lock and re-serialize exactly the
// independence sharding buys; request state lives on the request's own
// VCI, so that shard's section is the one that guards its reaping. When
// nothing has completed, no section is opened at all.
func (th *Thread) sweepDone(rs []*Request, fn func(i int, r *Request)) {
	p := th.P
	done := make(shardSet, p.numVCI())
	type snap struct {
		i int
		r *Request
	}
	var snaps []snap
	for i, r := range rs {
		if r != nil && r.complete && !r.freed {
			done[reqShard(r)] = true
			snaps = append(snaps, snap{i, r})
		}
	}
	if len(snaps) == 0 {
		return
	}
	for v := range done {
		if !done[v] {
			continue
		}
		th.stateBeginVCI(v, simlock.High)
		for _, s := range snaps {
			if reqShard(s.r) == v && s.r.complete && !s.r.freed {
				fn(s.i, s.r)
			}
		}
		th.stateEndVCI(v, simlock.High)
	}
}

// shardSet is a reusable per-call scratch marking which shards a wait
// family call must poll this round.
type shardSet []bool

// gather marks the shards of the still-pending requests; an unbound
// wildcard (vci < 0) marks every shard. Returns false when no request is
// pending.
func (s shardSet) gather(rs []*Request) bool {
	for i := range s {
		s[i] = false
	}
	any := false
	for _, r := range rs {
		if r == nil || r.complete || r.freed {
			continue
		}
		any = true
		if r.vci < 0 {
			for i := range s {
				s[i] = true
			}
			return true
		}
		s[r.vci] = true
	}
	return any
}
