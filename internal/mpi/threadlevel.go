package mpi

import "fmt"

// ThreadLevel is the MPI thread-support level requested at initialization
// (paper §2.1). The runtime skips critical sections entirely below
// THREAD_MULTIPLE — that is where single-threaded speed comes from — and,
// as a debugging aid real MPI libraries lack, *verifies* the usage contract
// instead of corrupting state when it is violated.
type ThreadLevel int

const (
	// ThreadMultiple allows concurrent MPI calls from any thread
	// (default; the paper's subject).
	ThreadMultiple ThreadLevel = iota
	// ThreadSingle permits exactly one thread per process to call MPI.
	ThreadSingle
	// ThreadFunneled permits MPI calls only from each process's first-
	// spawned ("main") thread.
	ThreadFunneled
	// ThreadSerialized permits any thread but never two concurrently;
	// the application must serialize (the runtime checks it did).
	ThreadSerialized
)

// String names the level like the MPI constants.
func (l ThreadLevel) String() string {
	switch l {
	case ThreadMultiple:
		return "MPI_THREAD_MULTIPLE"
	case ThreadSingle:
		return "MPI_THREAD_SINGLE"
	case ThreadFunneled:
		return "MPI_THREAD_FUNNELED"
	case ThreadSerialized:
		return "MPI_THREAD_SERIALIZED"
	default:
		return fmt.Sprintf("ThreadLevel(%d)", int(l))
	}
}

// Serialized reports whether the level needs no critical sections.
func (l ThreadLevel) lockless() bool { return l != ThreadMultiple }

// checkThreadLevel enforces the usage contract on every MPI entry. It runs
// only when the configured level is below THREAD_MULTIPLE, where the
// runtime takes no locks and a violation would otherwise corrupt state
// silently.
func (th *Thread) checkThreadLevel() {
	p := th.P
	switch p.w.Cfg.ThreadLevel {
	case ThreadMultiple:
		return
	case ThreadSingle, ThreadFunneled:
		// Only the first application thread of the process may call.
		if p.mainThread != nil && p.mainThread != th {
			panic(fmt.Sprintf("mpi: %v violation: thread %q called MPI on rank %d",
				p.w.Cfg.ThreadLevel, th.S.Name(), p.Rank))
		}
		if p.mainThread == nil {
			p.mainThread = th
		}
	case ThreadSerialized:
		if p.inCall != nil && p.inCall != th {
			panic(fmt.Sprintf("mpi: MPI_THREAD_SERIALIZED violation: %q and %q "+
				"inside MPI concurrently on rank %d",
				p.inCall.S.Name(), th.S.Name(), p.Rank))
		}
		p.inCall = th
	}
}

// exitThreadLevel ends a serialized call section.
func (th *Thread) exitThreadLevel() {
	if th.P.w.Cfg.ThreadLevel == ThreadSerialized {
		th.P.inCall = nil
	}
}
