package mpi

// Small collectives built on point-to-point, for the application kernels.
// They use the reserved collective context so their traffic never matches
// user receives. Each collective must be called by exactly one thread per
// rank of the communicator, like an MPI process-level collective.

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ceil(log2 n) rounds).
func (th *Thread) Barrier(c *Comm) {
	n := c.size
	if n <= 1 {
		return
	}
	cc := c.collComm()
	me := c.Rank(th)
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		tag := 1000 + round
		th.Sendrecv(cc, dst, tag, 1, nil, src, tag)
	}
}

// AllreduceSum reduces val with + across ranks and returns the total on
// every rank (binomial reduce to rank 0, then binomial broadcast).
func (th *Thread) AllreduceSum(c *Comm, val int64) int64 {
	return th.allreduce(c, val, func(a, b int64) int64 { return a + b })
}

// AllreduceMax reduces val with max across ranks.
func (th *Thread) AllreduceMax(c *Comm, val int64) int64 {
	return th.allreduce(c, val, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

func (th *Thread) allreduce(c *Comm, val int64, op func(a, b int64) int64) int64 {
	n := c.size
	if n <= 1 {
		return val
	}
	cc := c.collComm()
	me := c.Rank(th)
	acc := val
	// Binomial reduction to rank 0.
	for k := 1; k < n; k <<= 1 {
		tag := 2000 + k
		if me&k != 0 {
			th.Send(cc, me-k, tag, 8, acc)
			break
		}
		if me+k < n {
			v := th.Recv(cc, me+k, tag).(int64)
			acc = op(acc, v)
		}
	}
	// Binomial broadcast from rank 0.
	// Find the highest power of two covering n.
	top := 1
	for top < n {
		top <<= 1
	}
	for k := top >> 1; k >= 1; k >>= 1 {
		tag := 3000 + k
		if me&(k-1) == 0 { // participant at this level
			if me&k != 0 {
				acc = th.Recv(cc, me-k, tag).(int64)
			} else if me+k < n {
				th.Send(cc, me+k, tag, 8, acc)
			}
		}
	}
	return acc
}

// Bcast broadcasts the payload from root and returns it on every rank
// (binomial tree relative to root).
func (th *Thread) Bcast(c *Comm, root int, bytes int64, payload interface{}) interface{} {
	n := c.size
	if n <= 1 {
		return payload
	}
	cc := c.collComm()
	me := (c.Rank(th) - root + n) % n // virtual rank
	top := 1
	for top < n {
		top <<= 1
	}
	v := payload
	for k := top >> 1; k >= 1; k >>= 1 {
		tag := 4000 + k
		if me&(k-1) == 0 {
			if me&k != 0 {
				src := ((me - k) + root) % n
				v = th.Recv(cc, src, tag)
			} else if me+k < n {
				dst := ((me + k) + root) % n
				th.Send(cc, dst, tag, bytes, v)
			}
		}
	}
	return v
}

// Gather collects each rank's payload at root; root receives a slice
// indexed by rank (others get nil).
func (th *Thread) Gather(c *Comm, root int, bytes int64, payload interface{}) []interface{} {
	cc := c.collComm()
	me := c.Rank(th)
	if me != root {
		th.Send(cc, root, 5000+me, bytes, payload)
		return nil
	}
	out := make([]interface{}, c.size)
	out[root] = payload
	for r := 0; r < c.size; r++ {
		if r != root {
			out[r] = th.Recv(cc, r, 5000+r)
		}
	}
	return out
}

// AllgatherInt64 gathers one int64 from every rank and returns the slice
// indexed by rank, on every rank (gather to 0 + broadcast).
func (th *Thread) AllgatherInt64(c *Comm, val int64) []int64 {
	me := c.Rank(th)
	out := th.Gather(c, 0, 8, val)
	vals := make([]int64, c.size)
	if me == 0 {
		for i, v := range out {
			vals[i] = v.(int64)
		}
	}
	got := th.Bcast(c, 0, int64(8*c.size), vals)
	return got.([]int64)
}

// Alltoall exchanges one payload with every rank: sendbuf[i] goes to rank
// i, and the returned slice holds what rank i sent to this rank. Each rank
// must pass a slice of length Comm.Size(). bytesEach is the modelled size
// of each element.
func (th *Thread) Alltoall(c *Comm, bytesEach int64, sendbuf []interface{}) []interface{} {
	if len(sendbuf) != c.size {
		panic("mpi: Alltoall sendbuf length must equal communicator size")
	}
	cc := c.collComm()
	me := c.Rank(th)
	recv := make([]interface{}, c.size)
	recv[me] = sendbuf[me]
	var rs []*Request
	rreqs := make([]*Request, c.size)
	for r := 0; r < c.size; r++ {
		if r == me {
			continue
		}
		rreqs[r] = th.Irecv(cc, r, 6000+r)
		rs = append(rs, rreqs[r])
	}
	for i := 1; i < c.size; i++ {
		dst := (me + i) % c.size
		rs = append(rs, th.Isend(cc, dst, 6000+me, bytesEach, sendbuf[dst]))
	}
	th.Waitall(rs) //simcheck:allow errdrop value collectives have no error path; the handler runs inside Waitall
	for r := 0; r < c.size; r++ {
		if r != me {
			recv[r] = rreqs[r].Data()
		}
	}
	return recv
}

// ReduceSum reduces val with + to the root rank; non-roots receive 0.
func (th *Thread) ReduceSum(c *Comm, root int, val int64) int64 {
	// Gather-based reduction via the binomial pattern rooted at 0 then a
	// point-to-point forward if the root differs (n is small here).
	total := th.AllreduceSum(c, val)
	if c.Rank(th) == root {
		return total
	}
	return 0
}
