package mpi

import (
	"fmt"
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/simlock"
)

// withProgress is a testWorld option selecting a progress mode.
func withProgress(m ProgressMode) func(*Config) {
	return func(c *Config) { c.Progress = m }
}

// TestStrongProgressSendRecv: basic two-sided traffic completes under
// strong progress — the daemons drive matching and completion while both
// application threads block parked.
func TestStrongProgressSendRecv(t *testing.T) {
	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("vcis=%d", n), func(t *testing.T) {
			w := testWorld(t, 2, withProgress(ProgressStrong), withVCIs(n, vci.PerTagHash))
			c := w.Comm()
			var got interface{}
			w.Spawn(0, "sender", func(th *Thread) {
				th.Send(c, 1, 7, 64, "hello")
			})
			w.Spawn(1, "receiver", func(th *Thread) {
				got = th.Recv(c, 0, 7)
			})
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			if got != "hello" {
				t.Fatalf("got %v", got)
			}
			if w.DanglingNow() != 0 {
				t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
			}
		})
	}
}

// TestStrongProgressRendezvous: the multi-step rendezvous protocol
// (RTS/CTS/RData) advances entirely on daemon progress rounds.
func TestStrongProgressRendezvous(t *testing.T) {
	w := testWorld(t, 2, withProgress(ProgressStrong))
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 1, big, "bulk")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		got = th.Recv(c, 0, 1)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "bulk" {
		t.Fatalf("got %v", got)
	}
}

// TestStrongProgressWaitall: Waitall parks between completion events and
// reaps shard by shard; all payloads arrive across a sharded runtime.
func TestStrongProgressWaitall(t *testing.T) {
	const msgs = 8
	w := testWorld(t, 2, withProgress(ProgressStrong), withVCIs(4, vci.PerTagHash))
	c := w.Comm()
	got := make(map[int]interface{})
	w.Spawn(0, "sender", func(th *Thread) {
		rs := make([]*Request, 0, msgs)
		for tag := 0; tag < msgs; tag++ {
			rs = append(rs, th.Isend(c, 1, tag, 64, tag*tag))
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("sender waitall: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		rs := make([]*Request, 0, msgs)
		for tag := 0; tag < msgs; tag++ {
			rs = append(rs, th.Irecv(c, 0, tag))
		}
		if err := th.Waitall(rs); err != nil {
			t.Errorf("receiver waitall: %v", err)
		}
		for tag, r := range rs {
			got[tag] = r.Data()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for tag := 0; tag < msgs; tag++ {
		if got[tag] != tag*tag {
			t.Fatalf("tag %d: got %v, want %d", tag, got[tag], tag*tag)
		}
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestContinuationWaitall: the continuation-mode Waitall (batched
// CompletionQueue enqueue + drain) delivers every payload, on both the
// unsharded and sharded runtimes.
func TestContinuationWaitall(t *testing.T) {
	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("vcis=%d", n), func(t *testing.T) {
			const msgs = 8
			w := testWorld(t, 2, withProgress(ProgressContinuation), withVCIs(n, vci.PerTagHash))
			c := w.Comm()
			got := make(map[int]interface{})
			w.Spawn(0, "sender", func(th *Thread) {
				rs := make([]*Request, 0, msgs)
				for tag := 0; tag < msgs; tag++ {
					rs = append(rs, th.Isend(c, 1, tag, 64, fmt.Sprintf("m%d", tag)))
				}
				if err := th.Waitall(rs); err != nil {
					t.Errorf("sender waitall: %v", err)
				}
			})
			w.Spawn(1, "receiver", func(th *Thread) {
				rs := make([]*Request, 0, msgs)
				for tag := 0; tag < msgs; tag++ {
					rs = append(rs, th.Irecv(c, 0, tag))
				}
				if err := th.Waitall(rs); err != nil {
					t.Errorf("receiver waitall: %v", err)
				}
				for tag, r := range rs {
					got[tag] = r.Data()
				}
			})
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			for tag := 0; tag < msgs; tag++ {
				if got[tag] != fmt.Sprintf("m%d", tag) {
					t.Fatalf("tag %d: got %v", tag, got[tag])
				}
			}
			if w.DanglingNow() != 0 {
				t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
			}
		})
	}
}

// TestOnCompleteFires: a continuation registered on a pending receive runs
// from the progress engine with the delivered payload, and the runtime
// frees the request at dispatch (a later Wait is a usage error).
func TestOnCompleteFires(t *testing.T) {
	w := testWorld(t, 2, withProgress(ProgressContinuation))
	c := w.Comm()
	fired := 0
	var data interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		th.Send(c, 1, 3, 64, "cb-payload")
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		r := th.Irecv(c, 0, 3)
		r.OnComplete(th, func(r *Request, err error) {
			fired++
			if err != nil {
				t.Errorf("continuation error: %v", err)
			}
			data = r.Data()
		})
		// Nothing to wait on: the receiver parks in a dummy exchange so the
		// world keeps running until the continuation fires.
		th.Send(c, 0, 9, 16, nil)
	})
	w.Spawn(0, "flusher", func(th *Thread) {
		th.Recv(c, 1, 9)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("continuation fired %d times, want 1", fired)
	}
	if data != "cb-payload" {
		t.Fatalf("continuation saw %v", data)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestOnCompleteAlreadyCompleted is the satellite regression: a
// continuation registered on an already-completed request fires exactly
// once, during the OnComplete call itself, and its ordering against Wait
// returns is deterministic across identically-seeded runs.
func TestOnCompleteAlreadyCompleted(t *testing.T) {
	run := func() (fired int, order []string) {
		w := testWorld(t, 2, withProgress(ProgressContinuation))
		c := w.Comm()
		w.Spawn(0, "sender", func(th *Thread) {
			th.Send(c, 1, 1, 64, "first")
			th.Send(c, 1, 2, 64, "second")
		})
		w.Spawn(1, "receiver", func(th *Thread) {
			r1 := th.Irecv(c, 0, 1)
			r2 := th.Irecv(c, 0, 2)
			// Waiting on r2 guarantees r1 completed too (same flow, FIFO
			// order), so the registration below is on a completed request.
			if err := th.Wait(r2); err != nil {
				t.Errorf("wait r2: %v", err)
			}
			order = append(order, "wait-r2")
			if !r1.Complete() {
				t.Error("r1 should have completed before r2's Wait returned")
			}
			r1.OnComplete(th, func(r *Request, err error) {
				fired++
				order = append(order, "continuation-r1")
			})
			order = append(order, "after-register")
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return fired, order
	}
	fired, order := run()
	if fired != 1 {
		t.Fatalf("late continuation fired %d times, want exactly 1", fired)
	}
	want := []string{"wait-r2", "continuation-r1", "after-register"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	fired2, order2 := run()
	if fired2 != fired || fmt.Sprint(order2) != fmt.Sprint(order) {
		t.Fatalf("nondeterministic continuation ordering: %v vs %v", order, order2)
	}
}

// TestOnCompleteErrorBeforeRecycle extends the PR-6 pool regression
// (TestFailedRequestIsNotPooled): a continuation on a poolable request
// that fails must observe the error code at dispatch, and the errored
// object must not be recycled — while a healthy fired request is.
func TestOnCompleteErrorBeforeRecycle(t *testing.T) {
	w := testWorld(t, 2, withProgress(ProgressContinuation))
	w.SetErrhandler(ErrorsReturn)
	p := w.Procs[0]

	for _, code := range []Errcode{ErrProcFailed, ErrTimeout} {
		bad := w.allocRequest()
		*bad = Request{p: p, kind: SendReq, dst: 1, poolable: true}
		p.outstanding++
		var sawErr error
		fired := 0
		bad.onComplete = func(r *Request, err error) {
			fired++
			sawErr = err
			if r.freed {
				t.Errorf("%v: continuation ran after free", code)
			}
		}
		bad.fail(code, 0)
		if fired != 1 {
			t.Fatalf("%v: continuation fired %d times, want 1", code, fired)
		}
		e, ok := sawErr.(*Error)
		if !ok || e.Code != code {
			t.Fatalf("continuation saw %v, want code %v", sawErr, code)
		}
		if !bad.freed {
			t.Fatalf("%v: fired request was not freed", code)
		}
		if w.reqFree != nil {
			t.Fatalf("%v: failed request was recycled into the pool", code)
		}
	}

	good := w.allocRequest()
	*good = Request{p: p, kind: SendReq, dst: 1, poolable: true}
	p.outstanding++
	fired := 0
	good.onComplete = func(r *Request, err error) {
		fired++
		if err != nil {
			t.Errorf("healthy continuation saw %v", err)
		}
	}
	good.markComplete(0)
	if fired != 1 {
		t.Fatalf("healthy continuation fired %d times, want 1", fired)
	}
	if w.reqFree != good {
		t.Fatal("healthy fired request was not recycled")
	}
}

// TestCompletionQueuePollWaitAny drains a mixed already-complete /
// pending batch through the public CompletionQueue API.
func TestCompletionQueuePollWaitAny(t *testing.T) {
	const msgs = 4
	w := testWorld(t, 2, withProgress(ProgressContinuation))
	c := w.Comm()
	drained := 0
	w.Spawn(0, "sender", func(th *Thread) {
		for tag := 0; tag < msgs; tag++ {
			th.Send(c, 1, tag, 64, tag)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		q := th.NewCompletionQueue()
		if q.Poll() != nil {
			t.Error("Poll on empty queue must return nil")
		}
		rs := make([]*Request, 0, msgs)
		for tag := 0; tag < msgs; tag++ {
			rs = append(rs, th.Irecv(c, 0, tag))
		}
		for _, r := range rs {
			q.Add(r)
		}
		for drained < msgs {
			r := q.WaitAny()
			if r.Data() == nil {
				t.Error("drained completion lost its payload")
			}
			drained++
		}
		if q.Len() != 0 || q.Poll() != nil {
			t.Error("queue should be empty after draining")
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if drained != msgs {
		t.Fatalf("drained %d completions, want %d", drained, msgs)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestProgressModeValidation: non-polling modes require a lock-taking
// thread level and the global granularity.
func TestProgressModeValidation(t *testing.T) {
	base := func() Config {
		return Config{Topo: machine.Nehalem2x4(2), Lock: simlock.KindTicket, Seed: 1}
	}
	cfg := base()
	cfg.Progress = ProgressStrong
	cfg.ThreadLevel = ThreadFunneled
	if _, err := NewWorld(cfg); err == nil {
		t.Fatal("strong progress below MPI_THREAD_MULTIPLE must be rejected")
	}
	cfg = base()
	cfg.Progress = ProgressContinuation
	cfg.Granularity = GranFine
	if _, err := NewWorld(cfg); err == nil {
		t.Fatal("continuation progress with GranFine must be rejected")
	}
	cfg = base()
	cfg.Progress = ProgressContinuation
	if _, err := NewWorld(cfg); err != nil {
		t.Fatalf("valid continuation config rejected: %v", err)
	}
}

// TestProgressModeDeterminism: each mode reproduces the identical final
// virtual time across two identically-seeded runs.
func TestProgressModeDeterminism(t *testing.T) {
	for _, m := range []ProgressMode{ProgressStrong, ProgressContinuation} {
		t.Run(m.String(), func(t *testing.T) {
			run := func() int64 {
				const msgs = 6
				w := testWorld(t, 2, withProgress(m), withVCIs(4, vci.PerTagHash))
				c := w.Comm()
				w.Spawn(0, "sender", func(th *Thread) {
					rs := make([]*Request, 0, msgs)
					for tag := 0; tag < msgs; tag++ {
						rs = append(rs, th.Isend(c, 1, tag, 256, tag))
					}
					if err := th.Waitall(rs); err != nil {
						t.Errorf("waitall: %v", err)
					}
				})
				w.Spawn(1, "receiver", func(th *Thread) {
					rs := make([]*Request, 0, msgs)
					for tag := 0; tag < msgs; tag++ {
						rs = append(rs, th.Irecv(c, 0, tag))
					}
					if err := th.Waitall(rs); err != nil {
						t.Errorf("waitall: %v", err)
					}
				})
				if err := w.Run(); err != nil {
					t.Fatal(err)
				}
				return w.Eng.Now()
			}
			t1, t2 := run(), run()
			if t1 != t2 {
				t.Fatalf("final virtual time diverged: %d vs %d", t1, t2)
			}
		})
	}
}
