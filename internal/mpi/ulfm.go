package mpi

// This file implements the ULFM-style recovery primitives on
// communicators: Revoke (in-band revocation interrupting blocked waits and
// collectives with ErrRevoked), Agree (a sim-time consensus over the
// surviving members) and Shrink (deterministic surviving-rank renumbering
// onto a fresh context). All three require the fault-tolerance plane
// (a configured crash schedule, see ft.go) and are single-threaded per
// process: at most one thread per rank may run them at a time, the way
// production recovery code funnels through one coordinator thread.

import (
	"fmt"

	"mpicontend/internal/fabric"
)

// agreeBase reserves a context range for the recovery protocol itself,
// disjoint from user contexts (>= 0) and collective shadows (collCtx - c).
// Agree and Shrink must keep working on a revoked communicator, so their
// traffic runs on agreeBase - c.ctx, which applyRevoke never marks.
const agreeBase = -1_000_000

// Tags of the recovery protocol messages.
const (
	tagAgreeContrib = 1
	tagAgreeResult  = 2
)

// revokeMeta travels with Revoke packets: the revoked user context plus
// the member world ranks (nil = the world communicator), so receivers can
// re-flood the revocation even if the initiator dies mid-broadcast.
type revokeMeta struct {
	ctx   int
	ranks []int
}

// agreeMsg is a participant's contribution to one Agree round.
type agreeMsg struct {
	flags uint64
}

// agreeResult is the root's decision, broadcast to every contributor.
type agreeResult struct {
	flags uint64
	// ctx is a fresh communicator context when the round was started by
	// Shrink, 0 otherwise.
	ctx int
	// survivors lists the contributing members as communicator-local
	// ranks of the original comm, ascending.
	survivors []int
}

// recoveryComm returns the shadow communicator the recovery protocol runs
// on: same group, reserved context, errors returned (never fatal) so the
// protocol can observe ErrProcFailed and route around it.
func (c *Comm) recoveryComm() *Comm {
	return &Comm{w: c.w, ctx: agreeBase - c.ctx, size: c.size, ranks: c.ranks,
		errhandler: ErrorsReturn, vcihint: c.vcihint}
}

// requireFT panics unless the fault-tolerance plane is armed.
func (th *Thread) requireFT(op string) {
	if th.P.ft == nil {
		panic("mpi: " + op + " requires the fault-tolerance plane (configure a crash schedule)")
	}
}

// Revoke marks the communicator revoked everywhere: locally at once, on
// every reachable member via an in-band Revoke packet. Revocation fails
// every in-flight request on the communicator (and its collective shadow)
// with ErrRevoked — interrupting peers blocked in Wait or a collective —
// and makes every later operation on it fail fast. Receivers re-flood the
// revocation, so it survives the initiator's own death mid-broadcast.
// Idempotent; like MPI_Comm_revoke it has no failure mode of its own.
func (th *Thread) Revoke(c *Comm) {
	th.requireFT("Revoke")
	p := th.P
	tel := th.telStart()
	th.BeginErrPath()
	th.mainBegin()
	if !p.ft.revoked[c.ctx] {
		p.w.ft.revokes++
		p.applyRevoke(c.ctx, th.S.Now())
		p.floodRevoke(c.ctx, c.ranks, c.size)
	}
	th.mainEnd()
	th.EndErrPath()
	th.telCall("Revoke", tel)
}

// Revoked reports whether this process has observed a revocation of c.
func (th *Thread) Revoked(c *Comm) bool {
	return th.P.ft != nil && th.P.ft.revoked[c.ctx]
}

// Failed returns the communicator-local ranks this process currently
// believes dead, ascending (the ULFM failure_ack/get_acked pair collapsed
// into one query — local knowledge, not consensus; peers may disagree
// until an Agree round). Nil without the fault-tolerance plane.
func (th *Thread) Failed(c *Comm) []int {
	ft := th.P.ft
	if ft == nil {
		return nil
	}
	var out []int
	for i := 0; i < c.size; i++ {
		if ft.isDead(c.world(i)) {
			out = append(out, i)
		}
	}
	return out
}

// applyRevoke records the revocation locally and fails every in-flight
// request on the revoked context or its collective shadow. Engine or CS
// context.
func (p *Proc) applyRevoke(ctx int, now int64) {
	p.ft.revoked[ctx] = true
	p.ft.revoked[collCtx-ctx] = true
	//simcheck:allow hotalloc revocation path, runs once per revoked context
	p.ft.sweep(now, func(r *Request) bool {
		return r.ctx == ctx || r.ctx == collCtx-ctx
	}, ErrRevoked)
	p.activity.WakeAll(now)
}

// floodRevoke sends a Revoke packet to every member not known dead. Sent
// through the reliable transport, so single losses cannot mask a
// revocation.
func (p *Proc) floodRevoke(ctx int, ranks []int, size int) {
	for i := 0; i < size; i++ {
		wr := i
		if ranks != nil {
			wr = ranks[i]
		}
		if wr == p.Rank || p.ft.isDead(wr) {
			continue
		}
		pkt := p.w.Fab.AllocPacket()
		*pkt = fabric.Packet{Kind: fabric.Revoke, Src: p.Rank, Dst: wr,
			Meta: revokeMeta{ctx: ctx, ranks: ranks}}
		p.send(pkt, false, nil)
	}
}

// Agree runs a fault-tolerant consensus over the communicator's surviving
// members (MPI_Comm_agree): every live member contributes flags, the
// result is their bitwise AND, and all survivors receive the same value —
// even on a revoked communicator, and even when members die mid-protocol.
// Returns ErrProcFailed only if consensus itself became impossible.
func (th *Thread) Agree(c *Comm, flags uint64) (uint64, error) {
	th.requireFT("Agree")
	tel := th.telStart()
	th.BeginErrPath()
	th.P.w.ft.agrees++
	res, err := th.agreeRound(c, flags, false)
	th.EndErrPath()
	th.telCall("Agree", tel)
	if err != nil {
		return 0, err
	}
	return res.flags, nil
}

// Shrink builds a new communicator over the surviving members
// (MPI_Comm_shrink): one Agree round determines the survivor set, the
// round's root allocates a fresh matching context, and every survivor
// renumbers deterministically — members keep their relative order, ranks
// compact to 0..n-1.
func (th *Thread) Shrink(c *Comm) (*Comm, error) {
	th.requireFT("Shrink")
	tel := th.telStart()
	th.BeginErrPath()
	th.P.w.ft.shrinks++
	res, err := th.agreeRound(c, ^uint64(0), true)
	th.EndErrPath()
	th.telCall("Shrink", tel)
	if err != nil {
		return nil, err
	}
	ranks := make([]int, len(res.survivors))
	for i, lr := range res.survivors {
		ranks[i] = c.world(lr)
	}
	return &Comm{w: c.w, ctx: res.ctx, size: len(ranks), ranks: ranks}, nil
}

// agreeRound is the consensus core shared by Agree and Shrink. The root is
// the lowest member this process believes alive; it collects one
// contribution from every member it believes alive, ANDs the flags,
// optionally allocates a fresh context (Shrink), and replies to every
// contributor. Non-roots contribute and wait for the decision; when the
// root dies mid-protocol (ErrProcFailed), they recompute the root from
// their updated failure knowledge and retry — detection latency bounds
// every retry.
func (th *Thread) agreeRound(c *Comm, flags uint64, freshCtx bool) (agreeResult, error) {
	p := th.P
	rc := c.recoveryComm()
	me := c.Rank(th)
	if me < 0 {
		panic("mpi: Agree/Shrink by non-member")
	}
	for {
		root := -1
		for i := 0; i < c.size; i++ {
			if !p.ft.isDead(c.world(i)) {
				root = i
				break
			}
		}
		if root < 0 {
			return agreeResult{}, &Error{Code: ErrProcFailed,
				Detail: fmt.Sprintf("agree on ctx %d: no live members", c.ctx)}
		}
		if root == me {
			return th.agreeRoot(c, rc, me, flags, freshCtx)
		}
		if err := th.sendE(rc, root, tagAgreeContrib, 8, agreeMsg{flags: flags}); err != nil {
			if isProcFailed(err) {
				continue // root died before hearing us: re-elect
			}
			return agreeResult{}, err
		}
		v, err := th.recvE(rc, root, tagAgreeResult)
		if err != nil {
			if isProcFailed(err) {
				continue // root died before deciding: re-elect
			}
			return agreeResult{}, err
		}
		return v.(agreeResult), nil
	}
}

// agreeRoot runs the root side of one consensus round.
func (th *Thread) agreeRoot(c *Comm, rc *Comm, me int, flags uint64, freshCtx bool) (agreeResult, error) {
	p := th.P
	res := agreeResult{flags: flags, survivors: []int{me}}
	for i := 0; i < c.size; i++ {
		if i == me || p.ft.isDead(c.world(i)) {
			continue
		}
		v, err := th.recvE(rc, i, tagAgreeContrib)
		if err != nil {
			if isProcFailed(err) {
				continue // the member died; it is simply not a survivor
			}
			return agreeResult{}, err
		}
		res.flags &= v.(agreeMsg).flags
		res.survivors = append(res.survivors, i)
	}
	sortInts(res.survivors)
	if freshCtx {
		res.ctx = p.w.allocCtx()
	}
	for _, i := range res.survivors {
		if i == me {
			continue
		}
		if err := th.sendE(rc, i, tagAgreeResult, 16, res); err != nil && !isProcFailed(err) {
			return agreeResult{}, err
		}
		// A survivor that died after contributing is unreachable; its
		// ErrProcFailed is ignored — a later Shrink round excludes it.
	}
	return res, nil
}

// sendE is a blocking send that returns the request's error (the caller's
// communicator must use ErrorsReturn for a non-panicking error path).
func (th *Thread) sendE(c *Comm, dst, tag int, bytes int64, payload interface{}) error {
	return th.Wait(th.Isend(c, dst, tag, bytes, payload))
}

// recvE is a blocking receive returning the payload or the request error.
func (th *Thread) recvE(c *Comm, src, tag int) (interface{}, error) {
	r := th.Irecv(c, src, tag)
	if err := th.Wait(r); err != nil {
		return nil, err
	}
	return r.payload, nil
}

// sendrecvE is Sendrecv with error propagation: both requests are always
// waited for; the first error is returned.
func (th *Thread) sendrecvE(c *Comm, dst, dtag int, bytes int64, payload interface{},
	src, stag int) (interface{}, error) {
	rr := th.Irecv(c, src, stag)
	sr := th.Isend(c, dst, dtag, bytes, payload)
	if err := th.Waitall([]*Request{sr, rr}); err != nil {
		return nil, err
	}
	return rr.payload, nil
}

// isProcFailed reports whether err is an ErrProcFailed request error.
func isProcFailed(err error) bool {
	e, ok := err.(*Error)
	return ok && e.Code == ErrProcFailed
}

// isRevoked reports whether err is an ErrRevoked request error.
func isRevoked(err error) bool {
	e, ok := err.(*Error)
	return ok && e.Code == ErrRevoked
}

// sortInts sorts ascending (tiny slices; avoids pulling sort into the
// protocol hot path signature).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// collCheck is the collective-entry liveness and revocation check: a
// collective over a communicator with a revoked context fails with
// ErrRevoked, one with a member this process believes dead fails with
// ErrProcFailed — failing fast instead of hanging in a dissemination
// round that can never complete. Nil without the fault-tolerance plane.
func (c *Comm) collCheck(th *Thread) error {
	ft := th.P.ft
	if ft == nil {
		return nil
	}
	if ft.revoked[c.ctx] {
		return &Error{Code: ErrRevoked,
			Detail: fmt.Sprintf("collective on revoked comm ctx %d", c.ctx)}
	}
	for i := 0; i < c.size; i++ {
		if wr := c.world(i); ft.isDead(wr) {
			return &Error{Code: ErrProcFailed,
				Detail: fmt.Sprintf("collective on ctx %d: rank %d (world %d) failed", c.ctx, i, wr)}
		}
	}
	return nil
}
