package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mpicontend/internal/fault"
)

// withCrash is a testWorld option scheduling fail-stop crashes.
func withCrash(specs ...fault.CrashSpec) func(*Config) {
	return func(c *Config) { c.Fault = fault.Config{Crashes: specs} }
}

func errCode(t *testing.T, err error, want Errcode) {
	t.Helper()
	var merr *Error
	if !errors.As(err, &merr) || merr.Code != want {
		t.Fatalf("want %v, got %v", want, err)
	}
}

func TestCrashDetectedAndSendsFail(t *testing.T) {
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 1, AtNs: 150_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var sendErr error
	w.Spawn(0, "sender", func(th *Thread) {
		for i := 0; ; i++ {
			if err := th.Wait(th.Isend(c, 1, 7, 64, i)); err != nil {
				sendErr = err
				return
			}
			th.S.Sleep(20_000)
		}
	})
	w.Spawn(1, "victim", func(th *Thread) {
		for {
			th.Recv(c, 0, 7)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, sendErr, ErrProcFailed)
	rec := w.Recovery()
	if len(rec.Crashed) != 1 || rec.Crashed[0] != 1 {
		t.Fatalf("crashed ranks: %v", rec.Crashed)
	}
	if rec.FirstCrashNs != 150_000 {
		t.Fatalf("crash time: %d", rec.FirstCrashNs)
	}
	// Detection is bounded by the heartbeat timeout (100µs x 3) plus one
	// period of staleness-check granularity and wire latency.
	if rec.DetectNs <= 0 || rec.DetectNs > 600_000 {
		t.Fatalf("detection latency out of bounds: %d", rec.DetectNs)
	}
	if w.FaultPlane().Stats().Crashes != 1 {
		t.Fatalf("crash not counted: %v", w.FaultPlane().Stats())
	}
}

func TestCrashMidRendezvousAbortsInsteadOfRetrying(t *testing.T) {
	// The victim is already dead (but not yet detected) when the RTS goes
	// out: the blackholed packet is never acknowledged and retransmits —
	// until the detector declares the peer dead and the transport aborts
	// the record (dead-peer check) instead of burning retries to
	// exhaustion.
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 1, AtNs: 20_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	big := w.Cfg.Cost.EagerThreshold * 4
	var sendErr error
	w.Spawn(0, "sender", func(th *Thread) {
		th.S.Sleep(50_000) // the victim is dead but not yet detected
		sendErr = th.Wait(th.Isend(c, 1, 1, big, "doomed"))
	})
	w.Spawn(1, "victim", func(th *Thread) {
		th.S.Sleep(5_000_000) // sleeps through its own crash
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, sendErr, ErrProcFailed)
	rec := w.Recovery()
	if rec.DeadAborts == 0 {
		t.Fatalf("transport kept retrying into the dead rank: %+v", rec)
	}
	if w.NetStats().GiveUps != 0 {
		t.Fatalf("dead-peer abort must preempt retry exhaustion: %v", w.NetStats())
	}
}

func TestRevokeInterruptsBlockedWait(t *testing.T) {
	// The crash is scheduled far beyond the run, arming the FT plane
	// without ever firing.
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 0, AtNs: 1_000_000_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var waitErr error
	var revokedSeen bool
	w.Spawn(1, "blocked", func(th *Thread) {
		waitErr = th.Wait(th.Irecv(c, 0, 9)) // nobody ever sends
		revokedSeen = th.Revoked(c)
	})
	w.Spawn(0, "revoker", func(th *Thread) {
		th.S.Sleep(100_000)
		th.Revoke(c)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, waitErr, ErrRevoked)
	if !revokedSeen {
		t.Fatal("revocation not visible on the remote rank")
	}
	if rec := w.Recovery(); rec.Revokes != 1 {
		t.Fatalf("revoke not counted: %+v", rec)
	}
}

func TestRevokeInterruptsBlockedCollective(t *testing.T) {
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 0, AtNs: 1_000_000_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var collErr error
	w.Spawn(1, "blocked", func(th *Thread) {
		collErr = th.BarrierErr(c) // rank 0 never enters
	})
	w.Spawn(0, "revoker", func(th *Thread) {
		th.S.Sleep(100_000)
		th.Revoke(c)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, collErr, ErrRevoked)
}

// waitForFailure polls this process's local failure knowledge until it
// sees at least one dead member.
func waitForFailure(th *Thread, c *Comm) {
	for len(th.Failed(c)) == 0 {
		th.S.Sleep(10_000)
	}
}

func TestShrinkAndAgreeAfterCrash(t *testing.T) {
	w := testWorld(t, 4, withCrash(fault.CrashSpec{Rank: 2, AtNs: 100_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	newRank := map[int]int{}
	newSize := map[int]int{}
	sums := map[int]int64{}
	agreed := map[int]uint64{}
	for rank := 0; rank < 4; rank++ {
		rank := rank
		w.Spawn(rank, "worker", func(th *Thread) {
			if rank == 2 {
				for {
					th.Recv(c, 0, 9) // blocks until the crash
				}
			}
			waitForFailure(th, c)
			th.Revoke(c)
			sh, err := th.Shrink(c)
			if err != nil {
				t.Errorf("rank %d shrink: %v", rank, err)
				return
			}
			newRank[rank] = sh.Rank(th)
			newSize[rank] = sh.Size()
			sum, err := th.AllreduceSumErr(sh, int64(rank))
			if err != nil {
				t.Errorf("rank %d allreduce on shrunk comm: %v", rank, err)
				return
			}
			sums[rank] = sum
			// Agree still works on the original, revoked communicator.
			v, err := th.Agree(c, 0xF0|uint64(1)<<uint(rank))
			if err != nil {
				t.Errorf("rank %d agree: %v", rank, err)
				return
			}
			agreed[rank] = v
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 0, 1: 1, 3: 2} // survivors renumber, order kept
	for r, nr := range want {
		if newRank[r] != nr {
			t.Errorf("world rank %d: shrunk rank %d, want %d", r, newRank[r], nr)
		}
		if newSize[r] != 3 {
			t.Errorf("world rank %d: shrunk size %d, want 3", r, newSize[r])
		}
		if sums[r] != 0+1+3 {
			t.Errorf("world rank %d: allreduce sum %d, want 4", r, sums[r])
		}
		// AND over survivors' flags: the common 0xF0 plus nothing else.
		if agreed[r] != 0xF0 {
			t.Errorf("world rank %d: agree value %#x, want 0xF0", r, agreed[r])
		}
	}
	rec := w.Recovery()
	if rec.Shrinks != 3 || rec.Agrees != 3 {
		t.Errorf("recovery counters: %+v", rec)
	}
	if rec.ErrPathLocks == 0 {
		t.Errorf("recovery code acquired no locks on the error path: %+v", rec)
	}
}

func TestCrashOnLockHoldStrandsLocalWaiters(t *testing.T) {
	// The victim dies at its first critical-section acquisition after AtNs,
	// holding the lock: its second thread is stranded forever, and the
	// survivor must still detect the failure and finish.
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 1, AtNs: 50_000, OnLockHold: true}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var sendErr error
	w.Spawn(0, "sender", func(th *Thread) {
		for i := 0; ; i++ {
			if err := th.Wait(th.Isend(c, 1, 7, 64, i)); err != nil {
				sendErr = err
				return
			}
			th.S.Sleep(20_000)
		}
	})
	for i := 0; i < 2; i++ {
		w.Spawn(1, "victim", func(th *Thread) {
			for {
				th.Recv(c, 0, 7)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, sendErr, ErrProcFailed)
	rec := w.Recovery()
	if len(rec.Crashed) != 1 || rec.Crashed[0] != 1 {
		t.Fatalf("crashed ranks: %v", rec.Crashed)
	}
	if rec.FirstCrashNs < 50_000 {
		t.Fatalf("lock-hold crash fired before its arm time: %d", rec.FirstCrashNs)
	}
}

func TestNodeCrashKillsColocatedRanks(t *testing.T) {
	// Two ranks per node: a node-scope crash of rank 2 takes rank 3 with it.
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 2, AtNs: 100_000, Node: true}),
		func(c *Config) { c.ProcsPerNode = 2 })
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	errs := map[int]error{}
	for rank := 0; rank < 4; rank++ {
		rank := rank
		w.Spawn(rank, "worker", func(th *Thread) {
			if rank >= 2 {
				for {
					th.Recv(c, 0, 9)
				}
			}
			peer := rank + 2 // 0 -> 2, 1 -> 3
			for i := 0; ; i++ {
				if err := th.Wait(th.Isend(c, peer, 7, 64, i)); err != nil {
					errs[rank] = err
					return
				}
				th.S.Sleep(20_000)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, errs[0], ErrProcFailed)
	errCode(t, errs[1], ErrProcFailed)
	rec := w.Recovery()
	if len(rec.Crashed) != 2 || rec.Crashed[0] != 2 || rec.Crashed[1] != 3 {
		t.Fatalf("node crash must kill both colocated ranks: %v", rec.Crashed)
	}
}

func TestCollectiveAgainstSilentPeerTimesOut(t *testing.T) {
	// Satellite regression: a collective whose peer never participates must
	// surface ErrTimeout through the per-request deadline — not hang. No
	// crash is scheduled; this is the pre-FT deadline path.
	w := testWorld(t, 2, withFault(fault.Config{
		DropProb: 0.001, RequestTimeoutNs: 200_000,
	}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	var collErr error
	w.Spawn(0, "barrier", func(th *Thread) {
		collErr = th.BarrierErr(c)
	})
	w.Spawn(1, "silent", func(th *Thread) {
		th.S.Sleep(1_000_000) // never enters the barrier
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, collErr, ErrTimeout)
}

func TestErrVariantCollectivesMatchValueAPI(t *testing.T) {
	// On a healthy world the Err variants must compute the same results as
	// the value-returning collectives they shadow.
	w := testWorld(t, 4)
	c := w.Comm()
	sums := make([]int64, 4)
	maxs := make([]int64, 4)
	mins := make([]int64, 4)
	for rank := 0; rank < 4; rank++ {
		rank := rank
		w.Spawn(rank, "worker", func(th *Thread) {
			if err := th.BarrierErr(c); err != nil {
				t.Errorf("rank %d barrier: %v", rank, err)
			}
			v := int64(rank + 1)
			var err error
			if sums[rank], err = th.AllreduceSumErr(c, v); err != nil {
				t.Errorf("rank %d sum: %v", rank, err)
			}
			if maxs[rank], err = th.AllreduceMaxErr(c, v); err != nil {
				t.Errorf("rank %d max: %v", rank, err)
			}
			if mins[rank], err = th.AllreduceMinErr(c, v); err != nil {
				t.Errorf("rank %d min: %v", rank, err)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if sums[r] != 10 || maxs[r] != 4 || mins[r] != 1 {
			t.Errorf("rank %d: sum=%d max=%d min=%d", r, sums[r], maxs[r], mins[r])
		}
	}
}

func TestCrashyRunDeterministic(t *testing.T) {
	run := func() (int64, string, NetStats) {
		w := testWorld(t, 4, withCrash(fault.CrashSpec{Rank: 2, AtNs: 100_000}))
		w.SetErrhandler(ErrorsReturn)
		c := w.Comm()
		for rank := 0; rank < 4; rank++ {
			rank := rank
			w.Spawn(rank, "worker", func(th *Thread) {
				if rank == 2 {
					for {
						th.Recv(c, 0, 9)
					}
				}
				waitForFailure(th, c)
				th.Revoke(c)
				sh, err := th.Shrink(c)
				if err != nil {
					t.Errorf("shrink: %v", err)
					return
				}
				if _, err := th.AllreduceSumErr(sh, int64(rank)); err != nil {
					t.Errorf("allreduce: %v", err)
				}
			})
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		rec := w.Recovery()
		if len(rec.Crashed) != 1 {
			t.Fatalf("crashed: %v", rec.Crashed)
		}
		return w.Eng.Now(), fmt.Sprintf("%+v", rec), w.NetStats()
	}
	t1, r1, s1 := run()
	t2, r2, s2 := run()
	if t1 != t2 {
		t.Fatalf("final virtual time diverged: %d vs %d", t1, t2)
	}
	if r1 != r2 {
		t.Fatalf("recovery stats diverged:\n%s\n%s", r1, r2)
	}
	if s1 != s2 {
		t.Fatalf("net stats diverged:\n%v\n%v", s1, s2)
	}
}

func TestFailedRequestIsNotPooled(t *testing.T) {
	// Satellite regression for the request pool: a failed request must
	// never be recycled, even when marked poolable — late protocol events
	// (a straggling ack, a retransmit timer) may still reference it, and
	// recycling would hand its memory to an unrelated operation.
	w := testWorld(t, 2)
	w.SetErrhandler(ErrorsReturn)
	p := w.Procs[0]

	bad := w.allocRequest()
	*bad = Request{p: p, kind: SendReq, dst: 1, poolable: true}
	p.outstanding++
	bad.fail(ErrProcFailed, 0)
	bad.free()
	if err := bad.release(); err == nil {
		t.Fatal("release must surface the failure")
	}
	if w.reqFree != nil {
		t.Fatal("failed request was recycled into the pool")
	}

	good := w.allocRequest()
	*good = Request{p: p, kind: SendReq, dst: 1, poolable: true}
	p.outstanding++
	good.markComplete(0)
	good.free()
	if err := good.release(); err != nil {
		t.Fatal(err)
	}
	if w.reqFree != good {
		t.Fatal("healthy poolable request was not recycled")
	}
}

func TestErrcodeStringExhaustive(t *testing.T) {
	// Satellite: every error class must stringify as an MPI constant; the
	// default case is reserved for out-of-range values.
	for c := ErrSuccess; c < errcodeEnd; c++ {
		if s := c.String(); strings.HasPrefix(s, "Errcode(") {
			t.Errorf("Errcode %d has no String case: %q", int(c), s)
		}
	}
	if s := errcodeEnd.String(); !strings.HasPrefix(s, "Errcode(") {
		t.Errorf("sentinel must hit the default case, got %q", s)
	}
}

// TestPartitionedCrashSendSide: the receiver dies while the sender keeps
// opening partitioned epochs. An epoch injected before detection completes
// locally (TxDone semantics, like an eager send), but once the failure
// detector declares the peer dead the next Pstart fails at issue and Pwait
// surfaces ErrProcFailed. The errored inner request must not be eligible
// for pooling — the Prequest keeps reading it afterwards.
func TestPartitionedCrashSendSide(t *testing.T) {
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 1, AtNs: 150_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	const parts = 8
	var waitErr error
	var inner *Request
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 7, parts, 64, "doomed")
		for {
			th.Pstart(ps)
			inner = ps.Request()
			if err := th.PreadyRange(ps, 0, parts); err != nil {
				t.Errorf("PreadyRange: %v", err)
				return
			}
			if waitErr = th.Pwait(ps); waitErr != nil {
				return
			}
			th.S.Sleep(20_000)
		}
	})
	w.Spawn(1, "victim", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 7, parts, 64)
		for {
			th.Pstart(pr)
			if th.Pwait(pr) != nil {
				return
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, waitErr, ErrProcFailed)
	if inner.poolable {
		t.Fatal("partitioned inner request marked poolable: the pool would reclaim it under the live Prequest")
	}
	if w.FaultPlane().Stats().Crashes != 1 {
		t.Fatalf("crash not counted: %v", w.FaultPlane().Stats())
	}
}

// TestPartitionedCrashRecvSide: the sender dies before triggering its
// epoch. The posted partitioned receive is withdrawn by failure
// notification, Parrived surfaces ErrProcFailed (instead of spinning
// forever on a dead peer), Pwait agrees, and the errored inner request is
// not pooled.
func TestPartitionedCrashRecvSide(t *testing.T) {
	w := testWorld(t, 2, withCrash(fault.CrashSpec{Rank: 0, AtNs: 30_000}))
	w.SetErrhandler(ErrorsReturn)
	c := w.Comm()
	const parts = 8
	var probeErr, waitErr error
	var inner *Request
	w.Spawn(0, "victim", func(th *Thread) {
		ps := th.PsendInit(c, 1, 7, parts, 64, "never-sent")
		th.Pstart(ps)
		// Ready only half the epoch, then die before the trigger.
		if err := th.PreadyRange(ps, 0, parts/2); err != nil {
			t.Errorf("PreadyRange: %v", err)
		}
		for {
			th.S.Sleep(10_000)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 7, parts, 64)
		th.Pstart(pr)
		inner = pr.Request()
		for {
			arrived, err := th.Parrived(pr, 0)
			if err != nil {
				probeErr = err
				break
			}
			if arrived {
				t.Error("partition arrived from a sender that never triggered")
				break
			}
			th.S.Sleep(5_000)
		}
		waitErr = th.Pwait(pr)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	errCode(t, probeErr, ErrProcFailed)
	errCode(t, waitErr, ErrProcFailed)
	if inner.poolable {
		t.Fatal("partitioned inner request marked poolable: the pool would reclaim it under the live Prequest")
	}
}
