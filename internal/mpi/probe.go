package mpi

import (
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// Status describes a matched or probed message.
type Status struct {
	Source int
	Tag    int
	Bytes  int64
}

// Iprobe checks, without receiving, whether a message matching (src, tag)
// is available (posted in the unexpected queue after one progress poll).
// Like MPI_Iprobe it is an immediate call: under the priority lock it runs
// at high priority. Related work (§8, Hoefler et al.) discusses why
// probe+recv is inherently racy with multiple threads — that race exists
// here too, by design: another thread may consume the probed message
// before this thread posts its receive.
func (th *Thread) Iprobe(c *Comm, src, tag int) (Status, bool) {
	var st Status
	found := false
	p := th.P
	if p.numVCI() > 1 {
		if p.vciWildcard(tag) {
			// Cross-VCI probe: poll every shard, then report the earliest
			// matching arrival across all unexpected queues under all
			// shard locks (the same order a single queue would give).
			for v := 0; v < p.numVCI(); v++ {
				th.progressRoundVCI(v, simlock.High, nil)
			}
			var bestAt sim.Time
			th.wildBegin()
			for _, sh := range p.vcis {
				for _, e := range sh.unexp {
					if e.matches(src, tag, c.ctx) {
						if !found || e.arrivedAt < bestAt {
							st = Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
							bestAt = e.arrivedAt
							found = true
						}
						break
					}
				}
			}
			th.wildEnd()
			return st, found
		}
		v := p.selectVCI(c, tag)
		th.progressRoundVCI(v, simlock.High, func() {
			for _, e := range p.vcis[v].unexp {
				if e.matches(src, tag, c.ctx) {
					st = Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
					found = true
					break
				}
			}
		})
		return st, found
	}
	th.progressRound(simlock.High, func() {
		for _, e := range p.vcis[0].unexp {
			if e.matches(src, tag, c.ctx) {
				st = Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
				found = true
				break
			}
		}
	})
	return st, found
}

// Probe blocks until a matching message is available and returns its
// status, without receiving it.
func (th *Thread) Probe(c *Comm, src, tag int) Status {
	th.pollBackoff = 0
	for {
		if st, ok := th.Iprobe(c, src, tag); ok {
			return st
		}
		th.progressYield()
	}
}

// Waitany blocks until one of the requests completes, frees it, and
// returns its index. It panics on an empty slice.
func (th *Thread) Waitany(rs []*Request) int {
	if len(rs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	cost := th.cost()
	idx := -1
	check := func() {
		for i, r := range rs {
			if r != nil && r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				idx = i
				return
			}
		}
	}
	if th.P.numVCI() > 1 {
		// Free the first already-completed request under its own shard's
		// state section (a fixed shard-0 sweep would serialize callers on
		// one lock regardless of where their requests live).
		for i, r := range rs {
			if r != nil && r.complete && !r.freed {
				v := reqShard(r)
				th.stateBeginVCI(v, simlock.High)
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				th.stateEndVCI(v, simlock.High)
				return i
			}
		}
		th.pollBackoff = 0
		shards := make(shardSet, th.P.numVCI())
		for {
			if !shards.gather(rs) {
				shards[0] = true
			}
			for v := range shards {
				if !shards[v] {
					continue
				}
				th.progressRoundVCI(v, simlock.Low, check)
				if idx >= 0 {
					return idx
				}
			}
			th.progressYield()
		}
	}
	th.stateBegin(simlock.High)
	check()
	th.stateEnd(simlock.High)
	if idx >= 0 {
		return idx
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, check)
		if idx >= 0 {
			return idx
		}
		th.progressYield()
	}
}

// Waitsome blocks until at least one request completes, frees all the
// completed ones, and returns their indices.
func (th *Thread) Waitsome(rs []*Request) []int {
	cost := th.cost()
	var done []int
	reap := func() {
		for i, r := range rs {
			if r != nil && r.complete && !r.freed {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				done = append(done, i)
			}
		}
	}
	if th.P.numVCI() > 1 {
		// Reap already-completed requests shard by shard under their own
		// state sections (see sweepDone); done holds rs indices in
		// shard-major order.
		th.sweepDone(rs, func(i int, r *Request) {
			th.S.Sleep(cost.RequestFreeWork)
			r.free()
			done = append(done, i)
		})
		if len(done) > 0 {
			return done
		}
		th.pollBackoff = 0
		shards := make(shardSet, th.P.numVCI())
		for {
			if !shards.gather(rs) {
				shards[0] = true
			}
			for v := range shards {
				if !shards[v] {
					continue
				}
				th.progressRoundVCI(v, simlock.Low, reap)
				if len(done) > 0 {
					return done
				}
			}
			th.progressYield()
		}
	}
	th.stateBegin(simlock.High)
	reap()
	th.stateEnd(simlock.High)
	if len(done) > 0 {
		return done
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, reap)
		if len(done) > 0 {
			return done
		}
		th.progressYield()
	}
}
