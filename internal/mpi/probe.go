package mpi

import "mpicontend/internal/simlock"

// Status describes a matched or probed message.
type Status struct {
	Source int
	Tag    int
	Bytes  int64
}

// Iprobe checks, without receiving, whether a message matching (src, tag)
// is available (posted in the unexpected queue after one progress poll).
// Like MPI_Iprobe it is an immediate call: under the priority lock it runs
// at high priority. Related work (§8, Hoefler et al.) discusses why
// probe+recv is inherently racy with multiple threads — that race exists
// here too, by design: another thread may consume the probed message
// before this thread posts its receive.
func (th *Thread) Iprobe(c *Comm, src, tag int) (Status, bool) {
	var st Status
	found := false
	th.progressRound(simlock.High, func() {
		for _, e := range th.P.unexp {
			if e.matches(src, tag, c.ctx) {
				st = Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
				found = true
				break
			}
		}
	})
	return st, found
}

// Probe blocks until a matching message is available and returns its
// status, without receiving it.
func (th *Thread) Probe(c *Comm, src, tag int) Status {
	th.pollBackoff = 0
	for {
		if st, ok := th.Iprobe(c, src, tag); ok {
			return st
		}
		th.progressYield()
	}
}

// Waitany blocks until one of the requests completes, frees it, and
// returns its index. It panics on an empty slice.
func (th *Thread) Waitany(rs []*Request) int {
	if len(rs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	cost := th.cost()
	idx := -1
	check := func() {
		for i, r := range rs {
			if r != nil && r.complete {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				idx = i
				return
			}
		}
	}
	th.stateBegin(simlock.High)
	check()
	th.stateEnd(simlock.High)
	if idx >= 0 {
		return idx
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, check)
		if idx >= 0 {
			return idx
		}
		th.progressYield()
	}
}

// Waitsome blocks until at least one request completes, frees all the
// completed ones, and returns their indices.
func (th *Thread) Waitsome(rs []*Request) []int {
	cost := th.cost()
	var done []int
	reap := func() {
		for i, r := range rs {
			if r != nil && r.complete && !r.freed {
				th.S.Sleep(cost.RequestFreeWork)
				r.free()
				done = append(done, i)
			}
		}
	}
	th.stateBegin(simlock.High)
	reap()
	th.stateEnd(simlock.High)
	if len(done) > 0 {
		return done
	}
	th.pollBackoff = 0
	for {
		th.progressRound(simlock.Low, reap)
		if len(done) > 0 {
			return done
		}
		th.progressYield()
	}
}
