package mpi

// The property tests here check the lock-free readiness bitmap against a
// deliberately naive mutex-guarded reference model, driven by explicitly
// seeded rand interleavings — the oracle is test scaffolding on the host,
// never simulation state, and every seed is pinned in the test table.
//
//simcheck:allow-file nodeterm property-test interleavings come from explicitly seeded generators
//simcheck:allow-file nogoroutine the mutex-guarded oracle is the reference model under test, not runtime state

import (
	"math/rand"
	"sync"
	"testing"

	"mpicontend/internal/mpi/vci"
)

// TestPartitionedRoundTrip sends one partitioned epoch: every partition is
// marked ready lock-free, exactly one trigger fires, and the receiver sees
// the aggregate.
func TestPartitionedRoundTrip(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	const parts = 8
	payload := make([]float64, parts)
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 7, parts, 64, payload)
		th.Pstart(ps)
		for i := 0; i < parts; i++ {
			if err := th.Pready(ps, i); err != nil {
				t.Errorf("Pready(%d): %v", i, err)
			}
		}
		if err := th.Pwait(ps); err != nil {
			t.Errorf("Pwait(send): %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 7, parts, 64)
		th.Pstart(pr)
		if err := th.Pwait(pr); err != nil {
			t.Errorf("Pwait(recv): %v", err)
		}
		got = pr.Data()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got.([]float64)) != parts {
		t.Fatalf("aggregate lost: %v", got)
	}
	s := w.PartStats()
	if s.PreadyTrigger != 1 {
		t.Fatalf("triggers = %d, want exactly 1", s.PreadyTrigger)
	}
	if s.PreadyFast != parts-1 {
		t.Fatalf("lock-free Preadys = %d, want %d", s.PreadyFast, parts-1)
	}
	if s.Aggregates != 1 || s.Partitions != parts {
		t.Fatalf("aggregation = %d transfers / %d partitions, want 1/%d", s.Aggregates, s.Partitions, parts)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
	if w.DanglingNow() != 0 {
		t.Fatalf("dangling requests leaked: %d", w.DanglingNow())
	}
}

// TestPartitionedPersistentEpochs reuses one Psend/Precv pair across
// several epochs: one trigger and one aggregate per epoch.
func TestPartitionedPersistentEpochs(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	const parts, epochs = 5, 4
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 3, parts, 128, "aggregate")
		for e := 0; e < epochs; e++ {
			th.Pstart(ps)
			if err := th.PreadyRange(ps, 0, parts); err != nil {
				t.Errorf("epoch %d PreadyRange: %v", e, err)
			}
			if err := th.Pwait(ps); err != nil {
				t.Errorf("epoch %d Pwait: %v", e, err)
			}
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 3, parts, 128)
		for e := 0; e < epochs; e++ {
			th.Pstart(pr)
			if err := th.Pwait(pr); err != nil {
				t.Errorf("epoch %d Pwait(recv): %v", e, err)
			}
			if pr.Data() != "aggregate" {
				t.Errorf("epoch %d payload: %v", e, pr.Data())
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	s := w.PartStats()
	if s.PreadyTrigger != epochs || s.Aggregates != epochs {
		t.Fatalf("triggers=%d aggregates=%d, want %d each", s.PreadyTrigger, s.Aggregates, epochs)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedUnexpected lets the whole epoch arrive before the Precv
// is started: the arrivals accumulate in the partitioned unexpected queue
// and the late Pstart completes immediately off the sealed envelope.
func TestPartitionedUnexpected(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm()
	const parts = 4
	var got interface{}
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 9, parts, 32, 42)
		th.Pstart(ps)
		if err := th.PreadyRange(ps, 0, parts); err != nil {
			t.Errorf("PreadyRange: %v", err)
		}
		if err := th.Pwait(ps); err != nil {
			t.Errorf("Pwait: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		th.S.Sleep(1_000_000) // aggregate lands before the Precv starts
		pr := th.PrecvInit(c, 0, 9, parts, 32)
		th.Pstart(pr)
		if err := th.Pwait(pr); err != nil {
			t.Errorf("Pwait(recv): %v", err)
		}
		got = pr.Data()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedContinuation integrates the inner request with OnComplete
// continuations: the callback fires exactly once per epoch under the
// continuation progress mode.
func TestPartitionedContinuation(t *testing.T) {
	w := testWorld(t, 2, func(cfg *Config) {
		cfg.ThreadLevel = ThreadMultiple
		cfg.Progress = ProgressContinuation
	})
	c := w.Comm()
	const parts = 6
	fired := 0
	w.Spawn(0, "sender", func(th *Thread) {
		ps := th.PsendInit(c, 1, 5, parts, 64, "cont")
		th.Pstart(ps)
		for i := parts - 1; i >= 0; i-- { // reverse order: last Pready still triggers
			if err := th.Pready(ps, i); err != nil {
				t.Errorf("Pready(%d): %v", i, err)
			}
		}
		if err := th.Pwait(ps); err != nil {
			t.Errorf("Pwait: %v", err)
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		pr := th.PrecvInit(c, 0, 5, parts, 64)
		th.Pstart(pr)
		done := false
		pr.Request().OnComplete(th, func(r *Request, err error) {
			fired++
			if err != nil {
				t.Errorf("continuation error: %v", err)
			}
			done = true
		})
		for !done {
			th.S.Sleep(1000)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("continuation fired %d times, want 1", fired)
	}
}

// refReadiness is the property-test reference: a naive mutex-guarded bool
// slice with the same contract as partBitmap.setRange (no mutation on
// overlap, trigger on the count reaching full).
type refReadiness struct {
	mu       sync.Mutex
	set      []bool
	count    int
	triggers int
}

func (rf *refReadiness) ready(lo, hi int) (already, trigger bool) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	for i := lo; i < hi; i++ {
		if rf.set[i] {
			return true, false
		}
	}
	for i := lo; i < hi; i++ {
		rf.set[i] = true
	}
	rf.count += hi - lo
	if rf.count == len(rf.set) {
		rf.triggers++
		return false, true
	}
	return false, false
}

func (rf *refReadiness) reset(n int) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.set = make([]bool, n)
	rf.count = 0
}

// TestPartBitmapFuzz drives the readiness bitmap directly against the
// reference with random Pready/PreadyRange/get interleavings: same
// already/trigger verdicts on every op, same membership on every probe,
// and trigger exactly once per epoch (word-boundary partition counts
// included).
func TestPartBitmapFuzz(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 63, 64, 65, 12345} {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(200)
		if seed >= 63 && seed <= 65 {
			parts = int(seed) // pin word-boundary sizes
		}
		var b partBitmap
		ref := &refReadiness{}
		for epoch := 0; epoch < 3; epoch++ {
			b.reset(parts)
			ref.reset(parts)
			triggers := 0
			for ref.count < parts {
				lo := rng.Intn(parts)
				hi := lo + 1 + rng.Intn(parts-lo)
				if rng.Intn(2) == 0 {
					hi = lo + 1 // singleton Pready
				}
				ga, gt := b.setRange(lo, hi)
				wa, wt := ref.ready(lo, hi)
				if ga != wa || gt != wt {
					t.Fatalf("seed %d parts %d [%d,%d): got (already=%v trigger=%v) want (%v %v)",
						seed, parts, lo, hi, ga, gt, wa, wt)
				}
				if gt {
					triggers++
				}
				i := rng.Intn(parts)
				if b.get(i) != ref.set[i] {
					t.Fatalf("seed %d: membership diverged at %d", seed, i)
				}
			}
			if triggers != 1 {
				t.Fatalf("seed %d epoch %d: %d triggers, want exactly 1", seed, epoch, triggers)
			}
			if !b.full() {
				t.Fatalf("seed %d: bitmap not full after reference filled", seed)
			}
		}
	}
}

// TestPartitionedReadinessProperty is the end-to-end property test:
// random Pready/PreadyRange/Parrived interleavings across simthreads
// (several sender threads sharing one Psend, several receiver threads
// probing one Precv) must agree with the mutex-guarded reference on every
// verdict, trigger exactly once per epoch, and keep Parrived monotone.
// Runs under -race and -shuffle like the rest of the suite.
func TestPartitionedReadinessProperty(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		parts := 8 + rng.Intn(80)
		nthreads := 2 + rng.Intn(3)
		const epochs = 2

		// Cut [0, parts) into contiguous ranges and deal them to sender
		// threads; a few ranges are dealt twice (to arbitrary threads) to
		// provoke ErrPartDoubleReady. Returns the deal plus the number of
		// duplicated ranges: whichever issuance runs second must error, so
		// exactly dups errors surface per epoch.
		type op struct {
			lo, hi int
		}
		deal := func() ([][]op, int) {
			ops := make([][]op, nthreads)
			dups := 0
			for lo := 0; lo < parts; {
				hi := lo + 1 + rng.Intn(5)
				if hi > parts {
					hi = parts
				}
				o := rng.Intn(nthreads)
				ops[o] = append(ops[o], op{lo, hi})
				if rng.Intn(4) == 0 {
					d := rng.Intn(nthreads)
					ops[d] = append(ops[d], op{lo, hi})
					dups++
				}
				lo = hi
			}
			return ops, dups
		}

		w := testWorld(t, 2, func(cfg *Config) {
			cfg.ThreadLevel = ThreadMultiple
			cfg.Seed = uint64(seed)
		})
		w.SetErrhandler(ErrorsReturn)
		c := w.Comm()

		ref := &refReadiness{}
		var ps *Prequest
		var epochReady sync.Mutex // guards started/readyDone/doubles across simthreads
		started := make([]bool, epochs)
		readyDone := make([]int, epochs)
		doubles := make([]int, epochs) // ErrPartDoubleReady seen per epoch
		perThread := make([][][]op, epochs)
		wantDups := make([]int, epochs)
		for e := range perThread {
			perThread[e], wantDups[e] = deal()
		}

		// Sender thread 0 runs Pstart/Pwait; all sender threads issue
		// their dealt ranges in random interleavings (distinct sleep
		// jitter puts the ops in seed-dependent global order).
		for st := 0; st < nthreads; st++ {
			st := st
			w.Spawn(0, "sender", func(th *Thread) {
				if st == 0 {
					ps = th.PsendInit(c, 1, 17, parts, 64, "prop")
				}
				for e := 0; e < epochs; e++ {
					if st == 0 {
						ref.reset(parts)
						th.Pstart(ps)
						epochReady.Lock()
						started[e] = true
						epochReady.Unlock()
					}
					for {
						epochReady.Lock()
						ok := started[e]
						epochReady.Unlock()
						if ok {
							break
						}
						th.S.Sleep(100)
					}
					for _, o := range perThread[e][st] {
						th.S.Sleep(int64(1 + rng.Intn(500)))
						var err error
						if o.hi == o.lo+1 {
							err = th.Pready(ps, o.lo)
						} else {
							err = th.PreadyRange(ps, o.lo, o.hi)
						}
						if err == nil {
							// Successful Preadys mark pairwise-disjoint
							// ranges, so applying them to the reference in
							// completion order is sound regardless of the
							// interleaving — and each must be fresh there.
							if already, _ := ref.ready(o.lo, o.hi); already {
								t.Errorf("seed %d epoch %d [%d,%d): Pready succeeded but reference had it set", seed, e, o.lo, o.hi)
							}
						} else {
							if me, ok := err.(*Error); !ok || me.Code != ErrPartDoubleReady {
								t.Errorf("seed %d: double Pready returned %v, want ErrPartDoubleReady", seed, err)
							}
							epochReady.Lock()
							doubles[e]++
							epochReady.Unlock()
						}
					}
					epochReady.Lock()
					readyDone[e]++
					epochReady.Unlock()
					if st == 0 {
						for {
							epochReady.Lock()
							n := readyDone[e]
							epochReady.Unlock()
							if n == nthreads {
								break
							}
							th.S.Sleep(100)
						}
						// All ops issued: the runtime and the reference must
						// agree that every partition was readied exactly once,
						// with every duplicated range erroring exactly once
						// (on whichever of its two issuances ran second).
						epochReady.Lock()
						nd := doubles[e]
						epochReady.Unlock()
						if ref.count != parts {
							t.Errorf("seed %d epoch %d: reference count %d, want %d", seed, e, ref.count, parts)
						}
						if nd != wantDups[e] {
							t.Errorf("seed %d epoch %d: %d double-Pready errors, want %d", seed, e, nd, wantDups[e])
						}
						if err := th.Pwait(ps); err != nil {
							t.Errorf("seed %d epoch %d Pwait: %v", seed, e, err)
						}
					}
				}
			})
		}
		// Receiver: thread 0 starts/waits; probe threads check Parrived
		// monotonicity on random partitions while the epoch is active.
		var pv *Prequest
		var recvMu sync.Mutex
		recvStarted := make([]bool, epochs)
		probesDone := make([]int, epochs)
		nprobes := 2
		for pt := 0; pt <= nprobes; pt++ {
			pt := pt
			w.Spawn(1, "receiver", func(th *Thread) {
				prng := rand.New(rand.NewSource(seed*100 + int64(pt)))
				if pt == 0 {
					pv = th.PrecvInit(c, 0, 17, parts, 64)
				}
				for e := 0; e < epochs; e++ {
					if pt == 0 {
						th.Pstart(pv)
						recvMu.Lock()
						recvStarted[e] = true
						recvMu.Unlock()
					}
					for {
						recvMu.Lock()
						ok := recvStarted[e]
						recvMu.Unlock()
						if ok {
							break
						}
						th.S.Sleep(100)
					}
					seen := make([]bool, parts)
					landed := 0
					for landed < parts {
						i := prng.Intn(parts)
						arrived, err := th.Parrived(pv, i)
						if err != nil {
							t.Errorf("seed %d: Parrived error: %v", seed, err)
							break
						}
						if seen[i] && !arrived {
							t.Errorf("seed %d: Parrived(%d) regressed true -> false", seed, i)
						}
						if arrived && !seen[i] {
							seen[i] = true
							landed++
						}
						th.S.Sleep(int64(50 + prng.Intn(200)))
					}
					recvMu.Lock()
					probesDone[e]++
					recvMu.Unlock()
					if pt == 0 {
						for {
							recvMu.Lock()
							n := probesDone[e]
							recvMu.Unlock()
							if n == nprobes+1 {
								break
							}
							th.S.Sleep(100)
						}
						if err := th.Pwait(pv); err != nil {
							t.Errorf("seed %d epoch %d Pwait(recv): %v", seed, e, err)
						}
					}
				}
			})
		}

		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		s := w.PartStats()
		if s.PreadyTrigger != epochs {
			t.Errorf("seed %d: %d triggers, want %d (exactly one per epoch)", seed, s.PreadyTrigger, epochs)
		}
		if ref.triggers != epochs {
			t.Errorf("seed %d: reference saw %d triggers, want %d", seed, ref.triggers, epochs)
		}
		if err := w.CheckClean(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPartitionedVCIShardMapping pins the shard routing: sender and
// receiver of one (comm, tag) land on the same VCI, and partitioned
// traffic on different tags maps to different shards without interference.
func TestPartitionedVCIShardMapping(t *testing.T) {
	w := testWorld(t, 2, func(cfg *Config) {
		cfg.ThreadLevel = ThreadMultiple
		cfg.VCIs = 4
		cfg.VCIPolicy = vci.PerTagHash
	})
	c := w.Comm()
	const parts = 4
	tags := []int{0, 1, 2, 3, 7}
	w.Spawn(0, "sender", func(th *Thread) {
		for _, tag := range tags {
			ps := th.PsendInit(c, 1, tag, parts, 64, tag)
			th.Pstart(ps)
			if err := th.PreadyRange(ps, 0, parts); err != nil {
				t.Errorf("tag %d: %v", tag, err)
			}
			if err := th.Pwait(ps); err != nil {
				t.Errorf("tag %d Pwait: %v", tag, err)
			}
		}
	})
	w.Spawn(1, "receiver", func(th *Thread) {
		for _, tag := range tags {
			pr := th.PrecvInit(c, 0, tag, parts, 64)
			th.Pstart(pr)
			if err := th.Pwait(pr); err != nil {
				t.Errorf("tag %d Pwait(recv): %v", tag, err)
			}
			if pr.Data() != tag {
				t.Errorf("tag %d: got %v", tag, pr.Data())
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckClean(); err != nil {
		t.Fatal(err)
	}
}
