package mpi

// This file implements the process-level fault-tolerance plane: scheduled
// fail-stop crashes (fault.CrashSpec), the deterministic sim-time heartbeat
// failure detector, and the bookkeeping that turns a peer's silence into
// ErrProcFailed on every request that can no longer complete. The ULFM-style
// recovery primitives built on top (Revoke/Shrink/Agree) live in ulfm.go.
//
// Everything here is gated on a non-empty crash schedule: with no crashes
// configured, no ftProc is allocated, zero timers are armed and every hook
// is a single nil or bool check, keeping fault-free runs byte-identical.

import (
	"sort"

	"mpicontend/internal/fabric"
	"mpicontend/internal/sim"
)

// rankCrashed unwinds a thread of a fail-stopped process. The panic is
// recovered in the spawn wrapper (world.go): a crashed thread simply stops
// executing, mid-call, exactly like a process that lost power.
type rankCrashed struct{}

// ftWorld is the world-wide fault-tolerance state (nil without crashes).
type ftWorld struct {
	hbNs      sim.Time // heartbeat period
	timeoutNs sim.Time // silence that declares a peer dead (hb * miss)

	// crashedAt[r] is rank r's actual kill time (-1 while alive);
	// detectedAt[r] is the earliest time any survivor declared r dead.
	crashedAt  []sim.Time
	detectedAt []sim.Time

	// errPathLocks counts critical-section acquisitions made by threads
	// inside recovery code (Revoke/Shrink/Agree and workload error
	// handling) — the "lock acquisitions spent on the error path" metric.
	errPathLocks int64

	// Recovery-primitive counters.
	revokes, shrinks, agrees int64
	deadAborts               int64 // transport sends aborted into dead peers
}

// ftProc is one process's fault-tolerance state (nil without crashes).
type ftProc struct {
	// lastHeard[r] is the last time any packet from rank r arrived here —
	// every delivery is proof of life, heartbeats only guarantee a floor.
	lastHeard []sim.Time
	// dead[r] is this process's local detection time for rank r (-1 =
	// believed alive). Detection is local: peers learn of a failure at
	// different sim times, exactly like ULFM.
	dead []sim.Time
	// revoked holds the communicator contexts this process has observed a
	// revocation for (user context and its collective shadow).
	revoked map[int]bool
	// live tracks in-flight requests in issue order so a detection or
	// revocation can fail exactly the ones that can no longer complete.
	// Completed entries are dropped lazily on each sweep.
	live []*Request
}

func newFtProc(n int) *ftProc {
	ft := &ftProc{
		lastHeard: make([]sim.Time, n),
		dead:      make([]sim.Time, n),
		revoked:   make(map[int]bool),
	}
	for i := range ft.dead {
		ft.dead[i] = -1
	}
	return ft
}

// isDead reports this process's local belief about rank r.
func (ft *ftProc) isDead(r int) bool { return ft.dead[r] >= 0 }

// setupFT arms the fault-tolerance plane: per-proc state, scheduled
// crashes, and one heartbeat/detector timer chain per rank. Called from
// NewWorld only when the config schedules at least one crash.
func (w *World) setupFT() {
	fc := w.plane.Config()
	n := len(w.Procs)
	w.ft = &ftWorld{
		hbNs:       fc.HeartbeatNs,
		timeoutNs:  fc.HeartbeatNs * sim.Time(fc.HeartbeatMiss),
		crashedAt:  make([]sim.Time, n),
		detectedAt: make([]sim.Time, n),
	}
	for i := 0; i < n; i++ {
		w.ft.crashedAt[i] = -1
		w.ft.detectedAt[i] = -1
		w.Procs[i].ft = newFtProc(n)
	}
	for _, spec := range fc.Crashes {
		if spec.Rank < 0 || spec.Rank >= n {
			continue
		}
		victims := []int{spec.Rank}
		if spec.Node {
			victims = victims[:0]
			node := w.Procs[spec.Rank].Node
			for _, p := range w.Procs {
				if p.Node == node {
					victims = append(victims, p.Rank)
				}
			}
		}
		for _, rank := range victims {
			if spec.OnLockHold {
				// Deferred to the rank's first critical-section
				// acquisition at or after AtNs (csLock.enter), so the
				// process dies holding the lock.
				at := spec.AtNs
				if at <= 0 {
					at = 1
				}
				w.Procs[rank].lockCrashAt = at
			} else {
				rank := rank
				w.Eng.At(spec.AtNs, func() { w.killRank(rank) })
			}
		}
	}
	for _, p := range w.Procs {
		w.startHeartbeat(p)
	}
}

// killRank executes a fail-stop failure of the given rank at the current
// sim time: the NIC blackholes traffic in both directions, the rank's
// threads unwind at their next runtime checkpoint, and — critically — no
// peer is told. Failure is observable only as silence.
func (w *World) killRank(rank int) {
	p := w.Procs[rank]
	if p.crashed {
		return
	}
	now := w.Eng.Now()
	p.crashed = true
	w.ft.crashedAt[rank] = now
	w.Fab.Kill(rank)
	w.plane.NoteCrash()
	w.faultEvent("crash", rank)
	// The rank's application threads will never return: retire them from
	// the stop accounting now so the surviving ranks' completion (not the
	// dead ones') ends the run.
	w.appThreads -= p.liveApp
	p.liveApp = 0
	// Unpark anything parked on this proc so it reaches a crash check.
	p.activity.WakeAll(now)
	if w.appThreads == 0 {
		w.Eng.Stop()
	}
}

// checkCrashed unwinds the calling thread if its process fail-stopped. One
// boolean load on every runtime entry point — the whole cost of crash
// support on healthy processes.
func (th *Thread) checkCrashed() {
	if th.P.crashed {
		panic(rankCrashed{})
	}
}

// startHeartbeat runs rank p's combined heartbeat emitter and failure
// detector: every period the progress engine (driver level, engine
// context) broadcasts a liveness beacon to every peer and declares dead
// any peer silent for longer than the timeout. The chain stops
// rescheduling itself once p crashes — a dead NIC emits nothing.
func (w *World) startHeartbeat(p *Proc) {
	var tick func()
	tick = func() {
		if p.crashed {
			return
		}
		now := w.Eng.Now()
		for _, q := range w.Procs {
			if q == p {
				continue
			}
			p.ep.Send(&fabric.Packet{Kind: fabric.Heartbeat, Src: p.Rank, Dst: q.Rank}, false)
		}
		for _, q := range w.Procs {
			if q == p || p.ft.isDead(q.Rank) {
				continue
			}
			if now-p.ft.lastHeard[q.Rank] > w.ft.timeoutNs {
				p.declareDead(q.Rank, now)
			}
		}
		w.Eng.After(w.ft.hbNs, tick)
	}
	w.Eng.After(w.ft.hbNs, tick)
}

// declareDead records this process's local detection of rank r's failure
// and fails every in-flight operation that needed r: posted receives from
// it, sends and RMA ops addressed to it, and unacknowledged transport
// records (which would otherwise retransmit into the blackhole until
// retry exhaustion).
func (p *Proc) declareDead(r int, now sim.Time) {
	ft := p.ft
	if ft.isDead(r) {
		return
	}
	ft.dead[r] = now
	w := p.w
	if w.ft.detectedAt[r] < 0 {
		w.ft.detectedAt[r] = now
		w.faultEvent("detect", p.Rank)
	}
	ft.sweep(now, func(req *Request) bool { return req.peerIs(r) }, ErrProcFailed)
	if p.rel != nil {
		p.rel.failPeer(r, now)
	}
	p.activity.WakeAll(now)
}

// peerIs reports whether the request's remote partner is world rank r.
// Send and RMA requests store the world destination; receives store the
// communicator-local source, translated here.
func (r *Request) peerIs(rank int) bool {
	switch r.kind {
	case SendReq, RMAReq:
		return r.dst == rank
	case RecvReq:
		return r.src != AnySource && r.comm != nil && r.comm.world(r.src) == rank
	}
	return false
}

// sweep fails every tracked in-flight request matching the predicate and
// compacts the tracking list (dropping completed entries). Iteration is in
// issue order, so the resulting wake-ups are deterministic.
func (ft *ftProc) sweep(now sim.Time, match func(*Request) bool, code Errcode) {
	kept := ft.live[:0]
	for _, r := range ft.live {
		if r.complete || r.freed {
			continue
		}
		if match(r) {
			r.fail(code, now)
			continue
		}
		//simcheck:allow hotalloc in-place filter never grows; sweep runs once per failure event
		kept = append(kept, r)
	}
	for i := len(kept); i < len(ft.live); i++ {
		ft.live[i] = nil
	}
	ft.live = kept
}

// ftIssue registers a freshly issued request with the fault-tolerance
// plane and fails it immediately — before any packet reaches the wire —
// when its context is already revoked or its peer already declared dead
// (the fail-fast issue path). Returns true when the request was failed.
func (p *Proc) ftIssue(r *Request) bool {
	ft := p.ft
	if ft == nil {
		return false
	}
	ft.live = append(ft.live, r)
	now := p.w.Eng.Now()
	if ft.revoked[r.ctx] {
		r.fail(ErrRevoked, now)
		return true
	}
	switch r.kind {
	case SendReq, RMAReq:
		if ft.isDead(r.dst) {
			r.fail(ErrProcFailed, now)
			return true
		}
	case RecvReq:
		if r.src != AnySource && r.comm != nil && ft.isDead(r.comm.world(r.src)) {
			r.fail(ErrProcFailed, now)
			return true
		}
	}
	return false
}

// failPeer aborts every unacknowledged transport record addressed to the
// dead rank: cancel the retransmit timer, retire the record and fail the
// owning request. Keys are sorted so the abort order (and the wake-ups it
// causes) is deterministic.
func (rs *relState) failPeer(rank int, now sim.Time) {
	var keys []txKey
	//simcheck:allow maporder filtered collect-then-sort: keys are sorted by seq before any observable effect
	for k := range rs.tx {
		if k.dst == rank {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vci != keys[j].vci {
			return keys[i].vci < keys[j].vci
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		rec := rs.tx[k]
		rec.acked = true
		if rec.timer != nil {
			rec.timer.Cancel()
		}
		delete(rs.tx, k)
		rs.p.w.ft.deadAborts++
		if rec.owner != nil {
			rec.owner.fail(ErrProcFailed, now)
		}
	}
}

// RecoveryStats surfaces the fault-tolerance plane's outcome counters.
type RecoveryStats struct {
	// Crashed lists the killed world ranks in rank order.
	Crashed []int
	// FirstCrashNs is the earliest kill time (-1 when nothing crashed).
	FirstCrashNs int64
	// DetectNs is the worst-case detection latency over all crashed
	// ranks: earliest detection anywhere minus the kill time (-1 when
	// nothing was detected).
	DetectNs int64
	// ErrPathLocks counts critical-section acquisitions by threads
	// executing recovery code.
	ErrPathLocks int64
	// Revokes/Shrinks/Agrees count recovery-primitive invocations.
	Revokes, Shrinks, Agrees int64
	// DeadAborts counts transport sends aborted at a dead-peer check
	// instead of retransmitting into the blackhole.
	DeadAborts int64
}

// Recovery returns the fault-tolerance counters (zero value when no crash
// schedule is configured).
func (w *World) Recovery() RecoveryStats {
	s := RecoveryStats{FirstCrashNs: -1, DetectNs: -1}
	if w.ft == nil {
		return s
	}
	for r, at := range w.ft.crashedAt {
		if at < 0 {
			continue
		}
		s.Crashed = append(s.Crashed, r)
		if s.FirstCrashNs < 0 || at < s.FirstCrashNs {
			s.FirstCrashNs = at
		}
		if det := w.ft.detectedAt[r]; det >= 0 {
			if lat := det - at; lat > s.DetectNs {
				s.DetectNs = lat
			}
		}
	}
	s.ErrPathLocks = w.ft.errPathLocks
	s.Revokes = w.ft.revokes
	s.Shrinks = w.ft.shrinks
	s.Agrees = w.ft.agrees
	s.DeadAborts = w.ft.deadAborts
	return s
}

// BeginErrPath marks the calling thread as executing recovery code: every
// critical-section acquisition until EndErrPath is counted as error-path
// lock traffic. The recovery primitives mark themselves; workloads wrap
// their own error handling.
func (th *Thread) BeginErrPath() { th.errPath = th.P.ft != nil }

// EndErrPath ends the error-path marking started by BeginErrPath.
func (th *Thread) EndErrPath() { th.errPath = false }
