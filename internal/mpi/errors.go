package mpi

import "fmt"

// Errcode is an MPI-style error class attached to a failed request and
// returned by Wait/Waitall (after the configured error handler runs).
type Errcode int

const (
	// ErrSuccess is MPI_SUCCESS.
	ErrSuccess Errcode = iota
	// ErrTimeout reports a per-request deadline expiring before the
	// request completed (rendezvous CTS never arrived, receive never
	// matched, ack never returned).
	ErrTimeout
	// ErrRetryExhausted reports the reliable transport giving up on a
	// packet after MaxRetries retransmissions.
	ErrRetryExhausted
	// ErrTruncate reports a message larger than the receive's buffer
	// bound (MPI_ERR_TRUNCATE).
	ErrTruncate
	// ErrRequest reports an operation on an invalid (already freed)
	// request (MPI_ERR_REQUEST).
	ErrRequest
	// ErrProcFailed reports a peer process declared dead by the failure
	// detector (ULFM MPI_ERR_PROC_FAILED): the operation can never
	// complete because its partner fail-stopped.
	ErrProcFailed
	// ErrRevoked reports an operation on (or interrupted by) a revoked
	// communicator (ULFM MPI_ERR_REVOKED).
	ErrRevoked
	// ErrPartInactive reports Pready/PreadyRange/Parrived on a
	// partitioned request with no active epoch: before the first Start,
	// or after Wait consumed the epoch (MPI-4.0 semantics; documented
	// error of partitioned.go).
	ErrPartInactive
	// ErrPartDoubleReady reports Pready on a partition already marked
	// ready in the current epoch. MPI-4.0 declares this erroneous; the
	// simulated runtime detects it exactly, because the readiness bitmap
	// observes every transition.
	ErrPartDoubleReady

	// errcodeEnd marks the end of the error-class enumeration; the
	// Errcode.String exhaustiveness test walks [0, errcodeEnd) so a new
	// class cannot silently stringify through the default case. Keep it
	// last.
	errcodeEnd
)

// String names the code like the MPI constants.
func (e Errcode) String() string {
	switch e {
	case ErrSuccess:
		return "MPI_SUCCESS"
	case ErrTimeout:
		return "MPI_ERR_TIMEOUT"
	case ErrRetryExhausted:
		return "MPI_ERR_RETRY_EXHAUSTED"
	case ErrTruncate:
		return "MPI_ERR_TRUNCATE"
	case ErrRequest:
		return "MPI_ERR_REQUEST"
	case ErrProcFailed:
		return "MPI_ERR_PROC_FAILED"
	case ErrRevoked:
		return "MPI_ERR_REVOKED"
	case ErrPartInactive:
		return "MPI_ERR_PART_INACTIVE"
	case ErrPartDoubleReady:
		return "MPI_ERR_PART_DOUBLE_READY"
	default:
		return fmt.Sprintf("Errcode(%d)", int(e))
	}
}

// Error is the error type surfaced by Wait/Test/Waitall: a code plus the
// failed request's description.
type Error struct {
	Code Errcode
	// Detail describes the failed operation (kind, peer, tag, bytes).
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Code, e.Detail) }

// Errhandler selects how request errors are surfaced, after
// MPI_Comm_set_errhandler.
type Errhandler int

const (
	// ErrhandlerInherit (the zero value, on a Comm) defers to the
	// world's handler; on the world it means the MPI default,
	// ErrorsAreFatal.
	ErrhandlerInherit Errhandler = iota
	// ErrorsAreFatal panics on the first request error (the MPI default).
	ErrorsAreFatal
	// ErrorsReturn surfaces errors as return values of Wait/Waitall and
	// via Request.Err after Test.
	ErrorsReturn
)

// String names the handler like the MPI constants.
func (h Errhandler) String() string {
	switch h {
	case ErrorsAreFatal:
		return "MPI_ERRORS_ARE_FATAL"
	case ErrorsReturn:
		return "MPI_ERRORS_RETURN"
	case ErrhandlerInherit:
		return "(inherit)"
	default:
		return fmt.Sprintf("Errhandler(%d)", int(h))
	}
}

// SetErrhandler sets the world-wide error handler (the default for every
// communicator that has not set its own).
func (w *World) SetErrhandler(h Errhandler) { w.errhandler = h }

// SetErrhandler sets this communicator's error handler, overriding the
// world's for requests issued on it.
func (c *Comm) SetErrhandler(h Errhandler) { c.errhandler = h }

// handlerFor resolves the effective error handler for a request: its
// communicator's, falling back to the world's, falling back to the MPI
// default (errors are fatal).
func (r *Request) handlerFor() Errhandler {
	if r.comm != nil && r.comm.errhandler != ErrhandlerInherit {
		return r.comm.errhandler
	}
	if r.p.w.errhandler != ErrhandlerInherit {
		return r.p.w.errhandler
	}
	return ErrorsAreFatal
}

// raise surfaces a failed request through the configured error handler:
// fatal handlers panic, ErrorsReturn hands the error back to the caller.
// It is a no-op (returning nil) for successful requests.
func (r *Request) raise() error {
	if r.err == nil {
		return nil
	}
	if r.handlerFor() == ErrorsAreFatal {
		panic(fmt.Sprintf("mpi: %v (set MPI_ERRORS_RETURN to handle)", r.err))
	}
	return r.err
}

// raiseAs surfaces an error that is not recorded on the request itself —
// e.g. operating on an already-freed request — through the same handler
// resolution as raise.
func (r *Request) raiseAs(code Errcode) error {
	err := &Error{Code: code, Detail: r.describe()}
	if r.handlerFor() == ErrorsAreFatal {
		panic(fmt.Sprintf("mpi: %v (set MPI_ERRORS_RETURN to handle)", err))
	}
	return err
}

// describe renders the request for error messages.
func (r *Request) describe() string {
	switch r.kind {
	case SendReq:
		proto := "eager"
		if r.rndv {
			proto = "rendezvous"
		}
		return fmt.Sprintf("%s send rank %d -> %d tag %d (%d bytes)",
			proto, r.p.Rank, r.dst, r.tag, r.bytes)
	case RecvReq:
		return fmt.Sprintf("recv on rank %d from %d tag %d", r.p.Rank, r.src, r.tag)
	default:
		return fmt.Sprintf("rma op rank %d -> %d (%d bytes)", r.p.Rank, r.dst, r.bytes)
	}
}
