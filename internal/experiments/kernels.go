package experiments

import (
	"mpicontend/internal/genome"
	"mpicontend/internal/graph500"
	"mpicontend/internal/machine"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/stencil"
)

func init() {
	register("fig10a", "Graph500 BFS single-node thread scaling (Fig. 10a)", fig10a)
	register("fig10b", "Graph500 BFS thread scaling with 16 processes (Fig. 10b)", fig10b)
	register("fig10c", "Graph500 BFS weak scaling (Fig. 10c)", fig10c)
	register("fig11a", "3D stencil strong scaling (Fig. 11a)", fig11a)
	register("fig11b", "3D stencil execution breakdown (Fig. 11b)", fig11b)
	register("fig12b", "Genome assembly strong scaling (Fig. 12b)", fig12b)
}

// kernelLocks are the methods every kernel figure compares.
var kernelLocks = []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority}

func (o Options) bfsScale() int {
	if o.Quick {
		return 12
	}
	return 16
}

// bfsMTEPS declares one BFS point and yields its MTEPS.
func bfsMTEPS(pl *Plan, p graph500.Params) float64 {
	return pl.Value(func() (float64, error) {
		r, err := graph500.Run(p)
		if err != nil {
			return 0, err
		}
		return r.MTEPS, nil
	})
}

func fig10a(o Options, pl *Plan) ([]*report.Table, error) {
	// Single process, no interprocess communication: the paper's single-
	// node scalability of the BFS implementation itself.
	t := &report.Table{ID: "fig10a", Title: "BFS single-node scalability",
		XLabel: "threads", YLabel: "MTEPS"}
	s := t.AddSeries("BFS")
	for _, threads := range []int{1, 2, 4, 8} {
		s.Add(float64(threads), bfsMTEPS(pl, graph500.Params{
			Lock: simlock.KindTicket, Threads: threads,
			Scale: o.bfsScale(), Seed: o.seed(), Binding: machine.Compact,
		}))
	}
	return []*report.Table{t}, nil
}

func fig10b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig10b", Title: "BFS thread scaling, compact binding",
		XLabel: "threads per node", YLabel: "MTEPS"}
	procs := 16
	scale := o.bfsScale() + 2
	if o.Quick {
		procs = 4
		scale = o.bfsScale()
	}
	for _, k := range kernelLocks {
		s := t.AddSeries(k.String())
		for _, threads := range []int{1, 2, 4, 8} {
			s.Add(float64(threads), bfsMTEPS(pl, graph500.Params{
				Lock: k, Procs: procs, Threads: threads,
				Scale: scale, Seed: o.seed(), Binding: machine.Compact,
			}))
		}
	}
	return []*report.Table{t}, nil
}

func fig10c(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig10c", Title: "BFS weak scaling, 8 threads per process",
		XLabel: "cores", YLabel: "MTEPS"}
	nodeCounts := []int{1, 2, 4, 8}
	if o.Quick {
		nodeCounts = []int{1, 2, 4}
	}
	base := o.bfsScale() - 2
	for _, k := range kernelLocks {
		s := t.AddSeries(k.String())
		for i, nodes := range nodeCounts {
			s.Add(float64(nodes*8), bfsMTEPS(pl, graph500.Params{
				Lock: k, Procs: nodes, Threads: 8,
				Scale: base + i, // problem grows with the machine
				Seed:  o.seed(), Binding: machine.Compact,
			}))
		}
	}
	return []*report.Table{t}, nil
}

// stencilGrids returns (cube edge, per-core KB) pairs for the strong-
// scaling sweep on the chosen machine size.
func stencilCases(o Options) (procs, threads int, edges []int) {
	if o.Quick {
		return 4, 4, []int{16, 32, 48}
	}
	return 8, 8, []int{16, 32, 64, 96, 128}
}

func fig11a(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig11a", Title: "3D stencil strong scaling",
		XLabel: "bytes per core", YLabel: "GFlops"}
	procs, threads, edges := stencilCases(o)
	iters := 6
	if o.Quick {
		iters = 3
	}
	cores := procs * threads
	for _, k := range kernelLocks {
		s := t.AddSeries(k.String())
		for _, e := range edges {
			p := stencil.Params{
				Lock: k, Procs: procs, Threads: threads,
				NX: e, NY: e, NZ: e, Iters: iters, Seed: o.seed(),
			}
			gflops := pl.Value(func() (float64, error) {
				r, err := stencil.Run(p)
				if err != nil {
					return 0, err
				}
				return r.GFlops, nil
			})
			perCore := float64(e) * float64(e) * float64(e) * 8 / float64(cores)
			s.Add(perCore, gflops)
		}
	}
	return []*report.Table{t}, nil
}

func fig11b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig11b", Title: "3D stencil execution breakdown (ticket)",
		XLabel: "bytes per core", YLabel: "percent of time"}
	procs, threads, edges := stencilCases(o)
	iters := 6
	if o.Quick {
		iters = 3
	}
	cores := procs * threads
	mpiS := t.AddSeries("MPI")
	compS := t.AddSeries("Computation")
	syncS := t.AddSeries("OMP_Sync")
	for _, e := range edges {
		p := stencil.Params{
			Lock: simlock.KindTicket, Procs: procs, Threads: threads,
			NX: e, NY: e, NZ: e, Iters: iters, Seed: o.seed(),
		}
		pct := pl.Values(3, func() ([]float64, error) {
			r, err := stencil.Run(p)
			if err != nil {
				return nil, err
			}
			return []float64{r.MPIPct, r.ComputePct, r.SyncPct}, nil
		})
		perCore := float64(e) * float64(e) * float64(e) * 8 / float64(cores)
		mpiS.Add(perCore, pct[0])
		compS.Add(perCore, pct[1])
		syncS.Add(perCore, pct[2])
	}
	return []*report.Table{t}, nil
}

func fig12b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig12b", Title: "Genome assembly strong scaling",
		XLabel: "cores", YLabel: "execution time s"}
	procCounts := []int{4, 8, 16, 32}
	genomeLen, reads := 20000, 4000
	if o.Quick {
		procCounts = []int{4, 8}
		genomeLen, reads = 6000, 1200
	}
	for _, k := range kernelLocks {
		s := t.AddSeries(k.String())
		for _, procs := range procCounts {
			p := genome.Params{
				Lock: k, Procs: procs, ProcsPerNode: 4,
				GenomeLen: genomeLen, Reads: reads, Seed: o.seed(),
			}
			secs := pl.Value(func() (float64, error) {
				r, err := genome.Run(p)
				if err != nil {
					return 0, err
				}
				return float64(r.SimNs) / 1e9, nil
			})
			// Paper: 4 procs/node, 2 threads each => cores = 2*procs.
			s.Add(float64(2*procs), secs)
		}
	}
	return []*report.Table{t}, nil
}
