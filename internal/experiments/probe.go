package experiments

import (
	"fmt"
	"strings"

	"mpicontend/internal/fault"
	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

// Probe runs the traced "representative point" of an experiment: one
// workload configuration characteristic of the figure, small enough that
// the resulting span stream stays tractable, with the telemetry recorder
// attached. It returns a one-line description of the traced run.
//
// Experiments sweep many configurations; tracing the whole sweep would
// interleave unrelated runs on one timeline. The probe instead picks the
// contended heart of each figure (e.g. fig8a's 8-thread mutex point) so
// the trace shows exactly the dynamics the figure argues about.
func Probe(id string, o Options, rec *telemetry.Recorder) (string, error) {
	if _, err := Get(id); err != nil {
		return "", err
	}
	windows := o.windows()
	switch {
	case id == "fig8b" || id == "fig2a":
		// Latency-shaped figures: multithreaded ping-pong under the mutex.
		iters := 200
		if o.Quick {
			iters = 50
		}
		p := workloads.LatencyParams{
			Lock: simlock.KindMutex, Threads: 8, MsgBytes: 1024,
			Iters: iters, Seed: o.seed(), Tel: rec,
		}
		_, err := workloads.Latency(p)
		return fmt.Sprintf("latency lock=Mutex threads=%d bytes=%d iters=%d",
			p.Threads, p.MsgBytes, p.Iters), err

	case id == "fig6b" || id == "fig5b":
		// N2N streaming under the priority lock (the §5.2 shape).
		p := workloads.N2NParams{
			Lock: simlock.KindPriority, Procs: 4, Threads: 4,
			MsgBytes: 512, Windows: windows, Seed: o.seed(),
			Progress: o.Progress, Tel: rec,
		}
		_, err := workloads.N2N(p)
		return fmt.Sprintf("n2n lock=Priority procs=%d threads=%d bytes=%d",
			p.Procs, p.Threads, p.MsgBytes), err

	case strings.HasPrefix(id, "fig9"):
		// RMA with async progress threads (§6.1.2).
		op := workloads.OpPut
		switch id {
		case "fig9b":
			op = workloads.OpGet
		case "fig9c":
			op = workloads.OpAcc
		}
		ops := 64
		if o.Quick {
			ops = 16
		}
		p := workloads.RMAParams{
			Lock: simlock.KindMutex, Op: op, Procs: 4,
			ElemBytes: 64, Ops: ops, Window: 8, Seed: o.seed(), Tel: rec,
		}
		_, err := workloads.RMA(p)
		return fmt.Sprintf("rma lock=Mutex op=%v procs=%d ops=%d", op, p.Procs, p.Ops), err

	case id == "recovery":
		// A mid-run rank crash under the mutex: the trace shows detection,
		// the revoke flood and the shrink round on the error path.
		iters := 48
		if o.Quick {
			iters = 24
		}
		p := workloads.RecoveryParams{
			Lock: simlock.KindMutex, Procs: 4, ProcsPerNode: 2, Iters: iters,
			Strategy: workloads.RecoverShrink, Kernel: workloads.KernelRing,
			Fault: fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 60_000}}},
			Seed:  o.seed(), MaxWall: recoveryWall, Tel: rec,
		}
		_, err := workloads.Recovery(p)
		return fmt.Sprintf("recovery lock=Mutex strategy=shrink procs=%d crash@60us", p.Procs), err

	case id == "vci":
		// The sharded runtime's contended heart: N2N with one explicitly
		// placed comm per thread over 16 VCIs, where the shard sections
		// are idle and the trace shows the shared-NIC injection lock as
		// the remaining hot spot.
		p := workloads.N2NParams{
			Lock: simlock.KindMutex, Procs: 4, Threads: 8, MsgBytes: 2048,
			Windows: windows, Seed: o.seed(), PerThreadTags: true,
			VCIs: 16, VCIPolicy: vci.Explicit, Progress: o.Progress, Tel: rec,
		}
		_, err := workloads.N2N(p)
		return fmt.Sprintf("n2n lock=Mutex vcis=16 policy=%v threads=%d bytes=%d",
			vci.Explicit, p.Threads, p.MsgBytes), err

	case id == "progress":
		// The remedy's contended heart: the same N2N point as the vci
		// probe but with continuation-mode completion on the unsharded
		// runtime under the mutex — the daemons' useful-only low-class
		// acquisitions replacing the polling storm the priority lock was
		// invented for. -progress overrides the mode to compare shapes.
		mode := mpi.ProgressContinuation
		if o.Progress != mpi.ProgressPolling {
			mode = o.Progress
		}
		p := workloads.N2NParams{
			Lock: simlock.KindMutex, Procs: 4, Threads: 8, MsgBytes: 2048,
			Windows: windows, Seed: o.seed(), PerThreadTags: true,
			VCIs: 1, VCIPolicy: vci.Explicit, Progress: mode, Tel: rec,
		}
		_, err := workloads.N2N(p)
		return fmt.Sprintf("n2n lock=Mutex progress=%v threads=%d bytes=%d",
			mode, p.Threads, p.MsgBytes), err

	case id == "partitioned":
		// The lock-free fast path's contended heart: partitioned N2N on
		// the unsharded mutex runtime, where the trace shows one critical
		// section entry per aggregated transfer (the epoch-completing
		// Pready) instead of the eager path's per-message storm.
		p := workloads.N2NParams{
			Lock: simlock.KindMutex, Procs: 4, Threads: 8, MsgBytes: 2048,
			Windows: windows, Seed: o.seed(), PerThreadTags: true,
			Partitioned: true, Progress: o.Progress, Tel: rec,
		}
		r, err := workloads.N2N(p)
		return fmt.Sprintf("n2n lock=Mutex partitioned threads=%d bytes=%d aggregates=%d",
			p.Threads, p.MsgBytes, r.Part.Aggregates), err

	case id == "chaos":
		// The resilience soak's shape: throughput over a lossy network.
		p := workloads.ThroughputParams{
			Lock: simlock.KindTicket, Threads: 4, MsgBytes: 64,
			Window: 32, Windows: windows, Seed: o.seed(), TraceRank: -1,
			Fault: fault.Config{DropProb: 0.01, WatchdogNs: 10_000_000},
			Tel:   rec,
		}
		_, err := workloads.Throughput(p)
		return fmt.Sprintf("throughput lock=Ticket threads=%d bytes=%d drop=0.01",
			p.Threads, p.MsgBytes), err

	default:
		// Throughput-shaped figures (fig8a, fig2b, fig3*, fig5a...):
		// the paper's 8-thread mutex point, where contention peaks.
		p := workloads.ThroughputParams{
			Lock: simlock.KindMutex, Threads: 8, MsgBytes: 64,
			Window: 32, Windows: windows, Seed: o.seed(), TraceRank: -1,
			Tel: rec,
		}
		_, err := workloads.Throughput(p)
		return fmt.Sprintf("throughput lock=Mutex threads=%d bytes=%d windows=%d",
			p.Threads, p.MsgBytes, p.Windows), err
	}
}
