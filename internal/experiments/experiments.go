// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate. Each experiment returns one or
// more report tables whose rows/series mirror the original plot. The cmd
// tools and the repository-level benchmarks are thin wrappers around this
// registry.
package experiments

import (
	"fmt"
	"sort"

	"mpicontend/internal/report"
)

// Options tunes experiment size.
type Options struct {
	// Quick shrinks sweeps and iteration counts so the full registry can
	// run in seconds (used by tests and benchmarks); the default sizes
	// mirror the paper's axes.
	Quick bool
	Seed  uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// msgSizes returns the message-size sweep (bytes).
func (o Options) msgSizes() []int64 {
	if o.Quick {
		return []int64{1, 64, 1024, 16384}
	}
	return []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// windows returns how many request windows each benchmark thread runs.
func (o Options) windows() int {
	if o.Quick {
		return 4
	}
	return 10
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*report.Table, error)
}

// registry holds all experiments keyed by id.
var registry = map[string]Experiment{}

func register(id, title string, run func(Options) ([]*report.Table, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e, nil
}

// IDs lists all registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
