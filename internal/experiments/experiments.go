// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate. Each experiment is written as
// a builder that declares its independent simulation Points through a
// Plan (the compute phase) and assembles report tables from their Results
// (the render phase); Experiment.Run executes the two phases serially,
// while RunAllFunc fans the points of many experiments across the
// internal/sweep worker pool with byte-identical output. The cmd tools
// and the repository-level benchmarks are thin wrappers around this
// registry.
//
// experiments sits on the driver-shell side of the core/shell boundary
// (docs/ARCHITECTURE.md): it orchestrates deterministic runs but contains
// no goroutines itself — parallelism lives in internal/sweep, and every
// Point builds its own isolated engine from the run's seed.
package experiments

import (
	"fmt"
	"sort"

	"mpicontend/internal/mpi"
	"mpicontend/internal/report"
)

// Options tunes experiment size.
type Options struct {
	// Quick shrinks sweeps and iteration counts so the full registry can
	// run in seconds (used by tests and benchmarks); the default sizes
	// mirror the paper's axes.
	Quick bool
	Seed  uint64
	// Progress overrides the progress mode of the probes that honour it
	// (the N2N-shaped ones; see Probe). The progress experiment sweeps
	// all modes itself and ignores this. Default polling.
	Progress mpi.ProgressMode
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// msgSizes returns the message-size sweep (bytes).
func (o Options) msgSizes() []int64 {
	if o.Quick {
		return []int64{1, 64, 1024, 16384}
	}
	return []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// windows returns how many request windows each benchmark thread runs.
func (o Options) windows() int {
	if o.Quick {
		return 4
	}
	return 10
}

// Experiment is a runnable reproduction of one table or figure. Its
// builder declares simulation points and renders tables through a Plan;
// see plan.go for the Points/Run/Render lifecycle.
type Experiment struct {
	ID    string
	Title string
	build func(Options, *Plan) ([]*report.Table, error)
}

// registry holds all experiments keyed by id.
var registry = map[string]Experiment{}

func register(id, title string, build func(Options, *Plan) ([]*report.Table, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, build: build}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e, nil
}

// IDs lists all registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
