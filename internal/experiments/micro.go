package experiments

import (
	"mpicontend/internal/machine"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/workloads"
)

func init() {
	register("table1", "Target machine specification (Table 1)", table1)
	register("fig2a", "Mutex multithreaded throughput vs message size (Fig. 2a)", fig2a)
	register("fig2b", "Effect of thread concurrency and NUMA binding (Fig. 2b)", fig2b)
	register("fig3a", "Mutex arbitration bias factors (Fig. 3a)", fig3a)
	register("fig3c", "Dangling requests under mutex (Fig. 3c)", fig3c)
	register("fig5a", "Dangling requests: mutex vs ticket (Fig. 5a)", fig5a)
	register("fig5b", "Binding and concurrency: mutex vs ticket (Fig. 5b)", fig5b)
	register("fig5c", "Process-per-socket throughput: mutex vs ticket (Fig. 5c)", fig5c)
	register("fig6b", "N2N throughput: ticket vs priority (Fig. 6b)", fig6b)
	register("fig8a", "Two-sided throughput, all methods (Fig. 8a)", fig8a)
	register("fig8b", "Two-sided latency, all methods (Fig. 8b)", fig8b)
	register("fig9a", "RMA Put with async progress (Fig. 9a)", rmaFig(workloads.OpPut))
	register("fig9b", "RMA Get with async progress (Fig. 9b)", rmaFig(workloads.OpGet))
	register("fig9c", "RMA Accumulate with async progress (Fig. 9c)", rmaFig(workloads.OpAcc))
}

func table1(o Options, pl *Plan) ([]*report.Table, error) {
	spec := machine.Table1(machine.Nehalem2x4(310))
	t := &report.Table{ID: "table1", Title: "Target machine specification",
		XLabel: "-", YLabel: "see text"}
	_ = spec
	// Rendered as text by the caller; embed as a single-series marker.
	s := t.AddSeries(spec.Architecture)
	s.Add(0, float64(spec.Sockets))
	return []*report.Table{t}, nil
}

// Table1Text renders the Table 1 specification as text.
func Table1Text() string {
	return machine.Table1(machine.Nehalem2x4(310)).String()
}

// throughputRate declares one throughput point and yields its rate in
// 10^3 msgs/s, as in the paper.
func throughputRate(pl *Plan, p workloads.ThroughputParams) float64 {
	return pl.Value(func() (float64, error) {
		r, err := workloads.Throughput(p)
		if err != nil {
			return 0, err
		}
		return r.RateMsgsPerSec / 1000, nil
	})
}

func throughputSeries(o Options, pl *Plan, t *report.Table, name string, mk func(bytes int64) workloads.ThroughputParams) {
	s := t.AddSeries(name)
	for _, bytes := range o.msgSizes() {
		s.Add(float64(bytes), throughputRate(pl, mk(bytes)))
	}
}

func baseTP(o Options, lock simlock.Kind, threads int, bytes int64) workloads.ThroughputParams {
	return workloads.ThroughputParams{
		Lock: lock, Threads: threads, MsgBytes: bytes,
		Windows: o.windows(), TraceRank: -1, Seed: o.seed(),
		Binding: machine.Compact,
	}
}

func fig2a(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig2a", Title: "Mutex throughput vs message size and threads",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, tpn := range []int{1, 2, 4, 8} {
		tpn := tpn
		name := map[int]string{1: "1 tpn", 2: "2 tpn", 4: "4 tpn", 8: "8 tpn"}[tpn]
		throughputSeries(o, pl, t, name, func(b int64) workloads.ThroughputParams {
			return baseTP(o, simlock.KindMutex, tpn, b)
		})
	}
	return []*report.Table{t}, nil
}

func fig2b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig2b", Title: "Compact vs scatter binding (mutex, 1B messages)",
		XLabel: "threads per node", YLabel: "10^3 msgs/s"}
	for _, binding := range []machine.Binding{machine.Compact, machine.Scatter} {
		s := t.AddSeries(binding.String())
		for _, threads := range []int{2, 4} {
			p := baseTP(o, simlock.KindMutex, threads, 1)
			p.Binding = binding
			s.Add(float64(threads), throughputRate(pl, p))
		}
	}
	return []*report.Table{t}, nil
}

func fig3a(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig3a", Title: "Mutex arbitration bias factors (8 threads)",
		XLabel: "msg bytes", YLabel: "bias factor (1 = fair)"}
	core := t.AddSeries("Core Level")
	sock := t.AddSeries("Socket Level")
	for _, bytes := range o.msgSizes() {
		if bytes > 65536 {
			continue // the paper's Fig. 3a stops at 32K
		}
		p := baseTP(o, simlock.KindMutex, 8, bytes)
		p.TraceRank = 1
		bias := pl.Values(2, func() ([]float64, error) {
			r, err := workloads.Throughput(p)
			if err != nil {
				return nil, err
			}
			return []float64{r.BiasCore, r.BiasSocket}, nil
		})
		core.Add(float64(bytes), bias[0])
		sock.Add(float64(bytes), bias[1])
	}
	return []*report.Table{t}, nil
}

func danglingTable(o Options, pl *Plan, id, title string, kinds []simlock.Kind) *report.Table {
	t := &report.Table{ID: id, Title: title,
		XLabel: "msg bytes", YLabel: "avg dangling requests"}
	for _, k := range kinds {
		s := t.AddSeries(k.String())
		for _, bytes := range o.msgSizes() {
			if bytes > 4096 {
				continue // paper sweeps 1B..4KB here
			}
			p := baseTP(o, k, 8, bytes)
			p.TraceRank = 1
			dangling := pl.Value(func() (float64, error) {
				r, err := workloads.Throughput(p)
				if err != nil {
					return 0, err
				}
				return r.DanglingAvg, nil
			})
			s.Add(float64(bytes), dangling)
		}
	}
	return t
}

func fig3c(o Options, pl *Plan) ([]*report.Table, error) {
	t := danglingTable(o, pl, "fig3c", "Dangling requests (mutex, 8 threads)",
		[]simlock.Kind{simlock.KindMutex})
	return []*report.Table{t}, nil
}

func fig5a(o Options, pl *Plan) ([]*report.Table, error) {
	t := danglingTable(o, pl, "fig5a", "Dangling requests: mutex vs ticket",
		[]simlock.Kind{simlock.KindMutex, simlock.KindTicket})
	return []*report.Table{t}, nil
}

func fig5b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig5b", Title: "Binding and concurrency (1B messages)",
		XLabel: "threads per node", YLabel: "10^3 msgs/s"}
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket} {
		for _, binding := range []machine.Binding{machine.Compact, machine.Scatter} {
			s := t.AddSeries(k.String() + "_" + binding.String())
			for _, threads := range []int{1, 2, 4} {
				p := baseTP(o, k, threads, 1)
				p.Binding = binding
				s.Add(float64(threads), throughputRate(pl, p))
			}
		}
	}
	return []*report.Table{t}, nil
}

func fig5c(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig5c", Title: "One process per socket, 4 threads each",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket} {
		k := k
		throughputSeries(o, pl, t, k.String(), func(b int64) workloads.ThroughputParams {
			p := baseTP(o, k, 4, b)
			p.ProcsPerNode = 2
			return p
		})
	}
	return []*report.Table{t}, nil
}

func fig6b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig6b", Title: "N2N throughput with 4 processes",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority} {
		s := t.AddSeries(k.String())
		for _, bytes := range o.msgSizes() {
			p := workloads.N2NParams{
				Lock: k, Procs: 4, Threads: 8, MsgBytes: bytes,
				Windows: o.windows(), Seed: o.seed(),
				Progress: o.Progress,
			}
			rate := pl.Value(func() (float64, error) {
				r, err := workloads.N2N(p)
				if err != nil {
					return 0, err
				}
				return r.RateMsgsPerSec / 1000, nil
			})
			s.Add(float64(bytes), rate)
		}
	}
	return []*report.Table{t}, nil
}

var allMethods = []simlock.Kind{simlock.KindNone, simlock.KindMutex,
	simlock.KindTicket, simlock.KindPriority}

func fig8a(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig8a", Title: "Two-sided throughput, 8 threads",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, k := range allMethods {
		k := k
		threads := 8
		if k == simlock.KindNone {
			threads = 1 // MPI_THREAD_SINGLE baseline
		}
		throughputSeries(o, pl, t, k.String(), func(b int64) workloads.ThroughputParams {
			return baseTP(o, k, threads, b)
		})
	}
	return []*report.Table{t}, nil
}

func fig8b(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "fig8b", Title: "Two-sided latency, 8 threads",
		XLabel: "msg bytes", YLabel: "latency us"}
	iters := 50
	if o.Quick {
		iters = 15
	}
	for _, k := range allMethods {
		threads := 8
		if k == simlock.KindNone {
			threads = 1
		}
		s := t.AddSeries(k.String())
		for _, bytes := range o.msgSizes() {
			p := workloads.LatencyParams{
				Lock: k, Threads: threads, MsgBytes: bytes,
				Iters: iters, Seed: o.seed(),
			}
			lat := pl.Value(func() (float64, error) {
				r, err := workloads.Latency(p)
				if err != nil {
					return 0, err
				}
				return r.AvgOneWayUs, nil
			})
			s.Add(float64(bytes), lat)
		}
	}
	return []*report.Table{t}, nil
}

// elemSizes returns the RMA element-size sweep (paper: 8B..2MB).
func (o Options) elemSizes() []int64 {
	if o.Quick {
		return []int64{8, 512, 32768}
	}
	return []int64{8, 64, 512, 4096, 32768, 262144, 2097152}
}

func rmaFig(op workloads.RMAOp) func(Options, *Plan) ([]*report.Table, error) {
	return func(o Options, pl *Plan) ([]*report.Table, error) {
		id := map[workloads.RMAOp]string{
			workloads.OpPut: "fig9a", workloads.OpGet: "fig9b", workloads.OpAcc: "fig9c",
		}[op]
		t := &report.Table{ID: id,
			Title:  "RMA " + op.String() + " with asynchronous progress (8 processes)",
			XLabel: "element bytes", YLabel: "10^3 elements/s"}
		ops := 16
		if o.Quick {
			ops = 6
		}
		for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
			s := t.AddSeries(k.String())
			for _, elem := range o.elemSizes() {
				p := workloads.RMAParams{
					Lock: k, Op: op, ElemBytes: elem, Ops: ops,
					Window: 1, Seed: o.seed(),
				}
				rate := pl.Value(func() (float64, error) {
					r, err := workloads.RMA(p)
					if err != nil {
						return 0, err
					}
					return r.RateElemPerSec / 1000, nil
				})
				s.Add(float64(elem), rate)
			}
		}
		return []*report.Table{t}, nil
	}
}
