package experiments

import (
	"strings"
	"testing"

	"mpicontend/internal/report"
)

// formatTables renders tables the way mpistorm's stdout does, so byte
// comparisons here cover exactly what the serial-equivalence guarantee
// promises.
func formatTables(tables []*report.Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.Format())
		b.WriteString(t.Chart())
	}
	return b.String()
}

// TestPointsDeclare checks every registered experiment declares a stable
// point list: non-nil, and identical between two declare passes.
func TestPointsDeclare(t *testing.T) {
	for _, id := range IDs() {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Points(quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := e.Points(quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: declare pass disagreed on point count: %d vs %d", id, len(a), len(b))
		}
		if id != "table1" && len(a) == 0 {
			t.Errorf("%s: no points declared", id)
		}
		for i, pt := range a {
			if pt.Exp != id || pt.Seq != i {
				t.Fatalf("%s: point %d labeled (%s, %d)", id, i, pt.Exp, pt.Seq)
			}
		}
	}
}

// TestRenderCountMismatch checks Render rejects a result vector that does
// not line up with the declared points.
func TestRenderCountMismatch(t *testing.T) {
	e, err := Get("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Points(quick())
	if err != nil {
		t.Fatal(err)
	}
	short := make([]Result, len(pts)-1)
	if _, err := e.Render(quick(), short); err == nil {
		t.Error("Render accepted a short result vector")
	}
	long := make([]Result, len(pts)+1)
	if _, err := e.Render(quick(), long); err == nil {
		t.Error("Render accepted a long result vector")
	}
}

// parallelIDs is the bundle the parallel-vs-serial tests sweep: cheap
// experiments covering the micro, kernel, ablation, and no-point (table1)
// families.
var parallelIDs = []string{"table1", "fig2b", "fig10a", "ablation-spin"}

// TestRunAllMatchesSerial is the determinism contract: rendering the same
// experiments at -jobs 1 and -jobs 8 must produce byte-identical tables
// and charts.
func TestRunAllMatchesSerial(t *testing.T) {
	serial, err := RunAll(parallelIDs, quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(parallelIDs, quick(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range parallelIDs {
		want := formatTables(serial[i])
		got := formatTables(parallel[i])
		if want == "" {
			t.Fatalf("%s: empty serial output", id)
		}
		if got != want {
			t.Errorf("%s: -jobs 8 output differs from serial:\n--- serial ---\n%s--- jobs 8 ---\n%s",
				id, want, got)
		}
	}
}

// TestRunAllFuncOrder checks emissions arrive exactly once per
// experiment, in ids order, at any worker count.
func TestRunAllFuncOrder(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		var got []string
		err := RunAllFunc(parallelIDs, quick(), jobs,
			func(idx int, id string, tables []*report.Table) error {
				if id != parallelIDs[idx] {
					t.Fatalf("jobs=%d: emit(%d) = %s, want %s", jobs, idx, id, parallelIDs[idx])
				}
				got = append(got, id)
				return nil
			})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != len(parallelIDs) {
			t.Fatalf("jobs=%d: %d emissions, want %d", jobs, len(got), len(parallelIDs))
		}
		for i, id := range got {
			if id != parallelIDs[i] {
				t.Fatalf("jobs=%d: emission order %v", jobs, got)
			}
		}
	}
}

// TestRunAllUnknownID checks the registry error surfaces before any work
// runs.
func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll([]string{"fig2b", "nonsense"}, quick(), 4); err == nil {
		t.Error("RunAll accepted an unknown experiment id")
	}
}

// TestPointRunIsolated re-runs a single declared point twice and expects
// bit-identical values — the property that makes fanning points across
// workers safe.
func TestPointRunIsolated(t *testing.T) {
	e, err := Get("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Points(quick())
	if err != nil {
		t.Fatal(err)
	}
	first, err := pts[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	again, err := pts[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Values) != len(again.Values) {
		t.Fatalf("value count changed: %d vs %d", len(first.Values), len(again.Values))
	}
	for i := range first.Values {
		if first.Values[i] != again.Values[i] {
			t.Errorf("value %d: %v then %v", i, first.Values[i], again.Values[i])
		}
	}
}
