package experiments

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/genome"
	"mpicontend/internal/graph500"
	"mpicontend/internal/machine"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/workloads"
)

func init() {
	register("chaos", "Chaos soak: resilient transport under injected faults", chaos)
}

// chaosLocks are the arbitration methods the soak compares: the paper's
// three plus MCS, the strongest FCFS queue lock.
var chaosLocks = []simlock.Kind{
	simlock.KindMutex, simlock.KindTicket, simlock.KindPriority, simlock.KindMCS,
}

// chaosScenario is one fault regime of the soak.
type chaosScenario struct {
	name string
	fc   fault.Config
}

// chaosWall bounds each faulty run's real time so a transport bug can
// abort CI instead of hanging it.
const chaosWall = 120_000_000_000 // 120 s wall clock

// chaosScenarios enumerates the fault regimes. Every scenario arms the
// progress watchdog so a lost wakeup surfaces as a dangling-request
// report rather than a hang.
func chaosScenarios(seed uint64) []chaosScenario {
	mk := func(name string, fc fault.Config) chaosScenario {
		fc.Seed = seed
		fc.WatchdogNs = 50_000_000 // 50 ms sim between liveness checks
		return chaosScenario{name: name, fc: fc}
	}
	return []chaosScenario{
		mk("drop1", fault.Config{DropProb: 0.01}),
		mk("dup", fault.Config{DupProb: 0.05}),
		mk("delay", fault.Config{DelayProb: 0.10, DelayMaxNs: 40_000}),
		mk("brownout", fault.Config{BrownoutPeriodNs: 2_000_000, BrownoutDurationNs: 500_000}),
		mk("nicstall", fault.Config{NICStallProb: 0.002}),
		mk("preempt", fault.Config{PreemptProb: 0.01}),
		mk("storm", fault.Config{DropProb: 0.01, DupProb: 0.02, DelayProb: 0.05, PreemptProb: 0.005}),
	}
}

// chaosRun is one (scenario, lock) soak cell.
type chaosRun struct {
	goodput  float64 // completed msgs per simulated second
	retx     int64   // timeout + fast retransmits
	dangling int64   // requests failed or abandoned by the transport
}

// chaosCell runs the windowed throughput benchmark at 8 threads under the
// scenario and checks the resilience invariants: the run completes, the
// transport state drains clean (no lost or duplicated deliveries survive
// CheckClean), and a rerun with the same seed is bit-identical. The
// same-seed rerun happens inside the cell, so a cell stays one
// self-contained sweep point.
func chaosCell(o Options, sc chaosScenario, k simlock.Kind) (chaosRun, error) {
	p := workloads.ThroughputParams{
		Lock:      k,
		Binding:   machine.Compact,
		Threads:   8,
		MsgBytes:  512,
		Window:    32,
		Windows:   o.windows(),
		Seed:      o.seed(),
		TraceRank: -1,
		Fault:     sc.fc,
		MaxWall:   chaosWall,
	}
	run := func() (chaosRun, error) {
		r, err := workloads.Throughput(p)
		if err != nil {
			return chaosRun{}, fmt.Errorf("chaos scenario %q seed %d lock %v: %w",
				sc.name, sc.fc.Seed, k, err)
		}
		return chaosRun{
			goodput:  r.RateMsgsPerSec,
			retx:     r.Net.Retransmits + r.Net.FastRetransmits,
			dangling: r.Net.GiveUps + r.Net.RequestFailures + r.Net.WatchdogStalls,
		}, nil
	}
	first, err := run()
	if err != nil {
		return chaosRun{}, err
	}
	again, err := run()
	if err != nil {
		return chaosRun{}, err
	}
	if first != again {
		return chaosRun{}, fmt.Errorf(
			"chaos scenario %q seed %d lock %v: nondeterministic (%+v vs %+v)",
			sc.name, sc.fc.Seed, k, first, again)
	}
	return first, nil
}

// chaosKernels reruns two full kernels under the representative drop
// scenario and checks their answers against fault-free truth: the BFS
// tree must pass Graph500 validation and the assembler must produce the
// same contigs it produces on a perfect network.
func chaosKernels(o Options, sc chaosScenario) error {
	scale := 10
	bp := graph500.Params{
		Lock: simlock.KindTicket, Procs: 2, Threads: 2,
		Scale: scale, EdgeFactor: 8, Seed: o.seed(),
		Fault: sc.fc, MaxWall: chaosWall,
	}
	br, err := graph500.Run(bp)
	if err != nil {
		return fmt.Errorf("chaos scenario %q seed %d bfs: %w", sc.name, sc.fc.Seed, err)
	}
	edges := graph500.GenerateKronecker(scale, 8, o.seed())
	if err := graph500.Validate(edges, br.Roots[0], br); err != nil {
		return fmt.Errorf("chaos scenario %q seed %d bfs validation: %w", sc.name, sc.fc.Seed, err)
	}

	gp := genome.Params{
		Lock: simlock.KindPriority, Procs: 4,
		GenomeLen: 2000, Reads: 400, Seed: o.seed(),
	}
	truth, err := genome.Run(gp)
	if err != nil {
		return fmt.Errorf("chaos genome baseline: %w", err)
	}
	gp.Fault = sc.fc
	gp.MaxWall = chaosWall
	faulty, err := genome.Run(gp)
	if err != nil {
		return fmt.Errorf("chaos scenario %q seed %d genome: %w", sc.name, sc.fc.Seed, err)
	}
	if len(faulty.Contigs) != len(truth.Contigs) {
		return fmt.Errorf("chaos scenario %q seed %d genome: %d contigs under faults, %d without",
			sc.name, sc.fc.Seed, len(faulty.Contigs), len(truth.Contigs))
	}
	for i := range truth.Contigs {
		if faulty.Contigs[i] != truth.Contigs[i] {
			return fmt.Errorf("chaos scenario %q seed %d genome: contig %d differs under faults",
				sc.name, sc.fc.Seed, i)
		}
	}
	return nil
}

// chaos runs every scenario against every lock and reports goodput,
// retransmission pressure, and dangling-request counts. The x axis is the
// scenario ordinal (1=drop1 2=dup 3=delay 4=brownout 5=nicstall 6=preempt
// 7=storm).
func chaos(o Options, pl *Plan) ([]*report.Table, error) {
	scenarios := chaosScenarios(o.seed())
	if o.Quick {
		scenarios = []chaosScenario{scenarios[0], scenarios[6]} // drop1 + storm
	}
	axis := "scenario ("
	for i, sc := range scenarios {
		if i > 0 {
			axis += " "
		}
		axis += fmt.Sprintf("%d=%s", i+1, sc.name)
	}
	axis += ")"

	good := &report.Table{ID: "chaos", Title: "Chaos soak goodput, 8 threads",
		XLabel: axis, YLabel: "msgs/s"}
	retx := &report.Table{ID: "chaos-retx", Title: "Chaos soak retransmissions",
		XLabel: axis, YLabel: "retransmits"}
	dang := &report.Table{ID: "chaos-dangling", Title: "Chaos soak dangling requests",
		XLabel: axis, YLabel: "dangling"}
	for _, k := range chaosLocks {
		gs := good.AddSeries(k.String())
		rs := retx.AddSeries(k.String())
		ds := dang.AddSeries(k.String())
		for i, sc := range scenarios {
			cell := pl.Values(3, func() ([]float64, error) {
				c, err := chaosCell(o, sc, k)
				if err != nil {
					return nil, err
				}
				return []float64{c.goodput, float64(c.retx), float64(c.dangling)}, nil
			})
			x := float64(i + 1)
			gs.Add(x, cell[0])
			rs.Add(x, cell[1])
			ds.Add(x, cell[2])
		}
	}
	pl.Check(func() error { return chaosKernels(o, scenarios[0]) })
	return []*report.Table{good, retx, dang}, nil
}
