package experiments

import (
	"fmt"

	"mpicontend/internal/report"
	"mpicontend/internal/sweep"
)

// Point is one independent simulation unit of an experiment: a single
// figure point (or self-contained validation step) that constructs its
// own isolated sim engine and RNG from its captured parameters when run.
// Points share no state with each other, so any subset may execute
// concurrently — or in any order — without changing a single result bit.
type Point struct {
	// Exp is the owning experiment's id and Seq the point's ordinal in
	// the experiment's declaration order.
	Exp string
	Seq int

	n   int
	run func() ([]float64, error)
}

// Result is the value vector one Point produced.
type Result struct {
	Values []float64
}

// Run executes the point's simulation. It is pure: the same point always
// yields the same Result, and concurrent Runs of distinct points never
// interfere.
func (p Point) Run() (Result, error) {
	vs, err := p.run()
	if err != nil {
		return Result{}, err
	}
	if len(vs) != p.n {
		return Result{}, fmt.Errorf("experiments: point %s/%d yielded %d values, declared %d",
			p.Exp, p.Seq, len(vs), p.n)
	}
	return Result{Values: vs}, nil
}

// Plan is the two-phase collector behind the compute/render split. Every
// experiment is written once as a builder that calls Plan.Value /
// Plan.Values / Plan.Check for each simulation it needs:
//
//   - In the declare phase the closures are recorded as Points and
//     placeholder zeros are returned, so the builder lays out its tables
//     without running anything.
//   - In the render phase the precomputed Results are replayed in
//     declaration order, so the builder fills the same tables with real
//     values — without re-running anything.
//
// Builders must therefore be deterministic in their declaration sequence
// (loops over static configuration only), which Render verifies by
// checking that the replay consumes exactly the declared points.
type Plan struct {
	declare bool
	exp     string
	points  []Point
	results []Result
	next    int
	overrun bool
}

// Values registers (declare phase) or replays (render phase) a point
// yielding n values.
func (p *Plan) Values(n int, run func() ([]float64, error)) []float64 {
	if p.declare {
		p.points = append(p.points, Point{Exp: p.exp, Seq: len(p.points), n: n, run: run})
		return make([]float64, n)
	}
	if p.next >= len(p.results) {
		p.overrun = true
		return make([]float64, n)
	}
	r := p.results[p.next]
	p.next++
	if len(r.Values) != n {
		p.overrun = true
		return make([]float64, n)
	}
	return r.Values
}

// Value is Values for the common single-valued point.
func (p *Plan) Value(run func() (float64, error)) float64 {
	v := p.Values(1, func() ([]float64, error) {
		y, err := run()
		return []float64{y}, err
	})
	return v[0]
}

// Check registers a zero-valued validation point (e.g. the chaos kernel
// cross-checks): all compute, no figure values.
func (p *Plan) Check(run func() error) {
	p.Values(0, func() ([]float64, error) { return nil, run() })
}

// Points returns the experiment's independent work units for the given
// options, in declaration order.
func (e Experiment) Points(o Options) ([]Point, error) {
	p := &Plan{declare: true, exp: e.ID}
	if _, err := e.build(o, p); err != nil {
		return nil, err
	}
	return p.points, nil
}

// Render assembles the experiment's tables from precomputed point
// results. results must line up one-to-one with Points(o) — same options,
// same order — which Render verifies.
func (e Experiment) Render(o Options, results []Result) ([]*report.Table, error) {
	p := &Plan{exp: e.ID, results: results}
	tables, err := e.build(o, p)
	if err != nil {
		return nil, err
	}
	if p.overrun || p.next != len(results) {
		return nil, fmt.Errorf("experiments: %s render consumed %d results, have %d (options mismatch?)",
			e.ID, p.next, len(results))
	}
	return tables, nil
}

// Run executes the experiment serially: declare its points, run them in
// order on the calling goroutine, render. This is the -jobs 1 code path;
// RunAllFunc fans the same points across workers with byte-identical
// output.
func (e Experiment) Run(o Options) ([]*report.Table, error) {
	pts, err := e.Points(o)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(pts))
	for i, pt := range pts {
		r, err := pt.Run()
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return e.Render(o, results)
}

// RunAllFunc runs several experiments, fanning all their points across
// jobs parallel workers (jobs <= 1 runs everything serially on the
// calling goroutine), and calls emit once per experiment in ids order as
// soon as that experiment's tables are ready. Each point builds its own
// engine and RNG, and the ordered merge serializes emissions, so the
// emitted tables are byte-identical at any jobs value. emit may be
// invoked from an internal worker goroutine, but never concurrently.
//
// On failure the experiments before the first failing one still emit —
// the same prefix a serial run would have printed — and the first
// failure's error is returned.
func RunAllFunc(ids []string, o Options, jobs int,
	emit func(idx int, id string, tables []*report.Table) error) error {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			return err
		}
		exps[i] = e
	}

	if jobs <= 1 {
		for i, e := range exps {
			tables, err := e.Run(o)
			if err != nil {
				return err
			}
			if err := emit(i, e.ID, tables); err != nil {
				return err
			}
		}
		return nil
	}

	var flat []Point
	sizes := make([]int, len(exps))
	for i, e := range exps {
		pts, err := e.Points(o)
		if err != nil {
			return err
		}
		sizes[i] = len(pts)
		flat = append(flat, pts...)
	}
	return sweep.MapGroups(jobs, sizes,
		func(i int) (Result, error) { return flat[i].Run() },
		func(g int, results []Result) error {
			tables, err := exps[g].Render(o, results)
			if err != nil {
				return err
			}
			return emit(g, exps[g].ID, tables)
		})
}

// RunAll is RunAllFunc collecting each experiment's tables, aligned with
// ids.
func RunAll(ids []string, o Options, jobs int) ([][]*report.Table, error) {
	out := make([][]*report.Table, len(ids))
	err := RunAllFunc(ids, o, jobs, func(idx int, id string, tables []*report.Table) error {
		out[idx] = tables
		return nil
	})
	return out, err
}
