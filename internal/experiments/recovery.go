package experiments

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/workloads"
)

func init() {
	register("recovery", "Rank-failure recovery: detection latency and repair cost", recovery)
}

// recoveryLocks are the arbitration methods compared: lock choice shapes the
// error path too, since revoke/shrink/agree traffic funnels through the same
// progress-engine critical sections as steady-state messaging.
var recoveryLocks = []simlock.Kind{
	simlock.KindMutex, simlock.KindTicket, simlock.KindPriority, simlock.KindMCS,
}

// recoveryScenario is one crash regime of the sweep.
type recoveryScenario struct {
	name string
	fc   fault.Config
}

// recoveryWall bounds each crashy run's real time so a recovery bug aborts
// CI instead of hanging it.
const recoveryWall = 120_000_000_000 // 120 s wall clock

// recoveryScenarios enumerates the crash regimes. Crashes are scheduled in
// the first half of the run (the workload's drain phase cannot adopt a rank
// that dies after it has already exited).
func recoveryScenarios() []recoveryScenario {
	return []recoveryScenario{
		{"early", fault.Config{Crashes: []fault.CrashSpec{{Rank: 1, AtNs: 20_000}}}},
		{"mid", fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 60_000}}}},
		{"lockhold", fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 60_000, OnLockHold: true}}}},
		{"node", fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 40_000, Node: true}}}},
	}
}

// recoveryRun is one (scenario, lock, strategy) cell.
type recoveryRun struct {
	detectNs     int64 // worst heartbeat detection latency
	recoverNs    int64 // worst per-rank time inside recovery
	errPathLocks int64 // progress-lock acquisitions on the error path
}

// recoveryCell runs the fault-tolerant workload under one crash scenario and
// checks the recovery invariants: survivors finish (no watchdog stall, no
// hang), the failure was detected, and a same-seed rerun is bit-identical.
func recoveryCell(o Options, sc recoveryScenario, k simlock.Kind,
	strat workloads.RecoveryStrategy) (recoveryRun, error) {
	iters := 48
	if o.Quick {
		iters = 24
	}
	p := workloads.RecoveryParams{
		Lock:         k,
		Procs:        4,
		ProcsPerNode: 2, // co-locate so node crashes take out two ranks
		Iters:        iters,
		Strategy:     strat,
		Kernel:       workloads.KernelRing,
		Fault:        sc.fc,
		Seed:         o.seed(),
		MaxWall:      recoveryWall,
	}
	run := func() (workloads.RecoveryResult, error) {
		r, err := workloads.Recovery(p)
		if err != nil {
			return r, fmt.Errorf("recovery scenario %q lock %v strategy %v: %w",
				sc.name, k, strat, err)
		}
		return r, nil
	}
	first, err := run()
	if err != nil {
		return recoveryRun{}, err
	}
	again, err := run()
	if err != nil {
		return recoveryRun{}, err
	}
	fs, as := fmt.Sprintf("%+v", first), fmt.Sprintf("%+v", again)
	if fs != as {
		return recoveryRun{}, fmt.Errorf(
			"recovery scenario %q lock %v strategy %v: nondeterministic (%s vs %s)",
			sc.name, k, strat, fs, as)
	}
	if len(first.Recovery.Crashed) == 0 || first.Recovery.DetectNs <= 0 {
		return recoveryRun{}, fmt.Errorf(
			"recovery scenario %q lock %v strategy %v: crash not detected: %+v",
			sc.name, k, strat, first.Recovery)
	}
	if first.Recoveries == 0 || first.Net.WatchdogStalls != 0 {
		return recoveryRun{}, fmt.Errorf(
			"recovery scenario %q lock %v strategy %v: survivors did not recover: %+v",
			sc.name, k, strat, first)
	}
	return recoveryRun{
		detectNs:     first.Recovery.DetectNs,
		recoverNs:    first.RecoverNs,
		errPathLocks: first.Recovery.ErrPathLocks,
	}, nil
}

// recovery sweeps crash scenario x lock x recovery strategy and reports the
// failure-detection latency, the worst per-rank repair time, and how many
// progress-lock acquisitions the error path itself cost — the contention
// question of the paper asked about the recovery path instead of the steady
// state. The x axis is the scenario ordinal.
func recovery(o Options, pl *Plan) ([]*report.Table, error) {
	scenarios := recoveryScenarios()
	if o.Quick {
		scenarios = []recoveryScenario{scenarios[1], scenarios[3]} // mid + node
	}
	locks := recoveryLocks
	if o.Quick {
		locks = []simlock.Kind{simlock.KindMutex, simlock.KindTicket}
	}
	axis := "scenario ("
	for i, sc := range scenarios {
		if i > 0 {
			axis += " "
		}
		axis += fmt.Sprintf("%d=%s", i+1, sc.name)
	}
	axis += ")"

	detect := &report.Table{ID: "recovery-detect", Title: "Failure detection latency",
		XLabel: axis, YLabel: "ns"}
	repair := &report.Table{ID: "recovery-repair", Title: "Worst per-rank recovery time",
		XLabel: axis, YLabel: "ns"}
	errlocks := &report.Table{ID: "recovery-errlocks", Title: "Error-path lock acquisitions",
		XLabel: axis, YLabel: "acquisitions"}
	for _, strat := range []workloads.RecoveryStrategy{workloads.RecoverShrink, workloads.RecoverCheckpoint} {
		for _, k := range locks {
			label := fmt.Sprintf("%v/%v", k, strat)
			ds := detect.AddSeries(label)
			rs := repair.AddSeries(label)
			es := errlocks.AddSeries(label)
			for i, sc := range scenarios {
				sc, k, strat := sc, k, strat
				cell := pl.Values(3, func() ([]float64, error) {
					c, err := recoveryCell(o, sc, k, strat)
					if err != nil {
						return nil, err
					}
					return []float64{float64(c.detectNs), float64(c.recoverNs),
						float64(c.errPathLocks)}, nil
				})
				x := float64(i + 1)
				ds.Add(x, cell[0])
				rs.Add(x, cell[1])
				es.Add(x, cell[2])
			}
		}
	}
	return []*report.Table{detect, repair, errlocks}, nil
}
