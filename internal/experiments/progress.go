package experiments

import (
	"fmt"

	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

func init() {
	register("progress",
		"Progress modes: polling vs. strong vs. continuation — the priority lock's advantage evaporates",
		progressExp)
}

// progressModes is the X axis of the progress experiment: the paper's
// poll-from-Wait shape and the two remedies of docs/PROGRESS.md.
var progressModes = []mpi.ProgressMode{
	mpi.ProgressPolling, mpi.ProgressStrong, mpi.ProgressContinuation,
}

// progressVCIs is the shard axis: the unsharded runtime, where the one
// critical section concentrates the wasted acquisitions, and 16 VCIs,
// where sharding has already diluted them.
var progressVCIs = []int{1, 16}

// progressCell runs one (mode, lock, VCI count) N2N configuration with
// telemetry attached and returns the message rate, the wasted low-class
// (progress-loop) lock acquisitions across all sections — the
// `progress.wasted` counter, the paper's reason for the priority lock —
// and the time-averaged completion-queue depth (`cq.depth`, nonzero only
// under continuation mode). The explicit per-thread-comm mapping matches
// the vci experiment so the two compare like for like.
func progressCell(o Options, m mpi.ProgressMode, k simlock.Kind, n int) (rate, wasted, cqDepth float64, err error) {
	rec := telemetry.New()
	p := workloads.N2NParams{
		Lock:          k,
		Procs:         4,
		Threads:       8,
		MsgBytes:      2048,
		Windows:       o.windows(),
		Seed:          o.seed(),
		PerThreadTags: true,
		VCIs:          n,
		VCIPolicy:     vci.Explicit,
		Progress:      m,
		Tel:           rec,
	}
	r, err := workloads.N2N(p)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("progress mode %v lock %v n=%d: %w", m, k, n, err)
	}
	prof := rec.Profile()
	return r.RateMsgsPerSec, float64(prof.Progress.WastedLowAcq), prof.CompletionQueue.TimeAvg, nil
}

// progressExp sweeps progress mode x lock kind x VCI count over the N2N
// streaming benchmark. The headline table (progress-wasted) shows the
// pathology the priority lock exists for — blocked threads re-acquiring
// the critical section to poll, mostly for nothing — draining to near
// zero under strong progress and continuations: the daemons only take
// the lock when completion events are queued, so the lock choice stops
// mattering and the priority-vs-mutex gap closes. The throughput table
// shows the modes converging; the cq-depth table characterizes the
// continuation pipeline (deliveries waiting in the completion queue
// instead of dangling behind a starved Waitall).
func progressExp(o Options, pl *Plan) ([]*report.Table, error) {
	wasted1 := &report.Table{ID: "progress-wasted",
		Title:  "Wasted progress-loop acquisitions vs. progress mode (1 VCI; 0=polling 1=strong 2=continuation)",
		XLabel: "mode", YLabel: "wasted low-class acq"}
	tput1 := &report.Table{ID: "progress-throughput",
		Title:  "N2N throughput vs. progress mode (1 VCI; 0=polling 1=strong 2=continuation)",
		XLabel: "mode", YLabel: "msgs/s"}
	wasted16 := &report.Table{ID: "progress-wasted-vci16",
		Title:  "Wasted progress-loop acquisitions vs. progress mode (16 VCIs)",
		XLabel: "mode", YLabel: "wasted low-class acq"}
	cqdepth := &report.Table{ID: "progress-cqdepth",
		Title:  "Completion-queue depth under continuation mode (time-averaged)",
		XLabel: "VCIs/proc", YLabel: "avg cq depth"}
	for _, k := range vciLocks {
		w1 := wasted1.AddSeries(k.String())
		t1 := tput1.AddSeries(k.String())
		w16 := wasted16.AddSeries(k.String())
		cq := cqdepth.AddSeries(k.String())
		for mi, m := range progressModes {
			for _, n := range progressVCIs {
				m, k, n := m, k, n
				cell := pl.Values(3, func() ([]float64, error) {
					rate, wasted, depth, err := progressCell(o, m, k, n)
					if err != nil {
						return nil, err
					}
					return []float64{rate, wasted, depth}, nil
				})
				x := float64(mi)
				switch n {
				case 1:
					w1.Add(x, cell[1])
					t1.Add(x, cell[0])
				default:
					w16.Add(x, cell[1])
				}
				if m == mpi.ProgressContinuation {
					cq.Add(float64(n), cell[2])
				}
			}
		}
	}
	return []*report.Table{wasted1, tput1, wasted16, cqdepth}, nil
}
