package experiments

// Paper-claims conformance suite: each ✔/◐ verdict shape recorded in
// EXPERIMENTS.md is asserted programmatically against a quick run of the
// corresponding experiment. The checks are deliberately written as pure
// functions over report tables so that the same predicates can be turned
// against *wrong* data: TestClaimsRejectContentionFreeCostModel rebuilds
// the fig8a table under a cost model with contention gutted and requires
// the fig8a claim to fail, and TestClaimCheckersRejectPerturbedTables
// feeds each checker a minimally perturbed table. A conformance suite
// that cannot reject anything would pin nothing.
//
// Margins are chosen between the observed quick-run values and the claim
// boundary, so real regressions trip them while run-to-run determinism
// (byte-identical output) keeps them exact.

import (
	"fmt"
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/workloads"
)

// claimVal reads series name at x, as an error rather than a t.Fatal so
// checkers stay pure.
func claimVal(tb *report.Table, name string, x float64) (float64, error) {
	for _, s := range tb.Series {
		if s.Name != name {
			continue
		}
		if y, ok := s.Y(x); ok {
			return y, nil
		}
		return 0, fmt.Errorf("table %s series %q has no point at x=%g", tb.ID, name, x)
	}
	return 0, fmt.Errorf("table %s lacks series %q", tb.ID, name)
}

// claimXs returns the x axis of the table's first series.
func claimXs(tb *report.Table) ([]float64, error) {
	if len(tb.Series) == 0 || len(tb.Series[0].Points) == 0 {
		return nil, fmt.Errorf("table %s is empty", tb.ID)
	}
	xs := make([]float64, len(tb.Series[0].Points))
	for i, p := range tb.Series[0].Points {
		xs[i] = p.X
	}
	return xs, nil
}

// atLeast asserts a >= factor*b, labelling both sides.
func atLeast(what string, a float64, factor float64, b float64) error {
	if a < factor*b {
		return fmt.Errorf("%s: %.3g < %.3g x %.3g", what, a, factor, b)
	}
	return nil
}

// claimFig8a: paper Fig. 8a / EXPERIMENTS.md "single > ticket ≈ priority
// > mutex" at small messages. Asserted at the smallest size, where the
// lock arbitration dominates: the single-threaded baseline beats every
// multithreaded method by a real margin, and both fair locks beat the
// mutex. (Series converge at >= 16KB, so nothing is claimed there.)
func claimFig8a(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	x := xs[0]
	get := func(name string) float64 {
		y, e := claimVal(tb, name, x)
		if e != nil && err == nil {
			err = e
		}
		return y
	}
	single, mutex := get("Single"), get("Mutex")
	ticket, prio := get("Ticket"), get("Priority")
	if err != nil {
		return err
	}
	for _, c := range []error{
		atLeast("Single vs Ticket", single, 1.05, ticket),
		atLeast("Single vs Priority", single, 1.05, prio),
		atLeast("Ticket vs Mutex", ticket, 1.05, mutex),
		atLeast("Priority vs Mutex", prio, 1.02, mutex),
	} {
		if c != nil {
			return fmt.Errorf("fig8a ordering at %gB: %w", x, c)
		}
	}
	return nil
}

// claimFig2a: paper Fig. 2a — mutex throughput falls monotonically with
// thread count at small messages, with a substantial total drop.
func claimFig2a(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	x := xs[0]
	order := []string{"1 tpn", "2 tpn", "4 tpn", "8 tpn"}
	var prev float64
	for i, name := range order {
		y, err := claimVal(tb, name, x)
		if err != nil {
			return err
		}
		// Allow 0.5% slack against simulation noise in the plateau; the
		// claim is the monotone trend, not exact pointwise decrease.
		if i > 0 && y > prev*1.005 {
			return fmt.Errorf("fig2a at %gB: %s (%.1f) above %s (%.1f) — rate not non-increasing in threads",
				x, name, y, order[i-1], prev)
		}
		prev = y
	}
	one, _ := claimVal(tb, "1 tpn", x)
	eight, _ := claimVal(tb, "8 tpn", x)
	return atLeast(fmt.Sprintf("fig2a at %gB: 1 tpn vs 8 tpn drop", x), one, 1.10, eight)
}

// claimFig3a: paper Fig. 3a — mutex arbitration bias is hierarchical:
// core-level bias exceeds socket-level bias, which exceeds fair (1.0),
// at every message size.
func claimFig3a(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	for _, x := range xs {
		core, err := claimVal(tb, "Core Level", x)
		if err != nil {
			return err
		}
		socket, err := claimVal(tb, "Socket Level", x)
		if err != nil {
			return err
		}
		if err := atLeast(fmt.Sprintf("fig3a core vs socket bias at %gB", x), core, 1.5, socket); err != nil {
			return err
		}
		if err := atLeast(fmt.Sprintf("fig3a socket bias vs fair at %gB", x), socket, 1.0, 1.2); err != nil {
			return err
		}
	}
	return nil
}

// claimFig5a: paper Fig. 5a — the ticket lock keeps dangling requests
// near zero while the mutex accumulates them: mutex dangling exceeds
// ticket by at least 4x at every size, and the ticket curve is flat.
func claimFig5a(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	tmin, tmax := 0.0, 0.0
	for i, x := range xs {
		mutex, err := claimVal(tb, "Mutex", x)
		if err != nil {
			return err
		}
		ticket, err := claimVal(tb, "Ticket", x)
		if err != nil {
			return err
		}
		if err := atLeast(fmt.Sprintf("fig5a mutex vs ticket dangling at %gB", x), mutex, 4, ticket); err != nil {
			return err
		}
		if i == 0 || ticket < tmin {
			tmin = ticket
		}
		if i == 0 || ticket > tmax {
			tmax = ticket
		}
	}
	if tmax > 2*tmin && tmax-tmin > 5 {
		return fmt.Errorf("fig5a: ticket dangling not flat: %.2f..%.2f", tmin, tmax)
	}
	return nil
}

// claimFig9a: paper Fig. 9a — with asynchronous progress, the fair locks
// beat the mutex at every element size (decisively beyond the smallest),
// and ticket ≈ priority throughout.
func claimFig9a(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	for i, x := range xs {
		mutex, err := claimVal(tb, "Mutex", x)
		if err != nil {
			return err
		}
		ticket, err := claimVal(tb, "Ticket", x)
		if err != nil {
			return err
		}
		prio, err := claimVal(tb, "Priority", x)
		if err != nil {
			return err
		}
		factor := 1.5
		if i > 0 {
			// Beyond the smallest size the mutex starves progress almost
			// completely (paper: up to 5x; this model: more).
			factor = 3
		}
		if err := atLeast(fmt.Sprintf("fig9a ticket vs mutex at %gB", x), ticket, factor, mutex); err != nil {
			return err
		}
		if err := atLeast(fmt.Sprintf("fig9a priority vs mutex at %gB", x), prio, factor, mutex); err != nil {
			return err
		}
		if ticket > prio*1.15 || prio > ticket*1.15 {
			return fmt.Errorf("fig9a at %gB: ticket (%.1f) and priority (%.1f) diverge beyond 15%%",
				x, ticket, prio)
		}
	}
	return nil
}

// paperClaims binds each asserted verdict to its experiment.
var paperClaims = []struct {
	id    string
	check func(*report.Table) error
}{
	{"fig2a", claimFig2a},
	{"fig3a", claimFig3a},
	{"fig5a", claimFig5a},
	{"fig8a", claimFig8a},
	{"fig9a", claimFig9a},
}

// TestPaperClaims regenerates each claimed figure in quick mode and
// asserts its verdict shape.
func TestPaperClaims(t *testing.T) {
	for _, c := range paperClaims {
		c := c
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			tb := runExp(t, c.id)[0]
			if err := c.check(tb); err != nil {
				t.Errorf("claim violated: %v\n%s", err, tb.Format())
			}
		})
	}
}

// TestClaimsRejectContentionFreeCostModel is the suite's own negative
// control at the model level: rebuild the fig8a measurement under a cost
// model whose contention machinery is gutted (free cache-line transfers,
// no CAS storms, no futex syscalls, no runtime state following the lock)
// and require the fig8a claim to fail. Under that mutation multithreaded
// runs overlap their application work with a nearly free critical
// section and overtake the single-threaded baseline — so if the claim
// still passed, the suite would be vacuous.
func TestClaimsRejectContentionFreeCostModel(t *testing.T) {
	flat := machine.Default()
	flat.SameCoreReuse = 1
	flat.SameSocketTransfer = 1
	flat.CrossSocketTransfer = 1
	flat.CSStateLines = 0
	flat.CASPenalty = 0
	flat.CASJitter = 1 // must stay > 0 (mutex race nondeterminism)
	flat.FutexWake = 1
	flat.FutexWakeJitter = 1
	flat.FutexWakeSyscall = 0

	tb := &report.Table{ID: "fig8a-mutated", Title: "fig8a under gutted cost model",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	o := quick()
	for _, k := range []simlock.Kind{
		simlock.KindNone, simlock.KindMutex, simlock.KindTicket, simlock.KindPriority,
	} {
		threads := 8
		if k == simlock.KindNone {
			threads = 1
		}
		p := baseTP(o, k, threads, 1)
		p.Cost = flat
		r, err := workloads.Throughput(p)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		tb.AddSeries(k.String()).Add(1, r.RateMsgsPerSec/1000)
	}
	if err := claimFig8a(tb); err == nil {
		t.Fatalf("fig8a claim accepted a contention-free cost model — the suite cannot detect model regressions\n%s",
			tb.Format())
	} else {
		t.Logf("claim correctly rejected mutated model: %v", err)
	}
}

// TestClaimCheckersRejectPerturbedTables feeds every checker a table
// whose shape is minimally perturbed from the claimed one and requires
// rejection, so a checker that degenerates to always-true fails here.
func TestClaimCheckersRejectPerturbedTables(t *testing.T) {
	mk := func(id string, cols map[string][]float64, xs ...float64) *report.Table {
		tb := &report.Table{ID: id}
		for name, ys := range cols {
			s := tb.AddSeries(name)
			for i, x := range xs {
				s.Add(x, ys[i])
			}
		}
		return tb
	}
	cases := []struct {
		name  string
		check func(*report.Table) error
		tb    *report.Table
	}{
		{"fig8a mutex beats ticket", claimFig8a, mk("fig8a",
			map[string][]float64{"Single": {1200}, "Mutex": {1000}, "Ticket": {900}, "Priority": {950}}, 1)},
		{"fig8a single not ahead", claimFig8a, mk("fig8a",
			map[string][]float64{"Single": {1000}, "Mutex": {860}, "Ticket": {990}, "Priority": {940}}, 1)},
		{"fig2a rate rises with threads", claimFig2a, mk("fig2a",
			map[string][]float64{"1 tpn": {1100}, "2 tpn": {1150}, "4 tpn": {1000}, "8 tpn": {900}}, 1)},
		{"fig2a drop too shallow", claimFig2a, mk("fig2a",
			map[string][]float64{"1 tpn": {1100}, "2 tpn": {1090}, "4 tpn": {1080}, "8 tpn": {1070}}, 1)},
		{"fig3a socket above core", claimFig3a, mk("fig3a",
			map[string][]float64{"Core Level": {2.0}, "Socket Level": {1.8}}, 1)},
		{"fig3a socket fair", claimFig3a, mk("fig3a",
			map[string][]float64{"Core Level": {5.0}, "Socket Level": {1.0}}, 1)},
		{"fig5a ticket dangles like mutex", claimFig5a, mk("fig5a",
			map[string][]float64{"Mutex": {90}, "Ticket": {40}}, 1)},
		{"fig9a mutex catches ticket", claimFig9a, mk("fig9a",
			map[string][]float64{"Mutex": {200}, "Ticket": {250}, "Priority": {250}}, 8)},
		{"fig9a ticket diverges from priority", claimFig9a, mk("fig9a",
			map[string][]float64{"Mutex": {100}, "Ticket": {300}, "Priority": {160}}, 8)},
	}
	for _, c := range cases {
		if err := c.check(c.tb); err == nil {
			t.Errorf("%s: checker accepted perturbed table", c.name)
		}
	}
}

// claimPartitionedLockAcq: ISSUE 10's acceptance shape — with eager sends
// every payload message enters the runtime critical section at least
// once, so the acquisitions-per-message column sits at or above one for
// every lock; with partitioned channels only the epoch-completing Pready
// enters, so the column collapses below one per message (toward one per
// aggregate) and to at most half the eager figure, across all four locks
// and both shard counts.
func claimPartitionedLockAcq(tb *report.Table) error {
	xs, err := claimXs(tb)
	if err != nil {
		return err
	}
	for _, k := range vciLocks {
		for _, x := range xs {
			eager, err := claimVal(tb, k.String()+"/eager", x)
			if err != nil {
				return err
			}
			part, err := claimVal(tb, k.String()+"/partitioned", x)
			if err != nil {
				return err
			}
			if eager < 1 {
				return fmt.Errorf("partitioned-lockacq %v at %g VCIs: eager %.3f acq/msg below one per message",
					k, x, eager)
			}
			if part >= 1 {
				return fmt.Errorf("partitioned-lockacq %v at %g VCIs: partitioned %.3f acq/msg did not collapse below one per message",
					k, x, part)
			}
			if part > 0.5*eager {
				return fmt.Errorf("partitioned-lockacq %v at %g VCIs: partitioned %.3f acq/msg not under half of eager %.3f",
					k, x, part, eager)
			}
		}
	}
	return nil
}

// TestPartitionedClaims asserts the partitioned experiment's verdict on
// its lock-acquisition table (the experiment's headline column; the
// throughput and chaos tables are shape-checked by the quick-run golden).
func TestPartitionedClaims(t *testing.T) {
	t.Parallel()
	var acq *report.Table
	for _, tb := range runExp(t, "partitioned") {
		if tb.ID == "partitioned-lockacq" {
			acq = tb
		}
	}
	if acq == nil {
		t.Fatal("partitioned experiment produced no partitioned-lockacq table")
	}
	if err := claimPartitionedLockAcq(acq); err != nil {
		t.Errorf("claim violated: %v\n%s", err, acq.Format())
	}
}

// TestPartitionedCheckerRejectsPerturbedTables is the negative control
// for claimPartitionedLockAcq, mirroring
// TestClaimCheckersRejectPerturbedTables for the two failure directions.
func TestPartitionedCheckerRejectsPerturbedTables(t *testing.T) {
	mk := func(eager, part float64) *report.Table {
		tb := &report.Table{ID: "partitioned-lockacq"}
		for _, k := range vciLocks {
			tb.AddSeries(k.String()+"/eager").Add(1, eager)
			tb.AddSeries(k.String()+"/partitioned").Add(1, part)
		}
		return tb
	}
	if err := claimPartitionedLockAcq(mk(2.0, 1.4)); err == nil {
		t.Error("checker accepted a partitioned path that locks per message")
	}
	if err := claimPartitionedLockAcq(mk(2.0, 0.4)); err != nil {
		t.Errorf("checker rejected the claimed shape: %v", err)
	}
	if err := claimPartitionedLockAcq(mk(0.8, 0.3)); err == nil {
		t.Error("checker accepted an eager path below one acquisition per message")
	}
}
