package experiments

import (
	"strings"
	"testing"

	"mpicontend/internal/report"
)

func quick() Options { return Options{Quick: true} }

func runExp(t *testing.T, id string) []*report.Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Series) == 0 {
			t.Fatalf("%s: table %s has no series", id, tb.ID)
		}
		out := tb.Format()
		if len(out) == 0 {
			t.Fatalf("%s: empty format", id)
		}
	}
	return tables
}

func seriesByName(t *testing.T, tb *report.Table, name string) *report.Series {
	t.Helper()
	for _, s := range tb.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("table %s lacks series %q", tb.ID, name)
	return nil
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2a", "fig2b", "fig3a", "fig3c", "fig5a", "fig5b",
		"fig5c", "fig6b", "fig8a", "fig8b", "fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b", "fig10c", "fig11a", "fig11b", "fig12b",
		"ablation-spin", "ablation-priomutex", "ablation-socketprio",
		"ablation-queuelocks", "ablation-granularity", "ablation-wakeup",
		"suite-patterns", "ablation-funneled", "chaos", "partitioned",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, err := Get("nonsense"); err == nil {
		t.Error("Get(nonsense) should fail")
	}
}

func TestTable1(t *testing.T) {
	runExp(t, "table1")
	txt := Table1Text()
	for _, want := range []string{"Nehalem", "2.6 GHz", "310"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 1 text missing %q:\n%s", want, txt)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	tb := runExp(t, "fig2a")[0]
	one := seriesByName(t, tb, "1 tpn")
	eight := seriesByName(t, tb, "8 tpn")
	// Paper: rate degrades with thread count at small message sizes.
	y1, _ := one.Y(1)
	y8, _ := eight.Y(1)
	if y8 >= y1 {
		t.Errorf("8 tpn (%.0f) should be below 1 tpn (%.0f) at 1B", y8, y1)
	}
}

func TestFig3aShape(t *testing.T) {
	tb := runExp(t, "fig3a")[0]
	core := seriesByName(t, tb, "Core Level")
	for _, p := range core.Points {
		if p.Y < 1.2 {
			t.Errorf("core bias at %v bytes = %.2f, want > 1.2", p.X, p.Y)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	tb := runExp(t, "fig5a")[0]
	m := seriesByName(t, tb, "Mutex")
	tk := seriesByName(t, tb, "Ticket")
	for _, p := range m.Points {
		if y, ok := tk.Y(p.X); ok && p.Y <= y {
			t.Errorf("at %v bytes mutex dangling %.1f <= ticket %.1f", p.X, p.Y, y)
		}
	}
}

func TestFig8aShape(t *testing.T) {
	tb := runExp(t, "fig8a")[0]
	single := seriesByName(t, tb, "Single")
	mutex := seriesByName(t, tb, "Mutex")
	ticket := seriesByName(t, tb, "Ticket")
	ys, _ := single.Y(1)
	ym, _ := mutex.Y(1)
	yt, _ := ticket.Y(1)
	if !(ys > yt && yt > ym) {
		t.Errorf("ordering at 1B: single %.0f, ticket %.0f, mutex %.0f "+
			"(want single > ticket > mutex)", ys, yt, ym)
	}
}

func TestFig8bShape(t *testing.T) {
	tb := runExp(t, "fig8b")[0]
	mutex := seriesByName(t, tb, "Mutex")
	ticket := seriesByName(t, tb, "Ticket")
	ym, _ := mutex.Y(1)
	yt, _ := ticket.Y(1)
	if yt >= ym {
		t.Errorf("ticket latency %.2f should be below mutex %.2f", yt, ym)
	}
}

func TestFig9aShape(t *testing.T) {
	tb := runExp(t, "fig9a")[0]
	mutex := seriesByName(t, tb, "Mutex")
	ticket := seriesByName(t, tb, "Ticket")
	better := 0
	for _, p := range ticket.Points {
		if y, ok := mutex.Y(p.X); ok && p.Y > y {
			better++
		}
	}
	if better == 0 {
		t.Error("ticket never beat mutex on RMA put")
	}
}

func TestFig10aShape(t *testing.T) {
	tb := runExp(t, "fig10a")[0]
	s := seriesByName(t, tb, "BFS")
	y1, _ := s.Y(1)
	y4, _ := s.Y(4)
	if y4 < 2*y1 {
		t.Errorf("BFS 4-thread MTEPS %.1f < 2x single %.1f", y4, y1)
	}
}

func TestFig11aShape(t *testing.T) {
	tb := runExp(t, "fig11a")[0]
	m := seriesByName(t, tb, "Mutex")
	tk := seriesByName(t, tb, "Ticket")
	// Smallest per-core problem: fair lock should win.
	x := m.Points[0].X
	ym, _ := m.Y(x)
	yt, _ := tk.Y(x)
	if yt <= ym {
		t.Errorf("small stencil: ticket %.3f <= mutex %.3f", yt, ym)
	}
}

func TestFig11bShape(t *testing.T) {
	tb := runExp(t, "fig11b")[0]
	comp := seriesByName(t, tb, "Computation")
	first := comp.Points[0].Y
	last := comp.Points[len(comp.Points)-1].Y
	if last <= first {
		t.Errorf("compute share should grow with size: %.1f%% -> %.1f%%", first, last)
	}
}

func TestFig12bShape(t *testing.T) {
	tb := runExp(t, "fig12b")[0]
	m := seriesByName(t, tb, "Mutex")
	tk := seriesByName(t, tb, "Ticket")
	for _, p := range m.Points {
		if y, ok := tk.Y(p.X); ok && p.Y <= y {
			t.Errorf("at %v cores mutex time %.4fs <= ticket %.4fs", p.X, p.Y, y)
		}
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig2b", "fig3c", "fig5b", "fig5c", "fig6b",
		"fig9b", "fig9c", "fig10b", "fig10c",
		"ablation-spin", "ablation-priomutex", "ablation-socketprio",
		"ablation-queuelocks", "ablation-granularity", "ablation-wakeup",
		"suite-patterns", "ablation-funneled"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runExp(t, id)
		})
	}
}

func TestChaos(t *testing.T) {
	tables := runExp(t, "chaos")
	// Every lock survives every scenario with zero dangling requests and
	// nonzero goodput; the transport visibly retransmitted.
	var goodput, retx, dangling *report.Table
	for _, tb := range tables {
		switch tb.ID {
		case "chaos":
			goodput = tb
		case "chaos-retx":
			retx = tb
		case "chaos-dangling":
			dangling = tb
		}
	}
	if goodput == nil || retx == nil || dangling == nil {
		t.Fatalf("chaos tables missing: %v", tables)
	}
	for _, name := range []string{"Mutex", "Ticket", "Priority", "MCS"} {
		for _, p := range seriesByName(t, goodput, name).Points {
			if p.Y <= 0 {
				t.Errorf("%s scenario %v: zero goodput", name, p.X)
			}
		}
		var totalRetx float64
		for _, p := range seriesByName(t, retx, name).Points {
			totalRetx += p.Y
		}
		if totalRetx == 0 {
			t.Errorf("%s: no retransmissions under injected drops", name)
		}
		for _, p := range seriesByName(t, dangling, name).Points {
			if p.Y != 0 {
				t.Errorf("%s scenario %v: %v dangling requests", name, p.X, p.Y)
			}
		}
	}
}
