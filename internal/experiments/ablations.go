package experiments

import (
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/stencil"
	"mpicontend/internal/workloads"
)

func init() {
	register("ablation-spin", "Mutex spin-before-sleep budget sweep", ablationSpin)
	register("ablation-priomutex", "Priority built from mutexes (§7)", ablationPrioMutex)
	register("ablation-socketprio", "Socket-aware priority starvation (§7)", ablationSocketPrio)
	register("ablation-queuelocks", "Ticket vs MCS vs TAS (§8)", ablationQueueLocks)
	register("ablation-granularity", "Granularity x arbitration matrix (Fig. 1 + §7)", ablationGranularity)
	register("ablation-wakeup", "Selective thread wake-up (§9 future work)", ablationWakeup)
	register("suite-patterns", "Multithreaded MPI pattern battery (§8 ref [27])", suitePatterns)
	register("ablation-funneled", "THREAD_FUNNELED vs THREAD_MULTIPLE stencil (§6.2.2)", ablationFunneled)
}

// ablationSpin sweeps the NPTL spin budget: longer user-space spinning
// trades futex wake bubbles for CAS-storm traffic.
func ablationSpin(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-spin", Title: "Mutex spin budget vs throughput (8 threads, 64B)",
		XLabel: "spin budget ns", YLabel: "10^3 msgs/s"}
	s := t.AddSeries("Mutex")
	for _, budget := range []int64{0, 50, 200, 1000, 5000} {
		cm := machine.Default()
		cm.MutexSpinBudget = budget
		p := baseTP(o, simlock.KindMutex, 8, 64)
		p.Cost = cm
		s.Add(float64(budget), throughputRate(pl, p))
	}
	return []*report.Table{t}, nil
}

// ablationPrioMutex measures the paper's §7 claim that three mutexes
// cannot build a working priority lock.
func ablationPrioMutex(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-priomutex", Title: "Priority lock construction comparison",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, k := range []simlock.Kind{simlock.KindPriority, simlock.KindPrioMutex, simlock.KindTicket} {
		k := k
		throughputSeries(o, pl, t, k.String(), func(b int64) workloads.ThroughputParams {
			return baseTP(o, k, 8, b)
		})
	}
	return []*report.Table{t}, nil
}

// ablationSocketPrio shows the §7 socket-aware variant: good throughput,
// terrible fairness.
func ablationSocketPrio(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-socketprio",
		Title:  "Socket-aware arbitration: throughput and starvation",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s (rate series) / requests (dangling series)"}
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindSocketPriority, simlock.KindCohort} {
		rate := t.AddSeries(k.String())
		dang := t.AddSeries(k.String() + "_dangling")
		for _, bytes := range o.msgSizes() {
			if bytes > 4096 {
				continue
			}
			p := baseTP(o, k, 8, bytes)
			p.TraceRank = 1
			v := pl.Values(2, func() ([]float64, error) {
				r, err := workloads.Throughput(p)
				if err != nil {
					return nil, err
				}
				return []float64{r.RateMsgsPerSec / 1000, r.DanglingAvg}, nil
			})
			rate.Add(float64(bytes), v[0])
			dang.Add(float64(bytes), v[1])
		}
	}
	return []*report.Table{t}, nil
}

// ablationQueueLocks compares the FIFO lock family from the related work.
func ablationQueueLocks(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-queuelocks", Title: "Ticket vs MCS vs TAS",
		XLabel: "msg bytes", YLabel: "10^3 msgs/s"}
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindMCS, simlock.KindTAS} {
		k := k
		throughputSeries(o, pl, t, k.String(), func(b int64) workloads.ThroughputParams {
			return baseTP(o, k, 8, b)
		})
	}
	return []*report.Table{t}, nil
}

// ablationGranularity crosses the paper's two dimensions — critical-section
// granularity (Fig. 1) and arbitration — the §7 "cost-effectiveness study"
// the paper calls for.
func ablationGranularity(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-granularity",
		Title:  "Granularity x arbitration (8 threads, 64B messages)",
		XLabel: "granularity (0=Global 1=Brief 2=Fine 3=LockFree)",
		YLabel: "10^3 msgs/s"}
	grans := []mpi.Granularity{mpi.GranGlobal, mpi.GranBrief, mpi.GranFine, mpi.GranLockFree}
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		s := t.AddSeries(k.String())
		for gi, g := range grans {
			p := baseTP(o, k, 8, 64)
			p.Granularity = g
			s.Add(float64(gi), throughputRate(pl, p))
		}
	}
	return []*report.Table{t}, nil
}

// ablationWakeup measures the paper's §9 future-work proposal — selective
// thread wake-up on events instead of busy polling — on the workloads that
// waste the most lock acquisitions.
func ablationWakeup(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-wakeup",
		Title:  "Selective thread wake-up (§9 future work)",
		XLabel: "mode (0=busy-poll 1=event-driven)", YLabel: "rate (10^3/s)"}
	ops := 16
	if o.Quick {
		ops = 6
	}
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket} {
		tp := t.AddSeries(k.String() + "_throughput")
		rm := t.AddSeries(k.String() + "_rmaput")
		for mode, wake := range []bool{false, true} {
			p := baseTP(o, k, 8, 64)
			p.SelectiveWakeup = wake
			tp.Add(float64(mode), throughputRate(pl, p))
			rp := workloads.RMAParams{
				Lock: k, Op: workloads.OpPut, ElemBytes: 64, Ops: ops,
				Window: 1, Seed: o.seed(), SelectiveWakeup: wake,
			}
			rmRate := pl.Value(func() (float64, error) {
				rr, err := workloads.RMA(rp)
				if err != nil {
					return 0, err
				}
				return rr.RateElemPerSec / 1000, nil
			})
			rm.Add(float64(mode), rmRate)
		}
	}
	return []*report.Table{t}, nil
}

// suitePatterns runs the Thakur–Gropp-style multithreaded pattern battery
// (§8, ref [27]) across the three main locks.
func suitePatterns(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "suite-patterns",
		Title:  "Multithreaded MPI pattern battery (after Thakur & Gropp)",
		XLabel: "pattern (0=pairs 1=fanin 2=fanout 3=overlap)",
		YLabel: "10^3 msgs/s"}
	msgs := 64
	if o.Quick {
		msgs = 24
	}
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		s := t.AddSeries(k.String())
		for pi, pat := range workloads.Patterns() {
			p := workloads.PatternParams{
				Lock: k, Pattern: pat, Threads: 8, Msgs: msgs, Seed: o.seed(),
			}
			rate := pl.Value(func() (float64, error) {
				r, err := workloads.RunPattern(p)
				if err != nil {
					return 0, err
				}
				return r.RateMsgsPerSec / 1000, nil
			})
			s.Add(float64(pi), rate)
		}
	}
	return []*report.Table{t}, nil
}

// ablationFunneled contrasts the FUNNELED structure common stencils use
// (one communicating thread, lock-free runtime) with THREAD_MULTIPLE under
// mutex and ticket arbitration (§6.2.2's framing).
func ablationFunneled(o Options, pl *Plan) ([]*report.Table, error) {
	t := &report.Table{ID: "ablation-funneled",
		Title:  "Stencil: THREAD_FUNNELED vs THREAD_MULTIPLE",
		XLabel: "grid edge", YLabel: "GFlops"}
	edges := []int{16, 32, 64}
	iters := 4
	if o.Quick {
		edges = []int{16, 32}
		iters = 3
	}
	type cfg struct {
		name     string
		lock     simlock.Kind
		funneled bool
	}
	for _, c := range []cfg{
		{"Funneled", simlock.KindNone, true},
		{"Multiple_Mutex", simlock.KindMutex, false},
		{"Multiple_Ticket", simlock.KindTicket, false},
	} {
		s := t.AddSeries(c.name)
		for _, e := range edges {
			p := stencil.Params{
				Lock: c.lock, Procs: 4, Threads: 8,
				NX: e, NY: e, NZ: e, Iters: iters,
				Funneled: c.funneled, Seed: o.seed(),
			}
			gflops := pl.Value(func() (float64, error) {
				r, err := stencil.Run(p)
				if err != nil {
					return 0, err
				}
				return r.GFlops, nil
			})
			s.Add(float64(e), gflops)
		}
	}
	return []*report.Table{t}, nil
}
