package experiments

import (
	"fmt"
	"strings"

	"mpicontend/internal/fault"
	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

func init() {
	register("partitioned",
		"Partitioned point-to-point: lock-free Pready aggregation vs. per-message eager sends",
		partitionedExp)
}

// partVCIs is the shard axis of the partitioned sweep: the unsharded
// runtime where the send-path lock is hottest, and 16 VCIs where each
// thread's stream owns a shard and the remaining contention is the
// shared-NIC injection lock.
var partVCIs = []int{1, 16}

// partCell runs one (lock, VCIs, progress, send-mode) N2N configuration
// and reduces it to the four quantities the tables plot: message rate,
// high-class (application-call) lock acquisitions per payload message on
// the send/receive path families (shard sections + NIC injection), total
// wait time on those families, and the aggregation ratio
// (partitions carried per wire transfer; 1 for eager, Window/peers for
// partitioned).
//
// The acquisitions-per-message column is the experiment's headline: with
// eager sends every message enters the critical section at least once, so
// the column sits at or above one for every lock; with partitioned
// channels only the final Pready of each epoch enters (the other
// Window/peers-1 are atomic bitmap flips), so the column collapses toward
// acquisitions-per-aggregate.
func partCell(o Options, k simlock.Kind, vcis int, pm mpi.ProgressMode, partitioned bool) (cell [4]float64, err error) {
	rec := telemetry.New()
	p := workloads.N2NParams{
		Lock:          k,
		Procs:         4,
		Threads:       8,
		MsgBytes:      2048,
		Windows:       o.windows(),
		Seed:          o.seed(),
		PerThreadTags: true,
		VCIs:          vcis,
		VCIPolicy:     vci.Explicit,
		Progress:      pm,
		Partitioned:   partitioned,
		Tel:           rec,
	}
	r, err := workloads.N2N(p)
	if err != nil {
		return cell, fmt.Errorf("partitioned lock %v vcis=%d progress=%v part=%v: %w",
			k, vcis, pm, partitioned, err)
	}
	var highAcq int64
	var waitNs float64
	for _, g := range telemetry.GroupVCILocks(rec.Profile()) {
		if strings.HasPrefix(g.Name, "cs[") || strings.HasPrefix(g.Name, "nic[") {
			highAcq += g.HighAcq
			waitNs += g.WaitNs
		}
	}
	aggRatio := 1.0
	if partitioned {
		ps := r.Part
		if ps.Aggregates == 0 {
			return cell, fmt.Errorf("partitioned lock %v vcis=%d: no aggregates recorded", k, vcis)
		}
		if ps.Partitions != r.Messages {
			return cell, fmt.Errorf("partitioned lock %v vcis=%d: %d partitions carried, %d messages",
				k, vcis, ps.Partitions, r.Messages)
		}
		aggRatio = float64(ps.Partitions) / float64(ps.Aggregates)
	}
	cell = [4]float64{
		r.RateMsgsPerSec,
		float64(highAcq) / float64(r.Messages),
		waitNs,
		aggRatio,
	}
	return cell, nil
}

// partChaosCell soaks the partitioned path on a lossy network and reports
// the recovery granularity: how many whole-transport retransmissions fired
// versus how many partitions those retransmitted segments re-carried,
// against the total partition volume. Partition-granularity recovery means
// the middle number stays well under the last one — a dropped aggregate
// resends only its unacked ranges. The cell reruns itself with the same
// seed and rejects any nondeterminism, like the chaos soak proper.
func partChaosCell(o Options, k simlock.Kind) (retx, partRetx, parts float64, err error) {
	p := workloads.N2NParams{
		Lock:          k,
		Procs:         4,
		Threads:       4,
		MsgBytes:      1024,
		Windows:       o.windows(),
		Seed:          o.seed(),
		PerThreadTags: true,
		Partitioned:   true,
		Fault:         fault.Config{DropProb: 0.02, Seed: o.seed(), WatchdogNs: 50_000_000},
		MaxWall:       chaosWall,
	}
	run := func() (workloads.N2NResult, error) {
		r, err := workloads.N2N(p)
		if err != nil {
			return r, fmt.Errorf("partitioned chaos lock %v: %w", k, err)
		}
		if dangling := r.Net.GiveUps + r.Net.RequestFailures + r.Net.WatchdogStalls; dangling != 0 {
			return r, fmt.Errorf("partitioned chaos lock %v: %d dangling requests", k, dangling)
		}
		if r.Part.PartRetransmits >= r.Part.Partitions {
			return r, fmt.Errorf("partitioned chaos lock %v: retransmitted %d of %d partitions (whole-epoch replay?)",
				k, r.Part.PartRetransmits, r.Part.Partitions)
		}
		return r, nil
	}
	first, err := run()
	if err != nil {
		return 0, 0, 0, err
	}
	again, err := run()
	if err != nil {
		return 0, 0, 0, err
	}
	if first.SimNs != again.SimNs || first.Part != again.Part || first.Net != again.Net {
		return 0, 0, 0, fmt.Errorf("partitioned chaos lock %v: nondeterministic rerun", k)
	}
	return float64(first.Net.Retransmits + first.Net.FastRetransmits),
		float64(first.Part.PartRetransmits),
		float64(first.Part.Partitions), nil
}

// partitionedExp sweeps lock kind x VCI count x send mode over the N2N
// streaming benchmark, with a continuation-mode leg and a lossy-network
// leg. The story the tables tell: eager sends pay one critical-section
// entry per message, so at 1 VCI the arbitration method separates the
// locks; partitioned channels move per-message work to lock-free
// readiness flips and enter the runtime once per aggregated transfer, so
// the acquisition column collapses to ~acquisitions-per-aggregate and the
// lock curves converge without any sharding — and with 16 VCIs the two
// remedies compose. The chaos table shows the recovery granularity the
// partitioned wire format buys: only unacked partition ranges are resent.
func partitionedExp(o Options, pl *Plan) ([]*report.Table, error) {
	tput := &report.Table{ID: "partitioned-throughput",
		Title:  "N2N throughput: eager vs. partitioned sends (polling)",
		XLabel: "VCIs/proc", YLabel: "msgs/s"}
	acq := &report.Table{ID: "partitioned-lockacq",
		Title:  "Send/receive-path lock acquisitions per message",
		XLabel: "VCIs/proc", YLabel: "high-class acq/msg"}
	cswait := &report.Table{ID: "partitioned-cswait",
		Title:  "Critical-section + NIC-lock wait time: eager vs. partitioned",
		XLabel: "VCIs/proc", YLabel: "total wait ns"}
	aggr := &report.Table{ID: "partitioned-aggregation",
		Title:  "Aggregation ratio (partitions per wire transfer)",
		XLabel: "VCIs/proc", YLabel: "partitions/aggregate"}
	cont := &report.Table{ID: "partitioned-continuation",
		Title:  "N2N throughput: eager vs. partitioned sends (continuation)",
		XLabel: "VCIs/proc", YLabel: "msgs/s"}
	for _, k := range vciLocks {
		for _, part := range []bool{false, true} {
			mode := "eager"
			if part {
				mode = "partitioned"
			}
			name := k.String() + "/" + mode
			ts, as, cs, gs := tput.AddSeries(name), acq.AddSeries(name),
				cswait.AddSeries(name), aggr.AddSeries(name)
			qs := cont.AddSeries(name)
			for _, n := range partVCIs {
				k, part, n := k, part, n
				cell := pl.Values(4, func() ([]float64, error) {
					c, err := partCell(o, k, n, mpi.ProgressPolling, part)
					return c[:], err
				})
				ccell := pl.Values(4, func() ([]float64, error) {
					c, err := partCell(o, k, n, mpi.ProgressContinuation, part)
					return c[:], err
				})
				x := float64(n)
				ts.Add(x, cell[0])
				as.Add(x, cell[1])
				cs.Add(x, cell[2])
				gs.Add(x, cell[3])
				qs.Add(x, ccell[0])
			}
		}
	}

	axis := "lock ("
	for i, k := range vciLocks {
		if i > 0 {
			axis += " "
		}
		axis += fmt.Sprintf("%d=%v", i+1, k)
	}
	axis += ")"
	chaos := &report.Table{ID: "partitioned-chaos",
		Title:  "Partition-granularity recovery under 2% drop",
		XLabel: axis, YLabel: "count"}
	rs := chaos.AddSeries("net-retransmits")
	ps := chaos.AddSeries("partition-retransmits")
	vs := chaos.AddSeries("partitions-total")
	for i, k := range vciLocks {
		k := k
		cell := pl.Values(3, func() ([]float64, error) {
			retx, partRetx, parts, err := partChaosCell(o, k)
			if err != nil {
				return nil, err
			}
			return []float64{retx, partRetx, parts}, nil
		})
		x := float64(i + 1)
		rs.Add(x, cell[0])
		ps.Add(x, cell[1])
		vs.Add(x, cell[2])
	}
	return []*report.Table{tput, acq, cswait, aggr, cont, chaos}, nil
}
