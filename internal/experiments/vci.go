package experiments

import (
	"fmt"

	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/report"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/workloads"
)

func init() {
	register("vci", "Per-VCI runtime: sharded critical sections vs. shared-NIC arbitration", vciExp)
}

// vciLocks are the arbitration methods compared across the shard sweep:
// the paper's baseline and remedies plus the CLH queue lock, so the
// crossover covers both backoff- and queue-style arbitration.
var vciLocks = []simlock.Kind{
	simlock.KindMutex, simlock.KindTicket, simlock.KindCLH, simlock.KindPriority,
}

// vciCounts is the VCIs-per-proc axis. 1 is the unsharded baseline where
// lock choice matters most; by 16 the per-thread streams have their own
// shards and the arbitration method stops mattering for throughput.
func vciCounts(o Options) []int {
	if o.Quick {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16, 64}
}

// vciCell runs one (lock, VCI count) N2N configuration with telemetry
// attached and returns the message rate plus the total wait time on the
// proc-wide arbitration sites: the per-VCI shard sections and the
// shared-NIC injection lock (the one arbitration point sharding cannot
// remove). The explicit mapping policy (one setup-time comm per thread,
// pinned to VCI t%n) keeps the thread→shard assignment exact and
// balanced at every count, so the curves measure sharding itself rather
// than tag-hash collision luck. Telemetry is purely observational, so
// attaching it does not perturb the simulated rate.
func vciCell(o Options, k simlock.Kind, n int) (rate, csWaitNs, nicWaitNs float64, err error) {
	rec := telemetry.New()
	p := workloads.N2NParams{
		Lock:          k,
		Procs:         4,
		Threads:       8,
		MsgBytes:      2048,
		Windows:       o.windows(),
		Seed:          o.seed(),
		PerThreadTags: true,
		VCIs:          n,
		VCIPolicy:     vci.Explicit,
		Tel:           rec,
	}
	r, err := workloads.N2N(p)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("vci lock %v n=%d: %w", k, n, err)
	}
	for _, g := range telemetry.GroupVCILocks(rec.Profile()) {
		switch {
		case len(g.Name) >= 3 && g.Name[:3] == "cs[":
			csWaitNs += g.WaitNs
		case len(g.Name) >= 4 && g.Name[:4] == "nic[":
			nicWaitNs += g.WaitNs
		}
	}
	return r.RateMsgsPerSec, csWaitNs, nicWaitNs, nil
}

// vciExp sweeps lock kind x VCI count over the N2N streaming benchmark
// with one explicitly placed communicator per thread, so each thread's
// stream lands on its own shard once enough VCIs exist. The first table
// is the crossover the VCI literature reports: with one VCI the
// arbitration method separates the locks, and as shards multiply the
// curves converge — fine-grained resources beat arbitration. The second
// and third tables show where the wait time went: the shard critical
// sections drain with sharding, while the shared-NIC injection lock
// remains and still differentiates the lock kinds at 16+ VCIs.
func vciExp(o Options, pl *Plan) ([]*report.Table, error) {
	counts := vciCounts(o)
	tput := &report.Table{ID: "vci-throughput",
		Title:  "N2N throughput vs. VCIs per proc (lock crossover)",
		XLabel: "VCIs/proc", YLabel: "msgs/s"}
	cswait := &report.Table{ID: "vci-cswait",
		Title:  "Critical-section wait time vs. VCIs per proc",
		XLabel: "VCIs/proc", YLabel: "total wait ns"}
	nicwait := &report.Table{ID: "vci-nicwait",
		Title:  "Shared-NIC injection-lock wait time vs. VCIs per proc",
		XLabel: "VCIs/proc", YLabel: "total wait ns"}
	for _, k := range vciLocks {
		ts := tput.AddSeries(k.String())
		cs := cswait.AddSeries(k.String())
		ns := nicwait.AddSeries(k.String())
		for _, n := range counts {
			k, n := k, n
			cell := pl.Values(3, func() ([]float64, error) {
				rate, csW, nicW, err := vciCell(o, k, n)
				if err != nil {
					return nil, err
				}
				return []float64{rate, csW, nicW}, nil
			})
			x := float64(n)
			ts.Add(x, cell[0])
			cs.Add(x, cell[1])
			ns.Add(x, cell[2])
		}
	}
	return []*report.Table{tput, cswait, nicwait}, nil
}
