// Package stencil implements the paper's hybrid MPI+threads 3-D 7-point
// stencil kernel (§6.2.2): a Jacobi heat-equation sweep over a 3-D
// domain decomposition where every thread independently performs its own
// halo exchanges with nonblocking send/receive + Waitall and synchronizes
// with its process peers only at the end of each iteration.
//
// stencil is part of the deterministic core (docs/ARCHITECTURE.md).
package stencil

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// Params configures a stencil run.
type Params struct {
	Lock    simlock.Kind
	Binding machine.Binding
	// Procs is the number of MPI processes (one per node).
	Procs   int
	Threads int
	// NX, NY, NZ are the global grid dimensions; they must be divisible
	// by the process grid chosen for Procs (and NZ further by Threads
	// within each process).
	NX, NY, NZ int
	Iters      int
	Seed       uint64
	// PointNs is the compute cost per grid point per iteration.
	PointNs int64
	// KeepField records the final global field in the result (tests).
	KeepField bool
	// Funneled switches to the MPI_THREAD_FUNNELED structure the paper
	// says common hybrid stencils use (§6.2.2): only thread 0
	// communicates (whole-process faces), other threads just compute.
	// The runtime then runs lock-free, trading parallel communication
	// for zero thread-safety cost.
	Funneled bool
	// Progress selects who drives the progress engine (docs/PROGRESS.md).
	// Under continuation mode the halo-exchange Waitall drains a
	// completion queue instead of polling the critical section.
	// Incompatible with Funneled (non-polling modes need
	// MPI_THREAD_MULTIPLE; NewWorld rejects the combination).
	Progress mpi.ProgressMode
	// Partitioned switches the X/Y halo faces to MPI-4 partitioned
	// channels: one persistent Psend/Precv pair per face per process with
	// Threads partitions, where partition t carries thread t's slab rows.
	// Each thread packs its own rows and flips a lock-free readiness bit
	// (Pready); only the last thread's flip enters the runtime critical
	// section to push the whole face as one aggregated transfer. Z faces
	// (one message per process pair) stay on the regular eager path.
	// Requires MPI_THREAD_MULTIPLE (incompatible with Funneled).
	Partitioned bool
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
}

func (p Params) withDefaults() Params {
	if p.Procs <= 0 {
		p.Procs = 1
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.NX <= 0 {
		p.NX = 32
	}
	if p.NY <= 0 {
		p.NY = 32
	}
	if p.NZ <= 0 {
		p.NZ = 32
	}
	if p.Iters <= 0 {
		p.Iters = 4
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.PointNs <= 0 {
		p.PointNs = 5
	}
	return p
}

// Result reports a stencil run.
type Result struct {
	GFlops float64
	SimNs  int64
	// Breakdown percentages over summed thread time (Fig. 11b).
	MPIPct, ComputePct, SyncPct float64
	// Checksum is the sum of the final field (validation).
	Checksum float64
	// Field is the assembled final global field when KeepField was set,
	// indexed [z][y][x] flattened as z*NY*NX + y*NX + x.
	Field []float64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
	// Part holds the partitioned-communication counters (all zero unless
	// Partitioned was set).
	Part mpi.PartStats
}

// flopsPerPoint is the 7-point update's floating-point operation count.
const flopsPerPoint = 8

// procGrid factors n into three near-equal factors (px >= py >= pz).
func procGrid(n int) (int, int, int) {
	best := [3]int{n, 1, 1}
	bestScore := n * n
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			score := px*px + py*py + pz*pz
			if score < bestScore {
				bestScore = score
				best = [3]int{px, py, pz}
			}
		}
	}
	return best[0], best[1], best[2]
}

// field is one process's padded local block.
type field struct {
	nx, ny, nz int
	cur, next  []float64
}

func (f *field) idx(x, y, z int) int {
	return (z*(f.ny+2)+y)*(f.nx+2) + x
}

// procState is the shared per-process stencil state.
type procState struct {
	rank       int
	cx, cy, cz int // process grid coordinates
	px, py, pz int
	f          field
	ox, oy, oz int // global origin of local interior
	barrier    *sim.Barrier

	// pfaces is the per-process partitioned channel set (Partitioned mode
	// only), built once by thread 0 before the iteration loop.
	pfaces []*pface

	mpiNs, compNs, syncNs int64
}

// pface is one X/Y face's partitioned channel state, shared by all threads
// of a process. Double-buffered by iteration parity so a sender never
// repacks a buffer before the neighbor unpacked the previous epoch: rank A
// packs parity p again only at iteration i+2, which (through the Pwait /
// trigger dependency chain of iteration i+1) is after rank B unpacked
// iteration i.
type pface struct {
	dir   int // 0:-x 1:+x 2:-y 3:+y
	peer  int
	count int // values per thread partition (face rows of one slab)
	psend [2]*mpi.Prequest
	precv [2]*mpi.Prequest
	sbuf  [2][]float64 // partition-major: thread t owns [t*count, (t+1)*count)
}

// initField fills the interior with a deterministic pattern of the global
// coordinates; ghosts stay zero (Dirichlet boundary).
func (st *procState) initField() {
	for z := 1; z <= st.f.nz; z++ {
		for y := 1; y <= st.f.ny; y++ {
			for x := 1; x <= st.f.nx; x++ {
				gx, gy, gz := st.ox+x-1, st.oy+y-1, st.oz+z-1
				st.f.cur[st.f.idx(x, y, z)] = float64((gx*31+gy*17+gz*7)%97) / 97.0
			}
		}
	}
}

// Run executes the stencil benchmark.
func Run(p Params) (Result, error) {
	p = p.withDefaults()
	var res Result
	px, py, pz := procGrid(p.Procs)
	if p.NX%px != 0 || p.NY%py != 0 || p.NZ%pz != 0 {
		return res, fmt.Errorf("stencil: grid %dx%dx%d not divisible by process grid %dx%dx%d",
			p.NX, p.NY, p.NZ, px, py, pz)
	}
	nx, ny, nz := p.NX/px, p.NY/py, p.NZ/pz
	if nz%p.Threads != 0 {
		return res, fmt.Errorf("stencil: local nz=%d not divisible by %d threads", nz, p.Threads)
	}
	if p.Partitioned && p.Funneled {
		return res, fmt.Errorf("stencil: Partitioned requires MPI_THREAD_MULTIPLE (incompatible with Funneled)")
	}

	level := mpi.ThreadMultiple
	if p.Funneled {
		level = mpi.ThreadFunneled
	}
	w, err := mpi.NewWorld(mpi.Config{
		Topo:        machine.Nehalem2x4(p.Procs),
		Lock:        p.Lock,
		ThreadLevel: level,
		Binding:     p.Binding,
		Seed:        p.Seed,
		Fault:       p.Fault,
		MaxWall:     p.MaxWall,
		Progress:    p.Progress,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()

	states := make([]*procState, p.Procs)
	for r := 0; r < p.Procs; r++ {
		cx := r % px
		cy := (r / px) % py
		cz := r / (px * py)
		st := &procState{
			rank: r, cx: cx, cy: cy, cz: cz, px: px, py: py, pz: pz,
			f: field{
				nx: nx, ny: ny, nz: nz,
				cur:  make([]float64, (nx+2)*(ny+2)*(nz+2)),
				next: make([]float64, (nx+2)*(ny+2)*(nz+2)),
			},
			ox: cx * nx, oy: cy * ny, oz: cz * nz,
			barrier: &sim.Barrier{N: p.Threads, Release: 200},
		}
		st.initField()
		states[r] = st
	}

	var endAt int64
	for r := 0; r < p.Procs; r++ {
		st := states[r]
		for t := 0; t < p.Threads; t++ {
			t := t
			w.Spawn(r, "stencil", func(th *mpi.Thread) {
				if p.Partitioned {
					partitionedThread(th, c, p, st, t)
				} else {
					stencilThread(th, c, p, st, t)
				}
				if th.S.Now() > endAt {
					endAt = th.S.Now()
				}
			})
		}
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("stencil(%v,%d procs): %w", p.Lock, p.Procs, err)
	}

	var mpiNs, compNs, syncNs int64
	for _, st := range states {
		mpiNs += st.mpiNs
		compNs += st.compNs
		syncNs += st.syncNs
		for z := 1; z <= st.f.nz; z++ {
			for y := 1; y <= st.f.ny; y++ {
				for x := 1; x <= st.f.nx; x++ {
					res.Checksum += st.f.cur[st.f.idx(x, y, z)]
				}
			}
		}
	}
	total := mpiNs + compNs + syncNs
	if total > 0 {
		res.MPIPct = 100 * float64(mpiNs) / float64(total)
		res.ComputePct = 100 * float64(compNs) / float64(total)
		res.SyncPct = 100 * float64(syncNs) / float64(total)
	}
	res.SimNs = endAt
	if endAt > 0 {
		points := float64(p.NX) * float64(p.NY) * float64(p.NZ) * float64(p.Iters)
		res.GFlops = points * flopsPerPoint / float64(endAt)
	}
	if p.KeepField {
		res.Field = make([]float64, p.NX*p.NY*p.NZ)
		for _, st := range states {
			for z := 1; z <= st.f.nz; z++ {
				for y := 1; y <= st.f.ny; y++ {
					for x := 1; x <= st.f.nx; x++ {
						gx, gy, gz := st.ox+x-1, st.oy+y-1, st.oz+z-1
						res.Field[(gz*p.NY+gy)*p.NX+gx] = st.f.cur[st.f.idx(x, y, z)]
					}
				}
			}
		}
	}
	res.Net = w.NetStats()
	res.Part = w.PartStats()
	if p.Fault.Enabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("stencil(%v,%d procs): %w", p.Lock, p.Procs, err)
		}
	}
	return res, nil
}

// rankOf maps process grid coordinates to a rank, or -1 outside the grid.
func (st *procState) rankOf(cx, cy, cz int) int {
	if cx < 0 || cx >= st.px || cy < 0 || cy >= st.py || cz < 0 || cz >= st.pz {
		return -1
	}
	return (cz*st.py+cy)*st.px + cx
}

// stencilThread runs one thread's slab for all iterations.
func stencilThread(th *mpi.Thread, c *mpi.Comm, p Params, st *procState, t int) {
	f := &st.f
	slab := f.nz / p.Threads
	z0 := 1 + t*slab
	z1 := z0 + slab // exclusive
	// Communication range: per-thread slab under THREAD_MULTIPLE; the
	// whole process block for thread 0 (and nothing for others) under
	// FUNNELED.
	cz0, cz1 := z0, z1
	commTag := t
	communicates := true
	if p.Funneled {
		commTag = 0
		if t == 0 {
			cz0, cz1 = 1, f.nz+1
		} else {
			communicates = false
		}
	}

	type haloOp struct {
		dir    int // 0:-x 1:+x 2:-y 3:+y 4:-z 5:+z
		peer   int
		tag    int
		count  int
		pack   func() []float64
		unpack func([]float64)
	}
	var ops []haloOp
	addXY := func(dir, peer int) {
		// This thread exchanges its z-range's rows of the +/-x or +/-y face.
		tag := dir*64 + commTag
		switch dir {
		case 0, 1: // x faces: count = ny * slabz
			x := 1
			gx := 0
			if dir == 1 {
				x = f.nx
				gx = f.nx + 1
			}
			ops = append(ops, haloOp{dir: dir, peer: peer, tag: tag,
				count: f.ny * (cz1 - cz0),
				pack: func() []float64 {
					out := make([]float64, 0, f.ny*(cz1-cz0))
					for z := cz0; z < cz1; z++ {
						for y := 1; y <= f.ny; y++ {
							out = append(out, f.cur[f.idx(x, y, z)])
						}
					}
					return out
				},
				unpack: func(in []float64) {
					i := 0
					for z := cz0; z < cz1; z++ {
						for y := 1; y <= f.ny; y++ {
							f.cur[f.idx(gx, y, z)] = in[i]
							i++
						}
					}
				}})
		case 2, 3: // y faces
			y := 1
			gy := 0
			if dir == 3 {
				y = f.ny
				gy = f.ny + 1
			}
			ops = append(ops, haloOp{dir: dir, peer: peer, tag: tag,
				count: f.nx * (cz1 - cz0),
				pack: func() []float64 {
					out := make([]float64, 0, f.nx*(cz1-cz0))
					for z := cz0; z < cz1; z++ {
						for x := 1; x <= f.nx; x++ {
							out = append(out, f.cur[f.idx(x, y, z)])
						}
					}
					return out
				},
				unpack: func(in []float64) {
					i := 0
					for z := cz0; z < cz1; z++ {
						for x := 1; x <= f.nx; x++ {
							f.cur[f.idx(x, gy, z)] = in[i]
							i++
						}
					}
				}})
		}
	}
	if communicates {
		if peer := st.rankOf(st.cx-1, st.cy, st.cz); peer >= 0 {
			addXY(0, peer)
		}
		if peer := st.rankOf(st.cx+1, st.cy, st.cz); peer >= 0 {
			addXY(1, peer)
		}
		if peer := st.rankOf(st.cx, st.cy-1, st.cz); peer >= 0 {
			addXY(2, peer)
		}
		if peer := st.rankOf(st.cx, st.cy+1, st.cz); peer >= 0 {
			addXY(3, peer)
		}
	}
	// Z faces belong to the boundary slabs only; one message per face.
	if communicates && (t == 0 || p.Funneled) {
		if peer := st.rankOf(st.cx, st.cy, st.cz-1); peer >= 0 {
			ops = append(ops, haloOp{dir: 4, peer: peer, tag: 4 * 64,
				count:  f.nx * f.ny,
				pack:   func() []float64 { return packZ(f, 1) },
				unpack: func(in []float64) { unpackZ(f, 0, in) }})
		}
	}
	if communicates && (t == p.Threads-1 || p.Funneled) {
		if peer := st.rankOf(st.cx, st.cy, st.cz+1); peer >= 0 {
			ops = append(ops, haloOp{dir: 5, peer: peer, tag: 5 * 64,
				count:  f.nx * f.ny,
				pack:   func() []float64 { return packZ(f, f.nz) },
				unpack: func(in []float64) { unpackZ(f, f.nz+1, in) }})
		}
	}

	cost := th.P.Cost()
	pointNs := p.PointNs
	if th.Place().Socket != 0 {
		pointNs = pointNs * (100 + cost.RemoteMemPenaltyPct) / 100
	}
	reqs := make([]*mpi.Request, 0, 2*len(ops))
	for iter := 0; iter < p.Iters; iter++ {
		// Halo exchange: post all receives, pack+send all faces, waitall.
		// Threads without halo operations (workers under FUNNELED) make
		// no MPI calls at all, as the thread level requires.
		t0 := th.S.Now()
		if len(ops) > 0 {
			reqs = reqs[:0]
			recvs := make([]*mpi.Request, len(ops))
			for i, op := range ops {
				recvs[i] = th.Irecv(c, op.peer, opposite(op.dir)*64+tagThread(op.dir, commTag))
				reqs = append(reqs, recvs[i])
			}
			for i := range ops {
				op := &ops[i]
				data := op.pack()
				th.S.Sleep(cost.CopyTime(int64(len(data) * 8))) // pack cost
				reqs = append(reqs, th.Isend(c, op.peer, op.tag, int64(len(data)*8), data))
			}
			th.Waitall(reqs) //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Waitall
			for i := range ops {
				data := recvs[i].Data().([]float64)
				th.S.Sleep(cost.CopyTime(int64(len(data) * 8))) // unpack cost
				ops[i].unpack(data)
			}
		}
		if p.Funneled {
			// Workers must not read ghost cells before thread 0 finished
			// the exchange.
			st.barrier.Wait(th.S)
		}
		st.mpiNs += th.S.Now() - t0

		// Compute the slab (real 7-point Jacobi update).
		t1 := th.S.Now()
		const alpha = 0.1
		for z := z0; z < z1; z++ {
			for y := 1; y <= f.ny; y++ {
				base := f.idx(0, y, z)
				for x := 1; x <= f.nx; x++ {
					i := base + x
					lap := f.cur[i-1] + f.cur[i+1] +
						f.cur[i-(f.nx+2)] + f.cur[i+(f.nx+2)] +
						f.cur[i-(f.nx+2)*(f.ny+2)] + f.cur[i+(f.nx+2)*(f.ny+2)] -
						6*f.cur[i]
					f.next[i] = f.cur[i] + alpha*lap
				}
			}
		}
		th.S.Sleep(int64(f.nx*f.ny*(z1-z0)) * pointNs)
		st.compNs += th.S.Now() - t1

		// End-of-iteration thread synchronization (OpenMP-style barrier).
		t2 := th.S.Now()
		st.barrier.Wait(th.S)
		if t == 0 {
			f.cur, f.next = f.next, f.cur
		}
		st.barrier.Wait(th.S)
		st.syncNs += th.S.Now() - t2
	}
}

// partitionedThread runs one thread's slab with X/Y halos on MPI-4
// partitioned channels (Params.Partitioned). The channel set is shared by
// the whole process: thread 0 owns the epoch lifecycle (Pstart at exchange
// start, Pwait in the swap window), every thread packs its own slab rows
// into the face buffer and publishes them with a lock-free Pready(t), and
// on the receive side every thread spin-probes Parrived(t) before
// unpacking its own rows. Only the last Pready of a face enters the
// runtime critical section, so each face costs one lock acquisition per
// iteration instead of one per thread. Z faces keep the regular eager
// path of stencilThread (they are a single whole-plane message owned by a
// boundary slab, so there is nothing to partition across threads).
func partitionedThread(th *mpi.Thread, c *mpi.Comm, p Params, st *procState, t int) {
	f := &st.f
	slab := f.nz / p.Threads
	z0 := 1 + t*slab
	z1 := z0 + slab // exclusive
	cost := th.P.Cost()
	pointNs := p.PointNs
	if th.Place().Socket != 0 {
		pointNs = pointNs * (100 + cost.RemoteMemPenaltyPct) / 100
	}

	// Thread 0 builds the shared partitioned channels; double-buffered by
	// iteration parity (see pface) with the parity encoded in the tag.
	if t == 0 {
		add := func(dir, peer int) {
			count := f.ny * slab // x faces: ny rows per slab plane
			if dir >= 2 {
				count = f.nx * slab // y faces
			}
			pf := &pface{dir: dir, peer: peer, count: count}
			for par := 0; par < 2; par++ {
				pf.sbuf[par] = make([]float64, count*p.Threads)
				pf.psend[par] = th.PsendInit(c, peer, dir*64+par, p.Threads, int64(count*8), pf.sbuf[par])
				pf.precv[par] = th.PrecvInit(c, peer, opposite(dir)*64+par, p.Threads, int64(count*8))
			}
			st.pfaces = append(st.pfaces, pf)
		}
		if peer := st.rankOf(st.cx-1, st.cy, st.cz); peer >= 0 {
			add(0, peer)
		}
		if peer := st.rankOf(st.cx+1, st.cy, st.cz); peer >= 0 {
			add(1, peer)
		}
		if peer := st.rankOf(st.cx, st.cy-1, st.cz); peer >= 0 {
			add(2, peer)
		}
		if peer := st.rankOf(st.cx, st.cy+1, st.cz); peer >= 0 {
			add(3, peer)
		}
	}
	st.barrier.Wait(th.S)

	// Z faces: regular eager messages owned by the boundary slabs.
	type zop struct {
		peer, tag int
		plane     int // source plane to pack
		ghost     int // ghost plane to unpack into
	}
	var zops []zop
	if t == 0 {
		if peer := st.rankOf(st.cx, st.cy, st.cz-1); peer >= 0 {
			zops = append(zops, zop{peer: peer, tag: 4 * 64, plane: 1, ghost: 0})
		}
	}
	if t == p.Threads-1 {
		if peer := st.rankOf(st.cx, st.cy, st.cz+1); peer >= 0 {
			zops = append(zops, zop{peer: peer, tag: 5 * 64, plane: f.nz, ghost: f.nz + 1})
		}
	}

	packFace := func(pf *pface, out []float64) {
		i := 0
		if pf.dir < 2 {
			x := 1
			if pf.dir == 1 {
				x = f.nx
			}
			for z := z0; z < z1; z++ {
				for y := 1; y <= f.ny; y++ {
					out[i] = f.cur[f.idx(x, y, z)]
					i++
				}
			}
		} else {
			y := 1
			if pf.dir == 3 {
				y = f.ny
			}
			for z := z0; z < z1; z++ {
				for x := 1; x <= f.nx; x++ {
					out[i] = f.cur[f.idx(x, y, z)]
					i++
				}
			}
		}
	}
	unpackFace := func(pf *pface, in []float64) {
		i := 0
		if pf.dir < 2 {
			gx := 0
			if pf.dir == 1 {
				gx = f.nx + 1
			}
			for z := z0; z < z1; z++ {
				for y := 1; y <= f.ny; y++ {
					f.cur[f.idx(gx, y, z)] = in[i]
					i++
				}
			}
		} else {
			gy := 0
			if pf.dir == 3 {
				gy = f.ny + 1
			}
			for z := z0; z < z1; z++ {
				for x := 1; x <= f.nx; x++ {
					f.cur[f.idx(x, gy, z)] = in[i]
					i++
				}
			}
		}
	}

	zreqs := make([]*mpi.Request, 0, 2*len(zops))
	for iter := 0; iter < p.Iters; iter++ {
		par := iter % 2
		t0 := th.S.Now()
		// Thread 0 opens this iteration's epochs; the barrier keeps any
		// Pready/Parrived from racing ahead of the Pstart.
		if t == 0 {
			for _, pf := range st.pfaces {
				th.Pstart(pf.psend[par])
				th.Pstart(pf.precv[par])
			}
		}
		st.barrier.Wait(th.S)

		// Z faces: post receives first (as the eager path does).
		zreqs = zreqs[:0]
		zrecvs := make([]*mpi.Request, len(zops))
		for i, op := range zops {
			zrecvs[i] = th.Irecv(c, op.peer, opposite(op.tag/64)*64)
			zreqs = append(zreqs, zrecvs[i])
		}

		// Publish this thread's slab rows on every X/Y face: pack into the
		// shared buffer, then a lock-free readiness flip. The last flip of
		// a face triggers the single aggregated transfer.
		for _, pf := range st.pfaces {
			packFace(pf, pf.sbuf[par][t*pf.count:(t+1)*pf.count])
			th.S.Sleep(cost.CopyTime(int64(pf.count * 8))) // pack cost
			th.Pready(pf.psend[par], t)                    //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Pready
		}

		// Z faces: pack + eager send, then drain.
		for _, op := range zops {
			data := packZ(f, op.plane)
			th.S.Sleep(cost.CopyTime(int64(len(data) * 8))) // pack cost
			zreqs = append(zreqs, th.Isend(c, op.peer, op.tag, int64(len(data)*8), data))
		}
		if len(zreqs) > 0 {
			th.Waitall(zreqs) //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Waitall
			for i, op := range zops {
				data := zrecvs[i].Data().([]float64)
				th.S.Sleep(cost.CopyTime(int64(len(data) * 8))) // unpack cost
				unpackZ(f, op.ghost, data)
			}
		}

		// Consume this thread's partitions: spin on fine-grained arrival,
		// then unpack only our own rows from the aggregated face.
		for _, pf := range st.pfaces {
			for {
				ok, _ := th.Parrived(pf.precv[par], t) //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Parrived
				if ok {
					break
				}
				th.S.Sleep(cost.ProgressLoopOverhead)
			}
			in := pf.precv[par].Data().([]float64)
			th.S.Sleep(cost.CopyTime(int64(pf.count * 8))) // unpack cost
			unpackFace(pf, in[t*pf.count:(t+1)*pf.count])
		}
		st.mpiNs += th.S.Now() - t0

		// Compute the slab (identical to stencilThread).
		t1 := th.S.Now()
		const alpha = 0.1
		for z := z0; z < z1; z++ {
			for y := 1; y <= f.ny; y++ {
				base := f.idx(0, y, z)
				for x := 1; x <= f.nx; x++ {
					i := base + x
					lap := f.cur[i-1] + f.cur[i+1] +
						f.cur[i-(f.nx+2)] + f.cur[i+(f.nx+2)] +
						f.cur[i-(f.nx+2)*(f.ny+2)] + f.cur[i+(f.nx+2)*(f.ny+2)] -
						6*f.cur[i]
					f.next[i] = f.cur[i] + alpha*lap
				}
			}
		}
		th.S.Sleep(int64(f.nx*f.ny*(z1-z0)) * pointNs)
		st.compNs += th.S.Now() - t1

		// End-of-iteration synchronization. Thread 0 retires the epochs in
		// the swap window: after the first barrier no thread can still be
		// probing Parrived on this parity, and the epochs must be closed
		// before iteration i+2 reopens the same pair.
		t2 := th.S.Now()
		st.barrier.Wait(th.S)
		if t == 0 {
			for _, pf := range st.pfaces {
				th.Pwait(pf.psend[par]) //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Pwait
				th.Pwait(pf.precv[par]) //simcheck:allow errdrop halo exchange runs under the fatal handler; errors panic inside Pwait
			}
			f.cur, f.next = f.next, f.cur
		}
		st.barrier.Wait(th.S)
		st.syncNs += th.S.Now() - t2
	}
}

// tagThread returns the thread component of a halo tag: X/Y faces pair
// thread t with thread t; Z faces use a single message.
func tagThread(dir, t int) int {
	if dir >= 4 {
		return 0
	}
	return t
}

// opposite returns the direction a neighbor uses for the same face.
func opposite(dir int) int {
	switch dir {
	case 0:
		return 1
	case 1:
		return 0
	case 2:
		return 3
	case 3:
		return 2
	case 4:
		return 5
	default:
		return 4
	}
}

func packZ(f *field, z int) []float64 {
	out := make([]float64, 0, f.nx*f.ny)
	for y := 1; y <= f.ny; y++ {
		for x := 1; x <= f.nx; x++ {
			out = append(out, f.cur[f.idx(x, y, z)])
		}
	}
	return out
}

func unpackZ(f *field, z int, in []float64) {
	i := 0
	for y := 1; y <= f.ny; y++ {
		for x := 1; x <= f.nx; x++ {
			f.cur[f.idx(x, y, z)] = in[i]
			i++
		}
	}
}
