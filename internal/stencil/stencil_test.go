package stencil

import (
	"math"
	"testing"

	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
)

func TestProcGrid(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		12: {3, 2, 2},
		64: {4, 4, 4},
	}
	for n, want := range cases {
		px, py, pz := procGrid(n)
		if px*py*pz != n {
			t.Fatalf("procGrid(%d) = %d,%d,%d does not multiply to n", n, px, py, pz)
		}
		got := [3]int{px, py, pz}
		// Accept any permutation of the expected balanced factors.
		sort3 := func(a [3]int) [3]int {
			if a[0] < a[1] {
				a[0], a[1] = a[1], a[0]
			}
			if a[1] < a[2] {
				a[1], a[2] = a[2], a[1]
			}
			if a[0] < a[1] {
				a[0], a[1] = a[1], a[0]
			}
			return a
		}
		if sort3(got) != sort3(want) {
			t.Fatalf("procGrid(%d) = %v, want %v", n, got, want)
		}
	}
}

// serialReference computes the same Jacobi sweep in plain Go.
func serialReference(nx, ny, nz, iters int) []float64 {
	idx := func(x, y, z int) int { return (z*(ny+2)+y)*(nx+2) + x }
	cur := make([]float64, (nx+2)*(ny+2)*(nz+2))
	next := make([]float64, len(cur))
	for z := 1; z <= nz; z++ {
		for y := 1; y <= ny; y++ {
			for x := 1; x <= nx; x++ {
				cur[idx(x, y, z)] = float64(((x-1)*31+(y-1)*17+(z-1)*7)%97) / 97.0
			}
		}
	}
	const alpha = 0.1
	for it := 0; it < iters; it++ {
		for z := 1; z <= nz; z++ {
			for y := 1; y <= ny; y++ {
				for x := 1; x <= nx; x++ {
					i := idx(x, y, z)
					lap := cur[i-1] + cur[i+1] +
						cur[i-(nx+2)] + cur[i+(nx+2)] +
						cur[i-(nx+2)*(ny+2)] + cur[i+(nx+2)*(ny+2)] -
						6*cur[i]
					next[i] = cur[i] + alpha*lap
				}
			}
		}
		cur, next = next, cur
	}
	out := make([]float64, nx*ny*nz)
	for z := 1; z <= nz; z++ {
		for y := 1; y <= ny; y++ {
			for x := 1; x <= nx; x++ {
				out[((z-1)*ny+(y-1))*nx+(x-1)] = cur[idx(x, y, z)]
			}
		}
	}
	return out
}

func TestSingleProcMatchesSerial(t *testing.T) {
	p := Params{Lock: simlock.KindNone, NX: 8, NY: 8, NZ: 8, Iters: 5, KeepField: true}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := serialReference(8, 8, 8, 5)
	for i := range want {
		if res.Field[i] != want[i] {
			t.Fatalf("field[%d] = %v, want %v", i, res.Field[i], want[i])
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	for _, cfg := range []struct{ procs, threads int }{
		{2, 1}, {4, 2}, {8, 2}, {1, 4},
	} {
		p := Params{Lock: simlock.KindTicket, Procs: cfg.procs, Threads: cfg.threads,
			NX: 8, NY: 8, NZ: 8, Iters: 4, KeepField: true}
		res, err := Run(p)
		if err != nil {
			t.Fatalf("procs=%d threads=%d: %v", cfg.procs, cfg.threads, err)
		}
		want := serialReference(8, 8, 8, 4)
		for i := range want {
			if math.Abs(res.Field[i]-want[i]) > 1e-12 {
				t.Fatalf("procs=%d threads=%d: field[%d] = %v, want %v",
					cfg.procs, cfg.threads, i, res.Field[i], want[i])
			}
		}
	}
}

func TestAllLocksProduceSameField(t *testing.T) {
	var checksums []float64
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		p := Params{Lock: k, Procs: 4, Threads: 2, NX: 8, NY: 8, NZ: 8, Iters: 3}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		checksums = append(checksums, res.Checksum)
	}
	for i := 1; i < len(checksums); i++ {
		if checksums[i] != checksums[0] {
			t.Fatalf("checksums differ across locks: %v", checksums)
		}
	}
}

func TestBreakdownSumsTo100(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Procs: 2, Threads: 2,
		NX: 16, NY: 16, NZ: 16, Iters: 3}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.MPIPct + res.ComputePct + res.SyncPct
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if res.ComputePct <= 0 || res.MPIPct <= 0 {
		t.Fatalf("degenerate breakdown: %+v", res)
	}
}

func TestComputeShareGrowsWithProblemSize(t *testing.T) {
	// Fig. 11b: bigger problems per core shift time toward computation.
	small, err := Run(Params{Lock: simlock.KindTicket, Procs: 4, Threads: 2,
		NX: 8, NY: 8, NZ: 8, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Params{Lock: simlock.KindTicket, Procs: 4, Threads: 2,
		NX: 32, NY: 32, NZ: 32, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if big.ComputePct <= small.ComputePct {
		t.Fatalf("compute share did not grow: %.1f%% -> %.1f%%",
			small.ComputePct, big.ComputePct)
	}
}

func TestFairLocksWinSmallProblems(t *testing.T) {
	// Fig. 11a: for small per-core problems, runtime contention dominates
	// and fair locks beat the mutex.
	run := func(k simlock.Kind) float64 {
		res, err := Run(Params{Lock: k, Procs: 4, Threads: 8,
			NX: 16, NY: 16, NZ: 16, Iters: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.GFlops
	}
	m, tk := run(simlock.KindMutex), run(simlock.KindTicket)
	t.Logf("small stencil: mutex %.3f GF, ticket %.3f GF", m, tk)
	if tk <= m {
		t.Errorf("ticket (%.3f) should beat mutex (%.3f) on small problems", tk, m)
	}
}

func TestInvalidGeometryRejected(t *testing.T) {
	_, err := Run(Params{Lock: simlock.KindNone, Procs: 3, NX: 8, NY: 8, NZ: 8})
	if err == nil {
		t.Fatal("indivisible grid accepted")
	}
	_, err = Run(Params{Lock: simlock.KindNone, Procs: 1, Threads: 3, NX: 8, NY: 8, NZ: 8})
	if err == nil {
		t.Fatal("indivisible thread slab accepted")
	}
}

func TestDeterministic(t *testing.T) {
	p := Params{Lock: simlock.KindMutex, Procs: 2, Threads: 4, NX: 8, NY: 8, NZ: 8, Iters: 3}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs || a.Checksum != b.Checksum {
		t.Fatal("nondeterministic stencil run")
	}
}

func TestFunneledMatchesSerial(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Procs: 4, Threads: 2,
		NX: 8, NY: 8, NZ: 8, Iters: 4, KeepField: true, Funneled: true}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := serialReference(8, 8, 8, 4)
	for i := range want {
		if math.Abs(res.Field[i]-want[i]) > 1e-12 {
			t.Fatalf("funneled field[%d] = %v, want %v", i, res.Field[i], want[i])
		}
	}
}

func TestFunneledVsMultipleTradeoff(t *testing.T) {
	// Funneled pays no lock costs but serializes communication into one
	// thread; multiple parallelizes communication but pays thread safety.
	// Both must at least complete, and for this small problem, funneled
	// should beat the mutex-guarded multiple (the paper's motivation for
	// fixing arbitration rather than abandoning THREAD_MULTIPLE).
	fun, err := Run(Params{Lock: simlock.KindMutex, Procs: 4, Threads: 8,
		NX: 16, NY: 16, NZ: 16, Iters: 4, Funneled: true})
	if err != nil {
		t.Fatal(err)
	}
	mul, err := Run(Params{Lock: simlock.KindMutex, Procs: 4, Threads: 8,
		NX: 16, NY: 16, NZ: 16, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("funneled %.3f GF vs multiple(mutex) %.3f GF", fun.GFlops, mul.GFlops)
	if fun.GFlops <= mul.GFlops*0.8 {
		t.Errorf("funneled (%.3f) unexpectedly far below mutex multiple (%.3f)",
			fun.GFlops, mul.GFlops)
	}
}

func TestPartitionedMatchesSerial(t *testing.T) {
	// The partitioned halo path must compute the exact same field as the
	// eager path: same pack/unpack layout, just a different wire protocol.
	for _, cfg := range []struct{ procs, threads int }{
		{4, 2}, // 2x2x1 grid: x and y faces, no z faces
		{8, 4}, // 2x2x2 grid: partitioned x/y plus eager z faces
		{2, 1}, // single-thread partitions (parts == 1)
	} {
		p := Params{Lock: simlock.KindTicket, Procs: cfg.procs, Threads: cfg.threads,
			NX: 8, NY: 8, NZ: 8, Iters: 5, KeepField: true, Partitioned: true}
		res, err := Run(p)
		if err != nil {
			t.Fatalf("procs=%d threads=%d: %v", cfg.procs, cfg.threads, err)
		}
		want := serialReference(8, 8, 8, 5)
		for i := range want {
			if math.Abs(res.Field[i]-want[i]) > 1e-12 {
				t.Fatalf("procs=%d threads=%d: field[%d] = %v, want %v",
					cfg.procs, cfg.threads, i, res.Field[i], want[i])
			}
		}
	}
}

func TestPartitionedChecksumParity(t *testing.T) {
	base := Params{Lock: simlock.KindMutex, Procs: 4, Threads: 4,
		NX: 16, NY: 16, NZ: 16, Iters: 4}
	eager, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	part := base
	part.Partitioned = true
	pres, err := Run(part)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Checksum != eager.Checksum {
		t.Fatalf("partitioned checksum %v != eager checksum %v", pres.Checksum, eager.Checksum)
	}
	// The counters thread out through Result: the X/Y faces really rode
	// partitioned channels (one trigger per face-epoch, the rest of the
	// Preadys lock-free), and the eager run never touched them.
	if pres.Part.Aggregates == 0 || pres.Part.PreadyFast == 0 {
		t.Fatalf("partitioned run recorded no partitioned traffic: %+v", pres.Part)
	}
	if eager.Part != (mpi.PartStats{}) {
		t.Fatalf("eager run recorded partitioned traffic: %+v", eager.Part)
	}
}

func TestPartitionedRejectsFunneled(t *testing.T) {
	_, err := Run(Params{Lock: simlock.KindNone, Procs: 2, NX: 8, NY: 8, NZ: 8,
		Partitioned: true, Funneled: true})
	if err == nil {
		t.Fatal("Partitioned+Funneled accepted")
	}
}

func TestPartitionedDeterministic(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Procs: 4, Threads: 4,
		NX: 8, NY: 8, NZ: 8, Iters: 3, Partitioned: true}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs || a.Checksum != b.Checksum {
		t.Fatal("nondeterministic partitioned stencil run")
	}
}
