package graph500

import "fmt"

// Validate checks a BFS result against the Graph500 correctness rules:
//
//  1. the root is its own parent;
//  2. every visited vertex has a visited parent;
//  3. tree levels are consistent: depth(v) == depth(parent(v)) + 1;
//  4. every tree edge (v, parent(v)) exists in the graph;
//  5. every vertex reachable from the root was visited (checked by an
//     independent sequential BFS over the edge list).
func Validate(edges []Edge, root int64, res Result) error {
	part := res.Part
	n := part.N
	parent := make([]int64, n)
	for r, pp := range res.Parent {
		base := part.Base(r)
		copy(parent[base:base+int64(len(pp))], pp)
	}
	if parent[root] != root {
		return fmt.Errorf("root %d has parent %d", root, parent[root])
	}

	// Adjacency sets for tree-edge checks and the reference BFS.
	adj := make(map[int64][]int64)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}

	// Depth assignment by walking parents with cycle detection.
	depth := make([]int64, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	var resolve func(v int64, hops int64) (int64, error)
	resolve = func(v int64, hops int64) (int64, error) {
		if depth[v] >= 0 {
			return depth[v], nil
		}
		if hops > n {
			return 0, fmt.Errorf("parent chain cycle at vertex %d", v)
		}
		p := parent[v]
		if p < 0 {
			return 0, fmt.Errorf("visited vertex %d has unvisited parent chain", v)
		}
		d, err := resolve(p, hops+1)
		if err != nil {
			return 0, err
		}
		depth[v] = d + 1
		return depth[v], nil
	}
	visitedCount := int64(0)
	for v := int64(0); v < n; v++ {
		if parent[v] < 0 {
			continue
		}
		visitedCount++
		if _, err := resolve(v, 0); err != nil {
			return err
		}
		if v != root {
			found := false
			for _, u := range adj[v] {
				if u == parent[v] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("tree edge (%d,%d) not in graph", v, parent[v])
			}
			if depth[v] != depth[parent[v]]+1 {
				return fmt.Errorf("vertex %d at depth %d, parent at %d",
					v, depth[v], depth[parent[v]])
			}
		}
	}

	// Reference reachability.
	ref := make([]bool, n)
	ref[root] = true
	queue := []int64{root}
	reachable := int64(0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		reachable++
		for _, v := range adj[u] {
			if !ref[v] {
				ref[v] = true
				queue = append(queue, v)
			}
		}
	}
	if visitedCount != reachable {
		return fmt.Errorf("visited %d vertices, %d reachable", visitedCount, reachable)
	}
	for v := int64(0); v < n; v++ {
		if ref[v] != (parent[v] >= 0) {
			return fmt.Errorf("vertex %d reachability mismatch", v)
		}
	}
	return nil
}
