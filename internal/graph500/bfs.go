package graph500

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/sim"
	"mpicontend/internal/simlock"
)

// Params configures a distributed BFS run.
type Params struct {
	Lock    simlock.Kind
	Binding machine.Binding
	// Procs is the number of MPI processes.
	Procs int
	// ProcsPerNode places that many processes on each node (default 1).
	ProcsPerNode int
	// Threads per process.
	Threads int
	// Scale is log2 of the vertex count; EdgeFactor is edges per vertex.
	Scale      int
	EdgeFactor int
	Seed       uint64
	// Roots is the number of BFS runs from distinct roots (default 1).
	Roots int
	// PerEdgeNs is the compute cost charged per scanned edge.
	PerEdgeNs int64
	// BatchEntries is the number of (vertex,parent) pairs per message.
	BatchEntries int
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
}

func (p Params) withDefaults() Params {
	if p.Procs <= 0 {
		p.Procs = 1
	}
	if p.ProcsPerNode <= 0 {
		p.ProcsPerNode = 1
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.Scale <= 0 {
		p.Scale = 14
	}
	if p.EdgeFactor <= 0 {
		p.EdgeFactor = 16
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Roots <= 0 {
		p.Roots = 1
	}
	if p.PerEdgeNs <= 0 {
		p.PerEdgeNs = 25
	}
	if p.BatchEntries <= 0 {
		p.BatchEntries = 256
	}
	return p
}

// Result reports a BFS run.
type Result struct {
	// MTEPS is millions of traversed edges per second of simulated time
	// (scanned directed edges / 2, the undirected convention).
	MTEPS float64
	// ScannedEdges counts directed edge scans across all runs.
	ScannedEdges int64
	// VisitedVertices counts vertices reached in the last run.
	VisitedVertices int64
	SimNs           int64
	Levels          int
	// Parent holds, per rank, the BFS parent of each owned vertex (-1 if
	// unvisited) for the last root; used by the validator.
	Parent [][]int64
	// Part is the vertex partition used.
	Part Partition
	// Roots lists the BFS roots actually used (for validation).
	Roots []int64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// procState is the shared per-process BFS state (the simulator runs one
// simthread at a time, so plain fields model shared memory exactly).
type procState struct {
	rank    int
	g       *CSR
	part    Partition
	visited []bool
	parent  []int64
	cur     []int64 // frontier as local rows
	next    []int64

	scanned      int64
	sentMsgs     []int64 // per peer, messages sent this level
	pendingSends []*mpi.Request
	recvdMsgs    int64
	expectedMsgs int64
	ctrlDone     bool
	globalNext   int64
	barrier      *sim.Barrier
}

func (st *procState) reset() {
	for i := range st.visited {
		st.visited[i] = false
		st.parent[i] = -1
	}
	st.cur = st.cur[:0]
	st.next = st.next[:0]
}

func (st *procState) claim(v, parent int64) {
	row := v - st.g.RowBase
	if !st.visited[row] {
		st.visited[row] = true
		st.parent[row] = parent
		st.next = append(st.next, row)
	}
}

// Run executes the BFS benchmark and returns its metrics.
func Run(p Params) (Result, error) {
	p = p.withDefaults()
	var res Result

	if p.ProcsPerNode > p.Procs {
		p.ProcsPerNode = p.Procs // a partially filled single node
	}
	nodes := (p.Procs + p.ProcsPerNode - 1) / p.ProcsPerNode
	topo := machine.Nehalem2x4(nodes)
	w, err := mpi.NewWorld(mpi.Config{
		Topo:         topo,
		Lock:         p.Lock,
		Binding:      p.Binding,
		ProcsPerNode: p.ProcsPerNode,
		Seed:         p.Seed,
		Fault:        p.Fault,
		MaxWall:      p.MaxWall,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()

	edges := GenerateKronecker(p.Scale, p.EdgeFactor, p.Seed)
	part := NewPartition(int64(1)<<uint(p.Scale), p.Procs)
	states := make([]*procState, p.Procs)
	for r := 0; r < p.Procs; r++ {
		g := BuildLocalCSR(edges, part, r)
		states[r] = &procState{
			rank:     r,
			g:        g,
			part:     part,
			visited:  make([]bool, g.Rows),
			parent:   make([]int64, g.Rows),
			sentMsgs: make([]int64, p.Procs),
			barrier:  &sim.Barrier{N: p.Threads, Release: 200},
		}
		states[r].reset()
	}

	// Roots: pick vertices with non-zero degree deterministically.
	roots := pickRoots(edges, part, p.Roots, p.Seed)
	res.Roots = roots

	var endAt int64
	for r := 0; r < p.Procs; r++ {
		st := states[r]
		for t := 0; t < p.Threads; t++ {
			t := t
			w.Spawn(r, "bfs", func(th *mpi.Thread) {
				for _, root := range roots {
					bfsThread(th, c, p, st, t, root)
				}
				if th.S.Now() > endAt {
					endAt = th.S.Now()
				}
			})
		}
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("graph500(%v,scale=%d,procs=%d): %w", p.Lock, p.Scale, p.Procs, err)
	}

	for _, st := range states {
		res.ScannedEdges += st.scanned
		res.Parent = append(res.Parent, st.parent)
		for _, v := range st.visited {
			if v {
				res.VisitedVertices++
			}
		}
	}
	res.Part = part
	res.SimNs = endAt
	if endAt > 0 {
		res.MTEPS = float64(res.ScannedEdges) / 2 / (float64(endAt) / 1e9) / 1e6
	}
	res.Net = w.NetStats()
	if p.Fault.Enabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("graph500(%v,scale=%d,procs=%d): %w", p.Lock, p.Scale, p.Procs, err)
		}
	}
	return res, nil
}

// pickRoots deterministically selects vertices that have at least one
// non-loop edge.
func pickRoots(edges []Edge, part Partition, n int, seed uint64) []int64 {
	rng := sim.NewRand(seed ^ 0x9e3779b9)
	var roots []int64
	seen := map[int64]bool{}
	for len(roots) < n && len(edges) > 0 {
		e := edges[rng.Intn(len(edges))]
		if e.U != e.V && !seen[e.U] {
			seen[e.U] = true
			roots = append(roots, e.U)
		}
	}
	return roots
}

// bfsThread runs one thread's share of a level-synchronized BFS from root.
// Structure per the paper's hybrid design: threads scan disjoint chunks of
// the frontier, buffer remote discoveries per destination process, send
// them with nonblocking sends, and poll their own wildcard receive with
// MPI_Test — immediate calls only, so under the priority lock every entry
// is high priority (the paper's explanation for priority ≈ ticket here).
func bfsThread(th *mpi.Thread, c *mpi.Comm, p Params, st *procState, t int, root int64) {
	g := st.g
	part := st.part
	rank := st.rank
	// NUMA factor: threads on a socket other than the data's home socket
	// (where thread 0 lives) pay the remote-memory penalty.
	numaPct := int64(100)
	if th.Place().Socket != 0 {
		numaPct += th.P.Cost().RemoteMemPenaltyPct
	}

	if t == 0 {
		st.reset()
		st.scannedInit(part, rank, root)
	}
	st.barrier.Wait(th.S)

	for level := 0; ; level++ {
		dataTag := 2 * level
		ctrlTag := 2*level + 1
		myRecv := th.Irecv(c, mpi.AnySource, dataTag)

		// Scan this thread's share of the frontier. Strided assignment
		// balances R-MAT's skewed degrees better than contiguous chunks.
		outBufs := make([][]int64, p.Procs)
		var localScanned, sinceCharge int64
		flush := func(dst int) {
			buf := outBufs[dst]
			if len(buf) == 0 {
				return
			}
			st.sentMsgs[dst]++
			req := th.Isend(c, dst, dataTag, int64(len(buf)*8), buf)
			st.pendingSends = append(st.pendingSends, req)
			outBufs[dst] = nil
		}
		charge := func() {
			if sinceCharge > 0 {
				th.S.Sleep(sinceCharge * p.PerEdgeNs * numaPct / 100)
				sinceCharge = 0
			}
		}
		testRecv := func() {
			if th.Test(myRecv) {
				pairs := myRecv.Data().([]int64)
				for i := 0; i+1 < len(pairs); i += 2 {
					st.claim(pairs[i], pairs[i+1])
				}
				st.recvdMsgs++
				myRecv = th.Irecv(c, mpi.AnySource, dataTag)
			}
		}
		steps := 0
		for i := t; i < len(st.cur); i += p.Threads {
			row := st.cur[i]
			u := g.RowBase + row
			for _, v := range g.Neighbors(row) {
				localScanned++
				sinceCharge++
				if part.Owner(v) == rank {
					st.claim(v, u)
				} else {
					dst := part.Owner(v)
					outBufs[dst] = append(outBufs[dst], v, u)
					if len(outBufs[dst]) >= 2*p.BatchEntries {
						flush(dst)
					}
				}
			}
			if steps++; steps%32 == 31 {
				charge()
				testRecv()
			}
		}
		charge()
		for dst := range outBufs {
			flush(dst)
		}
		st.scanned += localScanned
		st.barrier.Wait(th.S)

		// Level drain: thread 0 completes sends and exchanges per-peer
		// message counts; all threads poll until every expected message
		// has been consumed. Following the reference hybrid design, the
		// coordinator also uses only immediate MPI_Test calls here — a
		// blocking (low-priority) wait would starve under the priority
		// lock while the other threads keep issuing high-priority Tests.
		if t == 0 {
			pendingSends := st.pendingSends
			st.pendingSends = nil
			var ctrlSends []*mpi.Request
			ctrlRecvs := make([]*mpi.Request, 0, p.Procs-1)
			for j := 0; j < p.Procs; j++ {
				if j != rank {
					ctrlRecvs = append(ctrlRecvs, th.Irecv(c, j, ctrlTag))
					ctrlSends = append(ctrlSends, th.Isend(c, j, ctrlTag, 8, st.sentMsgs[j]))
					st.sentMsgs[j] = 0
				}
			}
			st.expectedMsgs = 0
			counted := 0
			for len(pendingSends) > 0 || len(ctrlSends) > 0 || counted < len(ctrlRecvs) {
				pendingSends = th.Testall(pendingSends)
				ctrlSends = th.Testall(ctrlSends)
				for _, r := range ctrlRecvs {
					if r.Complete() && !r.Freed() {
						// Consume via Test so the request is freed.
						if th.Test(r) {
							st.expectedMsgs += r.Data().(int64)
							counted++
						}
					}
				}
				th.S.Sleep(50 + th.P.Rand().Int63n(150))
			}
			st.ctrlDone = true
		}
		for !st.ctrlDone || st.recvdMsgs < st.expectedMsgs {
			testRecv()
			th.S.Sleep(50 + th.P.Rand().Int63n(150))
		}
		if !myRecv.Complete() {
			th.CancelRecv(myRecv)
		} else {
			// A matched-but-unprocessed message would have kept the loop
			// going; completion here is a protocol violation.
			panic("graph500: uncounted message at level end")
		}
		st.barrier.Wait(th.S)

		if t == 0 {
			st.ctrlDone = false
			st.recvdMsgs = 0
			st.expectedMsgs = 0
			st.globalNext = th.AllreduceSum(c, int64(len(st.next)))
			st.cur, st.next = st.next, st.cur[:0]
		}
		st.barrier.Wait(th.S)
		if st.globalNext == 0 {
			return
		}
	}
}

// scannedInit seeds the frontier with the root if this rank owns it.
func (st *procState) scannedInit(part Partition, rank int, root int64) {
	if part.Owner(root) == rank {
		row := root - st.g.RowBase
		st.visited[row] = true
		st.parent[row] = root
		st.cur = append(st.cur, row)
	}
}

// chunk splits n items into T contiguous chunks and returns chunk t's
// half-open range.
func chunk(n, T, t int) (int, int) {
	lo := n * t / T
	hi := n * (t + 1) / T
	return lo, hi
}
