package graph500

import (
	"testing"
	"testing/quick"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func TestKroneckerShape(t *testing.T) {
	edges := GenerateKronecker(10, 16, 1)
	if len(edges) != 16*1024 {
		t.Fatalf("edge count = %d", len(edges))
	}
	n := int64(1024)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := GenerateKronecker(8, 8, 7)
	b := GenerateKronecker(8, 8, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
	c := GenerateKronecker(8, 8, 8)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestKroneckerSkewed(t *testing.T) {
	// R-MAT graphs are heavy-tailed: max degree far above average.
	edges := GenerateKronecker(12, 16, 3)
	deg := map[int64]int{}
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	avg := 2 * len(edges) / (1 << 12)
	if max < 5*avg {
		t.Fatalf("degree distribution not skewed: max %d, avg %d", max, avg)
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(scaleRaw, procsRaw uint8) bool {
		n := int64(1) << (4 + scaleRaw%8)
		procs := 1 + int(procsRaw)%9
		part := NewPartition(n, procs)
		total := int64(0)
		for r := 0; r < procs; r++ {
			total += part.Count(r)
		}
		if total != n {
			return false
		}
		for v := int64(0); v < n; v++ {
			o := part.Owner(v)
			if o < 0 || o >= procs {
				return false
			}
			base := part.Base(o)
			if v < base || v >= base+part.Count(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCSRCoversAllEdges(t *testing.T) {
	edges := GenerateKronecker(8, 8, 5)
	part := NewPartition(256, 3)
	total := int64(0)
	for r := 0; r < 3; r++ {
		g := BuildLocalCSR(edges, part, r)
		total += g.Offsets[g.Rows]
	}
	want := int64(0)
	for _, e := range edges {
		if e.U != e.V {
			want += 2 // both directions
		}
	}
	if total != want {
		t.Fatalf("CSR holds %d directed edges, want %d", total, want)
	}
}

func TestBFSSingleProcSingleThread(t *testing.T) {
	p := Params{Lock: simlock.KindNone, Scale: 10, EdgeFactor: 8, Seed: 9}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitedVertices < 2 {
		t.Fatalf("visited only %d vertices", res.VisitedVertices)
	}
	edges := GenerateKronecker(10, 8, 9)
	root := pickRoots(edges, res.Part, 1, 9)[0]
	if err := Validate(edges, root, res); err != nil {
		t.Fatal(err)
	}
}

func TestBFSMultiThread(t *testing.T) {
	p := Params{Lock: simlock.KindTicket, Threads: 4, Scale: 10, EdgeFactor: 8, Seed: 11}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	edges := GenerateKronecker(10, 8, 11)
	root := pickRoots(edges, res.Part, 1, 11)[0]
	if err := Validate(edges, root, res); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistributed(t *testing.T) {
	for _, procs := range []int{2, 4} {
		for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
			p := Params{Lock: k, Procs: procs, Threads: 2, Scale: 10, EdgeFactor: 8, Seed: 13}
			res, err := Run(p)
			if err != nil {
				t.Fatalf("procs=%d lock=%v: %v", procs, k, err)
			}
			edges := GenerateKronecker(10, 8, 13)
			root := pickRoots(edges, res.Part, 1, 13)[0]
			if err := Validate(edges, root, res); err != nil {
				t.Fatalf("procs=%d lock=%v: %v", procs, k, err)
			}
		}
	}
}

func TestBFSDistributedEqualsSingle(t *testing.T) {
	// The set of visited vertices must be identical no matter the
	// process/thread decomposition.
	single, err := Run(Params{Lock: simlock.KindNone, Scale: 9, EdgeFactor: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(Params{Lock: simlock.KindTicket, Procs: 3, Threads: 4,
		Scale: 9, EdgeFactor: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if single.VisitedVertices != multi.VisitedVertices {
		t.Fatalf("visited differ: single %d vs multi %d",
			single.VisitedVertices, multi.VisitedVertices)
	}
}

func TestBFSMultipleRoots(t *testing.T) {
	res, err := Run(Params{Lock: simlock.KindTicket, Procs: 2, Threads: 2,
		Scale: 9, EdgeFactor: 8, Seed: 19, Roots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MTEPS <= 0 {
		t.Fatalf("MTEPS = %v", res.MTEPS)
	}
}

func TestBFSThreadScalingSpeedup(t *testing.T) {
	// Fig. 10a shape: more threads on one socket must raise MTEPS.
	r1, err := Run(Params{Lock: simlock.KindNone, Threads: 1, Scale: 12, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(Params{Lock: simlock.KindNone, Threads: 4, Scale: 12, Seed: 23,
		Binding: machine.Compact})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-node BFS: 1t %.1f MTEPS, 4t %.1f MTEPS", r1.MTEPS, r4.MTEPS)
	if r4.MTEPS < r1.MTEPS*2 {
		t.Errorf("4 threads %.1f MTEPS < 2x single %.1f", r4.MTEPS, r1.MTEPS)
	}
}

func TestBFSDeterministic(t *testing.T) {
	p := Params{Lock: simlock.KindMutex, Procs: 2, Threads: 2, Scale: 9, EdgeFactor: 8, Seed: 29}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs || a.ScannedEdges != b.ScannedEdges {
		t.Fatalf("nondeterministic: %+v vs %+v", a.SimNs, b.SimNs)
	}
}

func TestChunkCoversAll(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n := int(nRaw)
		T := 1 + int(tRaw)%16
		covered := 0
		prevHi := 0
		for t := 0; t < T; t++ {
			lo, hi := chunk(n, T, t)
			if lo != prevHi {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
