// Package graph500 implements the Graph500 BFS benchmark (paper §6.2.1)
// over the simulated MPI runtime: a Kronecker (R-MAT) graph generator, a
// 1-D partitioned CSR representation, and the hybrid MPI+threads
// level-synchronized BFS whose threads cooperate on computation and
// communicate independently with MPI_Test polling, after the reference
// design the paper extends.
//
// graph500 is part of the deterministic core (docs/ARCHITECTURE.md).
package graph500

import "mpicontend/internal/sim"

// Kronecker initiator probabilities (Graph500 specification).
const (
	initA = 0.57
	initB = 0.19
	initC = 0.19
)

// Edge is an undirected graph edge.
type Edge struct {
	U, V int64
}

// GenerateKronecker produces an R-MAT edge list with 2^scale vertices and
// edgefactor*2^scale edges, using the Graph500 initiator matrix. Vertex
// labels are scrambled by a fixed permutation polynomial so degree does not
// correlate with label.
func GenerateKronecker(scale, edgefactor int, seed uint64) []Edge {
	n := int64(1) << uint(scale)
	m := int64(edgefactor) * n
	rng := sim.NewRand(seed)
	edges := make([]Edge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int64
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			var ubit, vbit int64
			switch {
			case r < initA:
				// quadrant a: (0,0)
			case r < initA+initB:
				vbit = 1
			case r < initA+initB+initC:
				ubit = 1
			default:
				ubit, vbit = 1, 1
			}
			u = u<<1 | ubit
			v = v<<1 | vbit
		}
		edges = append(edges, Edge{U: scramble(u, n), V: scramble(v, n)})
	}
	return edges
}

// scramble permutes vertex labels within [0, n) (n a power of two) using a
// fixed odd multiplier, decorrelating label and degree.
func scramble(v, n int64) int64 {
	return (v*0x27220A95 + 0x3C6EF35F) & (n - 1)
}

// CSR is a compressed sparse row adjacency structure over global vertex ids.
type CSR struct {
	N       int64   // global vertex count
	Offsets []int64 // len = rows+1, indexed by local row
	Targets []int64 // neighbor global ids
	RowBase int64   // global id of local row 0
	Rows    int64   // number of local rows
}

// Degree returns the degree of local row r.
func (g *CSR) Degree(r int64) int64 { return g.Offsets[r+1] - g.Offsets[r] }

// Neighbors returns the adjacency slice of local row r.
func (g *CSR) Neighbors(r int64) []int64 {
	return g.Targets[g.Offsets[r]:g.Offsets[r+1]]
}

// Partition describes a block 1-D vertex partition over nprocs ranks.
type Partition struct {
	N      int64
	NProcs int
	per    int64
}

// NewPartition creates a block partition of n vertices over nprocs ranks.
func NewPartition(n int64, nprocs int) Partition {
	per := (n + int64(nprocs) - 1) / int64(nprocs)
	return Partition{N: n, NProcs: nprocs, per: per}
}

// Owner returns the rank owning global vertex v.
func (p Partition) Owner(v int64) int {
	o := int(v / p.per)
	if o >= p.NProcs {
		o = p.NProcs - 1
	}
	return o
}

// Base returns the first global vertex id owned by rank.
func (p Partition) Base(rank int) int64 { return int64(rank) * p.per }

// Count returns the number of vertices owned by rank.
func (p Partition) Count(rank int) int64 {
	base := p.Base(rank)
	if base >= p.N {
		return 0
	}
	end := base + p.per
	if end > p.N {
		end = p.N
	}
	return end - base
}

// BuildLocalCSR builds the CSR rows owned by rank from the full edge list,
// inserting both directions of each undirected edge and dropping self
// loops. Duplicate edges are kept (they only add scan work, as in the
// reference implementation).
func BuildLocalCSR(edges []Edge, part Partition, rank int) *CSR {
	base := part.Base(rank)
	rows := part.Count(rank)
	deg := make([]int64, rows)
	add := func(u, v int64) {
		if part.Owner(u) == rank {
			deg[u-base]++
		}
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		add(e.U, e.V)
		add(e.V, e.U)
	}
	offsets := make([]int64, rows+1)
	for i := int64(0); i < rows; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	targets := make([]int64, offsets[rows])
	fill := make([]int64, rows)
	put := func(u, v int64) {
		if part.Owner(u) == rank {
			r := u - base
			targets[offsets[r]+fill[r]] = v
			fill[r]++
		}
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		put(e.U, e.V)
		put(e.V, e.U)
	}
	return &CSR{N: part.N, Offsets: offsets, Targets: targets, RowBase: base, Rows: rows}
}
