package fabric

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *Fabric, *[]*Packet, *[]sim.Time) {
	t.Helper()
	eng := sim.NewEngine(1)
	f := New(eng, machine.Default())
	var got []*Packet
	var at []sim.Time
	mk := func(id, node int) {
		f.Attach(id, node, func(p *Packet) {
			got = append(got, p)
			at = append(at, eng.Now())
		})
	}
	mk(0, 0)
	mk(1, 1)
	mk(2, 0)
	return eng, f, &got, &at
}

func TestInterNodeDeliveryTiming(t *testing.T) {
	eng, f, got, at := setup(t)
	cost := machine.Default()
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1, Bytes: 0}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets", len(*got))
	}
	want := cost.NetOverhead + cost.NetLatency
	if (*at)[0] != want {
		t.Fatalf("arrival at %d, want %d", (*at)[0], want)
	}
}

func TestIntraNodeIsFaster(t *testing.T) {
	eng, f, _, at := setup(t)
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Src: 0, Dst: 2, Bytes: 64}, false) // same node
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	intra := (*at)[0]

	eng2, f2, _, at2 := setup(t)
	eng2.At(0, func() {
		f2.Endpoint(0).Send(&Packet{Src: 0, Dst: 1, Bytes: 64}, false) // cross node
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if intra >= (*at2)[0] {
		t.Fatalf("intra-node (%d) should beat inter-node (%d)", intra, (*at2)[0])
	}
}

func TestBandwidthScalesWithSize(t *testing.T) {
	measure := func(bytes int64) sim.Time {
		eng, f, _, at := setup(t)
		eng.At(0, func() {
			f.Endpoint(0).Send(&Packet{Src: 0, Dst: 1, Bytes: bytes}, false)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return (*at)[0]
	}
	small, big := measure(1), measure(1<<20)
	if big <= small {
		t.Fatalf("1MB (%d) should take longer than 1B (%d)", big, small)
	}
	// 1 MB at 3.2 GB/s is ~312 us.
	if big < 250_000 || big > 500_000 {
		t.Fatalf("1MB arrival %dns outside QDR envelope", big)
	}
}

func TestNICSerialization(t *testing.T) {
	eng, f, got, at := setup(t)
	eng.At(0, func() {
		ep := f.Endpoint(0)
		ep.Send(&Packet{Src: 0, Dst: 1, Bytes: 1 << 16}, false)
		ep.Send(&Packet{Src: 0, Dst: 1, Bytes: 0}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d", len(*got))
	}
	// Second (tiny) packet must arrive after the first finished injecting,
	// i.e. later than a lone tiny packet would.
	lone := machine.Default().NetOverhead + machine.Default().NetLatency
	second := (*at)[1]
	if second <= lone {
		t.Fatalf("NIC injection not serialized: second at %d, lone would be %d", second, lone)
	}
}

func TestTxDoneLoopback(t *testing.T) {
	eng, f, got, _ := setup(t)
	handle := "req-7"
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Src: 0, Dst: 1, Bytes: 128, Handle: handle}, true)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("want TxDone + delivery, got %d packets", len(*got))
	}
	var tx, rx *Packet
	for _, p := range *got {
		if p.Kind == TxDone {
			tx = p
		} else {
			rx = p
		}
	}
	if tx == nil || rx == nil {
		t.Fatal("missing TxDone or delivery")
	}
	if tx.Handle != handle {
		t.Fatalf("TxDone handle = %v", tx.Handle)
	}
	if tx.Dst != 0 {
		t.Fatal("TxDone must loop back to sender")
	}
}

func TestTxDonePrecedesRemoteDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, machine.Default())
	var order []string
	f.Attach(0, 0, func(p *Packet) { order = append(order, "tx") })
	f.Attach(1, 1, func(p *Packet) { order = append(order, "rx") })
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Src: 0, Dst: 1, Bytes: 4096}, true)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "tx" || order[1] != "rx" {
		t.Fatalf("order = %v", order)
	}
}

func TestEndpointStats(t *testing.T) {
	eng, f, _, _ := setup(t)
	eng.At(0, func() {
		ep := f.Endpoint(0)
		ep.Send(&Packet{Src: 0, Dst: 1, Bytes: 100}, false)
		ep.Send(&Packet{Src: 0, Dst: 1, Bytes: 200}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	ep := f.Endpoint(0)
	if ep.PacketsSent != 2 || ep.BytesSent != 300 {
		t.Fatalf("stats: %d packets %d bytes", ep.PacketsSent, ep.BytesSent)
	}
}

func TestAttachOrderEnforced(t *testing.T) {
	eng := sim.NewEngine(1)
	f := New(eng, machine.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order attach should panic")
		}
	}()
	f.Attach(3, 0, func(*Packet) {})
}

// TestPerPairFIFOProperty: packets between one (src,dst) pair always
// arrive in send order, regardless of sizes — the property MPI's
// non-overtaking rule builds on.
func TestPerPairFIFOProperty(t *testing.T) {
	eng := sim.NewEngine(5)
	f := New(eng, machine.Default())
	var got []int
	f.Attach(0, 0, func(p *Packet) {})
	f.Attach(1, 1, func(p *Packet) { got = append(got, p.Handle.(int)) })
	rng := sim.NewRand(9)
	const n = 60
	eng.Spawn("sender", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			th.Sleep(int64(rng.Intn(500)))
			f.Endpoint(0).Send(&Packet{Src: 0, Dst: 1,
				Bytes: int64(rng.Intn(100_000)), Handle: i}, false)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %v", i, got[:i+1])
		}
	}
}
