package fabric

import (
	"strings"
	"testing"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

func TestPacketKindString(t *testing.T) {
	cases := map[PacketKind]string{
		Eager: "Eager", TxDone: "TxDone", Ack: "Ack", Nack: "Nack",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	// Out-of-range values, including negatives, must not panic.
	if got := PacketKind(-1).String(); got != "PacketKind(-1)" {
		t.Errorf("negative kind: %q", got)
	}
	if got := PacketKind(99).String(); got != "PacketKind(99)" {
		t.Errorf("large kind: %q", got)
	}
}

func TestDropSuppressesDelivery(t *testing.T) {
	eng, f, got, _ := setup(t)
	f.InjectFaults(fault.New(fault.Config{DropProb: 1}, 1))
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("dropped packet delivered %d times", len(*got))
	}
	if f.FaultStats().Dropped != 1 {
		t.Fatalf("drop not counted: %+v", f.FaultStats())
	}
}

func TestDropStillNotifiesTxDone(t *testing.T) {
	// The sending NIC believes the packet went out: TxDone must fire even
	// for a dropped packet (that is what makes loss dangerous for eager
	// sends and what the reliable transport exists to cover).
	eng, f, got, _ := setup(t)
	f.InjectFaults(fault.New(fault.Config{DropProb: 1}, 1))
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1}, true)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].Kind != TxDone {
		t.Fatalf("want exactly the TxDone loopback, got %v", *got)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	eng, f, got, at := setup(t)
	f.InjectFaults(fault.New(fault.Config{DupProb: 1}, 1))
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("duplicated packet delivered %d times", len(*got))
	}
	if (*got)[0] != (*got)[1] {
		t.Fatal("duplicate must share the packet struct")
	}
	if (*at)[1] <= (*at)[0] {
		t.Fatalf("copy must arrive after the original: %d vs %d", (*at)[1], (*at)[0])
	}
}

func TestNICStallDelaysInjection(t *testing.T) {
	cost := machine.Default()
	run := func(cfg fault.Config) sim.Time {
		eng, f, _, at := setup(t)
		f.InjectFaults(fault.New(cfg, 1))
		eng.At(0, func() {
			f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1}, false)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return (*at)[0]
	}
	stallNs := int64(7000)
	base := run(fault.Config{NICStallProb: 0.000001}) // enabled, never fires
	stalled := run(fault.Config{NICStallProb: 1, NICStallNs: stallNs})
	if stalled-base != stallNs {
		t.Fatalf("stall delta %d, want %d", stalled-base, stallNs)
	}
	_ = cost
}

func TestBrownoutSlowsInterNodeTransfer(t *testing.T) {
	run := func(cfg fault.Config) sim.Time {
		eng, f, _, at := setup(t)
		f.InjectFaults(fault.New(cfg, 1))
		eng.At(0, func() {
			f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1, Bytes: 1 << 20}, false)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return (*at)[0]
	}
	// A permanent brownout (duration == period) at factor 0.5 should make
	// the serialization term about twice as long.
	base := run(fault.Config{NICStallProb: 0.000001})
	browned := run(fault.Config{
		BrownoutPeriodNs: 1 << 62, BrownoutDurationNs: 1 << 62, BrownoutFactor: 0.5,
	})
	if browned <= base {
		t.Fatalf("brownout did not slow the transfer: %d vs %d", browned, base)
	}
}

func TestFaultsOffIdenticalTiming(t *testing.T) {
	// A fabric with no plane and one with a nil plane behave identically.
	eng, f, _, at := setup(t)
	f.InjectFaults(nil)
	eng.At(0, func() {
		f.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1, Bytes: 4096}, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng2, f2, _, at2 := setup(t)
	eng2.At(0, func() {
		f2.Endpoint(0).Send(&Packet{Kind: Eager, Src: 0, Dst: 1, Bytes: 4096}, false)
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if (*at)[0] != (*at2)[0] {
		t.Fatalf("nil plane changed timing: %d vs %d", (*at)[0], (*at2)[0])
	}
	if s := f.FaultStats().String(); !strings.Contains(s, "none") {
		t.Fatalf("no-plane stats: %q", s)
	}
}
