// Package fabric models the cluster interconnect: per-process NICs with
// serialized injection, a latency/bandwidth cost for inter-node transfers
// (Mellanox QDR class), and a cheaper shared-memory path between processes
// on the same node. Delivery is asynchronous: packets arrive as events in
// the destination process's completion queue.
//
// fabric is part of the deterministic core (docs/ARCHITECTURE.md).
package fabric

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
	"mpicontend/internal/telemetry"
)

// PacketKind distinguishes the protocol messages exchanged by the MPI
// runtime. The fabric itself treats them opaquely; kinds live here so both
// the runtime and tests can name them.
type PacketKind int

const (
	// Eager carries a full message payload (small-message protocol).
	Eager PacketKind = iota
	// RTS is a rendezvous request-to-send (envelope only).
	RTS
	// CTS is a rendezvous clear-to-send reply.
	CTS
	// RData carries the rendezvous payload.
	RData
	// RMAPut carries a one-sided put payload.
	RMAPut
	// RMAGet requests data from a remote window.
	RMAGet
	// RMAGetReply carries the data answering an RMAGet.
	RMAGetReply
	// RMAAcc carries an accumulate payload.
	RMAAcc
	// RMAAck acknowledges completion of a one-sided operation at the
	// target.
	RMAAck
	// TxDone is a local NIC completion: the packet with the given handle
	// finished injecting. It never crosses the wire.
	TxDone
	// Ack is a transport-level acknowledgement of a sequence-numbered
	// packet (reliable mode only; sent unreliably itself).
	Ack
	// Nack is a transport-level fast-retransmit request: the receiver
	// observed a sequence gap and names the missing sequence number.
	Nack
	// Heartbeat is a failure-detector liveness beacon (unreliable; sent
	// only when a crash schedule is configured).
	Heartbeat
	// Revoke propagates a communicator revocation (ULFM-style); Seq
	// carries the revoked context id. Sent reliably so revocation
	// survives a lossy network.
	Revoke
	// PartData carries an aggregated partitioned transfer: one packet
	// covers a contiguous range of ready partitions of a Psend. The range
	// bounds live in Meta; under the reliable transport each range is
	// sequence-numbered independently, so a drop retransmits only its own
	// partitions.
	PartData
)

// String names the packet kind; out-of-range values (including negatives)
// render as PacketKind(n).
func (k PacketKind) String() string {
	names := [...]string{"Eager", "RTS", "CTS", "RData", "RMAPut", "RMAGet",
		"RMAGetReply", "RMAAcc", "RMAAck", "TxDone", "Ack", "Nack",
		"Heartbeat", "Revoke", "PartData"}
	if int(k) >= 0 && int(k) < len(names) {
		return names[k]
	}
	//simcheck:allow hotalloc defensive fallback; unreachable for valid kinds
	return fmt.Sprintf("PacketKind(%d)", int(k))
}

// Packet is one unit of traffic between two endpoints.
type Packet struct {
	Kind PacketKind
	Src  int // source endpoint id (MPI rank)
	Dst  int // destination endpoint id
	// Bytes is the payload size used for timing; envelope-only packets
	// use zero.
	Bytes int64
	// Handle identifies the runtime object this packet belongs to
	// (request pointer, window op id); opaque to the fabric.
	Handle interface{}
	// Meta carries protocol fields (tag, context, offsets); opaque to
	// the fabric.
	Meta interface{}
	// Payload is the actual user data, if the caller transports any.
	Payload interface{}
	// Seq is the transport sequence number when Rel is set (reliable
	// mode); Ack/Nack packets carry the acknowledged/missing sequence.
	Seq uint64
	// Rel marks a sequence-numbered packet covered by the reliable
	// transport (ACK expected, retransmitted on timeout, deduplicated at
	// the receiver).
	Rel bool
	// VCI is the virtual communication interface the packet belongs to at
	// the receiving proc (0 in the unsharded runtime). The fabric never
	// interprets it — one physical NIC per rank carries all VCIs — but
	// echoes it on TxDone completions so the sender's shard is credited.
	VCI int

	// next links the fabric's packet free list while the object is pooled.
	next *Packet
}

// Handler receives packets at their delivery time, in engine context.
type Handler func(p *Packet)

// Endpoint is a process's attachment to the fabric: a NIC with serialized
// injection and a delivery callback.
type Endpoint struct {
	id      int
	node    int
	fab     *Fabric
	deliver Handler
	txFree  sim.Time // NIC busy until this time
	dead    bool     // fail-stop: blackhole all traffic in both directions

	// Stats
	PacketsSent int64
	BytesSent   int64
}

// Fabric is the cluster interconnect.
type Fabric struct {
	eng   *sim.Engine
	cost  machine.CostModel
	eps   []*Endpoint
	plane *fault.Plane // nil = perfect network

	// deliverFn routes a queued packet to its destination endpoint — one
	// long-lived callback shared by every delivery event (sim.AtArg), so
	// the hot path allocates no per-packet closures.
	deliverFn func(interface{})
	// pktFree pools packet objects returned by FreePacket.
	pktFree *Packet

	// Tel, when non-nil, records NIC injection and wire-flight spans on
	// the telemetry plane. Purely observational.
	Tel *telemetry.Recorder
}

// New creates a fabric over the given engine and cost model.
func New(eng *sim.Engine, cost machine.CostModel) *Fabric {
	f := &Fabric{eng: eng, cost: cost}
	f.deliverFn = func(x interface{}) {
		p := x.(*Packet)
		dst := f.eps[p.Dst]
		if dst.dead {
			// Fail-stop blackhole: a dead process consumes nothing. The
			// packet is dropped silently (not recycled — under a fault
			// plane the sender's transport may still reference it).
			return
		}
		dst.deliver(p)
	}
	return f
}

// AllocPacket returns a zeroed packet, reusing a pooled object when one is
// available. Callers that can prove the packet dies at a known point may
// hand it back with FreePacket; callers that cannot simply let the garbage
// collector take it.
func (f *Fabric) AllocPacket() *Packet {
	if p := f.pktFree; p != nil {
		f.pktFree = p.next
		*p = Packet{}
		return p
	}
	//simcheck:allow hotalloc pool refill slow path; steady state reuses freed packets
	return new(Packet)
}

// FreePacket recycles p. The caller must guarantee no live references
// remain: in particular, under a fault plane a wire packet may be
// duplicated or stashed for retransmission, so only fault-free traffic
// (and packets that never crossed the wire) are safe to free.
func (f *Fabric) FreePacket(p *Packet) {
	*p = Packet{next: f.pktFree}
	f.pktFree = p
}

// InjectFaults attaches a fault plane; every subsequent wire packet is
// judged by it. A nil plane restores the perfect network.
func (f *Fabric) InjectFaults(pl *fault.Plane) { f.plane = pl }

// FaultStats returns the injected-fault counters (zero when no plane).
func (f *Fabric) FaultStats() fault.Stats {
	if f.plane == nil {
		return fault.Stats{}
	}
	return f.plane.Stats()
}

// Attach registers endpoint id (must be the next consecutive integer,
// starting at 0) on the given node with a delivery handler.
func (f *Fabric) Attach(id, node int, h Handler) *Endpoint {
	if id != len(f.eps) {
		panic(fmt.Sprintf("fabric: endpoints must attach in order; got %d, want %d", id, len(f.eps)))
	}
	ep := &Endpoint{id: id, node: node, fab: f, deliver: h}
	f.eps = append(f.eps, ep)
	return ep
}

// Endpoint returns the attached endpoint with the given id.
func (f *Fabric) Endpoint(id int) *Endpoint { return f.eps[id] }

// Kill marks endpoint id fail-stopped: every packet addressed to it is
// silently dropped at delivery time, and new injections from it are
// suppressed. Packets already in flight FROM the endpoint still arrive —
// they were on the wire when the process died.
func (f *Fabric) Kill(id int) { f.eps[id].dead = true }

// Dead reports whether endpoint id has been killed.
func (f *Fabric) Dead(id int) bool { return f.eps[id].dead }

// Send injects p from ep. It returns the time at which injection completes
// (when the local NIC is free again and a send buffer may be reused). The
// packet is delivered to the destination handler after the path latency.
// If notifyTx is true, a TxDone packet carrying p.Handle is looped back to
// the sender at injection completion.
func (ep *Endpoint) Send(p *Packet, notifyTx bool) sim.Time {
	f := ep.fab
	if p.Dst < 0 || p.Dst >= len(f.eps) {
		panic(fmt.Sprintf("fabric: send to unattached endpoint %d", p.Dst))
	}
	if ep.dead {
		// A fail-stopped process injects nothing: charge no NIC time,
		// schedule no delivery and no TxDone. Threads of a dead rank may
		// run a few more instructions before unwinding; their sends must
		// not reach the network.
		return f.eng.Now()
	}
	dst := f.eps[p.Dst]
	now := f.eng.Now()

	var bw, lat int64
	interNode := dst.node != ep.node
	if interNode {
		bw, lat = f.cost.NetBandwidth, f.cost.NetLatency
	} else {
		bw, lat = f.cost.IntraNodeBandwidth, f.cost.IntraNodeLatency
	}

	// Fault plane: decide this packet's fate before computing timing, so
	// NIC stalls and brownouts shape the injection itself.
	var v fault.Verdict
	if f.plane != nil {
		v = f.plane.Judge()
		if interNode && bw > 0 {
			bw = int64(float64(bw) * f.plane.BandwidthFactor(now))
		}
	}

	start := now
	if ep.txFree > start {
		start = ep.txFree
	}
	injection := f.cost.NetOverhead + v.StallNs
	if p.Bytes > 0 && bw > 0 {
		injection += p.Bytes * 1e9 / bw
	}
	injectEnd := start + injection
	ep.txFree = injectEnd
	ep.PacketsSent++
	ep.BytesSent += p.Bytes

	if f.Tel != nil {
		f.Tel.Inject(ep.id, p.Kind.String(), p.Bytes, start, injectEnd)
	}

	arrive := injectEnd + lat + v.ExtraNs
	if !v.Drop {
		if f.Tel != nil {
			f.Tel.Flight(ep.id, p.Dst, p.Kind.String(), p.Bytes, injectEnd, arrive)
		}
		f.eng.AtArg(arrive, f.deliverFn, p)
		if v.Duplicate {
			// The copy shares the packet struct: handlers treat packets
			// as read-only, and the receiver's transport deduplicates.
			f.eng.AtArg(arrive+v.DupExtraNs, f.deliverFn, p)
		}
	}

	if notifyTx {
		done := f.AllocPacket()
		done.Kind, done.Src, done.Dst, done.Handle = TxDone, ep.id, ep.id, p.Handle
		done.VCI = p.VCI
		f.eng.AtArg(injectEnd, f.deliverFn, done)
	}
	return injectEnd
}

// ID returns the endpoint id.
func (ep *Endpoint) ID() int { return ep.id }

// Node returns the node the endpoint lives on.
func (ep *Endpoint) Node() int { return ep.node }

// TxFreeAt returns when the NIC finishes its current injections.
func (ep *Endpoint) TxFreeAt() sim.Time { return ep.txFree }
