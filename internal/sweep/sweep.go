// Package sweep is the driver shell's parallel orchestrator: it fans
// independent, deterministic simulation points across a pool of OS-level
// worker goroutines and merges their results back into submission order,
// so callers observe byte-identical output at any worker count.
//
// sweep sits firmly on the driver-shell side of the repository's
// core/shell boundary (see docs/ARCHITECTURE.md): it is the one internal
// package allowed to use raw goroutines and sync primitives, because it
// never touches simulated state — each job constructs its own isolated
// sim engine and RNG from its captured parameters. The deterministic core
// (internal/sim and the packages above it) remains goroutine-free, and
// the nogoroutine analyzer enforces that split by package allowlist.
//
// Scheduling is work-stealing over the index space: each worker owns a
// contiguous range of job indices and, when its range drains, steals the
// upper half of the largest remaining range. Load balancing therefore
// adapts to wildly uneven job costs (a chaos soak next to a table lookup)
// without any coordination on the hot path. Scheduling order is
// intentionally unobservable: results land in a slice indexed by job, and
// OrderedMerge re-serializes streamed completions, so callers cannot
// distinguish worker counts by anything but wall-clock time.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per CPU, as the cmd tools default to.
func DefaultWorkers() int { return runtime.NumCPU() }

// span is one worker's claim on a contiguous range [lo, hi) of the job
// index space.
type span struct {
	mu     sync.Mutex
	lo, hi int
}

// take claims the next index of the worker's own range.
func (s *span) take() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	i := s.lo
	s.lo++
	return i, true
}

// size reports the remaining range length (racy snapshot used only for
// victim selection; correctness never depends on it).
func (s *span) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}

// steal removes and returns the upper half of the span (the whole span
// when only one index remains).
func (s *span) steal() (lo, hi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.hi - s.lo
	if n <= 0 {
		return 0, 0, false
	}
	mid := s.lo + n/2
	lo, hi = mid, s.hi
	s.hi = mid
	return lo, hi, true
}

// give replaces the worker's (drained) range with freshly stolen work.
func (s *span) give(lo, hi int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lo, s.hi = lo, hi
}

// clampWorkers normalizes the requested worker count for n jobs.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(0) .. fn(n-1) across a pool of workers goroutines and
// returns the results in index order. workers <= 1 runs serially on the
// calling goroutine (the exact code path a serial caller would have
// written); workers <= 0 means DefaultWorkers.
//
// Every job runs to completion even if another job fails, so a partial
// failure still yields a deterministic outcome: the returned error is the
// one from the lowest failing index, independent of scheduling.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if workers = clampWorkers(workers, n); workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("sweep: job %d: %w", i, err)
			}
			results[i] = v
		}
		return results, firstErr
	}

	// Partition the index space into one contiguous range per worker.
	spans := make([]*span, workers)
	for w := 0; w < workers; w++ {
		spans[w] = &span{lo: w * n / workers, hi: (w + 1) * n / workers}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := spans[w]
			for {
				if i, ok := my.take(); ok {
					results[i], errs[i] = fn(i)
					continue
				}
				if !stealInto(my, spans, w) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return results, nil
}

// stealInto refills the drained span my from the largest victim range.
// It returns false when no victim has work left, which is the worker's
// termination condition: job indices only ever move between spans, so an
// empty scan means every index is claimed or done.
func stealInto(my *span, spans []*span, self int) bool {
	// Order victims by (racily snapshotted) remaining size, largest
	// first, so the thief takes the biggest half available.
	order := make([]int, 0, len(spans)-1)
	for v := range spans {
		if v != self {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return spans[order[a]].size() > spans[order[b]].size()
	})
	for _, v := range order {
		if lo, hi, ok := spans[v].steal(); ok {
			my.give(lo, hi)
			return true
		}
	}
	return false
}

// Run is Map for jobs that produce no value.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// OrderedMerge re-serializes indexed completions: Put may be called from
// any goroutine in any order, and emit is invoked exactly once per index,
// in strictly increasing index order, as soon as all predecessors have
// arrived. Emission happens on whichever goroutine closes the gap, under
// an internal lock, so emit itself never needs synchronization.
//
// If emit returns an error the merge turns sticky: no further emissions
// happen and Err reports the first failure. Indices that never arrive
// simply leave the merge parked at their position — callers that can fail
// mid-stream use this to guarantee the emitted prefix matches what a
// serial run would have produced before the failure.
type OrderedMerge[T any] struct {
	mu      sync.Mutex
	next    int
	pending map[int]T
	emit    func(i int, v T) error
	err     error
}

// NewOrderedMerge returns a merge that starts emitting at index 0.
func NewOrderedMerge[T any](emit func(i int, v T) error) *OrderedMerge[T] {
	return &OrderedMerge[T]{pending: map[int]T{}, emit: emit}
}

// Put delivers index i's value and drains every now-contiguous index.
func (m *OrderedMerge[T]) Put(i int, v T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending[i] = v
	for m.err == nil {
		nv, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		if err := m.emit(m.next, nv); err != nil {
			m.err = fmt.Errorf("sweep: emit %d: %w", m.next, err)
			return
		}
		m.next++
	}
}

// Err returns the first emit failure, if any.
func (m *OrderedMerge[T]) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Emitted reports how many leading indices have been emitted so far.
func (m *OrderedMerge[T]) Emitted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}

// MapGroups runs fn over a flat index space partitioned into contiguous
// groups (group g spans sizes[g] consecutive indices) and delivers each
// group's results, in group order, as soon as the group completes. It is
// the orchestrator behind `mpistorm -experiment all -jobs N`: experiment
// points from all groups share one work-stealing pool so expensive and
// cheap experiments keep every worker fed, while the ordered merge makes
// the streamed per-group output byte-identical to a serial run.
//
// A group whose jobs all succeed is emitted only after every earlier
// group has been emitted. If any job fails, groups from the first failing
// group onward are withheld — exactly the prefix a serial run would have
// produced — and the error of the lowest failing flat index is returned.
func MapGroups[T any](workers int, sizes []int, fn func(i int) (T, error),
	emit func(g int, results []T) error) error {
	starts := make([]int, len(sizes))
	total := 0
	for g, sz := range sizes {
		if sz < 0 {
			return fmt.Errorf("sweep: group %d has negative size %d", g, sz)
		}
		starts[g] = total
		total += sz
	}

	merge := NewOrderedMerge[[]T](emit)
	var mu sync.Mutex // guards remaining and firstErr bookkeeping
	remaining := make([]int, len(sizes))
	groupOK := make([]bool, len(sizes))
	for g, sz := range sizes {
		remaining[g] = sz
		groupOK[g] = true
	}
	results := make([]T, total)

	// groupOf maps a flat index to its group: the last group whose start
	// is <= i. Zero-size groups share their successor's start, so the
	// search always lands on the nonzero group that owns i.
	groupOf := func(i int) int {
		return sort.Search(len(starts), func(g int) bool { return starts[g] > i }) - 1
	}

	// Empty groups have no jobs to trigger them; seed the merge up front.
	for g, sz := range sizes {
		if sz == 0 {
			merge.Put(g, nil)
		}
	}

	runErr := Run(workers, total, func(i int) error {
		v, err := fn(i)
		results[i] = v
		g := groupOf(i)
		mu.Lock()
		if err != nil {
			groupOK[g] = false
		}
		remaining[g]--
		done := remaining[g] == 0 && groupOK[g]
		mu.Unlock()
		if done {
			merge.Put(g, results[starts[g]:starts[g]+sizes[g]])
		}
		return err
	})
	if runErr != nil {
		return runErr
	}
	return merge.Err()
}
