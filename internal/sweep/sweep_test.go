package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrder checks that results land in index order for every worker
// count, including counts above the job count and the serial path.
func TestMapOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 4, 8, 64, 200} {
		got, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapRunsEachJobOnce counts executions under heavy stealing pressure:
// uneven job costs force workers to steal from each other's ranges.
func TestMapRunsEachJobOnce(t *testing.T) {
	const n = 500
	var counts [n]int64
	_, err := Map(8, n, func(i int) (struct{}, error) {
		atomic.AddInt64(&counts[i], 1)
		// Make early indices expensive so later ranges get stolen.
		if i%7 == 0 {
			x := 0
			for k := 0; k < 50_000; k++ {
				x += k
			}
			_ = x
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i] != 1 {
			t.Fatalf("job %d ran %d times", i, counts[i])
		}
	}
}

// TestMapZeroAndDefaults covers n=0 and workers<=0 (DefaultWorkers).
func TestMapZeroAndDefaults(t *testing.T) {
	got, err := Map(0, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	if err := Run(-1, 5, func(i int) error { return nil }); err != nil {
		t.Fatalf("workers=-1: %v", err)
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// TestMapErrorIsLowestIndex checks the deterministic error contract: all
// jobs run, and the reported error is the lowest failing index no matter
// the scheduling.
func TestMapErrorIsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int64
		_, err := Map(workers, 50, func(i int) (int, error) {
			atomic.AddInt64(&ran, 1)
			if i == 13 || i == 37 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "job 13") {
			t.Fatalf("workers=%d: err = %v, want job 13", workers, err)
		}
		if ran != 50 {
			t.Fatalf("workers=%d: ran %d jobs, want all 50", workers, ran)
		}
	}
}

// TestOrderedMergeShuffled feeds completions in adversarial orders and
// asserts emissions always come out 0,1,2,...
func TestOrderedMergeShuffled(t *testing.T) {
	const n = 64
	orders := [][]int{
		reversed(n),      // strictly worst case: everything buffers
		evensThenOdds(n), // interleaved gaps
		identity(n),      // already ordered
	}
	for oi, order := range orders {
		var got []int
		m := NewOrderedMerge[int](func(i, v int) error {
			if v != i*3 {
				t.Fatalf("order %d: emit(%d) = %d, want %d", oi, i, v, i*3)
			}
			got = append(got, i)
			return nil
		})
		for _, i := range order {
			m.Put(i, i*3)
		}
		if len(got) != n {
			t.Fatalf("order %d: emitted %d of %d", oi, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("order %d: emission %d was index %d", oi, i, v)
			}
		}
		if m.Err() != nil {
			t.Fatalf("order %d: unexpected err %v", oi, m.Err())
		}
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func reversed(n int) []int {
	out := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		out = append(out, i)
	}
	return out
}

func evensThenOdds(n int) []int {
	var out []int
	for i := 0; i < n; i += 2 {
		out = append(out, i)
	}
	for i := 1; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

// TestOrderedMergeGap checks that a missing index parks the merge: only
// the contiguous prefix is emitted.
func TestOrderedMergeGap(t *testing.T) {
	var got []int
	m := NewOrderedMerge[int](func(i, v int) error { got = append(got, i); return nil })
	for _, i := range []int{0, 1, 3, 4, 5} { // 2 never arrives
		m.Put(i, i)
	}
	if want := []int{0, 1}; len(got) != len(want) || got[0] != 0 || got[1] != 1 {
		t.Fatalf("emitted %v, want %v", got, want)
	}
	if m.Emitted() != 2 {
		t.Fatalf("Emitted() = %d, want 2", m.Emitted())
	}
}

// TestOrderedMergeEmitError checks the sticky-error contract.
func TestOrderedMergeEmitError(t *testing.T) {
	var emitted int
	m := NewOrderedMerge[int](func(i, v int) error {
		emitted++
		if i == 1 {
			return errors.New("sink full")
		}
		return nil
	})
	for _, i := range []int{2, 1, 0, 3} {
		m.Put(i, i)
	}
	if emitted != 2 { // 0 ok, 1 fails, 2 and 3 withheld
		t.Fatalf("emitted %d times, want 2", emitted)
	}
	if err := m.Err(); err == nil || !strings.Contains(err.Error(), "emit 1") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestOrderedMergeConcurrent hammers Put from many goroutines under the
// race detector; emissions must still be a permutation-free 0..n-1 walk.
func TestOrderedMergeConcurrent(t *testing.T) {
	const n = 300
	var got []int
	m := NewOrderedMerge[int](func(i, v int) error { got = append(got, i); return nil })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				m.Put(i, i)
			}
		}(w)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission %d was index %d", i, v)
		}
	}
}

// TestMapGroupsOrder runs uneven groups across worker counts and checks
// group payloads and strict emission order.
func TestMapGroupsOrder(t *testing.T) {
	sizes := []int{3, 0, 5, 1, 0, 4}
	for _, workers := range []int{1, 2, 4, 8} {
		var order []int
		err := MapGroups(workers, sizes, func(i int) (int, error) { return i + 100, nil },
			func(g int, results []int) error {
				order = append(order, g)
				if len(results) != sizes[g] {
					t.Fatalf("workers=%d group %d: %d results, want %d",
						workers, g, len(results), sizes[g])
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(order) != len(sizes) {
			t.Fatalf("workers=%d: emitted %d groups, want %d", workers, len(order), len(sizes))
		}
		for g, v := range order {
			if v != g {
				t.Fatalf("workers=%d: emission %d was group %d", workers, g, v)
			}
		}
	}
}

// TestMapGroupsValues checks each group receives exactly its own slice of
// the flat result space.
func TestMapGroupsValues(t *testing.T) {
	sizes := []int{2, 3}
	var all [][]int
	err := MapGroups(4, sizes, func(i int) (int, error) { return i * 10, nil },
		func(g int, results []int) error {
			cp := append([]int(nil), results...)
			all = append(all, cp)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 10}, {20, 30, 40}}
	for g := range want {
		for k := range want[g] {
			if all[g][k] != want[g][k] {
				t.Fatalf("group %d = %v, want %v", g, all[g], want[g])
			}
		}
	}
}

// TestMapGroupsFailurePrefix checks the serial-equivalent failure
// contract: a failing group withholds itself and everything after it,
// while the prefix still emits.
func TestMapGroupsFailurePrefix(t *testing.T) {
	sizes := []int{2, 2, 2, 2}
	for _, workers := range []int{1, 4} {
		var order []int
		err := MapGroups(workers, sizes, func(i int) (int, error) {
			if i == 5 { // group 2's second job
				return 0, errors.New("boom")
			}
			return i, nil
		}, func(g int, results []int) error {
			order = append(order, g)
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "job 5") {
			t.Fatalf("workers=%d: err = %v, want job 5", workers, err)
		}
		if len(order) != 2 || order[0] != 0 || order[1] != 1 {
			t.Fatalf("workers=%d: emitted groups %v, want [0 1]", workers, order)
		}
	}
}
