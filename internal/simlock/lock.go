// Package simlock implements the paper's critical-section arbitration
// models on top of the discrete-event simulator: the NPTL futex mutex whose
// user-space CAS race is biased by the memory hierarchy (§2.2, §4), the
// FCFS ticket lock (§5.1, Fig. 4), and the two-level priority lock built
// from ticket locks (§5.2, Fig. 7). TAS and MCS locks are included for the
// related-work comparison (§8).
//
// Arbitration emerges from modelled cache physics rather than being
// scripted: a release dirties the lock's cache line at the releaser's core,
// and each contender observes the release only after the line-transfer
// latency from that core, plus its own spin-phase alignment and a small
// seeded jitter. Futex-slept threads additionally pay a kernel wake-up
// penalty. The earliest observer wins a mutex CAS race; a ticket release
// instead hands off to the unique next ticket holder.
//
// simlock is part of the deterministic core (docs/ARCHITECTURE.md).
package simlock

import (
	"sort"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// Class is the scheduling class a thread uses when entering the runtime's
// critical section: High for the main path of an MPI call, Low for
// re-acquisitions from inside the progress loop (paper Fig. 6a). Locks
// without priority support ignore it.
type Class int

const (
	// High marks main-path acquisitions (likely to produce work).
	High Class = iota
	// Low marks progress-loop acquisitions (likely to just poll).
	Low
)

// String names the class.
func (c Class) String() string {
	if c == High {
		return "high"
	}
	return "low"
}

// Ctx binds a simthread to its hardware placement for lock arbitration.
type Ctx struct {
	T     *sim.Thread
	Place machine.Place
}

// Lock is a simulated mutual-exclusion primitive. Acquire blocks the
// calling simthread until it owns the lock; Release must be called with the
// same class that was used to acquire.
type Lock interface {
	Acquire(c *Ctx, cl Class)
	Release(c *Ctx, cl Class)
	Name() string
}

// GrantInfo describes one critical-section acquisition, recorded at the
// moment a thread becomes the owner. It carries everything the paper's
// §4.3 fairness estimators need.
type GrantInfo struct {
	At       sim.Time
	ThreadID int
	Place    machine.Place
	Class    Class
	// Waiters holds the placements of every thread still waiting for the
	// lock at grant time (the new owner excluded).
	Waiters []machine.Place
}

// GrantFunc observes lock acquisitions; attach one via each lock's OnGrant
// field. The Waiters slice is only valid during the call.
type GrantFunc func(GrantInfo)

// Config carries the shared knobs for all simulated locks.
type Config struct {
	Eng  *sim.Engine
	Cost machine.CostModel
	// OnGrant, if non-nil, observes every acquisition.
	OnGrant GrantFunc
}

func (cfg *Config) emit(gi GrantInfo) {
	if cfg.OnGrant != nil {
		cfg.OnGrant(gi)
	}
}

// appendCtxPlaces appends the placements of a waiting set to dst in
// thread-id order: Go map iteration order is randomized, and an
// order-dependent Waiters snapshot would make grant traces differ between
// runs of the same seed.
func appendCtxPlaces(dst []machine.Place, m map[*Ctx]bool) []machine.Place {
	cs := make([]*Ctx, 0, len(m))
	for c := range m {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].T.ID() < cs[j].T.ID() })
	for _, c := range cs {
		dst = append(dst, c.Place)
	}
	return dst
}

// Kind enumerates the lock implementations available to the runtime.
type Kind int

const (
	// KindMutex is the NPTL futex-based pthread mutex model (baseline).
	KindMutex Kind = iota
	// KindTicket is the FCFS ticket lock (§5.1).
	KindTicket
	// KindPriority is the two-level priority lock (§5.2, Fig. 7).
	KindPriority
	// KindTAS is a test-and-set spinlock (related work §8).
	KindTAS
	// KindMCS is the MCS queue lock (related work §8).
	KindMCS
	// KindPrioMutex stacks three futex mutexes in the priority-lock
	// shape; §7 argues this cannot work. Included as an ablation.
	KindPrioMutex
	// KindSocketPriority is the socket-aware priority variant §7 warns
	// may starve remote sockets. Included as an ablation.
	KindSocketPriority
	// KindNone disables locking entirely, modelling MPI_THREAD_SINGLE
	// (valid only with one runtime thread per process).
	KindNone
	// KindCohort is a NUMA-aware two-level cohort lock: socket-local
	// hand-offs with a bounded batch (extension; the principled version
	// of §7's socket-aware idea).
	KindCohort
	// KindCLH is the CLH queue lock: FCFS like the ticket lock, but each
	// waiter spins locally on its predecessor's node line, so hand-offs
	// skip the shared-line spin-phase alignment (related work §8).
	KindCLH
)

// String names the lock kind as used in figures ("Mutex", "Ticket", ...).
func (k Kind) String() string {
	switch k {
	case KindMutex:
		return "Mutex"
	case KindTicket:
		return "Ticket"
	case KindPriority:
		return "Priority"
	case KindTAS:
		return "TAS"
	case KindMCS:
		return "MCS"
	case KindPrioMutex:
		return "PrioMutex"
	case KindSocketPriority:
		return "SocketPriority"
	case KindNone:
		return "Single"
	case KindCohort:
		return "Cohort"
	case KindCLH:
		return "CLH"
	default:
		return "UnknownLock"
	}
}

// NullLock is a no-op "lock" modelling MPI_THREAD_SINGLE: no atomic
// operations, no serialization. Using it with more than one thread in the
// runtime is undefined, exactly like calling a THREAD_SINGLE MPI library
// from multiple threads.
type NullLock struct {
	cfg *Config
}

// Acquire records the grant (so tracing still works) and returns
// immediately.
func (n NullLock) Acquire(c *Ctx, cl Class) {
	if n.cfg.OnGrant != nil {
		n.cfg.emit(GrantInfo{At: n.cfg.Eng.Now(), ThreadID: c.T.ID(), Place: c.Place, Class: cl})
	}
}

// Release does nothing.
func (n NullLock) Release(*Ctx, Class) {}

// Name returns the figure label ("Single").
func (n NullLock) Name() string { return "Single" }

// New constructs a lock of the given kind.
func New(k Kind, cfg *Config) Lock {
	switch k {
	case KindMutex:
		return NewFutexMutex(cfg)
	case KindTicket:
		return NewTicketLock(cfg)
	case KindPriority:
		return NewPriorityLock(cfg)
	case KindTAS:
		return NewTASLock(cfg)
	case KindMCS:
		return NewMCSLock(cfg)
	case KindPrioMutex:
		return NewPrioMutexLock(cfg)
	case KindSocketPriority:
		return NewSocketPriorityLock(cfg)
	case KindNone:
		return NullLock{cfg: cfg}
	case KindCohort:
		return NewCohortLock(cfg)
	case KindCLH:
		return NewCLHLock(cfg)
	default:
		panic("simlock: unknown kind")
	}
}
