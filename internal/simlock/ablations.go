package simlock

import (
	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// PrioMutexLock stacks three futex mutexes in the shape of Fig. 7. The
// paper's §7 argues this cannot work: mutexes guarantee no fairness within
// a priority class, and low-priority threads can monopolize the blocking
// lock over high-priority ones. It exists purely as an ablation so that
// claim can be measured.
type PrioMutexLock struct {
	cfg            *Config
	h, l, b        *FutexMutex
	alreadyBlocked bool
	highHolders    int
	waitH, waitL   map[*Ctx]bool
}

// NewPrioMutexLock builds the mutex-based priority composition of §7.
func NewPrioMutexLock(cfg *Config) *PrioMutexLock {
	sub := &Config{Eng: cfg.Eng, Cost: cfg.Cost}
	return &PrioMutexLock{
		cfg:   cfg,
		h:     NewFutexMutex(sub),
		l:     NewFutexMutex(sub),
		b:     NewFutexMutex(sub),
		waitH: make(map[*Ctx]bool),
		waitL: make(map[*Ctx]bool),
	}
}

// Name returns the figure label of the lock.
func (p *PrioMutexLock) Name() string { return "PrioMutex" }

// Acquire enters the critical section with the given class.
func (p *PrioMutexLock) Acquire(c *Ctx, cl Class) {
	if cl == High {
		p.waitH[c] = true
		p.h.Acquire(c, High)
		if !p.alreadyBlocked {
			p.b.Acquire(c, High)
			p.alreadyBlocked = true
		}
		p.highHolders++
		delete(p.waitH, c)
	} else {
		p.waitL[c] = true
		// Same shape as PriorityLock.Acquire: the held-lock walk is
		// flow-insensitive and carries the High arm's b acquisition into
		// this branch, though the arms are mutually exclusive.
		//simcheck:allow lockorder High and Low arms are exclusive; b is not held on this path
		p.l.Acquire(c, Low)
		//simcheck:allow lockorder High and Low arms are exclusive; b is not held on this path
		p.b.Acquire(c, Low)
		delete(p.waitL, c)
	}
	p.emit(c, cl)
}

// Release leaves the critical section.
func (p *PrioMutexLock) Release(c *Ctx, cl Class) {
	if cl == High {
		p.highHolders--
		// A mutex has no waiter count visible in user space; approximate
		// "last high-priority thread" with the contender count, which is
		// exactly the information a futex-based design cannot get
		// race-free — part of why §7 rejects this construction.
		if p.h.ContenderCount() == 0 {
			p.releaseB(c)
			p.alreadyBlocked = false
		}
		p.h.Release(c, High)
	} else {
		p.releaseB(c)
		p.l.Release(c, Low)
	}
}

// releaseB releases b from the calling context (mutexes assert holder
// identity, and ownership of b migrates within the high class, so it is
// transferred to the caller first).
func (p *PrioMutexLock) releaseB(c *Ctx) {
	if p.b.Holder() != c {
		p.b.TransferOwnership(c)
	}
	p.b.Release(c, High)
}

// ContenderCount returns the number of threads waiting on either class.
func (p *PrioMutexLock) ContenderCount() int { return len(p.waitH) + len(p.waitL) }

func (p *PrioMutexLock) emit(c *Ctx, cl Class) {
	if p.cfg.OnGrant == nil {
		return
	}
	ws := make([]machine.Place, 0, len(p.waitH)+len(p.waitL))
	ws = appendCtxPlaces(ws, p.waitH)
	ws = appendCtxPlaces(ws, p.waitL)
	p.cfg.emit(GrantInfo{At: p.cfg.Eng.Now(), ThreadID: c.T.ID(), Place: c.Place, Class: cl, Waiters: ws})
}

// SocketPriorityLock is the socket-aware arbitration §7 discusses and
// rejects: on release it serves waiters from the releaser's socket first,
// falling back to other sockets only when the local queue is empty. This
// reduces inter-socket hand-offs but can starve remote sockets when the
// local socket keeps the queue non-empty (e.g. MPI_Test polling loops).
type SocketPriorityLock struct {
	cfg    *Config
	locked bool
	holder *Ctx
	line   machine.Place
	hasOwn bool
	queues map[int][]*sockWaiter // per (node,socket) key FIFO
	order  []int                 // deterministic iteration order of keys
	total  int
}

type sockWaiter struct {
	c         *Ctx
	spinStart sim.Time
}

// NewSocketPriorityLock returns the §7 socket-aware ablation lock.
func NewSocketPriorityLock(cfg *Config) *SocketPriorityLock {
	return &SocketPriorityLock{cfg: cfg, queues: make(map[int][]*sockWaiter)}
}

// Name returns the figure label of the lock.
func (l *SocketPriorityLock) Name() string { return "SocketPriority" }

// ContenderCount returns the number of queued threads.
func (l *SocketPriorityLock) ContenderCount() int { return l.total }

func sockKey(p machine.Place) int { return p.Node*64 + p.Socket }

// Acquire blocks until the lock is granted by the socket-aware policy.
func (l *SocketPriorityLock) Acquire(c *Ctx, _ Class) {
	if !l.locked {
		l.locked = true
		l.holder = c
		cost := int64(0)
		if l.hasOwn {
			cost = l.cfg.Cost.Transfer(l.line, c.Place)
		}
		l.line = c.Place
		l.hasOwn = true
		if cost > 0 {
			c.T.Sleep(cost)
		}
		l.emit(c, l.cfg.Eng.Now())
		return
	}
	k := sockKey(c.Place)
	if _, ok := l.queues[k]; !ok {
		l.order = append(l.order, k)
	}
	l.queues[k] = append(l.queues[k], &sockWaiter{c: c, spinStart: l.cfg.Eng.Now()})
	l.total++
	c.T.Park()
	if l.holder != c {
		panic("simlock: socket-priority lock woke a thread out of turn")
	}
}

// Release grants the lock to the oldest waiter on the releaser's socket,
// or the oldest waiter anywhere if that socket has none.
func (l *SocketPriorityLock) Release(c *Ctx, _ Class) {
	if !l.locked || l.holder != c {
		panic("simlock: socket-priority release by non-holder")
	}
	l.locked = false
	l.holder = nil
	l.line = c.Place
	l.hasOwn = true
	if l.total == 0 {
		return
	}
	var w *sockWaiter
	local := sockKey(c.Place)
	if q := l.queues[local]; len(q) > 0 {
		w, l.queues[local] = q[0], q[1:]
	} else {
		for _, k := range l.order {
			if q := l.queues[k]; len(q) > 0 {
				w, l.queues[k] = q[0], q[1:]
				break
			}
		}
	}
	l.total--
	at := l.cfg.Eng.Now() + l.cfg.Cost.Transfer(c.Place, w.c.Place)
	l.locked = true
	l.holder = w.c
	l.line = w.c.Place
	l.cfg.Eng.At(at, func() {
		l.emit(w.c, at)
		w.c.T.Unpark(at)
	})
}

func (l *SocketPriorityLock) emit(c *Ctx, at sim.Time) {
	if l.cfg.OnGrant == nil {
		return
	}
	var ws []machine.Place
	for _, k := range l.order {
		for _, w := range l.queues[k] {
			ws = append(ws, w.c.Place)
		}
	}
	l.cfg.emit(GrantInfo{At: at, ThreadID: c.T.ID(), Place: c.Place, Class: High, Waiters: ws})
}
