package simlock

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// TestCLHFIFO: like the ticket lock, CLH grants strictly in arrival order —
// the same thread never reacquires while others are queued.
func TestCLHFIFO(t *testing.T) {
	h := newHarness(t, KindCLH, 1)
	h.run(t, 8, 30, 500, 1, nil)
	for i := 1; i < len(h.grants); i++ {
		g := h.grants[i]
		if g.ThreadID == h.grants[i-1].ThreadID && len(h.grants[i-1].Waiters) > 0 {
			t.Fatalf("grant %d: thread %d reacquired while %d waiters queued",
				i, g.ThreadID, len(h.grants[i-1].Waiters))
		}
	}
}

// TestCLHHandoffBeatsTicket: the CLH waiter spins on a private predecessor
// line, so a hand-off completes one line transfer after the release. The
// ticket waiter spins on the shared now_serving line and additionally
// rounds up to its next spin check. Under a saturated FIFO workload the
// CLH critical-section pipeline therefore finishes no later than the
// ticket lock's, and strictly earlier whenever SpinCheckPeriod > 0.
func TestCLHHandoffBeatsTicket(t *testing.T) {
	finish := func(kind Kind) sim.Time {
		eng := sim.NewEngine(5)
		topo := machine.Nehalem2x4(1)
		cfg := &Config{Eng: eng, Cost: machine.Default()}
		lock := New(kind, cfg)
		const hold, iters, threads = 300, 40, 8
		for i := 0; i < threads; i++ {
			place := topo.Bind(machine.Compact, 0, 0, 8, i)
			eng.Spawn("w", func(th *sim.Thread) {
				c := &Ctx{T: th, Place: place}
				for k := 0; k < iters; k++ {
					lock.Acquire(c, High)
					th.Sleep(hold)
					lock.Release(c, High)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return eng.Now()
	}
	clh, ticket := finish(KindCLH), finish(KindTicket)
	if clh > ticket {
		t.Fatalf("CLH finished at %d, later than ticket at %d", clh, ticket)
	}
	if machine.Default().SpinCheckPeriod > 0 && clh == ticket {
		t.Fatalf("CLH hand-off should beat the quantized ticket hand-off (both %d)", clh)
	}
}

// TestCLHDeterminism: same seed, same grant trace.
func TestCLHDeterminism(t *testing.T) {
	trace := func() []GrantInfo {
		h := newHarness(t, KindCLH, 99)
		h.run(t, 6, 25, 120, 15, nil)
		return h.grants
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("grant counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].ThreadID != b[i].ThreadID {
			t.Fatalf("grant %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
