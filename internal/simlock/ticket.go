package simlock

import (
	"fmt"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// TicketLock models the FCFS ticket lock of paper §5.1 (Fig. 4): each
// acquirer takes a ticket with one fetch-and-increment and busy-waits until
// now_serving reaches it. Arbitration is strictly first-come-first-served;
// the memory hierarchy affects only the hand-off latency (the next holder
// observes the incremented now_serving after a line transfer from the
// releaser), never the order.
type TicketLock struct {
	cfg        *Config
	nextTicket uint64
	nowServing uint64
	locked     bool
	holder     *Ctx
	line       machine.Place // home of the now_serving line
	hasOwn     bool

	// waiters[whead:] is the FIFO of parked acquirers. Tickets are issued
	// monotonically and served in order, so arrival order equals serve
	// order: a ring over a reused slice replaces the old per-waiter map
	// entries, and queue-order snapshots need no sorting.
	waiters []ticketWaiter
	whead   int

	// wakeFn is the shared hand-off callback (sim.AtArg): one long-lived
	// closure instead of one allocation per release.
	wakeFn func(interface{})

	name string
	// emitGrants controls whether this lock reports acquisitions; the
	// priority lock disables it for its component locks.
	emitGrants bool
	// skipFreeAcquireCharge elides the line-transfer cost of taking the
	// lock uncontended. The priority lock sets it on ticket_B: its line
	// is fetched concurrently with ticket_H's on the same path.
	skipFreeAcquireCharge bool
}

type ticketWaiter struct {
	ticket    uint64
	c         *Ctx
	spinStart sim.Time
}

// NewTicketLock returns a FCFS ticket lock.
func NewTicketLock(cfg *Config) *TicketLock {
	l := &TicketLock{
		cfg:        cfg,
		name:       "Ticket",
		emitGrants: true,
	}
	l.wakeFn = func(x interface{}) {
		c := x.(*Ctx)
		at := l.cfg.Eng.Now()
		l.emit(c, at)
		c.T.Unpark(at)
	}
	return l
}

// Name returns the figure label of the lock.
func (l *TicketLock) Name() string { return l.name }

// Holder returns the current owner context, or nil when free.
func (l *TicketLock) Holder() *Ctx { return l.holder }

// HasWaiters reports whether any thread is queued behind the current
// holder. The priority lock uses it to detect "last high-priority thread".
func (l *TicketLock) HasWaiters() bool { return l.whead < len(l.waiters) }

// ContenderCount returns the number of queued threads.
func (l *TicketLock) ContenderCount() int { return len(l.waiters) - l.whead }

// WaiterPlaces snapshots the placements of queued threads, in ticket
// (queue) order so the snapshot is deterministic.
func (l *TicketLock) WaiterPlaces() []machine.Place {
	ps := make([]machine.Place, 0, len(l.waiters)-l.whead)
	for _, w := range l.waiters[l.whead:] {
		ps = append(ps, w.c.Place)
	}
	return ps
}

// Acquire takes a ticket and blocks until served. The class is ignored;
// priority composition happens in PriorityLock.
func (l *TicketLock) Acquire(c *Ctx, _ Class) {
	eng := l.cfg.Eng
	my := l.nextTicket
	l.nextTicket++
	if my == l.nowServing && !l.locked {
		// Free lock: pay the fetch-and-increment line transfer and go.
		l.locked = true
		l.holder = c
		cost := int64(0)
		if l.hasOwn && !l.skipFreeAcquireCharge {
			cost = l.cfg.Cost.Transfer(l.line, c.Place)
		}
		l.line = c.Place
		l.hasOwn = true
		if cost > 0 {
			c.T.Sleep(cost)
		}
		l.emit(c, eng.Now())
		return
	}
	l.waiters = append(l.waiters, ticketWaiter{ticket: my, c: c, spinStart: eng.Now()})
	c.T.Park()
	if l.holder != c {
		panic("simlock: ticket lock woke a thread out of turn")
	}
}

// Release increments now_serving and hands the lock to the next ticket
// holder, if one is already waiting. Unlike a pthread mutex, any context
// may release (the priority lock passes ownership of its blocking ticket
// between high-priority threads, per Fig. 7).
func (l *TicketLock) Release(c *Ctx, _ Class) {
	if !l.locked {
		panic(fmt.Sprintf("simlock: release of unlocked %s by %q", l.name, c.T.Name()))
	}
	eng := l.cfg.Eng
	now := eng.Now()
	l.locked = false
	l.holder = nil
	l.nowServing++
	l.line = c.Place
	l.hasOwn = true

	if l.whead >= len(l.waiters) || l.waiters[l.whead].ticket != l.nowServing {
		return // next ticket holder has not arrived yet (or none issued)
	}
	w := l.waiters[l.whead]
	l.waiters[l.whead] = ticketWaiter{}
	l.whead++
	if l.whead == len(l.waiters) {
		// Queue drained: rewind the ring, keeping the backing array.
		l.waiters = l.waiters[:0]
		l.whead = 0
	} else if l.whead >= 64 && l.whead*2 >= len(l.waiters) {
		// Saturated queue that never fully drains: slide the live tail
		// down so the backing array stays bounded.
		n := copy(l.waiters, l.waiters[l.whead:])
		for i := n; i < len(l.waiters); i++ {
			l.waiters[i] = ticketWaiter{}
		}
		l.waiters = l.waiters[:n]
		l.whead = 0
	}
	// Hand-off: the waiter observes the new now_serving after the line
	// transfer, at its next spin check.
	at := now + l.cfg.Cost.Transfer(c.Place, w.c.Place)
	if p := l.cfg.Cost.SpinCheckPeriod; p > 0 && at > w.spinStart {
		k := (at - w.spinStart + p - 1) / p
		at = w.spinStart + k*p
	}
	l.locked = true
	l.holder = w.c
	l.line = w.c.Place
	eng.AtArg(at, l.wakeFn, w.c)
}

func (l *TicketLock) emit(c *Ctx, at sim.Time) {
	if l.emitGrants && l.cfg.OnGrant != nil {
		l.cfg.emit(GrantInfo{
			At:       at,
			ThreadID: c.T.ID(),
			Place:    c.Place,
			Class:    High,
			Waiters:  l.WaiterPlaces(),
		})
	}
}
