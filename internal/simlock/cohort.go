package simlock

import (
	"sort"

	"mpicontend/internal/machine"
)

// cohortBatch bounds how many consecutive hand-offs stay within one socket
// before the cohort must pass the lock on; this is what separates a cohort
// lock from the starvation-prone socket-priority policy of §7.
const cohortBatch = 8

// CohortLock is a NUMA-aware lock in the style of Dice/Marathe/Shavit
// cohort locks: a per-socket ticket lock nested under a global ticket
// lock. The holder prefers to hand off within its socket — capturing the
// inter-socket-traffic savings the paper's §7 wants from socket-aware
// arbitration — but only for a bounded batch, so remote sockets cannot
// starve (the failure mode §7 predicts for the naive policy, and which
// SocketPriorityLock exhibits). It is an extension beyond the paper,
// benchmarked in the "ablation-socketprio" experiment.
type CohortLock struct {
	cfg    *Config
	global *TicketLock
	socks  map[int]*cohortSock
	holder *Ctx
}

type cohortSock struct {
	tl         *TicketLock
	cohortOwns bool // the global lock is held on behalf of this socket
	batch      int
}

// NewCohortLock builds the two-level cohort lock.
func NewCohortLock(cfg *Config) *CohortLock {
	sub := &Config{Eng: cfg.Eng, Cost: cfg.Cost}
	g := NewTicketLock(sub)
	g.name = "cohort_global"
	return &CohortLock{cfg: cfg, global: g, socks: map[int]*cohortSock{}}
}

// Name returns the figure label of the lock.
func (l *CohortLock) Name() string { return "Cohort" }

func (l *CohortLock) sock(p machine.Place) *cohortSock {
	key := p.Node*64 + p.Socket
	s := l.socks[key]
	if s == nil {
		sub := &Config{Eng: l.cfg.Eng, Cost: l.cfg.Cost}
		tl := NewTicketLock(sub)
		tl.name = "cohort_local"
		s = &cohortSock{tl: tl}
		l.socks[key] = s
	}
	return s
}

// Acquire takes the local socket lock and, unless the cohort already owns
// the global lock, the global lock too.
func (l *CohortLock) Acquire(c *Ctx, cl Class) {
	s := l.sock(c.Place)
	s.tl.Acquire(c, cl)
	if !s.cohortOwns {
		l.global.Acquire(c, cl)
	}
	s.cohortOwns = false // consumed; release decides whether to re-grant
	l.holder = c
	if l.cfg.OnGrant != nil {
		l.cfg.emit(GrantInfo{
			At: l.cfg.Eng.Now(), ThreadID: c.T.ID(), Place: c.Place,
			Class: cl, Waiters: l.waiterPlaces(),
		})
	}
}

// Release hands off within the socket while waiters remain and the batch
// allows; otherwise it releases the global lock so another socket runs.
func (l *CohortLock) Release(c *Ctx, cl Class) {
	s := l.sock(c.Place)
	l.holder = nil
	if s.tl.HasWaiters() && s.batch < cohortBatch {
		s.batch++
		s.cohortOwns = true
		s.tl.Release(c, cl)
		return
	}
	s.batch = 0
	l.global.Release(c, cl)
	s.tl.Release(c, cl)
}

// ContenderCount returns the number of threads waiting across sockets.
func (l *CohortLock) ContenderCount() int {
	n := l.global.ContenderCount()
	for _, s := range l.socks {
		n += s.tl.ContenderCount()
	}
	return n
}

func (l *CohortLock) waiterPlaces() []machine.Place {
	var ps []machine.Place
	ps = append(ps, l.global.WaiterPlaces()...)
	// Socket order, not map order, so the snapshot is deterministic.
	keys := make([]int, 0, len(l.socks))
	for k := range l.socks {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		ps = append(ps, l.socks[k].tl.WaiterPlaces()...)
	}
	return ps
}
