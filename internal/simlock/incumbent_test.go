package simlock

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// TestDebugIncumbentVsOutsider measures how long an outsider thread waits
// to acquire a mutex monopolized by a tight polling loop.
func TestDebugIncumbentVsOutsider(t *testing.T) {
	eng := sim.NewEngine(3)
	eng.MaxEvents = 5_000_000
	cfg := &Config{Eng: eng, Cost: machine.Default()}
	m := NewFutexMutex(cfg)
	topo := machine.Nehalem2x4(1)

	incPlace := topo.PlaceOf(0, 1)
	outPlace := topo.PlaceOf(0, 0)
	stop := false
	eng.Spawn("incumbent", func(th *sim.Thread) {
		c := &Ctx{T: th, Place: incPlace}
		for !stop {
			m.Acquire(c, High)
			th.Sleep(400)
			m.Release(c, High)
			th.Sleep(10 + eng.Rand().Int63n(21))
		}
	})
	var waits []int64
	eng.Spawn("outsider", func(th *sim.Thread) {
		c := &Ctx{T: th, Place: outPlace}
		for i := 0; i < 40; i++ {
			th.Sleep(300)
			t0 := th.Now()
			m.Acquire(c, High)
			waits = append(waits, th.Now()-t0)
			th.Sleep(150)
			m.Release(c, High)
		}
		stop = true
	})
	if err := eng.Run(); err != nil {
		t.Logf("run: %v", err)
	}
	var sum, max int64
	for _, w := range waits {
		sum += w
		if w > max {
			max = w
		}
	}
	if len(waits) == 0 {
		t.Fatal("outsider never acquired")
	}
	t.Logf("outsider acquisitions=%d avg=%dns max=%dns events=%d now=%dns",
		len(waits), sum/int64(len(waits)), max, eng.EventsRun(), eng.Now())
}
