package simlock

import (
	"fmt"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// CLHLock models the CLH queue lock (Craig; Landin & Hagersten): each
// acquirer enqueues a node and busy-waits on its *predecessor's* node,
// which lives on a dedicated cache line. Arbitration is FCFS like the
// ticket lock, but the hand-off differs: because every waiter spins on a
// private line, the release is pushed to exactly one core by the coherence
// protocol and the successor observes it right after the line transfer —
// there is no shared now_serving line whose spin-phase alignment delays
// the observation. In the model that means the ticket lock's
// SpinCheckPeriod quantization does not apply to CLH hand-offs.
type CLHLock struct {
	cfg    *Config
	locked bool
	holder *Ctx
	// line is the home of the tail word (the swap target of an enqueue);
	// only uncontended acquisitions pay for fetching it.
	line   machine.Place
	hasOwn bool

	// waiters[whead:] is the implicit queue of parked acquirers in enqueue
	// order (each spinning on its predecessor's node line).
	waiters []clhWaiter
	whead   int

	// wakeFn is the shared hand-off callback (sim.AtArg): one long-lived
	// closure instead of one allocation per release.
	wakeFn func(interface{})

	name string
}

type clhWaiter struct {
	c *Ctx
}

// NewCLHLock returns a CLH queue lock.
func NewCLHLock(cfg *Config) *CLHLock {
	l := &CLHLock{
		cfg:  cfg,
		name: "CLH",
	}
	l.wakeFn = func(x interface{}) {
		c := x.(*Ctx)
		at := l.cfg.Eng.Now()
		l.emit(c, at)
		c.T.Unpark(at)
	}
	return l
}

// Name returns the figure label of the lock.
func (l *CLHLock) Name() string { return l.name }

// Holder returns the current owner context, or nil when free.
func (l *CLHLock) Holder() *Ctx { return l.holder }

// ContenderCount returns the number of queued threads.
func (l *CLHLock) ContenderCount() int { return len(l.waiters) - l.whead }

// WaiterPlaces snapshots the placements of queued threads in queue order,
// so the snapshot is deterministic.
func (l *CLHLock) WaiterPlaces() []machine.Place {
	ps := make([]machine.Place, 0, len(l.waiters)-l.whead)
	for _, w := range l.waiters[l.whead:] {
		ps = append(ps, w.c.Place)
	}
	return ps
}

// Acquire swaps a fresh node into the tail and blocks until the
// predecessor's node flips. An uncontended acquire pays the tail-word line
// transfer; a queued acquire pays nothing up front (the swap overlaps the
// spin setup) and is charged the hand-off transfer at release time.
func (l *CLHLock) Acquire(c *Ctx, _ Class) {
	eng := l.cfg.Eng
	if !l.locked && l.whead >= len(l.waiters) {
		l.locked = true
		l.holder = c
		cost := int64(0)
		if l.hasOwn {
			cost = l.cfg.Cost.Transfer(l.line, c.Place)
		}
		l.line = c.Place
		l.hasOwn = true
		if cost > 0 {
			c.T.Sleep(cost)
		}
		l.emit(c, eng.Now())
		return
	}
	l.waiters = append(l.waiters, clhWaiter{c: c})
	c.T.Park()
	if l.holder != c {
		panic("simlock: CLH lock woke a thread out of turn")
	}
}

// Release flips the holder's node and hands the lock to the successor, if
// one is queued. The successor spins on this very line, so it observes the
// flip one line transfer later — no spin-period rounding.
func (l *CLHLock) Release(c *Ctx, _ Class) {
	if !l.locked {
		panic(fmt.Sprintf("simlock: release of unlocked %s by %q", l.name, c.T.Name()))
	}
	eng := l.cfg.Eng
	now := eng.Now()
	l.locked = false
	l.holder = nil
	l.line = c.Place
	l.hasOwn = true

	if l.whead >= len(l.waiters) {
		return // nobody queued
	}
	w := l.waiters[l.whead]
	l.waiters[l.whead] = clhWaiter{}
	l.whead++
	if l.whead == len(l.waiters) {
		// Queue drained: rewind the ring, keeping the backing array.
		l.waiters = l.waiters[:0]
		l.whead = 0
	} else if l.whead >= 64 && l.whead*2 >= len(l.waiters) {
		// Saturated queue that never fully drains: slide the live tail
		// down so the backing array stays bounded.
		n := copy(l.waiters, l.waiters[l.whead:])
		for i := n; i < len(l.waiters); i++ {
			l.waiters[i] = clhWaiter{}
		}
		l.waiters = l.waiters[:n]
		l.whead = 0
	}
	at := now + l.cfg.Cost.Transfer(c.Place, w.c.Place)
	l.locked = true
	l.holder = w.c
	l.line = w.c.Place
	eng.AtArg(at, l.wakeFn, w.c)
}

func (l *CLHLock) emit(c *Ctx, at sim.Time) {
	if l.cfg.OnGrant != nil {
		l.cfg.emit(GrantInfo{
			At:       at,
			ThreadID: c.T.ID(),
			Place:    c.Place,
			Class:    High,
			Waiters:  l.WaiterPlaces(),
		})
	}
}
