package simlock

import (
	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// PriorityLock is the paper's custom two-level arbitration scheme (§5.2,
// Fig. 7), composed of three ticket locks:
//
//	ticket_H  serializes high-priority threads (the MPI call main path);
//	ticket_L  serializes low-priority threads (the progress loop);
//	ticket_B  lets the high-priority class block the low-priority class.
//
// The first high-priority thread in a burst acquires ticket_B; subsequent
// high-priority threads ride the already_blocked flag. The last
// high-priority thread (no waiters left on ticket_H) releases ticket_B,
// letting low-priority threads through. Fairness within each class is FCFS
// by construction.
type PriorityLock struct {
	cfg            *Config
	h, l, b        *TicketLock
	alreadyBlocked bool

	// waiting sets, maintained for grant snapshots (§4.3 estimators).
	waitH map[*Ctx]bool
	waitL map[*Ctx]bool
}

// NewPriorityLock builds the Fig. 7 composition.
func NewPriorityLock(cfg *Config) *PriorityLock {
	sub := &Config{Eng: cfg.Eng, Cost: cfg.Cost} // components do not emit grants
	mk := func(name string) *TicketLock {
		t := NewTicketLock(sub)
		t.name = name
		return t
	}
	b := mk("ticket_B")
	b.skipFreeAcquireCharge = true
	return &PriorityLock{
		cfg:   cfg,
		h:     mk("ticket_H"),
		l:     mk("ticket_L"),
		b:     b,
		waitH: make(map[*Ctx]bool),
		waitL: make(map[*Ctx]bool),
	}
}

// Name returns the figure label of the lock.
func (p *PriorityLock) Name() string { return "Priority" }

// Acquire enters the critical section with the given class.
func (p *PriorityLock) Acquire(c *Ctx, cl Class) {
	if cl == High {
		p.waitH[c] = true
		p.h.Acquire(c, High)
		if !p.alreadyBlocked {
			p.b.Acquire(c, High)
			p.alreadyBlocked = true
		}
		delete(p.waitH, c)
	} else {
		p.waitL[c] = true
		// The held-lock walk is flow-insensitive: it sees the High arm's
		// ticket_B acquisition as still held here, though the arms are
		// mutually exclusive. The real orders are H->B and L->B only.
		//simcheck:allow lockorder High and Low arms are exclusive; ticket_B is not held on this path
		p.l.Acquire(c, Low)
		//simcheck:allow lockorder High and Low arms are exclusive; ticket_B is not held on this path
		p.b.Acquire(c, Low)
		delete(p.waitL, c)
	}
	p.emit(c, cl)
}

// Release leaves the critical section. cl must match the class used to
// acquire.
func (p *PriorityLock) Release(c *Ctx, cl Class) {
	if cl == High {
		if !p.h.HasWaiters() {
			// Last high-priority thread: let the low-priority class pass.
			p.b.Release(c, High)
			p.alreadyBlocked = false
		}
		p.h.Release(c, High)
	} else {
		p.b.Release(c, Low)
		p.l.Release(c, Low)
	}
}

// ContenderCount returns the number of threads waiting on either class.
func (p *PriorityLock) ContenderCount() int { return len(p.waitH) + len(p.waitL) }

func (p *PriorityLock) emit(c *Ctx, cl Class) {
	if p.cfg.OnGrant == nil {
		return
	}
	ws := make([]machine.Place, 0, len(p.waitH)+len(p.waitL))
	ws = appendCtxPlaces(ws, p.waitH)
	ws = appendCtxPlaces(ws, p.waitL)
	p.cfg.emit(GrantInfo{
		At:       p.cfg.Eng.Now(),
		ThreadID: c.T.ID(),
		Place:    c.Place,
		Class:    cl,
		Waiters:  ws,
	})
}

// MCSLock models the queue lock of Mellor-Crummey and Scott (related work
// §8): FCFS like the ticket lock, but each waiter spins on its own cache
// line, so hand-off costs one line transfer from predecessor to successor
// and contention causes no global line storms. In this simulator that makes
// it behave like a ticket lock whose hand-off latency references the
// predecessor rather than a shared counter line.
type MCSLock struct {
	cfg    *Config
	locked bool
	holder *Ctx
	queue  []*mcsWaiter
}

type mcsWaiter struct {
	c         *Ctx
	spinStart sim.Time
}

// NewMCSLock returns an MCS queue lock.
func NewMCSLock(cfg *Config) *MCSLock { return &MCSLock{cfg: cfg} }

// Name returns the figure label of the lock.
func (l *MCSLock) Name() string { return "MCS" }

// ContenderCount returns the number of queued threads.
func (l *MCSLock) ContenderCount() int { return len(l.queue) }

// Acquire appends the caller to the queue (one atomic swap) and blocks
// until its predecessor hands off.
func (l *MCSLock) Acquire(c *Ctx, _ Class) {
	if !l.locked && len(l.queue) == 0 {
		l.locked = true
		l.holder = c
		l.emit(c, l.cfg.Eng.Now())
		return
	}
	l.queue = append(l.queue, &mcsWaiter{c: c, spinStart: l.cfg.Eng.Now()})
	c.T.Park()
	if l.holder != c {
		panic("simlock: MCS lock woke a thread out of turn")
	}
}

// Release hands the lock to the queue head by writing its local flag.
func (l *MCSLock) Release(c *Ctx, _ Class) {
	if !l.locked || l.holder != c {
		panic("simlock: MCS release by non-holder")
	}
	l.locked = false
	l.holder = nil
	if len(l.queue) == 0 {
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	at := l.cfg.Eng.Now() + l.cfg.Cost.Transfer(c.Place, w.c.Place)
	l.locked = true
	l.holder = w.c
	l.cfg.Eng.At(at, func() {
		l.emit(w.c, at)
		w.c.T.Unpark(at)
	})
}

func (l *MCSLock) emit(c *Ctx, at sim.Time) {
	if l.cfg.OnGrant == nil {
		return
	}
	ws := make([]machine.Place, 0, len(l.queue))
	for _, w := range l.queue {
		ws = append(ws, w.c.Place)
	}
	l.cfg.emit(GrantInfo{At: at, ThreadID: c.T.ID(), Place: c.Place, Class: High, Waiters: ws})
}
