package simlock

import (
	"testing"
)

func TestCohortMutualExclusion(t *testing.T) {
	h := newHarness(t, KindCohort, 42)
	h.run(t, 8, 50, 100, 30, nil)
	total := 0
	for _, c := range h.counts {
		total += c
	}
	if total != 8*50 {
		t.Fatalf("completed %d acquisitions, want %d", total, 8*50)
	}
}

func TestCohortBoundedUnfairness(t *testing.T) {
	// Unlike SocketPriority, the cohort lock's batches are bounded: over
	// any window of grants, the remote socket must appear.
	h := newHarness(t, KindCohort, 7)
	h.run(t, 8, 100, 300, 1, nil)
	// Scan windows of 2*cohortBatch+2 grants: each must contain both
	// sockets once the run is warmed up.
	win := 2*cohortBatch + 2
	for i := 100; i+win < len(h.grants); i += win {
		s0, s1 := 0, 0
		for _, g := range h.grants[i : i+win] {
			if g.Place.Socket == 0 {
				s0++
			} else {
				s1++
			}
		}
		if s0 == 0 || s1 == 0 {
			t.Fatalf("window at %d served one socket only (s0=%d s1=%d)", i, s0, s1)
		}
	}
}

func TestCohortKeepsSocketAffinity(t *testing.T) {
	// The cohort lock should hand off within a socket much more often
	// than a plain ticket lock under saturation.
	affinity := func(kind Kind) float64 {
		h := newHarness(t, kind, 11)
		h.run(t, 8, 150, 300, 1, nil)
		same, n := 0, 0
		for i := 1; i < len(h.grants); i++ {
			if len(h.grants[i-1].Waiters) == 0 {
				continue
			}
			n++
			if h.grants[i].Place.SameSocket(h.grants[i-1].Place) {
				same++
			}
		}
		return float64(same) / float64(n)
	}
	co, tk := affinity(KindCohort), affinity(KindTicket)
	t.Logf("same-socket handoff: cohort %.2f ticket %.2f", co, tk)
	if co <= tk {
		t.Errorf("cohort affinity (%.2f) should exceed ticket (%.2f)", co, tk)
	}
}

func TestCohortAllThreadsComplete(t *testing.T) {
	h := newHarness(t, KindCohort, 13)
	h.run(t, 8, 25, 200, 10, nil)
	for i, c := range h.counts {
		if c != 25 {
			t.Fatalf("thread %d finished %d/25", i, c)
		}
	}
}
