package simlock

import (
	"testing"
	"testing/quick"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// harness runs nthreads simthreads that repeatedly enter a lock's critical
// section, verifying mutual exclusion, and returns per-thread acquisition
// counts and the grant trace.
type harness struct {
	eng    *sim.Engine
	lock   Lock
	topo   machine.Topology
	grants []GrantInfo
	counts []int
}

func newHarness(t *testing.T, kind Kind, seed uint64) *harness {
	t.Helper()
	h := &harness{
		eng:  sim.NewEngine(seed),
		topo: machine.Nehalem2x4(1),
	}
	cfg := &Config{
		Eng:  h.eng,
		Cost: machine.Default(),
		OnGrant: func(gi GrantInfo) {
			ws := make([]machine.Place, len(gi.Waiters))
			copy(ws, gi.Waiters)
			gi.Waiters = ws
			h.grants = append(h.grants, gi)
		},
	}
	h.lock = New(kind, cfg)
	return h
}

// run launches nthreads bound per binding, each acquiring iters times with
// the given hold/gap times and class chooser.
func (h *harness) run(t *testing.T, nthreads, iters int, hold, gap int64,
	class func(thread, iter int) Class) {
	t.Helper()
	h.counts = make([]int, nthreads)
	inCS := false
	for i := 0; i < nthreads; i++ {
		i := i
		place := h.topo.Bind(machine.Compact, 0, 0, 8, i)
		h.eng.Spawn("worker", func(th *sim.Thread) {
			c := &Ctx{T: th, Place: place}
			for k := 0; k < iters; k++ {
				cl := High
				if class != nil {
					cl = class(i, k)
				}
				h.lock.Acquire(c, cl)
				if inCS {
					t.Errorf("mutual exclusion violated by thread %d", i)
				}
				inCS = true
				th.Sleep(hold)
				inCS = false
				h.lock.Release(c, cl)
				h.counts[i]++
				th.Sleep(gap)
			}
		})
	}
	if err := h.eng.Run(); err != nil {
		t.Fatalf("%s: %v", h.lock.Name(), err)
	}
}

func TestMutualExclusionAllKinds(t *testing.T) {
	kinds := []Kind{KindMutex, KindTicket, KindPriority, KindTAS, KindMCS, KindPrioMutex, KindSocketPriority, KindCLH}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			h := newHarness(t, k, 42)
			h.run(t, 8, 50, 100, 30, nil)
			total := 0
			for _, c := range h.counts {
				total += c
			}
			if total != 8*50 {
				t.Fatalf("completed %d acquisitions, want %d", total, 8*50)
			}
		})
	}
}

func TestAllThreadsComplete(t *testing.T) {
	// Starvation must be bounded in a finite run for every kind except
	// the deliberately starvation-prone socket-priority ablation.
	for _, k := range []Kind{KindMutex, KindTicket, KindPriority, KindMCS, KindCLH} {
		t.Run(k.String(), func(t *testing.T) {
			h := newHarness(t, k, 7)
			h.run(t, 8, 20, 200, 10, nil)
			for i, c := range h.counts {
				if c != 20 {
					t.Fatalf("thread %d finished %d/20", i, c)
				}
			}
		})
	}
}

func TestTicketFIFO(t *testing.T) {
	// With a long hold time and short gaps, all other threads queue while
	// one holds: grants must then rotate round-robin (FIFO), i.e. the
	// same thread never reacquires while others wait.
	h := newHarness(t, KindTicket, 1)
	h.run(t, 8, 30, 500, 1, nil)
	for i := 1; i < len(h.grants); i++ {
		g := h.grants[i]
		if g.ThreadID == h.grants[i-1].ThreadID && len(h.grants[i-1].Waiters) > 0 {
			t.Fatalf("grant %d: thread %d reacquired while %d waiters queued",
				i, g.ThreadID, len(h.grants[i-1].Waiters))
		}
	}
}

func TestTicketFairSpread(t *testing.T) {
	h := newHarness(t, KindTicket, 3)
	h.run(t, 8, 40, 300, 20, nil)
	min, max := h.counts[0], h.counts[0]
	for _, c := range h.counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("ticket counts uneven: %v", h.counts)
	}
}

// TestMutexCoreBias verifies the paper's central observation (§4.2-4.3):
// under the futex mutex, consecutive acquisitions by the same thread (and
// same socket) are far more frequent than a fair arbitration would allow.
func TestMutexCoreBias(t *testing.T) {
	h := newHarness(t, KindMutex, 11)
	// Short release-to-reacquire gap mimics the progress-loop yield.
	h.run(t, 8, 200, 150, 25, nil)
	sameThread, sameSocket, contended := 0, 0, 0
	for i := 1; i < len(h.grants); i++ {
		prev, g := h.grants[i-1], h.grants[i]
		if len(prev.Waiters) == 0 {
			continue // uncontended hand-offs say nothing about bias
		}
		contended++
		if g.ThreadID == prev.ThreadID {
			sameThread++
		}
		if g.Place.SameSocket(prev.Place) {
			sameSocket++
		}
	}
	if contended < 100 {
		t.Fatalf("too few contended grants to judge bias: %d", contended)
	}
	pc := float64(sameThread) / float64(contended)
	ps := float64(sameSocket) / float64(contended)
	// Fair would give pc ~= 1/8 and ps ~= 0.5 with 8 threads over 2
	// sockets; the mutex must be visibly above both.
	if pc < 0.25 {
		t.Errorf("core-level bias too weak: Pc = %.3f (fair ~ 0.125)", pc)
	}
	if ps < 0.6 {
		t.Errorf("socket-level bias too weak: Ps = %.3f (fair ~ 0.5)", ps)
	}
}

// TestTicketNoBias verifies FCFS kills the same-thread reacquisition bias
// under the identical workload.
func TestTicketNoBias(t *testing.T) {
	h := newHarness(t, KindTicket, 11)
	h.run(t, 8, 200, 150, 25, nil)
	sameThread, contended := 0, 0
	for i := 1; i < len(h.grants); i++ {
		prev, g := h.grants[i-1], h.grants[i]
		if len(prev.Waiters) == 0 {
			continue
		}
		contended++
		if g.ThreadID == prev.ThreadID {
			sameThread++
		}
	}
	if contended == 0 {
		t.Fatal("no contended grants")
	}
	pc := float64(sameThread) / float64(contended)
	if pc > 0.2 {
		t.Errorf("ticket lock shows core bias: Pc = %.3f", pc)
	}
}

// TestMutexStarvation shows the unfair arbitration lets some thread fall
// far behind while the lock is monopolized, measured mid-run as the spread
// of acquisition counts after a fixed number of grants.
func TestMutexStarvationSpread(t *testing.T) {
	spread := func(kind Kind) int {
		h := newHarness(t, kind, 5)
		h.run(t, 8, 100, 150, 25, nil)
		limit := 300
		perThread := map[int]int{}
		for i, g := range h.grants {
			if i >= limit {
				break
			}
			perThread[g.ThreadID]++
		}
		min, max := 1<<30, 0
		for i := 0; i < 8; i++ {
			c := perThread[i]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max - min
	}
	if m, tk := spread(KindMutex), spread(KindTicket); m <= tk {
		t.Errorf("mutex spread %d should exceed ticket spread %d", m, tk)
	}
}

// TestPriorityHighBeatsLow: while low-priority threads churn the lock, a
// high-priority acquire must overtake queued low-priority requests.
func TestPriorityHighBeatsLow(t *testing.T) {
	eng := sim.NewEngine(9)
	topo := machine.Nehalem2x4(1)
	var grants []GrantInfo
	cfg := &Config{Eng: eng, Cost: machine.Default(), OnGrant: func(gi GrantInfo) {
		grants = append(grants, gi)
	}}
	lock := NewPriorityLock(cfg)
	// Three low-priority pollers hammer the lock.
	for i := 0; i < 3; i++ {
		place := topo.Bind(machine.Compact, 0, 0, 8, i)
		eng.Spawn("low", func(th *sim.Thread) {
			c := &Ctx{T: th, Place: place}
			for k := 0; k < 300; k++ {
				lock.Acquire(c, Low)
				th.Sleep(120)
				lock.Release(c, Low)
				th.Sleep(25)
			}
		})
	}
	// One high-priority thread arrives late and must get in quickly.
	var waited sim.Time
	hiPlace := topo.Bind(machine.Compact, 0, 0, 8, 3)
	eng.Spawn("high", func(th *sim.Thread) {
		c := &Ctx{T: th, Place: hiPlace}
		for k := 0; k < 50; k++ {
			th.Sleep(500)
			start := th.Now()
			lock.Acquire(c, High)
			waited += th.Now() - start
			th.Sleep(50)
			lock.Release(c, High)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	avg := waited / 50
	// A high acquire should wait roughly one low CS (~145ns), never a
	// full queue of them.
	if avg > 400 {
		t.Errorf("high-priority thread waited %dns on average", avg)
	}
}

// TestPriorityLowNotStarvedForever: after high traffic stops, low threads
// must complete.
func TestPriorityLowEventuallyRuns(t *testing.T) {
	h := newHarness(t, KindPriority, 13)
	h.run(t, 8, 50, 100, 30, func(thread, iter int) Class {
		if thread < 4 {
			return High
		}
		return Low
	})
	for i, c := range h.counts {
		if c != 50 {
			t.Fatalf("thread %d finished %d/50", i, c)
		}
	}
}

// TestPriorityFIFOWithinClass: among same-class threads arbitration is
// FCFS (no same-thread reacquisition while peers wait).
func TestPriorityFIFOWithinClass(t *testing.T) {
	h := newHarness(t, KindPriority, 17)
	h.run(t, 8, 30, 500, 1, nil) // all high
	for i := 1; i < len(h.grants); i++ {
		g, prev := h.grants[i], h.grants[i-1]
		if g.ThreadID == prev.ThreadID && len(prev.Waiters) > 0 {
			t.Fatalf("priority lock let thread %d reacquire past %d waiters",
				g.ThreadID, len(prev.Waiters))
		}
	}
}

// TestSocketPriorityStarvesRemoteSocket demonstrates the §7 failure mode.
func TestSocketPriorityStarvation(t *testing.T) {
	h := newHarness(t, KindSocketPriority, 21)
	h.run(t, 8, 100, 300, 1, nil)
	// Inspect the first 400 grants: socket 0 threads (0-3) should have
	// hoarded the lock relative to socket 1 under saturation.
	s0, s1 := 0, 0
	for i, g := range h.grants {
		if i >= 400 {
			break
		}
		if g.Place.Socket == 0 {
			s0++
		} else {
			s1++
		}
	}
	if s0 <= s1*2 {
		t.Errorf("expected socket-0 hoarding, got s0=%d s1=%d", s0, s1)
	}
}

// TestGrantWaiterSnapshots: waiters never include the new holder.
func TestGrantWaiterSnapshots(t *testing.T) {
	for _, k := range []Kind{KindMutex, KindTicket, KindPriority, KindMCS, KindCLH} {
		h := newHarness(t, k, 23)
		h.run(t, 4, 30, 200, 10, nil)
		for _, g := range h.grants {
			if len(g.Waiters) > 3 {
				t.Fatalf("%s: %d waiters with 4 threads", k, len(g.Waiters))
			}
		}
	}
}

// TestLockDeterminism: identical seeds give identical grant traces.
func TestLockDeterminism(t *testing.T) {
	trace := func() []int {
		h := newHarness(t, KindMutex, 31)
		h.run(t, 8, 50, 120, 20, nil)
		ids := make([]int, len(h.grants))
		for i, g := range h.grants {
			ids[i] = g.ThreadID
		}
		return ids
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// TestRandomizedSchedulesProperty: for random thread counts, hold times and
// seeds, every kind preserves mutual exclusion and completes.
func TestRandomizedSchedulesProperty(t *testing.T) {
	kinds := []Kind{KindMutex, KindTicket, KindPriority, KindMCS, KindTAS}
	f := func(seed uint64, nRaw, holdRaw, gapRaw uint8) bool {
		n := 1 + int(nRaw)%8
		hold := 10 + int64(holdRaw)%500
		gap := 1 + int64(gapRaw)%200
		for _, k := range kinds {
			h := newHarness(t, k, seed)
			h.run(t, n, 10, hold, gap, nil)
			total := 0
			for _, c := range h.counts {
				total += c
			}
			if total != n*10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindMutex: "Mutex", KindTicket: "Ticket", KindPriority: "Priority",
		KindTAS: "TAS", KindMCS: "MCS", KindPrioMutex: "PrioMutex",
		KindSocketPriority: "SocketPriority", KindCLH: "CLH",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if High.String() != "high" || Low.String() != "low" {
		t.Fatal("class names changed")
	}
}

// TestTicketBoundedWait checks the ticket lock's theoretical guarantee:
// with N threads and hold time H, no acquisition waits longer than about
// N*(H + handoff). The mutex offers no such bound — its maximum wait under
// the same load is far larger (futex round trips during starvation).
func TestTicketBoundedWait(t *testing.T) {
	maxWait := func(kind Kind) sim.Time {
		eng := sim.NewEngine(77)
		topo := machine.Nehalem2x4(1)
		cfg := &Config{Eng: eng, Cost: machine.Default()}
		lock := New(kind, cfg)
		var worst sim.Time
		const hold, gap, iters, threads = 150, 25, 150, 8
		for i := 0; i < threads; i++ {
			place := topo.Bind(machine.Compact, 0, 0, 8, i)
			eng.Spawn("w", func(th *sim.Thread) {
				c := &Ctx{T: th, Place: place}
				for k := 0; k < iters; k++ {
					start := th.Now()
					lock.Acquire(c, High)
					if w := th.Now() - start; w > worst {
						worst = w
					}
					th.Sleep(hold)
					lock.Release(c, High)
					th.Sleep(gap)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	// Bound: 8 threads * (150 hold + ~130 handoff/migration) with slack.
	tk := maxWait(KindTicket)
	if tk > 8*(150+300) {
		t.Errorf("ticket max wait %dns exceeds FIFO bound", tk)
	}
	m := maxWait(KindMutex)
	t.Logf("max wait: ticket %dns, mutex %dns", tk, m)
	if m < 2*tk {
		t.Errorf("mutex max wait (%d) should far exceed ticket's (%d)", m, tk)
	}
}
