package simlock

import (
	"fmt"

	"mpicontend/internal/machine"
	"mpicontend/internal/sim"
)

// mutexWaiter tracks one thread contending for a FutexMutex.
type mutexWaiter struct {
	c         *Ctx
	spinStart sim.Time   // when the current user-space spin phase began
	sleepTmr  *sim.Timer // pending spinner->sleeper transition
	sleeping  bool
}

// FutexMutex models the default NPTL pthread mutex (paper §2.2):
//
//   - acquisition first races a compare-and-swap in user space;
//   - a thread that fails keeps spinning briefly, then sleeps in the kernel
//     (FUTEX_WAIT), joining a FIFO futex queue;
//   - the releaser wakes at most one sleeper (FUTEX_WAKE); the woken thread
//     must re-race the CAS in user space against any spinning threads.
//
// The user-space race is decided by modelled cache physics: each contender
// observes the released lock line after the line-transfer latency from the
// releaser's core, aligned to its own spin-check phase, plus a CAS-storm
// penalty proportional to the number of racing contenders and a small
// seeded jitter. This is the "fastest-thread-first" arbitration whose
// NUMA-induced bias the paper analyses in §4.
type FutexMutex struct {
	cfg    *Config
	locked bool
	holder *Ctx
	line   machine.Place // current home of the lock cache line
	hasOwn bool          // line has been written at least once

	spinners []*mutexWaiter
	sleepers []*mutexWaiter // futex FIFO queue

	grantTmr *sim.Timer
	grantTo  *mutexWaiter
	grantAt  sim.Time

	// spinForever disables the futex path entirely, turning the model
	// into a plain test-and-set spinlock (used by TASLock).
	spinForever bool
	name        string
}

// NewFutexMutex returns the baseline pthread-mutex model.
func NewFutexMutex(cfg *Config) *FutexMutex {
	return &FutexMutex{cfg: cfg, name: "Mutex"}
}

// NewTASLock returns a test-and-set spinlock: the same CAS race as the
// mutex but without the futex sleep path (related work §8).
func NewTASLock(cfg *Config) *FutexMutex {
	return &FutexMutex{cfg: cfg, spinForever: true, name: "TAS"}
}

// Name returns the figure label of the lock.
func (m *FutexMutex) Name() string { return m.name }

// Holder returns the current owner context, or nil when free.
func (m *FutexMutex) Holder() *Ctx { return m.holder }

// TransferOwnership reassigns the held lock to ctx so that ctx may release
// it. Used by lock compositions where logical ownership migrates between
// threads (e.g. the blocking lock of a priority scheme).
func (m *FutexMutex) TransferOwnership(to *Ctx) {
	if !m.locked {
		panic("simlock: ownership transfer of unlocked mutex")
	}
	m.holder = to
}

// ContenderCount returns the number of threads currently waiting.
func (m *FutexMutex) ContenderCount() int { return len(m.spinners) + len(m.sleepers) }

// casArrival computes when ctx's compare-and-swap would land if issued in
// reaction to the line being (or becoming) visible at base time.
func (m *FutexMutex) casArrival(base sim.Time, c *Ctx) sim.Time {
	eng := m.cfg.Eng
	tr := int64(0)
	if m.hasOwn {
		tr = m.cfg.Cost.Transfer(m.line, c.Place)
	}
	a := base + tr
	if n := len(m.spinners); n > 1 {
		a += m.cfg.Cost.CASPenalty * int64(n-1)
	}
	if j := m.cfg.Cost.CASJitter; j > 0 {
		a += eng.Rand().Int63n(j)
	}
	return a
}

// alignSpin rounds t up to w's next spin-check instant.
func (m *FutexMutex) alignSpin(t sim.Time, w *mutexWaiter) sim.Time {
	p := m.cfg.Cost.SpinCheckPeriod
	if p <= 0 || t <= w.spinStart {
		return t
	}
	k := (t - w.spinStart + p - 1) / p
	return w.spinStart + k*p
}

// Acquire blocks until the calling thread owns the mutex. The class is
// ignored: pthread mutexes have no priority support.
func (m *FutexMutex) Acquire(c *Ctx, _ Class) {
	eng := m.cfg.Eng
	now := eng.Now()
	w := &mutexWaiter{c: c, spinStart: now}

	if !m.locked {
		arrival := m.casArrival(now, c)
		switch {
		case m.grantTo == nil:
			m.scheduleGrant(w, arrival)
		case arrival < m.grantAt:
			// This thread's CAS lands before the currently chosen
			// winner's: it steals the lock (fastest-thread-first).
			loser := m.grantTo
			m.grantTmr.Cancel()
			m.grantTo = nil
			m.readdSpinner(loser)
			m.scheduleGrant(w, arrival)
		default:
			m.addSpinner(w, now)
		}
	} else {
		m.addSpinner(w, now)
	}
	c.T.Park()
	// Woken only by grant(); we now own the lock.
	if m.holder != c {
		panic("simlock: mutex woke a thread it did not grant")
	}
}

// addSpinner registers w as a user-space spinner starting at time start and
// arms its futex-sleep transition.
func (m *FutexMutex) addSpinner(w *mutexWaiter, start sim.Time) {
	w.spinStart = start
	w.sleeping = false
	m.spinners = append(m.spinners, w)
	if m.spinForever {
		return
	}
	deadline := start + m.cfg.Cost.MutexSpinBudget
	w.sleepTmr = m.cfg.Eng.AtTimer(deadline, func() {
		w.sleepTmr = nil
		m.toSleep(w)
	})
}

// readdSpinner returns an election loser to the spinner set without
// disturbing its true spin phase: losing a CAS race does not delay the
// thread's next attempt, so its spinStart (wake time) must be preserved.
func (m *FutexMutex) readdSpinner(w *mutexWaiter) {
	m.spinners = append(m.spinners, w)
	if m.spinForever || w.sleepTmr != nil {
		return
	}
	deadline := w.spinStart + m.cfg.Cost.MutexSpinBudget
	if now := m.cfg.Eng.Now(); deadline < now {
		deadline = now
	}
	w.sleepTmr = m.cfg.Eng.AtTimer(deadline, func() {
		w.sleepTmr = nil
		m.toSleep(w)
	})
}

// toSleep moves a still-spinning waiter into the kernel futex queue.
func (m *FutexMutex) toSleep(w *mutexWaiter) {
	for i, s := range m.spinners {
		if s == w {
			m.spinners = append(m.spinners[:i], m.spinners[i+1:]...)
			w.sleeping = true
			m.sleepers = append(m.sleepers, w)
			return
		}
	}
	// Not a spinner any more (granted or already asleep): ignore.
}

// scheduleGrant elects w to own the lock at time at.
func (m *FutexMutex) scheduleGrant(w *mutexWaiter, at sim.Time) {
	m.grantTo = w
	m.grantAt = at
	m.grantTmr = m.cfg.Eng.AtTimer(at, func() { m.grant(w, at) })
}

// grant finalizes ownership transfer to w.
func (m *FutexMutex) grant(w *mutexWaiter, at sim.Time) {
	if m.grantTo != w {
		return // stale event (winner was re-elected); ignore
	}
	m.grantTo = nil
	m.grantTmr = nil
	if w.sleepTmr != nil {
		w.sleepTmr.Cancel()
		w.sleepTmr = nil
	}
	m.locked = true
	m.holder = w.c
	m.line = w.c.Place
	m.hasOwn = true
	if m.cfg.OnGrant != nil {
		m.cfg.emit(GrantInfo{
			At:       at,
			ThreadID: w.c.T.ID(),
			Place:    w.c.Place,
			Class:    High,
			Waiters:  m.waiterPlaces(),
		})
	}
	w.c.T.Unpark(at)
}

// waiterPlaces snapshots the placements of all still-waiting threads.
func (m *FutexMutex) waiterPlaces() []machine.Place {
	ps := make([]machine.Place, 0, len(m.spinners)+len(m.sleepers))
	for _, s := range m.spinners {
		ps = append(ps, s.c.Place)
	}
	for _, s := range m.sleepers {
		ps = append(ps, s.c.Place)
	}
	return ps
}

// Release frees the mutex, triggering the user-space CAS race among
// spinners and a FUTEX_WAKE of the oldest sleeper.
func (m *FutexMutex) Release(c *Ctx, _ Class) {
	if !m.locked || m.holder != c {
		panic(fmt.Sprintf("simlock: release of %s by non-holder %q", m.name, c.T.Name()))
	}
	eng := m.cfg.Eng
	now := eng.Now()
	m.locked = false
	m.holder = nil
	m.line = c.Place
	m.hasOwn = true

	// FUTEX_WAKE: the oldest sleeper re-enters user space after the
	// kernel wake-up latency and becomes a spinner again.
	var woken *mutexWaiter
	if len(m.sleepers) > 0 {
		woken = m.sleepers[0]
		m.sleepers = m.sleepers[1:]
		wakeAt := now + m.cfg.Cost.FutexWake
		if j := m.cfg.Cost.FutexWakeJitter; j > 0 {
			wakeAt += eng.Rand().Int63n(j + 1)
		}
		m.addSpinner(woken, wakeAt)
	}

	if len(m.spinners) == 0 {
		return // lock stays free; next Acquire takes it directly
	}

	// CAS race: each spinner observes the release after the line
	// transfer, at its next spin check; the earliest CAS wins. A thread
	// still in kernel-wake transit (spinStart in the future) cannot CAS
	// before it reaches user space.
	var best *mutexWaiter
	var bestAt sim.Time
	for _, w := range m.spinners {
		base := now
		if w.spinStart > base {
			base = w.spinStart
		}
		observe := base + m.cfg.Cost.Transfer(m.line, w.c.Place)
		a := m.alignSpin(observe, w)
		if n := len(m.spinners); n > 1 {
			a += m.cfg.Cost.CASPenalty * int64(n-1)
		}
		if j := m.cfg.Cost.CASJitter; j > 0 {
			a += m.cfg.Eng.Rand().Int63n(j)
		}
		if best == nil || a < bestAt {
			best, bestAt = w, a
		}
	}
	m.removeSpinner(best)
	m.scheduleGrant(best, bestAt)

	if woken != nil && m.cfg.Cost.FutexWakeSyscall > 0 {
		// The releaser executes the FUTEX_WAKE syscall after the lock
		// word is already free: stealers may race in meanwhile, but the
		// releaser itself is stuck here before its next user-space work.
		c.T.Sleep(m.cfg.Cost.FutexWakeSyscall)
	}
}

func (m *FutexMutex) removeSpinner(w *mutexWaiter) {
	for i, s := range m.spinners {
		if s == w {
			m.spinners = append(m.spinners[:i], m.spinners[i+1:]...)
			return
		}
	}
}
