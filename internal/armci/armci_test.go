package armci

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
)

func testWorld(t *testing.T) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Config{
		Topo:         machine.Nehalem2x4(2),
		Lock:         simlock.KindTicket,
		ProcsPerNode: 2,
		Seed:         71,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBlockingPutGet(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 64)
	for r := 1; r < 4; r++ {
		w.SpawnAsyncProgress(r)
	}
	w.Spawn(0, "client", func(th *mpi.Thread) {
		vals := []float64{1.5, 2.5, 3.5}
		rt.Put(th, 2, 10, vals)
		got := rt.Get(th, 2, 10, 3)
		for i, v := range vals {
			if got[i] != v {
				t.Errorf("get[%d] = %v, want %v", i, got[i], v)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Local(2)[10] != 1.5 {
		t.Fatal("put not visible in target window")
	}
}

func TestAccumulate(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 8)
	w.SpawnAsyncProgress(3)
	w.Spawn(0, "client", func(th *mpi.Thread) {
		for i := 0; i < 4; i++ {
			rt.Acc(th, 3, 0, []float64{2, 5})
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Local(3)[0] != 8 || rt.Local(3)[1] != 20 {
		t.Fatalf("acc result %v %v", rt.Local(3)[0], rt.Local(3)[1])
	}
}

func TestNonblockingFence(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 32)
	for r := 1; r < 4; r++ {
		w.SpawnAsyncProgress(r)
	}
	w.Spawn(0, "client", func(th *mpi.Thread) {
		var hs []*Handle
		for tgt := 1; tgt < 4; tgt++ {
			hs = append(hs, rt.NbPut(th, tgt, 0, []float64{float64(tgt)}))
		}
		rt.Fence(th, hs)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for tgt := 1; tgt < 4; tgt++ {
		if rt.Local(tgt)[0] != float64(tgt) {
			t.Fatalf("target %d window = %v", tgt, rt.Local(tgt)[0])
		}
	}
}

func TestNbGetViaTest(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 8)
	rt.Local(1)[3] = 42
	w.SpawnAsyncProgress(1)
	w.Spawn(0, "client", func(th *mpi.Thread) {
		h := rt.NbGet(th, 1, 3, 1)
		for {
			if d, ok := rt.Test(th, h); ok {
				if d[0] != 42 {
					t.Errorf("got %v", d[0])
				}
				return
			}
			th.S.Sleep(200)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 4)
	order := make([]int64, 4)
	for r := 0; r < 4; r++ {
		r := r
		w.Spawn(r, "p", func(th *mpi.Thread) {
			th.S.Sleep(int64(r) * 10_000)
			rt.Barrier(th)
			order[r] = th.S.Now()
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if order[r] < 30_000 {
			t.Fatalf("rank %d left barrier at %d, before last arrival", r, order[r])
		}
	}
}

func TestBoundsChecked(t *testing.T) {
	w := testWorld(t)
	rt := Init(w, 8)
	w.Spawn(0, "client", func(th *mpi.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds put not rejected")
			}
		}()
		rt.Put(th, 1, 6, []float64{1, 2, 3})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
