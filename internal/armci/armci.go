// Package armci implements the Aggregate Remote Memory Copy Interface on
// top of the simulated MPI runtime's one-sided operations, mirroring
// ARMCI-MPI (paper §6.1.2, refs [10, 24]): the paper's Fig. 9 experiments
// drive this layer, not raw MPI_Put/Get. The subset implemented is the one
// those experiments (and NWChem-style Global Arrays usage) exercise:
// collective memory allocation, blocking and nonblocking contiguous
// put/get/accumulate, fences, and a barrier.
//
// armci is part of the deterministic core (docs/ARCHITECTURE.md).
package armci

import (
	"fmt"

	"mpicontend/internal/mpi"
)

// Runtime is an ARMCI instance over an MPI world: one exposure window of
// float64 elements per process.
type Runtime struct {
	w    *mpi.World
	comm *mpi.Comm
	win  *mpi.Win
	size int64
}

// Init creates the ARMCI runtime with elems float64 slots of remotely
// accessible memory per process (the ARMCI_Malloc step, collapsed to one
// collective allocation as ARMCI-MPI does with MPI_Win_allocate).
func Init(w *mpi.World, elems int64) *Runtime {
	return &Runtime{w: w, comm: w.Comm(), win: w.NewWin(elems), size: elems}
}

// Local returns rank's exposure buffer (the pointer ARMCI_Malloc would
// hand back).
func (rt *Runtime) Local(rank int) []float64 { return rt.win.Buffer(rank) }

// Handle tracks a nonblocking ARMCI operation.
type Handle struct {
	req *mpi.Request
}

// check validates a transfer against the window bounds.
func (rt *Runtime) check(target int, offset, n int64) {
	if target < 0 || target >= rt.w.NumProcs() {
		panic(fmt.Sprintf("armci: target %d out of range", target))
	}
	if offset < 0 || offset+n > rt.size {
		panic(fmt.Sprintf("armci: transfer [%d,%d) exceeds window of %d elems",
			offset, offset+n, rt.size))
	}
}

// NbPut starts a nonblocking contiguous put of vals into target's window.
func (rt *Runtime) NbPut(th *mpi.Thread, target int, offset int64, vals []float64) *Handle {
	rt.check(target, offset, int64(len(vals)))
	return &Handle{req: th.Put(rt.win, target, offset, vals)}
}

// NbGet starts a nonblocking contiguous get of n elements from target.
func (rt *Runtime) NbGet(th *mpi.Thread, target int, offset, n int64) *Handle {
	rt.check(target, offset, n)
	return &Handle{req: th.Get(rt.win, target, offset, n)}
}

// NbAcc starts a nonblocking accumulate (MPI_SUM) of vals into target.
func (rt *Runtime) NbAcc(th *mpi.Thread, target int, offset int64, vals []float64) *Handle {
	rt.check(target, offset, int64(len(vals)))
	return &Handle{req: th.Accumulate(rt.win, target, offset, vals)}
}

// Wait completes a nonblocking operation. For gets it returns the fetched
// data; for puts/accumulates it returns nil.
func (rt *Runtime) Wait(th *mpi.Thread, h *Handle) []float64 {
	th.Wait(h.req) //simcheck:allow errdrop ARMCI_Wait returns void; errors surface through the fatal handler
	if d, ok := h.req.Data().([]float64); ok {
		return d
	}
	return nil
}

// Test polls a nonblocking operation; like Wait it yields get data on
// completion.
func (rt *Runtime) Test(th *mpi.Thread, h *Handle) ([]float64, bool) {
	if !th.Test(h.req) {
		return nil, false
	}
	if d, ok := h.req.Data().([]float64); ok {
		return d, true
	}
	return nil, true
}

// Put is the blocking contiguous put: it returns once the transfer is
// complete at the target (ARMCI's location-consistent put followed by the
// implicit fence the Fig. 9 benchmark relies on).
func (rt *Runtime) Put(th *mpi.Thread, target int, offset int64, vals []float64) {
	rt.Wait(th, rt.NbPut(th, target, offset, vals))
}

// Get is the blocking contiguous get.
func (rt *Runtime) Get(th *mpi.Thread, target int, offset, n int64) []float64 {
	return rt.Wait(th, rt.NbGet(th, target, offset, n))
}

// Acc is the blocking contiguous accumulate.
func (rt *Runtime) Acc(th *mpi.Thread, target int, offset int64, vals []float64) {
	rt.Wait(th, rt.NbAcc(th, target, offset, vals))
}

// Fence completes all outstanding operations this process issued to the
// target. With the blocking API above, operations complete eagerly; Fence
// exists for the nonblocking path: pass the handles still in flight.
func (rt *Runtime) Fence(th *mpi.Thread, hs []*Handle) {
	rs := make([]*mpi.Request, 0, len(hs))
	for _, h := range hs {
		if h != nil && !h.req.Freed() {
			rs = append(rs, h.req)
		}
	}
	th.Flush(rt.win, rs)
}

// Barrier synchronizes all processes (ARMCI_Barrier). One thread per
// process must call it.
func (rt *Runtime) Barrier(th *mpi.Thread) { th.Barrier(rt.comm) }
