package workloads

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
)

func tp(lock simlock.Kind, threads int, bytes int64) ThroughputParams {
	return ThroughputParams{
		Lock: lock, Threads: threads, MsgBytes: bytes,
		Windows: 6, TraceRank: -1, Binding: machine.Compact,
	}
}

func runTP(t *testing.T, p ThroughputParams) ThroughputResult {
	t.Helper()
	r, err := Throughput(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages == 0 || r.SimNs == 0 || r.RateMsgsPerSec <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	return r
}

func TestThroughputRunsAllLocks(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority} {
		r := runTP(t, tp(k, 4, 64))
		t.Logf("%v: %.0f msgs/s", k, r.RateMsgsPerSec)
	}
}

func TestThroughputSingleThreadBaseline(t *testing.T) {
	r := runTP(t, tp(simlock.KindNone, 1, 1))
	// Paper's order of magnitude: ~1-2 M msgs/s for tiny messages.
	if r.RateMsgsPerSec < 2e5 || r.RateMsgsPerSec > 2e7 {
		t.Errorf("single-thread small-message rate %.0f/s outside plausible envelope", r.RateMsgsPerSec)
	}
}

// TestMutexDegradesWithThreads reproduces Fig. 2a's headline: message rate
// drops as threads are added under the mutex.
func TestMutexDegradesWithThreads(t *testing.T) {
	r1 := runTP(t, tp(simlock.KindMutex, 1, 1))
	r8 := runTP(t, tp(simlock.KindMutex, 8, 1))
	if r8.RateMsgsPerSec >= r1.RateMsgsPerSec {
		t.Errorf("mutex rate should degrade: 1t %.0f vs 8t %.0f",
			r1.RateMsgsPerSec, r8.RateMsgsPerSec)
	}
}

// TestTicketBeatsMutexSmallMessages reproduces Fig. 8a's ordering at small
// sizes: ticket and priority outperform mutex with 8 threads.
func TestTicketBeatsMutexSmallMessages(t *testing.T) {
	m := runTP(t, tp(simlock.KindMutex, 8, 1))
	tk := runTP(t, tp(simlock.KindTicket, 8, 1))
	pr := runTP(t, tp(simlock.KindPriority, 8, 1))
	t.Logf("mutex %.0f ticket %.0f priority %.0f", m.RateMsgsPerSec, tk.RateMsgsPerSec, pr.RateMsgsPerSec)
	if tk.RateMsgsPerSec <= m.RateMsgsPerSec {
		t.Errorf("ticket (%.0f) should beat mutex (%.0f)", tk.RateMsgsPerSec, m.RateMsgsPerSec)
	}
	if pr.RateMsgsPerSec <= m.RateMsgsPerSec {
		t.Errorf("priority (%.0f) should beat mutex (%.0f)", pr.RateMsgsPerSec, m.RateMsgsPerSec)
	}
}

// TestLargeMessagesConverge: at 1MB the wire dominates and lock choice is
// negligible (paper: differences vanish past ~32KB).
func TestLargeMessagesConverge(t *testing.T) {
	m := runTP(t, ThroughputParams{Lock: simlock.KindMutex, Threads: 8,
		MsgBytes: 1 << 20, Windows: 2, Window: 16, TraceRank: -1})
	tk := runTP(t, ThroughputParams{Lock: simlock.KindTicket, Threads: 8,
		MsgBytes: 1 << 20, Windows: 2, Window: 16, TraceRank: -1})
	ratio := tk.RateMsgsPerSec / m.RateMsgsPerSec
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("1MB rates should converge; ticket/mutex = %.2f", ratio)
	}
}

// TestBiasFactors reproduces Fig. 3a: mutex biased at core (~2x) and socket
// (~1.25x) level; ticket ~1 or below.
func TestBiasFactors(t *testing.T) {
	p := tp(simlock.KindMutex, 8, 64)
	p.TraceRank = 1 // receiver rank
	m := runTP(t, p)
	if m.FairSamples < 50 {
		t.Fatalf("too few fairness samples: %d", m.FairSamples)
	}
	t.Logf("mutex bias core=%.2f socket=%.2f (samples %d)", m.BiasCore, m.BiasSocket, m.FairSamples)
	if m.BiasCore < 1.3 {
		t.Errorf("mutex core bias %.2f, want > 1.3", m.BiasCore)
	}
	if m.BiasSocket < 1.05 {
		t.Errorf("mutex socket bias %.2f, want > 1.05", m.BiasSocket)
	}

	p.Lock = simlock.KindTicket
	tk := runTP(t, p)
	t.Logf("ticket bias core=%.2f socket=%.2f (samples %d)", tk.BiasCore, tk.BiasSocket, tk.FairSamples)
	if tk.BiasCore > 1.1 {
		t.Errorf("ticket core bias %.2f, want ~<=1", tk.BiasCore)
	}
}

// TestDanglingRequests reproduces Fig. 5a: mutex piles up dangling
// requests; ticket keeps them low.
func TestDanglingRequests(t *testing.T) {
	pm := tp(simlock.KindMutex, 8, 64)
	pm.TraceRank = 1
	m := runTP(t, pm)
	pt := tp(simlock.KindTicket, 8, 64)
	pt.TraceRank = 1
	tk := runTP(t, pt)
	t.Logf("dangling avg: mutex %.1f (max %d) ticket %.1f (max %d)",
		m.DanglingAvg, m.DanglingMax, tk.DanglingAvg, tk.DanglingMax)
	if m.DanglingAvg <= tk.DanglingAvg {
		t.Errorf("mutex dangling (%.1f) should exceed ticket (%.1f)",
			m.DanglingAvg, tk.DanglingAvg)
	}
}

// TestScatterWorseThanCompact reproduces Fig. 2b.
func TestScatterWorseThanCompact(t *testing.T) {
	pc := tp(simlock.KindMutex, 4, 1)
	pc.Binding = machine.Compact
	c := runTP(t, pc)
	ps := tp(simlock.KindMutex, 4, 1)
	ps.Binding = machine.Scatter
	s := runTP(t, ps)
	t.Logf("compact %.0f scatter %.0f", c.RateMsgsPerSec, s.RateMsgsPerSec)
	if s.RateMsgsPerSec >= c.RateMsgsPerSec {
		t.Errorf("scatter (%.0f) should be slower than compact (%.0f)",
			s.RateMsgsPerSec, c.RateMsgsPerSec)
	}
}

func TestLatencyBasics(t *testing.T) {
	r, err := Latency(LatencyParams{Lock: simlock.KindNone, Threads: 1, MsgBytes: 1, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	// One-way tiny-message latency should be in the low microseconds.
	if r.AvgOneWayUs < 0.5 || r.AvgOneWayUs > 20 {
		t.Errorf("single-thread latency %.2fus outside envelope", r.AvgOneWayUs)
	}
}

// TestLatencyTicketBeatsMutex reproduces Fig. 8b: with 8 threads the ticket
// lock cuts latency versus mutex.
func TestLatencyTicketBeatsMutex(t *testing.T) {
	m, err := Latency(LatencyParams{Lock: simlock.KindMutex, Threads: 8, MsgBytes: 1, Iters: 30})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := Latency(LatencyParams{Lock: simlock.KindTicket, Threads: 8, MsgBytes: 1, Iters: 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("latency mutex %.2fus ticket %.2fus", m.AvgOneWayUs, tk.AvgOneWayUs)
	if tk.AvgOneWayUs >= m.AvgOneWayUs {
		t.Errorf("ticket latency (%.2f) should beat mutex (%.2f)", tk.AvgOneWayUs, m.AvgOneWayUs)
	}
}

func TestN2NRuns(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority} {
		r, err := N2N(N2NParams{Lock: k, Procs: 4, Threads: 4, MsgBytes: 64, Windows: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r.Messages == 0 || r.RateMsgsPerSec <= 0 {
			t.Fatalf("degenerate n2n result: %+v", r)
		}
		t.Logf("%v: %.0f msgs/s, unexpected %d", k, r.RateMsgsPerSec, r.UnexpectedHits)
	}
}

// TestN2NPriorityCompetitive checks the Fig. 6b comparison. Known
// deviation (documented in EXPERIMENTS.md): the paper reports priority
// +33% over ticket below 32 KB via avoided unexpected-queue detours; in
// this simulator the benchmark's self-clocked windows keep the posted-
// receive pools full, so that mechanism does not engage and priority lands
// within ~20% below ticket (its two extra atomic line transfers per entry).
// We assert the reproducible part: priority stays competitive with ticket
// and both clearly beat the mutex under N2N load.
func TestN2NPriorityCompetitive(t *testing.T) {
	run := func(k simlock.Kind) N2NResult {
		r, err := N2N(N2NParams{Lock: k, Procs: 4, Threads: 8, MsgBytes: 64, Windows: 6})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	tk, pr, mx := run(simlock.KindTicket), run(simlock.KindPriority), run(simlock.KindMutex)
	t.Logf("n2n ticket %.0f priority %.0f mutex %.0f (unexpected: t=%d p=%d m=%d)",
		tk.RateMsgsPerSec, pr.RateMsgsPerSec, mx.RateMsgsPerSec,
		tk.UnexpectedHits, pr.UnexpectedHits, mx.UnexpectedHits)
	if pr.RateMsgsPerSec < tk.RateMsgsPerSec*0.75 {
		t.Errorf("priority (%.0f) fell too far below ticket (%.0f) on N2N",
			pr.RateMsgsPerSec, tk.RateMsgsPerSec)
	}
	if pr.RateMsgsPerSec <= mx.RateMsgsPerSec {
		t.Errorf("priority (%.0f) should beat mutex (%.0f) on N2N",
			pr.RateMsgsPerSec, mx.RateMsgsPerSec)
	}
}

func TestRMARunsAllOps(t *testing.T) {
	for _, op := range []RMAOp{OpPut, OpGet, OpAcc} {
		r, err := RMA(RMAParams{Lock: simlock.KindTicket, Op: op, ElemBytes: 64, Ops: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r.RateElemPerSec <= 0 {
			t.Fatalf("%v: degenerate result %+v", op, r)
		}
	}
}

// TestRMATicketBeatsMutex reproduces Fig. 9: with async progress threads,
// fair arbitration wins big.
func TestRMATicketBeatsMutex(t *testing.T) {
	m, err := RMA(RMAParams{Lock: simlock.KindMutex, Op: OpPut, ElemBytes: 64, Ops: 8})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := RMA(RMAParams{Lock: simlock.KindTicket, Op: OpPut, ElemBytes: 64, Ops: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rma put: mutex %.0f ticket %.0f elem/s (ratio %.1fx)",
		m.RateElemPerSec, tk.RateElemPerSec, tk.RateElemPerSec/m.RateElemPerSec)
	if tk.RateElemPerSec <= m.RateElemPerSec {
		t.Errorf("ticket RMA (%.0f) should beat mutex (%.0f)", tk.RateElemPerSec, m.RateElemPerSec)
	}
}

func TestRMAOpString(t *testing.T) {
	if OpPut.String() != "Put" || OpGet.String() != "Get" || OpAcc.String() != "Accumulate" {
		t.Fatal("op names changed")
	}
}

// TestN2NPartitioned runs the partitioned variant across the lock kinds
// and checks the aggregation accounting: same message volume as the batch
// shape, but one trigger (and one aggregated transfer) per peer per window
// with every other Pready lock-free.
func TestN2NPartitioned(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket, simlock.KindPriority, simlock.KindCohort} {
		p := N2NParams{
			Lock: k, Procs: 3, Threads: 4, MsgBytes: 64,
			Window: 8, Windows: 3, PerThreadTags: true, Partitioned: true,
		}
		r, err := N2N(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Messages == 0 || r.SimNs == 0 {
			t.Fatalf("%v: degenerate result: %+v", k, r)
		}
		p = p.withDefaults()
		peers := p.Procs - 1
		parts := p.Window / peers
		wantAgg := int64(p.Procs) * int64(p.Threads) * int64(peers) * int64(p.Windows)
		if r.Part.Aggregates != wantAgg {
			t.Errorf("%v: %d aggregates, want %d (one per peer per window per thread)", k, r.Part.Aggregates, wantAgg)
		}
		if r.Part.PreadyTrigger != wantAgg {
			t.Errorf("%v: %d triggers, want %d", k, r.Part.PreadyTrigger, wantAgg)
		}
		if want := wantAgg * int64(parts-1); r.Part.PreadyFast != want {
			t.Errorf("%v: %d lock-free Preadys, want %d", k, r.Part.PreadyFast, want)
		}
		if r.Part.Partitions != r.Messages {
			t.Errorf("%v: %d partitions moved, want the full message volume %d", k, r.Part.Partitions, r.Messages)
		}
	}
}
