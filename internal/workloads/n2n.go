package workloads

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/mpi/vci"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// N2NMode selects how each thread structures its message stream.
type N2NMode int

const (
	// N2NBatch posts a window of sends, then a window of receives, and
	// completes them with Waitall — the structure of the paper's
	// benchmark, which derives from the windowed throughput benchmark.
	N2NBatch N2NMode = iota
	// N2NStream keeps a sliding window: wait for the oldest request,
	// re-issue its replacement (fully self-clocked continuous stream).
	N2NStream
	// N2NFreeRun replenishes sends on send completion and receives on
	// receive completion, independently.
	N2NFreeRun
)

// String names the mode.
func (m N2NMode) String() string {
	switch m {
	case N2NBatch:
		return "batch"
	case N2NStream:
		return "stream"
	default:
		return "freerun"
	}
}

// N2NParams configures the all-to-all streaming benchmark of §5.2: every
// process runs a team of threads, each streaming windows of messages to and
// from all other processes. Unlike the point-to-point benchmark, a thread's
// receive can only match messages from the specific peer it posted for, so
// late posting (a starving main path) sends traffic through the unexpected
// queue and delays matching — the case the priority lock targets.
type N2NParams struct {
	Lock    simlock.Kind
	Binding machine.Binding
	// Procs is the number of processes (paper: 4), one per node.
	Procs    int
	Threads  int
	MsgBytes int64
	// Window is the number of send (and receive) requests per thread per
	// cycle; rounded up to a multiple of the peer count.
	Window  int
	Windows int
	Seed    uint64
	// Mode selects the streaming structure (default N2NBatch, the
	// paper's shape).
	Mode N2NMode
	// PerThreadTags pairs thread t of each rank with thread t of every
	// peer via tags, making match pools per-thread (shallow) instead of
	// pooled per-process.
	PerThreadTags bool
	// Partitioned replaces each thread's per-message eager sends with
	// MPI-4 partitioned channels: one persistent Psend/Precv pair per
	// peer, Window/peers partitions per window, each Pready a lock-free
	// bitmap update, and a single aggregated transfer per (peer, window)
	// — so the send path acquires the runtime lock once per aggregate
	// instead of once per message. Uses the batch shape regardless of
	// Mode.
	Partitioned bool
	// VCIs shards each proc's runtime into this many virtual communication
	// interfaces (0/1 = the unsharded byte-identical runtime); VCIPolicy
	// picks the operation→VCI mapping. With PerThreadTags and the
	// per-tag-hash policy the per-thread streams land on hashed VCIs
	// (subject to hash collisions); under the Explicit policy the
	// benchmark instead dups one communicator per thread during setup and
	// pins thread t's comm to VCI t%VCIs — the per-thread-communicator
	// pattern the VCI literature recommends, giving a collision-free,
	// perfectly balanced mapping at every shard count.
	VCIs      int
	VCIPolicy vci.Policy
	// Progress selects who drives the progress engine (docs/PROGRESS.md):
	// polling (default, the paper's poll-from-Wait shape), strong
	// (per-shard progress daemons), or continuation (daemons plus
	// completion-queue Waitall). Non-polling modes require the default
	// ThreadMultiple/GranGlobal configuration this benchmark uses.
	Progress mpi.ProgressMode
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
	// Tel attaches the telemetry plane (nil = disabled, zero overhead).
	Tel *telemetry.Recorder

	// onGrant is an extra per-rank grant observer for white-box tests.
	onGrant func(rank int) simlock.GrantFunc
}

func (p N2NParams) withDefaults() N2NParams {
	if p.Procs <= 0 {
		p.Procs = 4
	}
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.MsgBytes <= 0 {
		p.MsgBytes = 1
	}
	if p.Window <= 0 {
		p.Window = 32
	}
	if p.Windows <= 0 {
		p.Windows = 8
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	// Round the window up to a multiple of the peer count so every
	// (src,dst) pair exchanges the same number of messages per cycle;
	// otherwise receives posted for a specific peer could outnumber that
	// peer's sends and the final Waitall would never finish.
	if peers := p.Procs - 1; peers > 0 && p.Window%peers != 0 {
		p.Window += peers - p.Window%peers
	}
	return p
}

// N2NResult aggregates the run.
type N2NResult struct {
	Messages       int64
	SimNs          int64
	RateMsgsPerSec float64
	UnexpectedHits int64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
	// Part holds the partitioned-path counters (all zero unless
	// Partitioned is set).
	Part mpi.PartStats
}

// N2N runs the all-to-all streaming benchmark.
func N2N(p N2NParams) (N2NResult, error) {
	p = p.withDefaults()
	var res N2NResult
	w, err := mpi.NewWorld(mpi.Config{
		Topo:      machine.Nehalem2x4(p.Procs),
		Lock:      p.Lock,
		Binding:   p.Binding,
		Seed:      p.Seed,
		OnGrant:   p.onGrant,
		Fault:     p.Fault,
		MaxWall:   p.MaxWall,
		Tel:       p.Tel,
		VCIs:      p.VCIs,
		VCIPolicy: p.VCIPolicy,
		Progress:  p.Progress,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()
	// Under the Explicit policy each thread streams over its own setup-time
	// communicator pinned to VCI t%VCIs: matching is per-thread by context
	// and the shard mapping is exact, not hashed.
	var comms []*mpi.Comm
	if p.VCIPolicy == vci.Explicit {
		n := p.VCIs
		if n < 1 {
			n = 1
		}
		comms = make([]*mpi.Comm, p.Threads)
		for t := range comms {
			comms[t] = w.SetupComm().SetVCI(t % n)
		}
	}
	var endAt int64
	for rank := 0; rank < p.Procs; rank++ {
		rank := rank
		for t := 0; t < p.Threads; t++ {
			t := t
			tc := c
			if comms != nil {
				tc = comms[t]
			}
			w.Spawn(rank, "n2n", func(th *mpi.Thread) {
				runN2NThread(th, tc, p, rank, t, &endAt)
			})
		}
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("n2n(%v,%dB): %w", p.Lock, p.MsgBytes, err)
	}
	res.Messages = int64(p.Procs) * int64(p.Threads) * int64(p.Window) * int64(p.Windows)
	res.SimNs = endAt
	if endAt > 0 {
		res.RateMsgsPerSec = float64(res.Messages) / (float64(endAt) / 1e9)
	}
	for _, pr := range w.Procs {
		res.UnexpectedHits += pr.UnexpectedHits
	}
	res.Net = w.NetStats()
	res.Part = w.PartStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("n2n(%v,%dB): %w", p.Lock, p.MsgBytes, err)
		}
	}
	return res, nil
}

// runN2NThread drives one benchmark thread in the configured mode.
func runN2NThread(th *mpi.Thread, c *mpi.Comm, p N2NParams, rank, t int, endAt *int64) {
	peers := make([]int, 0, p.Procs-1)
	for q := 0; q < p.Procs; q++ {
		if q != rank {
			peers = append(peers, q)
		}
	}
	tag := 0
	if p.PerThreadTags {
		tag = t
	}
	stamp := func() {
		if th.S.Now() > *endAt {
			*endAt = th.S.Now()
		}
	}

	if p.Partitioned {
		runN2NPartitioned(th, c, p, t, peers, tag, stamp)
		return
	}

	type slot struct {
		req  *mpi.Request
		peer int
		recv bool
	}
	issue := func(peer int, recv bool) slot {
		th.S.Sleep(th.P.Cost().AppPerMessageWork)
		if recv {
			return slot{th.Irecv(c, peer, tag), peer, true}
		}
		return slot{th.Isend(c, peer, tag, p.MsgBytes, nil), peer, false}
	}

	switch p.Mode {
	case N2NBatch:
		// Sends go first, so arrivals race the receive posting: a thread
		// starved at the main-path entry posts late and its peers'
		// messages detour through the unexpected queue (§5.2).
		rs := make([]*mpi.Request, 0, 2*p.Window)
		for win := 0; win < p.Windows; win++ {
			rs = rs[:0]
			for i := 0; i < p.Window; i++ {
				s := issue(peers[(i+t)%len(peers)], false)
				rs = append(rs, s.req)
			}
			for i := 0; i < p.Window; i++ {
				s := issue(peers[(i+t)%len(peers)], true)
				rs = append(rs, s.req)
			}
			th.Waitall(rs) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Waitall
			stamp()
		}

	case N2NStream:
		var q []slot
		for i := 0; i < p.Window; i++ {
			peer := peers[(i+t)%len(peers)]
			q = append(q, issue(peer, false), issue(peer, true))
		}
		remaining := p.Window * (p.Windows - 1)
		for len(q) > 0 {
			s := q[0]
			q = q[1:]
			th.Wait(s.req) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Wait
			if s.recv && remaining > 0 {
				remaining--
				q = append(q, issue(s.peer, false), issue(s.peer, true))
			}
			stamp()
		}

	case N2NFreeRun:
		var q []slot
		for i := 0; i < p.Window; i++ {
			peer := peers[(i+t)%len(peers)]
			q = append(q, issue(peer, false), issue(peer, true))
		}
		sendsLeft := p.Window * (p.Windows - 1)
		recvsLeft := sendsLeft
		for len(q) > 0 {
			s := q[0]
			q = q[1:]
			th.Wait(s.req) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Wait
			if s.recv && recvsLeft > 0 {
				recvsLeft--
				q = append(q, issue(s.peer, true))
			} else if !s.recv && sendsLeft > 0 {
				sendsLeft--
				q = append(q, issue(s.peer, false))
			}
			stamp()
		}
	}
}

// runN2NPartitioned drives one thread of the partitioned variant: the same
// traffic volume as the batch shape — Window messages to and from every
// peer group per cycle — but each per-message eager send becomes a Pready
// on a persistent partitioned channel. The per-message application work is
// identical; what disappears is the per-message runtime lock traffic,
// replaced by one trigger (and one Pstart/Pwait pair) per peer per window.
func runN2NPartitioned(th *mpi.Thread, c *mpi.Comm, p N2NParams, t int, peers []int, tag int, stamp func()) {
	parts := p.Window / len(peers) // Window is rounded to a peer multiple
	psend := make([]*mpi.Prequest, len(peers))
	precv := make([]*mpi.Prequest, len(peers))
	for i, peer := range peers {
		psend[i] = th.PsendInit(c, peer, tag, parts, p.MsgBytes, nil)
		precv[i] = th.PrecvInit(c, peer, tag, parts, p.MsgBytes)
	}
	next := make([]int, len(peers))
	for win := 0; win < p.Windows; win++ {
		for i := range peers {
			next[i] = 0
			th.Pstart(psend[i])
		}
		// The per-partition stream, in the batch shape's message order:
		// same application-level work per message, but the runtime call is
		// a lock-free bitmap update (the last one per peer triggers that
		// peer's aggregate).
		for i := 0; i < p.Window; i++ {
			pi := (i + t) % len(peers)
			th.S.Sleep(th.P.Cost().AppPerMessageWork)
			th.Pready(psend[pi], next[pi]) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Pready
			next[pi]++
		}
		// Receives post after the send burst, like the batch shape:
		// aggregates that already landed detour through the partitioned
		// unexpected queue.
		for i := range peers {
			th.Pstart(precv[i])
		}
		for i := range peers {
			th.Pwait(psend[i]) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Pwait
			th.Pwait(precv[i]) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Pwait
		}
		stamp()
	}
}
