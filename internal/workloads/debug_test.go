package workloads

import (
	"testing"

	"mpicontend/internal/machine"
	"mpicontend/internal/simlock"
	"mpicontend/internal/trace"
)

// TestDebugGrantStream dissects the receiver-side grant stream under the
// mutex to understand arbitration composition. Skipped unless -v digging.
func TestDebugGrantStream(t *testing.T) {
	var grants []simlock.GrantInfo
	p := ThroughputParams{
		Lock: simlock.KindMutex, Threads: 8, MsgBytes: 64,
		Windows: 4, TraceRank: 1, Binding: machine.Compact,
	}
	fairGrab := func(rank int) simlock.GrantFunc {
		if rank != 1 {
			return nil
		}
		return func(gi simlock.GrantInfo) {
			ws := make([]machine.Place, len(gi.Waiters))
			copy(ws, gi.Waiters)
			gi.Waiters = ws
			grants = append(grants, gi)
		}
	}
	_ = fairGrab
	// Re-run manually to capture raw grants.
	r, err := ThroughputWithHook(p, fairGrab)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rate %.0f", r.RateMsgsPerSec)
	total := len(grants)
	contended, same, sameContended := 0, 0, 0
	waiterHist := map[int]int{}
	for i := 1; i < total; i++ {
		w := len(grants[i-1].Waiters)
		waiterHist[w]++
		if grants[i].ThreadID == grants[i-1].ThreadID {
			same++
		}
		if w > 0 {
			contended++
			if grants[i].ThreadID == grants[i-1].ThreadID {
				sameContended++
			}
		}
	}
	t.Logf("grants=%d contended=%d same=%d sameContended=%d", total, contended, same, sameContended)
	t.Logf("waiter histogram: %v", waiterHist)
	var f trace.FairnessAnalyzer
	for _, g := range grants {
		f.Observe(g)
	}
	t.Logf("Pc=%.3f fairPc=%.3f biasCore=%.2f Ps=%.3f fairPs=%.3f biasSock=%.2f",
		f.Pc(), f.FairPc(), f.BiasFactorCore(), f.Ps(), f.FairPs(), f.BiasFactorSocket())

	// Inter-grant gap histogram: who wins after a release? ~<200ns gaps
	// are spinner/steal wins, ~2500 gaps are futex-wake handoffs.
	gapHist := map[string]int{}
	for i := 1; i < total; i++ {
		gap := grants[i].At - grants[i-1].At
		var bucket string
		switch {
		case gap < 200:
			bucket = "<200"
		case gap < 600:
			bucket = "200-600"
		case gap < 1500:
			bucket = "600-1500"
		case gap < 3500:
			bucket = "1500-3500"
		default:
			bucket = ">3500"
		}
		gapHist[bucket]++
	}
	t.Logf("gap histogram: %v", gapHist)
	perThread := map[int]int{}
	for _, g := range grants {
		perThread[g.ThreadID]++
	}
	t.Logf("grants per thread: %v", perThread)
}

// TestDebugRMAGrants dissects rank-0 lock traffic in the RMA benchmark.
func TestDebugRMAGrants(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket} {
		var grants []simlock.GrantInfo
		p := RMAParams{Lock: k, Op: OpPut, ElemBytes: 64, Ops: 8}
		p = p.withDefaults()
		r, err := rmaWithHook(p, func(rank int) simlock.GrantFunc {
			if rank != 0 {
				return nil
			}
			return func(gi simlock.GrantInfo) { grants = append(grants, gi) }
		})
		if err != nil {
			t.Fatal(err)
		}
		per := map[int]int{}
		classes := map[simlock.Class]int{}
		for _, g := range grants {
			per[g.ThreadID]++
			classes[g.Class]++
		}
		t.Logf("%v: rate=%.0f grants=%d perThread=%v classes=%v simNs=%d",
			k, r.RateElemPerSec, len(grants), per, classes, r.SimNs)
	}
}

// TestDebugN2NClasses inspects grant class composition under the priority
// lock in the N2N benchmark.
func TestDebugN2NClasses(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority} {
		var grants []simlock.GrantInfo
		p := N2NParams{Lock: k, Procs: 4, Threads: 8, MsgBytes: 64, Windows: 6, Mode: N2NStream}
		p.onGrant = func(rank int) simlock.GrantFunc {
			if rank != 0 {
				return nil
			}
			return func(gi simlock.GrantInfo) { grants = append(grants, gi) }
		}
		r, err := N2N(p)
		if err != nil {
			t.Fatal(err)
		}
		classes := map[simlock.Class]int{}
		var maxGap, sumGap int64
		for i, g := range grants {
			classes[g.Class]++
			if i > 0 {
				gap := g.At - grants[i-1].At
				sumGap += gap
				if gap > maxGap {
					maxGap = gap
				}
			}
		}
		t.Logf("%v: rate=%.0f grants=%d classes=%v avgGap=%d maxGap=%d unexpected=%d",
			k, r.RateMsgsPerSec, len(grants), classes,
			sumGap/int64(len(grants)), maxGap, r.UnexpectedHits)
	}
}

// TestDebugN2NWindowDepth sweeps the in-flight window to find where the
// priority lock's request-generation promotion pays off.
func TestDebugN2NWindowDepth(t *testing.T) {
	for _, win := range []int{3, 6, 9, 18} {
		var line string
		for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority} {
			r, err := N2N(N2NParams{Lock: k, Procs: 4, Threads: 8, MsgBytes: 64,
				Window: win, Windows: 12, Mode: N2NStream})
			if err != nil {
				t.Fatal(err)
			}
			line += k.String() + "=" + itoa(int64(r.RateMsgsPerSec)) + " unexp=" + itoa(r.UnexpectedHits) + "  "
		}
		t.Logf("window=%d: %s", win, line)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestDebugN2NTagged tries per-thread tagged pairing (shallow match pools).
func TestDebugN2NTagged(t *testing.T) {
	for _, win := range []int{3, 6, 12} {
		var line string
		for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority} {
			r, err := N2N(N2NParams{Lock: k, Procs: 4, Threads: 8, MsgBytes: 64,
				Window: win, Windows: 12, Mode: N2NStream, PerThreadTags: true})
			if err != nil {
				t.Fatal(err)
			}
			line += k.String() + "=" + itoa(int64(r.RateMsgsPerSec)) + " unexp=" + itoa(r.UnexpectedHits) + "  "
		}
		t.Logf("tagged window=%d: %s", win, line)
	}
}

// TestDebugN2NFreeRun tries free-running send windows: sends gated only by
// send completion, receives reposted independently.
func TestDebugN2NFreeRun(t *testing.T) {
	for _, k := range []simlock.Kind{simlock.KindTicket, simlock.KindPriority, simlock.KindMutex} {
		r, err := N2N(N2NParams{Lock: k, Procs: 4, Threads: 8, MsgBytes: 64,
			Window: 9, Windows: 12, Mode: N2NFreeRun})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("freerun %v: rate=%.0f unexp=%d", k, r.RateMsgsPerSec, r.UnexpectedHits)
	}
}
