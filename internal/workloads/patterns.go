package workloads

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
)

// Pattern identifies one scenario of the multithreaded MPI test battery,
// after Thakur & Gropp's "Test suite for evaluating performance of
// multithreaded MPI communication" (paper §8, ref [27]): each pattern
// simulates a typical application behaviour and measures how much the
// runtime's thread safety costs under it.
type Pattern int

const (
	// PatternConcurrentPairs: thread i of rank 0 exchanges with thread i
	// of rank 1 (measures concurrent progress of independent streams).
	PatternConcurrentPairs Pattern = iota
	// PatternFanIn: all threads of all senders target one receiving
	// thread's queue (measures matching under a hot queue).
	PatternFanIn
	// PatternFanOut: one sender thread feeds all receiver threads.
	PatternFanOut
	// PatternComputeOverlap: threads alternate computation with
	// communication (measures how well the runtime overlaps them).
	PatternComputeOverlap
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternConcurrentPairs:
		return "ConcurrentPairs"
	case PatternFanIn:
		return "FanIn"
	case PatternFanOut:
		return "FanOut"
	case PatternComputeOverlap:
		return "ComputeOverlap"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists every battery scenario.
func Patterns() []Pattern {
	return []Pattern{PatternConcurrentPairs, PatternFanIn, PatternFanOut,
		PatternComputeOverlap}
}

// PatternParams configures one battery run.
type PatternParams struct {
	Lock     simlock.Kind
	Pattern  Pattern
	Threads  int
	MsgBytes int64
	// Msgs is the number of messages per thread pair.
	Msgs int
	// ComputeNs is the per-message computation in PatternComputeOverlap.
	ComputeNs int64
	Seed      uint64
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
}

func (p PatternParams) withDefaults() PatternParams {
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.MsgBytes <= 0 {
		p.MsgBytes = 64
	}
	if p.Msgs <= 0 {
		p.Msgs = 64
	}
	if p.ComputeNs <= 0 {
		p.ComputeNs = 2000
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// PatternResult reports one battery run.
type PatternResult struct {
	Messages       int64
	SimNs          int64
	RateMsgsPerSec float64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// RunPattern executes one scenario of the battery between two nodes.
func RunPattern(p PatternParams) (PatternResult, error) {
	p = p.withDefaults()
	var res PatternResult
	w, err := mpi.NewWorld(mpi.Config{
		Topo:    machine.Nehalem2x4(2),
		Lock:    p.Lock,
		Seed:    p.Seed,
		Fault:   p.Fault,
		MaxWall: p.MaxWall,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()
	var endAt int64
	stamp := func(th *mpi.Thread) {
		if th.S.Now() > endAt {
			endAt = th.S.Now()
		}
	}

	switch p.Pattern {
	case PatternConcurrentPairs:
		for t := 0; t < p.Threads; t++ {
			t := t
			w.Spawn(0, "send", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					th.Send(c, 1, t, p.MsgBytes, nil)
				}
				stamp(th)
			})
			w.Spawn(1, "recv", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					th.Recv(c, 0, t)
				}
				stamp(th)
			})
		}
		res.Messages = int64(p.Threads) * int64(p.Msgs)

	case PatternFanIn:
		for t := 0; t < p.Threads; t++ {
			w.Spawn(0, "send", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					th.Send(c, 1, 0, p.MsgBytes, nil)
				}
				stamp(th)
			})
		}
		w.Spawn(1, "sink", func(th *mpi.Thread) {
			total := p.Threads * p.Msgs
			rs := make([]*mpi.Request, 0, 64)
			for got := 0; got < total; {
				rs = rs[:0]
				batch := 64
				if total-got < batch {
					batch = total - got
				}
				for i := 0; i < batch; i++ {
					rs = append(rs, th.Irecv(c, mpi.AnySource, 0))
				}
				th.Waitall(rs) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Waitall
				got += batch
			}
			stamp(th)
		})
		res.Messages = int64(p.Threads) * int64(p.Msgs)

	case PatternFanOut:
		w.Spawn(0, "source", func(th *mpi.Thread) {
			for i := 0; i < p.Threads*p.Msgs; i++ {
				th.Send(c, 1, i%p.Threads, p.MsgBytes, nil)
			}
			stamp(th)
		})
		for t := 0; t < p.Threads; t++ {
			t := t
			w.Spawn(1, "recv", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					th.Recv(c, 0, t)
				}
				stamp(th)
			})
		}
		res.Messages = int64(p.Threads) * int64(p.Msgs)

	case PatternComputeOverlap:
		for t := 0; t < p.Threads; t++ {
			t := t
			w.Spawn(0, "send", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					r := th.Isend(c, 1, t, p.MsgBytes, nil)
					th.S.Sleep(p.ComputeNs) // overlapped computation
					th.Wait(r) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Wait
				}
				stamp(th)
			})
			w.Spawn(1, "recv", func(th *mpi.Thread) {
				for i := 0; i < p.Msgs; i++ {
					r := th.Irecv(c, 0, t)
					th.S.Sleep(p.ComputeNs)
					th.Wait(r) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Wait
				}
				stamp(th)
			})
		}
		res.Messages = int64(p.Threads) * int64(p.Msgs)
	}

	if err := w.Run(); err != nil {
		return res, fmt.Errorf("pattern %v(%v): %w", p.Pattern, p.Lock, err)
	}
	res.SimNs = endAt
	if endAt > 0 {
		res.RateMsgsPerSec = float64(res.Messages) / (float64(endAt) / 1e9)
	}
	res.Net = w.NetStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("pattern %v(%v): %w", p.Pattern, p.Lock, err)
		}
	}
	return res, nil
}
