package workloads

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// RecoveryStrategy selects how survivors continue after a rank failure.
type RecoveryStrategy int

const (
	// RecoverShrink is shrink-and-redistribute: survivors revoke the
	// communicator, shrink to a new one, agree on the furthest iteration
	// reached, redistribute the dead rank's domain share and continue
	// forward (the dead rank's uncheckpointed contributions are lost).
	RecoverShrink RecoveryStrategy = iota
	// RecoverCheckpoint is in-memory checkpoint/restart: every rank saves
	// (iteration, state) every CkptInterval iterations; after a failure
	// survivors shrink, agree on the newest globally consistent checkpoint
	// line (min over last checkpoints) and roll back to it, the lowest
	// survivor adopting the dead ranks' checkpointed state.
	RecoverCheckpoint
)

// String names the strategy.
func (s RecoveryStrategy) String() string {
	switch s {
	case RecoverShrink:
		return "shrink"
	case RecoverCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecoveryStrategy(%d)", int(s))
	}
}

// RecoveryKernel selects the communication structure the failure hits.
type RecoveryKernel int

const (
	// KernelRing is a stencil-style halo exchange: each iteration trades
	// messages with the two ring neighbours, so a failure is observed
	// directly only by the victim's neighbours and reaches everyone else
	// via the revocation flood.
	KernelRing RecoveryKernel = iota
	// KernelN2N exchanges with every peer each iteration, so every rank
	// observes the failure directly within one detection latency.
	KernelN2N
)

// String names the kernel.
func (k RecoveryKernel) String() string {
	switch k {
	case KernelRing:
		return "ring"
	default:
		return "n2n"
	}
}

// Tags of the recovery workload's message streams.
const (
	tagHaloRight = 11 // data flowing to the right neighbour
	tagHaloLeft  = 12 // data flowing to the left neighbour
	tagRedist    = 13 // domain redistribution after a shrink
	tagN2N       = 14
)

// RecoveryParams configures the fault-tolerant iterative workload.
type RecoveryParams struct {
	Lock simlock.Kind
	// Procs is the number of ranks (default 4).
	Procs int
	// ProcsPerNode packs ranks onto nodes (default 1; >1 makes Node crash
	// specs kill co-located ranks together).
	ProcsPerNode int
	// Iters is the iteration count each rank must complete (default 64).
	Iters int
	// MsgBytes is the per-neighbour halo (or per-peer) message size.
	MsgBytes int64
	// ComputeNs is the per-iteration computation time (default 2µs).
	ComputeNs int64
	// Strategy selects the recovery scheme (default RecoverShrink).
	Strategy RecoveryStrategy
	// Kernel selects the communication structure (default KernelRing).
	Kernel RecoveryKernel
	// CkptInterval is the checkpoint period in iterations (default 8;
	// RecoverCheckpoint only).
	CkptInterval int
	// DomainBytes is the global domain size redistributed after a shrink
	// (default 256 KiB).
	DomainBytes int64
	// NoAsyncProgress disables the per-rank asynchronous progress thread.
	// By default it runs, so recovery traffic contends with the paper's
	// §6.1.2 lock-monopolizing daemon — the regime the experiment studies.
	NoAsyncProgress bool
	// Fault configures the fault plane; Fault.Crashes is the failure
	// schedule this workload exists to survive.
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
	Seed    uint64
	// Tel attaches the telemetry plane (nil = disabled, zero overhead).
	Tel *telemetry.Recorder
}

func (p RecoveryParams) withDefaults() RecoveryParams {
	if p.Procs <= 0 {
		p.Procs = 4
	}
	if p.Iters <= 0 {
		p.Iters = 64
	}
	if p.MsgBytes <= 0 {
		p.MsgBytes = 1024
	}
	if p.ComputeNs <= 0 {
		p.ComputeNs = 2000
	}
	if p.CkptInterval <= 0 {
		p.CkptInterval = 8
	}
	if p.DomainBytes <= 0 {
		p.DomainBytes = 256 << 10
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// RecoveryResult aggregates the run.
type RecoveryResult struct {
	// SimNs is the completion time of the last surviving rank.
	SimNs int64
	// Survivors is the number of ranks alive at the end.
	Survivors int
	// Checksum is the agreed final reduction over the survivors' state —
	// the determinism witness (same seed ⇒ same checksum, at any -jobs).
	Checksum int64
	// RecoverNs is the worst per-rank total time spent inside recovery
	// (revoke + shrink + agree + redistribution or rollback).
	RecoverNs int64
	// Recoveries counts recovery rounds entered across all ranks.
	Recoveries int64
	// Recovery holds the runtime's fault-tolerance counters (detection
	// latency, error-path lock acquisitions, primitive counts).
	Recovery mpi.RecoveryStats
	// Net holds the resilience counters.
	Net mpi.NetStats
}

// ckptEntry is one in-memory checkpoint: the state of one rank at an
// iteration boundary.
type ckptEntry struct {
	iter int
	sum  int64
}

// lastCkpt returns the newest checkpoint.
func lastCkpt(h []ckptEntry) ckptEntry { return h[len(h)-1] }

// ckptAt returns the checkpoint taken at exactly iteration it. The caller
// guarantees existence: checkpoints are taken at fixed intervals and it is
// an agreed minimum over ranks' newest checkpoints.
func ckptAt(h []ckptEntry, it int) ckptEntry {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].iter == it {
			return h[i]
		}
	}
	panic(fmt.Sprintf("workloads: no checkpoint at iteration %d", it))
}

// ckptSumAtOrBefore returns the newest checkpointed sum at or before
// iteration it, or 0 when none exists (a rank that died before its first
// checkpoint contributed nothing durable).
func ckptSumAtOrBefore(h []ckptEntry, it int) int64 {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].iter <= it {
			return h[i].sum
		}
	}
	return 0
}

// Recovery runs the fault-tolerant iterative workload: an iterative
// exchange-and-compute kernel that survives the configured crash schedule
// with the selected recovery strategy and reports what the recovery cost.
func Recovery(p RecoveryParams) (RecoveryResult, error) {
	p = p.withDefaults()
	var res RecoveryResult
	ppn := p.ProcsPerNode
	if ppn <= 0 {
		ppn = 1
	}
	nodes := (p.Procs + ppn - 1) / ppn
	p.Procs = nodes * ppn // the world always fills whole nodes
	w, err := mpi.NewWorld(mpi.Config{
		Topo:         machine.Nehalem2x4(nodes),
		ProcsPerNode: ppn,
		Lock:         p.Lock,
		Seed:         p.Seed,
		Fault:        p.Fault,
		MaxWall:      p.MaxWall,
		Tel:          p.Tel,
	})
	if err != nil {
		return res, err
	}
	w.SetErrhandler(mpi.ErrorsReturn)
	c := w.Comm()

	// World-level shared state: the sim is cooperative and deterministic,
	// so plain slices indexed by world rank are race-free.
	store := make([][]ckptEntry, p.Procs) // in-memory checkpoint store
	recoverNs := make([]int64, p.Procs)   // per-rank time inside recovery
	recoveries := make([]int64, p.Procs)  // per-rank recovery rounds
	finals := make([]int64, p.Procs)      // per-rank final reduction value
	finished := make([]bool, p.Procs)
	var endAt int64

	for rank := 0; rank < p.Procs; rank++ {
		rank := rank
		if !p.NoAsyncProgress {
			w.SpawnAsyncProgress(rank)
		}
		w.Spawn(rank, "recovery", func(th *mpi.Thread) {
			runRecoveryRank(th, c, p, rank, store, recoverNs, recoveries, finals)
			finished[rank] = true
			if th.S.Now() > endAt {
				endAt = th.S.Now()
			}
		})
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("recovery(%v,%v,%v): %w", p.Lock, p.Strategy, p.Kernel, err)
	}
	res.SimNs = endAt
	res.Recovery = w.Recovery()
	crashed := make(map[int]bool, len(res.Recovery.Crashed))
	for _, r := range res.Recovery.Crashed {
		crashed[r] = true
	}
	for rank := 0; rank < p.Procs; rank++ {
		if crashed[rank] {
			continue
		}
		res.Survivors++
		if !finished[rank] {
			return res, fmt.Errorf("recovery(%v,%v,%v): surviving rank %d never finished",
				p.Lock, p.Strategy, p.Kernel, rank)
		}
		res.Checksum = finals[rank] // all survivors agree; keep the last
		if recoverNs[rank] > res.RecoverNs {
			res.RecoverNs = recoverNs[rank]
		}
		res.Recoveries += recoveries[rank]
	}
	res.Net = w.NetStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		// Crashy runs leave residue by design (the dead rank's queues); the
		// delivery invariants only hold for crash-free scenarios.
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("recovery(%v,%v,%v): %w", p.Lock, p.Strategy, p.Kernel, err)
		}
	}
	return res, nil
}

// runRecoveryRank drives one rank's kernel thread: iterate the exchange-
// and-compute loop, and on any failure run the recovery protocol and
// resume. The victim ranks run the same code until the scheduled crash
// unwinds them.
func runRecoveryRank(th *mpi.Thread, c *mpi.Comm, p RecoveryParams, rank int,
	store [][]ckptEntry, recoverNs, recoveries, finals []int64) {
	cur := c
	iter := 0
	var localSum int64
	// orphan is the adopted state of checkpointed-but-dead ranks; it is
	// recomputed (not accumulated) on every checkpoint recovery and added
	// to the final reduction. Identical on every survivor.
	var orphan int64

	// phase runs one iteration's communication on the current comm.
	phase := func() error {
		me := cur.Rank(th)
		n := cur.Size()
		if n <= 1 {
			return nil
		}
		switch p.Kernel {
		case KernelRing:
			left := (me - 1 + n) % n
			right := (me + 1) % n
			rl := th.Irecv(cur, left, tagHaloRight)
			rr := th.Irecv(cur, right, tagHaloLeft)
			sr := th.Isend(cur, right, tagHaloRight, p.MsgBytes, nil)
			sl := th.Isend(cur, left, tagHaloLeft, p.MsgBytes, nil)
			return th.Waitall([]*mpi.Request{rl, rr, sr, sl})
		default: // KernelN2N
			rs := make([]*mpi.Request, 0, 2*(n-1))
			for q := 0; q < n; q++ {
				if q == me {
					continue
				}
				rs = append(rs, th.Irecv(cur, q, tagN2N))
			}
			for q := 0; q < n; q++ {
				if q == me {
					continue
				}
				rs = append(rs, th.Isend(cur, q, tagN2N, p.MsgBytes, nil))
			}
			return th.Waitall(rs)
		}
	}

	// recover runs one recovery round: revoke the broken communicator,
	// shrink to the survivors, agree on where to resume, and either
	// redistribute (shrink strategy) or roll back (checkpoint strategy).
	// It loops until a round completes without a new failure interrupting
	// it; detection latency bounds every retry.
	recoverRound := func() {
		t0 := th.S.Now()
		recoveries[rank]++
		th.BeginErrPath()
		defer th.EndErrPath()
		for {
			th.Revoke(cur)
			sh, err := th.Shrink(cur)
			if err != nil {
				continue
			}
			cur = sh
			if p.Strategy == RecoverCheckpoint {
				agreed, err := th.AllreduceMinErr(cur, int64(lastCkpt(store[rank]).iter))
				if err != nil {
					continue
				}
				e := ckptAt(store[rank], int(agreed))
				iter, localSum = e.iter, e.sum
				// Adopt the checkpointed state of every rank the shrink
				// excluded (partner-checkpointing stand-in: the in-memory
				// store is reachable even though its owner is not). Every
				// survivor recomputes the same value from the same shrunk
				// membership and agreed iteration — recomputed from
				// scratch each round, so repeated recoveries stay
				// idempotent.
				orphan = 0
				member := make(map[int]bool, cur.Size())
				for _, wr := range cur.WorldRanks() {
					member[wr] = true
				}
				for d := 0; d < p.Procs; d++ {
					if !member[d] {
						orphan += ckptSumAtOrBefore(store[d], int(agreed))
					}
				}
			} else {
				agreed, err := th.AllreduceMaxErr(cur, int64(iter))
				if err != nil {
					continue
				}
				iter = int(agreed)
				// Redistribute the domain: each survivor adopts its share
				// of the lost partition from its ring predecessor.
				if n := cur.Size(); n > 1 {
					me := cur.Rank(th)
					share := p.DomainBytes / int64(n)
					rr := th.Irecv(cur, (me-1+n)%n, tagRedist)
					sr := th.Isend(cur, (me+1)%n, tagRedist, share, nil)
					if err := th.Waitall([]*mpi.Request{sr, rr}); err != nil {
						continue
					}
				}
			}
			break
		}
		recoverNs[rank] += th.S.Now() - t0
	}

	for iter < p.Iters {
		if p.Strategy == RecoverCheckpoint && iter%p.CkptInterval == 0 {
			h := store[rank]
			if len(h) == 0 || lastCkpt(h).iter != iter {
				store[rank] = append(h, ckptEntry{iter: iter, sum: localSum})
			}
		}
		if err := phase(); err != nil {
			recoverRound()
			continue
		}
		th.S.Sleep(p.ComputeNs)
		localSum += int64(iter)*7 + int64(rank) + 1
		iter++
	}
	for {
		v, err := th.AllreduceSumErr(cur, localSum)
		if err != nil {
			recoverRound()
			continue
		}
		finals[rank] = v + orphan
		break
	}
}
