package workloads

import (
	"testing"

	"mpicontend/internal/simlock"
)

func TestAllPatternsRun(t *testing.T) {
	for _, pat := range Patterns() {
		for _, k := range []simlock.Kind{simlock.KindMutex, simlock.KindTicket} {
			r, err := RunPattern(PatternParams{Lock: k, Pattern: pat,
				Threads: 4, Msgs: 16})
			if err != nil {
				t.Fatalf("%v/%v: %v", pat, k, err)
			}
			if r.Messages == 0 || r.RateMsgsPerSec <= 0 {
				t.Fatalf("%v/%v: degenerate result %+v", pat, k, r)
			}
		}
	}
}

func TestPatternNames(t *testing.T) {
	want := map[Pattern]string{
		PatternConcurrentPairs: "ConcurrentPairs",
		PatternFanIn:           "FanIn",
		PatternFanOut:          "FanOut",
		PatternComputeOverlap:  "ComputeOverlap",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
}

// TestPatternFairLocksHelpConcurrentPairs: the battery's headline — fair
// arbitration speeds up independent concurrent streams.
func TestPatternFairLocksHelpConcurrentPairs(t *testing.T) {
	run := func(k simlock.Kind) float64 {
		r, err := RunPattern(PatternParams{Lock: k,
			Pattern: PatternConcurrentPairs, Threads: 8, Msgs: 32})
		if err != nil {
			t.Fatal(err)
		}
		return r.RateMsgsPerSec
	}
	m, tk := run(simlock.KindMutex), run(simlock.KindTicket)
	t.Logf("concurrent pairs: mutex %.0f ticket %.0f", m, tk)
	if tk <= m {
		t.Errorf("ticket (%.0f) should beat mutex (%.0f)", tk, m)
	}
}

// TestPatternOverlapBenefit: with computation overlapped, aggregate rates
// should exceed the pure ping-pong pattern's serialization penalty —
// sanity-check that Isend/Wait overlap works at all.
func TestPatternOverlapBenefit(t *testing.T) {
	r, err := RunPattern(PatternParams{Lock: simlock.KindTicket,
		Pattern: PatternComputeOverlap, Threads: 4, Msgs: 32, ComputeNs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// 32 msgs x 2us compute = 64us serial compute per thread; if
	// communication fully hid behind it, per-thread time ~= 64us.
	// Allow 3x slack for runtime costs.
	perThread := r.SimNs
	if perThread > 3*32*2000 {
		t.Errorf("overlap pattern too slow: %dns for 64us of compute", perThread)
	}
}

func TestPatternDeterministic(t *testing.T) {
	p := PatternParams{Lock: simlock.KindMutex, Pattern: PatternFanIn,
		Threads: 4, Msgs: 16}
	a, err := RunPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs {
		t.Fatalf("nondeterministic: %d vs %d", a.SimNs, b.SimNs)
	}
}
