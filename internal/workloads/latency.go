package workloads

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// LatencyParams configures the multithreaded ping-pong latency benchmark
// derived from osu_latency (paper §6.1.1): every thread on rank 0 ping-pongs
// with rank 1; messages are untagged so any pong satisfies any thread.
type LatencyParams struct {
	Lock     simlock.Kind
	Binding  machine.Binding
	Threads  int
	MsgBytes int64
	// Iters is the number of ping-pongs per thread.
	Iters int
	Seed  uint64
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
	// Tel attaches the telemetry plane (nil = disabled, zero overhead).
	Tel *telemetry.Recorder
}

func (p LatencyParams) withDefaults() LatencyParams {
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.MsgBytes <= 0 {
		p.MsgBytes = 1
	}
	if p.Iters <= 0 {
		p.Iters = 50
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// LatencyResult reports the average one-way latency (half the round trip),
// averaged across threads and iterations, in microseconds.
type LatencyResult struct {
	AvgOneWayUs float64
	SimNs       int64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// Latency runs the multithreaded latency benchmark.
func Latency(p LatencyParams) (LatencyResult, error) {
	p = p.withDefaults()
	var res LatencyResult
	w, err := mpi.NewWorld(mpi.Config{
		Topo:    machine.Nehalem2x4(2),
		Lock:    p.Lock,
		Binding: p.Binding,
		Seed:    p.Seed,
		Fault:   p.Fault,
		MaxWall: p.MaxWall,
		Tel:     p.Tel,
	})
	if err != nil {
		return res, err
	}
	c := w.Comm()
	var totalRT int64 // summed round-trip ns across threads
	var endAt int64
	for t := 0; t < p.Threads; t++ {
		w.Spawn(0, "ping", func(th *mpi.Thread) {
			for i := 0; i < p.Iters; i++ {
				start := th.S.Now()
				th.Send(c, 1, 0, p.MsgBytes, nil)
				th.Recv(c, 1, 1)
				totalRT += th.S.Now() - start
			}
			if th.S.Now() > endAt {
				endAt = th.S.Now()
			}
		})
		w.Spawn(1, "pong", func(th *mpi.Thread) {
			for i := 0; i < p.Iters; i++ {
				th.Recv(c, 0, 0)
				th.Send(c, 0, 1, p.MsgBytes, nil)
			}
		})
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("latency(%v,%dB,%dt): %w", p.Lock, p.MsgBytes, p.Threads, err)
	}
	n := int64(p.Threads) * int64(p.Iters)
	res.AvgOneWayUs = float64(totalRT) / float64(n) / 2 / 1000
	res.SimNs = endAt
	res.Net = w.NetStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("latency(%v,%dB,%dt): %w", p.Lock, p.MsgBytes, p.Threads, err)
		}
	}
	return res, nil
}
