package workloads

import (
	"fmt"
	"testing"

	"mpicontend/internal/fault"
	"mpicontend/internal/simlock"
)

func runRecovery(t *testing.T, p RecoveryParams) RecoveryResult {
	t.Helper()
	r, err := Recovery(p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// crashMid crashes one rank roughly halfway through the iteration count.
func crashMid(rank int) fault.Config {
	return fault.Config{Crashes: []fault.CrashSpec{{Rank: rank, AtNs: 60_000}}}
}

func TestRecoveryCrashFree(t *testing.T) {
	for _, strat := range []RecoveryStrategy{RecoverShrink, RecoverCheckpoint} {
		r := runRecovery(t, RecoveryParams{
			Lock: simlock.KindTicket, Strategy: strat, Iters: 16,
		})
		if r.Survivors != 4 {
			t.Errorf("%v: want 4 survivors, got %d", strat, r.Survivors)
		}
		if r.Recoveries != 0 || r.RecoverNs != 0 {
			t.Errorf("%v: crash-free run entered recovery: %+v", strat, r)
		}
		// Full sum over 4 ranks × 16 iters of iter*7 + rank + 1.
		want := int64(0)
		for rank := 0; rank < 4; rank++ {
			for it := 0; it < 16; it++ {
				want += int64(it)*7 + int64(rank) + 1
			}
		}
		if r.Checksum != want {
			t.Errorf("%v: checksum %d, want %d", strat, r.Checksum, want)
		}
	}
}

func TestRecoveryShrinkSurvivesCrash(t *testing.T) {
	for _, kern := range []RecoveryKernel{KernelRing, KernelN2N} {
		r := runRecovery(t, RecoveryParams{
			Lock: simlock.KindTicket, Strategy: RecoverShrink, Kernel: kern,
			Iters: 32, Fault: crashMid(2),
		})
		if r.Survivors != 3 {
			t.Errorf("%v: want 3 survivors, got %d", kern, r.Survivors)
		}
		if r.Recoveries == 0 || r.RecoverNs <= 0 {
			t.Errorf("%v: no recovery recorded: %+v", kern, r)
		}
		if r.Recovery.DetectNs <= 0 {
			t.Errorf("%v: no detection latency: %+v", kern, r.Recovery)
		}
		if r.Recovery.Shrinks == 0 || r.Recovery.Revokes == 0 {
			t.Errorf("%v: recovery primitives unused: %+v", kern, r.Recovery)
		}
		if r.Recovery.ErrPathLocks == 0 {
			t.Errorf("%v: error path acquired no locks: %+v", kern, r.Recovery)
		}
	}
}

func TestRecoveryCheckpointSurvivesCrash(t *testing.T) {
	for _, kern := range []RecoveryKernel{KernelRing, KernelN2N} {
		r := runRecovery(t, RecoveryParams{
			Lock: simlock.KindMutex, Strategy: RecoverCheckpoint, Kernel: kern,
			Iters: 32, CkptInterval: 8, Fault: crashMid(1),
		})
		if r.Survivors != 3 {
			t.Errorf("%v: want 3 survivors, got %d", kern, r.Survivors)
		}
		if r.Recoveries == 0 {
			t.Errorf("%v: no recovery recorded: %+v", kern, r)
		}
		// The checkpoint strategy preserves the dead rank's contributions up
		// to the rollback line: survivors redo the iterations after it, so
		// the checksum must cover the survivors' full history plus the dead
		// rank's checkpointed prefix — always at least the survivors-only
		// total and strictly less than the loss-free total.
		survOnly, full := int64(0), int64(0)
		for rank := 0; rank < 4; rank++ {
			for it := 0; it < 32; it++ {
				v := int64(it)*7 + int64(rank) + 1
				full += v
				if rank != 1 {
					survOnly += v
				}
			}
		}
		if r.Checksum < survOnly || r.Checksum >= full {
			t.Errorf("%v: checksum %d outside (surv-only %d, full %d)",
				kern, r.Checksum, survOnly, full)
		}
	}
}

// TestRecoveryDeterministic runs the crashy scenarios twice and demands
// bit-identical results — the property the recovery experiment's in-cell
// double run asserts at scale.
func TestRecoveryDeterministic(t *testing.T) {
	for _, strat := range []RecoveryStrategy{RecoverShrink, RecoverCheckpoint} {
		p := RecoveryParams{
			Lock: simlock.KindPriority, Strategy: strat, Iters: 32,
			Fault: crashMid(2), Seed: 99,
		}
		a := runRecovery(t, p)
		b := runRecovery(t, p)
		sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
		if sa != sb {
			t.Errorf("%v: nondeterministic:\n  run1: %s\n  run2: %s", strat, sa, sb)
		}
	}
}

// TestRecoveryNodeCrash kills a whole node (both co-located ranks when the
// topology packs 2 ranks per node) and checks survivors still finish.
func TestRecoveryNodeCrash(t *testing.T) {
	r := runRecovery(t, RecoveryParams{
		Lock: simlock.KindTicket, Strategy: RecoverShrink,
		Procs: 6, ProcsPerNode: 2, Iters: 24,
		Fault: fault.Config{Crashes: []fault.CrashSpec{{Rank: 2, AtNs: 50_000, Node: true}}},
	})
	if r.Survivors != 4 {
		t.Errorf("node crash should kill both co-located ranks: %+v", r)
	}
	if r.Recovery.DetectNs <= 0 {
		t.Errorf("no detection latency: %+v", r.Recovery)
	}
}
