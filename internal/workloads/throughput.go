// Package workloads implements the paper's benchmarks over the simulated
// runtime: the modified osu_bw multithreaded point-to-point throughput
// benchmark (§4.1), the osu_latency-derived multithreaded latency benchmark
// (§6.1.1), the N2N all-to-all streaming benchmark (§5.2), and the
// ARMCI-style RMA benchmark with asynchronous progress (§6.1.2).
//
// workloads is part of the deterministic core (docs/ARCHITECTURE.md):
// each Run call builds an isolated engine from its params and seed.
package workloads

import (
	"fmt"

	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
	"mpicontend/internal/trace"
)

// ThroughputParams configures the multithreaded point-to-point throughput
// benchmark: sender processes on node 0 stream windows of nonblocking sends
// to paired receiver processes on node 1, each thread owning its own window
// of 64 requests completed with Waitall (paper §4.1/§4.4, Fig. 3b bottom).
type ThroughputParams struct {
	Lock simlock.Kind
	// Granularity selects the critical-section granularity (Fig. 1);
	// default Global, the paper's baseline.
	Granularity mpi.Granularity
	// SelectiveWakeup enables the event-driven progress extension (§9).
	SelectiveWakeup bool
	Binding         machine.Binding
	// Cost overrides the timing model (zero value = machine.Default()),
	// used by the calibration and ablation studies.
	Cost machine.CostModel
	// Threads per process.
	Threads int
	// MsgBytes is the message size.
	MsgBytes int64
	// Window is the request window per thread (paper: 64).
	Window int
	// Windows is how many windows each thread completes.
	Windows int
	// ProcsPerNode: 1 for the standard benchmark, 2 for the paper's
	// process-per-socket configuration (Fig. 5c).
	ProcsPerNode int
	Seed         uint64
	// TraceRank, if >= 0, attaches the §4.3/§4.4 analyses to that rank's
	// critical-section lock (the paper instruments the communication
	// runtime; the receiver side is where matching happens).
	TraceRank int
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
	// Tel attaches the telemetry plane (nil = disabled, zero overhead).
	Tel *telemetry.Recorder

	// onGrant is an extra per-rank grant observer for white-box tests.
	onGrant func(rank int) simlock.GrantFunc
}

// ThroughputWithHook runs the benchmark with an additional per-rank grant
// observer (used by cmd/biasprobe's timeline and white-box tests).
func ThroughputWithHook(p ThroughputParams, hook func(rank int) simlock.GrantFunc) (ThroughputResult, error) {
	p.onGrant = hook
	return Throughput(p)
}

// throughputWithCost runs the benchmark under an explicit cost model.
func throughputWithCost(p ThroughputParams, cm machine.CostModel) (ThroughputResult, error) {
	p.Cost = cm
	return Throughput(p)
}

// withDefaults fills unset fields.
func (p ThroughputParams) withDefaults() ThroughputParams {
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.MsgBytes <= 0 {
		p.MsgBytes = 1
	}
	if p.Window <= 0 {
		p.Window = 64
	}
	if p.Windows <= 0 {
		p.Windows = 10
	}
	if p.ProcsPerNode <= 0 {
		p.ProcsPerNode = 1
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// ThroughputResult aggregates one benchmark run.
type ThroughputResult struct {
	Messages int64
	SimNs    int64
	// RateMsgsPerSec is the aggregate message rate.
	RateMsgsPerSec float64
	// Fairness analysis of the traced rank (zero if tracing disabled).
	BiasCore, BiasSocket float64
	FairSamples          int
	// DanglingAvg is the §4.4 metric sampled at lock acquisitions of the
	// traced rank.
	DanglingAvg float64
	DanglingMax int64
	// UnexpectedHits across receiver ranks.
	UnexpectedHits int64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// Throughput runs the multithreaded point-to-point throughput benchmark.
func Throughput(p ThroughputParams) (ThroughputResult, error) {
	p = p.withDefaults()
	var res ThroughputResult

	fair := &trace.FairnessAnalyzer{}
	dang := &trace.DanglingProfiler{}

	cfg := mpi.Config{
		Topo:            machine.Nehalem2x4(2),
		Cost:            p.Cost,
		Lock:            p.Lock,
		Granularity:     p.Granularity,
		SelectiveWakeup: p.SelectiveWakeup,
		Binding:         p.Binding,
		ProcsPerNode:    p.ProcsPerNode,
		Seed:            p.Seed,
		Fault:           p.Fault,
		MaxWall:         p.MaxWall,
		Tel:             p.Tel,
	}
	if p.TraceRank >= 0 || p.onGrant != nil {
		cfg.OnGrant = func(rank int) simlock.GrantFunc {
			var fns []func(simlock.GrantInfo)
			if rank == p.TraceRank {
				fns = append(fns, fair.Observe, dang.Observe)
			}
			if p.onGrant != nil {
				if fn := p.onGrant(rank); fn != nil {
					fns = append(fns, fn)
				}
			}
			if len(fns) == 0 {
				return nil
			}
			return trace.Multi(fns...)
		}
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return res, err
	}
	// Sample dangling requests of the traced process only (the paper
	// instruments one runtime instance).
	if p.TraceRank >= 0 {
		tr := w.Proc(p.TraceRank)
		dang.Count = tr.DanglingNow
	}
	c := w.Comm()

	// Sender ranks live on node 0, receivers on node 1; pair i is
	// (i, ppn+i).
	ppn := p.ProcsPerNode
	var endAt int64
	for pair := 0; pair < ppn; pair++ {
		sendRank, recvRank := pair, ppn+pair
		for t := 0; t < p.Threads; t++ {
			w.Spawn(sendRank, "send", func(th *mpi.Thread) {
				rs := make([]*mpi.Request, 0, p.Window)
				for win := 0; win < p.Windows; win++ {
					rs = rs[:0]
					for i := 0; i < p.Window; i++ {
						th.S.Sleep(th.P.Cost().AppPerMessageWork)
						rs = append(rs, th.Isend(c, recvRank, 0, p.MsgBytes, nil))
					}
					th.Waitall(rs) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Waitall
				}
			})
			w.Spawn(recvRank, "recv", func(th *mpi.Thread) {
				rs := make([]*mpi.Request, 0, p.Window)
				for win := 0; win < p.Windows; win++ {
					rs = rs[:0]
					for i := 0; i < p.Window; i++ {
						th.S.Sleep(th.P.Cost().AppPerMessageWork)
						rs = append(rs, th.Irecv(c, sendRank, 0))
					}
					th.Waitall(rs) //simcheck:allow errdrop benchmark loop under the fatal handler; errors panic inside Waitall
					if th.S.Now() > endAt {
						endAt = th.S.Now()
					}
				}
			})
		}
	}
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("throughput(%v,%dB,%dt): %w", p.Lock, p.MsgBytes, p.Threads, err)
	}

	res.Messages = int64(ppn) * int64(p.Threads) * int64(p.Window) * int64(p.Windows)
	res.SimNs = endAt
	if endAt > 0 {
		res.RateMsgsPerSec = float64(res.Messages) / (float64(endAt) / 1e9)
	}
	res.BiasCore = fair.BiasFactorCore()
	res.BiasSocket = fair.BiasFactorSocket()
	res.FairSamples = fair.Samples()
	res.DanglingAvg = dang.Average()
	res.DanglingMax = dang.Max()
	for _, pr := range w.Procs {
		res.UnexpectedHits += pr.UnexpectedHits
	}
	res.Net = w.NetStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("throughput(%v,%dB,%dt): %w", p.Lock, p.MsgBytes, p.Threads, err)
		}
	}
	return res, nil
}
