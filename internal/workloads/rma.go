package workloads

import (
	"fmt"

	"mpicontend/internal/armci"
	"mpicontend/internal/fault"
	"mpicontend/internal/machine"
	"mpicontend/internal/mpi"
	"mpicontend/internal/simlock"
	"mpicontend/internal/telemetry"
)

// RMAOp selects the one-sided operation benchmarked.
type RMAOp int

const (
	// OpPut benchmarks MPI_Put-style transfers.
	OpPut RMAOp = iota
	// OpGet benchmarks MPI_Get-style transfers.
	OpGet
	// OpAcc benchmarks MPI_Accumulate-style transfers.
	OpAcc
)

// String names the operation.
func (o RMAOp) String() string {
	switch o {
	case OpPut:
		return "Put"
	case OpGet:
		return "Get"
	default:
		return "Accumulate"
	}
}

// RMAParams configures the §6.1.2 experiment: a single-threaded origin
// process performs contiguous RMA data transfers to/from all other
// processes while every process runs an asynchronous progress thread —
// which is what drags the runtime into MPI_THREAD_MULTIPLE and makes lock
// arbitration matter even with one application thread.
type RMAParams struct {
	Lock simlock.Kind
	Op   RMAOp
	// Procs is the number of processes (paper: 8).
	Procs int
	// ElemBytes is the size of each contiguous data element (must be a
	// multiple of 8; elements are float64 vectors).
	ElemBytes int64
	// Ops is the number of operations issued per target.
	Ops int
	// Flush after this many outstanding ops (window).
	Window int
	Seed   uint64
	// SelectiveWakeup enables the event-driven progress extension (§9).
	SelectiveWakeup bool
	// Fault configures the fault-injection plane (zero = perfect network).
	Fault fault.Config
	// MaxWall bounds real run time in wall-clock ns (0 = unlimited).
	MaxWall int64
	// Tel attaches the telemetry plane (nil = disabled, zero overhead).
	Tel *telemetry.Recorder

	// onGrant is an extra per-rank grant observer for white-box tests.
	onGrant func(rank int) simlock.GrantFunc
}

// rmaWithHook runs the benchmark with a per-rank grant observer attached.
func rmaWithHook(p RMAParams, hook func(rank int) simlock.GrantFunc) (RMAResult, error) {
	p.onGrant = hook
	return RMA(p)
}

func (p RMAParams) withDefaults() RMAParams {
	if p.Procs <= 0 {
		p.Procs = 8
	}
	if p.ElemBytes < 8 {
		p.ElemBytes = 8
	}
	if p.Ops <= 0 {
		p.Ops = 16
	}
	if p.Window <= 0 {
		p.Window = 8
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// RMAResult reports the element transfer rate.
type RMAResult struct {
	Elements       int64
	SimNs          int64
	RateElemPerSec float64
	// Net holds the resilience counters (all zero on a perfect network).
	Net mpi.NetStats
}

// RMA runs the one-sided benchmark with asynchronous progress.
func RMA(p RMAParams) (RMAResult, error) {
	p = p.withDefaults()
	var res RMAResult
	// Paper runs 8 processes on the cluster; place 4 per node on 2 nodes.
	ppn := 4
	nodes := (p.Procs + ppn - 1) / ppn
	if p.Procs < ppn {
		ppn = p.Procs
		nodes = 1
	}
	w, err := mpi.NewWorld(mpi.Config{
		Topo:            machine.Nehalem2x4(nodes),
		Lock:            p.Lock,
		ProcsPerNode:    ppn,
		Seed:            p.Seed,
		OnGrant:         p.onGrant,
		SelectiveWakeup: p.SelectiveWakeup,
		Fault:           p.Fault,
		MaxWall:         p.MaxWall,
		Tel:             p.Tel,
	})
	if err != nil {
		return res, err
	}
	count := p.ElemBytes / 8
	rt := armci.Init(w, count*2)
	vals := make([]float64, count)
	for i := range vals {
		vals[i] = float64(i)
	}
	// Asynchronous progress on every process (incl. the origin: its own
	// progress thread is the one that monopolizes the mutex, §6.1.2).
	for r := 0; r < p.Procs; r++ {
		w.SpawnAsyncProgress(r)
	}
	var endAt int64
	w.Spawn(0, "origin", func(th *mpi.Thread) {
		hs := make([]*armci.Handle, 0, p.Window)
		for i := 0; i < p.Ops; i++ {
			for target := 1; target < p.Procs; target++ {
				// Application work between one-sided calls (ARMCI client
				// logic); this is when the progress thread takes over the
				// lock.
				th.S.Sleep(w.Cfg.Cost.AppPerMessageWork)
				var h *armci.Handle
				switch p.Op {
				case OpPut:
					h = rt.NbPut(th, target, 0, vals)
				case OpGet:
					h = rt.NbGet(th, target, 0, count)
				default:
					h = rt.NbAcc(th, target, 0, vals)
				}
				hs = append(hs, h)
				if len(hs) >= p.Window {
					rt.Fence(th, hs)
					hs = hs[:0]
				}
			}
		}
		if len(hs) > 0 {
			rt.Fence(th, hs)
		}
		endAt = th.S.Now()
	})
	if err := w.Run(); err != nil {
		return res, fmt.Errorf("rma(%v,%v,%dB): %w", p.Lock, p.Op, p.ElemBytes, err)
	}
	res.Elements = int64(p.Ops) * int64(p.Procs-1)
	res.SimNs = endAt
	if endAt > 0 {
		res.RateElemPerSec = float64(res.Elements) / (float64(endAt) / 1e9)
	}
	res.Net = w.NetStats()
	if p.Fault.Enabled() && !p.Fault.CrashesEnabled() {
		if err := w.CheckClean(); err != nil {
			return res, fmt.Errorf("rma(%v,%v,%dB): %w", p.Lock, p.Op, p.ElemBytes, err)
		}
	}
	return res, nil
}
