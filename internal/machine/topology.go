// Package machine models the hardware substrate of the reproduction: a
// cluster of NUMA nodes with a socket/core hierarchy, the cache-transfer
// latencies between cores that drive lock-arbitration bias, and thread
// binding policies (compact/scatter) as used in the paper's experiments.
//
// The default preset mirrors Table 1 of the paper: dual-socket Intel Xeon
// E5540 (Nehalem), 4 cores per socket, SMT disabled, nodes connected by a
// Mellanox QDR InfiniBand fabric.
//
// machine is part of the deterministic core (docs/ARCHITECTURE.md).
package machine

import "fmt"

// Place identifies a hardware thread context: a core on a socket on a node.
// With SMT disabled (as in the paper), one software thread binds per core.
type Place struct {
	Node   int
	Socket int // socket index within the node
	Core   int // core index within the socket
}

// String renders the place as node/socket/core.
func (p Place) String() string {
	return fmt.Sprintf("n%d.s%d.c%d", p.Node, p.Socket, p.Core)
}

// SameCore reports whether a and b are the same hardware context.
func (p Place) SameCore(q Place) bool { return p == q }

// SameSocket reports whether a and b share a socket (possibly same core).
func (p Place) SameSocket(q Place) bool {
	return p.Node == q.Node && p.Socket == q.Socket
}

// SameNode reports whether a and b share a node.
func (p Place) SameNode(q Place) bool { return p.Node == q.Node }

// Topology describes the shape of the simulated cluster.
type Topology struct {
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int
}

// Nehalem2x4 returns the paper's Table 1 node shape for n nodes.
func Nehalem2x4(nodes int) Topology {
	return Topology{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: 4}
}

// CoresPerNode returns the number of cores on each node.
func (t Topology) CoresPerNode() int { return t.SocketsPerNode * t.CoresPerSocket }

// TotalCores returns the number of cores in the whole cluster.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode() }

// Validate reports an error for non-positive dimensions.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.SocketsPerNode <= 0 || t.CoresPerSocket <= 0 {
		return fmt.Errorf("machine: invalid topology %+v", t)
	}
	return nil
}

// PlaceOf maps a node-local core index (0..CoresPerNode-1) to a Place,
// numbering cores socket-major: cores 0..CoresPerSocket-1 are socket 0.
func (t Topology) PlaceOf(node, localCore int) Place {
	return Place{
		Node:   node,
		Socket: localCore / t.CoresPerSocket,
		Core:   localCore % t.CoresPerSocket,
	}
}

// Binding is a policy assigning the i-th thread of a process to a core.
type Binding int

const (
	// Compact fills all cores of a socket before moving to the next, as
	// in the paper's "Compact" binding (first four threads on socket 0).
	Compact Binding = iota
	// Scatter round-robins threads across sockets.
	Scatter
)

// String names the binding policy.
func (b Binding) String() string {
	switch b {
	case Compact:
		return "compact"
	case Scatter:
		return "scatter"
	default:
		return fmt.Sprintf("Binding(%d)", int(b))
	}
}

// Bind returns the place for thread index i of a process whose core
// allotment starts at node-local core firstCore and spans coreCount cores.
// Threads beyond coreCount wrap around (oversubscription).
func (t Topology) Bind(b Binding, node, firstCore, coreCount, i int) Place {
	if coreCount <= 0 {
		coreCount = t.CoresPerNode() - firstCore
	}
	i %= coreCount
	switch b {
	case Compact:
		return t.PlaceOf(node, firstCore+i)
	case Scatter:
		// Round-robin the allotment's cores across sockets: visit core
		// offsets 0, cps, 2*cps... then 1, cps+1, ... within the span.
		cps := t.CoresPerSocket
		socketsSpanned := (coreCount + cps - 1) / cps
		if firstCore%cps == 0 && coreCount >= cps && socketsSpanned > 1 {
			row := i % socketsSpanned
			col := i / socketsSpanned
			return t.PlaceOf(node, firstCore+row*cps+col)
		}
		return t.PlaceOf(node, firstCore+i)
	default:
		return t.PlaceOf(node, firstCore+i)
	}
}
