package machine

import (
	"fmt"
	"strings"
)

// CostModel collects every timing constant of the simulation, in integer
// nanoseconds (bandwidths in bytes/second). The defaults are calibrated to
// the paper's platform (Table 1): dual-socket Nehalem at 2.6 GHz with a
// Mellanox QDR InfiniBand fabric driven through MXM.
//
// The lock-arbitration constants are the heart of the reproduction: a
// released lock's cache line is observed by other cores only after the
// line-transfer latency from the releaser's cache, which is what biases
// NPTL mutex arbitration toward the previous owner's core and socket
// (paper §4.2–4.3).
type CostModel struct {
	// --- Cache/coherence latencies for a contended lock line ---

	// SameCoreReuse is the cost for a thread to touch a line already in
	// its own L1 (the releaser immediately re-acquiring).
	SameCoreReuse int64
	// SameSocketTransfer is the line transfer cost between cores sharing
	// an L3 (intra-socket snoop).
	SameSocketTransfer int64
	// CrossSocketTransfer is the line transfer cost across the QPI link.
	CrossSocketTransfer int64

	// --- Spin/futex behaviour (NPTL model, §2.2) ---

	// SpinCheckPeriod is the interval between successive polls of a
	// busy-waiting thread.
	SpinCheckPeriod int64
	// CASPenalty is the extra coherence delay added per additional
	// contender racing a compare-and-swap on the same line (CAS storm;
	// ticket locks avoid it, §5.1).
	CASPenalty int64
	// CASJitter is the maximum random perturbation of a CAS race arrival
	// (models pipeline/coherence nondeterminism). Must be > 0 so the
	// mutex race is not fully deterministic.
	CASJitter int64
	// MutexSpinBudget is how long a thread re-tries in user space before
	// sleeping in the kernel with FUTEX_WAIT. Default NPTL mutexes
	// (PTHREAD_MUTEX_TIMED_NP) try the CAS essentially once and then
	// sleep (paper §2.2), so this is small.
	MutexSpinBudget int64
	// FutexWake is the cost from FUTEX_WAKE to the woken thread retrying
	// the lock in user space (syscall + scheduler latency).
	FutexWake int64
	// FutexWakeJitter is the maximum extra random wake latency (kernel
	// scheduling noise). It must be comparable to the lock-cycle period,
	// or wake times phase-lock to the release cadence.
	FutexWakeJitter int64
	// FutexWakeSyscall is the cost the *releaser* pays to execute the
	// FUTEX_WAKE system call when sleepers exist. It sits on the unlock
	// critical path — a key reason a contended pthread mutex is slower
	// than a ticket lock, whose release is a single store.
	FutexWakeSyscall int64

	// --- MPI runtime path costs (§4.4, Fig. 6a) ---

	// AtomicOpCost is the cost of one uncontended atomic read-modify-
	// write (reference counts, lock-free queue operations; paper Fig. 1's
	// "Lock-Free" column).
	AtomicOpCost int64
	// CSStateLines is the number of runtime-state cache lines (request
	// queues, progress-engine state) that follow the critical section
	// from core to core: when the CS owner changes, the new owner pays
	// CSStateLines * Transfer(prev, new) before doing useful work. This
	// is what makes a multithreaded runtime slower than single-threaded
	// even under a perfectly fair lock (paper Fig. 8a: multithreaded
	// throughput is ~1/3 of single-threaded).
	CSStateLines int64
	// MainPathWork is the critical-section cost of an MPI call's main
	// path (allocate request, enqueue, bookkeeping).
	MainPathWork int64
	// ProgressPollWork is the cost of one progress-engine poll iteration
	// (check network completion queue) while holding the lock.
	ProgressPollWork int64
	// ProgressHandleWork is the cost of handling one completion event
	// (matching, state transition).
	ProgressHandleWork int64
	// QueueSearchPerItem is the per-item cost of scanning the posted or
	// unexpected queue during matching.
	QueueSearchPerItem int64
	// UnexpectedOverhead is the extra cost of buffering an arrival that
	// found no posted receive (allocate + enqueue an unexpected-queue
	// element), beyond the payload copy.
	UnexpectedOverhead int64
	// UnexpectedMatchOverhead is the extra cost of satisfying a receive
	// from the unexpected queue (dequeue, rendezvous bookkeeping, second
	// copy setup) rather than from a fresh arrival.
	UnexpectedMatchOverhead int64
	// RequestFreeWork is the cost of completing+freeing a request in the
	// main path of Wait/Test.
	RequestFreeWork int64
	// ProgressLoopOverhead is the non-critical work between releasing and
	// re-acquiring the lock inside the progress loop (the yield window in
	// which other threads may grab the lock).
	ProgressLoopOverhead int64
	// YieldJitter is the maximum extra random delay added to each
	// progress-loop yield (variable bookkeeping between polls). It
	// controls how often waiting threads slip in ahead of the releaser's
	// re-acquisition and thereby the strength of mutex monopolization.
	YieldJitter int64
	// AppPerMessageWork is the user-side overhead between MPI calls in
	// benchmark loops.
	AppPerMessageWork int64

	// --- Memory copies ---

	// CopyBandwidth is the intra-process memcpy bandwidth (bytes/s) used
	// for unexpected-message buffering and shared-memory transfers.
	CopyBandwidth int64
	// AccumulateBandwidth is the element-wise reduction bandwidth for
	// MPI_Accumulate-style operations (bytes/s).
	AccumulateBandwidth int64

	// --- Network fabric (QDR InfiniBand via MXM) ---

	// NetLatency is the one-way small-message latency between nodes.
	NetLatency int64
	// NetBandwidth is the per-NIC bandwidth (bytes/s).
	NetBandwidth int64
	// NetOverhead is the per-message injection overhead at the NIC.
	NetOverhead int64
	// IntraNodeLatency is the one-way latency between processes on the
	// same node (shared-memory path).
	IntraNodeLatency int64
	// IntraNodeBandwidth is the shared-memory transfer bandwidth.
	IntraNodeBandwidth int64
	// EagerThreshold is the message size (bytes) at or below which the
	// eager protocol is used; larger messages use rendezvous.
	EagerThreshold int64

	// --- Computation ---

	// FlopCost is the cost of one floating-point op stream element in
	// compute kernels (amortized, includes memory traffic).
	FlopCost int64
	// RemoteMemPenalty scales computation touching memory homed on the
	// other socket (numerator over 100; 0 = no penalty).
	RemoteMemPenaltyPct int64
}

// Default returns the calibrated cost model described in DESIGN.md §5.
func Default() CostModel {
	return CostModel{
		SameCoreReuse:       5,
		SameSocketTransfer:  45,
		CrossSocketTransfer: 110,

		SpinCheckPeriod:  10,
		CASPenalty:       8,
		CASJitter:        40,
		MutexSpinBudget:  50, // NPTL: one user-space retry, then FUTEX_WAIT
		FutexWake:        3000,
		FutexWakeJitter:  4000,
		FutexWakeSyscall: 150,

		AtomicOpCost:            15,
		CSStateLines:            4,
		MainPathWork:            150,
		ProgressPollWork:        400,
		ProgressHandleWork:      80,
		QueueSearchPerItem:      12,
		UnexpectedOverhead:      300,
		UnexpectedMatchOverhead: 200,
		RequestFreeWork:         60,
		ProgressLoopOverhead:    10,
		YieldJitter:             20,
		AppPerMessageWork:       300,

		CopyBandwidth:       6 << 30, // 6 GB/s memcpy
		AccumulateBandwidth: 3 << 30,

		NetLatency:         1300,
		NetBandwidth:       3200 << 20, // ~3.2 GB/s QDR payload
		NetOverhead:        100,
		IntraNodeLatency:   400,
		IntraNodeBandwidth: 8 << 30,
		EagerThreshold:     32 << 10,

		FlopCost:            1,
		RemoteMemPenaltyPct: 35,
	}
}

// Transfer returns the latency for a core at dst to observe a cache line
// last written by a core at src.
func (c CostModel) Transfer(src, dst Place) int64 {
	switch {
	case src.SameCore(dst):
		return c.SameCoreReuse
	case src.SameSocket(dst):
		return c.SameSocketTransfer
	default:
		// Cross-socket; cross-node lock sharing cannot happen (locks are
		// per-process) but fall through to the worst case defensively.
		return c.CrossSocketTransfer
	}
}

// CopyTime returns the time to memcpy n bytes.
func (c CostModel) CopyTime(n int64) int64 { return scaleByBW(n, c.CopyBandwidth) }

// AccumulateTime returns the time to reduce n bytes element-wise.
func (c CostModel) AccumulateTime(n int64) int64 { return scaleByBW(n, c.AccumulateBandwidth) }

func scaleByBW(n, bw int64) int64 {
	if n <= 0 || bw <= 0 {
		return 0
	}
	t := n * 1e9 / bw
	if t < 1 {
		t = 1
	}
	return t
}

// Spec describes the modelled platform in the style of the paper's Table 1.
type Spec struct {
	Architecture   string
	Processor      string
	ClockGHz       float64
	Sockets        int
	CoresPerSocket int
	L3KB           int
	L2KB           int
	Nodes          int
	Interconnect   string
}

// Table1 returns the paper's platform specification for the given topology.
func Table1(t Topology) Spec {
	return Spec{
		Architecture:   "Nehalem (simulated)",
		Processor:      "Xeon E5540 (simulated)",
		ClockGHz:       2.6,
		Sockets:        t.SocketsPerNode,
		CoresPerSocket: t.CoresPerSocket,
		L3KB:           8192,
		L2KB:           256,
		Nodes:          t.Nodes,
		Interconnect:   "Mellanox QDR (modelled)",
	}
}

// String renders the spec as an aligned two-column table.
func (s Spec) String() string {
	var b strings.Builder
	row := func(k string, v interface{}) { fmt.Fprintf(&b, "%-22s %v\n", k, v) }
	row("Architecture", s.Architecture)
	row("Processor", s.Processor)
	row("Clock frequency", fmt.Sprintf("%.1f GHz", s.ClockGHz))
	row("Number of sockets", s.Sockets)
	row("Cores per socket", s.CoresPerSocket)
	row("L3 Size", fmt.Sprintf("%d KB", s.L3KB))
	row("L2 Size", fmt.Sprintf("%d KB", s.L2KB))
	row("Number of nodes", s.Nodes)
	row("Interconnect", s.Interconnect)
	return b.String()
}
