package machine

import (
	"testing"
	"testing/quick"
)

func TestNehalemPreset(t *testing.T) {
	topo := Nehalem2x4(310)
	if topo.CoresPerNode() != 8 {
		t.Fatalf("cores per node = %d, want 8", topo.CoresPerNode())
	}
	if topo.TotalCores() != 2480 {
		t.Fatalf("total cores = %d, want 2480", topo.TotalCores())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Nodes: 0, SocketsPerNode: 2, CoresPerSocket: 4},
		{Nodes: 1, SocketsPerNode: 0, CoresPerSocket: 4},
		{Nodes: 1, SocketsPerNode: 2, CoresPerSocket: -1},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", tp)
		}
	}
}

func TestPlaceOf(t *testing.T) {
	topo := Nehalem2x4(2)
	cases := []struct {
		local int
		want  Place
	}{
		{0, Place{0, 0, 0}},
		{3, Place{0, 0, 3}},
		{4, Place{0, 1, 0}},
		{7, Place{0, 1, 3}},
	}
	for _, c := range cases {
		if got := topo.PlaceOf(0, c.local); got != c.want {
			t.Fatalf("PlaceOf(0,%d) = %v, want %v", c.local, got, c.want)
		}
	}
}

func TestCompactBinding(t *testing.T) {
	topo := Nehalem2x4(1)
	// Paper §4: "bind the first four threads to cores on the first socket
	// and the rest to cores on the second".
	for i := 0; i < 8; i++ {
		p := topo.Bind(Compact, 0, 0, 8, i)
		wantSocket := 0
		if i >= 4 {
			wantSocket = 1
		}
		if p.Socket != wantSocket {
			t.Fatalf("compact thread %d on socket %d, want %d", i, p.Socket, wantSocket)
		}
	}
}

func TestScatterBinding(t *testing.T) {
	topo := Nehalem2x4(1)
	// Scatter alternates sockets: 0,1,0,1,...
	for i := 0; i < 8; i++ {
		p := topo.Bind(Scatter, 0, 0, 8, i)
		if p.Socket != i%2 {
			t.Fatalf("scatter thread %d on socket %d, want %d", i, p.Socket, i%2)
		}
	}
}

func TestScatterBindingDistinctCores(t *testing.T) {
	topo := Nehalem2x4(1)
	seen := map[Place]bool{}
	for i := 0; i < 8; i++ {
		p := topo.Bind(Scatter, 0, 0, 8, i)
		if seen[p] {
			t.Fatalf("scatter reused core %v", p)
		}
		seen[p] = true
	}
}

func TestBindSubsetAllotment(t *testing.T) {
	topo := Nehalem2x4(1)
	// One process per socket: process 1 owns cores 4..7.
	for i := 0; i < 4; i++ {
		p := topo.Bind(Compact, 0, 4, 4, i)
		if p.Socket != 1 {
			t.Fatalf("thread %d escaped its socket: %v", i, p)
		}
	}
}

func TestBindOversubscriptionWraps(t *testing.T) {
	topo := Nehalem2x4(1)
	a := topo.Bind(Compact, 0, 0, 4, 0)
	b := topo.Bind(Compact, 0, 0, 4, 4)
	if a != b {
		t.Fatalf("oversubscribed thread did not wrap: %v vs %v", a, b)
	}
}

func TestTransferHierarchy(t *testing.T) {
	cm := Default()
	a := Place{0, 0, 0}
	sameSocket := Place{0, 0, 1}
	crossSocket := Place{0, 1, 0}
	if !(cm.Transfer(a, a) < cm.Transfer(a, sameSocket)) {
		t.Fatal("same-core should be cheaper than same-socket")
	}
	if !(cm.Transfer(a, sameSocket) < cm.Transfer(a, crossSocket)) {
		t.Fatal("same-socket should be cheaper than cross-socket")
	}
}

func TestTransferSymmetryProperty(t *testing.T) {
	cm := Default()
	topo := Nehalem2x4(2)
	f := func(an, al, bn, bl uint8) bool {
		a := topo.PlaceOf(int(an)%2, int(al)%8)
		b := topo.PlaceOf(int(bn)%2, int(bl)%8)
		return cm.Transfer(a, b) == cm.Transfer(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyTimeMonotone(t *testing.T) {
	cm := Default()
	if cm.CopyTime(0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
	prev := int64(0)
	for _, n := range []int64{1, 64, 4096, 1 << 20} {
		ct := cm.CopyTime(n)
		if ct < prev {
			t.Fatalf("CopyTime not monotone at %d bytes", n)
		}
		prev = ct
	}
	if cm.CopyTime(1) < 1 {
		t.Fatal("nonzero copy should cost at least 1ns")
	}
}

func TestTable1Spec(t *testing.T) {
	s := Table1(Nehalem2x4(310))
	if s.Sockets != 2 || s.CoresPerSocket != 4 || s.Nodes != 310 {
		t.Fatalf("spec mismatch: %+v", s)
	}
	out := s.String()
	if len(out) == 0 {
		t.Fatal("empty spec rendering")
	}
}

func TestPlaceString(t *testing.T) {
	p := Place{Node: 1, Socket: 0, Core: 3}
	if p.String() != "n1.s0.c3" {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestBindingString(t *testing.T) {
	if Compact.String() != "compact" || Scatter.String() != "scatter" {
		t.Fatal("binding names changed")
	}
}
