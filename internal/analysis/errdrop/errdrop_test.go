package errdrop_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/errdrop"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/errdrop/testdata/src/a")
}

func TestScope(t *testing.T) {
	if errdrop.Analyzer.Applies("mpicontend/mpisim") {
		t.Errorf("errdrop applies only under internal/")
	}
	if !errdrop.Analyzer.Applies("mpicontend/internal/workloads") {
		t.Errorf("errdrop must apply to internal packages")
	}
}
