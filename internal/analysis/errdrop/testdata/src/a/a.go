// Package a is golden-test input for the errdrop analyzer: discarded
// results of Thread.Wait/Waitall/Test must be flagged; consumed results,
// other receivers, and annotated sites must not.
package a

// Thread models the runtime's completion API shape.
type Thread struct{}

// Request models an in-flight operation.
type Request struct{}

// Wait blocks until r completes and returns its error.
func (th *Thread) Wait(r *Request) error { return nil }

// Waitall blocks until every request completes.
func (th *Thread) Waitall(rs []*Request) error { return nil }

// Test polls once.
func (th *Thread) Test(r *Request) bool { return false }

// Barrier is a non-Thread receiver with a same-named method.
type Barrier struct{}

// Wait joins the barrier; it has no error to drop.
func (b *Barrier) Wait(th *Thread) {}

func drops(th *Thread, r *Request, rs []*Request) {
	th.Wait(r)     // want `result of Thread.Wait discarded`
	th.Waitall(rs) // want `result of Thread.Waitall discarded`
	th.Test(r)     // want `result of Thread.Test discarded`
	_ = th.Wait(r) // want `result of Thread.Wait discarded`
}

func consumes(th *Thread, r *Request, rs []*Request) error {
	if err := th.Wait(r); err != nil {
		return err
	}
	for !th.Test(r) {
	}
	return th.Waitall(rs)
}

func otherReceiver(b *Barrier, th *Thread) {
	b.Wait(th) // not a Thread: fine
}

func annotated(th *Thread, r *Request) {
	th.Wait(r) //simcheck:allow errdrop benchmark loop on a fault-free world
}
