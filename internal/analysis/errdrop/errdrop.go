// Package errdrop flags completion calls on the simulated MPI runtime
// whose error result is silently discarded: a bare statement (or a blank
// assignment) of Thread.Wait, Thread.Waitall, or Thread.Test. With the
// fault plane armed these calls are the only place ErrProcFailed,
// ErrRevoked, or ErrTimeout can surface; dropping the result turns a
// detected rank failure back into a silent hang or wrong answer — the
// exact bug class the recovery machinery exists to prevent.
//
// Call sites that are legitimately fire-and-forget (benchmark inner loops
// on fault-free worlds, fatal-error-handler code where errors panic
// before returning) carry a //simcheck:allow errdrop annotation with the
// justification. Test files are skipped.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"mpicontend/internal/analysis"
)

// Analyzer is the errdrop rule.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "the Errcode result of Thread.Wait/Waitall/Test must be consumed; " +
		"a discarded result swallows process-failure, revocation, and " +
		"timeout errors",
	Applies: func(path string) bool {
		return analysis.PathHasSegment(path, "internal")
	},
	Run: run,
}

// dropped names the completion methods whose result must be consumed,
// with the reason shown in the diagnostic.
var dropped = map[string]string{
	"Wait":    "error",
	"Waitall": "first error",
	"Test":    "completion (and with it the request's error path)",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				check(pass, st.X)
			case *ast.AssignStmt:
				// A blank assignment is still a discard: `_ = th.Wait(r)`
				// deserves the same justification a bare statement does.
				if len(st.Lhs) == 1 && len(st.Rhs) == 1 && isBlank(st.Lhs[0]) {
					check(pass, st.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

// check reports expr if it is a completion call on a Thread whose result
// the surrounding statement drops.
func check(pass *analysis.Pass, expr ast.Expr) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	what, ok := dropped[sel.Sel.Name]
	if !ok {
		return
	}
	if !isThread(pass.Info.Types[sel.X].Type) {
		return
	}
	pass.Reportf(call.Pos(),
		"result of Thread.%s discarded — it carries the %s; consume it or annotate with //simcheck:allow errdrop <reason>",
		sel.Sel.Name, what)
}

// isThread reports whether t is the runtime's Thread type (possibly via a
// pointer). Matched by name so the analyzer's own golden testdata can
// model the shape without importing internal/mpi.
func isThread(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Thread"
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
