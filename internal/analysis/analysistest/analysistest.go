// Package analysistest runs a simcheck analyzer over a testdata package
// and matches its diagnostics against golden expectations embedded in the
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	m := map[int]int{}
//	for k := range m { // want `nondeterministic iteration order`
//		fmt.Println(k)
//	}
//
// Each `// want` comment holds one or more backquoted or double-quoted
// regular expressions, matched (unordered) against the diagnostics
// reported on that line. Unmatched expectations and unexpected
// diagnostics both fail the test.
package analysistest

import (
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mpicontend/internal/analysis"
)

// expectation is one want-regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Pkg names one testdata package for RunPkgs: its directory (relative to
// the test's working directory) and the import path it is analyzed under.
type Pkg struct {
	Dir        string
	ImportPath string
}

// Run analyzes the package in dir (relative to the test's working
// directory) as if it had the given import path, and checks the
// diagnostics against the `// want` comments in its files.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	if a.Applies != nil && !a.Applies(importPath) {
		t.Fatalf("analysistest: analyzer %s does not apply to import path %s", a.Name, importPath)
	}
	RunPkgs(t, a, []Pkg{{Dir: dir, ImportPath: importPath}})
}

// RunPkgs analyzes several testdata packages as one unit — a shared call
// graph over all of them — so cross-package fact propagation (src/b
// importing src/a) can be golden-tested. Every package's import path is
// registered as a loader overlay first, so the packages may import each
// other by their fake mpicontend/... paths. Packages the analyzer does not
// apply to still join the graph (they model exempt zones) but report no
// local diagnostics. `// want` comments are honored in every directory.
func RunPkgs(t *testing.T, a *analysis.Analyzer, pkgs []Pkg) {
	t.Helper()
	modRoot, err := findModRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	absDirs := make([]string, len(pkgs))
	for i, p := range pkgs {
		abs, err := filepath.Abs(p.Dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		absDirs[i] = abs
		loader.AddOverlay(p.ImportPath, abs)
	}

	var loaded []*analysis.Package
	var wants []*expectation
	for i, p := range pkgs {
		lp, err := loader.LoadDir(absDirs[i], p.ImportPath)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", p.Dir, err)
		}
		if len(lp) == 0 {
			t.Fatalf("analysistest: no Go files in %s", p.Dir)
		}
		loaded = append(loaded, lp...)
		w, err := parseWants(absDirs[i])
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants = append(wants, w...)
	}

	diags, err := analysis.RunAll(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// consume marks the first unused expectation matching the diagnostic.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// parseWants scans every .go file in dir for `// want` comments using the
// Go scanner, so string literals containing "want" are not misparsed.
func parseWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		file := fset.AddFile(path, fset.Base(), len(src))
		var s scanner.Scanner
		s.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := s.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			text := strings.TrimPrefix(lit, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			line := fset.Position(pos).Line
			res, err := parseRegexps(rest)
			if err != nil {
				return nil, err
			}
			for _, re := range res {
				wants = append(wants, &expectation{file: path, line: line, re: re})
			}
		}
	}
	return wants, nil
}

// parseRegexps splits a want payload into its quoted regexps.
func parseRegexps(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return res, nil
		}
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				lit, s = s[1:], ""
			} else {
				lit, s = s[1:1+end], s[end+2:]
			}
		case '"':
			// Find the closing quote, honoring escapes, then unquote.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			var err error
			lit, err = strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			s = s[i+1:]
		default:
			// Bare word: match it literally.
			fields := strings.SplitN(s, " ", 2)
			lit, s = regexp.QuoteMeta(fields[0]), ""
			if len(fields) == 2 {
				s = fields[1]
			}
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
	}
}

// findModRoot walks up from the working directory to the go.mod root.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
