package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded analysis unit: a package's files (including its
// in-package _test.go files) with full type information. External test
// packages (package foo_test) load as a separate unit that shares the
// directory's import path for analyzer-scoping purposes.
type Package struct {
	Path  string // import path used for analyzer scoping
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module without the
// go command or network access: module-internal imports resolve by mapping
// the import path onto the module root, and standard-library imports
// resolve through the stdlib source importer (GOROOT/src).
type Loader struct {
	ModPath string // module path from go.mod (e.g. "mpicontend")
	ModRoot string // absolute directory containing go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	cache   map[string]*types.Package // import-resolution cache (non-test files only)
	overlay map[string]string         // import path → directory, for testdata packages
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModPath: modPath,
		ModRoot: modRoot,
		fset:    fset,
		std:     std,
		cache:   map[string]*types.Package{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// AddOverlay maps an import path onto a directory outside the module's
// normal layout, so multi-package testdata (src/b importing src/a under a
// fake mpicontend/... path) resolves. Register overlays before loading.
func (l *Loader) AddOverlay(importPath, dir string) {
	if l.overlay == nil {
		l.overlay = map[string]string{}
	}
	l.overlay[importPath] = dir
}

// modulePath reads the module path out of modRoot/go.mod.
func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", modRoot)
}

// Import resolves an import path for go/types: module-internal paths load
// from source under the module root, everything else through the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if dir, ok := l.overlay[path]; ok {
		files, err := l.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		files, err := l.parseDir(filepath.Join(l.ModRoot, rel), func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}

// parseDir parses the .go files of dir accepted by keep (nil keeps all).
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || (keep != nil && !keep(name)) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo returns a fully-populated types.Info for analysis.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadDir loads the analysis units of one directory: the package itself
// (with its in-package test files) and, if present, the external _test
// package. importPath is the directory's import path; it is used both for
// import resolution and for analyzer scoping.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	all, err := l.parseDir(dir, nil)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Split files into the base package and an external test package.
	var baseName string
	for _, f := range all {
		name := f.Name.Name
		if !strings.HasSuffix(name, "_test") {
			baseName = name
			break
		}
	}
	var base, ext []*ast.File
	for _, f := range all {
		if baseName != "" && f.Name.Name == baseName+"_test" {
			ext = append(ext, f)
		} else {
			base = append(base, f)
		}
	}
	var pkgs []*Package
	if len(base) > 0 {
		p, err := l.check(importPath, importPath, dir, base)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(ext) > 0 {
		p, err := l.check(importPath+"_test", importPath, dir, ext)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check type-checks files as checkPath, scoping the result under scopePath.
func (l *Loader) check(checkPath, scopePath, dir string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(checkPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  scopePath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// PackageDirs walks the module rooted at modRoot and returns the relative
// directories containing .go files, sorted, skipping testdata, hidden, and
// vendor directories.
func PackageDirs(modRoot string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(modRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			rel, err := filepath.Rel(modRoot, filepath.Dir(path))
			if err != nil {
				return err
			}
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
