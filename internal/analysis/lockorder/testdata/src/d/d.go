// Package d drives src/c's sharded owner cross-package, so the indexed
// class flows through call-edge summaries: the wrappers' net lock
// effects are lifted into this package's frames, where same-class
// re-acquisition must stay silent while ordering against other locks is
// still tracked.
package d

import "mpicontend/tdlockorder/c"

// AllThenOne enters the all-shard section, then the single-shard
// wrapper. The lifted identity equals the held indexed class — legal
// under the ascending-order discipline, so no finding.
func AllThenOne(o *c.Owner, v int) {
	o.LockAll()
	o.LockShard(v)
	o.UnlockShard(v)
	o.UnlockAll()
}

// ShardThenMeta acquires a shard, then Meta: the order edge
// Shards[].CS -> Meta. Fine on its own.
func ShardThenMeta(o *c.Owner, v int) {
	o.LockShard(v)
	o.Meta.Acquire()
	o.Meta.Release()
	o.UnlockShard(v)
}

// MetaThenShard acquires Meta, then a shard through the cross-package
// wrapper — the opposite order, closing a module-wide cycle through the
// indexed class. The class is a real lock-order participant (not
// collapsed into nothing), so the cycle is still a finding.
func MetaThenShard(o *c.Owner, v int) {
	o.Meta.Acquire()
	o.LockShard(v) // want `lock-order cycle .*Owner\)\.Meta -> .*Owner\)\.Shards\[\]\.CS -> .*Owner\)\.Meta`
	o.UnlockShard(v)
	o.Meta.Release()
}
