// Package b exercises lockorder's cross-package reasoning: every lock it
// touches lives in package a and is reached through a's wrapper methods,
// so each finding depends on call-edge summaries lifted across the
// package boundary.
package b

import "mpicontend/tdlockorder/a"

// OrderBA acquires B before A through a's wrappers, closing the cycle
// with a.OrderAB (which acquires A before B). The cycle itself is
// reported at its first edge's witness in package a.
func OrderBA(s *a.Shared) {
	s.LockB()
	s.LockA()
	s.UnlockA()
	s.UnlockB()
}

// Twice re-acquires A through a wrapper while already holding it.
func Twice(s *a.Shared) {
	s.LockA()
	s.LockA() // want `call to .*LockA may re-acquire .*Shared\)\.A, which is already held`
	s.UnlockA()
	s.UnlockA()
}

// BlocksViaCall reaches a channel send in package a while holding A.
func BlocksViaCall(s *a.Shared, ch chan int) {
	s.LockA()
	a.Notify(ch) // want `call to .*Notify may block \(channel send at a\.go:\d+\) while holding .*Shared\)\.A`
	s.UnlockA()
}

// Clean uses the wrappers correctly: no findings.
func Clean(s *a.Shared) {
	s.LockA()
	s.UnlockA()
	s.LockB()
	s.UnlockB()
}
