// Package a models a lock-owning type for the lockorder golden tests.
package a

// Lock is a minimal simlock-shaped lock: methods named exactly Acquire
// and Release are what the facts layer recognizes as leaf lock ops.
type Lock struct{ held bool }

func (l *Lock) Acquire() { l.held = true }
func (l *Lock) Release() { l.held = false }

// Shared owns two locks, so acquisition order between them is observable.
type Shared struct {
	A Lock
	B Lock
}

// LockA and friends are protocol wrappers used cross-package from src/b;
// their net lock effect flows through call-edge summaries.
func (s *Shared) LockA()   { s.A.Acquire() }
func (s *Shared) UnlockA() { s.A.Release() }
func (s *Shared) LockB()   { s.B.Acquire() }
func (s *Shared) UnlockB() { s.B.Release() }

// SelfDeadlock re-acquires a held lock directly.
func (s *Shared) SelfDeadlock() {
	s.A.Acquire()
	s.A.Acquire() // want `acquires .*Shared\)\.A while already holding it`
	s.A.Release()
	s.A.Release()
}

// OrderAB acquires A before B. On its own that is fine; src/b acquires
// them in the opposite order, closing a module-wide lock-order cycle
// whose first edge (A -> B) is witnessed here.
func (s *Shared) OrderAB() {
	s.A.Acquire()
	s.B.Acquire() // want `lock-order cycle .*Shared\)\.A -> .*Shared\)\.B -> .*Shared\)\.A`
	s.B.Release()
	s.A.Release()
}

// BlockHeld performs a leaf blocking operation inside the section.
func (s *Shared) BlockHeld(ch chan int) {
	s.A.Acquire()
	ch <- 1 // want `channel send while holding .*Shared\)\.A`
	s.A.Release()
}

// Notify blocks on a real channel; it holds nothing itself, but callers
// holding a lock (src/b) must not reach it.
func Notify(ch chan int) {
	ch <- 1
}

// Balanced is the clean shape: acquire, work, release — no findings.
func (s *Shared) Balanced() {
	s.A.Acquire()
	s.held()
	s.A.Release()
}

func (s *Shared) held() {}
