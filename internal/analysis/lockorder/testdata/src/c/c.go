// Package c models a sharded lock owner for the indexed-lock golden
// tests: a slice of shards, each guarding its own critical section with
// a lock of its own, plus one scalar lock. The canonicalizer renders
// every element acquisition as the one indexed class
// "(...Owner).Shards[].CS" — one class per family (not exploded per
// element), distinct from every other lock (not collapsed).
package c

// Lock is a minimal simlock-shaped lock: methods named exactly Acquire
// and Release are what the facts layer recognizes as leaf lock ops.
type Lock struct{ held bool }

func (l *Lock) Acquire() { l.held = true }
func (l *Lock) Release() { l.held = false }

// Shard is one slice of the runtime with its own critical section.
type Shard struct{ CS Lock }

// Owner holds a family of shard locks and one scalar lock.
type Owner struct {
	Shards []*Shard
	Meta   Lock
}

// LockShard and UnlockShard are the single-shard protocol wrappers used
// cross-package from src/d; their net effect is the indexed class.
func (o *Owner) LockShard(v int)   { o.Shards[v].CS.Acquire() }
func (o *Owner) UnlockShard(v int) { o.Shards[v].CS.Release() }

// LockAll acquires every shard ascending — the module-wide discipline
// that makes multi-acquire of the family deadlock-free.
func (o *Owner) LockAll() {
	for v := range o.Shards {
		o.Shards[v].CS.Acquire()
	}
}

// UnlockAll releases every shard descending.
func (o *Owner) UnlockAll() {
	for v := len(o.Shards) - 1; v >= 0; v-- {
		o.Shards[v].CS.Release()
	}
}

// TwoShards acquires two distinct shards back-to-back. Both render as
// the one indexed class; same-class re-acquisition must NOT be reported
// as a self-deadlock (it is another element, taken in ascending order).
func (o *Owner) TwoShards(i, j int) {
	o.Shards[i].CS.Acquire()
	o.Shards[j].CS.Acquire()
	o.Shards[j].CS.Release()
	o.Shards[i].CS.Release()
}

// MetaTwice is the scalar control: a non-indexed lock re-acquired while
// held is still a self-deadlock.
func (o *Owner) MetaTwice() {
	o.Meta.Acquire()
	o.Meta.Acquire() // want `acquires .*Owner\)\.Meta while already holding it`
	o.Meta.Release()
	o.Meta.Release()
}
