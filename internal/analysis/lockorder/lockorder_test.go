package lockorder_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/lockorder"
)

// TestLockorder runs the analyzer over two testdata packages as one unit:
// src/b imports src/a, so the re-acquire, blocking-while-held, and
// lock-order-cycle findings all depend on cross-package call summaries.
func TestLockorder(t *testing.T) {
	analysistest.RunPkgs(t, lockorder.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/a", ImportPath: "mpicontend/tdlockorder/a"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdlockorder/b"},
	})
}
