package lockorder_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/lockorder"
)

// TestLockorder runs the analyzer over two testdata packages as one unit:
// src/b imports src/a, so the re-acquire, blocking-while-held, and
// lock-order-cycle findings all depend on cross-package call summaries.
func TestLockorder(t *testing.T) {
	analysistest.RunPkgs(t, lockorder.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/a", ImportPath: "mpicontend/tdlockorder/a"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdlockorder/b"},
	})
}

// TestLockorderIndexed covers the indexed lock-class semantics over two
// packages: src/d drives src/c's sharded owner, whose per-shard locks
// all canonicalize to the one "Shards[].CS" class. Same-class
// re-acquisition (ascending-order multi-shard acquisition) must stay
// silent — directly and through cross-package call summaries — while
// the class still participates in the lock-order graph: a cycle through
// it against a scalar lock is reported, and a scalar re-acquire still
// fires.
func TestLockorderIndexed(t *testing.T) {
	analysistest.RunPkgs(t, lockorder.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/c", ImportPath: "mpicontend/tdlockorder/c"},
		{Dir: "testdata/src/d", ImportPath: "mpicontend/tdlockorder/d"},
	})
}
