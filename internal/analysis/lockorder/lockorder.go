// Package lockorder detects static deadlock shapes across the whole
// module, using the call graph's lock facts: for every function it
// computes the set of locks held at each lock event (leaf Acquire/Release
// ops and call edges, in source order, with callee effects lifted into the
// caller's frame), and from those held sets it reports
//
//   - re-acquisition of a lock that is already held — directly or through
//     a call — since the simlock layer is not reentrant. Indexed lock
//     families (an array or slice of locks, canonicalized to one class
//     like "vcis[].cs.lock") are exempt from this rule only: acquiring
//     the class twice means taking two different elements in the
//     module-wide ascending-index order, not re-entering one lock. The
//     class still participates in the lock-order graph like any other
//     identity;
//   - blocking operations (Park, go statements, channel ops, select)
//     executed or reachable while any lock is held: the simulated runtime
//     must never block on real concurrency inside a critical section;
//   - cycles in the module-wide lock-order graph, whose edges "A is held
//     while B is acquired" are collected over every function. A cycle
//     means two executions can acquire the same locks in opposite orders
//     and deadlock, even though each function is locally well-paired.
//
// lockorder is interprocedural: it walks the shared call graph and reports
// only at positions inside the package under analysis, so each finding
// appears exactly once and allow directives apply where the code is. The
// lock-order graph itself is exported through Dot for cmd/simcheck -graph.
package lockorder

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/callgraph"
)

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "no lock may be re-acquired while held, nothing may block while " +
		"any lock is held, and the module-wide lock-order graph must be " +
		"acyclic (consistent acquisition order)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	og := orderOf(g)
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		if n.Unit.Pkg != pass.Pkg {
			continue
		}
		checkNode(pass, g, n)
	}
	reportCycles(pass, og)
	return nil
}

// step is one lock event of a function together with the locks held just
// before it.
type step struct {
	ev   callgraph.Event
	held []callgraph.LockID
}

// checkNode reports re-acquisitions and blocking-while-held inside one
// function, with callee effects folded in.
func checkNode(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node) {
	var steps []step
	g.WalkHeld(n, func(ev callgraph.Event, held []callgraph.LockID) {
		steps = append(steps, step{ev, held})
	})

	for _, s := range steps {
		switch {
		case s.ev.Op != nil && s.ev.Op.Acquire:
			op := s.ev.Op
			if op.ID == "(unknown)" {
				continue
			}
			// An indexed class (vcis[].cs) names a whole lock family:
			// re-acquiring the class means acquiring another element in
			// ascending index order, not re-entering one lock.
			if callgraph.IsIndexed(op.ID) {
				continue
			}
			for _, h := range s.held {
				if h == op.ID {
					pass.Reportf(op.Pos,
						"acquires %s while already holding it; simlock locks are not reentrant (static self-deadlock)",
						op.ID)
				}
			}
		case s.ev.Edge != nil && len(s.held) > 0:
			checkCallWhileHeld(pass, g, s.ev.Edge, s.held)
		}
	}

	// Leaf blocking ops while held. Held sets are piecewise-constant
	// between lock events: the set at a position is the held-before set of
	// the first event past it, or the function's net-held set after the
	// last event.
	if n.Facts == nil || len(n.Facts.Blocks) == 0 {
		return
	}
	final := g.NodeSummary(n, nil).NetHeld
	heldAt := func(pos token.Pos) []callgraph.LockID {
		for _, s := range steps {
			if s.ev.Pos > pos {
				return s.held
			}
		}
		return final
	}
	for _, b := range n.Facts.Blocks {
		if h := heldAt(b.Pos); len(h) > 0 {
			pass.Reportf(b.Pos, "%s while holding %s; release before blocking",
				b.Desc, strings.Join(h, ", "))
		}
	}
}

// checkCallWhileHeld reports what one call edge can do wrong under the
// given held set: re-acquire a held lock, or reach a blocking operation.
// Candidate callees are examined in deterministic order; re-acquisitions
// are deduplicated per lock identity and blocking is reported once per
// edge (the first blocking candidate witnesses it).
func checkCallWhileHeld(pass *analysis.Pass, g *callgraph.Graph, e *callgraph.Edge, held []callgraph.LockID) {
	if !callgraph.FollowForLocks(e) {
		return
	}
	reacq := map[callgraph.LockID]string{} // lock → first callee key
	var blockKey string
	var blockW *callgraph.Witness
	for _, callee := range g.Callees(e) {
		for _, id := range g.TransAcquires(callee) {
			lifted := callgraph.Lift(callee, e, id)
			if lifted == "(unknown)" || callgraph.IsIndexed(lifted) {
				continue
			}
			for _, h := range held {
				if h == lifted {
					if _, seen := reacq[lifted]; !seen {
						reacq[lifted] = callee.Key
					}
				}
			}
		}
		if blockW == nil {
			if w := g.MayBlock(callee); w != nil {
				blockKey, blockW = callee.Key, w
			}
		}
	}
	ids := make([]callgraph.LockID, 0, len(reacq))
	for id := range reacq {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pass.Reportf(e.Pos,
			"call to %s may re-acquire %s, which is already held (static self-deadlock)",
			reacq[id], id)
	}
	if blockW != nil {
		pass.Reportf(e.Pos,
			"call to %s may block (%s at %s) while holding %s; release before blocking",
			blockKey, blockW.Op.Desc, position(pass.Fset, blockW.Op.Pos),
			strings.Join(held, ", "))
	}
}

// position renders a short file:line for diagnostics that point into other
// packages.
func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---- the module-wide lock-order graph ----

// witnessEdge records where one "from is held while to is acquired"
// observation was made: the earliest such site wins, for stable reports.
type witnessEdge struct {
	pos  token.Pos
	node *callgraph.Node
}

// orderGraph is the lock-order relation over canonical lock identities.
type orderGraph struct {
	edges map[callgraph.LockID]map[callgraph.LockID]*witnessEdge
	succ  map[callgraph.LockID][]callgraph.LockID // sorted
	locks []callgraph.LockID                      // sorted
}

// orderCache memoizes the order graph per call graph: RunAll invokes the
// analyzer once per package with the same shared graph, and the relation
// is a whole-module property.
var orderCache = map[*callgraph.Graph]*orderGraph{}

// orderOf builds (or returns) the lock-order graph of g.
func orderOf(g *callgraph.Graph) *orderGraph {
	if og, ok := orderCache[g]; ok {
		return og
	}
	og := &orderGraph{edges: map[callgraph.LockID]map[callgraph.LockID]*witnessEdge{}}
	set := map[callgraph.LockID]bool{}
	add := func(from, to callgraph.LockID, pos token.Pos, n *callgraph.Node) {
		if from == to || from == "(unknown)" || to == "(unknown)" {
			return
		}
		set[from] = true
		set[to] = true
		m := og.edges[from]
		if m == nil {
			m = map[callgraph.LockID]*witnessEdge{}
			og.edges[from] = m
		}
		if w, ok := m[to]; !ok || pos < w.pos {
			m[to] = &witnessEdge{pos, n}
		}
	}
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		g.WalkHeld(n, func(ev callgraph.Event, held []callgraph.LockID) {
			switch {
			case ev.Op != nil && ev.Op.Acquire:
				for _, h := range held {
					add(h, ev.Op.ID, ev.Op.Pos, n)
				}
			case ev.Edge != nil && len(held) > 0 && callgraph.FollowForLocks(ev.Edge):
				for _, callee := range g.Callees(ev.Edge) {
					for _, id := range g.TransAcquires(callee) {
						lifted := callgraph.Lift(callee, ev.Edge, id)
						for _, h := range held {
							add(h, lifted, ev.Edge.Pos, n)
						}
					}
				}
			}
		})
	}
	for l := range set {
		og.locks = append(og.locks, l)
	}
	sort.Strings(og.locks)
	og.succ = map[callgraph.LockID][]callgraph.LockID{}
	for _, from := range og.locks {
		for to := range og.edges[from] {
			og.succ[from] = append(og.succ[from], to)
		}
		sort.Strings(og.succ[from])
	}
	orderCache[g] = og
	return og
}

// cycles returns one shortest cycle per lexically-smallest member lock, so
// each rotation of the same cycle is reported exactly once. Each cycle is
// returned as [l0, l1, ..., l0].
func (og *orderGraph) cycles() [][]callgraph.LockID {
	var out [][]callgraph.LockID
	for _, s := range og.locks {
		path := og.shortestCycle(s)
		if path == nil {
			continue
		}
		min := s
		for _, l := range path {
			if l < min {
				min = l
			}
		}
		if min != s {
			continue
		}
		out = append(out, path)
	}
	return out
}

// shortestCycle finds, by BFS over sorted successors, the shortest path
// from s back to s, or nil.
func (og *orderGraph) shortestCycle(s callgraph.LockID) []callgraph.LockID {
	prev := map[callgraph.LockID]callgraph.LockID{}
	visited := map[callgraph.LockID]bool{s: true}
	queue := []callgraph.LockID{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range og.succ[cur] {
			if next == s {
				var chain []callgraph.LockID
				for c := cur; c != s; c = prev[c] {
					chain = append(chain, c)
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				path := append([]callgraph.LockID{s}, chain...)
				return append(path, s)
			}
			if !visited[next] {
				visited[next] = true
				prev[next] = cur
				queue = append(queue, next)
			}
		}
	}
	return nil
}

// reportCycles reports each lock-order cycle once, anchored at the witness
// of its first edge; the pass whose package owns that witness reports it.
func reportCycles(pass *analysis.Pass, og *orderGraph) {
	for _, cyc := range og.cycles() {
		w := og.edges[cyc[0]][cyc[1]]
		if w.node.Unit.Pkg != pass.Pkg {
			continue
		}
		pass.Reportf(w.pos,
			"lock-order cycle %s; inconsistent acquisition order can deadlock",
			strings.Join(cyc, " -> "))
	}
}

// Dot renders the module's lock-order graph in Graphviz DOT form, one node
// per canonical lock identity and one edge per observed ordering, labeled
// with the witness site. Deterministic for identical inputs.
func Dot(g *callgraph.Graph) string {
	og := orderOf(g)
	var b strings.Builder
	b.WriteString("digraph lockorder {\n  rankdir=LR;\n")
	for _, l := range og.locks {
		fmt.Fprintf(&b, "  %q;\n", l)
	}
	for _, from := range og.locks {
		for _, to := range og.succ[from] {
			w := og.edges[from][to]
			p := g.Fset.Position(w.pos)
			fmt.Fprintf(&b, "  %q -> %q [label=\"%s:%d\"];\n",
				from, to, filepath.Base(p.Filename), p.Line)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
