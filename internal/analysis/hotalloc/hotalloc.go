// Package hotalloc keeps the simulator's fast path allocation-free. The
// zero-alloc event core exists because a single allocation per simulated
// event turns into GC pressure that distorts exactly the latency
// distributions the experiments measure; this analyzer makes that
// property a checked invariant instead of a benchmark regression.
//
// Roots are function declarations carrying a //simcheck:hotpath directive
// in their doc comment (the event-queue pop/push, the dispatch loop, the
// transport send/receive path, request completion). From each root the
// analyzer walks the module call graph — static and interface edges, but
// not dynamic function-value calls, which are too imprecise — and reports
// every heap-allocating construct in every reachable function: make/new,
// append, composite literals that escape, closures, string concatenation
// and string/[]byte conversions, and allocating stdlib calls (fmt,
// errors.New, strconv formatting). Allocations inside panic arguments are
// exempt (a panicking simulation is already dead).
//
// Traversal is pruned at call edges whose site carries a
// //simcheck:allow hotalloc directive, so a genuinely cold branch (a
// diagnostic path that runs once per failure) can call allocating code
// without poisoning everything below it. A finding is otherwise fixed at
// the allocation site, which may be in a different package than the root
// that reaches it.
package hotalloc

import (
	"strings"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/callgraph"
)

// Analyzer is the hotalloc rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from //simcheck:hotpath roots must not " +
		"allocate; prune cold call edges with //simcheck:allow hotalloc",
	Run: run,
}

// hotInfo is the per-graph traversal result: every reachable node mapped
// to the key of the first root (in sorted order) that reaches it.
type hotInfo struct {
	rootOf map[*callgraph.Node]string
}

// hotCache memoizes the traversal per call graph; RunAll invokes the
// analyzer once per package with the same shared graph and allow index.
var hotCache = map[*callgraph.Graph]*hotInfo{}

func run(pass *analysis.Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	info := hotOf(g, pass.Allows())
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		if n.Unit.Pkg != pass.Pkg || n.Facts == nil {
			continue
		}
		root, ok := info.rootOf[n]
		if !ok {
			continue
		}
		for _, a := range n.Facts.Allocs {
			pass.Reportf(a.Pos,
				"%s on the hot path (reachable from //simcheck:hotpath root %s); hoist or pool it, or mark the calling edge //simcheck:allow hotalloc",
				a.Desc, root)
		}
	}
	return nil
}

// hotOf walks the graph from every hotpath root, skipping dynamic edges
// and edges whose call site carries an allow directive.
func hotOf(g *callgraph.Graph, allows *analysis.AllowIndex) *hotInfo {
	if i, ok := hotCache[g]; ok {
		return i
	}
	info := &hotInfo{rootOf: map[*callgraph.Node]string{}}
	var visit func(m *callgraph.Node, root string)
	visit = func(m *callgraph.Node, root string) {
		if _, seen := info.rootOf[m]; seen {
			return
		}
		info.rootOf[m] = root
		for _, e := range m.Edges {
			if e.Kind == callgraph.EdgeDynamic {
				continue
			}
			if allows.Allowed(m.Unit.Files, e.Pos, "hotalloc") {
				continue
			}
			for _, c := range g.Callees(e) {
				visit(c, root)
			}
		}
	}
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		if isRoot(n) {
			visit(n, n.Key)
		}
	}
	hotCache[g] = info
	return info
}

// isRoot reports whether the declaration's doc comment carries the
// hotpath directive.
func isRoot(n *callgraph.Node) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if strings.HasPrefix(c.Text, "//simcheck:hotpath") {
			return true
		}
	}
	return false
}
