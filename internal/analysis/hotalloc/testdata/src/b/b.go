// Package b holds the hotpath root for the hotalloc golden tests; the
// helpers it reaches live in package a.
package b

import "mpicontend/tdhotalloc/a"

// Step models one turn of the dispatch loop.
//
//simcheck:hotpath
func Step(buf []byte, n int) string {
	s := a.Format("ev", n)
	scratch := make([]byte, n) // want `make allocates on the hot path \(reachable from //simcheck:hotpath root .*b\.Step\)`
	_ = scratch
	if n < 0 {
		//simcheck:allow hotalloc cold failure branch, runs once per crash
		a.Slow()
	}
	if len(buf) == 0 {
		panic("empty buffer: " + s) // panic arguments are exempt
	}
	return s
}

// cold is not a root and not reachable from one: its allocation is fine.
func cold() []int {
	return make([]int, 4)
}
