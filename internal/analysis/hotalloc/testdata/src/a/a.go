// Package a provides helpers whose allocations are only observable
// through a hot-path root in package b.
package a

// Format is reached from b.Step, a hotpath root; its concatenation is a
// cross-package finding anchored here.
func Format(prefix string, n int) string {
	return prefix + suffix(n) // want `string concatenation on the hot path \(reachable from //simcheck:hotpath root .*b\.Step\)`
}

func suffix(n int) string {
	if n > 0 {
		return "+"
	}
	return "-"
}

// Slow allocates, but its only inbound edge carries an allow directive,
// so the traversal never reaches it.
func Slow() []int {
	return make([]int, 64)
}

// Cold allocates and is not reachable from any root: no finding.
func Cold() map[int]int {
	return map[int]int{1: 1}
}
