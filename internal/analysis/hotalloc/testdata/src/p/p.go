// Package p is the partitioned-readiness golden package: it models the
// allocation discipline internal/mpi/partitioned.go commits to — a
// persistent request whose non-triggering readiness transition is a
// hotpath root over storage allocated once at init — and pins exactly
// which deviations from that shape the analyzer flags.
package p

// request models a persistent partitioned request: the readiness words
// are sized by rearm and reused across epochs, so the steady-state mark
// path never allocates.
type request struct {
	words   []uint64
	n       int
	ready   int
	history []int
}

// rearm re-arms the mask for an epoch of n partitions. It is the Pstart
// analogue — not reachable from the hotpath root — so the one-time make
// that grows the persistent storage is not a finding.
func (r *request) rearm(n int) {
	nw := (n + 63) / 64
	if cap(r.words) < nw {
		r.words = make([]uint64, nw)
	}
	r.words = r.words[:nw]
	for i := range r.words {
		r.words[i] = 0
	}
	r.n, r.ready = n, 0
}

// mark is the readiness transition — the markReady analogue. Pure word
// arithmetic on preallocated storage: the analyzer must stay silent on
// every line, which is the golden pin that the real fast path's shape is
// allocation-free by construction.
//
//simcheck:hotpath
func (r *request) mark(i int) (trigger bool) {
	w, b := i/64, uint(i%64)
	if r.words[w]&(1<<b) != 0 {
		return false
	}
	r.words[w] |= 1 << b
	r.ready++
	return r.ready == r.n
}

// markTraced is the variant the fast path must not become: recording each
// flip allocates on every call, once for the history append and once for
// the label concatenation.
//
//simcheck:hotpath
func (r *request) markTraced(i int, tag string) bool {
	r.history = append(r.history, i) // want `append may grow its backing array on the hot path \(reachable from //simcheck:hotpath root .*markTraced\)`
	label := tag + ":ready"          // want `string concatenation on the hot path \(reachable from //simcheck:hotpath root .*markTraced\)`
	_ = label
	return r.mark(i)
}

// packet models the aggregated wire transfer the trigger fires.
type packet struct {
	lo, hi int
}

// send is the trigger side — the partTrigger analogue. It is invoked by
// the caller that observed trigger=true, not by the root itself, so its
// per-epoch packet allocation stays off the hot path: the design split
// the golden test pins is "allocate once per aggregate outside the root,
// never per partition inside it".
func (r *request) send() *packet {
	return &packet{lo: 0, hi: r.n}
}

// epoch drives one full cycle the way Pready's caller does: re-arm, flip
// every partition through the root, fire the aggregate on trigger. Not a
// root itself, so none of this is flagged.
func epoch(r *request, n int) *packet {
	r.rearm(n)
	for i := 0; i < n; i++ {
		if r.mark(i) {
			return r.send()
		}
	}
	return nil
}
