package hotalloc_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/hotalloc"
)

// TestHotalloc runs the analyzer over two testdata packages as one unit:
// the root lives in src/b and the allocations it reaches live in src/a,
// so the findings depend on cross-package traversal, and an allow
// directive on one call edge prunes the subtree behind it.
func TestHotalloc(t *testing.T) {
	analysistest.RunPkgs(t, hotalloc.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/a", ImportPath: "mpicontend/tdhotalloc/a"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdhotalloc/b"},
	})
}

// TestHotallocPartitioned runs the analyzer over the partitioned-readiness
// golden package: the persistent-bitmap idiom (allocate at rearm, pure
// word ops in the hotpath root, aggregate allocation on the caller's
// trigger side) produces no findings, while the traced variant of the
// root is flagged on both of its per-flip allocations.
func TestHotallocPartitioned(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/src/p", "mpicontend/tdhotalloc/p")
}
