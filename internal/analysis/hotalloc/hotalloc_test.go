package hotalloc_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/hotalloc"
)

// TestHotalloc runs the analyzer over two testdata packages as one unit:
// the root lives in src/b and the allocations it reaches live in src/a,
// so the findings depend on cross-package traversal, and an allow
// directive on one call edge prunes the subtree behind it.
func TestHotalloc(t *testing.T) {
	analysistest.RunPkgs(t, hotalloc.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/a", ImportPath: "mpicontend/tdhotalloc/a"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdhotalloc/b"},
	})
}
