// Package nogoroutine forbids raw concurrency inside the deterministic
// core, where it belongs only in the simulation engine (internal/sim,
// which multiplexes simthreads over goroutines with a baton hand-off) and
// the real-threads lock library (locks/, whose whole point is real
// contention). Anywhere else in the core a go statement, a channel, or a
// sync primitive bypasses the engine's deterministic scheduler and
// destroys reproducibility.
//
// The driver shell is exempt by package allowlist: the sweep orchestrator
// (internal/sweep) fans isolated experiment points across OS workers, and
// cmd/* binaries host it — OS-level parallelism there never touches
// simulated state, only wall-clock time. docs/ARCHITECTURE.md draws the
// core/shell boundary this allowlist enforces.
//
// Flagged: go statements; imports of sync and sync/atomic; channel types,
// sends, receives, and selects. The real-threads example
// (examples/reallocks) carries a //simcheck:allow-file nogoroutine
// annotation.
package nogoroutine

import (
	"go/ast"
	"go/token"
	"strings"

	"mpicontend/internal/analysis"
)

// Analyzer is the nogoroutine rule.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid raw go statements, channels, and sync primitives in the " +
		"deterministic core: only internal/sim (the engine owns scheduling), " +
		"locks/ (the real-threads library), and the driver shell " +
		"(internal/sweep, cmd/*) may use them",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks") &&
			!analysis.PathHasSegment(path, "cmd") &&
			!strings.HasSuffix(path, "internal/sim") &&
			!strings.HasSuffix(path, "internal/sweep")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "sync", "sync/atomic":
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/sim and locks/; the simulation must multiplex via the engine",
					strings.Trim(imp.Path.Value, `"`))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(),
					"raw goroutine outside internal/sim; spawn simthreads through the engine instead")
			case *ast.ChanType:
				pass.Reportf(x.Pos(),
					"raw channel outside internal/sim; use engine events or thread parking instead")
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "raw channel send outside internal/sim")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pass.Reportf(x.Pos(), "raw channel receive outside internal/sim")
				}
			case *ast.SelectStmt:
				pass.Reportf(x.Pos(), "select outside internal/sim")
			}
			return true
		})
	}
	return nil
}
