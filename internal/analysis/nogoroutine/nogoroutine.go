// Package nogoroutine forbids raw concurrency outside the two places it
// belongs: the simulation engine (internal/sim, which multiplexes
// simthreads over goroutines with a baton hand-off) and the real-threads
// lock library (locks/, whose whole point is real contention). Everywhere
// else a go statement, a channel, or a sync primitive bypasses the
// engine's deterministic scheduler and destroys reproducibility.
//
// Flagged: go statements; imports of sync and sync/atomic; channel types,
// sends, receives, and selects. Real-threads demo binaries (cmd/lockbench,
// examples/reallocks) carry //simcheck:allow-file nogoroutine annotations.
package nogoroutine

import (
	"go/ast"
	"go/token"
	"strings"

	"mpicontend/internal/analysis"
)

// Analyzer is the nogoroutine rule.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid raw go statements, channels, and sync primitives outside " +
		"internal/sim (the engine owns scheduling) and locks/ (the " +
		"real-threads library)",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks") &&
			!strings.HasSuffix(path, "internal/sim")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "sync", "sync/atomic":
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/sim and locks/; the simulation must multiplex via the engine",
					strings.Trim(imp.Path.Value, `"`))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(),
					"raw goroutine outside internal/sim; spawn simthreads through the engine instead")
			case *ast.ChanType:
				pass.Reportf(x.Pos(),
					"raw channel outside internal/sim; use engine events or thread parking instead")
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "raw channel send outside internal/sim")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pass.Reportf(x.Pos(), "raw channel receive outside internal/sim")
				}
			case *ast.SelectStmt:
				pass.Reportf(x.Pos(), "select outside internal/sim")
			}
			return true
		})
	}
	return nil
}
