package nogoroutine_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/nogoroutine"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, nogoroutine.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/nogoroutine/testdata/src/a")
}

func TestScope(t *testing.T) {
	for _, exempt := range []string{
		"mpicontend/locks", "mpicontend/internal/sim",
		"mpicontend/internal/sweep", "mpicontend/cmd/mpistorm",
	} {
		if nogoroutine.Analyzer.Applies(exempt) {
			t.Errorf("nogoroutine must not apply to %s", exempt)
		}
	}
	for _, core := range []string{
		"mpicontend/internal/mpi", "mpicontend/internal/experiments",
	} {
		if !nogoroutine.Analyzer.Applies(core) {
			t.Errorf("nogoroutine must apply to %s", core)
		}
	}
}
