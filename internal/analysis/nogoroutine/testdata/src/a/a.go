// Package a is golden-test input for the nogoroutine analyzer: raw
// concurrency outside internal/sim and locks/ must be flagged.
package a

import (
	"sync" // want `import of sync outside internal/sim`
)

func work() {}

func spawns() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	go work() // want `raw goroutine outside internal/sim`
}

func channels() {
	ch := make(chan int, 1) // want `raw channel outside internal/sim`
	ch <- 1                 // want `raw channel send outside internal/sim`
	<-ch                    // want `raw channel receive outside internal/sim`
	select {}               // want `select outside internal/sim`
}

func allowedSpawn() {
	//simcheck:allow nogoroutine testdata exercises the line allowlist
	go work()
}
