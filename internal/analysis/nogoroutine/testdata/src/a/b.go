package a

// The file-wide form marks a whole file as legitimately concurrent (the
// real-threads benchmark harnesses use this).
//
//simcheck:allow-file nogoroutine testdata exercises the file-wide allowlist

func fileWideAllowed() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
