// Package nodeterm forbids wall-clock reads and ambient randomness on
// simulation paths. The reproduction's claims rest on bit-determinism: a
// run is a pure function of its seed, so re-runs (the chaos experiment's
// determinism check, the golden figure diff) can detect corruption. A
// single time.Now or math/rand call on a sim path silently breaks that.
//
// Forbidden in every package except the real-threads lock library
// (locks/): calls to time.Now, time.Since, time.Until, time.Sleep,
// time.After, time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker,
// and any import of math/rand, math/rand/v2, or crypto/rand. Randomness
// must come from the engine's seeded stream (internal/sim.Rand);
// durations must be virtual (sim.Time).
//
// Legitimate wall-clock uses — the engine's watchdog, harness timing in
// cmd/ binaries — carry //simcheck:allow nodeterm annotations.
//
// The local check alone can be laundered: a checked package calls into
// the exempt locks/ layer, and the wall-clock read happens there. The
// interprocedural pass closes that hole by walking the module call graph's
// wall-clock facts through the exempt zone and reporting the call site in
// checked code that reaches one.
package nodeterm

import (
	"go/ast"
	"go/types"

	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/callgraph"
)

// forbiddenTimeFuncs are the package time functions that read or depend on
// the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenImports are ambient randomness sources; simulation code must
// use the engine's seeded internal/sim.Rand stream instead.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Analyzer is the nodeterm rule.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock reads (time.Now etc.) and ambient randomness " +
		"(math/rand, crypto/rand) on simulation paths; use the engine's " +
		"virtual clock and seeded sim.Rand stream",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if forbiddenImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %q is nondeterministic; use the seeded internal/sim RNG (sim.Rand)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			if obj.Pkg().Path() == "time" && forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(id.Pos(),
					"wall-clock call time.%s on a simulation path; use the engine's virtual clock (sim.Time)", obj.Name())
			}
			return true
		})
	}
	reportLaundering(pass)
	return nil
}

// exemptZone marks the packages outside nodeterm's local check: the
// real-threads lock library, which legitimately touches the wall clock.
func exemptZone(n *callgraph.Node) bool {
	return analysis.PathHasSegment(n.Unit.Path, "locks")
}

// launderCache memoizes the zone witnesses per call graph; RunAll invokes
// the analyzer once per package with the same shared graph.
var launderCache = map[*callgraph.Graph]map[*callgraph.Node]*callgraph.Witness{}

// reportLaundering flags calls from checked code into exempt-zone
// functions that reach a wall-clock read: the read is invisible to the
// local check but still breaks seed-determinism of the caller.
func reportLaundering(pass *analysis.Pass) {
	g := pass.Graph
	if g == nil {
		return
	}
	wits, ok := launderCache[g]
	if !ok {
		wits = g.Witnesses(func(n *callgraph.Node) *callgraph.Op {
			if n.Facts == nil || len(n.Facts.Wallclock) == 0 {
				return nil
			}
			return &n.Facts.Wallclock[0]
		}, exemptZone)
		launderCache[g] = wits
	}
	for _, key := range g.Keys() {
		n := g.Lookup(key)
		if n.Unit.Pkg != pass.Pkg {
			continue
		}
		for _, e := range n.Edges {
			if e.Kind == callgraph.EdgeDynamic {
				continue
			}
			for _, callee := range g.Callees(e) {
				w := wits[callee]
				if w == nil {
					continue
				}
				p := pass.Fset.Position(w.Op.Pos)
				pass.Reportf(e.Pos,
					"call to %s reaches a wall-clock read (%s at line %d) inside the check-exempt locks layer; thread virtual time through, or annotate with //simcheck:allow nodeterm <reason>",
					callee.Key, w.Op.Desc, p.Line)
				break
			}
		}
	}
}

// importPath unquotes an import spec's path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
