// Package nodeterm forbids wall-clock reads and ambient randomness on
// simulation paths. The reproduction's claims rest on bit-determinism: a
// run is a pure function of its seed, so re-runs (the chaos experiment's
// determinism check, the golden figure diff) can detect corruption. A
// single time.Now or math/rand call on a sim path silently breaks that.
//
// Forbidden in every package except the real-threads lock library
// (locks/): calls to time.Now, time.Since, time.Until, time.Sleep,
// time.After, time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker,
// and any import of math/rand, math/rand/v2, or crypto/rand. Randomness
// must come from the engine's seeded stream (internal/sim.Rand);
// durations must be virtual (sim.Time).
//
// Legitimate wall-clock uses — the engine's watchdog, harness timing in
// cmd/ binaries — carry //simcheck:allow nodeterm annotations.
package nodeterm

import (
	"go/ast"
	"go/types"

	"mpicontend/internal/analysis"
)

// forbiddenTimeFuncs are the package time functions that read or depend on
// the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenImports are ambient randomness sources; simulation code must
// use the engine's seeded internal/sim.Rand stream instead.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Analyzer is the nodeterm rule.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid wall-clock reads (time.Now etc.) and ambient randomness " +
		"(math/rand, crypto/rand) on simulation paths; use the engine's " +
		"virtual clock and seeded sim.Rand stream",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if forbiddenImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %q is nondeterministic; use the seeded internal/sim RNG (sim.Rand)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			if obj.Pkg().Path() == "time" && forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(id.Pos(),
					"wall-clock call time.%s on a simulation path; use the engine's virtual clock (sim.Time)", obj.Name())
			}
			return true
		})
	}
	return nil
}

// importPath unquotes an import spec's path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
