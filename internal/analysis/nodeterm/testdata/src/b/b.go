// Package b is checked simulation code calling into the exempt locks
// layer; the wall-clock read it reaches lives entirely in that layer.
package b

import "mpicontend/locks/spin"

func tick() {
	spin.Backoff() // want `reaches a wall-clock read \(time.Now at line \d+\) inside the check-exempt locks layer`
	spin.Relax()
}

func timed() {
	spin.Backoff() //simcheck:allow nodeterm harness timing measured outside the simulation
}
