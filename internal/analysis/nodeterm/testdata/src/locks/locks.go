// Package spin models the check-exempt real-threads lock layer for the
// nodeterm cross-package golden test: wall-clock reads are legal here,
// but checked callers must not launder determinism breaks through it.
package spin

import "time"

// Backoff reads the wall clock; local checking is off in locks/.
func Backoff() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Relax touches no clock; calling it from checked code is fine.
func Relax() {}
