// Package a is golden-test input for the nodeterm analyzer: wall-clock
// reads and ambient randomness must be flagged unless annotated.
package a

import (
	"fmt"
	"time"

	_ "math/rand" // want `import of "math/rand" is nondeterministic`
)

func wall() {
	start := time.Now()            // want `wall-clock call time\.Now`
	fmt.Println(time.Since(start)) // want `wall-clock call time\.Since`
	time.Sleep(time.Millisecond)   // want `wall-clock call time\.Sleep`
}

// virtual shows that mere package-time value uses (constants, types) are
// not flagged — only the wall-clock functions are.
func virtual() time.Duration {
	return 3 * time.Millisecond
}

func allowedSameLine() {
	start := time.Now() //simcheck:allow nodeterm testdata exercises the same-line allowlist
	_ = start
}

func allowedNextLine() {
	//simcheck:allow nodeterm testdata exercises the next-line allowlist
	start := time.Now()
	_ = start
}

// unreasoned directives are ignored: the diagnostic still fires.
func malformedAllow() {
	//simcheck:allow nodeterm
	start := time.Now() // want `wall-clock call time\.Now`
	_ = start
}
