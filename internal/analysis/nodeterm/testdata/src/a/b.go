package a

// The file-wide form silences every nodeterm diagnostic in this file.
//
//simcheck:allow-file nodeterm testdata exercises the file-wide allowlist

import "time"

func fileWideAllowed() time.Time {
	return time.Now()
}
