package nodeterm_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/nodeterm"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/nodeterm/testdata/src/a")
}

// TestLaundering checks the cross-package pass: the wall-clock read
// lives in an exempt locks-layer package, the report lands at the call
// site in checked code.
func TestLaundering(t *testing.T) {
	analysistest.RunPkgs(t, nodeterm.Analyzer, []analysistest.Pkg{
		{Dir: "testdata/src/locks", ImportPath: "mpicontend/locks/spin"},
		{Dir: "testdata/src/b", ImportPath: "mpicontend/tdnodeterm/b"},
	})
}

func TestDoesNotApplyToLocks(t *testing.T) {
	if nodeterm.Analyzer.Applies("mpicontend/locks") {
		t.Errorf("nodeterm must not apply to the real-threads lock library")
	}
	if !nodeterm.Analyzer.Applies("mpicontend/internal/sim") {
		t.Errorf("nodeterm must apply to the simulation engine")
	}
}
