package nodeterm_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/nodeterm"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/nodeterm/testdata/src/a")
}

func TestDoesNotApplyToLocks(t *testing.T) {
	if nodeterm.Analyzer.Applies("mpicontend/locks") {
		t.Errorf("nodeterm must not apply to the real-threads lock library")
	}
	if !nodeterm.Analyzer.Applies("mpicontend/internal/sim") {
		t.Errorf("nodeterm must apply to the simulation engine")
	}
}
