// Package all registers every simcheck analyzer, for the cmd/simcheck
// driver and any future tooling that wants the full suite.
package all

import (
	"mpicontend/internal/analysis"
	"mpicontend/internal/analysis/errdrop"
	"mpicontend/internal/analysis/hotalloc"
	"mpicontend/internal/analysis/lockorder"
	"mpicontend/internal/analysis/lockpair"
	"mpicontend/internal/analysis/maporder"
	"mpicontend/internal/analysis/nodeterm"
	"mpicontend/internal/analysis/nogoroutine"
	"mpicontend/internal/analysis/pkgdoc"
)

// Analyzers returns the full simcheck suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errdrop.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		lockpair.Analyzer,
		maporder.Analyzer,
		nodeterm.Analyzer,
		nogoroutine.Analyzer,
		pkgdoc.Analyzer,
	}
}
