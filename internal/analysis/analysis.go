// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis, built on the standard library's go/ast
// and go/types. It exists because this repository is stdlib-only: the
// simcheck analyzers (nodeterm, lockpair, nogoroutine, maporder, pkgdoc)
// plug into this framework and are driven by cmd/simcheck and by the
// analysistest test harness.
//
// The API mirrors the upstream shape — an Analyzer holds a Run function
// that receives a Pass with the parsed files and full type information for
// one package — so the analyzers could be ported to the real framework by
// changing imports.
//
// # Suppressing diagnostics
//
// A diagnostic can be suppressed with an allow directive comment:
//
//	//simcheck:allow <rule> <reason>
//
// placed on the offending line or on the line directly above it. The rule
// must be the analyzer name (or "all") and the reason is mandatory — a
// directive without a reason is ignored, so the diagnostic still fires.
// The variant
//
//	//simcheck:allow-file <rule> <reason>
//
// suppresses the rule for the whole file, for files that are legitimately
// outside the simulation discipline (real-threads benchmark harnesses).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mpicontend/internal/analysis/callgraph"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Applies reports whether the analyzer checks the package with the
	// given import path. Nil means it applies everywhere.
	Applies func(importPath string) bool
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned for the driver's output.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path of the package under analysis
	Pkg      *types.Package
	Info     *types.Info

	// Graph is the call graph over every package loaded in this run,
	// with per-function facts; interprocedural analyzers (lockorder,
	// hotalloc, the taint consumers) walk it across package boundaries.
	// A node belongs to this pass's package when node.Unit.Pkg == Pkg.
	Graph *callgraph.Graph

	diags  *[]Diagnostic
	allows *AllowIndex
}

// fileAllows holds the parsed allow directives of one file.
type fileAllows struct {
	fileWide map[string]bool
	byLine   map[int]map[string]bool
}

// allowPrefix introduces line-scoped directives; allowFilePrefix file-wide
// ones. Both require a reason after the rule name.
const (
	allowPrefix     = "//simcheck:allow "
	allowFilePrefix = "//simcheck:allow-file "
)

// parseAllows extracts the allow directives of f. Malformed directives
// (no rule, or rule without a reason) are ignored so the underlying
// diagnostic still fires and prompts a real justification.
func parseAllows(fset *token.FileSet, f *ast.File) *fileAllows {
	fa := &fileAllows{fileWide: map[string]bool{}, byLine: map[int]map[string]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			fileWide := false
			var rest string
			switch {
			case strings.HasPrefix(text, allowFilePrefix):
				fileWide = true
				rest = text[len(allowFilePrefix):]
			case strings.HasPrefix(text, allowPrefix):
				rest = text[len(allowPrefix):]
			default:
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // rule without a reason: not a valid suppression
			}
			rule := fields[0]
			if fileWide {
				fa.fileWide[rule] = true
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if fa.byLine[l] == nil {
					fa.byLine[l] = map[string]bool{}
				}
				fa.byLine[l][rule] = true
			}
		}
	}
	return fa
}

// AllowIndex caches parsed allow directives per file, for allow checks
// outside a Pass — interprocedural analyzers consult it when deciding
// whether to traverse a call edge in a foreign package.
type AllowIndex struct {
	fset  *token.FileSet
	cache map[*ast.File]*fileAllows
}

// NewAllowIndex returns an empty index over the given file set.
func NewAllowIndex(fset *token.FileSet) *AllowIndex {
	return &AllowIndex{fset: fset, cache: map[*ast.File]*fileAllows{}}
}

// Allowed reports whether an allow directive for rule (or "all") covers
// pos in one of files.
func (ai *AllowIndex) Allowed(files []*ast.File, pos token.Pos, rule string) bool {
	position := ai.fset.Position(pos)
	for _, f := range files {
		if ai.fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		fa := ai.cache[f]
		if fa == nil {
			fa = parseAllows(ai.fset, f)
			ai.cache[f] = fa
		}
		for _, r := range []string{rule, "all"} {
			if fa.fileWide[r] || fa.byLine[position.Line][r] {
				return true
			}
		}
	}
	return false
}

// allowed reports whether a diagnostic of this pass's rule at pos is
// suppressed by an allow directive.
func (p *Pass) allowed(pos token.Pos) bool {
	return p.allows.Allowed(p.Files, pos, p.Analyzer.Name)
}

// Reportf records a diagnostic at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run applies each applicable analyzer to one loaded package. The call
// graph the interprocedural analyzers see covers only that package; use
// RunAll to give them the whole module.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAll([]*Package{pkg}, analyzers)
}

// BuildGraph constructs the call graph + facts layer over the loaded
// packages, in the deterministic order given.
func BuildGraph(pkgs []*Package) *callgraph.Graph {
	if len(pkgs) == 0 {
		return callgraph.Build(token.NewFileSet(), nil)
	}
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{
			Path:  p.Path,
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
		})
	}
	return callgraph.Build(pkgs[0].Fset, units)
}

// RunAll builds one call graph over every loaded package, then applies
// each applicable analyzer to each package with that shared graph, and
// returns the diagnostics sorted by position. Interprocedural analyzers
// are expected to report only at positions inside the pass's own package,
// so diagnostics stay deduplicated and allow directives apply where the
// code is.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	if len(pkgs) == 0 {
		return diags, nil
	}
	graph := BuildGraph(pkgs)
	allows := NewAllowIndex(pkgs[0].Fset)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Graph:    graph,
				diags:    &diags,
				allows:   allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// Allows exposes the pass's allow index for analyzers that prune their own
// traversals (hotalloc skips call edges carrying an allow directive).
func (p *Pass) Allows() *AllowIndex { return p.allows }

// SortDiagnostics orders diagnostics by file, line, column, rule, message
// so driver output is stable.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// PathHasSegment reports whether the import path contains seg as a whole
// slash-separated element — the helper analyzers use for scoping.
func PathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
