// Package pkgdoc requires every package to carry a package-level doc
// comment, so each package states its role and which side of the
// core/shell boundary it lives on (see docs/ARCHITECTURE.md). Library
// packages must open with the standard "Package <name>" form; command and
// example mains are free-form (they conventionally open with "Command
// <name>" or a headline). External test packages (package foo_test) are
// exempt.
package pkgdoc

import (
	"go/ast"
	"sort"
	"strings"

	"mpicontend/internal/analysis"
)

// Analyzer is the pkgdoc rule.
var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc: "require a package-level doc comment on every package (library " +
		"packages in the standard \"Package <name>\" form), so each states " +
		"its role and core/shell side",
	Run: run,
}

func run(pass *analysis.Pass) error {
	name := pass.Pkg.Name()
	if strings.HasSuffix(name, "_test") {
		return nil
	}
	files := append([]*ast.File(nil), pass.Files...)
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Pos()).Filename <
			pass.Fset.Position(files[j].Pos()).Filename
	})
	for _, f := range files {
		if f.Doc == nil || strings.TrimSpace(f.Doc.Text()) == "" {
			continue
		}
		if name != "main" && !strings.HasPrefix(f.Doc.Text(), "Package "+name) {
			pass.Reportf(f.Name.Pos(),
				"package doc comment should start %q so godoc lists it conventionally",
				"Package "+name)
		}
		return nil
	}
	if len(files) > 0 {
		pass.Reportf(files[0].Name.Pos(),
			"package %s has no package-level doc comment; state its role and whether it is deterministic core or driver shell (docs/ARCHITECTURE.md)",
			name)
	}
	return nil
}
