package pkgdoc_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/pkgdoc"
)

func TestGoldenMissing(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer, "testdata/src/a",
		"mpicontend/internal/analysis/pkgdoc/testdata/src/a")
}

func TestGoldenWrongForm(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer, "testdata/src/b",
		"mpicontend/internal/analysis/pkgdoc/testdata/src/b")
}
