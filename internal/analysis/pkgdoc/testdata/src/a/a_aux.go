package a

// Aux exists so the missing-doc diagnostic lands on the alphabetically
// first file only.
func Aux() int { return 2 }
