package a // want `package a has no package-level doc comment`

func A() int { return 1 }
