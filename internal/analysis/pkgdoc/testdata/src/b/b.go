// A doc comment that does not follow the standard form.
package b // want `package doc comment should start "Package b"`

func B() int { return 1 }
