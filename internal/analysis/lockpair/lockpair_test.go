package lockpair_test

import (
	"testing"

	"mpicontend/internal/analysis/analysistest"
	"mpicontend/internal/analysis/lockpair"
)

func TestGolden(t *testing.T) {
	// The fake import path keeps the analyzer's internal/mpi scope while
	// the sources live in this package's testdata.
	analysistest.Run(t, lockpair.Analyzer, "testdata/src/a",
		"mpicontend/internal/mpi/tdlockpair")
}

func TestScope(t *testing.T) {
	if lockpair.Analyzer.Applies("mpicontend/internal/trace") {
		t.Errorf("lockpair is specific to the MPI runtime package")
	}
	if !lockpair.Analyzer.Applies("mpicontend/internal/mpi") {
		t.Errorf("lockpair must apply to internal/mpi")
	}
}
