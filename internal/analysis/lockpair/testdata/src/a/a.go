// Package a is golden-test input for the lockpair analyzer: critical
// sections must pair acquisitions with releases on every return path, and
// nothing may block on real concurrency while a section is held.
package a

type lock struct{}

func (l *lock) Acquire() {}
func (l *lock) Release() {}

type runtime struct{}

func (runtime) mainBegin() {}
func (runtime) mainEnd()   {}
func (runtime) stateEnd()  {}

type parker struct{}

func (parker) Park() {}

func work() {}

func leaks(l *lock) {
	l.Acquire() // want `Acquire/Release acquisition of l is not released on the fall-through return path`
}

func balanced(l *lock) {
	l.Acquire()
	defer l.Release()
	work()
}

// deferredClosure discharges the section through a deferred closure.
func deferredClosure(l *lock) {
	l.Acquire()
	defer func() { l.Release() }()
	work()
}

// earlyReturn leaks on the conditional return: the release below never
// runs on that path.
func earlyReturn(l *lock, skip bool) {
	l.Acquire()
	if skip {
		return // want `return with Acquire/Release section of l still held`
	}
	l.Release()
}

// deferTooLate registers the deferred release only after the return that
// leaks, so the early path still escapes with the section held.
func deferTooLate(l *lock, skip bool) {
	l.Acquire()
	if skip {
		return // want `return with Acquire/Release section of l still held`
	}
	defer l.Release()
	work()
}

// earlyReturnAfterDefer is clean: the defer precedes every return.
func earlyReturnAfterDefer(l *lock, skip bool) {
	l.Acquire()
	defer l.Release()
	if skip {
		return
	}
	work()
}

// branchRelease is clean: both arms release before the join.
func branchRelease(l *lock, alt bool) {
	l.Acquire()
	if alt {
		l.Release()
	} else {
		l.Release()
	}
}

// oneArmLeaks releases on one arm only; the join still holds the section.
func oneArmLeaks(l *lock, alt bool) {
	l.Acquire() // want `Acquire/Release acquisition of l is not released on the fall-through return path`
	if alt {
		l.Release()
	}
}

// switchPaths is clean: every case, and the implicit no-match path,
// balances before the function returns.
func switchPaths(l *lock, n int) {
	l.Acquire()
	defer l.Release()
	switch n {
	case 0:
		work()
	case 1:
		return
	}
}

// loopBalanced is clean: each iteration opens and closes its own section.
func loopBalanced(l *lock, n int) {
	for i := 0; i < n; i++ {
		l.Acquire()
		work()
		l.Release()
	}
}

// panicPath is clean: the panicking arm never returns normally.
func panicPath(l *lock, bad bool) {
	l.Acquire()
	if bad {
		panic("corrupt state")
	}
	l.Release()
}

// doubleEntry leaks one of two acquisitions: still flagged.
func doubleEntry(l *lock, again bool) {
	l.Acquire() // want `Acquire/Release acquisition of l is not released on the fall-through return path`
	if again {
		l.Acquire()
	}
	l.Release()
}

// mismatched pairs do not cancel: mainBegin cannot be closed by stateEnd.
func mismatched(r runtime) {
	r.mainBegin() // want `mainBegin/mainEnd acquisition of r is not released on the fall-through return path`
	r.stateEnd()  // want `stateBegin/stateEnd release of r with no acquisition`
}

func bareWrapper(l *lock) {
	l.Release() // want `Acquire/Release release of l with no acquisition`
}

// annotatedWrapper is the legitimate protocol-wrapper shape: the release
// closes a section opened in a caller, and the annotation records why.
//
//simcheck:allow lockpair testdata protocol wrapper; opened by the caller
func annotatedWrapper(l *lock) { l.Release() }

func blocksWhileHeld(l *lock, ch chan int, p parker) {
	l.Acquire()
	ch <- 1   // want `channel send while the critical section is held`
	<-ch      // want `channel receive while the critical section is held`
	go work() // want `go statement while the critical section is held`
	p.Park()  // want `Park while the critical section is held`
	l.Release()
}

// blocksAfterRelease is clean: the section is closed before the channel op.
func blocksAfterRelease(l *lock, ch chan int) {
	l.Acquire()
	work()
	l.Release()
	ch <- 1
}
