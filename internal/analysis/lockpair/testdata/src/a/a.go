// Package a is golden-test input for the lockpair analyzer: critical
// sections must pair acquisitions with releases per function, and nothing
// may block on real concurrency while a section is held.
package a

type lock struct{}

func (l *lock) Acquire() {}
func (l *lock) Release() {}

type runtime struct{}

func (runtime) mainBegin() {}
func (runtime) mainEnd()   {}
func (runtime) stateEnd()  {}

type parker struct{}

func (parker) Park() {}

func work() {}

func leaks(l *lock) {
	l.Acquire() // want `1 Acquire/Release acquisition\(s\) of l but only 0 release\(s\)`
}

func balanced(l *lock) {
	l.Acquire()
	defer l.Release()
	work()
}

// doubleEntry leaks one of two acquisitions: still flagged.
func doubleEntry(l *lock, again bool) {
	l.Acquire() // want `2 Acquire/Release acquisition\(s\) of l but only 1 release\(s\)`
	if again {
		l.Acquire()
	}
	l.Release()
}

// mismatched pairs do not cancel: mainBegin cannot be closed by stateEnd.
func mismatched(r runtime) {
	r.mainBegin() // want `1 mainBegin/mainEnd acquisition\(s\) of r but only 0 release\(s\)`
	r.stateEnd()  // want `stateBegin/stateEnd release of r with no acquisition`
}

func bareWrapper(l *lock) {
	l.Release() // want `Acquire/Release release of l with no acquisition`
}

// annotatedWrapper is the legitimate protocol-wrapper shape: the release
// closes a section opened in a caller, and the annotation records why.
//
//simcheck:allow lockpair testdata protocol wrapper; opened by the caller
func annotatedWrapper(l *lock) { l.Release() }

func blocksWhileHeld(l *lock, ch chan int, p parker) {
	l.Acquire()
	ch <- 1   // want `channel send while the critical section is held`
	<-ch      // want `channel receive while the critical section is held`
	go work() // want `go statement while the critical section is held`
	p.Park()  // want `Park while the critical section is held`
	l.Release()
}

// blocksAfterRelease is clean: the section is closed before the channel op.
func blocksAfterRelease(l *lock, ch chan int) {
	l.Acquire()
	work()
	l.Release()
	ch <- 1
}
