// Package lockpair enforces the critical-section discipline of the
// simulated MPI runtime (internal/mpi): every lock acquisition must have a
// matching release on all return paths of the same function, and nothing
// may block on real concurrency primitives while the critical section is
// held. An unbalanced section, or a baton-channel operation under the
// lock, corrupts exactly the arbitration measurements the paper is about
// (who gets the critical section next, and when).
//
// The check is flow-insensitive, per function, per lock expression:
//
//   - Calls named Acquire/enter/mainBegin/stateBegin are acquisitions;
//     Release/exit/mainEnd/stateEnd are the matching releases. The pair
//     kind and the receiver text (p.cs, p.queueCS, th, ...) form the key.
//   - More acquisitions than releases of one key means some path leaks
//     the section. A release with no acquisition in the same function is
//     a protocol wrapper and must be annotated.
//   - Between an acquisition and its release (or the end of the enclosing
//     block), go statements, channel sends/receives, select statements,
//     and sim.Thread.Park calls are flagged. Virtual-time th.S.Sleep is
//     fine — it models work inside the section.
//
// Cross-function protocol wrappers (mainBegin/mainEnd themselves, the
// csLock.enter/exit helpers) carry //simcheck:allow lockpair annotations.
package lockpair

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"

	"mpicontend/internal/analysis"
)

// pairKind maps acquire-like and release-like method names onto the pair
// they belong to, so th.mainBegin cannot be "matched" by th.stateEnd.
var acquireKind = map[string]string{
	"Acquire": "Acquire/Release", "enter": "enter/exit",
	"mainBegin": "mainBegin/mainEnd", "stateBegin": "stateBegin/stateEnd",
}
var releaseKind = map[string]string{
	"Release": "Acquire/Release", "exit": "enter/exit",
	"mainEnd": "mainBegin/mainEnd", "stateEnd": "stateBegin/stateEnd",
}

// Analyzer is the lockpair rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc: "critical-section Acquire/Release (and mainBegin/mainEnd, " +
		"stateBegin/stateEnd) must pair on all return paths, and no real " +
		"blocking (go, channel ops, select, Park) may happen while held",
	Applies: func(path string) bool {
		return strings.Contains(path, "internal/mpi")
	},
	Run: run,
}

// site is one acquire or release occurrence.
type site struct {
	pos  token.Pos
	key  string // pair kind + receiver expression text
	name string // method name as written
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return true
		})
	}
	return nil
}

// checkFunc applies both rules to one function body. For the pairing
// counts the whole body, closures included, is one bag: a deferred
// closure releasing the section balances the function's acquisition.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var acquires, releases []site
	collectSites(fd.Body, &acquires, &releases, true)

	byKey := map[string][2][]site{}
	for _, a := range acquires {
		e := byKey[a.key]
		e[0] = append(e[0], a)
		byKey[a.key] = e
	}
	for _, r := range releases {
		e := byKey[r.key]
		e[1] = append(e[1], r)
		byKey[r.key] = e
	}
	// Deterministic report order: first occurrence position per key.
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	firstPos := func(k string) token.Pos {
		p := token.Pos(1 << 30)
		for _, group := range byKey[k] {
			for _, s := range group {
				if s.pos < p {
					p = s.pos
				}
			}
		}
		return p
	}
	sort.Slice(keys, func(i, j int) bool { return firstPos(keys[i]) < firstPos(keys[j]) })
	for _, k := range keys {
		acq, rel := byKey[k][0], byKey[k][1]
		pair, recv := splitKey(k)
		switch {
		case len(acq) > len(rel):
			pass.Reportf(acq[0].pos,
				"%d %s acquisition(s) of %s but only %d release(s); a return path leaks the critical section",
				len(acq), pair, recv, len(rel))
		case len(acq) == 0 && len(rel) > 0:
			pass.Reportf(rel[0].pos,
				"%s release of %s with no acquisition in this function; annotate protocol wrappers with //simcheck:allow lockpair <reason>",
				pair, recv)
		}
	}

	scanHeldBlocks(pass, fd.Body)
}

// collectSites records acquire/release calls under n; funcLits controls
// whether function-literal bodies are included.
func collectSites(n ast.Node, acquires, releases *[]site, funcLits bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && !funcLits && x != n {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if kind, ok := acquireKind[name]; ok {
			*acquires = append(*acquires, site{call.Pos(), kind + "\x00" + exprText(sel.X), name})
		} else if kind, ok := releaseKind[name]; ok {
			*releases = append(*releases, site{call.Pos(), kind + "\x00" + exprText(sel.X), name})
		}
		return true
	})
}

// scanHeldBlocks walks every statement list (closure bodies included;
// each list accounts independently) and flags real blocking constructs
// appearing while at least one critical section opened in the same list
// is still held.
func scanHeldBlocks(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		held := 0
		for _, stmt := range list {
			var acq, rel []site
			collectSites(stmt, &acq, &rel, false)
			if held > 0 {
				reportBlocking(pass, stmt)
			}
			held += len(acq) - len(rel)
			if held < 0 {
				held = 0
			}
		}
		return true
	})
}

// reportBlocking flags the real-concurrency constructs inside stmt.
func reportBlocking(pass *analysis.Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement while the critical section is held")
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send while the critical section is held")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "channel receive while the critical section is held")
			}
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select while the critical section is held")
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Park" {
				pass.Reportf(x.Pos(), "Park while the critical section is held; release before blocking")
			}
		}
		return true
	})
}

// exprText renders an expression (a lock receiver chain) as source text.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

// splitKey separates a site key back into pair kind and receiver text.
func splitKey(k string) (pair, recv string) {
	if i := strings.IndexByte(k, 0); i >= 0 {
		return k[:i], k[i+1:]
	}
	return k, "?"
}
