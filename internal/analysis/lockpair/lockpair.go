// Package lockpair enforces the critical-section discipline of the
// simulated MPI runtime (internal/mpi): every lock acquisition must have a
// matching release on every return path of the same function, and nothing
// may block on real concurrency primitives while the critical section is
// held. An unbalanced section, or a baton-channel operation under the
// lock, corrupts exactly the arbitration measurements the paper is about
// (who gets the critical section next, and when).
//
// The pairing check is path-sensitive, per function, per lock expression:
//
//   - Calls named Acquire/enter/mainBegin/stateBegin are acquisitions;
//     Release/exit/mainEnd/stateEnd are the matching releases. The pair
//     kind and the receiver text (p.cs, p.queueCS, th, ...) form the key.
//   - The statement walk tracks the held sections along each control-flow
//     path: branches merge conservatively (a section held on either arm
//     counts as held), loops may run zero times, and terminated paths
//     (return, panic, t.Fatal) stop merging. A return — explicit or the
//     fall-through at the end of the body — while a section is still held
//     is a leak, reported at the return or at the unmatched acquisition.
//   - defer l.Release() (and deferred closures that release) discharges
//     the section on every return that executes after the defer
//     statement; a return reached before the defer is still a leak.
//   - A release with no acquisition in the same function is a protocol
//     wrapper and must be annotated.
//   - Between an acquisition and its release (or the end of the enclosing
//     block), go statements, channel sends/receives, select statements,
//     and sim.Thread.Park calls are flagged. Virtual-time th.S.Sleep is
//     fine — it models work inside the section.
//
// Cross-function protocol wrappers (mainBegin/mainEnd themselves, the
// csLock.enter/exit helpers) carry //simcheck:allow lockpair annotations;
// deadlocks that only emerge across functions are the lockorder
// analyzer's job.
package lockpair

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"

	"mpicontend/internal/analysis"
)

// pairKind maps acquire-like and release-like method names onto the pair
// they belong to, so th.mainBegin cannot be "matched" by th.stateEnd.
var acquireKind = map[string]string{
	"Acquire": "Acquire/Release", "enter": "enter/exit",
	"mainBegin": "mainBegin/mainEnd", "stateBegin": "stateBegin/stateEnd",
}
var releaseKind = map[string]string{
	"Release": "Acquire/Release", "exit": "enter/exit",
	"mainEnd": "mainBegin/mainEnd", "stateEnd": "stateBegin/stateEnd",
}

// Analyzer is the lockpair rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc: "critical-section Acquire/Release (and mainBegin/mainEnd, " +
		"stateBegin/stateEnd) must pair on all return paths, and no real " +
		"blocking (go, channel ops, select, Park) may happen while held",
	Applies: func(path string) bool {
		return strings.Contains(path, "internal/mpi")
	},
	Run: run,
}

// site is one acquire or release occurrence.
type site struct {
	pos     token.Pos
	key     string // pair kind + receiver expression text
	acquire bool
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return true
		})
	}
	return nil
}

// checkFunc applies the rules to one function body: the wrapper-shape
// check over the whole body (closures included), the path-sensitive leak
// walk over the declared statements, and the blocking scan.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	all := collectOps(fd.Body, true)
	if len(all) > 0 {
		reportWrappers(pass, all)
		c := &checker{pass: pass}
		if out := c.execList(fd.Body.List, newPathState()); out != nil {
			c.checkExit(token.NoPos, out)
		}
	}
	scanHeldBlocks(pass, fd.Body)
}

// reportWrappers flags keys that are only ever released in this function:
// the protocol-wrapper shape, which needs an explicit annotation.
func reportWrappers(pass *analysis.Pass, ops []site) {
	acquired := map[string]bool{}
	for _, op := range ops {
		if op.acquire {
			acquired[op.key] = true
		}
	}
	seen := map[string]bool{}
	for _, op := range ops {
		if op.acquire || acquired[op.key] || seen[op.key] {
			continue
		}
		seen[op.key] = true
		pair, recv := splitKey(op.key)
		pass.Reportf(op.pos,
			"%s release of %s with no acquisition in this function; annotate protocol wrappers with //simcheck:allow lockpair <reason>",
			pair, recv)
	}
}

// pathState is the abstract state along one control-flow path: the
// unmatched acquisitions per key (in acquisition order) and the deferred
// releases registered so far.
type pathState struct {
	held     map[string][]site
	deferred map[string]int
}

func newPathState() *pathState {
	return &pathState{held: map[string][]site{}, deferred: map[string]int{}}
}

func (st *pathState) clone() *pathState {
	out := newPathState()
	for k, v := range st.held {
		out.held[k] = append([]site(nil), v...)
	}
	for k, v := range st.deferred {
		out.deferred[k] = v
	}
	return out
}

// mergeStates joins two branch exits. nil marks a terminated path (it
// never reaches the join). Held sections merge pessimistically — the
// longer unmatched stack wins — and deferred releases optimistically, so
// a leak is reported whenever some path can leak.
func mergeStates(a, b *pathState) *pathState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for k, v := range b.held {
		if len(v) > len(out.held[k]) {
			out.held[k] = append([]site(nil), v...)
		}
	}
	// Deferred counts merge optimistically to the minimum; keys missing
	// from either side read as zero, so keys only in b need no entry.
	for k := range out.deferred {
		if b.deferred[k] < out.deferred[k] {
			out.deferred[k] = b.deferred[k]
		}
	}
	return out
}

// checker walks a function's statements, threading pathState through.
type checker struct {
	pass *analysis.Pass
}

// execList executes a statement list; nil means the path terminated.
func (c *checker) execList(list []ast.Stmt, st *pathState) *pathState {
	for _, s := range list {
		if st == nil {
			return nil
		}
		st = c.execStmt(s, st)
	}
	return st
}

// execStmt executes one statement, returning the exit state or nil for a
// terminated path.
func (c *checker) execStmt(s ast.Stmt, st *pathState) *pathState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.execList(s.List, st)
	case *ast.LabeledStmt:
		return c.execStmt(s.Stmt, st)
	case *ast.ReturnStmt:
		apply(collectOps(s, false), st)
		c.checkExit(s.Pos(), st)
		return nil
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat the path
		// as not reaching the join (its sections re-merge at the loop).
		return nil
	case *ast.DeferStmt:
		for _, op := range collectOps(s.Call, true) {
			if !op.acquire {
				st.deferred[op.key]++
			}
		}
		return st
	case *ast.GoStmt:
		// The spawned body runs elsewhere; its sections are its own.
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			if st = c.execStmt(s.Init, st); st == nil {
				return nil
			}
		}
		apply(collectOps(s.Cond, false), st)
		thenOut := c.execStmt(s.Body, st.clone())
		elseOut := st
		if s.Else != nil {
			elseOut = c.execStmt(s.Else, st.clone())
		}
		return mergeStates(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			if st = c.execStmt(s.Init, st); st == nil {
				return nil
			}
		}
		apply(collectOps(s.Cond, false), st)
		bodyOut := c.execStmt(s.Body, st.clone())
		return mergeStates(st, bodyOut) // body may run zero times
	case *ast.RangeStmt:
		apply(collectOps(s.X, false), st)
		bodyOut := c.execStmt(s.Body, st.clone())
		return mergeStates(st, bodyOut)
	case *ast.SwitchStmt:
		return c.execClauses(s.Init, s.Tag, s.Body, st)
	case *ast.TypeSwitchStmt:
		return c.execClauses(s.Init, nil, s.Body, st)
	case *ast.SelectStmt:
		return c.execClauses(nil, nil, s.Body, st)
	case *ast.ExprStmt:
		apply(collectOps(s, false), st)
		if isTerminator(s.X) {
			return nil
		}
		return st
	default:
		apply(collectOps(s, false), st)
		return st
	}
}

// execClauses runs each case body from the pre-switch state and merges
// the exits; without a default the entry state joins too.
func (c *checker) execClauses(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, st *pathState) *pathState {
	if init != nil {
		if st = c.execStmt(init, st); st == nil {
			return nil
		}
	}
	if tag != nil {
		apply(collectOps(tag, false), st)
	}
	var merged *pathState
	hasDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			list, hasDefault = cl.Body, hasDefault || cl.List == nil
		case *ast.CommClause:
			list, hasDefault = cl.Body, hasDefault || cl.Comm == nil
		default:
			continue
		}
		merged = mergeStates(merged, c.execList(list, st.clone()))
	}
	if !hasDefault {
		merged = mergeStates(merged, st)
	}
	if merged == nil {
		return nil
	}
	return merged
}

// checkExit reports the sections still held at a return. retPos is the
// return statement, or NoPos for the fall-through exit at the end of the
// body (then the report anchors at the unmatched acquisition).
func (c *checker) checkExit(retPos token.Pos, st *pathState) {
	keys := make([]string, 0, len(st.held))
	for key := range st.held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var leaks []site
	for _, key := range keys {
		stack := st.held[key]
		n := len(stack) - st.deferred[key]
		for i := 0; i < n && i < len(stack); i++ {
			leaks = append(leaks, stack[i])
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pair, recv := splitKey(l.key)
		if retPos.IsValid() {
			c.pass.Reportf(retPos,
				"return with %s section of %s still held; release it (or defer the release) before returning",
				pair, recv)
		} else {
			c.pass.Reportf(l.pos,
				"%s acquisition of %s is not released on the fall-through return path",
				pair, recv)
		}
	}
}

// apply folds ordered acquire/release ops into the path state. A release
// with nothing held is the wrapper shape, handled separately.
func apply(ops []site, st *pathState) {
	for _, op := range ops {
		if op.acquire {
			st.held[op.key] = append(st.held[op.key], op)
		} else if n := len(st.held[op.key]); n > 0 {
			st.held[op.key] = st.held[op.key][:n-1]
		}
	}
}

// isTerminator reports whether a call expression never returns: panic, or
// the conventional fatal exits.
func isTerminator(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
			return true
		}
	}
	return false
}

// collectOps records acquire/release calls under n in source order;
// funcLits controls whether function-literal bodies are included.
func collectOps(n ast.Node, funcLits bool) []site {
	if n == nil {
		return nil
	}
	var ops []site
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && !funcLits && x != n {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if kind, ok := acquireKind[name]; ok {
			ops = append(ops, site{call.Pos(), kind + "\x00" + exprText(sel.X), true})
		} else if kind, ok := releaseKind[name]; ok {
			ops = append(ops, site{call.Pos(), kind + "\x00" + exprText(sel.X), false})
		}
		return true
	})
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// scanHeldBlocks walks every statement list (closure bodies included;
// each list accounts independently) and flags real blocking constructs
// appearing while at least one critical section opened in the same list
// is still held.
func scanHeldBlocks(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		held := 0
		for _, stmt := range list {
			if _, ok := stmt.(*ast.DeferStmt); ok {
				continue // deferred releases run at exit, not here
			}
			if held > 0 {
				reportBlocking(pass, stmt)
			}
			for _, op := range collectOps(stmt, false) {
				if op.acquire {
					held++
				} else if held > 0 {
					held--
				}
			}
		}
		return true
	})
}

// reportBlocking flags the real-concurrency constructs inside stmt.
func reportBlocking(pass *analysis.Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement while the critical section is held")
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send while the critical section is held")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "channel receive while the critical section is held")
			}
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select while the critical section is held")
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Park" {
				pass.Reportf(x.Pos(), "Park while the critical section is held; release before blocking")
			}
		}
		return true
	})
}

// exprText renders an expression (a lock receiver chain) as source text.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

// splitKey separates a site key back into pair kind and receiver text.
func splitKey(k string) (pair, recv string) {
	if i := strings.IndexByte(k, 0); i >= 0 {
		return k[:i], k[i+1:]
	}
	return k, "?"
}
