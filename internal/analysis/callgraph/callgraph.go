// Package callgraph builds a module-wide, type-checked call graph over the
// packages the simcheck loader produced, plus a per-function facts layer
// (lock operations, blocking operations, allocation sites, wall-clock and
// map-order taint) that the interprocedural analyzers — lockorder,
// hotalloc, and the taint-consuming upgrades of nodeterm and maporder —
// walk across package boundaries.
//
// The graph is deliberately conservative and deliberately simple:
//
//   - Static dispatch (direct calls to declared functions and methods)
//     resolves exactly.
//   - Interface method calls resolve by class-hierarchy approximation:
//     every module method with the same name and parameter count is a
//     candidate callee.
//   - Calls through function values resolve to every module function or
//     method whose value was taken somewhere (address-taken) with a
//     matching parameter count. Function literals are not tracked as
//     dynamic targets; instead a literal's body is attributed to the
//     function that lexically encloses it, which over-approximates in the
//     right direction for facts.
//
// Because the loader type-checks each directory as its own unit, the same
// package can be represented by distinct *types.Package objects (its own
// unit versus the copy imported by another unit). Nodes are therefore
// keyed by stable strings — "pkgpath.Func" and "pkgpath.(Recv).Method" —
// rather than by object identity.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Unit is one type-checked package as produced by the analysis loader.
type Unit struct {
	Path  string // import path used for scoping (test units share the dir's path)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// EdgeKind classifies how a call site was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method, resolved
	// conservatively to every same-name same-arity module method.
	EdgeInterface
	// EdgeDynamic is a call through a function value, resolved
	// conservatively to every address-taken module function of matching
	// arity.
	EdgeDynamic
)

// Edge is one call site inside a node's body (closures included).
type Edge struct {
	Pos    token.Pos
	Callee string   // node key; resolved lazily for interface/dynamic calls
	Kind   EdgeKind
	Name   string // callee method/function name as written at the site
	// RecvCanon is the canonical form of the receiver expression at the
	// call site ("" when there is none or it cannot be canonicalized); the
	// facts layer uses it to re-root the callee's receiver-relative lock
	// identities into the caller's frame.
	RecvCanon string
}

// Node is one declared function or method. Function-literal bodies are
// attributed to the enclosing declaration.
type Node struct {
	Key   string
	Func  *types.Func
	Decl  *ast.FuncDecl
	Unit  *Unit
	Edges []*Edge // in source order
	// RecvRoot is "(pkgpath.Type)" for methods, "" for plain functions;
	// lock identities inside the body are expressed relative to it.
	RecvRoot string

	Facts *Facts
}

// Graph is the module-wide call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes map[string]*Node
	keys  []string // sorted node keys, for deterministic iteration

	// methodIndex maps name\x00arity to the keys of all module methods,
	// for interface-call resolution; dynIndex maps arity to address-taken
	// function keys.
	methodIndex map[string][]string
	dynIndex    map[int][]string

	transAcq  map[*Node][]LockID
	blockW    map[*Node]*Witness
	summaries map[*Node]*Summary
}

// Keys returns the node keys in sorted order.
func (g *Graph) Keys() []string { return g.keys }

// Lookup returns the node for a key, or nil.
func (g *Graph) Lookup(key string) *Node { return g.Nodes[key] }

// FuncKey renders the stable node key of a declared function or method.
func FuncKey(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return pkg + ".(" + name + ")." + obj.Name()
		}
	}
	return pkg + "." + obj.Name()
}

// recvTypeName names the receiver's base type ("" for anonymous).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// arity counts a signature's parameters (variadic counts as one).
func arity(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	return sig.Params().Len()
}

// Build constructs the graph over the given units. Deterministic: units
// are processed in the order given (the callers sort them), files and
// declarations in source order.
func Build(fset *token.FileSet, units []*Unit) *Graph {
	g := &Graph{
		Fset:        fset,
		Nodes:       map[string]*Node{},
		methodIndex: map[string][]string{},
		dynIndex:    map[int][]string{},
		transAcq:    map[*Node][]LockID{},
		blockW:      map[*Node]*Witness{},
		summaries:   map[*Node]*Summary{},
	}
	// First pass: create nodes and the method/dynamic indices.
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				n := &Node{Key: key, Func: obj, Decl: fd, Unit: u}
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					if name := recvTypeName(sig.Recv().Type()); name != "" && obj.Pkg() != nil {
						n.RecvRoot = "(" + obj.Pkg().Path() + "." + name + ")"
					}
					mk := obj.Name() + "\x00" + itoa(arity(sig))
					g.methodIndex[mk] = append(g.methodIndex[mk], key)
				}
				// Later units win on key collisions (should not happen for
				// well-formed modules; test units have distinct pkg paths).
				g.Nodes[key] = n
			}
		}
	}
	// Second pass: edges, address-taken functions, and local facts.
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.Nodes[FuncKey(obj)]
				if n == nil || n.Decl != fd {
					continue
				}
				canon := newCanonicalizer(n)
				g.scanBody(n, canon)
				n.Facts = localFacts(g.Fset, n, canon)
			}
		}
	}
	g.keys = make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	return g
}

// scanBody records call edges and address-taken functions under n's body.
func (g *Graph) scanBody(n *Node, canon *canonicalizer) {
	u := n.Unit
	// calledIdents collects the idents naming the function actually being
	// called, so the address-taken scan below can tell a call from a value
	// use of the same function.
	calledIdents := map[*ast.Ident]bool{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calledIdents[fun] = true
		case *ast.SelectorExpr:
			calledIdents[fun.Sel] = true
		}
		g.addCall(n, u, canon, call)
		return true
	})
	// Address-taken scan: uses of declared functions outside call-function
	// position become dynamic-dispatch candidates.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || calledIdents[id] {
			return true
		}
		obj, ok := u.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		sig, _ := obj.Type().(*types.Signature)
		key := FuncKey(obj)
		if _, exists := g.Nodes[key]; exists {
			a := arity(sig)
			if !contains(g.dynIndex[a], key) {
				g.dynIndex[a] = append(g.dynIndex[a], key)
			}
		}
		return true
	})
}

// addCall classifies one call site into an edge (or ignores it: builtin
// calls, type conversions, immediately-invoked literals).
func (g *Graph) addCall(n *Node, u *Unit, canon *canonicalizer, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := u.Info.Uses[fun]
		if f, ok := obj.(*types.Func); ok {
			n.Edges = append(n.Edges, &Edge{
				Pos: call.Pos(), Callee: FuncKey(f), Kind: EdgeStatic, Name: f.Name(),
			})
			return
		}
		// Builtins (append, make, ...), type conversions: not edges.
		return
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			recvCanon, _ := canon.expr(fun.X)
			if types.IsInterface(sel.Recv()) {
				n.Edges = append(n.Edges, &Edge{
					Pos: call.Pos(), Kind: EdgeInterface, Name: f.Name(),
					Callee:    interfaceKey(f),
					RecvCanon: recvCanon,
				})
				return
			}
			n.Edges = append(n.Edges, &Edge{
				Pos: call.Pos(), Callee: FuncKey(f), Kind: EdgeStatic,
				Name: f.Name(), RecvCanon: recvCanon,
			})
			return
		}
		// Package-qualified function: pkg.F(...).
		if f, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			n.Edges = append(n.Edges, &Edge{
				Pos: call.Pos(), Callee: FuncKey(f), Kind: EdgeStatic, Name: f.Name(),
			})
			return
		}
		// Type conversion through a qualified type: ignore.
		return
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed to n.
		return
	default:
		// Call through a function value. Resolve lazily by arity.
		tv, ok := u.Info.Types[call.Fun]
		if !ok {
			return
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		n.Edges = append(n.Edges, &Edge{
			Pos: call.Pos(), Kind: EdgeDynamic, Name: "",
			Callee: "\x00dyn" + itoa(arity(sig)),
		})
	}
}

// interfaceKey is the placeholder callee key of an interface call, holding
// what resolution needs: the method name and arity.
func interfaceKey(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	return "\x00iface" + f.Name() + "\x00" + itoa(arity(sig))
}

// Callees resolves an edge to its candidate callee nodes, in deterministic
// order. Static edges yield zero or one node (zero when the callee is
// outside the module, e.g. a stdlib function).
func (g *Graph) Callees(e *Edge) []*Node {
	switch e.Kind {
	case EdgeStatic:
		if n := g.Nodes[e.Callee]; n != nil {
			return []*Node{n}
		}
		return nil
	case EdgeInterface:
		rest := strings.TrimPrefix(e.Callee, "\x00iface")
		return g.nodesFor(g.methodIndex[rest])
	case EdgeDynamic:
		a := atoi(strings.TrimPrefix(e.Callee, "\x00dyn"))
		return g.nodesFor(g.dynIndex[a])
	}
	return nil
}

// nodesFor maps keys to nodes, sorted by key for determinism.
func (g *Graph) nodesFor(keys []string) []*Node {
	out := make([]*Node, 0, len(keys))
	seen := map[string]bool{}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for _, k := range sorted {
		if seen[k] {
			continue
		}
		seen[k] = true
		if n := g.Nodes[k]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Reachable walks the graph from the given roots, skipping edges for which
// skip returns true (nil skips nothing), and returns the reached nodes
// (roots included) sorted by key.
func (g *Graph) Reachable(roots []*Node, skip func(*Node, *Edge) bool) []*Node {
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Edges {
			if skip != nil && skip(n, e) {
				continue
			}
			for _, c := range g.Callees(e) {
				visit(c)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	out := make([]*Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// contains reports whether s holds v.
func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func itoa(n int) string { return strconv.Itoa(n) }

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
