package callgraph

// This file is the facts layer: per-function local summaries (lock
// operations with canonical lock identities, blocking operations,
// allocation sites, wall-clock and map-order taint) and the deterministic
// propagation machinery the interprocedural analyzers walk.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockID is a canonical lock identity. Identities are chains rooted either
// at a receiver type — "(pkg.Thread).P.cs.lock" — or at a package-level
// variable. Two lock expressions with the same identity are conservatively
// treated as the same lock; distinct fields yield distinct identities, so
// Proc.cs, Proc.queueCS and Proc.nicCS stay separate.
type LockID = string

// IsIndexed reports whether a lock identity passes through an indexed
// step — an array or slice of locks, rendered with "[]" by the
// canonicalizer, like "(mpi.Thread).P.vcis[].cs.lock". Every element of
// such a family canonicalizes to the one class: the class is kept
// distinct from every other lock (not collapsed), but its elements are
// statically indistinguishable (not exploded). Consumers that reason
// about re-acquisition must treat a same-class pair as two potentially
// different elements — legal under the module-wide ascending-index
// acquisition discipline — rather than as a reentrant self-deadlock.
func IsIndexed(id LockID) bool { return strings.Contains(id, "[]") }

// LockOp is one leaf lock operation: a call to a method named Acquire or
// Release. Higher-level protocol wrappers (csLock.enter, Thread.mainBegin)
// are not leaf ops — their effect arrives through call-edge summaries.
type LockOp struct {
	Pos      token.Pos
	ID       LockID
	Acquire  bool
	Deferred bool // inside a defer statement: applies at function exit
}

// Op is one position-tagged local fact (a blocking operation, an
// allocation site, a wall-clock read, a map range).
type Op struct {
	Pos  token.Pos
	Desc string
}

// Facts holds one function's local summaries, in source order.
type Facts struct {
	Locks     []LockOp
	Blocks    []Op // go/channel/select ops and Park calls (engine mechanics in internal/sim excluded)
	Allocs    []Op // heap-allocating constructs (panic arguments excluded)
	Wallclock []Op // time.Now-family calls and math/rand / crypto/rand uses
	MapRanges []Op // range statements over maps
}

// Summary is a function's net critical-section effect, in the function's
// own frame: locks that may remain held at return, and locks released
// without a matching acquisition (protocol-wrapper shape).
type Summary struct {
	NetHeld     []LockID
	NetReleased []LockID
}

// forbiddenTimeFuncs mirrors the nodeterm analyzer's wall-clock list.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randPackages are the ambient randomness sources.
var randPackages = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "crypto/rand": true,
}

// allocStdlib marks stdlib calls that allocate on every invocation.
func allocStdlib(pkg, name string) bool {
	switch pkg {
	case "fmt":
		return true
	case "errors":
		return name == "New"
	case "strconv":
		return strings.HasPrefix(name, "Format") || strings.HasPrefix(name, "Append") ||
			name == "Itoa" || name == "Quote"
	}
	return false
}

// localFacts scans one node's body (closures attributed to the node).
func localFacts(fset *token.FileSet, n *Node, canon *canonicalizer) *Facts {
	f := &Facts{}
	u := n.Unit
	simPkg := strings.Contains(u.Pkg.Path(), "internal/sim")

	// Panic-argument ranges: allocation inside panic(...) is exempt — a
	// panicking simulation is already dead.
	var panicRanges [][2]token.Pos
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinUse(u, id) {
			panicRanges = append(panicRanges, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	alloc := func(pos token.Pos, desc string) {
		if !inPanic(pos) {
			f.Allocs = append(f.Allocs, Op{pos, desc})
		}
	}

	// deferDepth tracks whether the walk is inside a defer statement (the
	// deferred call and everything under it, closures included).
	var walk func(x ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch e := x.(type) {
			case *ast.DeferStmt:
				if !deferred {
					walk(e.Call, true)
					return false
				}
			case *ast.GoStmt:
				if !simPkg {
					f.Blocks = append(f.Blocks, Op{e.Pos(), "go statement"})
				}
			case *ast.SendStmt:
				if !simPkg {
					f.Blocks = append(f.Blocks, Op{e.Pos(), "channel send"})
				}
			case *ast.UnaryExpr:
				if e.Op == token.ARROW && !simPkg {
					f.Blocks = append(f.Blocks, Op{e.Pos(), "channel receive"})
				}
				if e.Op == token.AND {
					if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
						alloc(e.Pos(), "composite literal escapes to the heap (&T{...})")
					}
				}
			case *ast.SelectStmt:
				if !simPkg {
					f.Blocks = append(f.Blocks, Op{e.Pos(), "select"})
				}
			case *ast.RangeStmt:
				if tv, ok := u.Info.Types[e.X]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						f.MapRanges = append(f.MapRanges, Op{e.Pos(), "range over map"})
					case *types.Chan:
						if !simPkg {
							f.Blocks = append(f.Blocks, Op{e.Pos(), "range over channel"})
						}
					}
				}
			case *ast.FuncLit:
				alloc(e.Pos(), "function literal (closure may escape to the heap)")
			case *ast.CompositeLit:
				if tv, ok := u.Info.Types[e]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						alloc(e.Pos(), "map literal")
					case *types.Slice:
						alloc(e.Pos(), "slice literal")
					}
				}
			case *ast.BinaryExpr:
				if e.Op == token.ADD {
					if tv, ok := u.Info.Types[e]; ok {
						if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
							alloc(e.Pos(), "string concatenation")
						}
					}
				}
			case *ast.CallExpr:
				scanCall(u, canon, f, e, deferred, simPkg, alloc)
			case *ast.Ident:
				if obj, ok := u.Info.Uses[e].(*types.Func); ok && obj.Pkg() != nil {
					if obj.Pkg().Path() == "time" && forbiddenTimeFuncs[obj.Name()] {
						f.Wallclock = append(f.Wallclock, Op{e.Pos(), "time." + obj.Name()})
					} else if randPackages[obj.Pkg().Path()] {
						f.Wallclock = append(f.Wallclock, Op{e.Pos(), obj.Pkg().Path() + "." + obj.Name()})
					}
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, false)

	sortOps(f.Blocks)
	sortOps(f.Allocs)
	sortOps(f.Wallclock)
	sortOps(f.MapRanges)
	sort.Slice(f.Locks, func(i, j int) bool { return f.Locks[i].Pos < f.Locks[j].Pos })
	return f
}

// scanCall records the call-shaped facts: leaf lock ops, Park calls, and
// allocating calls (make/new/append, allocating stdlib, conversions).
func scanCall(u *Unit, canon *canonicalizer, f *Facts, call *ast.CallExpr,
	deferred, simPkg bool, alloc func(token.Pos, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Builtin allocators. go/types records builtin idents in Uses as
		// *types.Builtin, so "not a declared object" means nil or builtin.
		if isBuiltinUse(u, fun) {
			switch fun.Name {
			case "make":
				alloc(call.Pos(), "make allocates")
			case "new":
				alloc(call.Pos(), "new allocates")
			case "append":
				if !isSliceDelete(call) {
					alloc(call.Pos(), "append may grow its backing array")
				}
			}
			return
		}
		if obj, ok := u.Info.Uses[fun].(*types.Func); ok && obj.Pkg() != nil &&
			allocStdlib(obj.Pkg().Path(), obj.Name()) {
			alloc(call.Pos(), obj.Pkg().Path()+"."+obj.Name()+" allocates")
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Acquire" || name == "Release" {
			if _, ok := u.Info.Selections[fun]; ok {
				id, _ := canon.expr(fun.X)
				if id == "" {
					id = "(unknown)"
				}
				f.Locks = append(f.Locks, LockOp{
					Pos: call.Pos(), ID: id, Acquire: name == "Acquire", Deferred: deferred,
				})
				return
			}
		}
		if name == "Park" && !simPkg {
			if _, ok := u.Info.Selections[fun]; ok {
				f.Blocks = append(f.Blocks, Op{call.Pos(), "Park"})
				return
			}
		}
		// Wall-clock reads are recorded by the Ident case (selector Sel
		// idents resolve there too); only allocation matters here.
		if obj, ok := u.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil &&
			allocStdlib(obj.Pkg().Path(), obj.Name()) {
			alloc(call.Pos(), obj.Pkg().Path()+"."+obj.Name()+" allocates")
		}
	default:
		// Conversions that copy: string(b), []byte(s), []rune(s).
		if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			dst := tv.Type.Underlying()
			if argTV, ok := u.Info.Types[call.Args[0]]; ok {
				src := argTV.Type.Underlying()
				if isStringByteConv(dst, src) {
					alloc(call.Pos(), "string/[]byte conversion copies")
				}
			}
		}
	}
}

// isBuiltinUse reports whether the ident resolves to a builtin (or to
// nothing at all), i.e. it does not name a declared function.
// isSliceDelete recognizes `append(s[:i], s[j:]...)` — the slice-delete
// idiom. The result is never longer than s, so the append cannot grow the
// backing array and does not allocate.
func isSliceDelete(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return sameSimpleExpr(dst.X, src.X)
}

// sameSimpleExpr reports whether two expressions are the same identifier
// or selector chain (conservatively false for anything else).
func sameSimpleExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameSimpleExpr(a.X, b.X)
	}
	return false
}

func isBuiltinUse(u *Unit, id *ast.Ident) bool {
	switch u.Info.Uses[id].(type) {
	case nil, *types.Builtin:
		return true
	}
	return false
}

// isStringByteConv reports whether a conversion between dst and src copies
// its operand (string <-> []byte / []rune).
func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}

func sortOps(ops []Op) {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Pos < ops[j].Pos })
}

// ---- canonical lock identities ----

// canonicalizer renders receiver expressions as canonical chains, using
// the enclosing function's receiver and simple single-assignment aliases
// (p := th.P) to keep chains comparable across functions.
type canonicalizer struct {
	u       *Unit
	recvObj types.Object
	root    string
	aliases map[types.Object]string
}

func newCanonicalizer(n *Node) *canonicalizer {
	c := &canonicalizer{u: n.Unit, root: n.RecvRoot, aliases: map[types.Object]string{}}
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
		c.recvObj = n.Unit.Info.Defs[n.Decl.Recv.List[0].Names[0]]
	}
	// Alias prepass, in source order: x := <canonicalizable expr> records
	// an alias; any later plain assignment to x invalidates it.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if as.Tok == token.DEFINE {
			if obj := n.Unit.Info.Defs[id]; obj != nil {
				if v, ok := c.expr(as.Rhs[0]); ok {
					c.aliases[obj] = v
				}
			}
			return true
		}
		if obj := n.Unit.Info.Uses[id]; obj != nil {
			delete(c.aliases, obj)
		}
		return true
	})
	return c
}

// expr canonicalizes a receiver chain. The fallback anchors at the
// expression's named type — "(pkg.T)" — which conservatively merges
// instances of the same type.
func (c *canonicalizer) expr(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.u.Info.Uses[x]
		if obj == nil {
			obj = c.u.Info.Defs[x]
		}
		if obj != nil {
			if obj == c.recvObj && c.root != "" {
				return c.root, true
			}
			if v, ok := c.aliases[obj]; ok {
				return v, true
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), true
			}
		}
		return c.typeFallback(x)
	case *ast.SelectorExpr:
		// Package-qualified: pkg.Var.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := c.u.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := c.u.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name(), true
				}
			}
		}
		if base, ok := c.expr(x.X); ok {
			return base + "." + x.Sel.Name, true
		}
		// Anchor the field at its owner's type.
		if tv, ok := c.u.Info.Types[x.X]; ok {
			if name := namedTypeID(tv.Type); name != "" {
				return name + "." + x.Sel.Name, true
			}
		}
		return "", false
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.expr(x.X)
		}
		return "", false
	case *ast.StarExpr:
		return c.expr(x.X)
	case *ast.IndexExpr:
		if base, ok := c.expr(x.X); ok {
			return base + "[]", true
		}
		return "", false
	default:
		return c.typeFallback(e)
	}
}

func (c *canonicalizer) typeFallback(e ast.Expr) (string, bool) {
	if tv, ok := c.u.Info.Types[e]; ok {
		if name := namedTypeID(tv.Type); name != "" {
			return name, true
		}
	}
	return "", false
}

// namedTypeID renders "(pkgpath.Type)" for a (possibly pointer-to) named
// type, "" otherwise.
func namedTypeID(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return "(" + n.Obj().Pkg().Path() + "." + n.Obj().Name() + ")"
}

// Lift re-roots a callee lock identity into the caller's frame: when the
// callee is a method and the call site's receiver canonicalized, the
// callee's receiver-rooted identities are rebased onto the caller-side
// receiver chain — (mpi.csLock).lock seen through p.cs.enter becomes
// (mpi.Thread).P.cs.lock.
func Lift(callee *Node, e *Edge, id LockID) LockID {
	if callee != nil && callee.RecvRoot != "" && e.RecvCanon != "" &&
		strings.HasPrefix(id, callee.RecvRoot) {
		return e.RecvCanon + strings.TrimPrefix(id, callee.RecvRoot)
	}
	return id
}

// FollowForLocks reports whether a lock-effect walk descends an edge: leaf
// Acquire/Release edges are the ops themselves (the lock-implementation
// layer below them is the lock, not a user of it), and dynamic edges are
// too imprecise to attribute lock effects through.
func FollowForLocks(e *Edge) bool {
	if e.Kind == EdgeDynamic {
		return false
	}
	return e.Name != "Acquire" && e.Name != "Release"
}

// Event is one step of a function's lock-effect walk: either a leaf lock
// op or a call edge, in source order.
type Event struct {
	Pos  token.Pos
	Op   *LockOp // leaf op, or nil
	Edge *Edge   // call edge, or nil
}

// WalkHeld walks n's lock events in source order, invoking visit with each
// event and the set of locks held just before it (sorted, caller's frame).
// Call-edge effects are the callee's transitive Summary, lifted into n's
// frame; deferred releases apply after the last event.
func (g *Graph) WalkHeld(n *Node, visit func(ev Event, held []LockID)) {
	g.walkHeld(n, visit, map[*Node]bool{})
}

func (g *Graph) walkHeld(n *Node, visit func(ev Event, held []LockID), onstack map[*Node]bool) *Summary {
	if n.Facts == nil {
		return &Summary{}
	}
	cnt := map[LockID]int{}
	deferRel := map[LockID]int{}
	heldNow := func() []LockID {
		var out []LockID
		for id, c := range cnt {
			if c > 0 {
				out = append(out, id)
			}
		}
		sort.Strings(out)
		return out
	}

	events := mergeEvents(n)
	for _, ev := range events {
		if visit != nil {
			visit(ev, heldNow())
		}
		switch {
		case ev.Op != nil:
			if ev.Op.Deferred && !ev.Op.Acquire {
				deferRel[ev.Op.ID]++
				continue
			}
			if ev.Op.Acquire {
				cnt[ev.Op.ID]++
			} else {
				cnt[ev.Op.ID]--
			}
		case ev.Edge != nil:
			if !FollowForLocks(ev.Edge) {
				continue
			}
			for _, callee := range g.Callees(ev.Edge) {
				if onstack[callee] {
					continue
				}
				s := g.NodeSummary(callee, onstack)
				for _, id := range s.NetHeld {
					cnt[Lift(callee, ev.Edge, id)]++
				}
				for _, id := range s.NetReleased {
					cnt[Lift(callee, ev.Edge, id)]--
				}
			}
		}
	}
	for id, c := range deferRel {
		cnt[id] -= c
	}
	sum := &Summary{}
	ids := make([]LockID, 0, len(cnt))
	for id := range cnt {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		switch {
		case cnt[id] > 0:
			sum.NetHeld = append(sum.NetHeld, id)
		case cnt[id] < 0:
			sum.NetReleased = append(sum.NetReleased, id)
		}
	}
	return sum
}

// NodeSummary computes (and memoizes) a node's net lock-effect summary.
// Recursion through call cycles is cut conservatively.
func (g *Graph) NodeSummary(n *Node, onstack map[*Node]bool) *Summary {
	if s, ok := g.summaries[n]; ok {
		return s
	}
	if onstack == nil {
		onstack = map[*Node]bool{}
	}
	onstack[n] = true
	s := g.walkHeld(n, nil, onstack)
	delete(onstack, n)
	g.summaries[n] = s
	return s
}

// mergeEvents interleaves a node's leaf lock ops and call edges by source
// position. Leaf Acquire/Release call sites appear in both lists; the edge
// copy is dropped (the op carries the effect).
func mergeEvents(n *Node) []Event {
	var evs []Event
	for i := range n.Facts.Locks {
		op := &n.Facts.Locks[i]
		evs = append(evs, Event{Pos: op.Pos, Op: op})
	}
	for _, e := range n.Edges {
		if e.Name == "Acquire" || e.Name == "Release" {
			continue
		}
		evs = append(evs, Event{Pos: e.Pos, Edge: e})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Pos < evs[j].Pos })
	return evs
}

// TransAcquires returns the lock identities that calling n may acquire
// (leaf acquires in n's subtree, lifted into n's frame), memoized.
func (g *Graph) TransAcquires(n *Node) []LockID {
	return g.transAcquires(n, map[*Node]bool{})
}

func (g *Graph) transAcquires(n *Node, onstack map[*Node]bool) []LockID {
	if ids, ok := g.transAcq[n]; ok {
		return ids
	}
	if n.Facts == nil {
		return nil
	}
	onstack[n] = true
	set := map[LockID]bool{}
	for _, op := range n.Facts.Locks {
		if op.Acquire {
			set[op.ID] = true
		}
	}
	for _, e := range n.Edges {
		if !FollowForLocks(e) {
			continue
		}
		for _, callee := range g.Callees(e) {
			if onstack[callee] {
				continue
			}
			for _, id := range g.transAcquires(callee, onstack) {
				set[Lift(callee, e, id)] = true
			}
		}
	}
	delete(onstack, n)
	ids := make([]LockID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	g.transAcq[n] = ids
	return ids
}

// Witness explains one transitive fact: the op it bottoms out in and the
// call chain (node keys) from the queried node to the op's owner.
type Witness struct {
	Op   Op
	Path []string
}

// MayBlock reports whether calling n can reach a real blocking operation
// (Park, go statement, channel op, select) outside the lock-implementation
// layer, with a deterministic witness. Dynamic edges are not followed.
func (g *Graph) MayBlock(n *Node) *Witness {
	return g.mayBlock(n, map[*Node]bool{})
}

func (g *Graph) mayBlock(n *Node, onstack map[*Node]bool) *Witness {
	if w, ok := g.blockW[n]; ok {
		return w
	}
	if n.Facts == nil {
		return nil
	}
	onstack[n] = true
	defer delete(onstack, n)
	var w *Witness
	if len(n.Facts.Blocks) > 0 {
		w = &Witness{Op: n.Facts.Blocks[0], Path: []string{n.Key}}
	} else {
	edges:
		for _, e := range n.Edges {
			if !FollowForLocks(e) {
				continue
			}
			for _, callee := range g.Callees(e) {
				if onstack[callee] {
					continue
				}
				if cw := g.mayBlock(callee, onstack); cw != nil {
					w = &Witness{Op: cw.Op, Path: append([]string{n.Key}, cw.Path...)}
					break edges
				}
			}
		}
	}
	g.blockW[n] = w
	return w
}

// Witnesses computes, for every node, a witness to a local source op
// reachable through nodes satisfying zone (the queried node must satisfy
// zone too). Used for cross-package taint: nodeterm's wall-clock laundering
// (zone = packages exempt from local checking) and maporder's order taint.
func (g *Graph) Witnesses(source func(*Node) *Op, zone func(*Node) bool) map[*Node]*Witness {
	memo := map[*Node]*Witness{}
	onstack := map[*Node]bool{}
	var visit func(n *Node) *Witness
	visit = func(n *Node) *Witness {
		if w, ok := memo[n]; ok {
			return w
		}
		if onstack[n] || !zone(n) {
			return nil
		}
		onstack[n] = true
		defer delete(onstack, n)
		var w *Witness
		if op := source(n); op != nil {
			w = &Witness{Op: *op, Path: []string{n.Key}}
		} else {
		edges:
			for _, e := range n.Edges {
				if e.Kind == EdgeDynamic {
					continue
				}
				for _, callee := range g.Callees(e) {
					if cw := visit(callee); cw != nil {
						w = &Witness{Op: cw.Op, Path: append([]string{n.Key}, cw.Path...)}
						break edges
					}
				}
			}
		}
		memo[n] = w
		return w
	}
	for _, k := range g.keys {
		visit(g.Nodes[k])
	}
	return memo
}
