// Package maporder flags range statements over maps whose iteration order
// can escape into observable state — report tables, trace renderings, or
// request-queue ordering. Go randomizes map iteration, so any such range
// is a run-to-run divergence waiting to happen, which the chaos
// experiment's determinism re-run would report as corruption.
//
// Two body shapes are recognized as order-independent and allowed
// without annotation:
//
//   - pure commutative reduction: only ++/--, op= assignments, delete
//     calls, and if statements wrapping the same;
//   - collect-then-sort: a single `s = append(s, k)` whose target is
//     passed to a sort call later in the same function.
//
// Everything else must iterate over sorted keys or carry a
// //simcheck:allow maporder annotation. Test files are skipped.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"mpicontend/internal/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over maps where the nondeterministic iteration " +
		"order can reach output or queue ordering; iterate sorted keys or " +
		"reduce commutatively",
	Applies: func(path string) bool {
		return !analysis.PathHasSegment(path, "locks")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// enclosing tracks the function body a range statement sits in,
		// for the collect-then-sort lookahead.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependent(rs.Body.List) {
				return true
			}
			if collectThenSort(rs, enclosingBody(stack)) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic iteration order; iterate sorted keys, reduce commutatively, or annotate with //simcheck:allow maporder <reason>",
				exprText(rs.X))
			return true
		})
	}
	return nil
}

// orderIndependent reports whether every statement is a commutative
// reduction step, so iteration order cannot be observed.
func orderIndependent(list []ast.Stmt) bool {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.QUO_ASSIGN, token.REM_ASSIGN, token.AND_ASSIGN,
				token.OR_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN,
				token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
			default:
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !orderIndependent(s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderIndependent(e.List) {
					return false
				}
			case *ast.IfStmt:
				if !orderIndependent([]ast.Stmt{e}) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectThenSort recognizes the `for k := range m { s = append(s, k) }`
// idiom followed by a sort call on s later in the enclosing function.
func collectThenSort(rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if body == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
		(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	target := exprText(as.Lhs[0])
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		if isSortCall(call.Fun) && exprText(call.Args[0]) == target {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall recognizes package sort calls and project sort helpers
// (functions whose name starts with sort/Sort, like sortKmers).
func isSortCall(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok && id.Name == "sort" {
			return true
		}
		return strings.HasPrefix(f.Sel.Name, "sort") || strings.HasPrefix(f.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.HasPrefix(f.Name, "sort") || strings.HasPrefix(f.Name, "Sort")
	}
	return false
}

// enclosingBody returns the body of the innermost function enclosing the
// node on top of the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// exprText renders an expression as source text for diagnostics.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}
